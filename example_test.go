package parsec_test

import (
	"fmt"

	"parsec"
)

// ExampleInspect shows the inspection phase (§III-B): the metadata the
// PTG consults — chain count and chain lengths — for a small system.
func ExampleInspect() {
	sys, _ := parsec.Molecule("water")
	w := parsec.Inspect(sys)
	fmt.Println("chains:", w.NumChains())
	fmt.Println("first chain length:", w.ChainLen(0))
	// Output:
	// chains: 38
	// first chain length: 6
}

// ExampleVariants lists the paper's five algorithmic variants (§V).
func ExampleVariants() {
	for _, v := range parsec.Variants() {
		fmt.Println(v)
	}
	// Output:
	// v1: GEMMs in a serial chain, SORTs and WRITEs parallel, priorities
	// v2: GEMMs and SORTs parallel, one WRITE, no priorities
	// v3: GEMMs, SORTs and WRITEs all parallel, priorities
	// v4: GEMMs and SORTs parallel, one WRITE, priorities
	// v5: GEMMs parallel, one SORT and one WRITE, priorities
}

// ExampleCompileJDF compiles a tiny PTG from the paper's textual notation
// and executes it.
func ExampleCompileJDF() {
	src := `
PING(i)
  i = 0 .. n - 1
  WRITE D <- NEW(8)
          -> D PONG(i)
BODY ping
END

PONG(i)
  i = 0 .. n - 1
  READ D <- D PING(i)
BODY pong
END
`
	sum := 0
	g, err := parsec.CompileJDF("pingpong", src, parsec.JDFEnv{
		Consts: map[string]int{"n": 3},
		Bodies: map[string]func(*parsec.Ctx){
			"ping": func(ctx *parsec.Ctx) { ctx.Out[0] = ctx.Args[0] * 10 },
			"pong": func(ctx *parsec.Ctx) { sum += ctx.In[0].(int) },
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, _ := parsec.Run(g, parsec.RunConfig{Workers: 1})
	fmt.Println("tasks:", rep.Tasks, "sum:", sum)
	// Output:
	// tasks: 6 sum: 30
}

// ExampleRunCCSD executes the ported kernel with real arithmetic and
// compares against the serial reference (§IV-A).
func ExampleRunCCSD() {
	sys, _ := parsec.Molecule("water")
	w := parsec.Inspect(sys)
	v5, _ := parsec.Variant("v5")
	res, _ := parsec.RunCCSD(w, v5, 2)
	ref := parsec.ReferenceEnergy(w)
	fmt.Printf("agree to 12 digits: %v\n", abs(res.Energy-ref) < 1e-12*abs(ref))
	// Output:
	// agree to 12 digits: true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
