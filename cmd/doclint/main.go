// Command doclint enforces the repository's godoc conventions without
// external tooling: every package must carry a package-level doc
// comment, and every exported top-level identifier (funcs, types,
// methods on exported types, and the names in exported const/var
// groups) must be documented. Undocumented packages are errors (exit
// status 1); undocumented exported identifiers are listed as warnings
// and counted, and -strict promotes them to errors.
//
// Usage:
//
//	go run ./cmd/doclint [-strict] ./...
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	strict := flag.Bool("strict", false, "treat undocumented exported identifiers as errors, not warnings")
	flag.Parse()

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	var dirs []string
	for _, root := range roots {
		root = strings.TrimSuffix(root, "/...")
		if root == "" || root == "." {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != "." || name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
	}
	sort.Strings(dirs)

	var pkgErrs, identWarns int
	for _, dir := range dirs {
		pe, iw := lintDir(dir)
		pkgErrs += pe
		identWarns += iw
	}
	if identWarns > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", identWarns)
	}
	if pkgErrs > 0 || (*strict && identWarns > 0) {
		os.Exit(1)
	}
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// lintDir parses one directory's non-test Go files and reports the
// number of missing-package-comment errors (0 or 1) and undocumented
// exported identifiers.
func lintDir(dir string) (pkgErrs, identWarns int) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", dir, err))
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
				break
			}
		}
		if !hasDoc {
			fmt.Fprintf(os.Stderr, "doclint: %s: package %s has no package comment\n", dir, name)
			pkgErrs++
		}
		files := make([]string, 0, len(pkg.Files))
		for fname := range pkg.Files {
			files = append(files, fname)
		}
		sort.Strings(files)
		for _, fname := range files {
			identWarns += lintFile(fset, pkg.Files[fname])
		}
	}
	return pkgErrs, identWarns
}

// lintFile reports undocumented exported top-level identifiers in one
// file. A GenDecl doc comment covers all of its specs, matching godoc's
// rendering of grouped const/var/type declarations.
func lintFile(fset *token.FileSet, f *ast.File) int {
	warns := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Fprintf(os.Stderr, "doclint: %s: %s %s is exported but undocumented\n",
			fset.Position(pos), kind, name)
		warns++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue
			}
			kind := "func"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), d.Tok.String(), n.Name)
						}
					}
				}
			}
		}
	}
	return warns
}

// exportedRecv reports whether a method receiver's base type is
// exported; methods on unexported types don't appear in godoc.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doclint:", err)
	os.Exit(1)
}
