// Command cctrace regenerates the paper's execution traces (Figs 10-13):
// it runs one variant of the ported subroutine — or the original CGP
// code — on the simulated cluster with PaRSEC-style instrumentation
// enabled, renders the trace as an ASCII Gantt chart (one row per thread,
// grouped by node), and prints the summary statistics the paper reads off
// the traces: startup idle time (the v2 bubble of Fig 11) and
// communication/computation overlap (absent in the original, Figs 12/13).
//
// Usage:
//
//	cctrace [-variant v4] [-preset benzene] [-nodes 8] [-cores 7]
//	        [-width 160] [-svg out.svg] [-csv out.csv] [-chrome out.json]
//	        [-pprof localhost:6060]
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"parsec/internal/ccsd"
	"parsec/internal/cluster"
	"parsec/internal/molecule"
	"parsec/internal/trace"
)

func main() {
	variant := flag.String("variant", "v4", "what to trace: original, v1..v5, or a flat recipe (seg=...,fission=...)")
	preset := flag.String("preset", "benzene", "molecule preset: water, benzene, betacarotene")
	nodes := flag.Int("nodes", 8, "number of nodes (small keeps the chart legible)")
	cores := flag.Int("cores", 7, "cores (ranks) per node, as in Figs 10-12")
	width := flag.Int("width", 160, "ASCII chart width in columns")
	svgPath := flag.String("svg", "", "also write an SVG rendering to this file")
	csvPath := flag.String("csv", "", "also write the raw events as CSV to this file")
	chromePath := flag.String("chrome", "", "also write a Chrome/Perfetto trace-event JSON to this file")
	from := flag.Float64("from", 0, "zoom: render only events after this many seconds (Fig 13)")
	to := flag.Float64("to", 0, "zoom: render only events before this many seconds (0 = end)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the simulation runs")
	flag.Parse()

	if *pprofAddr != "" {
		// The DES replay is CPU-bound host code; pprof profiles the
		// simulator itself, not the simulated machine.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cctrace: pprof:", err)
			}
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	sys, err := molecule.Preset(*preset)
	if err != nil {
		fatal(err)
	}
	mcfg := cluster.CascadeLike()
	mcfg.Nodes = *nodes

	tr := trace.New()
	var makespan float64
	switch *variant {
	case "original":
		mk, err := ccsd.RunSimBaseline(sys, mcfg, *cores, tr)
		if err != nil {
			fatal(err)
		}
		makespan = mk.Seconds()
	default:
		spec, err := ccsd.VariantByName(*variant)
		if err != nil {
			fatal(err)
		}
		res, err := ccsd.RunSim(sys, spec, mcfg, ccsd.SimRunConfig{CoresPerNode: *cores, Trace: tr})
		if err != nil {
			fatal(err)
		}
		makespan = res.Makespan.Seconds()
	}
	if err := tr.Validate(); err != nil {
		fatal(fmt.Errorf("trace invalid: %w", err))
	}
	full := tr
	if *from > 0 || *to > 0 {
		end := *to
		if end <= 0 {
			end = makespan
		}
		tr = tr.Window(int64(*from*1e9), int64(end*1e9))
		fmt.Printf("zoomed to [%.3fs, %.3fs]: %d of %d events\n", *from, end, tr.Len(), full.Len())
	}

	fmt.Printf("trace of %s on %s, %d nodes x %d cores/node: makespan %.3f s, %d events\n\n",
		*variant, sys.Name, *nodes, *cores, makespan, tr.Len())
	if err := tr.ASCIIGantt(os.Stdout, *width); err != nil {
		fatal(err)
	}

	s := tr.Summarize()
	fmt.Printf("\n%s", s)

	// Communication classes: reads (PaRSEC) or GETs and ADDs (original).
	comm := map[string]bool{"READA": true, "READB": true, "WRITE": true}
	commTime, overlapped := tr.OverlapStats(comm)
	if commTime > 0 {
		fmt.Printf("\ncommunication/computation overlap: %.1f%% of %.3f s of communication\n",
			100*float64(overlapped)/float64(commTime), float64(commTime)/1e9)
	}
	// Worker time spent blocked in communication: the visual signature of
	// Figs 12/13 — in the original code GET_HASH_BLOCK rectangles rival
	// the GEMMs, while PaRSEC workers only do short local gathers and the
	// comm thread moves the data off the critical path.
	var commBusy int64
	for _, c := range s.ByClass {
		if comm[c.Class] {
			commBusy += c.Busy
		}
	}
	if s.TotalBusy > 0 {
		fmt.Printf("worker time blocked in communication: %.1f%% of all busy time\n",
			100*float64(commBusy)/float64(s.TotalBusy))
	}
	fmt.Printf("startup idle (Fig 11 bubble): mean %.3f s = %.1f%% of the makespan\n",
		float64(s.StartupIdleMean)/1e9, 100*s.StartupIdleFrac)
	gm, gx := tr.RampStats("GEMM")
	fmt.Printf("time to first GEMM per thread: mean %.3f s, max %.3f s (%.1f%% / %.1f%% of makespan)\n",
		float64(gm)/1e9, float64(gx)/1e9,
		100*float64(gm)/float64(s.Span), 100*float64(gx)/float64(s.Span))

	if *svgPath != "" {
		writeFile(*svgPath, func(f *os.File) error { return tr.WriteSVG(f, 1400) })
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if *csvPath != "" {
		writeFile(*csvPath, func(f *os.File) error { return tr.WriteCSV(f) })
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *chromePath != "" {
		writeFile(*chromePath, func(f *os.File) error { return tr.WriteChromeTrace(f) })
		fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *chromePath)
	}
}

func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cctrace:", err)
	os.Exit(1)
}
