// Command jdfc compiles and checks a JDF source file (the textual PTG
// notation of the paper's Fig 1; see internal/jdf for the dialect). It
// reports the task classes, flows, and instance counts, validates the
// graph and every dependence target, and can export the instantiated DAG
// as Graphviz DOT.
//
// Constants the source references are supplied with -D; everything else
// (functions, bodies, data resolvers) is resolved leniently so any
// well-formed source can be checked without its runtime environment.
//
// Usage:
//
//	jdfc [-D size_L1=4 -D P=8] [-dot out.dot] file.jdf
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parsec/internal/jdf"
	"parsec/internal/ptg"
)

type defines map[string]int

func (d defines) String() string { return fmt.Sprint(map[string]int(d)) }

func (d defines) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	d[name] = v
	return nil
}

func main() {
	consts := defines{}
	flag.Var(consts, "D", "define a constant (name=value); repeatable")
	dotPath := flag.String("dot", "", "write the instantiated DAG in DOT format to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jdfc [-D name=value ...] [-dot out.dot] file.jdf")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	g, err := jdf.Compile(flag.Arg(0), string(src), jdf.Env{Consts: consts, Lenient: true})
	if err != nil {
		fatal(err)
	}
	counts, total := g.CountTasks()
	fmt.Printf("%s: %d task classes, %d instances\n\n", flag.Arg(0), len(g.Classes()), total)
	fmt.Printf("%-12s %10s  flows\n", "class", "instances")
	for _, tc := range g.Classes() {
		flows := ""
		for i, f := range tc.Flows {
			if i > 0 {
				flows += ", "
			}
			flows += fmt.Sprintf("%s %s (%d in / %d out)", f.Mode, f.Name, len(f.Ins), len(f.Outs))
		}
		fmt.Printf("%-12s %10d  %s\n", tc.Name, counts[tc.Name], flows)
	}
	// Full dependence check: instantiate and drive the tracker so every
	// dependence target is resolved.
	if _, err := ptg.Analyze(g, func(*ptg.Instance) int64 { return 1 }); err != nil {
		fatal(fmt.Errorf("dependence check failed: %w", err))
	}
	fmt.Println("\ndependence check: ok (all targets resolve, graph is acyclic and complete)")
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ptg.ExportDOT(g, f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jdfc:", err)
	os.Exit(1)
}
