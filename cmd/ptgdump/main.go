// Command ptgdump inspects the Parameterized Task Graph of one variant of
// the ported icsd_t2_7 subroutine: it prints the task classes with their
// instance counts (the symbolic PTG of Figs 1-2 made concrete), the
// inspection-phase workload statistics, and optionally exports the fully
// instantiated DAG in Graphviz DOT format for a small problem.
//
// The -variant flag accepts either a paper name (v1..v5) or a flat
// recipe in the transformation-pass grammar, so a derived shape — say
// one found by ccsim -tune — can be dumped and diffed like any named
// variant:
//
//	ptgdump -variant seg=1,tree=4,fission=sorts -dot tuned.dot
//
// Usage:
//
//	ptgdump [-variant v5|recipe] [-preset water] [-nodes 4] [-dot out.dot]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"parsec/internal/ccsd"
	"parsec/internal/cluster"
	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/tce"
)

func main() {
	variant := flag.String("variant", "v5", "variant whose PTG to dump: v1..v5 or a flat recipe (seg=...,tree=...,fission=...,prio=...,span=...)")
	kernel := flag.String("kernel", "t2_7", "TCE kernel: t2_7 or t1_2")
	preset := flag.String("preset", "water", "molecule preset (keep small for -dot)")
	nodes := flag.Int("nodes", 4, "nodes for affinity/priority computation")
	dotPath := flag.String("dot", "", "write the instantiated DAG in DOT format to this file")
	analyze := flag.Bool("analyze", false, "print work/span analysis for every variant")
	flag.Parse()

	sys, err := molecule.Preset(*preset)
	if err != nil {
		fatal(err)
	}
	spec, err := ccsd.VariantByName(*variant)
	if err != nil {
		fatal(err)
	}
	k, err := tce.KernelByName(*kernel, sys)
	if err != nil {
		fatal(err)
	}
	w := tce.Inspect(k, nil)
	g := ccsd.BuildGraph(w, spec, ccsd.Options{Nodes: *nodes})
	if err := g.Validate(); err != nil {
		fatal(err)
	}

	fmt.Printf("system:   %v\n", sys)
	fmt.Printf("workload: %v\n", w.Stats())
	fmt.Printf("variant:  %v\n", spec)
	fmt.Printf("shape:    %s\n\n", spec.MustShape().Canon())

	counts, total := g.CountTasks()
	fmt.Printf("%-10s %10s  flows\n", "class", "instances")
	for _, tc := range g.Classes() {
		flows := ""
		for i, f := range tc.Flows {
			if i > 0 {
				flows += ", "
			}
			flows += fmt.Sprintf("%s %s", f.Mode, f.Name)
		}
		fmt.Printf("%-10s %10d  %s\n", tc.Name, counts[tc.Name], flows)
	}
	fmt.Printf("%-10s %10d\n\n", "total", total)

	// Per-chain shape summary: how the chains map onto tasks.
	lens := map[int]int{}
	for _, c := range w.Chains {
		lens[len(c.Gemms)]++
	}
	keys := make([]int, 0, len(lens))
	for k := range lens {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Println("chain length histogram (GEMMs per chain: count):")
	for _, k := range keys {
		fmt.Printf("  %3d: %d\n", k, lens[k])
	}

	if *analyze {
		fmt.Println("\nwork/span analysis (uncontended Cascade durations):")
		mcfg := cluster.CascadeLike()
		dur := func(in *ptg.Instance) int64 {
			if in.Class.Cost == nil {
				return 0
			}
			c := in.Class.Cost(in.Ref.Args)
			sec := float64(c.Flops)/(mcfg.CoreGFlops*1e9) +
				(float64(c.MemBytes)+mcfg.GemmMemTraffic*float64(c.GemmBytes))/mcfg.MemBWBytes
			return int64(sec * 1e9)
		}
		for _, vs := range ccsd.Variants() {
			vg := ccsd.BuildGraph(w, vs, ccsd.Options{Nodes: *nodes})
			a, err := ptg.Analyze(vg, dur)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-3s %v\n", vs.Name, a)
		}
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ptg.ExportDOT(g, f); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s (%d task instances)\n", *dotPath, total)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptgdump:", err)
	os.Exit(1)
}
