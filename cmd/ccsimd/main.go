// Command ccsimd is the long-running CCSD service: a persistent HTTP
// server that accepts concurrent CCSD jobs, multiplexes them over a
// bounded executor pool, and caches compiled plans by content key so
// repeat submissions skip inspection and planning entirely (see
// internal/serve and docs/SERVICE.md).
//
// Usage:
//
//	ccsimd [-addr host:port] [-max-concurrent N] [-queue-depth N]
//	       [-cache-cap N] [-workers N] [-retry-after D]
//	       [-data DIR] [-mem-budget BYTES]
//	       [-netrun-bytes BYTES] [-netrun-ranks N] [-netrun-procs]
//	ccsimd -smoke
//	ccsimd -recovery-smoke
//
// With -data the daemon journals every job transition to
// DIR/jobs.journal and replays it on startup: terminal results are
// restored verbatim and interrupted jobs re-execute (to bitwise-
// identical energies — plans are pure and GA accumulation is ordered).
// -mem-budget switches admission from job counting to tensor-footprint
// accounting, and -netrun-bytes dispatches jobs at or above that
// footprint onto the netrun multi-process backend.
//
// Without -smoke the server runs until SIGINT/SIGTERM, then drains
// in-flight jobs before exiting. With -smoke it starts an in-process
// server on a loopback port, drives the CI acceptance scenario against
// the real HTTP surface (cold benzene job, identical cached job,
// canceled job, queue-full 429, drained shutdown), prints the outcome,
// and exits non-zero on any failure. With -recovery-smoke it drives the
// restart-recovery scenario instead: a child ccsimd with a journal is
// SIGKILLed mid-queue and restarted, and recovered results must be
// bitwise identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parsec/internal/netrun"
	"parsec/internal/serve"
)

func main() {
	// A process launched as a netrun worker rank runs that rank and
	// exits here: this is what lets the daemon place large jobs across
	// real OS processes by re-executing its own binary.
	netrun.MaybeWorkerMain()

	addr := flag.String("addr", "127.0.0.1:8651", "listen address")
	maxConc := flag.Int("max-concurrent", 2, "jobs executing simultaneously")
	queueDepth := flag.Int("queue-depth", 16, "admitted jobs waiting for an executor before 429")
	cacheCap := flag.Int("cache-cap", 32, "plan cache capacity (entries)")
	workers := flag.Int("workers", 1, "default runtime workers per job")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 rejections")
	dataDir := flag.String("data", "", "journal directory; empty keeps job records in memory only")
	memBudget := flag.Int64("mem-budget", 0, "tensor-footprint admission budget in bytes (0 = job-count gating only)")
	netrunBytes := flag.Int64("netrun-bytes", 0, "dispatch jobs with footprint >= this onto the netrun backend (0 = always in-process)")
	netrunRanks := flag.Int("netrun-ranks", 2, "worker ranks for netrun-dispatched jobs")
	netrunProcs := flag.Bool("netrun-procs", true, "netrun ranks as real OS processes (false: in-process ranks over sockets)")
	smoke := flag.Bool("smoke", false, "run the service smoke scenario and exit")
	recovery := flag.Bool("recovery-smoke", false, "run the restart-recovery smoke scenario and exit")
	flag.Parse()

	cfg := serve.Config{
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queueDepth,
		CacheCap:       *cacheCap,
		DefaultWorkers: *workers,
		RetryAfter:     *retryAfter,
		DataDir:        *dataDir,
		MemBudget:      *memBudget,
		NetrunBytes:    *netrunBytes,
		NetrunRanks:    *netrunRanks,
		NetrunProcs:    *netrunProcs,
	}

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "ccsimd: smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ccsimd: smoke ok")
		return
	}
	if *recovery {
		if err := runRecoverySmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "ccsimd: recovery smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ccsimd: recovery smoke ok")
		return
	}

	s, err := serve.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsimd: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Printf("ccsimd: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		s.Shutdown()
		close(done)
	}()

	ec := s.Config()
	fmt.Printf("ccsimd: listening on %s (executors %d, queue %d, cache %d plans, %d workers/job",
		*addr, ec.MaxConcurrent, ec.QueueDepth, ec.CacheCap, ec.DefaultWorkers)
	if ec.DataDir != "" {
		fmt.Printf(", journal %s", ec.DataDir)
	}
	if ec.MemBudget > 0 {
		fmt.Printf(", mem budget %d MB", ec.MemBudget>>20)
	}
	if ec.NetrunBytes > 0 {
		fmt.Printf(", netrun >= %d KB x%d ranks", ec.NetrunBytes>>10, ec.NetrunRanks)
	}
	fmt.Println(")")
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "ccsimd: %v\n", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("ccsimd: drained, bye")
}
