// Command ccsimd is the long-running CCSD service: a persistent HTTP
// server that accepts concurrent CCSD jobs, multiplexes them over a
// bounded executor pool, and caches compiled plans by content key so
// repeat submissions skip inspection and planning entirely (see
// internal/serve and docs/SERVICE.md).
//
// Usage:
//
//	ccsimd [-addr host:port] [-max-concurrent N] [-queue-depth N]
//	       [-cache-cap N] [-workers N] [-retry-after D]
//	ccsimd -smoke
//
// Without -smoke the server runs until SIGINT/SIGTERM, then drains
// in-flight jobs before exiting. With -smoke it starts an in-process
// server on a loopback port, drives the CI acceptance scenario against
// the real HTTP surface (cold benzene job, identical cached job,
// canceled job, queue-full 429, drained shutdown), prints the outcome,
// and exits non-zero on any failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parsec/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8651", "listen address")
	maxConc := flag.Int("max-concurrent", 2, "jobs executing simultaneously")
	queueDepth := flag.Int("queue-depth", 16, "admitted jobs waiting for an executor before 429")
	cacheCap := flag.Int("cache-cap", 32, "plan cache capacity (entries)")
	workers := flag.Int("workers", 1, "default runtime workers per job")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on queue-full rejections")
	smoke := flag.Bool("smoke", false, "run the service smoke scenario and exit")
	flag.Parse()

	cfg := serve.Config{
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queueDepth,
		CacheCap:       *cacheCap,
		DefaultWorkers: *workers,
		RetryAfter:     *retryAfter,
	}

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "ccsimd: smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ccsimd: smoke ok")
		return
	}

	s := serve.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Printf("ccsimd: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		s.Shutdown()
		close(done)
	}()

	ec := s.Config()
	fmt.Printf("ccsimd: listening on %s (executors %d, queue %d, cache %d plans, %d workers/job)\n",
		*addr, ec.MaxConcurrent, ec.QueueDepth, ec.CacheCap, ec.DefaultWorkers)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "ccsimd: %v\n", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("ccsimd: drained, bye")
}
