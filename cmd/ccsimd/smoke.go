package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"parsec/internal/serve"
)

// smokeClient is a minimal JSON client over the real HTTP surface.
type smokeClient struct {
	base string
	hc   *http.Client
}

// submit posts a job spec and decodes the accepted status; a 429 is
// reported through the bool.
func (c *smokeClient) submit(spec serve.JobSpec) (serve.JobStatus, bool, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.JobStatus{}, false, err
	}
	resp, err := c.hc.Post(c.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobStatus{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return serve.JobStatus{}, true, nil
	}
	if resp.StatusCode != http.StatusAccepted {
		return serve.JobStatus{}, false, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	var st serve.JobStatus
	return st, false, json.NewDecoder(resp.Body).Decode(&st)
}

// submitRA is submit plus the Retry-After header observed on a 429.
func (c *smokeClient) submitRA(spec serve.JobSpec) (serve.JobStatus, bool, string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.JobStatus{}, false, "", err
	}
	resp, err := c.hc.Post(c.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobStatus{}, false, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return serve.JobStatus{}, true, resp.Header.Get("Retry-After"), nil
	}
	if resp.StatusCode != http.StatusAccepted {
		return serve.JobStatus{}, false, "", fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	var st serve.JobStatus
	return st, false, "", json.NewDecoder(resp.Body).Decode(&st)
}

// status fetches a job's current status without waiting.
func (c *smokeClient) status(id string) (serve.JobStatus, error) {
	resp, err := c.hc.Get(c.base + "/jobs/" + id)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.JobStatus{}, fmt.Errorf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st serve.JobStatus
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// wait polls a job until it is terminal.
func (c *smokeClient) wait(id string) (serve.JobStatus, error) {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := c.hc.Get(c.base + "/jobs/" + id)
		if err != nil {
			return serve.JobStatus{}, err
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return serve.JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return serve.JobStatus{}, fmt.Errorf("job %s never finished", id)
}

// cancel requests cancellation.
func (c *smokeClient) cancel(id string) error {
	resp, err := c.hc.Post(c.base+"/jobs/"+id+"/cancel", "application/json", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("cancel: HTTP %d", resp.StatusCode)
	}
	return nil
}

// stats fetches /stats.
func (c *smokeClient) stats() (serve.Stats, error) {
	resp, err := c.hc.Get(c.base + "/stats")
	if err != nil {
		return serve.Stats{}, err
	}
	defer resp.Body.Close()
	var st serve.Stats
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// runSmoke is the CI acceptance scenario: cold benzene job, identical
// cached job, a canceled job, queue-full backpressure, and a draining
// shutdown — all over a real listener, intended to run under -race.
func runSmoke() error {
	s := serve.New(serve.Config{MaxConcurrent: 1, QueueDepth: 1, RetryAfter: time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	c := &smokeClient{base: "http://" + ln.Addr().String(), hc: &http.Client{Timeout: 30 * time.Second}}
	benzene := serve.JobSpec{Preset: "benzene", Variant: "v5"}

	// 1. Cold run: compiles the plan.
	st1, _, err := c.submit(benzene)
	if err != nil {
		return err
	}
	st1, err = c.wait(st1.ID)
	if err != nil {
		return err
	}
	if st1.State != serve.JobDone || st1.Result == nil {
		return fmt.Errorf("cold job: state %s, want done", st1.State)
	}
	if st1.Result.CacheHit {
		return fmt.Errorf("cold job claims a cache hit")
	}
	fmt.Printf("smoke: cold   %s E=%.12f inspect+plan=%v exec=%v\n", st1.ID, st1.Result.Energy,
		time.Duration(st1.Result.InspectNs+st1.Result.PlanNs), time.Duration(st1.Result.ExecNs))

	// 2. Identical job: must hit the cache and skip inspection+planning.
	st2, _, err := c.submit(benzene)
	if err != nil {
		return err
	}
	if st2, err = c.wait(st2.ID); err != nil {
		return err
	}
	if st2.State != serve.JobDone || st2.Result == nil || !st2.Result.CacheHit {
		return fmt.Errorf("repeat job: state %s cacheHit %v, want done hit", st2.State, st2.Result != nil && st2.Result.CacheHit)
	}
	if st2.Result.InspectNs != 0 || st2.Result.PlanNs != 0 {
		return fmt.Errorf("cached job still paid inspect=%dns plan=%dns", st2.Result.InspectNs, st2.Result.PlanNs)
	}
	if st2.Result.Energy != st1.Result.Energy {
		return fmt.Errorf("cached energy %.15f != cold energy %.15f", st2.Result.Energy, st1.Result.Energy)
	}
	fmt.Printf("smoke: cached %s E=%.12f exec=%v (inspection+planning skipped)\n",
		st2.ID, st2.Result.Energy, time.Duration(st2.Result.ExecNs))

	// 3. Cancellation: submit and cancel immediately — benzene takes
	// long enough that the cancel always lands before completion.
	st3, _, err := c.submit(benzene)
	if err != nil {
		return err
	}
	if err := c.cancel(st3.ID); err != nil {
		return err
	}
	if st3, err = c.wait(st3.ID); err != nil {
		return err
	}
	if st3.State != serve.JobCanceled {
		return fmt.Errorf("canceled job: state %s, want canceled", st3.State)
	}
	fmt.Printf("smoke: canceled %s\n", st3.ID)

	// 4. Backpressure: occupy the executor, fill the single queue slot,
	// and check the next submission bounces with 429.
	blocker, _, err := c.submit(benzene)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := c.stats()
		if err != nil {
			return err
		}
		if stats.Running > 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("blocker never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, rejected, err := c.submit(benzene); err != nil || rejected {
		return fmt.Errorf("queue-filling submit: rejected=%v err=%v", rejected, err)
	}
	if _, rejected, err := c.submit(benzene); err != nil || !rejected {
		return fmt.Errorf("overflow submit: rejected=%v err=%v, want 429", rejected, err)
	}
	fmt.Println("smoke: full queue returned 429")

	// 5. Shutdown drains everything still in flight.
	s.Shutdown()
	final, err := s.Job(blocker.ID)
	if err != nil {
		return err
	}
	if !final.State.Terminal() {
		return fmt.Errorf("blocker state %s after shutdown, want terminal", final.State)
	}
	stats := s.Stats()
	if stats.Queued != 0 || stats.Running != 0 {
		return fmt.Errorf("stats after shutdown: %+v, want empty queue", stats)
	}
	fmt.Printf("smoke: shutdown drained (done=%d canceled=%d rejected=%d, cache hits=%d misses=%d)\n",
		stats.Done, stats.Canceled, stats.Rejected, stats.Cache.Hits, stats.Cache.Misses)
	return nil
}
