package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/molecule"
	"parsec/internal/serve"
)

// The restart-recovery smoke: a child ccsimd with a durable journal is
// driven through jobs in every state, SIGKILLed mid-queue, and
// restarted. The restarted daemon must serve prior terminal results
// verbatim, keep canceled jobs canceled, and re-execute interrupted
// jobs to bitwise-identical energies. A benzene job sits above the
// netrun threshold, so it also proves dispatch across >= 2 real worker
// processes survives the crash/restart cycle.

// child is one spawned ccsimd daemon process under smoke control.
type child struct {
	cmd  *exec.Cmd
	base string
}

// startChild launches ccsimd (this binary) as a daemon on addr with the
// given journal dir and netrun threshold, and waits for /healthz.
func startChild(addr, dataDir string, netrunBytes int64) (*child, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe,
		"-addr", addr,
		"-data", dataDir,
		"-max-concurrent", "1",
		"-queue-depth", "4",
		"-retry-after", "500ms",
		"-netrun-bytes", fmt.Sprint(netrunBytes),
		"-netrun-ranks", "2",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &child{cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return c, nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("child ccsimd on %s never became healthy", addr)
}

// kill delivers SIGKILL and reaps the child — the crash under test.
func (c *child) kill() {
	c.cmd.Process.Kill()
	c.cmd.Wait()
}

// stop shuts the child down gracefully (SIGTERM + drain).
func (c *child) stop() error {
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(2 * time.Minute):
		c.cmd.Process.Kill()
		return fmt.Errorf("child did not drain after SIGTERM")
	}
}

// freeAddr reserves a loopback port and returns host:port for the
// child to bind (released just before the spawn).
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// runRecoverySmoke drives the kill-and-restart acceptance scenario.
func runRecoverySmoke() error {
	dataDir, err := os.MkdirTemp("", "ccsimd-recovery-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	addr, err := freeAddr()
	if err != nil {
		return err
	}

	// Threshold between the water and benzene footprints: water runs
	// in-process, benzene is dispatched across 2 netrun worker
	// processes.
	waterFoot := ccsd.EstimateFootprint(molecule.Water631G())
	threshold := waterFoot + 1
	water := serve.JobSpec{Preset: "water", Variant: "v5"}
	benzene := serve.JobSpec{Preset: "benzene", Variant: "v5"}

	c1, err := startChild(addr, dataDir, threshold)
	if err != nil {
		return err
	}
	defer c1.kill()
	cl := &smokeClient{base: c1.base, hc: &http.Client{Timeout: 5 * time.Minute}}

	// Phase 1a: one of each terminal state, plus the netrun acceptance.
	doneWater, _, err := cl.submit(water)
	if err != nil {
		return err
	}
	if doneWater, err = cl.wait(doneWater.ID); err != nil {
		return err
	}
	if doneWater.State != serve.JobDone || doneWater.Result.Backend != serve.BackendInProcess {
		return fmt.Errorf("water job: state %s backend %q, want done/inproc", doneWater.State, doneWater.Result.Backend)
	}
	eWater := doneWater.Result.Energy

	canceled, _, err := cl.submit(water)
	if err != nil {
		return err
	}
	if err := cl.cancel(canceled.ID); err != nil {
		return err
	}
	if canceled, err = cl.wait(canceled.ID); err != nil {
		return err
	}
	if canceled.State != serve.JobCanceled {
		return fmt.Errorf("canceled job: state %s, want canceled", canceled.State)
	}

	doneBenz, _, err := cl.submit(benzene)
	if err != nil {
		return err
	}
	if doneBenz, err = cl.wait(doneBenz.ID); err != nil {
		return err
	}
	if doneBenz.State != serve.JobDone || doneBenz.Result.Backend != serve.BackendNetrun || doneBenz.Result.Ranks != 2 {
		return fmt.Errorf("benzene job: state %s backend %q ranks %d, want done/netrun/2",
			doneBenz.State, doneBenz.Result.Backend, doneBenz.Result.Ranks)
	}
	eBenz := doneBenz.Result.Energy
	fmt.Printf("recovery: pre-kill water E=%.12f (inproc), benzene E=%.12f (netrun x%d procs)\n",
		eWater, eBenz, doneBenz.Result.Ranks)

	// Phase 1b: occupy the executor with a benzene run, queue water
	// jobs behind it, and overflow the queue to check the Retry-After
	// clamp (500ms must render as "1", never "0").
	interrupted, _, err := cl.submit(benzene)
	if err != nil {
		return err
	}
	var queued []serve.JobStatus
	for i := 0; i < 4; i++ {
		st, rejected, err := cl.submit(water)
		if err != nil {
			return err
		}
		if rejected {
			return fmt.Errorf("queue-filling submit %d rejected early", i)
		}
		queued = append(queued, st)
	}
	sawRetryAfter := ""
	for i := 0; i < 50; i++ {
		_, rejected, ra, err := cl.submitRA(water)
		if err != nil {
			return err
		}
		if rejected {
			sawRetryAfter = ra
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sawRetryAfter != "1" {
		return fmt.Errorf("overflow Retry-After = %q, want \"1\" (sub-second hints must round up, never to 0)", sawRetryAfter)
	}
	fmt.Println("recovery: overflow 429 carried Retry-After: 1")

	// Phase 1c: SIGKILL with jobs in every state — done, canceled,
	// running (benzene mid-netrun), and queued.
	c1.kill()
	fmt.Println("recovery: child SIGKILLed mid-queue")

	// Phase 2: restart on the same journal.
	c2, err := startChild(addr, dataDir, threshold)
	if err != nil {
		return err
	}
	defer c2.stop()
	cl = &smokeClient{base: c2.base, hc: &http.Client{Timeout: 5 * time.Minute}}

	// Terminal results are restored verbatim: bitwise-equal energies.
	rWater, err := cl.status(doneWater.ID)
	if err != nil {
		return err
	}
	if rWater.State != serve.JobDone || rWater.Result == nil || rWater.Result.Energy != eWater {
		return fmt.Errorf("recovered water job %s: state %s, energy mismatch (want bitwise %.15f)", doneWater.ID, rWater.State, eWater)
	}
	if !rWater.Recovered {
		return fmt.Errorf("recovered water job %s not flagged recovered", doneWater.ID)
	}
	rBenz, err := cl.status(doneBenz.ID)
	if err != nil {
		return err
	}
	if rBenz.State != serve.JobDone || rBenz.Result == nil || rBenz.Result.Energy != eBenz {
		return fmt.Errorf("recovered benzene job %s: state %s, energy mismatch (want bitwise %.15f)", doneBenz.ID, rBenz.State, eBenz)
	}
	rCan, err := cl.status(canceled.ID)
	if err != nil {
		return err
	}
	if rCan.State != serve.JobCanceled {
		return fmt.Errorf("recovered canceled job %s: state %s, want canceled", canceled.ID, rCan.State)
	}
	fmt.Println("recovery: terminal results restored verbatim (|dE| = 0), canceled stayed canceled")

	// Interrupted and queued jobs re-execute to bitwise-identical
	// energies on their original backends.
	ri, err := cl.wait(interrupted.ID)
	if err != nil {
		return err
	}
	if ri.State != serve.JobDone || ri.Result.Energy != eBenz {
		return fmt.Errorf("re-executed benzene %s: state %s energy %.15f, want done %.15f (|dE| = 0)",
			interrupted.ID, ri.State, ri.Result.Energy, eBenz)
	}
	if ri.Result.Backend != serve.BackendNetrun || ri.Result.Ranks != 2 {
		return fmt.Errorf("re-executed benzene backend %q ranks %d, want netrun/2", ri.Result.Backend, ri.Result.Ranks)
	}
	for _, q := range queued {
		rq, err := cl.wait(q.ID)
		if err != nil {
			return err
		}
		if rq.State != serve.JobDone || rq.Result.Energy != eWater {
			return fmt.Errorf("re-executed water %s: state %s energy %.15f, want done %.15f (|dE| = 0)",
				q.ID, rq.State, rq.Result.Energy, eWater)
		}
	}
	st, err := cl.stats()
	if err != nil {
		return err
	}
	fmt.Printf("recovery: %d jobs recovered, interrupted benzene + %d queued waters re-executed bitwise-identical (epoch %d)\n",
		st.Recovered, len(queued), st.Epoch)
	if st.Recovered < 7 {
		return fmt.Errorf("stats.Recovered = %d, want >= 7", st.Recovered)
	}
	if st.Epoch < 2 {
		return fmt.Errorf("stats.Epoch = %d, want >= 2 after a restart", st.Epoch)
	}
	return nil
}
