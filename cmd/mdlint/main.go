// Command mdlint checks the repository's Markdown for broken relative
// links without touching the network: every `[text](target)` whose
// target is not an absolute URL (no "://" and no "mailto:") must point
// at an existing file or directory, resolved against the linking file's
// directory. Fenced code blocks are skipped, fragments (`#...`) and
// query strings are stripped before the existence check. Broken links
// exit with status 1.
//
// Usage:
//
//	go run ./cmd/mdlint [dir ...]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe matches inline Markdown links. Reference-style definitions
// `[id]: target` are rare in this repo and intentionally not checked.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if strings.HasPrefix(name, ".") && path != root || name == "vendor" || name == "node_modules" {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.EqualFold(filepath.Ext(path), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
	}
	sort.Strings(files)

	broken := 0
	for _, path := range files {
		broken += lintFile(path)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// lintFile reports broken relative links in one Markdown file.
func lintFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	broken := 0
	inFence := false
	for lineNo, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			// Strip fragment and query before the existence check.
			if i := strings.IndexAny(target, "#?"); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "mdlint: %s:%d: broken link %q (resolved %s)\n",
					path, lineNo+1, m[1], resolved)
				broken++
			}
		}
	}
	return broken
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdlint:", err)
	os.Exit(1)
}
