// Command ccload load-tests the ccsimd service: N concurrent clients
// drive a mixed workload of CCSD jobs (every combination of the given
// presets and variants, repeated round-robin) against a server, then
// report throughput, cache hit-rate, cold vs cached latency percentiles
// (p50/p95/p99), the inspection+planning cost the cache sheds, and an
// energy-agreement check across every job sharing a plan key.
//
// Usage:
//
//	ccload [-addr host:port] [-clients N] [-jobs N]
//	       [-presets water,benzene] [-variants v4,v5] [-workers N]
//
// With no -addr it starts an in-process server on a loopback port
// (sized by -max-concurrent / -queue-depth / -cache-cap) so a single
// command reproduces the committed EXPERIMENTS.md run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parsec/internal/serve"
)

// jobOutcome is one client-observed job completion.
type jobOutcome struct {
	key       string
	latency   time.Duration
	cacheHit  bool
	energy    float64
	inspectNs int64
	planNs    int64
	execNs    int64
	retries   int
}

// client is the JSON-over-HTTP driver shared by the worker goroutines.
type client struct {
	base string
	hc   *http.Client
}

// runJob submits one spec (retrying 429s with the server's Retry-After
// hint, capped to keep the harness responsive) and polls it to
// completion.
func (c *client) runJob(spec serve.JobSpec, key string) (jobOutcome, error) {
	out := jobOutcome{key: key}
	body, err := json.Marshal(spec)
	if err != nil {
		return out, err
	}
	start := time.Now()
	var st serve.JobStatus
	for {
		resp, err := c.hc.Post(c.base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return out, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			ra := resp.Header.Get("Retry-After")
			resp.Body.Close()
			out.retries++
			time.Sleep(backoff(ra))
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			resp.Body.Close()
			return out, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return out, err
		}
		break
	}
	for !st.State.Terminal() {
		time.Sleep(2 * time.Millisecond)
		resp, err := c.hc.Get(c.base + "/jobs/" + st.ID)
		if err != nil {
			return out, err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return out, err
		}
	}
	out.latency = time.Since(start)
	if st.State != serve.JobDone || st.Result == nil {
		return out, fmt.Errorf("job %s ended %s (%s)", st.ID, st.State, st.Error)
	}
	out.cacheHit = st.Result.CacheHit
	out.energy = st.Result.Energy
	out.inspectNs = st.Result.InspectNs
	out.planNs = st.Result.PlanNs
	out.execNs = st.Result.ExecNs
	return out, nil
}

// backoff converts a 429's Retry-After header into the sleep before the
// next submit attempt: the server's hint, capped at 2s to keep the
// harness responsive. The fixed 10ms sleep survives only as the
// fallback for an absent or unparsable header.
func backoff(retryAfter string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(retryAfter))
	if err != nil || secs < 1 {
		return 10 * time.Millisecond
	}
	d := time.Duration(secs) * time.Second
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// quantile returns the q-quantile of sorted durations.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

// summarize prints one latency line for a slice of outcomes.
func summarize(label string, outs []jobOutcome) {
	if len(outs) == 0 {
		fmt.Printf("  %-7s  (none)\n", label)
		return
	}
	lats := make([]time.Duration, len(outs))
	var frontNs int64
	for i, o := range outs {
		lats[i] = o.latency
		frontNs += o.inspectNs + o.planNs
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("  %-7s  n=%-4d p50=%-10v p95=%-10v p99=%-10v mean inspect+plan=%v\n",
		label, len(outs), quantile(lats, 0.50), quantile(lats, 0.95), quantile(lats, 0.99),
		time.Duration(frontNs/int64(len(outs))))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ccload: %v\n", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "", "server address; empty starts an in-process server")
	clients := flag.Int("clients", 4, "concurrent client goroutines")
	jobs := flag.Int("jobs", 24, "total jobs to submit")
	presets := flag.String("presets", "water,benzene", "comma-separated molecule presets")
	variants := flag.String("variants", "v4,v5", "comma-separated variants")
	workers := flag.Int("workers", 1, "runtime workers requested per job")
	maxConc := flag.Int("max-concurrent", 2, "in-process server: executor slots")
	queueDepth := flag.Int("queue-depth", 16, "in-process server: queue depth")
	cacheCap := flag.Int("cache-cap", 32, "in-process server: plan cache capacity")
	flag.Parse()
	if *clients < 1 || *jobs < 1 {
		fatal(fmt.Errorf("-clients and -jobs must be positive"))
	}

	// Build the mixed workload: the cross product of presets × variants,
	// cycled over the job count. Distinct keys = the product size, so
	// expected hit rate = 1 - keys/jobs.
	var specs []serve.JobSpec
	for _, p := range strings.Split(*presets, ",") {
		for _, v := range strings.Split(*variants, ",") {
			specs = append(specs, serve.JobSpec{Preset: strings.TrimSpace(p), Variant: strings.TrimSpace(v), Workers: *workers})
		}
	}
	if len(specs) == 0 {
		fatal(fmt.Errorf("empty workload"))
	}

	base := *addr
	var inproc *serve.Server
	if base == "" {
		inproc = serve.New(serve.Config{
			MaxConcurrent: *maxConc,
			QueueDepth:    *queueDepth,
			CacheCap:      *cacheCap,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		httpSrv := &http.Server{Handler: inproc.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		defer httpSrv.Close()
		base = ln.Addr().String()
		fmt.Printf("ccload: in-process server on %s (executors %d, queue %d, cache %d)\n",
			base, *maxConc, *queueDepth, *cacheCap)
	}
	c := &client{base: "http://" + base, hc: &http.Client{Timeout: 5 * time.Minute}}

	fmt.Printf("ccload: %d jobs over %d clients, %d distinct plan keys (%s × %s)\n",
		*jobs, *clients, len(specs), *presets, *variants)

	var next atomic.Int64
	outcomes := make([]jobOutcome, *jobs)
	errs := make([]error, *jobs)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *jobs {
					return
				}
				spec := specs[i%len(specs)]
				key := spec.Preset + "/" + spec.Variant
				outcomes[i], errs[i] = c.runJob(spec, key)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	for i, err := range errs {
		if err != nil {
			fatal(fmt.Errorf("job %d: %w", i, err))
		}
	}

	// Partition and report.
	var cold, cached []jobOutcome
	var retries int
	byKey := map[string][]jobOutcome{}
	for _, o := range outcomes {
		if o.cacheHit {
			cached = append(cached, o)
		} else {
			cold = append(cold, o)
		}
		retries += o.retries
		byKey[o.key] = append(byKey[o.key], o)
	}
	hitRate := float64(len(cached)) / float64(len(outcomes))
	fmt.Printf("\nccload: %d jobs in %v — %.1f jobs/s, %d backpressure retries\n",
		len(outcomes), wall.Round(time.Millisecond), float64(len(outcomes))/wall.Seconds(), retries)
	fmt.Printf("cache: hit rate %.0f%% (%d hits / %d misses)\n", 100*hitRate, len(cached), len(cold))
	summarize("cold", cold)
	summarize("cached", cached)

	// Energy agreement: every job sharing a plan key must agree to
	// 1e-12 (they are bitwise identical under ordered accumulation).
	worst := 0.0
	for key, outs := range byKey {
		for _, o := range outs[1:] {
			if d := math.Abs(o.energy - outs[0].energy); d > worst {
				worst = d
			}
			if math.Abs(o.energy-outs[0].energy) > 1e-12 {
				fatal(fmt.Errorf("energy mismatch on %s: %.15f vs %.15f", key, o.energy, outs[0].energy))
			}
		}
	}
	fmt.Printf("energies: cold vs cached agree per key (max |diff| = %.1e)\n", worst)

	// The cache contract: a hit must not pay for inspection or planning.
	for _, o := range cached {
		if o.inspectNs != 0 || o.planNs != 0 {
			fatal(fmt.Errorf("cached job on %s paid inspect=%dns plan=%dns", o.key, o.inspectNs, o.planNs))
		}
	}
	fmt.Println("cache-hit jobs paid zero inspection+planning time")

	if inproc != nil {
		inproc.Shutdown()
		st := inproc.Stats()
		fmt.Printf("server: accepted=%d rejected=%d cache hits=%d misses=%d evictions=%d\n",
			st.Accepted, st.Rejected, st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions)
	}
	if hitRate < 0.5 {
		fatal(fmt.Errorf("hit rate %.0f%% below the 50%% acceptance bar", 100*hitRate))
	}
}
