package main

import (
	"testing"
	"time"
)

// TestBackoff is the regression test for the fixed-sleep 429 loop: the
// server's Retry-After hint must drive the sleep (capped at 2s), with
// the old 10ms fixed sleep surviving only as the parse-failure fallback.
func TestBackoff(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"1", time.Second},
		{"2", 2 * time.Second},
		{" 1 ", time.Second},
		{"30", 2 * time.Second}, // capped to keep the harness responsive
		{"", 10 * time.Millisecond},
		{"0", 10 * time.Millisecond},
		{"-3", 10 * time.Millisecond},
		{"soon", 10 * time.Millisecond},
	} {
		if got := backoff(tc.header); got != tc.want {
			t.Errorf("backoff(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}
