package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"parsec/internal/ccsd"
	"parsec/internal/cluster"
	"parsec/internal/molecule"
	"parsec/internal/tune"
)

// tuneReport is the serialized -tune output: the search result plus the
// hand-derived variants' makespans on the same machine, so the report
// shows where the tuned recipe lands in the §V progression. Everything
// in it is deterministic for a fixed seed — no wall-clock fields — so
// the committed docs/tune.json regenerates bit-identically.
type tuneReport struct {
	tune.Result
	// BaselineNs maps each named variant to its simulated makespan under
	// the tuned configuration. The search never reads these; they are
	// computed afterwards for the report and the acceptance criterion.
	BaselineNs map[string]int64 `json:"baseline_ns"`
	// Criterion records the acceptance check: a tuner started from v1
	// with no knowledge of v2..v5 must end at or below v5's makespan.
	Criterion tuneCriterion `json:"criterion"`
}

// tuneCriterion is the pass/fail record of the rediscovery check.
type tuneCriterion struct {
	Name string `json:"name"`
	Pass bool   `json:"pass"`
	Note string `json:"note"`
}

// runTune executes the recipe search, prints the climb, checks the
// rediscovery criterion, and writes the JSON report.
func runTune(sys *molecule.System, mcfg cluster.Config, cores int, start string, budget int, seed int64, out string, verbose bool) error {
	fmt.Printf("recipe autotuning on %s, %d nodes x %d cores/node (simulated)\n", sys.Name, mcfg.Nodes, cores)
	fmt.Printf("start %s, budget %d evaluations, seed %#x\n\n", start, budget, seed)

	res, err := tune.Run(tune.Config{
		Sys:          sys,
		Cluster:      mcfg,
		CoresPerNode: cores,
		Start:        start,
		Budget:       budget,
		Seed:         seed,
	})
	if err != nil {
		return err
	}

	if verbose {
		for _, e := range res.History {
			if e.Pruned {
				fmt.Printf("  r%d  %-55s bound %8.2f ms  pruned\n", e.Round, e.Recipe, float64(e.BoundNs)/1e6)
				continue
			}
			fmt.Printf("  r%d  %-55s bound %8.2f ms  makespan %8.2f ms\n",
				e.Round, e.Recipe, float64(e.BoundNs)/1e6, float64(e.MakespanNs)/1e6)
		}
		fmt.Println()
	}

	report := tuneReport{Result: *res, BaselineNs: map[string]int64{}}
	fmt.Println("hand-derived variants on the same machine:")
	for _, vs := range ccsd.Variants() {
		r, err := ccsd.RunSim(sys, vs, mcfg, ccsd.SimRunConfig{CoresPerNode: cores})
		if err != nil {
			return err
		}
		report.BaselineNs[vs.Name] = int64(r.Makespan)
		fmt.Printf("  %-3s %10.2f ms\n", vs.Name, float64(r.Makespan)/1e6)
	}

	tunedName := res.Best
	if res.BestName != "" {
		tunedName = fmt.Sprintf("%s (= %s)", res.Best, res.BestName)
	}
	fmt.Printf("\ntuned:  %s\n", tunedName)
	fmt.Printf("  start %10.2f ms  (%s)\n", float64(res.StartMakespanNs)/1e6, res.Start)
	fmt.Printf("  best  %10.2f ms  after %d evals (%d pruned statically, %d rounds)\n",
		float64(res.BestMakespanNs)/1e6, res.Evals, res.Pruned, res.Rounds)

	v5 := report.BaselineNs["v5"]
	crit := tuneCriterion{
		Name: "tuner started from v1 rediscovers a recipe at least as fast as hand-derived v5",
		Pass: res.BestMakespanNs <= v5,
		Note: fmt.Sprintf("tuned %.2f ms vs v5 %.2f ms", float64(res.BestMakespanNs)/1e6, float64(v5)/1e6),
	}
	report.Criterion = crit
	status := "PASS"
	if !crit.Pass {
		status = "FAIL"
	}
	fmt.Printf("\ncriterion [%s]: %s — %s\n", status, crit.Name, crit.Note)

	if out != "" {
		if err := writeTuneJSON(out, &report); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if !crit.Pass {
		return fmt.Errorf("tuning criterion failed: %s", crit.Note)
	}
	return nil
}

// writeTuneJSON serializes the report with stable formatting (indented,
// trailing newline) so regeneration under the same seed is
// byte-identical with the committed file.
func writeTuneJSON(path string, report *tuneReport) error {
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, buf, 0o644)
}
