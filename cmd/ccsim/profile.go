package main

import (
	"fmt"
	"os"
	"strings"

	"parsec/internal/ccsd"
	"parsec/internal/cluster"
	"parsec/internal/molecule"
	"parsec/internal/obsv"
	"parsec/internal/ptg"
	"parsec/internal/tce"
	"parsec/internal/trace"
)

// maxIdleRows bounds the per-worker idle section of each report; the
// aggregate idle line still covers every worker.
const maxIdleRows = 8

// runProfile executes the requested variants under tracing — simulated
// on the cluster, plus one real shared-memory run — and prints a full
// observability report for each: per-class duration histograms, idle
// bubbles (the quantitative form of Fig 11), communication volumes, and
// critical-path attribution. The real run uses realSys — kept small so
// real arithmetic stays fast even when the sims run at paper scale.
// jsonOut, if non-empty, additionally writes the profiles as JSON for
// regression diffing.
func runProfile(sys, realSys *molecule.System, mcfg cluster.Config, names []string, cores, workers int, jsonOut string) error {
	fmt.Printf("system: %v\n", sys)
	fmt.Printf("machine: %d nodes x %d cores/node (simulated); real run on %s with %d workers\n",
		mcfg.Nodes, cores, realSys.Name, workers)

	var profiles []*obsv.Profile
	var lastSpec ccsd.VariantSpec
	haveSpec := false
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "original" {
			p, err := profileOriginal(sys, mcfg, cores)
			if err != nil {
				return err
			}
			profiles = append(profiles, p)
			continue
		}
		spec, err := ccsd.VariantByName(name)
		if err != nil {
			return err
		}
		lastSpec, haveSpec = spec, true
		p, err := profileSimVariant(sys, name, spec, mcfg, cores)
		if err != nil {
			return fmt.Errorf("profile %s: %w", name, err)
		}
		profiles = append(profiles, p)
	}

	if haveSpec {
		p, err := profileReal(realSys, lastSpec, workers)
		if err != nil {
			return fmt.Errorf("profile real run: %w", err)
		}
		profiles = append(profiles, p)
	}

	for _, p := range profiles {
		fmt.Println()
		if err := p.Report(maxIdleRows).WriteTable(os.Stdout); err != nil {
			return err
		}
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obsv.WriteJSON(f, profiles); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonOut)
	}
	return nil
}

// profileSimVariant runs one PaRSEC variant on the simulated cluster
// with tracing, then replays the identical DAG under the measured span
// durations for critical-path attribution.
func profileSimVariant(sys *molecule.System, name string, spec ccsd.VariantSpec, mcfg cluster.Config, cores int) (*obsv.Profile, error) {
	tr := trace.New()
	rc := ccsd.SimRunConfig{CoresPerNode: cores, Trace: tr}
	res, comm, err := ccsd.RunSimComm(sys, spec, mcfg, rc)
	if err != nil {
		return nil, err
	}
	p := obsv.FromTrace(fmt.Sprintf("%s sim %s %dn x %dc", name, sys.Name, mcfg.Nodes, cores), tr)
	p.SetRamp("GEMM", tr)
	byClass := make(map[string]int64, len(res.BytesByClass))
	for k, v := range res.BytesByClass {
		byClass[k] = v
	}
	p.SetComm(obsv.CommStats{
		GetOps: comm.GetOps, GetBytes: comm.GetBytes,
		AccOps: comm.AccOps, AccBytes: comm.AccBytes,
		Transfers: int64(res.Transfers), TotalBytes: res.BytesSent,
		ByClass: byClass,
	})
	a, err := ccsd.AnalyzeVariantSim(sys, spec, mcfg, rc, measuredDurations(tr))
	if err != nil {
		return nil, fmt.Errorf("critical-path replay: %w", err)
	}
	p.SetCritical(a)
	return p, nil
}

// profileOriginal runs the CGP baseline with tracing. The baseline has
// no PTG, so its profile carries histograms, idle gaps, and GET/ACC
// volumes but no critical-path attribution.
func profileOriginal(sys *molecule.System, mcfg cluster.Config, cores int) (*obsv.Profile, error) {
	tr := trace.New()
	_, comm, err := ccsd.RunSimBaselineComm(sys, mcfg, cores, tr)
	if err != nil {
		return nil, fmt.Errorf("profile original: %w", err)
	}
	p := obsv.FromTrace(fmt.Sprintf("original sim %s %dn x %dr", sys.Name, mcfg.Nodes, cores), tr)
	p.SetRamp("GEMM", tr)
	p.SetComm(obsv.CommStats{
		GetOps: comm.GetOps, GetBytes: comm.GetBytes,
		AccOps: comm.AccOps, AccBytes: comm.AccBytes,
	})
	return p, nil
}

// profileReal runs one variant with real arithmetic on the goroutine
// runtime, profiling wall-clock spans instead of simulated time.
func profileReal(sys *molecule.System, spec ccsd.VariantSpec, workers int) (*obsv.Profile, error) {
	w := tce.Inspect(tce.T2_7(sys), nil)
	tr := trace.New()
	if _, err := ccsd.RunRealTraced(w, spec, workers, tr); err != nil {
		return nil, err
	}
	p := obsv.FromTrace(fmt.Sprintf("%s real %s, %d workers (wall time)", spec.Name, sys.Name, workers), tr)
	p.SetRamp("GEMM", tr)
	a, err := ccsd.AnalyzeVariantReal(w, spec, 0, measuredDurations(tr))
	if err != nil {
		return nil, fmt.Errorf("critical-path replay: %w", err)
	}
	p.SetCritical(a)
	return p, nil
}

// measuredDurations indexes a trace's spans by label (the canonical
// TaskRef string) so a DAG replay can charge each instance its measured
// duration. Unlabeled or unmatched instances charge zero.
func measuredDurations(tr *trace.Trace) func(ptg.TaskRef) int64 {
	byLabel := make(map[string]int64)
	for _, e := range tr.Events() {
		byLabel[e.Label] += e.Duration()
	}
	return func(ref ptg.TaskRef) int64 { return byLabel[ref.String()] }
}
