package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/cluster"
	"parsec/internal/fault"
	"parsec/internal/molecule"
	"parsec/internal/obsv"
	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/sim"
	"parsec/internal/simexec"
	"parsec/internal/tce"
)

// faultSeed fixes every injector in the sweep so the committed
// docs/faults.json regenerates bit-identically.
const faultSeed = 1833

// faultScenario is one perturbation of the seeded sweep.
type faultScenario struct {
	name string
	desc string
	cfg  *fault.Config // nil = fault-free
	// interNode enables the straggler-recovery re-dispatch path.
	interNode bool
	// commFaults marks transfer-level faults, which only exist on the PTG
	// executors' comm threads — the CGP baseline's one-sided GETs/ACCs
	// have no retry path to exercise, so it skips those scenarios.
	commFaults bool
}

// faultScenarios is the fixed scenario list: a clean reference, the
// acceptance-criterion straggler with and without re-dispatch, lossy
// transfers under retry, and GA service stalls.
func faultScenarios() []faultScenario {
	straggle := func() *fault.Config {
		return &fault.Config{Seed: faultSeed, Stragglers: []fault.Straggler{{Node: 0, Factor: 4}}}
	}
	return []faultScenario{
		{name: "fault-free", desc: "no injected faults"},
		{name: "straggler-pinned", desc: "node 0 computes 4x slower; tasks stay pinned to their affinity node",
			cfg: straggle()},
		{name: "straggler-redispatch", desc: "same straggler; idle nodes re-dispatch its queued tasks (moving their GETs)",
			cfg: straggle(), interNode: true},
		{name: "loss-retry", desc: "transfer drops and latency spikes absorbed by the comm threads' retry/backoff",
			cfg: &fault.Config{Seed: faultSeed, DropProb: 0.02, AckDropProb: 0.01,
				SpikeProb: 0.05, SpikeLatency: 200 * sim.Microsecond},
			commFaults: true},
		{name: "ga-hiccups", desc: "NXTVAL and ACC service stalls",
			cfg: &fault.Config{Seed: faultSeed, NxtValProb: 0.05, NxtValDelay: 300 * sim.Microsecond,
				AccProb: 0.02, AccDelay: 200 * sim.Microsecond}},
	}
}

// faultRow is one (scenario, series) cell of the JSON baseline.
type faultRow struct {
	Scenario      string  `json:"scenario"`
	Series        string  `json:"series"`
	Seconds       float64 `json:"seconds"`
	LossSeconds   float64 `json:"loss_seconds"`
	Retries       int     `json:"retries,omitempty"`
	Drops         int     `json:"drops,omitempty"`
	AckDrops      int     `json:"ack_drops,omitempty"`
	DupSuppressed int     `json:"dup_suppressed,omitempty"`
	BackoffSec    float64 `json:"backoff_seconds,omitempty"`
	RetransmitB   int64   `json:"retransmit_bytes,omitempty"`
	Redispatches  int     `json:"redispatches,omitempty"`
	RedispatchB   int64   `json:"redispatch_bytes,omitempty"`
	StragglerSec  float64 `json:"straggler_excess_seconds,omitempty"`
}

// faultCriterion records the tentpole's recovery claim: with the seeded
// 4x single-node straggler, the re-dispatching v4 run must lose less
// than half the span the pinned run loses against fault-free.
type faultCriterion struct {
	Series        string  `json:"series"`
	PinnedLossSec float64 `json:"pinned_loss_seconds"`
	StolenLossSec float64 `json:"redispatch_loss_seconds"`
	RecoveredFrac float64 `json:"recovered_frac"`
	Pass          bool    `json:"pass"`
}

// faultEnergy records the real-runtime reproduction check: perturbed
// schedules must still produce the reference energy to 1e-12.
type faultEnergy struct {
	System    string  `json:"system"`
	Reference float64 `json:"reference"`
	MaxDrift  float64 `json:"max_drift"`
	Pass      bool    `json:"pass"`
}

// faultsDoc is the committed docs/faults.json schema.
type faultsDoc struct {
	System    string          `json:"system"`
	Nodes     int             `json:"nodes"`
	Cores     int             `json:"cores_per_node"`
	Seed      uint64          `json:"seed"`
	Quick     bool            `json:"quick,omitempty"`
	Rows      []faultRow      `json:"rows"`
	Criterion *faultCriterion `json:"criterion,omitempty"`
	Energy    *faultEnergy    `json:"energy,omitempty"`
}

// runFaults executes the seeded fault sweep for each requested series,
// prints per-run recovery counters and slowdown attribution, verifies
// the re-dispatch criterion and the perturbed real-runtime energies,
// and (when out is non-empty) writes the JSON baseline.
func runFaults(sys *molecule.System, mcfg cluster.Config, names []string, cores int, out string, quick, verbose bool) error {
	fmt.Printf("fault-injection sweep on %s, %d nodes x %d cores/node, seed %d (simulated seconds)\n",
		sys.Name, mcfg.Nodes, cores, uint64(faultSeed))

	doc := &faultsDoc{System: sys.Name, Nodes: mcfg.Nodes, Cores: cores, Seed: faultSeed, Quick: quick}
	scenarios := faultScenarios()
	// makespan[scenario][series], for loss columns and the criterion.
	makespan := map[string]map[string]sim.Time{}
	var profiles []*obsv.Profile

	for _, sc := range scenarios {
		makespan[sc.name] = map[string]sim.Time{}
		fmt.Printf("\n-- %s: %s\n", sc.name, sc.desc)
		for _, name := range names {
			name = strings.TrimSpace(name)
			if name == "original" && (sc.commFaults || sc.interNode) {
				fmt.Printf("  %-9s skipped (the CGP baseline has no comm threads to retry or re-dispatch)\n", name)
				continue
			}
			var inj *fault.Injector
			if sc.cfg != nil {
				inj = fault.New(*sc.cfg)
			}
			t0 := time.Now()
			row := faultRow{Scenario: sc.name, Series: name}
			var mk sim.Time
			var res simexec.Result
			if name == "original" {
				var err error
				mk, err = ccsd.RunSimBaselineFaults(sys, "t2_7", mcfg, cores, nil, inj)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", sc.name, name, err)
				}
			} else {
				spec, err := ccsd.VariantByName(name)
				if err != nil {
					return err
				}
				res, err = ccsd.RunSim(sys, spec, mcfg, ccsd.SimRunConfig{
					CoresPerNode:   cores,
					Queues:         sched.PerWorkerSteal,
					Faults:         inj,
					InterNodeSteal: sc.interNode,
				})
				if err != nil {
					return fmt.Errorf("%s/%s: %w", sc.name, name, err)
				}
				mk = res.Makespan
			}
			makespan[sc.name][name] = mk
			row.Seconds = mk.Seconds()
			base, haveBase := makespan["fault-free"][name]
			if haveBase && sc.cfg != nil {
				row.LossSeconds = (mk - base).Seconds()
			}
			row.Retries, row.Drops, row.AckDrops = res.Retries, res.Drops, res.AckDrops
			row.DupSuppressed = res.DupSuppressed
			row.BackoffSec = res.BackoffTime.Seconds()
			row.RetransmitB = res.RetransmitBytes
			row.Redispatches, row.RedispatchB = res.Redispatches, res.RedispatchBytes
			if inj != nil {
				row.StragglerSec = inj.Stats().TotalStragglerExcess().Seconds()
			}
			doc.Rows = append(doc.Rows, row)
			fmt.Printf("  %-9s %8.2f s", name, row.Seconds)
			if haveBase && sc.cfg != nil {
				fmt.Printf("  (%+.2f s vs fault-free)", row.LossSeconds)
			}
			if verbose {
				fmt.Printf("  [wall %v]", time.Since(t0).Round(time.Millisecond))
			}
			fmt.Println()

			// Perturbed PTG runs get the full recovery/slowdown report.
			if name != "original" && sc.cfg != nil && haveBase {
				profiles = append(profiles, faultProfile(name, sc, res, inj, base))
			}
		}
	}

	for _, p := range profiles {
		fmt.Println()
		if err := p.Report(0).WriteTable(os.Stdout); err != nil {
			return err
		}
	}

	var firstErr error
	if crit := checkFaultCriterion(makespan, names); crit != nil {
		doc.Criterion = crit
		verdict := "PASS"
		if !crit.Pass {
			verdict = "FAIL"
			firstErr = fmt.Errorf("recovery criterion failed: %s re-dispatch loss %.2fs vs pinned loss %.2fs (want < half)",
				crit.Series, crit.StolenLossSec, crit.PinnedLossSec)
		}
		fmt.Printf("\ncriterion [%s]: %s under the 4x straggler loses %.2f s re-dispatching vs %.2f s pinned (recovered %.0f%%, want > 50%%)\n",
			verdict, crit.Series, crit.StolenLossSec, crit.PinnedLossSec, 100*crit.RecoveredFrac)
	}

	en, err := checkFaultEnergies(names, quick)
	if err != nil {
		return err
	}
	doc.Energy = en
	verdict := "PASS"
	if !en.Pass {
		verdict = "FAIL"
		if firstErr == nil {
			firstErr = fmt.Errorf("perturbed real-runtime energy drifted %g from the reference (want <= 1e-12)", en.MaxDrift)
		}
	}
	fmt.Printf("criterion [%s]: perturbed real-runtime energies on %s drift %.1e from the reference (want <= 1e-12)\n",
		verdict, en.System, en.MaxDrift)

	if out != "" {
		if dir := filepath.Dir(out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", out)
	}
	return firstErr
}

// faultProfile wraps one perturbed run's counters and the injector's
// ledger in an observability profile, so the report renders the fault
// recovery and slowdown-attribution sections.
func faultProfile(series string, sc faultScenario, res simexec.Result, inj *fault.Injector, base sim.Time) *obsv.Profile {
	p := &obsv.Profile{Name: fmt.Sprintf("%s under %s", series, sc.name), Span: int64(res.Makespan)}
	p.SetRecovery(obsv.Recovery{
		Retries: res.Retries, Drops: res.Drops, AckDrops: res.AckDrops,
		DupSuppressed: res.DupSuppressed, BackoffTime: int64(res.BackoffTime),
		RetransmitBytes: res.RetransmitBytes,
		Redispatches:    res.Redispatches, RedispatchBytes: res.RedispatchBytes,
	})
	var causes []obsv.SlowdownCause
	st := inj.Stats()
	for _, n := range st.StragglerNodes() {
		causes = append(causes, obsv.SlowdownCause{
			Cause: fmt.Sprintf("straggler n%d", n), Time: int64(st.StragglerExcess[n]),
		})
	}
	causes = append(causes,
		obsv.SlowdownCause{Cause: "latency spikes", Time: int64(st.SpikeTime)},
		obsv.SlowdownCause{Cause: "NXTVAL hiccups", Time: int64(st.NxtValTime)},
		obsv.SlowdownCause{Cause: "ACC hiccups", Time: int64(st.AccTime)},
		obsv.SlowdownCause{Cause: "retry backoff", Time: int64(res.BackoffTime)},
	)
	p.SetSlowdown(int64(base), causes)
	return p
}

// checkFaultCriterion evaluates the re-dispatch recovery claim on the
// priority variant (v4 when present, else the last PTG series run).
func checkFaultCriterion(makespan map[string]map[string]sim.Time, names []string) *faultCriterion {
	series := ""
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "original" {
			continue
		}
		series = name
		if name == "v4" {
			break
		}
	}
	if series == "" {
		return nil
	}
	base, ok1 := makespan["fault-free"][series]
	pinned, ok2 := makespan["straggler-pinned"][series]
	stolen, ok3 := makespan["straggler-redispatch"][series]
	if !ok1 || !ok2 || !ok3 || pinned <= base {
		return nil
	}
	c := &faultCriterion{
		Series:        series,
		PinnedLossSec: (pinned - base).Seconds(),
		StolenLossSec: (stolen - base).Seconds(),
	}
	c.RecoveredFrac = 1 - c.StolenLossSec/c.PinnedLossSec
	c.Pass = 2*(stolen-base) < (pinned - base)
	return c
}

// checkFaultEnergies reruns the PTG series on the real goroutine runtime
// with a straggling worker (the TaskDelay hook) and per-worker stealing,
// verifying the recovered schedules still reproduce the serial reference
// energy to 1e-12. The small system keeps real arithmetic fast — the
// check is about determinism under recovery, not scale.
func checkFaultEnergies(names []string, quick bool) (*faultEnergy, error) {
	realSys, err := molecule.Preset("water")
	if err != nil {
		return nil, err
	}
	w := tce.Inspect(tce.T2_7(realSys), nil)
	ref := ccsd.ReferenceEnergy(w)
	en := &faultEnergy{System: realSys.Name, Reference: ref, Pass: true}
	workers := 4
	if quick {
		workers = 2
	}
	delay := func(worker int, ref ptg.TaskRef) time.Duration {
		if worker == 0 {
			return 100 * time.Microsecond // the straggler
		}
		return 0
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "original" {
			continue
		}
		spec, err := ccsd.VariantByName(name)
		if err != nil {
			return nil, err
		}
		res, err := ccsd.RunRealPerturbed(w, spec, workers, sched.PerWorkerSteal, delay)
		if err != nil {
			return nil, fmt.Errorf("perturbed real run %s: %w", name, err)
		}
		if d := math.Abs(res.Energy - ref); d > en.MaxDrift {
			en.MaxDrift = d
		}
	}
	en.Pass = en.MaxDrift <= 1e-12
	return en, nil
}
