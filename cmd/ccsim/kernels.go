package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"

	"parsec/internal/metrics"
	"parsec/internal/molecule"
	"parsec/internal/tce"
	"parsec/internal/team"
	"parsec/internal/tensor"
)

// The -kernels mode: benchmark the dense-kernel layer (blocked GEMM —
// serial and team-split — and the SORT_4 permutations) over the tile
// shapes the real workloads produce, and emit the result as the
// committed BENCH_kernels.json baseline. Shapes are harvested from the
// inspection phase of each preset, so the sweep tracks the workloads
// rather than a hand-picked list. With -kernelsbaseline the fresh sweep
// is diffed against a committed baseline and >10% ns/op regressions
// fail the run (the make bench-kernels guard).

// kernelPresets are the workloads the sweep harvests shapes from.
var kernelPresets = []string{"water", "benzene", "betacarotene"}

// maxShapesPerKind caps how many distinct shapes per (workload, kernel)
// are benchmarked, most-frequent first.
const maxShapesPerKind = 4

// gemmParWorkers is the team size the gemm-par rows split across,
// matching the acceptance target of four lent workers.
const gemmParWorkers = 4

// gemmParMinProduct mirrors the m*n*k cutoff below which GemmP runs
// serially (tensor's gemmParCutoff); smaller shapes get no gemm-par row
// because it would duplicate the gemm row.
const gemmParMinProduct = 96 * 96 * 96

type gemmShape struct{ m, n, k int }

type sortShape struct {
	src  [4]int
	perm [4]int
}

// harvestShapes runs the inspection phase for a preset and returns its
// distinct GEMM and SORT_4 shapes with occurrence counts.
func harvestShapes(preset string) (map[gemmShape]int, map[sortShape]int, error) {
	sys, err := molecule.Preset(preset)
	if err != nil {
		return nil, nil, err
	}
	w := tce.Inspect(tce.T2_7(sys), nil)
	gemms := map[gemmShape]int{}
	sorts := map[sortShape]int{}
	for _, c := range w.Chains {
		for _, g := range c.Gemms {
			gemms[gemmShape{g.Op.M, g.Op.N, g.Op.K}]++
		}
		for _, s := range c.Sorts {
			sorts[sortShape{src: c.CDims, perm: s.Perm}]++
		}
	}
	return gemms, sorts, nil
}

// topShapes returns the keys of counts sorted by descending count (ties
// by the render string for determinism), truncated to maxShapesPerKind.
func topShapes[K comparable](counts map[K]int, render func(K) string) []K {
	keys := make([]K, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return render(keys[i]) < render(keys[j])
	})
	if len(keys) > maxShapesPerKind {
		keys = keys[:maxShapesPerKind]
	}
	return keys
}

func benchGemmShape(s gemmShape) testing.BenchmarkResult {
	// The production call shape: dgemm('T','N') per Fig 1, beta = 1.
	a := tensor.NewMatrix(s.k, s.m)
	b := tensor.NewMatrix(s.k, s.n)
	c := tensor.NewMatrix(s.m, s.n)
	ta := tensor.NewTile4(s.k, s.m, 1, 1)
	ta.FillRandom(1, 1)
	copy(a.Data, ta.Data)
	tb := tensor.NewTile4(s.k, s.n, 1, 1)
	tb.FillRandom(2, 1)
	copy(b.Data, tb.Data)
	return testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Gemm(true, false, 1, a, b, 1, c)
		}
	})
}

func benchGemmParShape(s gemmShape, pool *team.Pool) testing.BenchmarkResult {
	a := tensor.NewMatrix(s.k, s.m)
	b := tensor.NewMatrix(s.k, s.n)
	c := tensor.NewMatrix(s.m, s.n)
	ta := tensor.NewTile4(s.k, s.m, 1, 1)
	ta.FillRandom(1, 1)
	copy(a.Data, ta.Data)
	tb := tensor.NewTile4(s.k, s.n, 1, 1)
	tb.FillRandom(2, 1)
	copy(b.Data, tb.Data)
	return testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.GemmP(pool, nil, true, false, 1, a, b, 1, c)
		}
	})
}

func benchSortShape(s sortShape) testing.BenchmarkResult {
	src := tensor.NewTile4(s.src[0], s.src[1], s.src[2], s.src[3])
	src.FillRandom(3, 1)
	d := src.SortedDims(s.perm)
	dst := tensor.NewTile4(d[0], d[1], d[2], d[3])
	return testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Sort4(dst, src, s.perm, -1)
		}
	})
}

func benchSort4AddShape(s sortShape) testing.BenchmarkResult {
	// The production accumulate form: the merged SORT body folds every
	// permutation of a chain result straight into one destination.
	src := tensor.NewTile4(s.src[0], s.src[1], s.src[2], s.src[3])
	src.FillRandom(3, 1)
	d := src.SortedDims(s.perm)
	dst := tensor.NewTile4(d[0], d[1], d[2], d[3])
	return testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Sort4Add(dst, src, s.perm, -1)
		}
	})
}

// runKernels executes the sweep and writes the JSON baseline to outPath
// (stdout table always printed). A non-empty basePath loads a committed
// baseline and fails the run on >10% ns/op regressions.
func runKernels(outPath, basePath string, verbose bool) error {
	report := &metrics.KernelReport{
		Title:     "dense-kernel sweep over real workload tile shapes",
		GoVersion: runtime.Version(),
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Tier:      tensor.ActiveKernelTier().String(),
	}
	tp := team.NewPool(gemmParWorkers)
	defer tp.Close()
	for _, preset := range kernelPresets {
		gemms, sorts, err := harvestShapes(preset)
		if err != nil {
			return err
		}
		for _, s := range topShapes(gemms, func(g gemmShape) string {
			return fmt.Sprintf("%08dx%08dx%08d", g.m, g.n, g.k)
		}) {
			if verbose {
				fmt.Fprintf(os.Stderr, "  gemm %s TN m=%d n=%d k=%d...\n", preset, s.m, s.n, s.k)
			}
			r := benchGemmShape(s)
			bytes := int64(8 * (s.m*s.k + s.k*s.n + s.m*s.n))
			ns := float64(r.NsPerOp())
			report.Results = append(report.Results, metrics.KernelResult{
				Kernel:     "gemm",
				Shape:      fmt.Sprintf("TN m=%d n=%d k=%d", s.m, s.n, s.k),
				Workload:   preset,
				Count:      gemms[s],
				Iters:      r.N,
				NsPerOp:    ns,
				BytesPerOp: bytes,
				MBPerSec:   float64(bytes) / ns * 1e3,
				GFlops:     float64(tensor.GemmFlops(s.m, s.n, s.k)) / ns,
			})
			if s.m*s.n*s.k < gemmParMinProduct {
				continue
			}
			if verbose {
				fmt.Fprintf(os.Stderr, "  gemm-par %s TN m=%d n=%d k=%d...\n", preset, s.m, s.n, s.k)
			}
			rp := benchGemmParShape(s, tp)
			nsp := float64(rp.NsPerOp())
			report.Results = append(report.Results, metrics.KernelResult{
				Kernel:     "gemm-par",
				Shape:      fmt.Sprintf("TN m=%d n=%d k=%d w=%d", s.m, s.n, s.k, gemmParWorkers),
				Workload:   preset,
				Count:      gemms[s],
				Iters:      rp.N,
				NsPerOp:    nsp,
				BytesPerOp: bytes,
				MBPerSec:   float64(bytes) / nsp * 1e3,
				GFlops:     float64(tensor.GemmFlops(s.m, s.n, s.k)) / nsp,
			})
		}
		for _, s := range topShapes(sorts, func(ss sortShape) string {
			return fmt.Sprintf("%v%v", ss.src, ss.perm)
		}) {
			if verbose {
				fmt.Fprintf(os.Stderr, "  sort4 %s %v perm=%v...\n", preset, s.src, s.perm)
			}
			r := benchSortShape(s)
			elems := s.src[0] * s.src[1] * s.src[2] * s.src[3]
			bytes := tensor.Sort4Bytes(elems)
			ns := float64(r.NsPerOp())
			shape := fmt.Sprintf("%dx%dx%dx%d perm=%v",
				s.src[0], s.src[1], s.src[2], s.src[3], s.perm)
			report.Results = append(report.Results, metrics.KernelResult{
				Kernel:     "sort4",
				Shape:      shape,
				Workload:   preset,
				Count:      sorts[s],
				Iters:      r.N,
				NsPerOp:    ns,
				BytesPerOp: bytes,
				MBPerSec:   float64(bytes) / ns * 1e3,
			})
			if verbose {
				fmt.Fprintf(os.Stderr, "  sort4add %s %v perm=%v...\n", preset, s.src, s.perm)
			}
			ra := benchSort4AddShape(s)
			nsa := float64(ra.NsPerOp())
			report.Results = append(report.Results, metrics.KernelResult{
				Kernel:     "sort4add",
				Shape:      shape,
				Workload:   preset,
				Count:      sorts[s],
				Iters:      ra.N,
				NsPerOp:    nsa,
				BytesPerOp: bytes,
				MBPerSec:   float64(bytes) / nsa * 1e3,
			})
		}
	}
	if err := report.WriteTable(os.Stdout); err != nil {
		return err
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteJSON(io.Writer(f)); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", outPath)
	}
	if basePath != "" {
		base, err := readKernelBaseline(basePath)
		if err != nil {
			return err
		}
		msgs := report.Compare(base, 0.10)
		if len(msgs) == 0 {
			fmt.Printf("no regressions >10%% vs %s\n", basePath)
			return nil
		}
		for _, m := range msgs {
			fmt.Fprintf(os.Stderr, "regression: %s\n", m)
		}
		return fmt.Errorf("%d kernel rows regressed >10%% vs %s", len(msgs), basePath)
	}
	return nil
}

// readKernelBaseline loads a committed BENCH_kernels.json.
func readKernelBaseline(path string) (*metrics.KernelReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r metrics.KernelReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
