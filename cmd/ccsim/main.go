// Command ccsim regenerates the paper's Fig 9 experiment: the execution
// time of the icsd_t2_7 CCSD subroutine on a simulated 32-node cluster,
// for the original NWChem code and the five PaRSEC variants of §IV-A,
// across a sweep of cores per node. It prints the Fig 9 table, a CSV
// series, and the derived §V claims (speedups, crossover, spread).
//
// Usage:
//
//	ccsim [-preset betacarotene] [-nodes 32] [-cores 1,3,7,11,15]
//	      [-variants original,v1,v2,v3,v4,v5] [-csv out.csv] [-quick]
//	      [-sched [-schedworkers 1,2,4,8]]
//
// -sched switches to the shared-memory scheduler sweep: the variants run
// with real arithmetic on the goroutine runtime across every ready-queue
// mode and the -schedworkers counts, printing the scheduler counters
// (steals, parks, wakes, queue depth, load imbalance) instead of Fig 9.
//
// -faults switches to the seeded fault-injection sweep: each series runs
// fault-free and under stragglers, transfer loss, and GA-service
// hiccups, printing recovery counters and slowdown attribution, checking
// the re-dispatch recovery criterion and the perturbed real-runtime
// energies, and writing docs/faults.json.
//
// -real-dist N switches to the distributed smoke run: the variants
// execute with real arithmetic across N worker OS processes talking to
// this process's Global Arrays coordinator over loopback sockets
// (benzene by default), and each energy is checked against the
// single-process shared-memory runtime to 1e-12.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/cluster"
	"parsec/internal/metrics"
	"parsec/internal/molecule"
	"parsec/internal/netrun"
	"parsec/internal/sched"
	"parsec/internal/sim"
	"parsec/internal/tce"
)

func main() {
	// A process launched by -real-dist runs one worker rank and exits
	// here; everything below is the launcher side.
	netrun.MaybeWorkerMain()

	preset := flag.String("preset", "betacarotene", "molecule preset: water, benzene, betacarotene")
	nodes := flag.Int("nodes", 32, "number of nodes (paper: 32)")
	coresList := flag.String("cores", "1,3,7,11,15", "comma-separated cores/node sweep (paper: 1,3,7,11,15)")
	variants := flag.String("variants", "original,v1,v2,v3,v4,v5", "comma-separated series to run")
	csvPath := flag.String("csv", "", "also write the series as CSV to this file")
	quick := flag.Bool("quick", false, "shrink to benzene/8 nodes for a fast smoke run")
	verbose := flag.Bool("v", false, "print per-run progress")
	sweep := flag.String("sweep", "", "run an ablation sweep instead of the Fig 9 table: gaservice, nic, contention, stride, segheight")
	sweepCores := flag.Int("sweepcores", 7, "cores/node used by -sweep runs")
	sched := flag.Bool("sched", false, "run the shared-memory scheduler sweep (real execution) and print per-queue-mode scheduler stats")
	schedWorkers := flag.String("schedworkers", "1,2,4,8", "comma-separated worker counts for -sched")
	kernels := flag.Bool("kernels", false, "benchmark the dense kernels over real workload tile shapes")
	kernelsOut := flag.String("kernelsout", "BENCH_kernels.json", "JSON baseline path for -kernels (empty to skip writing)")
	kernelsBaseline := flag.String("kernelsbaseline", "", "committed baseline to diff the -kernels sweep against; >10% ns/op regressions fail the run")
	profile := flag.Bool("profile", false, "print observability profiles (duration histograms, idle bubbles, comm volumes, critical path) instead of Fig 9")
	profileOut := flag.String("profileout", "", "also write the -profile results as JSON to this file")
	profileCores := flag.Int("profilecores", 7, "cores/node for the simulated -profile runs")
	profileWorkers := flag.Int("profileworkers", 4, "worker goroutines for the real -profile run")
	profileReal := flag.String("profilereal", "benzene", "molecule preset for the real-runtime -profile run (kept small: real arithmetic at paper scale needs tens of GB and ~an hour per core)")
	faults := flag.Bool("faults", false, "run the seeded fault-injection sweep (stragglers, transfer loss, GA hiccups) across original/v2/v4 and check the recovery criterion")
	faultsOut := flag.String("faultsout", "", "write the -faults results as JSON to this file (default docs/faults.json, or no file under -quick)")
	faultCores := flag.Int("faultcores", 7, "cores/node for the -faults runs")
	realDist := flag.Int("real-dist", 0, "run the variants with real arithmetic across N worker OS processes over loopback sockets and check each energy against the single-process runtime")
	distWorkers := flag.Int("distworkers", 2, "worker goroutines per rank process for -real-dist")
	tuneRun := flag.Bool("tune", false, "search the recipe space with the simulator from -tunestart and check the best shape against hand-derived v5")
	tuneOut := flag.String("tuneout", "", "write the -tune result as JSON to this file (default docs/tune.json, or no file under -quick)")
	tuneBudget := flag.Int("tunebudget", 64, "simulator-evaluation budget for -tune")
	tuneSeed := flag.Int64("tuneseed", 1833, "seed for the -tune neighbor-order shuffle (fixed seed => bit-identical output)")
	tuneStart := flag.String("tunestart", "v1", "recipe the -tune climb starts from (name or flat grammar)")
	tuneCores := flag.Int("tunecores", 7, "cores/node for the -tune runs")
	flag.Parse()

	// Validate the enumerated flags up front so a typo fails with the
	// accepted values listed instead of deep inside a run.
	if err := validatePreset("preset", *preset); err != nil {
		fatal(err)
	}
	if err := validatePreset("profilereal", *profileReal); err != nil {
		fatal(err)
	}
	if err := validateSweep(*sweep); err != nil {
		fatal(err)
	}
	if err := validateVariants(*variants); err != nil {
		fatal(err)
	}
	if _, err := ccsd.VariantByName(*tuneStart); err != nil {
		fatal(fmt.Errorf("bad -tunestart: %w", err))
	}

	if *kernels {
		if err := runKernels(*kernelsOut, *kernelsBaseline, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	if *quick {
		*preset = "benzene"
		if *faults || *tuneRun {
			// benzene at 8 nodes leaves the 7-core workers underfed: a
			// straggler barely queues anything, so re-dispatch has nothing
			// to recover and the criteria are meaningless. uracil keeps the
			// smoke run subsecond with a real backlog; the tuner needs the
			// same backlog for the variant ordering to show.
			*preset = "uracil"
		}
		*nodes = 8
	}
	if (*sched || *profile) && !flagWasSet("preset") && !*quick {
		// Real arithmetic at beta-carotene scale takes minutes per cell;
		// the sweeps that execute for real default to the small system.
		*preset = "water"
	}
	if *faults && !flagWasSet("variants") {
		// The fault sweep contrasts the NXTVAL baseline with the
		// no-priority and priority PTG executors, as the recovery layer's
		// Fig 9 companions.
		*variants = "original,v2,v4"
	}
	if *profile && !flagWasSet("variants") {
		// v2 vs v4 is the paper's Fig 11 comparison: identical graphs, with
		// and without priorities, so the startup bubble shows up directly in
		// the idle section. The original baseline adds the Figs 12/13
		// communication signature (GET/ACC volumes, no dataflow deliveries).
		*variants = "original,v2,v4"
	}
	if *realDist > 0 {
		if !flagWasSet("preset") {
			// Real arithmetic at beta-carotene scale is out of reach for a
			// smoke-sized distributed run; benzene is the acceptance system.
			*preset = "benzene"
		}
		if !flagWasSet("variants") {
			*variants = "v2,v5"
		}
		if err := runRealDist(*preset, splitVariants(*variants), *realDist, *distWorkers, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	sys, err := molecule.Preset(*preset)
	if err != nil {
		fatal(err)
	}
	cores, err := parseInts(*coresList)
	if err != nil {
		fatal(err)
	}
	names := splitVariants(*variants)

	if *tuneRun {
		out := *tuneOut
		if out == "" && !flagWasSet("tuneout") && !*quick {
			out = "docs/tune.json"
		}
		mcfg := cluster.CascadeLike()
		mcfg.Nodes = *nodes
		if err := runTune(sys, mcfg, *tuneCores, *tuneStart, *tuneBudget, *tuneSeed, out, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	if *faults {
		out := *faultsOut
		if out == "" && !flagWasSet("faultsout") && !*quick {
			out = "docs/faults.json"
		}
		mcfg := cluster.CascadeLike()
		mcfg.Nodes = *nodes
		if err := runFaults(sys, mcfg, names, *faultCores, out, *quick, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	if *profile {
		mcfg := cluster.CascadeLike()
		mcfg.Nodes = *nodes
		realSys, err := molecule.Preset(*profileReal)
		if err != nil {
			fatal(err)
		}
		if err := runProfile(sys, realSys, mcfg, names, *profileCores, *profileWorkers, *profileOut); err != nil {
			fatal(err)
		}
		return
	}

	if *sched {
		workerCounts, err := parseInts(*schedWorkers)
		if err != nil {
			fatal(err)
		}
		if err := runSchedSweep(sys, names, workerCounts); err != nil {
			fatal(err)
		}
		return
	}

	mcfg := cluster.CascadeLike()
	mcfg.Nodes = *nodes

	if *sweep != "" {
		if err := runSweep(sys, mcfg, *sweep, *sweepCores, names); err != nil {
			fatal(err)
		}
		return
	}

	w := tce.Inspect(tce.T2_7(sys), nil)
	fmt.Printf("system: %v\n", sys)
	fmt.Printf("workload: %v\n", w.Stats())
	fmt.Printf("machine: %d nodes, %.0f GFlop/s/core (contention %.2f), NIC %.1f GB/s, GA service %.2f GB/s\n\n",
		mcfg.Nodes, mcfg.CoreGFlops, mcfg.GemmContention, mcfg.NICBWBytes/1e9, mcfg.GAServiceBW/1e9)

	fig := &metrics.Fig9{
		Title: fmt.Sprintf("Fig 9: CCSD icsd_t2_7() on %d nodes using %s (simulated seconds)", *nodes, sys.Name),
		Cores: cores,
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		s := metrics.Series{Name: name, Times: map[int]float64{}}
		for _, c := range cores {
			t0 := time.Now()
			sec, err := runOne(sys, name, mcfg, c)
			if err != nil {
				fatal(fmt.Errorf("%s @%d cores: %w", name, c, err))
			}
			s.Times[c] = sec
			if *verbose {
				fmt.Printf("  %-9s %2d cores/node: %8.2f s  (wall %v)\n", name, c, sec, time.Since(t0).Round(time.Millisecond))
			}
		}
		fig.Add(s)
	}

	fmt.Println()
	if err := fig.WriteTable(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
	claims, err := metrics.DeriveClaims(fig, cores[len(cores)-1])
	if err == nil {
		fmt.Print(claims)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := fig.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func runOne(sys *molecule.System, name string, mcfg cluster.Config, cores int) (float64, error) {
	if name == "original" {
		mk, err := ccsd.RunSimBaseline(sys, mcfg, cores, nil)
		return mk.Seconds(), err
	}
	spec, err := ccsd.VariantByName(name)
	if err != nil {
		return 0, err
	}
	res, err := ccsd.RunSim(sys, spec, mcfg, ccsd.SimRunConfig{CoresPerNode: cores})
	return res.Makespan.Seconds(), err
}

// runSchedSweep executes the requested variants on the shared-memory
// goroutine runtime with real arithmetic, across every ready-queue mode
// and worker count, and prints the scheduler counters (steals, parks,
// wakes, queue depth, load imbalance) — the intra-node §IV-D behavior
// the distributed simulation abstracts away.
func runSchedSweep(sys *molecule.System, names []string, workerCounts []int) error {
	w := tce.Inspect(tce.T2_7(sys), nil)
	fmt.Printf("system: %v\n", sys)
	fmt.Printf("workload: %v\n", w.Stats())
	// The caveat travels with the numbers: this output is committed as a
	// docs artifact and read without the generating command at hand.
	fmt.Println(`note: real execution; numbers vary with the host. steals is hits/attempts
("-": the mode never probes). imbalance is max/mean per-worker tasks — near 1
with real parallelism, approaching W when one worker monopolizes the run
(e.g. on a 1-vCPU container). DESIGN.md section 6 documents the scheduler.`)
	fmt.Println()

	modes := []struct {
		name string
		q    sched.QueueMode
	}{
		{"shared", sched.SharedQueue},
		{"pinned", sched.PerWorker},
		{"pinned-steal", sched.PerWorkerSteal},
	}
	tbl := &metrics.SchedTable{
		Title: fmt.Sprintf("shared-memory scheduler sweep on %s (real execution, wall seconds)", sys.Name),
	}
	ref := ccsd.ReferenceEnergy(w)
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "original" {
			continue // the baseline has no PTG to schedule
		}
		spec, err := ccsd.VariantByName(name)
		if err != nil {
			return err
		}
		for _, m := range modes {
			for _, workers := range workerCounts {
				res, err := ccsd.RunRealQueued(w, spec, workers, m.q)
				if err != nil {
					return fmt.Errorf("%s/%s @%d workers: %w", name, m.name, workers, err)
				}
				if d := res.Energy - ref; d > 1e-9 || d < -1e-9 {
					return fmt.Errorf("%s/%s @%d workers: energy drift %g", name, m.name, workers, d)
				}
				rep := res.Report
				tbl.Add(metrics.SchedRow{
					Config:         fmt.Sprintf("%s/%s", name, m.name),
					Workers:        rep.Workers,
					Tasks:          rep.Tasks,
					Seconds:        rep.Elapsed.Seconds(),
					StealAttempts:  rep.Sched.StealAttempts,
					Steals:         rep.Sched.Steals,
					Parks:          rep.Sched.Parks,
					Wakes:          rep.Sched.Wakes,
					MaxQueueDepth:  rep.Sched.MaxQueueDepth,
					PerWorkerTasks: rep.Sched.PerWorkerTasks,
				})
			}
		}
	}
	return tbl.WriteTable(os.Stdout)
}

// sweepNames lists the ablation sweeps runSweep implements.
var sweepNames = []string{"gaservice", "nic", "contention", "stride", "segheight"}

// validatePreset rejects unknown molecule presets with the accepted
// names listed, so a typo fails before any workload is built.
func validatePreset(flagName, name string) error {
	for _, n := range molecule.PresetNames() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown -%s %q (accepted: %s)", flagName, name, strings.Join(molecule.PresetNames(), ", "))
}

// validateSweep rejects unknown ablation names (empty means no sweep).
func validateSweep(name string) error {
	if name == "" {
		return nil
	}
	for _, n := range sweepNames {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown -sweep %q (accepted: %s)", name, strings.Join(sweepNames, ", "))
}

// variantNames lists the named -variants entries: the CGP baseline
// plus every PTG variant. Flat recipe strings are accepted too — see
// splitVariants and xform.Grammar.
func variantNames() []string {
	names := []string{"original"}
	for _, v := range ccsd.Variants() {
		names = append(names, v.Name)
	}
	return names
}

// splitVariants parses a -variants list into series entries. Terms are
// comma-separated; consecutive key=value terms (the flat recipe
// grammar) merge into one recipe entry, so
//
//	-variants original,v5,seg=1,tree=3,fission=none
//
// is three series: original, v5, and the derived recipe. A ";" starts a
// new entry unconditionally, for lists of adjacent recipes that would
// otherwise merge ("seg=1;seg=2").
func splitVariants(csv string) []string {
	var out []string
	for _, group := range strings.Split(csv, ";") {
		inRecipe := false
		for _, term := range strings.Split(group, ",") {
			term = strings.TrimSpace(term)
			if inRecipe && strings.Contains(term, "=") {
				out[len(out)-1] += "," + term
				continue
			}
			out = append(out, term)
			inRecipe = strings.Contains(term, "=")
		}
	}
	return out
}

// validateVariants rejects malformed or unknown -variants lists up
// front, so a typo fails with the accepted names and the full recipe
// grammar instead of deep inside a run.
func validateVariants(csv string) error {
	for _, name := range splitVariants(csv) {
		if name == "original" {
			continue
		}
		if _, err := ccsd.VariantByName(name); err != nil {
			return fmt.Errorf("bad -variants entry %q in %q: %w", name, csv, err)
		}
	}
	return nil
}

// flagWasSet reports whether the named flag was given on the command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad cores list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccsim:", err)
	os.Exit(1)
}

// sweepPoint is one configuration of an ablation sweep.
type sweepPoint struct {
	label string
	mcfg  cluster.Config
	rc    ccsd.SimRunConfig
}

// runSweep executes the named ablation: one machine/run parameter varied
// across a fixed range, all requested series re-run at each point.
func runSweep(sys *molecule.System, base cluster.Config, name string, cores int, names []string) error {
	var points []sweepPoint
	mk := func(label string, mutate func(*cluster.Config, *ccsd.SimRunConfig)) {
		cfg := base
		rc := ccsd.SimRunConfig{CoresPerNode: cores}
		mutate(&cfg, &rc)
		points = append(points, sweepPoint{label: label, mcfg: cfg, rc: rc})
	}
	switch name {
	case "gaservice":
		for _, bw := range []float64{0.05e9, 0.1e9, 0.21e9, 0.5e9, 1e9} {
			bw := bw
			mk(fmt.Sprintf("%.2fGB/s", bw/1e9), func(c *cluster.Config, _ *ccsd.SimRunConfig) { c.GAServiceBW = bw })
		}
	case "nic":
		for _, bw := range []float64{0.3e9, 0.6e9, 1.2e9, 2.4e9, 5e9} {
			bw := bw
			mk(fmt.Sprintf("%.1fGB/s", bw/1e9), func(c *cluster.Config, _ *ccsd.SimRunConfig) { c.NICBWBytes = bw })
		}
	case "contention":
		for _, b := range []float64{0, 0.1, 0.286, 0.5, 1} {
			b := b
			mk(fmt.Sprintf("beta=%.3f", b), func(c *cluster.Config, _ *ccsd.SimRunConfig) { c.GemmContention = b })
		}
	case "stride":
		for _, us := range []int{0, 10, 47, 100, 200} {
			us := us
			mk(fmt.Sprintf("%dus", us), func(c *cluster.Config, _ *ccsd.SimRunConfig) {
				c.GAStrideLatency = sim.Time(us) * sim.Microsecond
			})
		}
	case "segheight":
		for _, h := range []int{1, 2, 4, 8, 1 << 20} {
			h := h
			label := fmt.Sprintf("h=%d", h)
			if h == 1<<20 {
				label = "h=full"
			}
			mk(label, func(_ *cluster.Config, rc *ccsd.SimRunConfig) { rc.SegmentHeight = h })
		}
	default:
		return fmt.Errorf("unknown sweep %q (accepted: %s)", name, strings.Join(sweepNames, ", "))
	}

	fmt.Printf("ablation sweep %q on %s, %d nodes x %d cores/node (simulated seconds)\n\n", name, sys.Name, base.Nodes, cores)
	header := fmt.Sprintf("%-12s", "point")
	for _, n := range names {
		header += fmt.Sprintf("%12s", strings.TrimSpace(n))
	}
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)))
	for _, pt := range points {
		row := fmt.Sprintf("%-12s", pt.label)
		for _, n := range names {
			n = strings.TrimSpace(n)
			var sec float64
			var err error
			if n == "original" {
				var t sim.Time
				t, err = ccsd.RunSimBaseline(sys, pt.mcfg, pt.rc.CoresPerNode, nil)
				sec = t.Seconds()
			} else {
				var spec ccsd.VariantSpec
				spec, err = ccsd.VariantByName(n)
				if err == nil {
					var res simexecResult
					res, err = runVariant(sys, spec, pt.mcfg, pt.rc)
					sec = res
				}
			}
			if err != nil {
				return fmt.Errorf("%s @%s: %w", n, pt.label, err)
			}
			row += fmt.Sprintf("%12.2f", sec)
		}
		fmt.Println(row)
	}
	return nil
}

type simexecResult = float64

func runVariant(sys *molecule.System, spec ccsd.VariantSpec, mcfg cluster.Config, rc ccsd.SimRunConfig) (float64, error) {
	res, err := ccsd.RunSim(sys, spec, mcfg, rc)
	if err != nil {
		return 0, err
	}
	return res.Makespan.Seconds(), nil
}
