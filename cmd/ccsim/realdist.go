package main

import (
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/molecule"
	"parsec/internal/netrun"
	"parsec/internal/tce"
)

// distEnergyTol is the acceptance bound: distributing a run across
// processes may move work, never the energy.
const distEnergyTol = 1e-12

// runRealDist executes the requested variants with real arithmetic
// across ranks OS processes over loopback sockets — the coordinator and
// the Global Arrays server stay in this process, each worker process is
// one rank re-executing this binary (see netrun.MaybeWorkerMain in
// main). Each variant's distributed energy is checked against the
// single-process runtime to 1e-12 and its wire counters feed the same
// observability report the simulator and the shared-memory runtime
// print.
func runRealDist(preset string, names []string, ranks, workers int, verbose bool) error {
	sys, err := molecule.Preset(preset)
	if err != nil {
		return err
	}
	w := tce.Inspect(tce.T2_7(sys), nil)
	fmt.Printf("real distributed run: %s across %d worker processes x %d workers each (+ GA coordinator)\n",
		sys, ranks, workers)
	fmt.Printf("%-8s %20s %12s %10s %8s %10s %10s %9s\n",
		"variant", "energy", "|d-single|", "elapsed", "tasks", "activ.B", "acc.B", "takeover")

	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "original" {
			// The NXTVAL baseline is a simulator series; it has no PTG
			// graph to distribute.
			fmt.Printf("%-8s %20s\n", name, "(simulated series; skipped)")
			continue
		}
		spec, err := ccsd.VariantByName(name)
		if err != nil {
			return err
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "# %s: single-process reference...\n", name)
		}
		ref, err := ccsd.RunReal(w, spec, workers)
		if err != nil {
			return fmt.Errorf("%s reference: %w", name, err)
		}
		job := netrun.JobSpec{Preset: preset, Variant: name}
		pol, err := job.Policy()
		if err != nil {
			return err
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "# %s: launching %d processes...\n", name, ranks)
		}
		l, err := netrun.StartProcesses(netrun.Config{
			Ranks:    ranks,
			Workers:  workers,
			Policy:   pol,
			Deadline: 10 * time.Minute,
		}, job)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		res, err := l.Wait()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		diff := math.Abs(res.Energy - ref.Energy)
		fmt.Printf("%-8s %20.12f %12.3e %10s %8d %10d %10d %9d\n",
			name, res.Energy, diff, res.Elapsed.Round(time.Millisecond),
			res.Tasks, res.Comm.TotalBytes, res.Comm.AccBytes, res.Takeovers)
		if diff > distEnergyTol {
			return fmt.Errorf("%s: distributed energy %.15f deviates from single-process %.15f by %.3e (> %g)",
				name, res.Energy, ref.Energy, diff, distEnergyTol)
		}
		if verbose {
			fmt.Println()
			if err := res.Profile(fmt.Sprintf("%s %s x%d-proc", preset, name, ranks)).
				Report(maxIdleRows).WriteTable(os.Stdout); err != nil {
				return err
			}
		}
	}
	fmt.Printf("ok: every distributed energy matches its single-process run to %g\n", distEnergyTol)
	return nil
}
