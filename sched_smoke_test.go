package parsec

import (
	"fmt"
	"testing"

	"parsec/internal/runtime"
)

// TestSchedBenchmarkSmoke exercises the contention-benchmark graphs once
// per queue mode inside the ordinary test run, so a scheduler regression
// that would corrupt or hang the benchmarks fails CI instead of only
// surfacing when someone runs `make bench`. Zero spin keeps it fast: the
// whole point of the graphs is to stress dispatch, not compute.
func TestSchedBenchmarkSmoke(t *testing.T) {
	for _, mode := range schedQueueModes {
		mode := mode
		t.Run("fanout/"+mode.name, func(t *testing.T) {
			const tasks = 256
			rep, err := runSchedGraph(schedFanoutGraph(tasks, 0), 8, mode.q)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Tasks != tasks+1 {
				t.Errorf("tasks = %d, want %d", rep.Tasks, tasks+1)
			}
			checkSchedStats(t, rep)
		})
		t.Run("chains/"+mode.name, func(t *testing.T) {
			const chains, length = 16, 8
			rep, err := runSchedGraph(schedChainsGraph(chains, length, 0), 8, mode.q)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Tasks != chains*length {
				t.Errorf("tasks = %d, want %d", rep.Tasks, chains*length)
			}
			checkSchedStats(t, rep)
		})
	}
}

// checkSchedStats asserts the scheduler's accounting is self-consistent:
// every executed task is attributed to exactly one worker, and the
// counters that feed the -sched report are well-formed.
func checkSchedStats(t *testing.T, rep runtime.Report) {
	t.Helper()
	var sum int64
	for _, n := range rep.Sched.PerWorkerTasks {
		if n < 0 {
			t.Errorf("negative per-worker task count: %v", rep.Sched.PerWorkerTasks)
		}
		sum += n
	}
	if sum != int64(rep.Tasks) {
		t.Errorf("sum(PerWorkerTasks) = %d, want %d", sum, rep.Tasks)
	}
	if rep.Sched.Steals > rep.Sched.StealAttempts {
		t.Errorf("steals %d > attempts %d", rep.Sched.Steals, rep.Sched.StealAttempts)
	}
	if rep.Sched.MaxQueueDepth < 1 {
		t.Errorf("max queue depth = %d, want >= 1", rep.Sched.MaxQueueDepth)
	}
	if rep.Sched.String() == "" {
		t.Error("empty stats string")
	}
	if fmt.Sprint(rep.Sched.PerWorkerTasks) == "" {
		t.Error("unprintable per-worker counts")
	}
}
