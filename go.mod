module parsec

go 1.22
