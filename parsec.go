// Package parsec is a Go reimplementation of the system described in
// "PaRSEC in Practice: Optimizing a Legacy Chemistry Application through
// Distributed Task-Based Execution" (Danalis, Jagode, Bosilca, Dongarra;
// IEEE CLUSTER 2015): a Parameterized-Task-Graph (PTG) dataflow runtime,
// the Global Arrays and Tensor Contraction Engine substrates it is
// evaluated against, and the ported CCSD icsd_t2_7 subroutine with the
// paper's five algorithmic variants.
//
// The package is a facade over the implementation packages:
//
//   - PTG model and graph building (internal/ptg): task classes with
//     symbolic guarded dataflow, as in the paper's Fig 1;
//   - a shared-memory goroutine runtime executing graphs with real data
//     (internal/runtime);
//   - a deterministic discrete-event simulator of a distributed-memory
//     cluster (internal/sim, internal/cluster) on which the paper's
//     32-node experiments are reproduced (internal/simexec,
//     internal/cgp);
//   - the chemistry application layer: orbital-space models
//     (internal/molecule), the TCE-style loop nest and inspection phase
//     (internal/tce), and the ported kernel with variants v1..v5
//     (internal/ccsd).
//
// Quick start (see examples/quickstart for a complete program):
//
//	g := parsec.NewGraph("my-app")
//	// ... define task classes, flows, priorities ...
//	report, err := parsec.Run(g, parsec.RunConfig{Workers: 8})
//
// Reproducing the paper's headline experiment (Fig 9):
//
//	sys, _ := parsec.Molecule("betacarotene")
//	v5, _ := parsec.Variant("v5")
//	res, _ := parsec.Simulate(sys, v5, parsec.Cascade(), parsec.SimConfig{CoresPerNode: 15})
package parsec

import (
	"parsec/internal/ccsd"
	"parsec/internal/cluster"
	"parsec/internal/jdf"
	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/runtime"
	"parsec/internal/sched"
	"parsec/internal/sim"
	"parsec/internal/simexec"
	"parsec/internal/tce"
	"parsec/internal/trace"
)

// ---- PTG model ----

// Graph is a Parameterized Task Graph: a set of task classes with
// symbolic dataflow between them.
type Graph = ptg.Graph

// TaskClass is one parameterized class of tasks.
type TaskClass = ptg.TaskClass

// Flow is one named dataflow of a task class.
type Flow = ptg.Flow

// Args holds the parameter values of a task instance.
type Args = ptg.Args

// TaskRef names a task instance (class + parameters).
type TaskRef = ptg.TaskRef

// DataRef names a terminal datum outside the graph.
type DataRef = ptg.DataRef

// Ctx is the execution context passed to task bodies.
type Ctx = ptg.Ctx

// Cost is the simulated execution cost of a task.
type Cost = ptg.Cost

// Access modes of flows, as in the PTG notation.
const (
	Read  = ptg.Read
	RW    = ptg.RW
	Write = ptg.Write
)

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph { return ptg.NewGraph(name) }

// A1 builds a 1-parameter argument vector.
func A1(a int) Args { return ptg.A1(a) }

// A2 builds a 2-parameter argument vector.
func A2(a, b int) Args { return ptg.A2(a, b) }

// A3 builds a 3-parameter argument vector.
func A3(a, b, c int) Args { return ptg.A3(a, b, c) }

// JDFEnv supplies the named constants, helper functions, bodies, and
// data resolvers a JDF source references.
type JDFEnv = jdf.Env

// CompileJDF compiles the textual PTG notation of the paper's Fig 1 into
// an executable graph. See internal/jdf for the dialect.
func CompileJDF(name, src string, env JDFEnv) (*Graph, error) {
	return jdf.Compile(name, src, env)
}

// ---- shared-memory execution ----

// RunConfig configures a shared-memory run.
type RunConfig = runtime.Config

// Report summarizes a shared-memory run.
type Report = runtime.Report

// Policy orders ready tasks: by descending priority (with creation
// order breaking ties) or most-recently-enabled first. One definition
// lives in internal/sched and is shared by every executor.
type Policy = sched.Policy

// Scheduling policies for ready tasks.
const (
	PriorityOrder = sched.PriorityOrder
	LIFOOrder     = sched.LIFOOrder
)

// QueueMode selects the ready-queue structure of the sharded scheduler:
// one shared queue, statically pinned per-worker queues, or pinned
// queues with randomized work stealing (PaRSEC's per-thread queues,
// §IV-D).
type QueueMode = sched.QueueMode

// The ready-queue structures a RunConfig can select (see QueueMode).
const (
	SharedQueue    = sched.SharedQueue
	PerWorker      = sched.PerWorker
	PerWorkerSteal = sched.PerWorkerSteal
)

// SchedStats are the scheduler's internal counters for one run
// (steal attempts/hits, parks, wakes, per-worker task counts, queue
// depth), available as Report.Sched.
type SchedStats = runtime.SchedStats

// Run executes a graph with real data on worker goroutines.
func Run(g *Graph, cfg RunConfig) (Report, error) { return runtime.Run(g, cfg) }

// RuntimeTraceObserver adapts a Trace into a RunConfig.Observer so
// shared-memory executions can be rendered with the same Gantt tooling
// as the simulated runs (all events land on node 0; the worker index is
// the thread row).
func RuntimeTraceObserver(tr *Trace) func(runtime.Event) {
	return func(e runtime.Event) {
		tr.Add(trace.Event{
			Node:   0,
			Thread: e.Worker,
			Class:  e.Task.Class,
			Label:  e.Task.String(),
			Start:  e.Start.Nanoseconds(),
			End:    e.End.Nanoseconds(),
		})
	}
}

// ---- chemistry application layer ----

// System is a tiled molecular problem.
type System = molecule.System

// Molecule returns a named preset system: "water", "benzene", or
// "betacarotene" (the paper's 472-basis-function evaluation input).
func Molecule(preset string) (*System, error) { return molecule.Preset(preset) }

// Workload is the inspected icsd_t2_7 workload: chains of GEMMs with
// their metadata (§III-B).
type Workload = tce.Workload

// Inspect runs the inspection phase of the T2_7 kernel for a system.
func Inspect(sys *System) *Workload { return tce.Inspect(tce.T2_7(sys), nil) }

// InspectT1 runs the inspection phase of the T1-shaped kernel, the first
// step of the paper's stated follow-on work of porting more of CCSD.
func InspectT1(sys *System) *Workload { return tce.Inspect(tce.T1_2(sys), nil) }

// VariantSpec selects one algorithmic variant (§IV-A): a recipe of
// graph-transformation passes resolved to a plan shape.
type VariantSpec = ccsd.VariantSpec

// Variants returns the five variants evaluated in §V.
func Variants() []VariantSpec { return ccsd.Variants() }

// Variant returns the variant for a paper name ("v1".."v5") or a flat
// recipe string such as "seg=1,tree=4,fission=sorts" (the grammar is in
// the error of any failed parse).
func Variant(name string) (VariantSpec, error) { return ccsd.VariantByName(name) }

// RealResult is the outcome of executing the ported kernel with real
// arithmetic.
type RealResult = ccsd.RealResult

// RunCCSD executes one variant of the ported subroutine with real tensor
// arithmetic on the goroutine runtime.
func RunCCSD(w *Workload, spec VariantSpec, workers int) (RealResult, error) {
	return ccsd.RunReal(w, spec, workers)
}

// RunCCSDQueued is RunCCSD with an explicit ready-queue mode, for
// comparing the shared queue against per-worker queues on the real
// workload.
func RunCCSDQueued(w *Workload, spec VariantSpec, workers int, queue QueueMode) (RealResult, error) {
	return ccsd.RunRealQueued(w, spec, workers, queue)
}

// ReferenceEnergy computes the serial ground-truth correlation-energy
// functional for a workload.
func ReferenceEnergy(w *Workload) float64 { return ccsd.ReferenceEnergy(w) }

// ---- simulated cluster execution ----

// ClusterConfig holds the machine-model knobs.
type ClusterConfig = cluster.Config

// Cascade returns the calibrated 32-node configuration standing in for
// the paper's PNNL Cascade partition.
func Cascade() ClusterConfig { return cluster.CascadeLike() }

// SimConfig configures one simulated execution.
type SimConfig = ccsd.SimRunConfig

// SimResult summarizes a simulated execution.
type SimResult = simexec.Result

// Trace collects per-task execution events (Figs 10-13).
type Trace = trace.Trace

// NewTrace returns an empty trace collector.
func NewTrace() *Trace { return trace.New() }

// Simulate executes one PaRSEC variant of the kernel on a simulated
// cluster and returns its makespan and statistics.
func Simulate(sys *System, spec VariantSpec, mcfg ClusterConfig, rc SimConfig) (SimResult, error) {
	return ccsd.RunSim(sys, spec, mcfg, rc)
}

// SimulateBaseline executes the original CGP code path on a simulated
// cluster, returning the makespan in seconds of virtual time.
func SimulateBaseline(sys *System, mcfg ClusterConfig, ranksPerNode int, tr *Trace) (float64, error) {
	mk, err := ccsd.RunSimBaseline(sys, mcfg, ranksPerNode, tr)
	return mk.Seconds(), err
}

// VirtualSeconds converts a virtual duration to seconds.
func VirtualSeconds(t sim.Time) float64 { return t.Seconds() }
