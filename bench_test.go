// Benchmarks regenerating every evaluation artifact of the paper (see
// EXPERIMENTS.md for the experiment index):
//
//   - BenchmarkFig9*: the headline comparison — original CGP code vs the
//     five PaRSEC variants across a cores/node sweep. Uses the reduced
//     benzene/8-node configuration so one bench iteration is fast;
//     `go run ./cmd/ccsim` produces the full beta-carotene/32-node table.
//     The "sim-s" metric is the simulated execution time (Fig 9's y-axis).
//   - BenchmarkFig10/11/12*: the trace experiments; reported metrics are
//     what the paper reads off the traces (startup ramp, worker time
//     blocked in communication).
//   - BenchmarkEnergy*: the §IV-A semantic-equivalence experiment with
//     real arithmetic.
//   - BenchmarkAblation*: sweeps of the design choices DESIGN.md calls
//     out (segment height, NXTVAL round-trip, network bandwidth).
//   - BenchmarkKernel*/BenchmarkInspector/BenchmarkTracker: the
//     substrate microbenchmarks.
package parsec

import (
	"fmt"
	"testing"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/cluster"
	"parsec/internal/ga"
	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/runtime"
	"parsec/internal/sched"
	"parsec/internal/sim"
	"parsec/internal/tce"
	"parsec/internal/tensor"
	"parsec/internal/trace"
)

// benchCluster is the reduced Fig 9 machine used by benchmarks.
func benchCluster() cluster.Config {
	cfg := cluster.CascadeLike()
	cfg.Nodes = 8
	return cfg
}

var benchCores = []int{1, 3, 7, 11, 15}

// BenchmarkFig9Original regenerates the original-code series of Fig 9.
func BenchmarkFig9Original(b *testing.B) {
	sys := molecule.Benzene631G()
	for _, cores := range benchCores {
		b.Run(fmt.Sprintf("cores-%d", cores), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				mk, err := ccsd.RunSimBaseline(sys, benchCluster(), cores, nil)
				if err != nil {
					b.Fatal(err)
				}
				last = mk.Seconds()
			}
			b.ReportMetric(last, "sim-s")
		})
	}
}

// BenchmarkFig9Variants regenerates the PaRSEC series of Fig 9.
func BenchmarkFig9Variants(b *testing.B) {
	sys := molecule.Benzene631G()
	for _, spec := range ccsd.Variants() {
		spec := spec
		for _, cores := range benchCores {
			cores := cores
			b.Run(fmt.Sprintf("%s/cores-%d", spec.Name, cores), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					res, err := ccsd.RunSim(sys, spec, benchCluster(), ccsd.SimRunConfig{CoresPerNode: cores})
					if err != nil {
						b.Fatal(err)
					}
					last = res.Makespan.Seconds()
				}
				b.ReportMetric(last, "sim-s")
			})
		}
	}
}

// traceBench runs one traced simulation and reports the paper's trace
// metrics.
func traceBench(b *testing.B, run func(tr *trace.Trace) (float64, error)) {
	b.Helper()
	var ramp, commShare, makespan float64
	for i := 0; i < b.N; i++ {
		tr := trace.New()
		mk, err := run(tr)
		if err != nil {
			b.Fatal(err)
		}
		makespan = mk
		s := tr.Summarize()
		gm, _ := tr.RampStats("GEMM")
		ramp = float64(gm) / 1e9
		var commBusy int64
		for _, c := range s.ByClass {
			switch c.Class {
			case "READA", "READB", "WRITE":
				commBusy += c.Busy
			}
		}
		if s.TotalBusy > 0 {
			commShare = 100 * float64(commBusy) / float64(s.TotalBusy)
		}
	}
	b.ReportMetric(makespan, "sim-s")
	b.ReportMetric(ramp, "gemm-ramp-s")
	b.ReportMetric(commShare, "comm-busy-%")
}

// BenchmarkFig10TraceV4: trace of v4 (priorities) — short GEMM ramp.
func BenchmarkFig10TraceV4(b *testing.B) {
	sys := molecule.Benzene631G()
	spec, _ := ccsd.VariantByName("v4")
	traceBench(b, func(tr *trace.Trace) (float64, error) {
		res, err := ccsd.RunSim(sys, spec, benchCluster(), ccsd.SimRunConfig{CoresPerNode: 7, Trace: tr})
		return res.Makespan.Seconds(), err
	})
}

// BenchmarkFig11TraceV2: trace of v2 (no priorities) — startup bubble.
func BenchmarkFig11TraceV2(b *testing.B) {
	sys := molecule.Benzene631G()
	spec, _ := ccsd.VariantByName("v2")
	traceBench(b, func(tr *trace.Trace) (float64, error) {
		res, err := ccsd.RunSim(sys, spec, benchCluster(), ccsd.SimRunConfig{CoresPerNode: 7, Trace: tr})
		return res.Makespan.Seconds(), err
	})
}

// BenchmarkFig12TraceOriginal: trace of the original code — worker time
// dominated by GET_HASH_BLOCK (no overlap).
func BenchmarkFig12TraceOriginal(b *testing.B) {
	sys := molecule.Benzene631G()
	traceBench(b, func(tr *trace.Trace) (float64, error) {
		mk, err := ccsd.RunSimBaseline(sys, benchCluster(), 7, tr)
		return mk.Seconds(), err
	})
}

// BenchmarkEnergyVariants is the §IV-A equivalence run with real
// arithmetic on the water system.
func BenchmarkEnergyVariants(b *testing.B) {
	w := tce.Inspect(tce.T2_7(molecule.Water631G()), nil)
	ref := ccsd.ReferenceEnergy(w)
	for _, spec := range ccsd.Variants() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ccsd.RunReal(w, spec, 4)
				if err != nil {
					b.Fatal(err)
				}
				if d := res.Energy - ref; d > 1e-9 || d < -1e-9 {
					b.Fatalf("energy drift: %g", d)
				}
			}
		})
	}
}

// BenchmarkAblationSegmentHeight sweeps the GEMM segment height of §IV-A
// between the paper's two extremes (1 = max parallelism, full chain = max
// locality, v1) through intermediate points.
func BenchmarkAblationSegmentHeight(b *testing.B) {
	sys := molecule.Benzene631G()
	spec, _ := ccsd.VariantByName("v3")
	for _, h := range []int{1, 2, 4, 8, 1 << 20} {
		h := h
		name := fmt.Sprintf("h-%d", h)
		if h == 1<<20 {
			name = "h-full"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := ccsd.RunSim(sys, spec, benchCluster(),
					ccsd.SimRunConfig{CoresPerNode: 7, SegmentHeight: h})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Makespan.Seconds()
			}
			b.ReportMetric(last, "sim-s")
		})
	}
}

// BenchmarkAblationNxtvalRTT sweeps the shared-counter round trip of the
// original code's global work stealing (§IV-D).
func BenchmarkAblationNxtvalRTT(b *testing.B) {
	sys := molecule.Benzene631G()
	for _, rtt := range []sim.Time{0, 6 * sim.Microsecond, 60 * sim.Microsecond, 600 * sim.Microsecond} {
		rtt := rtt
		b.Run(fmt.Sprintf("rtt-%v", rtt), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchCluster()
				cfg.AtomicRTT = rtt
				mk, err := ccsd.RunSimBaseline(sys, cfg, 7, nil)
				if err != nil {
					b.Fatal(err)
				}
				last = mk.Seconds()
			}
			b.ReportMetric(last, "sim-s")
		})
	}
}

// BenchmarkAblationNetworkBW sweeps the NIC bandwidth to probe the
// sensitivity of the variant ordering to the communication balance.
func BenchmarkAblationNetworkBW(b *testing.B) {
	sys := molecule.Benzene631G()
	spec, _ := ccsd.VariantByName("v5")
	for _, bw := range []float64{0.3e9, 1.2e9, 5e9} {
		bw := bw
		b.Run(fmt.Sprintf("nic-%.1fGBs", bw/1e9), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchCluster()
				cfg.NICBWBytes = bw
				res, err := ccsd.RunSim(sys, spec, cfg, ccsd.SimRunConfig{CoresPerNode: 7})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Makespan.Seconds()
			}
			b.ReportMetric(last, "sim-s")
		})
	}
}

// BenchmarkKernelGemm measures the real blocked DGEMM on a
// production-size tile (the unit of compute in every experiment).
func BenchmarkKernelGemm(b *testing.B) {
	const m, n, k = 128, 128, 128
	a := tensor.NewMatrix(k, m)
	bb := tensor.NewMatrix(k, n)
	c := tensor.NewMatrix(m, n)
	ta := tensor.NewTile4(k, m, 1, 1)
	ta.FillRandom(1, 1)
	copy(a.Data, ta.Data)
	tb := tensor.NewTile4(k, n, 1, 1)
	tb.FillRandom(2, 1)
	copy(bb.Data, tb.Data)
	b.SetBytes(int64(8 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(true, false, 1, a, bb, 1, c)
	}
	flops := float64(tensor.GemmFlops(m, n, k)) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

// BenchmarkKernelSort4 measures the SORT_4 permutation kernel.
func BenchmarkKernelSort4(b *testing.B) {
	src := tensor.NewTile4(16, 16, 16, 16)
	src.FillRandom(3, 1)
	dst := tensor.NewTile4(16, 16, 16, 16)
	b.SetBytes(src.Bytes() * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Sort4(dst, src, [4]int{2, 0, 3, 1}, -1)
	}
}

// BenchmarkInspector measures the inspection phase on the full
// beta-carotene workload.
func BenchmarkInspector(b *testing.B) {
	sys := molecule.BetaCarotene631G()
	var chains int
	for i := 0; i < b.N; i++ {
		w := tce.Inspect(tce.T2_7(sys), nil)
		chains = w.NumChains()
	}
	b.ReportMetric(float64(chains), "chains")
}

// BenchmarkTracker measures the dataflow engine: instantiating and
// driving a variant graph to completion without executing bodies.
func BenchmarkTracker(b *testing.B) {
	w := tce.Inspect(tce.T2_7(molecule.Water631G()), nil)
	spec, _ := ccsd.VariantByName("v5")
	g := ccsd.BuildGraph(w, spec, ccsd.Options{Nodes: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := ptg.NewTracker(g)
		if err != nil {
			b.Fatal(err)
		}
		queue := append([]*ptg.Instance(nil), tr.InitialReady()...)
		for len(queue) > 0 {
			in := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if err := tr.Start(in); err != nil {
				b.Fatal(err)
			}
			dels, _, err := tr.Complete(in)
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range dels {
				ready, err := tr.Deliver(d.To, d.ToFlow, nil)
				if err != nil {
					b.Fatal(err)
				}
				if ready {
					queue = append(queue, d.To)
				}
			}
		}
		if !tr.Done() {
			b.Fatal("tracker not drained")
		}
	}
	_, total := g.CountTasks()
	b.ReportMetric(float64(total), "tasks/graph")
}

// BenchmarkNxtvalCounter measures the shared-counter substrate itself.
func BenchmarkNxtvalCounter(b *testing.B) {
	s := ga.NewStore(1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.NxtVal()
		}
	})
}

// BenchmarkPTGvsDTD quantifies the contrast §VI draws between the two
// programming models: the PTG's compact symbolic representation
// (tracker instantiation from closures) versus Dynamic Task Discovery
// building the whole dependency DAG in memory by matching data accesses.
// Compare allocations and ns/op between the two sub-benchmarks.
func BenchmarkPTGvsDTD(b *testing.B) {
	w := tce.Inspect(tce.T2_7(molecule.Benzene631G()), nil)
	spec, _ := ccsd.VariantByName("v1") // serial chains: same DAG shape as the DTD skeleton
	b.Run("PTG-construct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := ccsd.BuildGraph(w, spec, ccsd.Options{Nodes: 8})
			if _, err := ptg.NewTracker(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DTD-construct", func(b *testing.B) {
		b.ReportAllocs()
		var edges int
		for i := 0; i < b.N; i++ {
			e, _, err := ccsd.BuildDTD(w, spec, false)
			if err != nil {
				b.Fatal(err)
			}
			edges = e.NumEdges()
		}
		b.ReportMetric(float64(edges), "dag-edges")
	})
}

// BenchmarkDTDExecution runs the kernel end to end through the DTD engine
// with real arithmetic, for comparison with BenchmarkEnergyVariants.
func BenchmarkDTDExecution(b *testing.B) {
	w := tce.Inspect(tce.T2_7(molecule.Water631G()), nil)
	ref := ccsd.ReferenceEnergy(w)
	spec, _ := ccsd.VariantByName("v1")
	for i := 0; i < b.N; i++ {
		got, err := ccsd.RunDTD(w, spec, 4)
		if err != nil {
			b.Fatal(err)
		}
		if d := got - ref; d > 1e-9 || d < -1e-9 {
			b.Fatalf("energy drift %g", d)
		}
	}
}

// BenchmarkAblationQueues probes the §IV-D intra-node scheduling choice:
// one shared ready queue per node (PaRSEC's dynamic work stealing within
// the node), statically pinned per-worker queues, and pinned queues with
// stealing.
func BenchmarkAblationQueues(b *testing.B) {
	sys := molecule.Benzene631G()
	spec, _ := ccsd.VariantByName("v5")
	for _, mode := range []struct {
		name string
		q    sched.QueueMode
	}{
		{"shared", sched.SharedQueue},
		{"pinned", sched.PerWorker},
		{"pinned-steal", sched.PerWorkerSteal},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := ccsd.RunSim(sys, spec, benchCluster(),
					ccsd.SimRunConfig{CoresPerNode: 7, Queues: mode.q})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Makespan.Seconds()
			}
			b.ReportMetric(last, "sim-s")
		})
	}
}

// schedWorkerSweep mirrors Fig 9's cores-per-node axis for the
// shared-memory scheduler contention benchmarks.
var schedWorkerSweep = []int{1, 4, 8, 16}

var schedQueueModes = []struct {
	name string
	q    sched.QueueMode
}{
	{"shared", sched.SharedQueue},
	{"pinned", sched.PerWorker},
	{"pinned-steal", sched.PerWorkerSteal},
}

// schedFanoutGraph builds a wide fan-out of independent spin tasks: one
// SRC releasing n LEAF tasks whose bodies busy-spin for the given
// duration. With tiny bodies the run time is dominated by scheduler
// dispatch, so time-per-task exposes enqueue/dequeue contention.
func schedFanoutGraph(n int, spin time.Duration) *ptg.Graph {
	g := ptg.NewGraph("sched-fanout")
	src := g.Class("SRC")
	src.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	f := src.AddFlow("D", ptg.Write)
	f.InNew(nil, func(a ptg.Args) int64 { return 8 })
	for i := 0; i < n; i++ {
		i := i
		f.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "LEAF", Args: ptg.A1(i)}, "D"
		})
	}
	src.Body = func(ctx *ptg.Ctx) { ctx.Out[0] = 1 }

	leaf := g.Class("LEAF")
	leaf.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	leaf.AddFlow("D", ptg.Read).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "SRC", Args: ptg.A1(0)}, "D"
		})
	leaf.Body = func(ctx *ptg.Ctx) { spinFor(spin) }
	return g
}

// schedChainsGraph builds c independent chains of length l (more chains
// than workers), so pinned modes see cross-queue handoffs and stealing.
func schedChainsGraph(c, l int, spin time.Duration) *ptg.Graph {
	g := ptg.NewGraph("sched-chains")
	step := g.Class("STEP")
	step.Domain = func(emit func(ptg.Args)) {
		for ci := 0; ci < c; ci++ {
			for s := 0; s < l; s++ {
				emit(ptg.A2(ci, s))
			}
		}
	}
	step.Priority = func(a ptg.Args) int64 { return int64(c - a[0]) }
	step.AddFlow("D", ptg.RW).
		InNew(func(a ptg.Args) bool { return a[1] == 0 }, func(a ptg.Args) int64 { return 8 }).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "STEP", Args: ptg.A2(a[0], a[1]-1)}, "D"
		}).
		Out(func(a ptg.Args) bool { return a[1] < l-1 }, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "STEP", Args: ptg.A2(a[0], a[1]+1)}, "D"
		})
	step.Body = func(ctx *ptg.Ctx) { spinFor(spin) }
	return g
}

// spinFor busy-waits, standing in for a short compute kernel without
// yielding the worker goroutine the way time.Sleep would.
func spinFor(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// runSchedGraph executes one contention-benchmark graph and returns the
// report; shared by the benchmarks and the CI smoke test.
func runSchedGraph(g *ptg.Graph, workers int, q sched.QueueMode) (runtime.Report, error) {
	return runtime.Run(g, runtime.Config{Workers: workers, Queues: q})
}

// BenchmarkSchedFanout measures scheduler dispatch overhead on a
// 2048-task fan-out across the Fig 9-style worker sweep; "ns/task" is
// wall time per executed task (lower = less scheduler contention).
func BenchmarkSchedFanout(b *testing.B) {
	const tasks = 2048
	g := schedFanoutGraph(tasks, time.Microsecond)
	for _, mode := range schedQueueModes {
		for _, workers := range schedWorkerSweep {
			mode, workers := mode, workers
			b.Run(fmt.Sprintf("%s/workers-%d", mode.name, workers), func(b *testing.B) {
				var rep runtime.Report
				for i := 0; i < b.N; i++ {
					var err error
					rep, err = runSchedGraph(g, workers, mode.q)
					if err != nil {
						b.Fatal(err)
					}
					if rep.Tasks != tasks+1 {
						b.Fatalf("tasks = %d, want %d", rep.Tasks, tasks+1)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rep.Tasks), "ns/task")
			})
		}
	}
}

// BenchmarkSchedChains measures the same sweep on 64 dependency chains
// of 32 steps each: every completion triggers a delivery, so this path
// stresses completion/dataflow next to dispatch.
func BenchmarkSchedChains(b *testing.B) {
	const chains, length = 64, 32
	g := schedChainsGraph(chains, length, time.Microsecond)
	for _, mode := range schedQueueModes {
		for _, workers := range schedWorkerSweep {
			mode, workers := mode, workers
			b.Run(fmt.Sprintf("%s/workers-%d", mode.name, workers), func(b *testing.B) {
				var rep runtime.Report
				for i := 0; i < b.N; i++ {
					var err error
					rep, err = runSchedGraph(g, workers, mode.q)
					if err != nil {
						b.Fatal(err)
					}
					if rep.Tasks != chains*length {
						b.Fatalf("tasks = %d, want %d", rep.Tasks, chains*length)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rep.Tasks), "ns/task")
			})
		}
	}
}

// BenchmarkT1Kernel runs the T1-shaped kernel (the generalization beyond
// the paper's ported subroutine) through the simulator.
func BenchmarkT1Kernel(b *testing.B) {
	sys := molecule.Benzene631G()
	spec, _ := ccsd.VariantByName("v5")
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := ccsd.RunSim(sys, spec, benchCluster(),
			ccsd.SimRunConfig{CoresPerNode: 7, Kernel: "t1_2"})
		if err != nil {
			b.Fatal(err)
		}
		last = res.Makespan.Seconds()
	}
	b.ReportMetric(last, "sim-s")
}

// BenchmarkFusionVsStaged quantifies the §III-B integration claim: the
// fused kernel+energy graph versus the staged execution with a Global
// Array round trip and barrier between the two subroutines.
func BenchmarkFusionVsStaged(b *testing.B) {
	sys := molecule.Benzene631G()
	var res ccsd.FusionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = ccsd.RunSimFusion(sys, benchCluster(), 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Staged.Seconds(), "staged-sim-s")
	b.ReportMetric(res.Fused.Seconds(), "fused-sim-s")
	b.ReportMetric(100*(1-res.Fused.Seconds()/res.Staged.Seconds()), "gain-%")
}

// BenchmarkAblationWriteSpan sweeps the Fig 8 block-spanning factor: how
// many nodes each output block (and hence each chain's WRITE work) is
// split across.
func BenchmarkAblationWriteSpan(b *testing.B) {
	sys := molecule.Benzene631G()
	spec, _ := ccsd.VariantByName("v5")
	for _, span := range []int{1, 2, 4} {
		span := span
		b.Run(fmt.Sprintf("span-%d", span), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := ccsd.RunSim(sys, spec, benchCluster(),
					ccsd.SimRunConfig{CoresPerNode: 7, WriteSpan: span})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Makespan.Seconds()
			}
			b.ReportMetric(last, "sim-s")
		})
	}
}
