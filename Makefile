# Convenience targets for the parsec-go reproduction.

GO ?= go

.PHONY: all build vet test race bench bench-kernels lint fig9 traces profile faults tune sched-conformance netrun-conformance real-dist serve-smoke ccload examples clean

all: build vet test lint

# Documentation hygiene: godoc coverage and Markdown link integrity.
lint:
	$(GO) run ./cmd/doclint -strict ./...
	$(GO) run ./cmd/mdlint .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Re-run the dense-kernel sweep and diff it against the committed
# BENCH_kernels.json baseline: >10% ns/op regressions on matching rows
# fail the target (rows are skipped when arch/cpus/tier differ from the
# baseline machine). Writes the fresh sweep to bench_kernels_new.json;
# promote it with `cp bench_kernels_new.json BENCH_kernels.json` after an
# intentional kernel change.
bench-kernels:
	$(GO) run ./cmd/ccsim -kernels -kernelsout bench_kernels_new.json -kernelsbaseline BENCH_kernels.json

# The paper's headline experiment (Fig 9) at full scale.
fig9:
	$(GO) run ./cmd/ccsim -csv fig9.csv

# The trace experiments (Figs 10-13).
traces:
	$(GO) run ./cmd/cctrace -variant v4 -preset betacarotene -nodes 32 -cores 7 -svg trace_v4.svg
	$(GO) run ./cmd/cctrace -variant v2 -preset betacarotene -nodes 32 -cores 7 -svg trace_v2.svg
	$(GO) run ./cmd/cctrace -variant original -preset betacarotene -nodes 32 -cores 7 -svg trace_original.svg

# Observability profiles (histograms, idle bubbles, critical path).
profile:
	$(GO) run ./cmd/ccsim -profile -profileout profile.json

# Seeded fault-injection sweep; regenerates docs/faults.json.
faults:
	$(GO) run ./cmd/ccsim -faults

# Simulator-guided recipe autotuning at paper scale (beta-carotene,
# 32 nodes x 7 cores); regenerates docs/tune.json bit-identically for
# the committed seed. Started from v1, the search must end at or below
# hand-derived v5's makespan or the target fails.
tune:
	$(GO) run ./cmd/ccsim -tune

# Scheduling-core conformance: the real runtime, the simulator, and the
# socket runtime must take identical scheduling decisions
# (internal/sched/conformance_test.go).
sched-conformance:
	$(GO) test -race -run 'TestPopOrderEquivalence|TestSimexecDecisionsMatchShadowModel|TestStealVictimGolden|TestInterNodeStealInvariants' ./internal/sched

# Distributed-runtime conformance: wire-codec round-trips, the in-process
# socket backends, the multi-process benzene acceptance run, and the
# kill/sever chaos run, all under the race detector, plus a short fuzz of
# the frame decoder (internal/netrun).
netrun-conformance:
	$(GO) test -race -count=1 ./internal/netrun
	$(GO) test -run FuzzDecodeFrame -fuzz FuzzDecodeFrame -fuzztime 15s ./internal/netrun

# Multi-process distributed smoke: benzene with real arithmetic across 3
# worker processes; energies must match the single-process runtime.
real-dist:
	$(GO) run ./cmd/ccsim -real-dist 3

# Service smoke: start ccsimd in-process under the race detector and
# drive the acceptance scenario over real HTTP — cold benzene job,
# identical cached job (must skip inspection+planning), a canceled job,
# queue-full 429 backpressure, and a draining shutdown. Then the
# restart-recovery scenario: a journaled child daemon is SIGKILLed
# mid-queue and restarted; terminal results must come back verbatim,
# interrupted jobs must re-execute to bitwise-identical energies, and a
# large job must run across 2 netrun worker processes.
serve-smoke:
	$(GO) run -race ./cmd/ccsimd -smoke
	$(GO) run -race ./cmd/ccsimd -recovery-smoke

# Service load test: mixed preset/variant workload against an
# in-process server; reports throughput, cache hit rate, cold vs cached
# latency percentiles, and checks per-key energy agreement.
ccload:
	$(GO) run ./cmd/ccload -clients 4 -jobs 24

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/jdfchain
	$(GO) run ./examples/ccsd_t2_7
	$(GO) run ./examples/inspector
	$(GO) run ./examples/fusion
	$(GO) run ./examples/variants

clean:
	rm -f fig9.csv trace_*.svg test_output.txt bench_output.txt bench_kernels_new.json
