package parsec

import (
	"math"
	"testing"
)

// TestFacadeQuickstart exercises the public graph-building and execution
// API end to end, mirroring examples/quickstart.
func TestFacadeQuickstart(t *testing.T) {
	const n = 8
	g := NewGraph("facade")
	sum := 0
	c := g.Class("ADD")
	c.Domain = func(emit func(Args)) {
		for i := 0; i < n; i++ {
			emit(A1(i))
		}
	}
	c.Priority = func(a Args) int64 { return int64(n - a[0]) }
	c.Body = func(ctx *Ctx) { sum += ctx.Args[0] }
	rep, err := Run(g, RunConfig{Workers: 1, Policy: PriorityOrder})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != n || sum != n*(n-1)/2 {
		t.Errorf("tasks=%d sum=%d", rep.Tasks, sum)
	}
}

func TestFacadeCCSDReal(t *testing.T) {
	sys, err := Molecule("water")
	if err != nil {
		t.Fatal(err)
	}
	w := Inspect(sys)
	ref := ReferenceEnergy(w)
	v5, err := Variant("v5")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCCSD(w, v5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-ref) > 1e-12*math.Abs(ref) {
		t.Errorf("energy %v vs reference %v", res.Energy, ref)
	}
}

func TestFacadeSimulate(t *testing.T) {
	sys, err := Molecule("water")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Cascade()
	cfg.Nodes = 4
	v1, _ := Variant("v1")
	res, err := Simulate(sys, v1, cfg, SimConfig{CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	base, err := SimulateBaseline(sys, cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Error("zero baseline")
	}
}

func TestFacadeVariants(t *testing.T) {
	vs := Variants()
	if len(vs) != 5 {
		t.Fatalf("variants = %d", len(vs))
	}
	if _, err := Variant("nope"); err == nil {
		t.Error("bad variant accepted")
	}
	if _, err := Molecule("nope"); err == nil {
		t.Error("bad molecule accepted")
	}
}

func TestFacadeJDF(t *testing.T) {
	src := "T(i)\n i = 0 .. n - 1\nBODY tick\nEND\n"
	count := 0
	g, err := CompileJDF("facade-jdf", src, JDFEnv{
		Consts: map[string]int{"n": 5},
		Bodies: map[string]func(*Ctx){"tick": func(ctx *Ctx) { count++ }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, RunConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count = %d", count)
	}
	if _, err := CompileJDF("bad", "T(", JDFEnv{}); err == nil {
		t.Error("bad source compiled")
	}
}

func TestRuntimeTraceObserver(t *testing.T) {
	tr := NewTrace()
	g := NewGraph("traced")
	c := g.Class("T")
	c.Domain = func(emit func(Args)) {
		for i := 0; i < 6; i++ {
			emit(A1(i))
		}
	}
	c.Body = func(ctx *Ctx) {}
	if _, err := Run(g, RunConfig{Workers: 2, Observer: RuntimeTraceObserver(tr)}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 6 {
		t.Errorf("trace events = %d, want 6", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeBaselineWithTrace(t *testing.T) {
	sys, _ := Molecule("water")
	cfg := Cascade()
	cfg.Nodes = 2
	tr := NewTrace()
	sec, err := SimulateBaseline(sys, cfg, 2, tr)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 || tr.Len() == 0 {
		t.Errorf("sec=%v events=%d", sec, tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeInspectT1(t *testing.T) {
	sys, _ := Molecule("water")
	w := InspectT1(sys)
	if w.NumChains() == 0 {
		t.Error("empty T1 workload")
	}
	ref := ReferenceEnergy(w)
	v3, _ := Variant("v3")
	res, err := RunCCSD(w, v3, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Energy - ref
	if d > 1e-12 || d < -1e-12 {
		t.Errorf("T1 energy %v vs %v", res.Energy, ref)
	}
}
