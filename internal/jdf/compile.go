package jdf

import (
	"fmt"

	"parsec/internal/ptg"
)

// Env supplies everything the notation references by name: the globals
// of the PTG (Consts), the arbitrary helper functions of Fig 1 (Funcs),
// task bodies and simulation costs keyed by the BODY identifier, terminal
// data resolvers (Data), and per-class payload sizes for simulated
// transfers (FlowBytes, keyed by class name).
type Env struct {
	Consts    map[string]int
	Funcs     map[string]func(...int) int
	Bodies    map[string]func(*ptg.Ctx)
	Costs     map[string]func(ptg.Args) ptg.Cost
	Data      map[string]func(args []int) ptg.DataRef
	FlowBytes map[string]func(a ptg.Args, flow string) int64
	// Lenient makes unresolved names non-fatal — unknown constants
	// evaluate to 0, unknown functions return 0, unknown bodies and data
	// resolvers become no-ops — so a source can be parsed and its graph
	// shape inspected without supplying a full environment (cmd/jdfc).
	Lenient bool
}

// Compile parses the JDF source and builds the graph.
func Compile(name, src string, env Env) (*ptg.Graph, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, env: env, g: ptg.NewGraph(name)}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	if err := p.g.Validate(); err != nil {
		return nil, err
	}
	return p.g, nil
}

type paramRange struct {
	lo, hi expr
}

type parser struct {
	toks []token
	pos  int
	env  Env
	g    *ptg.Graph

	curParams []string
	classRefs []token // class names referenced by dependence clauses
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.next()
	}
}

func (p *parser) expectPunct(text string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != text {
		return fmt.Errorf("jdf: line %d: expected %q, got %v", t.line, text, t)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, fmt.Errorf("jdf: line %d: expected identifier, got %v", t.line, t)
	}
	return t, nil
}

func (p *parser) expectNewline() error {
	t := p.next()
	if t.kind != tokNewline && t.kind != tokEOF {
		return fmt.Errorf("jdf: line %d: expected end of line, got %v", t.line, t)
	}
	return nil
}

func (p *parser) parseFile() error {
	for {
		p.skipNewlines()
		if p.peek().kind == tokEOF {
			break
		}
		if err := p.parseClass(); err != nil {
			return err
		}
	}
	for _, ref := range p.classRefs {
		if p.g.ClassByName(ref.text) == nil {
			return fmt.Errorf("jdf: line %d: dependence references undefined class %q", ref.line, ref.text)
		}
	}
	return nil
}

func (p *parser) parseClass() error {
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var params []string
	for {
		t, err := p.expectIdent()
		if err != nil {
			return err
		}
		params = append(params, t.text)
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if len(params) > ptg.MaxParams {
		return fmt.Errorf("jdf: line %d: class %s has %d parameters (max %d)",
			nameTok.line, nameTok.text, len(params), ptg.MaxParams)
	}
	if err := p.expectNewline(); err != nil {
		return err
	}
	p.curParams = params
	tc := p.g.Class(nameTok.text)

	// Parameter ranges, one line per parameter, in declaration order.
	ranges := make([]paramRange, len(params))
	for i, name := range params {
		p.skipNewlines()
		t, err := p.expectIdent()
		if err != nil {
			return err
		}
		if t.text != name {
			return fmt.Errorf("jdf: line %d: expected range for parameter %q, got %q", t.line, name, t.text)
		}
		if err := p.expectPunct("="); err != nil {
			return err
		}
		lo, err := p.parseExpr()
		if err != nil {
			return err
		}
		rt := p.next()
		if rt.kind != tokRange {
			return fmt.Errorf("jdf: line %d: expected '..', got %v", rt.line, rt)
		}
		hi, err := p.parseExpr()
		if err != nil {
			return err
		}
		ranges[i] = paramRange{lo: lo, hi: hi}
		if err := p.expectNewline(); err != nil {
			return err
		}
	}
	nparams := len(params)
	tc.Domain = func(emit func(ptg.Args)) {
		vals := make([]int, nparams)
		var rec func(d int)
		rec = func(d int) {
			if d == nparams {
				emit(toArgs(vals))
				return
			}
			lo := ranges[d].lo.eval(vals)
			hi := ranges[d].hi.eval(vals)
			for v := lo; v <= hi; v++ {
				vals[d] = v
				rec(d + 1)
			}
		}
		rec(0)
	}

	// Class body: affinity, flows, priority, BODY.
	for {
		p.skipNewlines()
		t := p.peek()
		switch {
		case t.kind == tokPunct && t.text == ":":
			p.next()
			aff, err := p.parseExpr()
			if err != nil {
				return err
			}
			tc.Affinity = func(a ptg.Args) int { return aff.eval(a[:]) }
			if err := p.expectNewline(); err != nil {
				return err
			}
		case t.kind == tokPunct && t.text == ";":
			p.next()
			pr, err := p.parseExpr()
			if err != nil {
				return err
			}
			tc.Priority = func(a ptg.Args) int64 { return int64(pr.eval(a[:])) }
			if err := p.expectNewline(); err != nil {
				return err
			}
		case t.kind == tokIdent && (t.text == "READ" || t.text == "RW" || t.text == "WRITE"):
			if err := p.parseFlow(tc); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "BODY":
			p.next()
			bodyTok, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.bindBody(tc, bodyTok); err != nil {
				return err
			}
			p.skipNewlines()
			endTok, err := p.expectIdent()
			if err != nil {
				return err
			}
			if endTok.text != "END" {
				return fmt.Errorf("jdf: line %d: expected END, got %q", endTok.line, endTok.text)
			}
			if fb, ok := p.env.FlowBytes[tc.Name]; ok {
				tc.FlowBytes = fb
			}
			return p.expectNewline()
		default:
			return fmt.Errorf("jdf: line %d: unexpected %v in class %s", t.line, t, tc.Name)
		}
	}
}

func (p *parser) bindBody(tc *ptg.TaskClass, bodyTok token) error {
	name := bodyTok.text
	body, hasBody := p.env.Bodies[name]
	cost, hasCost := p.env.Costs[name]
	if !hasBody && !hasCost && name != "none" && !p.env.Lenient {
		return fmt.Errorf("jdf: line %d: BODY %q not registered in Bodies or Costs", bodyTok.line, name)
	}
	if hasBody {
		tc.Body = body
	}
	if hasCost {
		tc.Cost = cost
	}
	return nil
}

// parseFlow parses one flow declaration with its dependence clauses,
// which may continue onto following lines beginning with <- or ->.
func (p *parser) parseFlow(tc *ptg.TaskClass) error {
	modeTok := p.next()
	var mode ptg.Mode
	switch modeTok.text {
	case "READ":
		mode = ptg.Read
	case "RW":
		mode = ptg.RW
	case "WRITE":
		mode = ptg.Write
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	f := tc.AddFlow(nameTok.text, mode)
	for {
		t := p.peek()
		switch t.kind {
		case tokArrowIn, tokArrowOut:
			p.next()
			if err := p.parseDep(f, t.kind == tokArrowIn); err != nil {
				return err
			}
		case tokNewline:
			// A continuation line must start with an arrow.
			save := p.pos
			p.skipNewlines()
			if k := p.peek().kind; k == tokArrowIn || k == tokArrowOut {
				continue
			}
			p.pos = save
			return p.expectNewline()
		default:
			return fmt.Errorf("jdf: line %d: unexpected %v in flow %s.%s", t.line, t, tc.Name, f.Name)
		}
	}
}

// parseDep parses one guarded dependence clause after its arrow.
func (p *parser) parseDep(f *ptg.Flow, isInput bool) error {
	var guard func(ptg.Args) bool
	// Optional "(expr) ?" guard.
	if t := p.peek(); t.kind == tokPunct && t.text == "(" {
		p.next()
		g, err := p.parseExpr()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		if err := p.expectPunct("?"); err != nil {
			return err
		}
		guard = func(a ptg.Args) bool { return g.eval(a[:]) != 0 }
	}

	t, err := p.expectIdent()
	if err != nil {
		return err
	}
	switch t.text {
	case "NEW":
		if !isInput {
			return fmt.Errorf("jdf: line %d: NEW is only valid on an input clause", t.line)
		}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		size, err := p.parseExpr()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		f.InNew(guard, func(a ptg.Args) int64 { return int64(size.eval(a[:])) })
		return nil
	case "DATA":
		nameTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		resolver, ok := p.env.Data[nameTok.text]
		if !ok {
			if !p.env.Lenient {
				return fmt.Errorf("jdf: line %d: unknown data resolver %q", nameTok.line, nameTok.text)
			}
			dataName := nameTok.text
			resolver = func(args []int) ptg.DataRef {
				return ptg.DataRef{ID: fmt.Sprintf("%s%v", dataName, args)}
			}
		}
		args, err := p.parseArgList()
		if err != nil {
			return err
		}
		ref := func(a ptg.Args) ptg.DataRef { return resolver(evalAll(args, a)) }
		if isInput {
			f.InData(guard, ref)
		} else {
			f.OutData(guard, ref)
		}
		return nil
	default:
		// "flowName ClassName(args)"
		flowName := t.text
		classTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		className := classTok.text
		p.classRefs = append(p.classRefs, classTok)
		args, err := p.parseArgList()
		if err != nil {
			return err
		}
		target := func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: className, Args: toArgs(evalAll(args, a))}, flowName
		}
		if isInput {
			f.In(guard, target)
		} else {
			f.Out(guard, target)
		}
		return nil
	}
}

func (p *parser) parseArgList() ([]expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []expr
	if !(p.peek().kind == tokPunct && p.peek().text == ")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(args) > ptg.MaxParams {
		return nil, fmt.Errorf("jdf: too many task arguments (%d, max %d)", len(args), ptg.MaxParams)
	}
	return args, nil
}

func evalAll(exprs []expr, a ptg.Args) []int {
	out := make([]int, len(exprs))
	for i, e := range exprs {
		out[i] = e.eval(a[:])
	}
	return out
}

func toArgs(vals []int) ptg.Args {
	var a ptg.Args
	copy(a[:], vals)
	return a
}
