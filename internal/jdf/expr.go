package jdf

import "fmt"

// expr is a compiled integer expression evaluated against a task
// instance's parameter values. Booleans are represented as 0/1.
type expr interface {
	eval(args []int) int
}

type litExpr int

func (l litExpr) eval([]int) int { return int(l) }

type paramExpr int // index into args

func (p paramExpr) eval(args []int) int { return args[p] }

type unaryExpr struct {
	op string
	x  expr
}

func (u unaryExpr) eval(args []int) int {
	v := u.x.eval(args)
	switch u.op {
	case "-":
		return -v
	case "!":
		if v == 0 {
			return 1
		}
		return 0
	}
	panic("jdf: bad unary " + u.op)
}

type binExpr struct {
	op   string
	l, r expr
}

func (b binExpr) eval(args []int) int {
	// Short-circuit logical operators.
	switch b.op {
	case "&&":
		if b.l.eval(args) == 0 {
			return 0
		}
		return boolInt(b.r.eval(args) != 0)
	case "||":
		if b.l.eval(args) != 0 {
			return 1
		}
		return boolInt(b.r.eval(args) != 0)
	}
	l, r := b.l.eval(args), b.r.eval(args)
	switch b.op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "/":
		return l / r
	case "%":
		return l % r
	case "==":
		return boolInt(l == r)
	case "!=":
		return boolInt(l != r)
	case "<":
		return boolInt(l < r)
	case "<=":
		return boolInt(l <= r)
	case ">":
		return boolInt(l > r)
	case ">=":
		return boolInt(l >= r)
	}
	panic("jdf: bad op " + b.op)
}

type ternaryExpr struct{ cond, then, els expr }

func (t ternaryExpr) eval(args []int) int {
	if t.cond.eval(args) != 0 {
		return t.then.eval(args)
	}
	return t.els.eval(args)
}

type callExpr struct {
	name string
	fn   func(...int) int
	args []expr
}

func (c callExpr) eval(args []int) int {
	vals := make([]int, len(c.args))
	for i, a := range c.args {
		vals[i] = a.eval(args)
	}
	return c.fn(vals...)
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// binPrec returns the precedence of a binary operator (higher binds
// tighter), or -1 if the token is not a binary operator.
func binPrec(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "!=", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	}
	return -1
}

// parseExpr parses an expression with precedence climbing, including the
// ternary ?: at the lowest precedence.
func (p *parser) parseExpr() (expr, error) {
	e, err := p.parseBin(1)
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokPunct && p.peek().text == "?" {
		p.next()
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return ternaryExpr{cond: e, then: then, els: els}, nil
	}
	return e, nil
}

func (p *parser) parseBin(minPrec int) (expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return left, nil
		}
		prec := binPrec(t.text)
		if prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		left = binExpr{op: t.text, l: left, r: right}
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.peek()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: t.text, x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		var v int
		fmt.Sscanf(t.text, "%d", &v)
		return litExpr(v), nil
	case tokIdent:
		// Call?
		if p.peek().kind == tokPunct && p.peek().text == "(" {
			fn, ok := p.env.Funcs[t.text]
			if !ok {
				if !p.env.Lenient {
					return nil, fmt.Errorf("jdf: line %d: unknown function %q", t.line, t.text)
				}
				fn = func(...int) int { return 0 }
			}
			p.next()
			var args []expr
			if !(p.peek().kind == tokPunct && p.peek().text == ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind == tokPunct && p.peek().text == "," {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return callExpr{name: t.text, fn: fn, args: args}, nil
		}
		// Parameter of the current class?
		for i, name := range p.curParams {
			if name == t.text {
				return paramExpr(i), nil
			}
		}
		// Environment constant?
		if v, ok := p.env.Consts[t.text]; ok {
			return litExpr(v), nil
		}
		if p.env.Lenient {
			return litExpr(0), nil
		}
		return nil, fmt.Errorf("jdf: line %d: unknown identifier %q", t.line, t.text)
	case tokPunct:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("jdf: line %d: unexpected %v in expression", t.line, t)
}
