// Package jdf compiles the textual PTG notation of the paper's Fig 1 —
// the "job data flow" dialect — into executable ptg.Graph structures.
//
// A task class is written as in the paper:
//
//	GEMM(L1, L2)
//	  L1 = 0 .. size_L1 - 1
//	  L2 = 0 .. chain_len(L1) - 1
//	  : chain_node(L1)
//	  READ A <- D READA(L1, L2)
//	  READ B <- D READB(L1, L2)
//	  RW C <- (L2 == 0) ? C DFILL(L1)
//	       <- C GEMM(L1, L2 - 1)
//	       -> (L2 < chain_len(L1) - 1) ? C GEMM(L1, L2 + 1)
//	       -> (L2 == chain_len(L1) - 1) ? C SORT(L1)
//	  ; size_L1 - L1 + P
//	BODY gemm
//	END
//
// Parameter ranges, the affinity line (":"), guarded dependence clauses,
// and the priority line (";") accept integer expressions over the class
// parameters, environment constants (the PTG's globals, e.g. the
// mtdata->size_L1 lookups of Fig 1), and registered environment
// functions (the "calls to arbitrary C functions" the paper highlights,
// e.g. find_last_segment_owner). Task bodies are referenced by name and
// resolved from the environment, since Go cannot compile embedded C.
package jdf

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent
	tokNumber
	tokArrowIn  // <-
	tokArrowOut // ->
	tokRange    // ..
	tokPunct    // single/double character operators and punctuation
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "end of line"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex splits source text into tokens. Newlines are significant (they end
// clauses); '#' starts a comment to end of line; clauses may continue on
// the next line when it begins with "<-" or "->".
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	emit := func(kind tokKind, text string) {
		toks = append(toks, token{kind: kind, text: text, line: line})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emit(tokNewline, "\\n")
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.HasPrefix(src[i:], "<-"):
			emit(tokArrowIn, "<-")
			i += 2
		case strings.HasPrefix(src[i:], "->"):
			emit(tokArrowOut, "->")
			i += 2
		case strings.HasPrefix(src[i:], ".."):
			emit(tokRange, "..")
			i += 2
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			emit(tokIdent, src[i:j])
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			emit(tokNumber, src[i:j])
			i = j
		default:
			// Multi-character operators first.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				emit(tokPunct, two)
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '?', ':', ';', '=', '+', '-', '*', '/', '%', '<', '>', '!':
				emit(tokPunct, string(c))
				i++
			default:
				return nil, fmt.Errorf("jdf: line %d: unexpected character %q", line, c)
			}
		}
	}
	emit(tokEOF, "")
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
