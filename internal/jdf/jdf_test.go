package jdf

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"parsec/internal/ptg"
	"parsec/internal/runtime"
)

// exprEnv compiles a standalone expression by wrapping it in a minimal
// class and extracting the priority function.
func exprEval(t *testing.T, src string, env Env, args ...int) int {
	t.Helper()
	full := fmt.Sprintf("T(a, b, c)\n a = 0 .. 0\n b = 0 .. 0\n c = 0 .. 0\n ; %s\nBODY none\nEND\n", src)
	g, err := Compile("expr", full, env)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	var a ptg.Args
	copy(a[:], args)
	return int(g.ClassByName("T").Priority(a))
}

func TestExpressions(t *testing.T) {
	env := Env{
		Consts: map[string]int{"N": 10},
		Funcs:  map[string]func(...int) int{"twice": func(a ...int) int { return 2 * a[0] }},
	}
	cases := []struct {
		src  string
		args []int
		want int
	}{
		{"1 + 2 * 3", nil, 7},
		{"(1 + 2) * 3", nil, 9},
		{"10 / 3", nil, 3},
		{"10 % 3", nil, 1},
		{"-a + 5", []int{2}, 3},
		{"N - a", []int{4}, 6},
		{"a == 2 ? 100 : 200", []int{2}, 100},
		{"a == 2 ? 100 : 200", []int{3}, 200},
		{"a < b && b < c", []int{1, 2, 3}, 1},
		{"a < b && b < c", []int{1, 5, 3}, 0},
		{"a > 0 || c > 0", []int{0, 0, 1}, 1},
		{"!(a == b)", []int{1, 1}, 0},
		{"twice(a + 1)", []int{3}, 8},
		{"a != b", []int{1, 2}, 1},
		{"a >= 1", []int{1}, 1},
		{"a <= 0", []int{1}, 0},
	}
	for _, c := range cases {
		if got := exprEval(t, c.src, env, c.args...); got != c.want {
			t.Errorf("%q with %v = %d, want %d", c.src, c.args, got, c.want)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	for _, src := range []string{
		"unknown_ident",
		"unknown_fn(1)",
		"1 +",
		"(1 + 2",
	} {
		full := fmt.Sprintf("T(a)\n a = 0 .. 0\n ; %s\nBODY none\nEND\n", src)
		if _, err := Compile("bad", full, Env{}); err == nil {
			t.Errorf("%q compiled", src)
		}
	}
}

// fig1Source is the paper's Fig 1 GEMM-chain PTG, transcribed into the
// dialect: DFILL starts each chain, GEMMs pass C serially, the last GEMM
// sends C to SORT.
const fig1Source = `
# Fig 1: GEMM tasks organized in a chain.
DFILL(L1)
  L1 = 0 .. size_L1 - 1
  : rr(L1)
  WRITE C <- NEW(csize)
          -> C GEMM(L1, 0)
  ; size_L1 - L1
BODY dfill
END

READA(L1, L2)
  L1 = 0 .. size_L1 - 1
  L2 = 0 .. size_L2(L1) - 1
  : reader_node(L1, L2)
  WRITE D <- DATA ablock(L1, L2)
          -> A GEMM(L1, L2)
  ; size_L1 - L1 + 5 * P
BODY reada
END

READB(L1, L2)
  L1 = 0 .. size_L1 - 1
  L2 = 0 .. size_L2(L1) - 1
  : reader_node(L1, L2)
  WRITE D <- DATA bblock(L1, L2)
          -> B GEMM(L1, L2)
  ; size_L1 - L1 + 5 * P
BODY readb
END

GEMM(L1, L2)
  L1 = 0 .. size_L1 - 1
  L2 = 0 .. size_L2(L1) - 1
  : rr(L1)
  READ A <- D READA(L1, L2)
  READ B <- D READB(L1, L2)
  RW C <- (L2 == 0) ? C DFILL(L1)
       <- C GEMM(L1, L2 - 1)
       -> (L2 < size_L2(L1) - 1) ? C GEMM(L1, L2 + 1)
       -> (L2 == size_L2(L1) - 1) ? C SORT(L1)
  ; size_L1 - L1 + P
BODY gemm
END

SORT(L1)
  L1 = 0 .. size_L1 - 1
  : rr(L1)
  READ C <- C GEMM(L1, size_L2(L1) - 1)
  ; size_L1 - L1
BODY sort
END
`

func fig1Env(numChains int, chainLen func(int) int, results []float64) Env {
	var mu sync.Mutex
	input := func(kind, l1, l2 int) float64 {
		return float64(kind*1000+l1*10+l2) / 7
	}
	return Env{
		Consts: map[string]int{
			"size_L1": numChains,
			"P":       4,
			"csize":   8,
		},
		Funcs: map[string]func(...int) int{
			"size_L2":     func(a ...int) int { return chainLen(a[0]) },
			"rr":          func(a ...int) int { return 0 },
			"reader_node": func(a ...int) int { return 0 },
		},
		Data: map[string]func(args []int) ptg.DataRef{
			"ablock": func(args []int) ptg.DataRef {
				return ptg.DataRef{ID: fmt.Sprintf("a(%d,%d)", args[0], args[1])}
			},
			"bblock": func(args []int) ptg.DataRef {
				return ptg.DataRef{ID: fmt.Sprintf("b(%d,%d)", args[0], args[1])}
			},
		},
		Bodies: map[string]func(*ptg.Ctx){
			"dfill": func(ctx *ptg.Ctx) { ctx.Out[0] = float64(0) },
			"reada": func(ctx *ptg.Ctx) { ctx.Out[0] = input(1, ctx.Args[0], ctx.Args[1]) },
			"readb": func(ctx *ptg.Ctx) { ctx.Out[0] = input(2, ctx.Args[0], ctx.Args[1]) },
			"gemm": func(ctx *ptg.Ctx) {
				a := ctx.In[0].(float64)
				b := ctx.In[1].(float64)
				c := ctx.In[2].(float64)
				ctx.Out[2] = c + a*b
			},
			"sort": func(ctx *ptg.Ctx) {
				mu.Lock()
				results[ctx.Args[0]] = ctx.In[0].(float64)
				mu.Unlock()
			},
		},
	}
}

func TestCompileFig1AndRun(t *testing.T) {
	const numChains = 4
	chainLen := func(l1 int) int { return 3 + l1 }
	results := make([]float64, numChains)
	g, err := Compile("fig1", fig1Source, fig1Env(numChains, chainLen, results))
	if err != nil {
		t.Fatal(err)
	}
	counts, total := g.CountTasks()
	wantGemms := 0
	for l1 := 0; l1 < numChains; l1++ {
		wantGemms += chainLen(l1)
	}
	if counts["GEMM"] != wantGemms {
		t.Errorf("GEMM count = %d, want %d", counts["GEMM"], wantGemms)
	}
	if total != numChains*2+wantGemms*3 {
		t.Errorf("total = %d", total)
	}
	if _, err := runtime.Run(g, runtime.Config{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	// Sequential check: c = sum over l2 of a*b.
	for l1 := 0; l1 < numChains; l1++ {
		want := 0.0
		for l2 := 0; l2 < chainLen(l1); l2++ {
			want += float64(1000+l1*10+l2) / 7 * (float64(2000+l1*10+l2) / 7)
		}
		if d := results[l1] - want; d > 1e-9 || d < -1e-9 {
			t.Errorf("chain %d: %v, want %v", l1, results[l1], want)
		}
	}
}

func TestCompiledPrioritiesMatchPaper(t *testing.T) {
	results := make([]float64, 2)
	g, err := Compile("fig1", fig1Source, fig1Env(2, func(int) int { return 2 }, results))
	if err != nil {
		t.Fatal(err)
	}
	read := g.ClassByName("READA")
	gemm := g.ClassByName("GEMM")
	a := ptg.A2(0, 0)
	// Read offset 5*P, GEMM offset P with P = 4.
	if read.Priority(a)-gemm.Priority(a) != 16 {
		t.Errorf("priority gap = %d, want 16", read.Priority(a)-gemm.Priority(a))
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing END", "T(a)\n a = 0 .. 1\nBODY none\n"},
		{"wrong range name", "T(a)\n b = 0 .. 1\nBODY none\nEND\n"},
		{"too many params", "T(a, b, c, d)\n a = 0 .. 1\nBODY none\nEND\n"},
		{"unknown body", "T(a)\n a = 0 .. 1\nBODY nosuchbody\nEND\n"},
		{"unknown data", "T(a)\n a = 0 .. 1\n WRITE D <- DATA nosuch(a)\nBODY none\nEND\n"},
		{"NEW on output", "T(a)\n a = 0 .. 1\n WRITE D -> NEW(8)\nBODY none\nEND\n"},
		{"dangling target", "T(a)\n a = 0 .. 0\n WRITE D <- NEW(8)\n -> D U(a)\nBODY none\nEND\n"},
		{"bad char", "T(a)\n a = 0 .. 1 @\nBODY none\nEND\n"},
	}
	for _, c := range cases {
		if _, err := Compile(c.name, c.src, Env{}); err == nil {
			t.Errorf("%s: compiled without error", c.name)
		}
	}
}

func TestLexer(t *testing.T) {
	toks, err := lex("A <- (x) ? .. -> == # comment\nnext")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.String())
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, `"<-"`) || !strings.Contains(joined, `".."`) ||
		!strings.Contains(joined, `"->"`) || !strings.Contains(joined, `"=="`) {
		t.Errorf("lexed: %s", joined)
	}
	// Comment swallowed, newline kept, "next" present.
	if !strings.Contains(joined, `"next"`) || strings.Contains(joined, "comment") {
		t.Errorf("comment handling: %s", joined)
	}
}

// Property: ternary/comparison expressions compiled from text agree with
// direct Go evaluation over random arguments.
func TestPropertyExprSemantics(t *testing.T) {
	env := Env{Consts: map[string]int{}}
	results := []struct {
		src string
		fn  func(a, b, c int) int
	}{
		{"a + b * c", func(a, b, c int) int { return a + b*c }},
		{"(a - b) * (c + 1)", func(a, b, c int) int { return (a - b) * (c + 1) }},
		{"a < b ? a : b", func(a, b, c int) int {
			if a < b {
				return a
			}
			return b
		}},
		{"a == b || b == c ? 1 : 0", func(a, b, c int) int {
			if a == b || b == c {
				return 1
			}
			return 0
		}},
	}
	for _, r := range results {
		r := r
		f := func(a, b, c int8) bool {
			got := exprEval(t, r.src, env, int(a), int(b), int(c))
			return got == r.fn(int(a), int(b), int(c))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%q: %v", r.src, err)
		}
	}
}

func TestLenientMode(t *testing.T) {
	src := `
T(i)
  i = 0 .. unknown_const + 2
  WRITE D <- DATA mystery(i)
  ; unknown_fn(i)
BODY whatever
END
`
	g, err := Compile("lenient", src, Env{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	_, total := g.CountTasks()
	if total != 3 { // unknown_const -> 0, range 0..2
		t.Errorf("instances = %d, want 3", total)
	}
	// Strict mode must reject the same source.
	if _, err := Compile("strict", src, Env{}); err == nil {
		t.Error("strict mode accepted unknown names")
	}
}
