package molecule

import (
	"testing"
	"testing/quick"
)

func TestPresetsValid(t *testing.T) {
	for _, name := range PresetNames() {
		s, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := s.Check(); err != nil {
			t.Errorf("%s inconsistent: %v", name, err)
		}
	}
	if _, err := Preset("unobtainium"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestBetaCaroteneScale(t *testing.T) {
	s := BetaCarotene631G()
	if s.BasisFns != 472 {
		t.Errorf("basis functions = %d, want 472 (paper §V)", s.BasisFns)
	}
	if s.NOccupied != 148 || s.NVirtual != 324 {
		t.Errorf("occ/virt = %d/%d, want 148/324", s.NOccupied, s.NVirtual)
	}
	// Two spins worth of tiles.
	if len(s.Occ)%2 != 0 || len(s.Virt)%2 != 0 {
		t.Error("odd tile counts; spins not duplicated")
	}
	for _, tl := range s.Virt {
		if tl.Size > s.TileTarget {
			t.Errorf("virt tile size %d exceeds target %d", tl.Size, s.TileTarget)
		}
	}
}

func TestTileSpinHalves(t *testing.T) {
	s := Water631G()
	half := len(s.Occ) / 2
	for i, tl := range s.Occ {
		wantSpin := 0
		if i >= half {
			wantSpin = 1
		}
		if tl.Spin != wantSpin {
			t.Errorf("occ tile %d spin %d, want %d", i, tl.Spin, wantSpin)
		}
	}
}

func TestTilesAccessor(t *testing.T) {
	s := Water631G()
	if len(s.Tiles(Occ)) != len(s.Occ) || len(s.Tiles(Virt)) != len(s.Virt) {
		t.Error("Tiles accessor mismatch")
	}
	if Occ.String() != "occ" || Virt.String() != "virt" {
		t.Error("SpaceKind String")
	}
}

func TestCustomIrrepDefault(t *testing.T) {
	s := Custom("x", 4, 6, 2, 0, 1)
	if s.NIrreps != 1 {
		t.Errorf("NIrreps defaulted to %d, want 1", s.NIrreps)
	}
	if err := s.Check(); err != nil {
		t.Error(err)
	}
}

// Property: any custom system is internally consistent and tile sizes are
// balanced (max - min <= 1 within a spin).
func TestPropertyCustomConsistent(t *testing.T) {
	f := func(occ, virt, tile, irr uint8) bool {
		nOcc := int(occ%50) + 1
		nVirt := int(virt%80) + 1
		target := int(tile%16) + 1
		nIrr := int(irr%6) + 1
		s := Custom("prop", nOcc, nVirt, target, nIrr, 7)
		if s.Check() != nil {
			return false
		}
		for _, kind := range []SpaceKind{Occ, Virt} {
			min, max := 1<<30, 0
			for _, tl := range s.Tiles(kind) {
				if tl.Size < min {
					min = tl.Size
				}
				if tl.Size > max {
					max = tl.Size
				}
			}
			if max-min > 1 || max > target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringContainsName(t *testing.T) {
	s := Benzene631G()
	if got := s.String(); len(got) == 0 || got[:7] != "benzene" {
		t.Errorf("String = %q", got)
	}
}
