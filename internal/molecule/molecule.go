// Package molecule models the orbital-space structure that determines the
// block (tile) layout of the CCSD tensors. NWChem's TCE partitions the
// occupied and virtual spin-orbital spaces into tiles carrying spin and
// spatial-symmetry (irrep) labels; the tile structure — not the chemistry —
// determines the chains of GEMMs that the paper's icsd_t2_7 subroutine
// executes, so this package is the workload's ground truth.
package molecule

import "fmt"

// SpaceKind distinguishes occupied (hole) from virtual (particle) orbitals.
type SpaceKind int

const (
	Occ  SpaceKind = iota // hole indices (h1, h2, h7, ...)
	Virt                  // particle indices (p3, p4, p5, ...)
)

// String returns "occ" or "virt".
func (s SpaceKind) String() string {
	if s == Occ {
		return "occ"
	}
	return "virt"
}

// Tile is one block of a spin-orbital space.
type Tile struct {
	Space  SpaceKind
	Index  int // tile index within its space (spin-orbital numbering)
	Offset int // first orbital covered
	Size   int // number of orbitals
	Spin   int // 0 = alpha, 1 = beta
	Irrep  int // spatial symmetry label in [0, NIrreps)
}

// System describes a tiled molecular problem.
type System struct {
	Name       string
	NOccupied  int // spatial occupied orbitals (per spin)
	NVirtual   int // spatial virtual orbitals (per spin)
	BasisFns   int // total spatial basis functions
	NIrreps    int
	TileTarget int // requested tile size
	Occ        []Tile
	Virt       []Tile
	Seed       uint64 // seeds the synthetic amplitudes/integrals
}

// String summarizes the system's sizes in one line.
func (s *System) String() string {
	return fmt.Sprintf("%s: %d basis fns (occ %d / virt %d per spin), %d occ + %d virt tiles, %d irreps",
		s.Name, s.BasisFns, s.NOccupied, s.NVirtual, len(s.Occ), len(s.Virt), s.NIrreps)
}

// Tiles returns the tile list for the given space.
func (s *System) Tiles(k SpaceKind) []Tile {
	if k == Occ {
		return s.Occ
	}
	return s.Virt
}

// irrepFor assigns a spatial-symmetry label to tile t of perSpin tiles.
// Real molecules populate irreps unevenly — the totally symmetric
// representation dominates — so labels are drawn from a skewed sequence
// rather than a uniform cycle. The skew produces the chain-length
// variance (and hence load imbalance) the original code's work stealing
// exists to absorb (§IV-D).
func irrepFor(t, nIrreps int) int {
	if nIrreps == 1 {
		return 0
	}
	// A fixed pattern giving irrep 0 roughly twice the weight of irrep 1,
	// which in turn outweighs the rest, repeated over the tile sequence.
	pattern := []int{0, 1, 0, 2, 0, 1, 3, 0, 1, 2, 0, 3, 1, 0, 2, 1}
	return pattern[t%len(pattern)] % nIrreps
}

// tileSpace splits n spatial orbitals per spin into balanced tiles of at
// most target orbitals, duplicated for the two spins (alpha tiles first),
// with skew-weighted irrep labels — the same shape of structure TCE's
// tile_n scheme produces for a molecule without exploiting exact geometry.
func tileSpace(kind SpaceKind, n, target, nIrreps int) []Tile {
	if n <= 0 || target <= 0 {
		panic(fmt.Sprintf("molecule: tileSpace(%d, %d)", n, target))
	}
	perSpin := (n + target - 1) / target
	var tiles []Tile
	idx := 0
	for spin := 0; spin < 2; spin++ {
		off := spin * n
		rem := n
		for t := 0; t < perSpin; t++ {
			size := rem / (perSpin - t)
			tiles = append(tiles, Tile{
				Space:  kind,
				Index:  idx,
				Offset: off,
				Size:   size,
				Spin:   spin,
				Irrep:  irrepFor(t, nIrreps),
			})
			off += size
			rem -= size
			idx++
		}
	}
	return tiles
}

// Custom builds a system from explicit parameters. nOcc and nVirt are
// spatial counts per spin; tiles are duplicated over the two spins.
func Custom(name string, nOcc, nVirt, tileTarget, nIrreps int, seed uint64) *System {
	if nIrreps <= 0 {
		nIrreps = 1
	}
	return &System{
		Name:       name,
		NOccupied:  nOcc,
		NVirtual:   nVirt,
		BasisFns:   nOcc + nVirt,
		NIrreps:    nIrreps,
		TileTarget: tileTarget,
		Occ:        tileSpace(Occ, nOcc, tileTarget, nIrreps),
		Virt:       tileSpace(Virt, nVirt, tileTarget, nIrreps),
		Seed:       seed,
	}
}

// BetaCarotene631G returns a system with the scale of the paper's
// evaluation input: beta-carotene in the 6-31G basis, 472 basis functions
// (C40H56: 148 occupied, 324 virtual spatial orbitals), tiled at the
// TCE-typical tilesize of 40, with 4 symmetry labels standing in for the
// spatial-symmetry pruning of the real integrals.
func BetaCarotene631G() *System {
	return Custom("beta-carotene/6-31G", 148, 324, 40, 4, 0xbe7a)
}

// Benzene631G returns a medium system (66 basis functions) usable for
// simulator runs that finish quickly.
func Benzene631G() *System {
	return Custom("benzene/6-31G", 21, 45, 12, 2, 0xbe52)
}

// Water631G returns a tiny system (13 basis functions) whose full CCSD
// kernel runs in milliseconds with real arithmetic; used by unit tests
// and the real-runtime examples.
func Water631G() *System {
	return Custom("water/6-31G", 5, 8, 3, 2, 0x3a7e)
}

// Uracil631G returns uracil (C4H4N2O2, 88 basis functions): a mid-size
// system between benzene and beta-carotene.
func Uracil631G() *System {
	return Custom("uracil/6-31G", 29, 59, 16, 4, 0x0bac)
}

// Porphin631G returns free-base porphin (C20H14N4, ~244 basis
// functions), the core of the porphyrin systems the TCE's alternative
// task scheduling was demonstrated on (paper ref [13]).
func Porphin631G() *System {
	return Custom("porphin/6-31G", 81, 163, 30, 4, 0x90f1)
}

// Preset returns a named preset system.
func Preset(name string) (*System, error) {
	switch name {
	case "betacarotene", "beta-carotene":
		return BetaCarotene631G(), nil
	case "porphin":
		return Porphin631G(), nil
	case "uracil":
		return Uracil631G(), nil
	case "benzene":
		return Benzene631G(), nil
	case "water":
		return Water631G(), nil
	}
	return nil, fmt.Errorf("molecule: unknown preset %q (want water, benzene, uracil, porphin, or betacarotene)", name)
}

// PresetNames lists the available presets.
func PresetNames() []string {
	return []string{"water", "benzene", "uracil", "porphin", "betacarotene"}
}

// Check validates internal consistency: tile sizes sum to the space size
// per spin, offsets are contiguous, labels are in range.
func (s *System) Check() error {
	for _, kind := range []SpaceKind{Occ, Virt} {
		tiles := s.Tiles(kind)
		want := s.NOccupied
		if kind == Virt {
			want = s.NVirtual
		}
		sums := [2]int{}
		for i, t := range tiles {
			if t.Index != i {
				return fmt.Errorf("%v tile %d has Index %d", kind, i, t.Index)
			}
			if t.Size <= 0 {
				return fmt.Errorf("%v tile %d has Size %d", kind, i, t.Size)
			}
			if t.Spin != 0 && t.Spin != 1 {
				return fmt.Errorf("%v tile %d has Spin %d", kind, i, t.Spin)
			}
			if t.Irrep < 0 || t.Irrep >= s.NIrreps {
				return fmt.Errorf("%v tile %d has Irrep %d of %d", kind, i, t.Irrep, s.NIrreps)
			}
			sums[t.Spin] += t.Size
		}
		if sums[0] != want || sums[1] != want {
			return fmt.Errorf("%v tiles cover %v orbitals, want %d per spin", kind, sums, want)
		}
	}
	return nil
}
