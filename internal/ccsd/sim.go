package ccsd

import (
	"fmt"

	"parsec/internal/cgp"
	"parsec/internal/cluster"
	"parsec/internal/fault"
	"parsec/internal/ga"
	"parsec/internal/molecule"
	"parsec/internal/sched"
	"parsec/internal/sim"
	"parsec/internal/simexec"
	"parsec/internal/tce"
	"parsec/internal/trace"
)

// SimBehaviors returns the executor behaviors that go beyond a plain cost
// charge. Only WRITE needs one: it is the critical section of §IV-A —
// lock the node-wide mutex, apply Corig += Csorted through
// ADD_HASH_BLOCK, unlock. The three write organizations differ exactly as
// the paper describes:
//
//   - parallel writes (v1, v3): each WRITE_C_i locks and accumulates one
//     sorted matrix — more lock/unlock system calls, more GA traffic;
//   - single write, parallel sorts (v2, v4): one WRITE_C merges its up to
//     four inputs locally, then performs a single accumulate under one
//     lock — a longer critical region;
//   - single write, single sort (v5): one input, one accumulate, with the
//     sorted matrix still hot in cache.
func SimBehaviors(w *tce.Workload, spec VariantSpec, ps []*chainPlan) map[string]simexec.Behavior {
	return simBehaviorsSpan(w, spec, ps, spec.MustShape().WriteSpan)
}

// simBehaviorsSpan is SimBehaviors with the Fig 8 write span: each WRITE
// instance accumulates only its 1/span slice.
func simBehaviorsSpan(w *tce.Workload, spec VariantSpec, ps []*chainPlan, span int) map[string]simexec.Behavior {
	if span < 1 {
		span = 1
	}
	return map[string]simexec.Behavior{
		"WRITE": func(ctx *simexec.TaskCtx) {
			p := ps[ctx.Inst.Ref.Args[0]]
			inputs := ctx.ActiveInputs()
			node := ctx.M.Nodes[ctx.Node]
			node.WriteMutex.Lock(ctx.P)
			sliceBytes := (p.cbytes + int64(span) - 1) / int64(span)
			if len(inputs) > 1 {
				// Merge the sorted matrices locally before the single
				// accumulate (Fig 6).
				ctx.M.MemOp(ctx.P, ctx.Node, int64(len(inputs)-1)*2*sliceBytes, true)
			}
			out := p.meta.Out
			ctx.GA.AddHashBlock(ctx.P, ctx.Node, ctx.Node,
				(out.Bytes()+int64(span)-1)/int64(span), out.Dims[0]*out.Dims[1]/span+1)
			node.WriteMutex.Unlock(ctx.P)
		},
	}
}

// SimRunConfig configures one simulated execution of a variant.
type SimRunConfig struct {
	CoresPerNode int
	Trace        *trace.Trace
	Horizon      sim.Time
	// SegmentHeight overrides the GEMM segment height (ablation).
	SegmentHeight int
	// Kernel selects the TCE kernel: "t2_7" (default) or "t1_2".
	Kernel string
	// Queues selects the intra-node scheduling structure (ablation of the
	// §IV-D work-stealing choice).
	Queues sched.QueueMode
	// WriteSpan > 1 splits output blocks across adjacent nodes (Fig 8).
	WriteSpan int
	// Faults, if non-nil, perturbs the run: the machine consults it for
	// straggler slowdowns and the executor for transfer and GA-service
	// faults. The caller keeps the handle to read the attribution ledger
	// afterwards.
	Faults *fault.Injector
	// InterNodeSteal enables the straggler-recovery re-dispatch path
	// (requires Queues == PerWorkerSteal).
	InterNodeSteal bool
	// Retry overrides the comm thread's loss-recovery policy (zero value
	// selects simexec.DefaultRetryPolicy).
	Retry simexec.RetryPolicy
}

// RunSim executes one variant on a fresh simulated machine built from the
// cluster configuration, returning the simexec result. The workload must
// have been inspected; block owners are derived from the machine's GA
// distribution regardless of how the workload was located, so callers can
// reuse one inspection across machine sizes.
func RunSim(sys *molecule.System, spec VariantSpec, mcfg cluster.Config, rc SimRunConfig) (simexec.Result, error) {
	res, _, err := runSimGA(sys, spec, mcfg, rc)
	return res, err
}

// runSimGA is RunSim additionally returning the GA substrate, whose
// operation counters the profiler reads after the run.
func runSimGA(sys *molecule.System, spec VariantSpec, mcfg cluster.Config, rc SimRunConfig) (simexec.Result, *ga.Sim, error) {
	if rc.CoresPerNode <= 0 {
		return simexec.Result{}, nil, fmt.Errorf("ccsd: CoresPerNode = %d", rc.CoresPerNode)
	}
	eng := sim.NewEngine()
	m := cluster.New(eng, mcfg)
	m.SetFaults(rc.Faults)
	gs := ga.NewSim(m)
	k, err := tce.KernelByName(rc.Kernel, sys)
	if err != nil {
		return simexec.Result{}, nil, err
	}
	w := tce.Inspect(k, func(ref tce.BlockRef) int {
		return gs.Distribution().Owner(ref.Tensor, ref.Key)
	})
	shape, err := EffectiveShape(spec, rc.SegmentHeight, rc.WriteSpan)
	if err != nil {
		return simexec.Result{}, nil, err
	}
	ps := plans(w, shape)
	g := BuildGraph(w, spec, Options{Nodes: mcfg.Nodes, SegmentHeight: rc.SegmentHeight, WriteSpan: rc.WriteSpan})
	policy := sched.PriorityOrder
	if !spec.UsePriorities() {
		policy = sched.LIFOOrder
	}
	res, err := simexec.Run(g, m, gs, simexec.Config{
		CoresPerNode:   rc.CoresPerNode,
		Policy:         policy,
		Queues:         rc.Queues,
		Behaviors:      simBehaviorsSpan(w, spec, ps, shape.WriteSpan),
		Trace:          rc.Trace,
		Horizon:        rc.Horizon,
		Retry:          rc.Retry,
		InterNodeSteal: rc.InterNodeSteal,
	})
	return res, gs, err
}

// RunSimBaseline executes the original CGP code path on a fresh simulated
// machine for the same system, for side-by-side Fig 9 comparisons.
func RunSimBaseline(sys *molecule.System, mcfg cluster.Config, ranksPerNode int, tr *trace.Trace) (sim.Time, error) {
	return RunSimBaselineKernel(sys, "t2_7", mcfg, ranksPerNode, tr)
}

// RunSimBaselineKernel is RunSimBaseline with an explicit kernel choice.
func RunSimBaselineKernel(sys *molecule.System, kernel string, mcfg cluster.Config, ranksPerNode int, tr *trace.Trace) (sim.Time, error) {
	return RunSimBaselineFaults(sys, kernel, mcfg, ranksPerNode, tr, nil)
}

// RunSimBaselineFaults is RunSimBaselineKernel under a fault injector.
// The CGP baseline has no comm threads — its GETs and ACCs are
// one-sided — so only stragglers and GA-service hiccups apply; its
// NXTVAL work distribution then rebalances around them on its own,
// which is the natural contrast to the PTG executors' re-dispatch.
func RunSimBaselineFaults(sys *molecule.System, kernel string, mcfg cluster.Config, ranksPerNode int, tr *trace.Trace, inj *fault.Injector) (sim.Time, error) {
	eng := sim.NewEngine()
	m := cluster.New(eng, mcfg)
	m.SetFaults(inj)
	gs := ga.NewSim(m)
	k, err := tce.KernelByName(kernel, sys)
	if err != nil {
		return 0, err
	}
	w := tce.Inspect(k, func(ref tce.BlockRef) int {
		return gs.Distribution().Owner(ref.Tensor, ref.Key)
	})
	res, err := cgp.Run(w, m, gs, cgp.Config{RanksPerNode: ranksPerNode, Trace: tr})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
