package ccsd

import (
	"time"

	"parsec/internal/ga"
	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/runtime"
	"parsec/internal/sched"
	"parsec/internal/tce"
	"parsec/internal/trace"
	"parsec/internal/xform"
)

// CompiledPlan is the reusable front half of the pipeline: the inspected
// workload plus the per-chain GEMM segmentation and reduction-tree
// shapes for one (system, variant, graph-shape) triple. Everything in it
// is a pure function of those inputs — no Global Arrays store, no
// scheduler state — so a plan compiled once can back any number of
// executions, which is what the service's content-keyed cache holds.
type CompiledPlan struct {
	// Sys is the inspected molecular system.
	Sys *molecule.System
	// Spec is the algorithmic variant the plan was compiled for.
	Spec VariantSpec
	// Opts is the graph shape (nodes, segment height, write span). The
	// Store field is always nil here; executions bind their own store.
	Opts Options
	// Shape is the resolved plan shape: the spec's recipe with the
	// Options overrides applied and normalized. Everything the chain
	// plans and the graph skeleton depend on — besides the workload and
	// node count — is in here, which is why the service's plan-cache key
	// hashes its canonical string.
	Shape xform.Shape
	// Workload is the inspection result: chains, block shapes, FLOP
	// counts, and the reference-energy machinery.
	Workload *tce.Workload
	// InspectTime and PlanTime record how long inspection and chain
	// planning took — the cost a cache hit avoids.
	InspectTime time.Duration
	PlanTime    time.Duration

	ps []*chainPlan
}

// Compile runs the inspection phase and chain planning for the T2_7
// kernel on sys and returns the cacheable plan. opts.Store is ignored
// (and cleared): stores are per-execution, not part of the plan.
func Compile(sys *molecule.System, spec VariantSpec, opts Options) *CompiledPlan {
	opts.Store = nil
	shape := effectiveShape(spec, opts)
	t0 := time.Now()
	w := tce.Inspect(tce.T2_7(sys), nil)
	t1 := time.Now()
	ps := plans(w, shape)
	return &CompiledPlan{
		Sys:         sys,
		Spec:        spec,
		Opts:        opts,
		Shape:       shape,
		Workload:    w,
		InspectTime: t1.Sub(t0),
		PlanTime:    time.Since(t1),
		ps:          ps,
	}
}

// NewGraph binds the compiled plan to a store and returns a fresh task
// graph for one execution. The expensive inspection and planning work is
// reused verbatim; only the (cheap) graph skeleton is rebuilt, because
// task bodies close over the per-job store.
func (p *CompiledPlan) NewGraph(store ga.API) *ptg.Graph {
	opts := p.Opts
	opts.Store = store
	return buildGraphFrom(p.Workload, p.Spec.Name, p.Shape, opts, p.ps)
}

// NumChains returns the number of GEMM chains in the plan's workload.
func (p *CompiledPlan) NumChains() int { return len(p.ps) }

// FootprintBytes returns the estimated resident tensor footprint of one
// execution of the plan: the distinct blocks of both input tensors plus
// the distinct output blocks, straight from the inspection metadata.
// Per-chain C scratch is excluded — it is pooled and bounded by worker
// count, not workload size. The service's memory-based admission and
// its backend-selection threshold both key off this number.
func (p *CompiledPlan) FootprintBytes() int64 { return workloadFootprint(p.Workload) }

// EstimateFootprint inspects sys and returns the same footprint a plan
// compiled for it would report, without chain planning or graph
// construction. It is a pure function of the system (variant and graph
// shape do not change which blocks exist), so callers may memoize it by
// system identity.
func EstimateFootprint(sys *molecule.System) int64 {
	return workloadFootprint(tce.Inspect(tce.T2_7(sys), nil))
}

// workloadFootprint sums the distinct input and output blocks of a
// workload in bytes.
func workloadFootprint(w *tce.Workload) int64 {
	var total int64
	aName, bName := w.InputTensors()
	for _, name := range []string{aName, bName, tce.TensorC} {
		for _, ref := range w.UniqueBlocks(name) {
			total += ref.Bytes()
		}
	}
	return total
}

// ExecConfig controls one execution of a compiled plan.
type ExecConfig struct {
	// Workers is the goroutine count (0 = GOMAXPROCS).
	Workers int
	// Queue selects the ready-queue structure; the zero value is the
	// shared queue.
	Queue sched.QueueMode
	// Trace, when non-nil, records every completed task for obsv
	// profiling.
	Trace *trace.Trace
	// Cancel, when non-nil, aborts the run when it becomes readable;
	// the error returned satisfies errors.Is(err, runtime.ErrCanceled).
	Cancel <-chan struct{}
}

// Execute runs the compiled plan once: it creates a fresh store, fills
// the input tensors, binds the graph, and executes it, returning the
// correlation energy. Concurrent Executes of the same plan are safe —
// the plan is read-only after Compile.
func (p *CompiledPlan) Execute(cfg ExecConfig) (RealResult, error) {
	w := p.Workload
	store := ga.NewStore(1)
	aName, bName := w.InputTensors()
	a := store.Create(aName)
	bt := store.Create(bName)
	store.Create(tce.TensorC)
	for _, ref := range w.UniqueBlocks(aName) {
		w.FillBlock(ref, a.GetOrCreate(ref.Key, ref.Dims))
	}
	for _, ref := range w.UniqueBlocks(bName) {
		w.FillBlock(ref, bt.GetOrCreate(ref.Key, ref.Dims))
	}

	g := p.NewGraph(store)
	policy := sched.PriorityOrder
	if !p.Spec.UsePriorities() {
		policy = sched.LIFOOrder
	}
	rcfg := runtime.Config{
		Workers: cfg.Workers,
		Policy:  policy,
		Queues:  cfg.Queue,
		Cancel:  cfg.Cancel,
	}
	if cfg.Trace != nil {
		rcfg.Observer = runtime.TraceObserver(0, cfg.Trace)
	}
	rep, err := runtime.Run(g, rcfg)
	if err != nil {
		return RealResult{}, err
	}
	return RealResult{
		Energy: w.Energy(store.Array(tce.TensorC)),
		Report: rep,
	}, nil
}
