package ccsd

import (
	"fmt"

	"parsec/internal/ga"
	"parsec/internal/ptg"
	"parsec/internal/tce"
	"parsec/internal/tensor"
	"parsec/internal/xform"
)

// Options configures graph construction.
type Options struct {
	// Nodes is the affinity modulus: chains are distributed round-robin
	// over this many nodes (§IV-D), reads and writes run at the nodes
	// owning the Global Array blocks (§IV-B). Use 1 for shared memory.
	Nodes int
	// Store, when non-nil, attaches real task bodies operating on the
	// Global Arrays surface (for the goroutine runtime and the socket
	// runtime). When nil the graph carries only the simulation cost
	// model.
	Store ga.API
	// SegmentHeight overrides the recipe's GEMM segment height; <= 0
	// keeps the recipe's value (full chain for v1, height 1 for v2-v5).
	// This is the locality/parallelism dial of §IV-A.
	SegmentHeight int
	// WriteSpan > 1 overrides the recipe's write span: each output block
	// splits across that many adjacent nodes, as Fig 8 depicts — one
	// WRITE_C instance per node holding a segment, each receiving only
	// the slice of the sorted matrix relevant to its node. Applies to
	// the fused-write shapes (v2/v4/v5); 0 keeps the recipe's value.
	WriteSpan int
}

// Priority offsets of §IV-C: "We assign a higher priority to the tasks
// that read the input data ... (+5), then follow the tasks that perform
// the GEMM operation with offset +1, and all other task classes do not
// have an offset", each scaled by the number of participating nodes P,
// yielding a data-prefetch pipeline of depth 5·P.
const (
	readPriorityOffset = 5
	gemmPriorityOffset = 1
)

// builder carries construction state: the resolved plan shape (recipe
// plus Options overrides) and the per-chain plans realized from it.
type builder struct {
	g     *ptg.Graph
	w     *tce.Workload
	shape xform.Shape
	opts  Options
	ps    []*chainPlan
	nodes int
}

// BuildGraph constructs the PTG for one variant of the ported subroutine.
func BuildGraph(w *tce.Workload, spec VariantSpec, opts Options) *ptg.Graph {
	shape := effectiveShape(spec, opts)
	return buildGraphFrom(w, spec.Name, shape, opts, plans(w, shape))
}

// buildGraphFrom is BuildGraph with the shape resolved and the chain
// plans supplied by the caller, so a CompiledPlan can rebind its cached
// plans to a fresh per-job store without re-deriving them.
func buildGraphFrom(w *tce.Workload, name string, shape xform.Shape, opts Options, ps []*chainPlan) *ptg.Graph {
	nodes := opts.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	b := &builder{
		g:     ptg.NewGraph(fmt.Sprintf("icsd_t2_7-%s", name)),
		w:     w,
		shape: shape,
		opts:  opts,
		ps:    ps,
		nodes: nodes,
	}
	b.buildDFill()
	b.buildReads()
	b.buildGemm()
	b.buildReduce()
	b.buildSort()
	b.buildWrite()
	return b.g
}

// ---- helpers ----

func (b *builder) numChains() int { return len(b.ps) }

// chainNode is the §IV-D static round-robin distribution of chains.
func (b *builder) chainNode(l1 int) int { return l1 % b.nodes }

func (b *builder) ownerNode(recorded int) int {
	if recorded < 0 {
		return 0
	}
	return recorded % b.nodes
}

// priority returns the §IV-C expression max_L1 - L1 + offset*P, or nil
// when the shape's priority scheme is none.
func (b *builder) priority(offset int) func(ptg.Args) int64 {
	if b.shape.Prio != xform.PrioPaper {
		return nil
	}
	max := int64(b.numChains())
	p := int64(b.nodes)
	return func(a ptg.Args) int64 { return max - int64(a[0]) + int64(offset)*p }
}

// reduceFlow names the REDUCE input flow of the which-th child: "X" is
// the read-write accumulator branch, "Y", "Y2", ... the read-only
// siblings folded into it. Arity-2 trees therefore keep the historical
// X/Y naming bit-for-bit.
func reduceFlow(which int) string {
	switch which {
	case 0:
		return "X"
	case 1:
		return "Y"
	}
	return fmt.Sprintf("Y%d", which)
}

// sortSource identifies the producer of a chain's final C: the last GEMM
// when there is a single segment, else the top of the reduction tree.
func (b *builder) sortSource(l1 int) (ptg.TaskRef, string) {
	p := b.ps[l1]
	if p.m == 1 {
		return ptg.TaskRef{Class: "GEMM", Args: ptg.A2(l1, p.n-1)}, "C"
	}
	return ptg.TaskRef{Class: "REDUCE", Args: ptg.A3(l1, p.top, 0)}, "X"
}

// addSortStageOuts appends the guarded output dependencies that route a
// chain's final C to its SORT task(s). srcGuard limits firing to the
// producing instance.
func (b *builder) addSortStageOuts(f *ptg.Flow, srcGuard func(ptg.Args) bool) {
	if b.shape.SortFission {
		for i := 0; i < 4; i++ {
			i := i
			f.Out(func(a ptg.Args) bool {
				return srcGuard(a) && i < b.ps[a[0]].nsorts
			}, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "SORT", Args: ptg.A2(a[0], i)}, "C"
			})
		}
		return
	}
	f.Out(srcGuard, func(a ptg.Args) (ptg.TaskRef, string) {
		return ptg.TaskRef{Class: "SORT", Args: ptg.A1(a[0])}, "C"
	})
}

// ---- task classes ----

func (b *builder) buildDFill() {
	tc := b.g.Class("DFILL")
	tc.Domain = func(emit func(ptg.Args)) {
		for l1, p := range b.ps {
			for s := 0; s < p.m; s++ {
				emit(ptg.A2(l1, s))
			}
		}
	}
	tc.Affinity = func(a ptg.Args) int { return b.chainNode(a[0]) }
	tc.Priority = b.priority(0)
	tc.Cost = func(a ptg.Args) ptg.Cost {
		return ptg.Cost{MemBytes: b.ps[a[0]].cbytes}
	}
	tc.FlowBytes = func(a ptg.Args, flow string) int64 { return b.ps[a[0]].cbytes }
	f := tc.AddFlow("C", ptg.Write)
	f.InNew(nil, func(a ptg.Args) int64 { return b.ps[a[0]].cbytes })
	f.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
		return ptg.TaskRef{Class: "GEMM", Args: ptg.A2(a[0], a[1]*b.ps[a[0]].h)}, "C"
	})
	if store := b.opts.Store; store != nil {
		tc.Body = func(ctx *ptg.Ctx) {
			d := b.ps[ctx.Args[0]].meta.CDims
			// Pooled: the chain accumulator is recycled by the consumer
			// that retires it (REDUCE folds its Y branches, the serial SORT
			// retires the chain's final C).
			ctx.Out[0] = tensor.GetTile4ZeroedIn(ctx.Pool, d[0], d[1], d[2], d[3])
		}
	}
}

func (b *builder) buildReads() {
	type readSpec struct {
		class string
		ref   func(g tce.GemmMeta) tce.BlockRef
		node  func(g tce.GemmMeta) int
	}
	for _, rs := range []readSpec{
		{"READA",
			func(g tce.GemmMeta) tce.BlockRef { return g.Op.A },
			func(g tce.GemmMeta) int { return g.ANode }},
		{"READB",
			func(g tce.GemmMeta) tce.BlockRef { return g.Op.B },
			func(g tce.GemmMeta) int { return g.BNode }},
	} {
		rs := rs
		tc := b.g.Class(rs.class)
		tc.Domain = func(emit func(ptg.Args)) {
			for l1, p := range b.ps {
				for l2 := 0; l2 < p.n; l2++ {
					emit(ptg.A2(l1, l2))
				}
			}
		}
		// Reads execute where the Global Array segment lives (Fig 1's
		// find_last_segment_owner); PaRSEC ships the result to the GEMM.
		tc.Affinity = func(a ptg.Args) int {
			return b.ownerNode(rs.node(b.ps[a[0]].meta.Gemms[a[1]]))
		}
		tc.Priority = b.priority(readPriorityOffset)
		tc.Cost = func(a ptg.Args) ptg.Cost {
			// Local gather of the strided block into a contiguous send
			// buffer via ga_access (§IV-B): memory traffic only.
			return ptg.Cost{MemBytes: 2 * rs.ref(b.ps[a[0]].meta.Gemms[a[1]]).Bytes()}
		}
		tc.FlowBytes = func(a ptg.Args, flow string) int64 {
			return rs.ref(b.ps[a[0]].meta.Gemms[a[1]]).Bytes()
		}
		flowName := "A"
		if rs.class == "READB" {
			flowName = "B"
		}
		f := tc.AddFlow("D", ptg.Write)
		f.InData(nil, func(a ptg.Args) ptg.DataRef {
			ref := rs.ref(b.ps[a[0]].meta.Gemms[a[1]])
			return ptg.DataRef{ID: ref.String(), Node: b.ownerNode(rs.node(b.ps[a[0]].meta.Gemms[a[1]])), Bytes: ref.Bytes()}
		})
		f.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "GEMM", Args: a}, flowName
		})
		if store := b.opts.Store; store != nil {
			tc.Body = func(ctx *ptg.Ctx) {
				ref := rs.ref(b.ps[ctx.Args[0]].meta.Gemms[ctx.Args[1]])
				// ga_access: direct, zero-copy reference (§IV-B); GEMMs
				// only read A and B, so no copy is needed.
				ctx.Out[0] = store.Access(ref.Tensor, ref.Key)
			}
		}
	}
}

func (b *builder) buildGemm() {
	tc := b.g.Class("GEMM")
	tc.Domain = func(emit func(ptg.Args)) {
		for l1, p := range b.ps {
			for l2 := 0; l2 < p.n; l2++ {
				emit(ptg.A2(l1, l2))
			}
		}
	}
	tc.Affinity = func(a ptg.Args) int { return b.chainNode(a[0]) }
	tc.Priority = b.priority(gemmPriorityOffset)
	tc.Cost = func(a ptg.Args) ptg.Cost {
		p := b.ps[a[0]]
		g := p.meta.Gemms[a[1]]
		return ptg.Cost{
			Flops:     g.Op.Flops(),
			GemmBytes: g.Op.A.Bytes() + g.Op.B.Bytes() + p.cbytes,
			// A and B panels are streamed fresh from memory regardless of
			// chain organization, so GEMM traffic is never cache-warm;
			// v1's locality advantage shows up in the SORT/WRITE path.
			Warm: false,
		}
	}
	tc.FlowBytes = func(a ptg.Args, flow string) int64 {
		if flow == "C" {
			return b.ps[a[0]].cbytes
		}
		return 0
	}
	tc.AddFlow("A", ptg.Read).In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
		return ptg.TaskRef{Class: "READA", Args: a}, "D"
	})
	tc.AddFlow("B", ptg.Read).In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
		return ptg.TaskRef{Class: "READB", Args: a}, "D"
	})
	c := tc.AddFlow("C", ptg.RW)
	c.In(func(a ptg.Args) bool { return b.ps[a[0]].posInSeg(a[1]) == 0 },
		func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "DFILL", Args: ptg.A2(a[0], b.ps[a[0]].seg(a[1]))}, "C"
		})
	c.In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
		return ptg.TaskRef{Class: "GEMM", Args: ptg.A2(a[0], a[1]-1)}, "C"
	})
	// Within a segment: pass C to the next GEMM.
	c.Out(func(a ptg.Args) bool { return !b.ps[a[0]].isSegEnd(a[1]) },
		func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "GEMM", Args: ptg.A2(a[0], a[1]+1)}, "C"
		})
	// Segment end, multiple segments: feed the reduction tree (Fig 4).
	c.Out(func(a ptg.Args) bool {
		p := b.ps[a[0]]
		return p.isSegEnd(a[1]) && p.m > 1
	}, func(a ptg.Args) (ptg.TaskRef, string) {
		p := b.ps[a[0]]
		s := p.seg(a[1])
		return ptg.TaskRef{Class: "REDUCE", Args: ptg.A3(a[0], 1, s/p.arity)}, reduceFlow(s % p.arity)
	})
	// Single segment: go straight to the SORT stage.
	b.addSortStageOuts(c, func(a ptg.Args) bool {
		p := b.ps[a[0]]
		return p.isSegEnd(a[1]) && p.m == 1
	})
	if store := b.opts.Store; store != nil {
		tc.Body = func(ctx *ptg.Ctx) {
			at := ctx.In[0].(*tensor.Tile4)
			bt := ctx.In[1].(*tensor.Tile4)
			ct := ctx.In[2].(*tensor.Tile4)
			// dgemm('T', 'N', ...) as in Fig 1. Large products split
			// their C columns across idle workers through the runtime's
			// lending handle; the result is bitwise identical to a
			// serial Gemm for any part count.
			tensor.GemmP(ctx.Par, ctx.Pool, true, false, 1, at.AsMatrix(), bt.AsMatrix(), 1, ct.AsMatrix())
			ctx.Out[2] = ct
		}
	}
}

func (b *builder) buildReduce() {
	tc := b.g.Class("REDUCE")
	tc.Domain = func(emit func(ptg.Args)) {
		for l1, p := range b.ps {
			for lvl := 1; lvl <= p.top; lvl++ {
				for i := 0; i < p.width[lvl]; i++ {
					emit(ptg.A3(l1, lvl, i))
				}
			}
		}
	}
	tc.Affinity = func(a ptg.Args) int { return b.chainNode(a[0]) }
	tc.Priority = b.priority(0)
	tc.Cost = func(a ptg.Args) ptg.Cost {
		// Fold up to arity-1 sibling buffers into the accumulator: one
		// read + one write per fold, plus the accumulator read.
		return ptg.Cost{MemBytes: int64(2*b.ps[a[0]].arity - 1) * b.ps[a[0]].cbytes}
	}
	tc.FlowBytes = func(a ptg.Args, flow string) int64 {
		if flow == "X" {
			return b.ps[a[0]].cbytes
		}
		return 0
	}
	childRef := func(a ptg.Args, which int) (ptg.TaskRef, string) {
		l1, lvl, i := a[0], a[1], a[2]
		child := b.ps[l1].arity*i + which
		if lvl == 1 {
			p := b.ps[l1]
			return ptg.TaskRef{Class: "GEMM", Args: ptg.A2(l1, p.segLast(child))}, "C"
		}
		return ptg.TaskRef{Class: "REDUCE", Args: ptg.A3(l1, lvl-1, child)}, "X"
	}
	x := tc.AddFlow("X", ptg.RW)
	x.In(nil, func(a ptg.Args) (ptg.TaskRef, string) { return childRef(a, 0) })
	maxArity := 2
	for _, p := range b.ps {
		if p.arity > maxArity {
			maxArity = p.arity
		}
	}
	for which := 1; which < maxArity; which++ {
		which := which
		y := tc.AddFlow(reduceFlow(which), ptg.Read)
		y.In(func(a ptg.Args) bool {
			p := b.ps[a[0]]
			return which < p.arity && p.arity*a[2]+which < p.width[a[1]-1]
		}, func(a ptg.Args) (ptg.TaskRef, string) { return childRef(a, which) })
	}
	// Upward edge: to the parent reduction, or to the SORT stage at top.
	x.Out(func(a ptg.Args) bool { return a[1] < b.ps[a[0]].top },
		func(a ptg.Args) (ptg.TaskRef, string) {
			p := b.ps[a[0]]
			return ptg.TaskRef{Class: "REDUCE", Args: ptg.A3(a[0], a[1]+1, a[2]/p.arity)}, reduceFlow(a[2] % p.arity)
		})
	b.addSortStageOuts(x, func(a ptg.Args) bool { return a[1] == b.ps[a[0]].top })
	if b.opts.Store != nil {
		tc.Body = func(ctx *ptg.Ctx) {
			xt := ctx.In[0].(*tensor.Tile4)
			for _, in := range ctx.In[1:] {
				if in == nil {
					continue
				}
				yt := in.(*tensor.Tile4)
				xt.AddScaled(yt, 1)
				// The sibling branches are folded here and have no other
				// consumer.
				tensor.PutTile4In(ctx.Pool, yt)
			}
			ctx.Out[0] = xt
		}
	}
}

func (b *builder) buildSort() {
	tc := b.g.Class("SORT")
	if b.shape.SortFission {
		tc.Domain = func(emit func(ptg.Args)) {
			for l1, p := range b.ps {
				for i := 0; i < p.nsorts; i++ {
					emit(ptg.A2(l1, i))
				}
			}
		}
	} else {
		tc.Domain = func(emit func(ptg.Args)) {
			for l1 := range b.ps {
				emit(ptg.A1(l1))
			}
		}
	}
	tc.Affinity = func(a ptg.Args) int { return b.chainNode(a[0]) }
	tc.Priority = b.priority(0)
	tc.Cost = func(a ptg.Args) ptg.Cost {
		p := b.ps[a[0]]
		if b.shape.SortFission {
			return ptg.Cost{MemBytes: tensor.Sort4Bytes(p.meta.Out.Elems())}
		}
		// One task performs every active SORT_4 serially, reusing hot
		// buffers (Fig 5): more traffic, better locality.
		return ptg.Cost{MemBytes: tensor.Sort4Bytes(p.meta.Out.Elems()) * int64(p.nsorts), Warm: true}
	}
	tc.FlowBytes = func(a ptg.Args, flow string) int64 {
		if flow == "S" {
			return b.ps[a[0]].cbytes
		}
		return 0
	}
	tc.AddFlow("C", ptg.Read).In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
		return b.sortSource(a[0])
	})
	s := tc.AddFlow("S", ptg.Write)
	s.InNew(nil, func(a ptg.Args) int64 { return b.ps[a[0]].cbytes })
	span := b.shape.WriteSpan
	switch {
	case b.shape.WriteFission:
		s.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "WRITE", Args: a}, "I0"
		})
	case b.shape.SortFission:
		for seg := 0; seg < span; seg++ {
			seg := seg
			s.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "WRITE", Args: ptg.A2(a[0], seg)}, fmt.Sprintf("I%d", a[1])
			})
		}
	default:
		for seg := 0; seg < span; seg++ {
			seg := seg
			s.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "WRITE", Args: ptg.A2(a[0], seg)}, "I0"
			})
		}
	}
	if b.opts.Store != nil {
		if b.shape.SortFission {
			tc.Body = func(ctx *ptg.Ctx) {
				p := b.ps[ctx.Args[0]]
				src := ctx.In[0].(*tensor.Tile4)
				br := p.meta.Sorts[ctx.Args[1]]
				d := p.meta.Out.Dims
				dst := tensor.NewTile4(d[0], d[1], d[2], d[3])
				tensor.Sort4(dst, src, br.Perm, br.Sign)
				ctx.Out[1] = dst
			}
		} else {
			tc.Body = func(ctx *ptg.Ctx) {
				p := b.ps[ctx.Args[0]]
				src := ctx.In[0].(*tensor.Tile4)
				d := p.meta.Out.Dims
				// dst is NOT pooled: AccOrdered retains it until the
				// ordered flush, and the fused graph shares it with the
				// ENERGY task. Each permutation accumulates straight
				// into the zeroed dst via Sort4Add — bitwise identical
				// to the old permute-into-scratch-then-AddScaled pair
				// (one multiply, one add per element either way), minus
				// a full tile of traffic per permutation.
				dst := tensor.NewTile4(d[0], d[1], d[2], d[3])
				for _, br := range p.meta.Sorts {
					tensor.Sort4Add(dst, src, br.Perm, br.Sign)
				}
				// The merged SORT is the single consumer of the chain's
				// final C (the fissioned-sort shapes share it across
				// four instances and must leave it to the GC).
				tensor.PutTile4In(ctx.Pool, src)
				ctx.Out[1] = dst
			}
		}
	}
}

func (b *builder) buildWrite() {
	tc := b.g.Class("WRITE")
	span := b.shape.WriteSpan
	if b.shape.WriteFission {
		tc.Domain = func(emit func(ptg.Args)) {
			for l1, p := range b.ps {
				for i := 0; i < p.nsorts; i++ {
					emit(ptg.A2(l1, i))
				}
			}
		}
	} else {
		tc.Domain = func(emit func(ptg.Args)) {
			for l1 := range b.ps {
				for seg := 0; seg < span; seg++ {
					emit(ptg.A2(l1, seg))
				}
			}
		}
	}
	// Writes run where the Global Array data lives (Fig 8); with a
	// spanning block, segment s lives on the s-th node after the base
	// owner.
	if b.shape.WriteFission {
		tc.Affinity = func(a ptg.Args) int { return b.ownerNode(b.ps[a[0]].meta.OutNode) }
	} else {
		tc.Affinity = func(a ptg.Args) int {
			return (b.ownerNode(b.ps[a[0]].meta.OutNode) + a[1]) % b.nodes
		}
		if span > 1 {
			// Each instance receives only its slice of the sorted matrix.
			tc.InBytes = func(a ptg.Args, flow string) int64 {
				return (b.ps[a[0]].cbytes + int64(span) - 1) / int64(span)
			}
		}
	}
	tc.Priority = b.priority(0)
	nIn := 1
	if !b.shape.WriteFission && b.shape.SortFission {
		nIn = 4
	}
	for i := 0; i < nIn; i++ {
		i := i
		f := tc.AddFlow(fmt.Sprintf("I%d", i), ptg.Read)
		switch {
		case b.shape.WriteFission:
			f.In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "SORT", Args: a}, "S"
			})
		case b.shape.SortFission:
			f.In(func(a ptg.Args) bool { return i < b.ps[a[0]].nsorts },
				func(a ptg.Args) (ptg.TaskRef, string) {
					return ptg.TaskRef{Class: "SORT", Args: ptg.A2(a[0], i)}, "S"
				})
		default:
			f.In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "SORT", Args: ptg.A1(a[0])}, "S"
			})
		}
		f.OutData(nil, func(a ptg.Args) ptg.DataRef {
			out := b.ps[a[0]].meta.Out
			return ptg.DataRef{ID: out.String(), Node: b.ownerNode(b.ps[a[0]].meta.OutNode), Bytes: out.Bytes()}
		})
	}
	if store := b.opts.Store; store != nil {
		// ADD_HASH_BLOCK semantics, but through the store's ordered
		// accumulation: contributions to a C block are folded in task
		// creation order (ctx.Seq), not completion order, so the energy
		// is bitwise identical under every scheduler configuration.
		if !b.shape.WriteFission && span > 1 {
			tc.Body = func(ctx *ptg.Ctx) {
				p := b.ps[ctx.Args[0]]
				seg := ctx.Args[1]
				n := p.meta.Out.Elems()
				lo, hi := seg*n/span, (seg+1)*n/span
				for fi, in := range ctx.In {
					if t, ok := in.(*tensor.Tile4); ok {
						ctx.Fail(store.AccOrdered(tce.TensorC, p.meta.Out.Key, t, 1, ctx.Seq*len(ctx.In)+fi, lo, hi))
					}
				}
			}
		} else {
			tc.Body = func(ctx *ptg.Ctx) {
				key := b.ps[ctx.Args[0]].meta.Out.Key
				for fi, in := range ctx.In {
					if t, ok := in.(*tensor.Tile4); ok {
						ctx.Fail(store.AccOrdered(tce.TensorC, key, t, 1, ctx.Seq*len(ctx.In)+fi, 0, t.Len()))
					}
				}
			}
		}
	}
	// WRITE has no Cost function: its simulated execution is supplied by
	// the executor behavior (mutex + ADD_HASH_BLOCK), see sim.go.
}
