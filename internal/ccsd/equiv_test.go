package ccsd

import (
	"encoding/json"
	"os"
	"testing"

	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/tce"
	"parsec/internal/xform"
)

// variantSig is one row of testdata/variant_sigs.json: the canonical
// graph signature a hand-written variant builder produced at the commit
// that still carried them. The goldens were generated BEFORE the
// refactor to transformation passes, so matching them proves the recipe
// pipeline regenerates the historical graphs exactly — same instances,
// edges, flows, priorities, affinities, costs, and byte accounting.
type variantSig struct {
	Kernel  string `json:"kernel"`
	Preset  string `json:"preset"`
	Nodes   int    `json:"nodes"`
	Variant string `json:"variant"`
	Seg     int    `json:"seg,omitempty"`
	Span    int    `json:"span,omitempty"`
	Tasks   int    `json:"tasks"`
	Edges   int    `json:"edges"`
	SHA256  string `json:"sha256"`
}

// TestRecipesReproduceHandWrittenGraphs is the tentpole equivalence
// proof: every golden configuration (v1–v5 across systems, kernels,
// node counts, plus segment-height and write-span overrides) must
// rebuild to a bit-identical canonical signature from its recipe.
func TestRecipesReproduceHandWrittenGraphs(t *testing.T) {
	buf, err := os.ReadFile("testdata/variant_sigs.json")
	if err != nil {
		t.Fatal(err)
	}
	var sigs []variantSig
	if err := json.Unmarshal(buf, &sigs); err != nil {
		t.Fatal(err)
	}
	if len(sigs) < 20 {
		t.Fatalf("only %d golden signatures", len(sigs))
	}
	workloads := map[string]*tce.Workload{}
	for _, gs := range sigs {
		gs := gs
		key := gs.Kernel + "/" + gs.Preset
		w := workloads[key]
		if w == nil {
			sys, err := molecule.Preset(gs.Preset)
			if err != nil {
				t.Fatal(err)
			}
			k, err := tce.KernelByName(gs.Kernel, sys)
			if err != nil {
				t.Fatal(err)
			}
			w = tce.Inspect(k, nil)
			workloads[key] = w
		}
		name := gs.Kernel + "/" + gs.Preset + "/" + gs.Variant
		t.Run(name, func(t *testing.T) {
			spec, err := VariantByName(gs.Variant)
			if err != nil {
				t.Fatal(err)
			}
			g := BuildGraph(w, spec, Options{Nodes: gs.Nodes, SegmentHeight: gs.Seg, WriteSpan: gs.Span})
			sig, err := ptg.Signature(g)
			if err != nil {
				t.Fatal(err)
			}
			if sig.Tasks != gs.Tasks || sig.Edges != gs.Edges {
				t.Fatalf("tasks/edges %d/%d, want %d/%d", sig.Tasks, sig.Edges, gs.Tasks, gs.Edges)
			}
			if sig.SHA256 != gs.SHA256 {
				t.Errorf("signature %s != golden %s (graph structure drifted from the hand-written builder)",
					sig.SHA256[:16], gs.SHA256[:16])
			}
		})
	}
}

// TestFlatRecipeSpellingsMatchNamedVariants: a variant written as an
// explicit pass list or flat grammar string builds the same graph as
// its v-name. This is satellite coverage for the recipe grammar: the
// named recipes carry no hidden state the grammar cannot spell.
func TestFlatRecipeSpellingsMatchNamedVariants(t *testing.T) {
	w := waterWorkload()
	spellings := map[string]string{
		"v1": "seg=full",
		"v2": "seg=1,fission=sorts,prio=none",
		"v3": "seg=1,fission=writes",
		"v4": "seg=1,fission=sorts",
		"v5": "seg=1,fission=none",
	}
	for name, flat := range spellings {
		named, err := VariantByName(name)
		if err != nil {
			t.Fatal(err)
		}
		derived, err := VariantByName(flat)
		if err != nil {
			t.Fatalf("%s as %q: %v", name, flat, err)
		}
		gn := BuildGraph(w, named, Options{Nodes: 4})
		gd := BuildGraph(w, derived, Options{Nodes: 4})
		sn, err := ptg.Signature(gn)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := ptg.Signature(gd)
		if err != nil {
			t.Fatal(err)
		}
		if sn.SHA256 != sd.SHA256 {
			t.Errorf("%s: flat spelling %q builds a different graph (%s vs %s)",
				name, flat, sd.SHA256[:16], sn.SHA256[:16])
		}
	}
}

// TestNewShapesMatchReference runs shapes the paper never hand-derived
// — wider reduction trees, intermediate segment heights from
// FuseSegments, spans on derived recipes — with real arithmetic. The
// §IV-A invariant extends across the whole recipe space: every shape
// computes the reference energy to 1e-12.
func TestNewShapesMatchReference(t *testing.T) {
	w := waterWorkload()
	ref := ReferenceEnergy(w)
	for _, src := range []string{
		"seg=1,tree=3",
		"seg=1,tree=4,fission=none",
		"seg=2,tree=3,fission=sorts",
		"seg=1,tree=8,fission=sorts,span=3",
		"seg=3,tree=2,fission=none,prio=none,span=2",
	} {
		spec, err := VariantByName(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunReal(w, spec, 4)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if d := relDiff(res.Energy, ref); d > 1e-12 {
			t.Errorf("%s: energy %.15g vs reference %.15g (rel %g)", src, res.Energy, ref, d)
		}
	}
	// FuseSegments composes: split to 1 then fuse by 2 equals seg=2.
	r, err := xform.Recipe{Passes: []xform.Pass{xform.SplitChain{Height: 1}, xform.FuseSegments{Factor: 2}}}.Shape()
	if err != nil {
		t.Fatal(err)
	}
	if r.SegHeight != 2 {
		t.Fatalf("FuseSegments landed on seg=%d, want 2", r.SegHeight)
	}
	res, err := RunReal(w, VariantFromRecipe(mustParse(t, "seg=2")), 4)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(res.Energy, ref); d > 1e-12 {
		t.Errorf("fused-segment shape: energy %.15g vs reference %.15g", res.Energy, ref)
	}
}

// TestChainPlanEdgeCases covers the segment math the FuseSegments pass
// leans on: heights above the chain length, single-GEMM chains, and
// h == n-1, plus reduction-tree widths at non-power-of-arity segment
// counts.
func TestChainPlanEdgeCases(t *testing.T) {
	chain := func(n int) *tce.ChainMeta { return &tce.ChainMeta{Gemms: make([]tce.GemmMeta, n)} }

	// h > n clamps to one segment, no tree.
	p := newChainPlan(chain(5), 9, 2)
	if p.h != 5 || p.m != 1 || p.top != 0 {
		t.Errorf("h>n: h=%d m=%d top=%d, want 5,1,0", p.h, p.m, p.top)
	}
	// n == 1: a single GEMM is one segment at any height.
	for _, h := range []int{0, 1, 3} {
		p = newChainPlan(chain(1), h, 2)
		if p.h != 1 || p.m != 1 || p.top != 0 || !p.isSegEnd(0) {
			t.Errorf("n=1 h=%d: %+v", h, p)
		}
	}
	// h == n-1: two segments, one of height 1; the tree has one level.
	p = newChainPlan(chain(6), 5, 2)
	if p.m != 2 || p.top != 1 || p.segLast(0) != 4 || p.segLast(1) != 5 {
		t.Errorf("h=n-1: m=%d top=%d lasts=%d,%d", p.m, p.top, p.segLast(0), p.segLast(1))
	}
	// Non-power-of-arity widths: ceil division per level.
	p = newChainPlan(chain(11), 1, 3)
	if got := p.width; got[0] != 11 || got[1] != 4 || got[2] != 2 || got[3] != 1 || p.top != 3 {
		t.Errorf("m=11 arity=3: width=%v top=%d", got, p.top)
	}
	p = newChainPlan(chain(10), 1, 4)
	if got := p.width; got[0] != 10 || got[1] != 3 || got[2] != 1 || p.top != 2 {
		t.Errorf("m=10 arity=4: width=%v top=%d", got, p.top)
	}
	// Arity wider than the segment count: a single-level tree.
	p = newChainPlan(chain(5), 1, 8)
	if p.top != 1 || p.width[1] != 1 {
		t.Errorf("m=5 arity=8: width=%v top=%d", p.width, p.top)
	}
	// Total width must cover every segment exactly once per level.
	for _, arity := range []int{2, 3, 4, 5} {
		p = newChainPlan(chain(13), 1, arity)
		for lvl := 1; lvl <= p.top; lvl++ {
			below, here := p.width[lvl-1], p.width[lvl]
			if want := (below + arity - 1) / arity; here != want {
				t.Errorf("arity %d lvl %d: width %d, want ceil(%d/%d)=%d", arity, lvl, here, below, arity, want)
			}
		}
		if p.width[p.top] != 1 {
			t.Errorf("arity %d: tree does not converge: %v", arity, p.width)
		}
	}
}

func mustParse(t *testing.T, src string) xform.Recipe {
	t.Helper()
	r, err := xform.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
