package ccsd

import (
	"fmt"

	"parsec/internal/cluster"
	"parsec/internal/ga"
	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/runtime"
	"parsec/internal/sim"
	"parsec/internal/simexec"
	"parsec/internal/tce"
	"parsec/internal/tensor"
)

// This file implements the integration experiment promised by §III-B:
// "data will not need to be pulled and pushed into the GA at the
// beginning and end of each subroutine if all subroutines execute over
// PaRSEC. Instead, the different PaRSEC tasks that comprise a subroutine
// will pass their output to the tasks that comprise another subroutine."
//
// The second "subroutine" is the correlation-energy evaluation: one
// ENERGY task per output block contracting it with the weight tensor,
// followed by a reduction tree to a scalar. Two integrations are built:
//
//   - staged: icsd_t2_7 runs to completion and writes i0 to the Global
//     Array (Fig 3's re-integration); after a barrier, the energy stage
//     reads every block back from the GA.
//   - fused: one graph in which each chain's SORT forwards its block
//     directly to its ENERGY task — no GA round trip, no barrier.

// treeShape describes a binary reduction tree over m leaves.
type treeShape struct {
	top   int
	width []int
}

func newTreeShape(m int) treeShape {
	t := treeShape{width: []int{m}}
	for w := m; w > 1; {
		w = (w + 1) / 2
		t.width = append(t.width, w)
		t.top++
	}
	return t
}

// energyStage appends the ENERGY / EREDUCE / ESINK classes to a graph.
// source wires each ENERGY(L1) input: it is called with the flow and must
// attach either a task dependence (fused) or a data dependence (staged).
type energyStage struct {
	b      *builder
	tree   treeShape
	result *float64 // real execution: final scalar lands here
}

func (b *builder) buildEnergyStage(result *float64, fused bool) {
	es := &energyStage{b: b, tree: newTreeShape(b.numChains()), result: result}
	es.buildEnergy(fused)
	es.buildEReduce()
	es.buildESink()
}

func (es *energyStage) buildEnergy(fused bool) {
	b := es.b
	tc := b.g.Class("ENERGY")
	tc.Domain = func(emit func(ptg.Args)) {
		for l1 := range b.ps {
			emit(ptg.A1(l1))
		}
	}
	tc.Affinity = func(a ptg.Args) int { return b.chainNode(a[0]) }
	tc.Priority = b.priority(0)
	tc.Cost = func(a ptg.Args) ptg.Cost {
		return ptg.Cost{MemBytes: 2 * b.ps[a[0]].meta.Out.Bytes()}
	}
	tc.FlowBytes = func(a ptg.Args, flow string) int64 {
		if flow == "P" {
			return 8
		}
		return 0
	}
	s := tc.AddFlow("S", ptg.Read)
	if fused {
		// Direct dataflow from the producing SORT (v5 shape: one SORT per
		// chain whose output is the complete block).
		s.In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "SORT", Args: ptg.A1(a[0])}, "S"
		})
	} else {
		// Staged: the block comes back out of the Global Array.
		s.InData(nil, func(a ptg.Args) ptg.DataRef {
			out := b.ps[a[0]].meta.Out
			return ptg.DataRef{ID: out.String(), Node: b.ownerNode(b.ps[a[0]].meta.OutNode), Bytes: out.Bytes()}
		})
	}
	p := tc.AddFlow("P", ptg.Write)
	p.InNew(nil, func(a ptg.Args) int64 { return 8 })
	es.addTreeOut(p, 0, func(a ptg.Args) int { return a[0] })

	if b.opts.Store != nil {
		store := b.opts.Store
		weights := b.w.Weights()
		tc.Body = func(ctx *ptg.Ctx) {
			p := b.ps[ctx.Args[0]]
			var block *tensor.Tile4
			if fused {
				block = ctx.In[0].(*tensor.Tile4)
			} else {
				block = store.GetHashBlock(tce.TensorC, p.meta.Out.Key)
			}
			wt := weights.MustTile(p.meta.Out.Key)
			var sum float64
			for i, v := range block.Data {
				sum += v * wt.Data[i]
			}
			ctx.Out[1] = sum
		}
	}
}

// addTreeOut wires a producer's output flow into the energy reduction
// tree: leaf (lvl 0) or internal node outputs go to the parent EREDUCE,
// or to ESINK at the top. leafIdx maps args to the index at the given
// level.
func (es *energyStage) addTreeOut(f *ptg.Flow, lvl int, idx func(a ptg.Args) int) {
	tree := es.tree
	if tree.top == 0 {
		// Single chain: straight to the sink.
		f.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "ESINK", Args: ptg.A1(0)}, "P"
		})
		return
	}
	f.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
		i := idx(a)
		flow := "X"
		if i%2 == 1 {
			flow = "Y"
		}
		return ptg.TaskRef{Class: "EREDUCE", Args: ptg.A2(lvl+1, i/2)}, flow
	})
}

func (es *energyStage) buildEReduce() {
	b := es.b
	tree := es.tree
	tc := b.g.Class("EREDUCE")
	tc.Domain = func(emit func(ptg.Args)) {
		for lvl := 1; lvl <= tree.top; lvl++ {
			for i := 0; i < tree.width[lvl]; i++ {
				emit(ptg.A2(lvl, i))
			}
		}
	}
	tc.Affinity = func(a ptg.Args) int { return a[1] % b.nodes }
	tc.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{MemBytes: 64} }
	tc.FlowBytes = func(a ptg.Args, flow string) int64 { return 8 }
	child := func(a ptg.Args, which int) (ptg.TaskRef, string) {
		lvl, i := a[0], a[1]
		c := 2*i + which
		if lvl == 1 {
			return ptg.TaskRef{Class: "ENERGY", Args: ptg.A1(c)}, "P"
		}
		return ptg.TaskRef{Class: "EREDUCE", Args: ptg.A2(lvl-1, c)}, "X"
	}
	x := tc.AddFlow("X", ptg.RW)
	x.In(nil, func(a ptg.Args) (ptg.TaskRef, string) { return child(a, 0) })
	y := tc.AddFlow("Y", ptg.Read)
	y.In(func(a ptg.Args) bool { return 2*a[1]+1 < tree.width[a[0]-1] },
		func(a ptg.Args) (ptg.TaskRef, string) { return child(a, 1) })
	x.Out(func(a ptg.Args) bool { return a[0] < tree.top },
		func(a ptg.Args) (ptg.TaskRef, string) {
			flow := "X"
			if a[1]%2 == 1 {
				flow = "Y"
			}
			return ptg.TaskRef{Class: "EREDUCE", Args: ptg.A2(a[0]+1, a[1]/2)}, flow
		})
	x.Out(func(a ptg.Args) bool { return a[0] == tree.top },
		func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "ESINK", Args: ptg.A1(0)}, "P"
		})
	if b.opts.Store != nil {
		tc.Body = func(ctx *ptg.Ctx) {
			sum := ctx.In[0].(float64)
			if ctx.In[1] != nil {
				sum += ctx.In[1].(float64)
			}
			ctx.Out[0] = sum
		}
	}
}

func (es *energyStage) buildESink() {
	b := es.b
	tc := b.g.Class("ESINK")
	tc.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	tc.Affinity = func(a ptg.Args) int { return 0 }
	tc.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{MemBytes: 64} }
	tc.AddFlow("P", ptg.Read).In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
		if es.tree.top == 0 {
			return ptg.TaskRef{Class: "ENERGY", Args: ptg.A1(0)}, "P"
		}
		return ptg.TaskRef{Class: "EREDUCE", Args: ptg.A2(es.tree.top, 0)}, "X"
	})
	if b.opts.Store != nil {
		result := es.result
		tc.Body = func(ctx *ptg.Ctx) { *result = ctx.In[0].(float64) }
	}
}

// fusedSpec returns the variant the fused graph builds on: v5, whose
// single merged SORT produces each chain's complete output block.
func fusedSpec() VariantSpec {
	spec, _ := VariantByName("v5")
	return spec
}

// BuildFused constructs the single fused graph: the v5 kernel whose SORT
// outputs feed the energy stage directly, with the WRITE tasks still
// persisting i0 to the Global Array.
func BuildFused(w *tce.Workload, opts Options, result *float64) *ptg.Graph {
	shape := effectiveShape(fusedSpec(), opts)
	nodes := opts.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	b := &builder{
		g:     ptg.NewGraph("icsd_t2_7+energy-fused"),
		w:     w,
		shape: shape,
		opts:  opts,
		ps:    plans(w, shape),
		nodes: nodes,
	}
	b.buildDFill()
	b.buildReads()
	b.buildGemm()
	b.buildReduce()
	b.buildSort()
	// Fan the SORT output out to the energy stage as well as the WRITE.
	sort := b.g.ClassByName("SORT")
	sFlow := sort.Flows[sort.MustFlowIndex("S")]
	sFlow.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
		return ptg.TaskRef{Class: "ENERGY", Args: ptg.A1(a[0])}, "S"
	})
	b.buildWrite()
	b.buildEnergyStage(result, true)
	return b.g
}

// BuildEnergyStaged constructs the standalone second-stage graph that
// reads every i0 block back from the Global Array (Fig 3's integration).
func BuildEnergyStaged(w *tce.Workload, opts Options, result *float64) *ptg.Graph {
	nodes := opts.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	shape := effectiveShape(fusedSpec(), opts)
	b := &builder{
		g:     ptg.NewGraph("energy-staged"),
		w:     w,
		shape: shape,
		opts:  opts,
		ps:    plans(w, shape),
		nodes: nodes,
	}
	b.buildEnergyStage(result, false)
	return b.g
}

// RunRealFused executes the fused graph with real arithmetic and returns
// the correlation energy, which must equal the reference functional.
func RunRealFused(w *tce.Workload, workers int) (float64, error) {
	store := ga.NewStore(1)
	aName, bName := w.InputTensors()
	a := store.Create(aName)
	bt := store.Create(bName)
	store.Create(tce.TensorC)
	for _, ref := range w.UniqueBlocks(aName) {
		w.FillBlock(ref, a.GetOrCreate(ref.Key, ref.Dims))
	}
	for _, ref := range w.UniqueBlocks(bName) {
		w.FillBlock(ref, bt.GetOrCreate(ref.Key, ref.Dims))
	}
	var result float64
	g := BuildFused(w, Options{Nodes: 1, Store: store}, &result)
	if _, err := runtime.Run(g, runtime.Config{Workers: workers}); err != nil {
		return 0, err
	}
	return result, nil
}

// FusionResult compares the two integrations on the simulated cluster.
type FusionResult struct {
	Staged      sim.Time // kernel makespan + energy-stage makespan
	StagedParts [2]sim.Time
	Fused       sim.Time
}

// String renders the comparison with the fused variant's relative gain.
func (f FusionResult) String() string {
	return fmt.Sprintf("staged=%v (kernel %v + energy %v)  fused=%v  gain=%.1f%%",
		f.Staged, f.StagedParts[0], f.StagedParts[1], f.Fused,
		100*(1-f.Fused.Seconds()/f.Staged.Seconds()))
}

// RunSimFusion executes both integrations on fresh simulated machines.
func RunSimFusion(sys *molecule.System, mcfg cluster.Config, cores int) (FusionResult, error) {
	var out FusionResult
	// Staged, stage 1: the kernel alone (v5), writing i0 to the GA.
	spec := fusedSpec()
	res1, err := RunSim(sys, spec, mcfg, SimRunConfig{CoresPerNode: cores})
	if err != nil {
		return out, err
	}
	// Staged, stage 2: the energy graph reading i0 back from the GA.
	eng := sim.NewEngine()
	m := cluster.New(eng, mcfg)
	gs := ga.NewSim(m)
	w := tce.Inspect(tce.T2_7(sys), func(ref tce.BlockRef) int {
		return gs.Distribution().Owner(ref.Tensor, ref.Key)
	})
	g2 := BuildEnergyStaged(w, Options{Nodes: mcfg.Nodes}, nil)
	res2, err := simexec.Run(g2, m, gs, simexec.Config{
		CoresPerNode: cores,
		Behaviors:    stagedEnergyBehaviors(w, mcfg.Nodes),
	})
	if err != nil {
		return out, err
	}
	out.StagedParts = [2]sim.Time{res1.Makespan, res2.Makespan}
	out.Staged = res1.Makespan + res2.Makespan

	// Fused: one graph, one run.
	engF := sim.NewEngine()
	mF := cluster.New(engF, mcfg)
	gsF := ga.NewSim(mF)
	wF := tce.Inspect(tce.T2_7(sys), func(ref tce.BlockRef) int {
		return gsF.Distribution().Owner(ref.Tensor, ref.Key)
	})
	psF := plans(wF, spec.MustShape())
	gF := BuildFused(wF, Options{Nodes: mcfg.Nodes}, nil)
	resF, err := simexec.Run(gF, mF, gsF, simexec.Config{
		CoresPerNode: cores,
		Behaviors:    SimBehaviors(wF, spec, psF),
	})
	if err != nil {
		return out, err
	}
	out.Fused = resF.Makespan
	return out, nil
}

// stagedEnergyBehaviors makes each staged ENERGY task pull its block out
// of the Global Array before the contraction.
func stagedEnergyBehaviors(w *tce.Workload, nodes int) map[string]simexec.Behavior {
	return map[string]simexec.Behavior{
		"ENERGY": func(ctx *simexec.TaskCtx) {
			l1 := ctx.Inst.Ref.Args[0]
			out := w.Chains[l1].Out
			owner := w.Chains[l1].OutNode
			if owner < 0 {
				owner = 0
			}
			owner %= nodes
			ctx.GA.GetHashBlock(ctx.P, ctx.Node, owner, out.Bytes(), out.Dims[0]*out.Dims[1])
			ctx.M.MemOp(ctx.P, ctx.Node, 2*out.Bytes(), true)
		},
	}
}
