package ccsd

import (
	"fmt"

	"parsec/internal/dtd"
	"parsec/internal/tce"
	"parsec/internal/tensor"
	"parsec/internal/xform"
)

// BuildDTD expresses the ported kernel as a Dynamic Task Discovery
// skeleton program — the alternative programming model of §VI: the
// skeleton inserts one task per DFILL/GEMM/SORT/WRITE in program order,
// declaring data accesses, and the engine discovers the dependency DAG in
// memory by access matching.
//
// Only the serial-chain shapes of the recipe space are expressible: the
// skeleton's GEMMs read-write one C per chain in program order, so
// chain splitting, reduction trees, and write spans would require
// restructuring the skeleton — which is exactly the flexibility point
// the paper makes for the PTG, and BuildDTD returns an error for such
// shapes rather than silently building the wrong graph. Sort fission
// maps naturally (one read-only SORTWRITE per branch vs one merged
// task), and the priority scheme carries over to the engine's queue.
//
// If materialize is true, input blocks are seeded and task bodies perform
// the real arithmetic; otherwise bodies are nil and the engine only
// builds the DAG (for construction-cost comparisons).
func BuildDTD(w *tce.Workload, spec VariantSpec, materialize bool) (*dtd.Engine, *tensor.BlockTensor4, error) {
	shape, err := spec.Shape()
	if err != nil {
		return nil, nil, err
	}
	if shape.SegHeight != 0 {
		return nil, nil, fmt.Errorf("ccsd: DTD skeleton cannot express seg=%d (serial chains only; use the PTG builders)", shape.SegHeight)
	}
	if shape.WriteSpan > 1 {
		return nil, nil, fmt.Errorf("ccsd: DTD skeleton cannot express span=%d (the write is fused into each SORT; use the PTG builders)", shape.WriteSpan)
	}
	usePrio := shape.Prio == xform.PrioPaper
	e := dtd.New()
	out := tensor.NewBlockTensor4()
	var a, b *tensor.BlockTensor4
	if materialize {
		a, b = w.Materialize()
		aName, bName := w.InputTensors()
		for _, ref := range w.UniqueBlocks(aName) {
			e.Put(ref.String(), a.MustTile(ref.Key))
		}
		for _, ref := range w.UniqueBlocks(bName) {
			e.Put(ref.String(), b.MustTile(ref.Key))
		}
	}
	numChains := int64(len(w.Chains))
	for _, c := range w.Chains {
		c := c
		ckey := fmt.Sprintf("C(%d)", c.ID)
		var prio int64
		if usePrio {
			prio = numChains - int64(c.ID)
		}
		var body func(*dtd.Ctx)
		if materialize {
			body = func(ctx *dtd.Ctx) {
				d := c.CDims
				ctx.Set(ckey, tensor.GetTile4Zeroed(d[0], d[1], d[2], d[3]))
			}
		}
		e.Insert(fmt.Sprintf("DFILL(%d)", c.ID), prio, body, dtd.Write(ckey))
		gemmPrio := prio
		if usePrio {
			gemmPrio += numChains
		}
		for pos, g := range c.Gemms {
			g := g
			if materialize {
				body = func(ctx *dtd.Ctx) {
					at := ctx.Get(g.Op.A.String()).(*tensor.Tile4)
					bt := ctx.Get(g.Op.B.String()).(*tensor.Tile4)
					ct := ctx.Get(ckey).(*tensor.Tile4)
					tensor.Gemm(true, false, 1, at.AsMatrix(), bt.AsMatrix(), 1, ct.AsMatrix())
				}
			}
			e.Insert(fmt.Sprintf("GEMM(%d,%d)", c.ID, pos), gemmPrio, body,
				dtd.ReadWrite(ckey), dtd.Read(g.Op.A.String()), dtd.Read(g.Op.B.String()))
		}
		if shape.SortFission {
			for _, s := range c.Sorts {
				s := s
				if materialize {
					body = func(ctx *dtd.Ctx) {
						src := ctx.Get(ckey).(*tensor.Tile4)
						d := c.Out.Dims
						// Scratch only: Acc folds the sorted block into the
						// output tensor immediately, so the tile is recycled.
						dst := tensor.GetTile4(d[0], d[1], d[2], d[3])
						tensor.Sort4(dst, src, s.Perm, s.Sign)
						out.Acc(c.Out.Key, dst, 1)
						tensor.PutTile4(dst)
					}
				}
				e.Insert(fmt.Sprintf("SORTWRITE(%d,%d)", c.ID, s.Branch), prio, body,
					dtd.Read(ckey))
			}
		} else {
			// Fused sorts: one task performs every active SORT_4 serially
			// (Fig 5), accumulating into a single buffer before the write.
			if materialize {
				body = func(ctx *dtd.Ctx) {
					src := ctx.Get(ckey).(*tensor.Tile4)
					d := c.Out.Dims
					dst := tensor.GetTile4Zeroed(d[0], d[1], d[2], d[3])
					for _, s := range c.Sorts {
						tensor.Sort4Add(dst, src, s.Perm, s.Sign)
					}
					out.Acc(c.Out.Key, dst, 1)
					tensor.PutTile4(dst)
				}
			}
			e.Insert(fmt.Sprintf("SORTWRITE(%d)", c.ID), prio, body, dtd.Read(ckey))
		}
	}
	return e, out, nil
}

// RunDTD executes the workload through the DTD engine with real
// arithmetic and returns the correlation-energy functional, which must
// match the PTG variants and the serial reference. The spec selects the
// (serial-chain) shape; Variants()[0] (v1) is the natural DTD port.
func RunDTD(w *tce.Workload, spec VariantSpec, workers int) (float64, error) {
	e, out, err := BuildDTD(w, spec, true)
	if err != nil {
		return 0, err
	}
	if err := e.Run(workers); err != nil {
		return 0, err
	}
	return w.Energy(out), nil
}
