package ccsd

import (
	"fmt"

	"parsec/internal/dtd"
	"parsec/internal/tce"
	"parsec/internal/tensor"
)

// BuildDTD expresses the ported kernel as a Dynamic Task Discovery
// skeleton program — the alternative programming model of §VI: the
// skeleton inserts one task per DFILL/GEMM/SORT/WRITE in program order,
// declaring data accesses, and the engine discovers the dependency DAG in
// memory by access matching. The expression is the natural DTD port (the
// serial-chain organization; expressing the reduction-tree variants would
// require restructuring the skeleton, which is exactly the flexibility
// point the paper makes for the PTG).
//
// If materialize is true, input blocks are seeded and task bodies perform
// the real arithmetic; otherwise bodies are nil and the engine only
// builds the DAG (for construction-cost comparisons).
func BuildDTD(w *tce.Workload, materialize bool) (*dtd.Engine, *tensor.BlockTensor4) {
	e := dtd.New()
	out := tensor.NewBlockTensor4()
	var a, b *tensor.BlockTensor4
	if materialize {
		a, b = w.Materialize()
		aName, bName := w.InputTensors()
		for _, ref := range w.UniqueBlocks(aName) {
			e.Put(ref.String(), a.MustTile(ref.Key))
		}
		for _, ref := range w.UniqueBlocks(bName) {
			e.Put(ref.String(), b.MustTile(ref.Key))
		}
	}
	numChains := int64(len(w.Chains))
	for _, c := range w.Chains {
		c := c
		ckey := fmt.Sprintf("C(%d)", c.ID)
		prio := numChains - int64(c.ID)
		var body func(*dtd.Ctx)
		if materialize {
			body = func(ctx *dtd.Ctx) {
				d := c.CDims
				ctx.Set(ckey, tensor.GetTile4Zeroed(d[0], d[1], d[2], d[3]))
			}
		}
		e.Insert(fmt.Sprintf("DFILL(%d)", c.ID), prio, body, dtd.Write(ckey))
		for pos, g := range c.Gemms {
			g := g
			if materialize {
				body = func(ctx *dtd.Ctx) {
					at := ctx.Get(g.Op.A.String()).(*tensor.Tile4)
					bt := ctx.Get(g.Op.B.String()).(*tensor.Tile4)
					ct := ctx.Get(ckey).(*tensor.Tile4)
					tensor.Gemm(true, false, 1, at.AsMatrix(), bt.AsMatrix(), 1, ct.AsMatrix())
				}
			}
			e.Insert(fmt.Sprintf("GEMM(%d,%d)", c.ID, pos), prio+int64(numChains), body,
				dtd.ReadWrite(ckey), dtd.Read(g.Op.A.String()), dtd.Read(g.Op.B.String()))
		}
		for _, s := range c.Sorts {
			s := s
			if materialize {
				body = func(ctx *dtd.Ctx) {
					src := ctx.Get(ckey).(*tensor.Tile4)
					d := c.Out.Dims
					// Scratch only: Acc folds the sorted block into the
					// output tensor immediately, so the tile is recycled.
					dst := tensor.GetTile4(d[0], d[1], d[2], d[3])
					tensor.Sort4(dst, src, s.Perm, s.Sign)
					out.Acc(c.Out.Key, dst, 1)
					tensor.PutTile4(dst)
				}
			}
			e.Insert(fmt.Sprintf("SORTWRITE(%d,%d)", c.ID, s.Branch), prio, body,
				dtd.Read(ckey))
		}
	}
	return e, out
}

// RunDTD executes the workload through the DTD engine with real
// arithmetic and returns the correlation-energy functional, which must
// match the PTG variants and the serial reference.
func RunDTD(w *tce.Workload, workers int) (float64, error) {
	e, out := BuildDTD(w, true)
	if err := e.Run(workers); err != nil {
		return 0, err
	}
	return w.Energy(out), nil
}
