package ccsd

import (
	"math"
	"testing"
	"testing/quick"

	"parsec/internal/cluster"
	"parsec/internal/ga"
	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/runtime"
	"parsec/internal/sched"
	"parsec/internal/tce"
	"parsec/internal/trace"
)

func waterWorkload() *tce.Workload {
	return tce.Inspect(tce.T2_7(molecule.Water631G()), nil)
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}

// TestAllVariantsMatchReference is experiment E5 (§IV-A): every
// algorithmic variant computes the same correlation energy as the serial
// reference to ~14 digits.
func TestAllVariantsMatchReference(t *testing.T) {
	w := waterWorkload()
	ref := ReferenceEnergy(w)
	if ref == 0 || math.IsNaN(ref) {
		t.Fatalf("degenerate reference energy %v", ref)
	}
	for _, spec := range Variants() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := RunReal(w, spec, 4)
			if err != nil {
				t.Fatal(err)
			}
			if d := relDiff(res.Energy, ref); d > 1e-12 {
				t.Errorf("%s energy %.15g differs from reference %.15g (rel %g)",
					spec.Name, res.Energy, ref, d)
			}
		})
	}
}

func TestVariantTaskCounts(t *testing.T) {
	w := waterWorkload()
	st := w.Stats()
	for _, spec := range Variants() {
		shape := spec.MustShape()
		g := BuildGraph(w, spec, Options{Nodes: 4})
		counts, _ := g.CountTasks()
		if counts["GEMM"] != st.Gemms {
			t.Errorf("%s: GEMM count %d, want %d", spec.Name, counts["GEMM"], st.Gemms)
		}
		if counts["READA"] != st.Gemms || counts["READB"] != st.Gemms {
			t.Errorf("%s: read counts %d/%d, want %d", spec.Name, counts["READA"], counts["READB"], st.Gemms)
		}
		if shape.SegHeight == 0 {
			if counts["DFILL"] != st.Chains {
				t.Errorf("v1: DFILL count %d, want %d (one per chain)", counts["DFILL"], st.Chains)
			}
			if counts["REDUCE"] != 0 {
				t.Errorf("v1: REDUCE count %d, want 0", counts["REDUCE"])
			}
		} else {
			if counts["DFILL"] != st.Gemms {
				t.Errorf("%s: DFILL count %d, want %d (one per GEMM)", spec.Name, counts["DFILL"], st.Gemms)
			}
			if counts["REDUCE"] == 0 {
				t.Errorf("%s: no REDUCE tasks", spec.Name)
			}
		}
		if shape.SortFission {
			if counts["SORT"] != st.Sorts {
				t.Errorf("%s: SORT count %d, want %d", spec.Name, counts["SORT"], st.Sorts)
			}
		} else if counts["SORT"] != st.Chains {
			t.Errorf("%s: SORT count %d, want %d", spec.Name, counts["SORT"], st.Chains)
		}
		if shape.WriteFission {
			if counts["WRITE"] != st.Sorts {
				t.Errorf("%s: WRITE count %d, want %d", spec.Name, counts["WRITE"], st.Sorts)
			}
		} else if counts["WRITE"] != st.Chains {
			t.Errorf("%s: WRITE count %d, want %d", spec.Name, counts["WRITE"], st.Chains)
		}
	}
}

func TestSegmentHeightAblationMatchesReference(t *testing.T) {
	w := waterWorkload()
	ref := ReferenceEnergy(w)
	spec, _ := VariantByName("v3")
	for _, h := range []int{2, 3, 5} {
		store := buildAndRunWithHeight(t, w, spec, h)
		if d := relDiff(store, ref); d > 1e-12 {
			t.Errorf("height %d: energy %.15g vs reference %.15g", h, store, ref)
		}
	}
}

func buildAndRunWithHeight(t *testing.T, w *tce.Workload, spec VariantSpec, h int) float64 {
	t.Helper()
	// RunReal with a custom segment height.
	res, err := runRealWithOptions(w, spec, 4, h, sched.SharedQueue)
	if err != nil {
		t.Fatal(err)
	}
	return res.Energy
}

func TestChainPlanShapes(t *testing.T) {
	meta := &tce.ChainMeta{Gemms: make([]tce.GemmMeta, 7)}
	p := newChainPlan(meta, 1, 2)
	if p.m != 7 || p.top != 3 {
		t.Errorf("h=1: m=%d top=%d, want 7, 3", p.m, p.top)
	}
	if got := p.width; got[0] != 7 || got[1] != 4 || got[2] != 2 || got[3] != 1 {
		t.Errorf("width = %v", got)
	}
	p = newChainPlan(meta, 7, 2)
	if p.m != 1 || p.top != 0 {
		t.Errorf("h=n: m=%d top=%d, want 1, 0", p.m, p.top)
	}
	p = newChainPlan(meta, 3, 2)
	if p.m != 3 || p.segLast(0) != 2 || p.segLast(2) != 6 {
		t.Errorf("h=3: m=%d lasts=%d,%d", p.m, p.segLast(0), p.segLast(2))
	}
	if !p.isSegEnd(6) || p.isSegEnd(3) {
		t.Error("isSegEnd wrong")
	}
	// Height clamped to n.
	p = newChainPlan(meta, 100, 2)
	if p.h != 7 {
		t.Errorf("h clamped to %d", p.h)
	}
}

func TestVariantByName(t *testing.T) {
	for _, name := range []string{"v1", "v2", "v3", "v4", "v5"} {
		v, err := VariantByName(name)
		if err != nil || v.Name != name {
			t.Errorf("VariantByName(%q) = %v, %v", name, v, err)
		}
	}
	if _, err := VariantByName("v9"); err == nil {
		t.Error("unknown variant accepted")
	}
	if (VariantSpec{Name: "x", Description: "y"}).String() != "x: y" {
		t.Error("String format")
	}
}

func TestGraphsValidateForAllVariants(t *testing.T) {
	w := waterWorkload()
	for _, spec := range Variants() {
		g := BuildGraph(w, spec, Options{Nodes: 3})
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if _, err := ptg.NewTracker(g); err != nil {
			t.Errorf("%s tracker: %v", spec.Name, err)
		}
	}
}

func simConfig(nodes, cores int) cluster.Config {
	cfg := cluster.CascadeLike()
	cfg.Nodes = nodes
	cfg.CoresPerNode = cores
	return cfg
}

func TestSimAllVariantsComplete(t *testing.T) {
	sys := molecule.Water631G()
	for _, spec := range Variants() {
		res, err := RunSim(sys, spec, simConfig(4, 4), SimRunConfig{CoresPerNode: 2})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: zero makespan", spec.Name)
		}
		if res.ByClass["GEMM"] == 0 || res.ByClass["WRITE"] == 0 {
			t.Errorf("%s: missing classes: %v", spec.Name, res.ByClass)
		}
	}
}

func TestSimTraceWellFormed(t *testing.T) {
	sys := molecule.Water631G()
	tr := trace.New()
	spec, _ := VariantByName("v4")
	if _, err := RunSim(sys, spec, simConfig(4, 4), SimRunConfig{CoresPerNode: 3, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if tr.Len() == 0 {
		t.Error("empty trace")
	}
}

func TestSimBaselineCompletes(t *testing.T) {
	sys := molecule.Water631G()
	mk, err := RunSimBaseline(sys, simConfig(4, 4), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mk <= 0 {
		t.Error("zero baseline makespan")
	}
}

func TestSimMoreCoresHelpParallelVariant(t *testing.T) {
	sys := molecule.Benzene631G()
	spec, _ := VariantByName("v5")
	r1, err := RunSim(sys, spec, simConfig(4, 8), SimRunConfig{CoresPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunSim(sys, spec, simConfig(4, 8), SimRunConfig{CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Makespan >= r1.Makespan {
		t.Errorf("v5 with 4 cores (%v) not faster than 1 core (%v)", r4.Makespan, r1.Makespan)
	}
}

// TestT1KernelAllVariants shows the port generalizes beyond icsd_t2_7
// (§VII: "the effort to port a larger part of the application"): the same
// variant graphs execute the T1-shaped kernel and reproduce its serial
// reference energy.
func TestT1KernelAllVariants(t *testing.T) {
	w := tce.Inspect(tce.T1_2(molecule.Water631G()), nil)
	ref := ReferenceEnergy(w)
	if ref == 0 {
		t.Fatal("degenerate T1 reference")
	}
	for _, spec := range Variants() {
		res, err := RunReal(w, spec, 4)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if d := relDiff(res.Energy, ref); d > 1e-12 {
			t.Errorf("%s: T1 energy %.15g vs reference %.15g", spec.Name, res.Energy, ref)
		}
	}
}

// TestPriorityPipeline is experiment E7: the §IV-C priority expressions
// give read tasks a +5P offset and GEMMs +1P, so at least 4P chains'
// worth of reads outrank the most urgent GEMM — the depth-5P data
// prefetch pipeline.
func TestPriorityPipeline(t *testing.T) {
	const nodes = 4
	w := waterWorkload()
	spec, _ := VariantByName("v4")
	g := BuildGraph(w, spec, Options{Nodes: nodes})
	read := g.ClassByName("READA")
	gemm := g.ClassByName("GEMM")
	sort := g.ClassByName("SORT")
	a := ptg.A2(3, 0)
	if got := read.Priority(a) - gemm.Priority(a); got != 4*nodes {
		t.Errorf("read-gemm priority gap = %d, want %d", got, 4*nodes)
	}
	if got := gemm.Priority(a) - sort.Priority(a); got != nodes {
		t.Errorf("gemm-sort priority gap = %d, want %d", got, nodes)
	}
	// Priorities decrease with the chain number.
	if read.Priority(ptg.A2(0, 0)) <= read.Priority(ptg.A2(5, 0)) {
		t.Error("priority not decreasing with chain number")
	}
	// v2 disables priorities entirely.
	v2, _ := VariantByName("v2")
	g2 := BuildGraph(w, v2, Options{Nodes: nodes})
	if g2.ClassByName("GEMM").Priority != nil {
		t.Error("v2 has priorities")
	}
}

// TestDTDMatchesReference runs the kernel through the Dynamic Task
// Discovery frontend (§VI's alternative model) and checks it reproduces
// the reference energy, for both kernels.
func TestDTDMatchesReference(t *testing.T) {
	for _, k := range []string{"t2_7", "t1_2"} {
		sys := molecule.Water631G()
		kr, err := tce.KernelByName(k, sys)
		if err != nil {
			t.Fatal(err)
		}
		w := tce.Inspect(kr, nil)
		ref := ReferenceEnergy(w)
		v1, _ := VariantByName("v1")
		got, err := RunDTD(w, v1, 4)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if d := relDiff(got, ref); d > 1e-12 {
			t.Errorf("%s: DTD energy %.15g vs reference %.15g", k, got, ref)
		}
	}
}

// TestDTDBuildsDAGInMemory verifies the structural contrast §VI draws:
// the DTD engine materializes one edge per discovered dependency, while
// the PTG needs none before execution.
func TestDTDBuildsDAGInMemory(t *testing.T) {
	w := waterWorkload()
	v1, _ := VariantByName("v1")
	e, _, err := BuildDTD(w, v1, false)
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	// Each chain contributes: DFILL->GEMM0, GEMM i->i+1 (serial RW), and
	// one edge per sort; GEMM input reads add no edges (blocks have no
	// writer). So edges = gemms + sorts per chain arithmetic.
	wantMin := st.Gemms // every GEMM depends on its predecessor or DFILL
	if e.NumEdges() < wantMin {
		t.Errorf("edges = %d, want >= %d", e.NumEdges(), wantMin)
	}
	if e.NumTasks() != st.Chains+st.Gemms+st.Sorts {
		t.Errorf("tasks = %d, want %d", e.NumTasks(), st.Chains+st.Gemms+st.Sorts)
	}
}

// TestPropertyVariantsMatchReferenceOnRandomSystems drives the whole
// pipeline — tiling, symmetry filtering, inspection, graph construction,
// parallel execution — on randomized orbital spaces and checks the §IV-A
// equivalence against the serial reference every time.
func TestPropertyVariantsMatchReferenceOnRandomSystems(t *testing.T) {
	f := func(occ, virt, tile, irr uint8, seed uint64) bool {
		nOcc := int(occ%5) + 2
		nVirt := int(virt%6) + 3
		target := int(tile%3) + 2
		nIrr := []int{1, 2, 4}[int(irr)%3]
		sys := molecule.Custom("prop", nOcc, nVirt, target, nIrr, seed)
		w := tce.Inspect(tce.T2_7(sys), nil)
		if w.NumChains() == 0 {
			return true // fully symmetry-forbidden space
		}
		ref := ReferenceEnergy(w)
		for _, name := range []string{"v1", "v5"} {
			spec, _ := VariantByName(name)
			res, err := RunReal(w, spec, 3)
			if err != nil {
				t.Logf("%s on %v: %v", name, sys, err)
				return false
			}
			if relDiff(res.Energy, ref) > 1e-11 {
				t.Logf("%s energy %.15g vs %.15g on %v", name, res.Energy, ref, sys)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSimQueueModesSameTaskCounts: the scheduler structure must not
// change what executes.
func TestSimQueueModesSameTaskCounts(t *testing.T) {
	sys := molecule.Water631G()
	spec, _ := VariantByName("v4")
	var counts []int
	for _, q := range []sched.QueueMode{sched.SharedQueue, sched.PerWorker, sched.PerWorkerSteal} {
		res, err := RunSim(sys, spec, simConfig(4, 4), SimRunConfig{CoresPerNode: 3, Queues: q})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Tasks)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("task counts differ across queue modes: %v", counts)
	}
}

// TestSimT1Kernel runs the T1 kernel through the simulator.
func TestSimT1Kernel(t *testing.T) {
	sys := molecule.Water631G()
	spec, _ := VariantByName("v5")
	res, err := RunSim(sys, spec, simConfig(4, 4), SimRunConfig{CoresPerNode: 2, Kernel: "t1_2"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.ByClass["GEMM"] == 0 {
		t.Errorf("degenerate T1 sim: %v", res)
	}
	if _, err := RunSim(sys, spec, simConfig(4, 4), SimRunConfig{CoresPerNode: 2, Kernel: "bogus"}); err == nil {
		t.Error("bogus kernel accepted")
	}
}

// TestFusedEnergyMatchesReference: the fused kernel+energy graph (§III-B
// future-work integration) computes the same scalar as the staged
// reference path.
func TestFusedEnergyMatchesReference(t *testing.T) {
	w := waterWorkload()
	ref := ReferenceEnergy(w)
	got, err := RunRealFused(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got, ref); d > 1e-12 {
		t.Errorf("fused energy %.15g vs reference %.15g", got, ref)
	}
}

// TestSimFusionBeatsStaged: fusing the subroutines must remove the GA
// round trip, so the fused makespan is below kernel+energy staged.
func TestSimFusionBeatsStaged(t *testing.T) {
	res, err := RunSimFusion(molecule.Benzene631G(), simConfig(8, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fused <= 0 || res.Staged <= 0 {
		t.Fatalf("degenerate: %v", res)
	}
	if res.Fused >= res.Staged {
		t.Errorf("fused (%v) not faster than staged (%v)", res.Fused, res.Staged)
	}
	if res.String() == "" {
		t.Error("empty string")
	}
}

func TestTreeShape(t *testing.T) {
	ts := newTreeShape(1)
	if ts.top != 0 || len(ts.width) != 1 {
		t.Errorf("m=1: %+v", ts)
	}
	ts = newTreeShape(5)
	if ts.top != 3 || ts.width[1] != 3 || ts.width[2] != 2 || ts.width[3] != 1 {
		t.Errorf("m=5: %+v", ts)
	}
}

// TestSegmentedWritesMatchReference is the Fig 8 experiment: with output
// blocks spanning several nodes, one WRITE_C instance per segment updates
// only its slice — and the result is unchanged.
func TestSegmentedWritesMatchReference(t *testing.T) {
	w := waterWorkload()
	ref := ReferenceEnergy(w)
	for _, name := range []string{"v4", "v5"} {
		spec, _ := VariantByName(name)
		for _, span := range []int{2, 3} {
			res, err := runRealWithWriteSpan(w, spec, 4, span)
			if err != nil {
				t.Fatalf("%s span %d: %v", name, span, err)
			}
			if d := relDiff(res, ref); d > 1e-12 {
				t.Errorf("%s span %d: energy %.15g vs %.15g", name, span, res, ref)
			}
		}
	}
}

func runRealWithWriteSpan(w *tce.Workload, spec VariantSpec, workers, span int) (float64, error) {
	store := ga.NewStore(1)
	aName, bName := w.InputTensors()
	a := store.Create(aName)
	bt := store.Create(bName)
	store.Create(tce.TensorC)
	for _, ref := range w.UniqueBlocks(aName) {
		w.FillBlock(ref, a.GetOrCreate(ref.Key, ref.Dims))
	}
	for _, ref := range w.UniqueBlocks(bName) {
		w.FillBlock(ref, bt.GetOrCreate(ref.Key, ref.Dims))
	}
	g := BuildGraph(w, spec, Options{Nodes: 1, Store: store, WriteSpan: span})
	if _, err := runtime.Run(g, runtime.Config{Workers: workers}); err != nil {
		return 0, err
	}
	return w.Energy(store.Array(tce.TensorC)), nil
}

// TestSimSegmentedWrites: the simulated run completes with spanning
// blocks and produces span WRITE instances per chain.
func TestSimSegmentedWrites(t *testing.T) {
	sys := molecule.Water631G()
	spec, _ := VariantByName("v5")
	res, err := RunSim(sys, spec, simConfig(4, 4), SimRunConfig{CoresPerNode: 2, WriteSpan: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := tce.Inspect(tce.T2_7(sys), nil)
	if res.ByClass["WRITE"] != 3*w.NumChains() {
		t.Errorf("WRITE instances = %d, want %d", res.ByClass["WRITE"], 3*w.NumChains())
	}
}

// TestInBytesSplitsTransfers: a spanning write's deliveries carry only
// the per-segment slice size.
func TestInBytesSplitsTransfers(t *testing.T) {
	w := waterWorkload()
	spec, _ := VariantByName("v5")
	g := BuildGraph(w, spec, Options{Nodes: 4, WriteSpan: 2})
	tr, err := ptg.NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	// Drive to completion, checking WRITE-bound delivery sizes.
	queue := append([]*ptg.Instance(nil), tr.InitialReady()...)
	checked := false
	for len(queue) > 0 {
		in := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		tr.Start(in)
		dels, _, err := tr.Complete(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dels {
			if d.To.Ref.Class == "WRITE" {
				full := w.Chains[d.To.Ref.Args[0]].CBytes()
				want := (full + 1) / 2
				if d.Bytes != want {
					t.Fatalf("WRITE delivery %d bytes, want %d (half of %d)", d.Bytes, want, full)
				}
				checked = true
			}
			if ok, err := tr.Deliver(d.To, d.ToFlow, nil); err != nil {
				t.Fatal(err)
			} else if ok {
				queue = append(queue, d.To)
			}
		}
	}
	if !checked {
		t.Fatal("no WRITE deliveries observed")
	}
}
