// Package ccsd is the PaRSEC port of NWChem's icsd_t2_7 CCSD subroutine
// (§III-B, §IV): it turns the inspected TCE workload into Parameterized
// Task Graphs implementing the paper's five algorithmic variants, and
// drives their execution on the real shared-memory runtime (with actual
// tensor arithmetic) and on the simulated cluster (for the Fig 9 and
// Fig 10-13 experiments).
package ccsd

import "fmt"

// VariantSpec selects one of the algorithmic variants of §IV-A / §V.
type VariantSpec struct {
	Name string
	// SerialGemms organizes each chain's GEMMs as one serial chain
	// sharing the C buffer (v1); otherwise GEMMs execute in parallel
	// into private buffers followed by a reduction tree (Fig 4).
	SerialGemms bool
	// ParallelSorts runs the active SORT_4 branches as independent
	// SORT_i tasks (Fig 6/7); otherwise one SORT task performs them
	// serially, accumulating into a single Csorted (Fig 5).
	ParallelSorts bool
	// ParallelWrites pairs each SORT_i with its own WRITE_C_i task
	// (Fig 7); otherwise a single WRITE_C task receives every sorted
	// matrix (Fig 5/6).
	ParallelWrites bool
	// UsePriorities assigns the §IV-C priority expressions (decreasing
	// with chain number; read offset +5·P, GEMM offset +1·P); without
	// them the scheduler runs most-recently-ready-first (v2, Fig 11).
	UsePriorities bool
	// Description is the paper's one-line characterization (§V).
	Description string
}

// String returns "name: description".
func (v VariantSpec) String() string { return fmt.Sprintf("%s: %s", v.Name, v.Description) }

// Variants returns the five variants evaluated in §V, in paper order.
func Variants() []VariantSpec {
	return []VariantSpec{
		{
			Name:        "v1",
			SerialGemms: true, ParallelSorts: true, ParallelWrites: true, UsePriorities: true,
			Description: "GEMMs in a serial chain, SORTs and WRITEs parallel, priorities",
		},
		{
			Name:        "v2",
			SerialGemms: false, ParallelSorts: true, ParallelWrites: false, UsePriorities: false,
			Description: "GEMMs and SORTs parallel, one WRITE, no priorities",
		},
		{
			Name:        "v3",
			SerialGemms: false, ParallelSorts: true, ParallelWrites: true, UsePriorities: true,
			Description: "GEMMs, SORTs and WRITEs all parallel, priorities",
		},
		{
			Name:        "v4",
			SerialGemms: false, ParallelSorts: true, ParallelWrites: false, UsePriorities: true,
			Description: "GEMMs and SORTs parallel, one WRITE, priorities",
		},
		{
			Name:        "v5",
			SerialGemms: false, ParallelSorts: false, ParallelWrites: false, UsePriorities: true,
			Description: "GEMMs parallel, one SORT and one WRITE, priorities",
		},
	}
}

// VariantByName returns the named variant.
func VariantByName(name string) (VariantSpec, error) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, nil
		}
	}
	return VariantSpec{}, fmt.Errorf("ccsd: unknown variant %q (want v1..v5)", name)
}
