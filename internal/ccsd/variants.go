// Package ccsd is the PaRSEC port of NWChem's icsd_t2_7 CCSD subroutine
// (§III-B, §IV): it turns the inspected TCE workload into Parameterized
// Task Graphs implementing the paper's algorithmic variants, and drives
// their execution on the real shared-memory runtime (with actual tensor
// arithmetic) and on the simulated cluster (for the Fig 9 and Fig 10-13
// experiments). Variants are no longer hand-written: each is an
// xform.Recipe — an ordered list of graph-transformation passes — whose
// resolved xform.Shape the builders consume.
package ccsd

import (
	"fmt"

	"parsec/internal/xform"
)

// VariantSpec selects one algorithmic variant of §IV-A / §V: a named
// recipe of graph-transformation passes over the base (v1) shape. The
// five paper variants are short pass lists; derived recipes from the
// tuner or the flat recipe grammar are equally valid specs.
type VariantSpec struct {
	// Name labels the variant ("v4", or a canonical shape string for
	// derived recipes).
	Name string
	// Recipe is the pass list that produces the variant's plan shape.
	Recipe xform.Recipe
	// Description is the paper's one-line characterization (§V), or the
	// pass list for derived recipes.
	Description string
}

// String returns "name: description".
func (v VariantSpec) String() string { return fmt.Sprintf("%s: %s", v.Name, v.Description) }

// Shape resolves the recipe against the base shape. The zero
// VariantSpec has an empty pass list and resolves to the base (v1).
func (v VariantSpec) Shape() (xform.Shape, error) { return v.Recipe.Shape() }

// MustShape is Shape, panicking on an invalid pass list. Specs obtained
// from Variants, VariantByName, or VariantFromRecipe are always valid;
// only a hand-assembled inconsistent pass list can panic here.
func (v VariantSpec) MustShape() xform.Shape { return v.Recipe.MustShape() }

// UsePriorities reports whether the variant's shape assigns the §IV-C
// priority expressions; without them schedulers run
// most-recently-ready-first (LIFO).
func (v VariantSpec) UsePriorities() bool { return v.MustShape().Prio == xform.PrioPaper }

// variantDescriptions are the §V one-liners for the named recipes.
var variantDescriptions = map[string]string{
	"v1": "GEMMs in a serial chain, SORTs and WRITEs parallel, priorities",
	"v2": "GEMMs and SORTs parallel, one WRITE, no priorities",
	"v3": "GEMMs, SORTs and WRITEs all parallel, priorities",
	"v4": "GEMMs and SORTs parallel, one WRITE, priorities",
	"v5": "GEMMs parallel, one SORT and one WRITE, priorities",
}

// Variants returns the five variants evaluated in §V, in paper order.
func Variants() []VariantSpec {
	named := xform.Named()
	out := make([]VariantSpec, len(named))
	for i, r := range named {
		out[i] = VariantSpec{Name: r.Name, Recipe: r, Description: variantDescriptions[r.Name]}
	}
	return out
}

// VariantFromRecipe wraps a resolved recipe as a spec. Named paper
// recipes get their §V descriptions; derived recipes are described by
// their pass list.
func VariantFromRecipe(r xform.Recipe) VariantSpec {
	v := VariantSpec{Name: r.Name, Recipe: r, Description: variantDescriptions[r.Name]}
	if v.Description == "" {
		v.Description = "derived recipe " + r.String()
	}
	if v.Name == "" {
		if s, err := r.Shape(); err == nil {
			v.Name = s.Canon()
		}
	}
	return v
}

// VariantByName resolves a variant argument: one of the named paper
// variants (v1..v5) or a flat recipe string in the xform grammar, e.g.
// "seg=4,tree=2,fission=sorts,prio=paper". Errors list the accepted
// syntax.
func VariantByName(name string) (VariantSpec, error) {
	r, err := xform.Parse(name)
	if err != nil {
		return VariantSpec{}, fmt.Errorf("ccsd: %w", err)
	}
	return VariantFromRecipe(r), nil
}

// EffectiveShape resolves the spec's shape with the Options-level
// overrides applied: segHeight > 0 replaces the recipe's segment
// height (the §IV-A ablation dial), writeSpan > 0 replaces the write
// span. The result is normalized, so shapes that instantiate identical
// graphs compare equal — this is the value plan caching keys off.
func EffectiveShape(spec VariantSpec, segHeight, writeSpan int) (xform.Shape, error) {
	s, err := spec.Shape()
	if err != nil {
		return xform.Shape{}, err
	}
	if segHeight > 0 {
		s.SegHeight = segHeight
	}
	if writeSpan > 0 {
		s.WriteSpan = writeSpan
	}
	s = s.Normalize()
	return s, s.Validate()
}

// effectiveShape is EffectiveShape for builder entry points whose
// signatures cannot carry an error; the overrides only widen or narrow
// integer dials, so with a valid spec it cannot fail.
func effectiveShape(spec VariantSpec, opts Options) xform.Shape {
	s, err := EffectiveShape(spec, opts.SegmentHeight, opts.WriteSpan)
	if err != nil {
		panic(err)
	}
	return s
}
