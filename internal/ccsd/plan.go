package ccsd

import (
	"parsec/internal/tce"
)

// chainPlan precomputes the task-graph shape of one chain: its GEMM
// segmentation and the reduction tree over segment results (Fig 4). A
// segment is a run of GEMMs accumulating serially into one private C
// buffer; the paper considers the two extremes — height 1 (maximum
// parallelism) and the full chain (maximum locality, v1) — and this plan
// supports any height for the ablation study.
type chainPlan struct {
	meta   *tce.ChainMeta
	n      int   // GEMMs in the chain
	h      int   // segment height
	m      int   // number of segments: ceil(n/h)
	top    int   // reduction tree height (0 when m == 1)
	width  []int // tree width per level; width[0] = m
	nsorts int
	cbytes int64
}

func newChainPlan(meta *tce.ChainMeta, height int) *chainPlan {
	n := len(meta.Gemms)
	h := height
	if h <= 0 || h > n {
		h = n
	}
	p := &chainPlan{
		meta:   meta,
		n:      n,
		h:      h,
		m:      (n + h - 1) / h,
		nsorts: len(meta.Sorts),
		cbytes: meta.CBytes(),
	}
	p.width = []int{p.m}
	for w := p.m; w > 1; {
		w = (w + 1) / 2
		p.width = append(p.width, w)
		p.top++
	}
	return p
}

// seg returns the segment index of GEMM position l2.
func (p *chainPlan) seg(l2 int) int { return l2 / p.h }

// posInSeg returns the position of l2 within its segment.
func (p *chainPlan) posInSeg(l2 int) int { return l2 % p.h }

// segLast returns the chain position of the last GEMM of segment s.
func (p *chainPlan) segLast(s int) int {
	last := (s+1)*p.h - 1
	if last >= p.n {
		last = p.n - 1
	}
	return last
}

// isSegEnd reports whether l2 is the last GEMM of its segment.
func (p *chainPlan) isSegEnd(l2 int) bool { return p.segLast(p.seg(l2)) == l2 }

// plans builds the per-chain plans for a workload under a variant.
// segHeight <= 0 selects the variant's default: full chain for
// SerialGemms (v1), height 1 otherwise.
func plans(w *tce.Workload, spec VariantSpec, segHeight int) []*chainPlan {
	ps := make([]*chainPlan, len(w.Chains))
	for i, c := range w.Chains {
		h := segHeight
		if h <= 0 {
			if spec.SerialGemms {
				h = len(c.Gemms)
			} else {
				h = 1
			}
		}
		ps[i] = newChainPlan(c, h)
	}
	return ps
}
