package ccsd

import (
	"parsec/internal/tce"
	"parsec/internal/xform"
)

// chainPlan precomputes the task-graph shape of one chain: its GEMM
// segmentation and the reduction tree over segment results (Fig 4). A
// segment is a run of GEMMs accumulating serially into one private C
// buffer; the paper considers the two extremes — height 1 (maximum
// parallelism) and the full chain (maximum locality, v1) — and this plan
// supports any height for the ablation study, and any reduction-tree
// arity for the ReshapeReduction pass.
type chainPlan struct {
	meta   *tce.ChainMeta
	n      int   // GEMMs in the chain
	h      int   // segment height
	m      int   // number of segments: ceil(n/h)
	arity  int   // reduction-tree fan-in (>= 2)
	top    int   // reduction tree height (0 when m == 1)
	width  []int // tree width per level; width[0] = m
	nsorts int
	cbytes int64
}

func newChainPlan(meta *tce.ChainMeta, height, arity int) *chainPlan {
	n := len(meta.Gemms)
	h := height
	if h <= 0 || h > n {
		h = n
	}
	if arity < 2 {
		arity = 2
	}
	p := &chainPlan{
		meta:   meta,
		n:      n,
		h:      h,
		m:      (n + h - 1) / h,
		arity:  arity,
		nsorts: len(meta.Sorts),
		cbytes: meta.CBytes(),
	}
	p.width = []int{p.m}
	for w := p.m; w > 1; {
		w = (w + arity - 1) / arity
		p.width = append(p.width, w)
		p.top++
	}
	return p
}

// seg returns the segment index of GEMM position l2.
func (p *chainPlan) seg(l2 int) int { return l2 / p.h }

// posInSeg returns the position of l2 within its segment.
func (p *chainPlan) posInSeg(l2 int) int { return l2 % p.h }

// segLast returns the chain position of the last GEMM of segment s.
func (p *chainPlan) segLast(s int) int {
	last := (s+1)*p.h - 1
	if last >= p.n {
		last = p.n - 1
	}
	return last
}

// isSegEnd reports whether l2 is the last GEMM of its segment.
func (p *chainPlan) isSegEnd(l2 int) bool { return p.segLast(p.seg(l2)) == l2 }

// plans builds the per-chain plans for a workload under a resolved
// shape: SegHeight 0 keeps each chain as one serial segment, k >= 1
// cuts it into segments of k GEMMs reduced by an arity-TreeArity tree.
func plans(w *tce.Workload, shape xform.Shape) []*chainPlan {
	ps := make([]*chainPlan, len(w.Chains))
	for i, c := range w.Chains {
		ps[i] = newChainPlan(c, shape.SegHeight, shape.TreeArity)
	}
	return ps
}
