package ccsd

import (
	"parsec/internal/cgp"
	"parsec/internal/cluster"
	"parsec/internal/ga"
	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/sim"
	"parsec/internal/simexec"
	"parsec/internal/tce"
	"parsec/internal/trace"
)

// SimGraph rebuilds the exact graph RunSim executes for the same
// configuration, without running it: the same kernel inspection, the
// same GA block placement, and the same build options. Profiling uses
// it to replay an executed DAG through ptg.Analyze with measured
// durations (internal/obsv critical-path attribution).
func SimGraph(sys *molecule.System, spec VariantSpec, mcfg cluster.Config, rc SimRunConfig) (*ptg.Graph, error) {
	k, err := tce.KernelByName(rc.Kernel, sys)
	if err != nil {
		return nil, err
	}
	dist := ga.Distribution{Nodes: mcfg.Nodes}
	w := tce.Inspect(k, func(ref tce.BlockRef) int {
		return dist.Owner(ref.Tensor, ref.Key)
	})
	return BuildGraph(w, spec, Options{
		Nodes:         mcfg.Nodes,
		SegmentHeight: rc.SegmentHeight,
		WriteSpan:     rc.WriteSpan,
	}), nil
}

// AnalyzeVariantSim replays the DAG a simulated run executed, charging
// each instance the duration dur reports for its TaskRef (typically a
// lookup of measured trace spans). The returned Analysis carries the
// critical path and per-entry durations for class attribution.
func AnalyzeVariantSim(sys *molecule.System, spec VariantSpec, mcfg cluster.Config, rc SimRunConfig, dur func(ptg.TaskRef) int64) (ptg.Analysis, error) {
	g, err := SimGraph(sys, spec, mcfg, rc)
	if err != nil {
		return ptg.Analysis{}, err
	}
	return ptg.Analyze(g, func(in *ptg.Instance) int64 { return dur(in.Ref) })
}

// AnalyzeVariantReal is AnalyzeVariantSim for the single-node
// shared-memory graph runRealWithOptions executes. The graph is built
// without a backing store — task bodies are never invoked during
// replay, only the dataflow is.
func AnalyzeVariantReal(w *tce.Workload, spec VariantSpec, segHeight int, dur func(ptg.TaskRef) int64) (ptg.Analysis, error) {
	g := BuildGraph(w, spec, Options{Nodes: 1, SegmentHeight: segHeight})
	return ptg.Analyze(g, func(in *ptg.Instance) int64 { return dur(in.Ref) })
}

// RunRealTraced is RunReal with an execution trace: every completed
// task is recorded as a span on node 0 via runtime.TraceObserver, so
// real shared-memory runs feed the same profiling pipeline as the
// simulated ones.
func RunRealTraced(w *tce.Workload, spec VariantSpec, workers int, tr *trace.Trace) (RealResult, error) {
	return runRealTraced(w, spec, workers, 0, sched.SharedQueue, tr)
}

// SimComm tallies the Global-Arrays one-sided traffic of one simulated
// run: GET_HASH_BLOCK vs ADD_HASH_BLOCK operations and payload bytes.
type SimComm struct {
	GetOps, GetBytes int64
	AccOps, AccBytes int64
}

// RunSimComm is RunSim additionally returning the GA communication
// tally, which the profile report combines with the simexec result's
// per-class network volumes (obsv.CommStats).
func RunSimComm(sys *molecule.System, spec VariantSpec, mcfg cluster.Config, rc SimRunConfig) (simexec.Result, SimComm, error) {
	res, gs, err := runSimGA(sys, spec, mcfg, rc)
	if err != nil {
		return res, SimComm{}, err
	}
	var c SimComm
	c.GetOps, c.AccOps = gs.Stats()
	c.GetBytes, c.AccBytes = gs.ByteStats()
	return res, c, nil
}

// RunSimBaselineComm is RunSimBaseline additionally returning the GA
// communication tally — for the original code that tally IS the whole
// communication story (blocking GET_HASH_BLOCK before every GEMM,
// ADD_HASH_BLOCK per chain; no dataflow deliveries).
func RunSimBaselineComm(sys *molecule.System, mcfg cluster.Config, ranksPerNode int, tr *trace.Trace) (sim.Time, SimComm, error) {
	eng := sim.NewEngine()
	m := cluster.New(eng, mcfg)
	gs := ga.NewSim(m)
	k, err := tce.KernelByName("t2_7", sys)
	if err != nil {
		return 0, SimComm{}, err
	}
	w := tce.Inspect(k, func(ref tce.BlockRef) int {
		return gs.Distribution().Owner(ref.Tensor, ref.Key)
	})
	res, err := cgp.Run(w, m, gs, cgp.Config{RanksPerNode: ranksPerNode, Trace: tr})
	if err != nil {
		return 0, SimComm{}, err
	}
	var c SimComm
	c.GetOps, c.AccOps = gs.Stats()
	c.GetBytes, c.AccBytes = gs.ByteStats()
	return res.Makespan, c, nil
}
