package ccsd

import (
	"time"

	"parsec/internal/ga"
	"parsec/internal/ptg"
	"parsec/internal/runtime"
	"parsec/internal/sched"
	"parsec/internal/tce"
	"parsec/internal/trace"
)

// RealResult is the outcome of a shared-memory execution with real data.
type RealResult struct {
	Energy float64
	Report runtime.Report
}

// RunReal executes one variant of the ported subroutine with real tensor
// arithmetic on the goroutine runtime and returns the correlation-energy
// functional of the output. All variants must agree with the serial
// reference to ~14 digits (§IV-A).
func RunReal(w *tce.Workload, spec VariantSpec, workers int) (RealResult, error) {
	return runRealWithOptions(w, spec, workers, 0, sched.SharedQueue)
}

// RunRealQueued is RunReal with an explicit ready-queue structure, for
// comparing the shared queue against PaRSEC-style per-worker queues
// (§IV-D) on the real workload rather than a microbenchmark.
func RunRealQueued(w *tce.Workload, spec VariantSpec, workers int, queue sched.QueueMode) (RealResult, error) {
	return runRealWithOptions(w, spec, workers, 0, queue)
}

// RunRealPerturbed is RunRealQueued with a per-task delay hook — the
// real-runtime analogue of a simulated straggler. The returned energy
// must still match the serial reference bit-for-bit at the 1e-12 level:
// fault recovery may reshuffle who computes what, never what is
// computed.
func RunRealPerturbed(w *tce.Workload, spec VariantSpec, workers int, queue sched.QueueMode, delay func(worker int, ref ptg.TaskRef) time.Duration) (RealResult, error) {
	return runRealDelayed(w, spec, workers, 0, queue, nil, delay)
}

// runRealWithOptions additionally overrides the GEMM segment height
// (<= 0 keeps the variant default), for the §IV-A locality/parallelism
// ablation.
func runRealWithOptions(w *tce.Workload, spec VariantSpec, workers, segHeight int, queue sched.QueueMode) (RealResult, error) {
	return runRealTraced(w, spec, workers, segHeight, queue, nil)
}

// runRealTraced is runRealWithOptions with an optional trace sink;
// when tr is non-nil every completed task is recorded through
// runtime.TraceObserver.
func runRealTraced(w *tce.Workload, spec VariantSpec, workers, segHeight int, queue sched.QueueMode, tr *trace.Trace) (RealResult, error) {
	return runRealDelayed(w, spec, workers, segHeight, queue, tr, nil)
}

// runRealDelayed is the full-option form behind every real-execution
// entry point, adding the fault-injection task-delay hook.
func runRealDelayed(w *tce.Workload, spec VariantSpec, workers, segHeight int, queue sched.QueueMode, tr *trace.Trace, delay func(int, ptg.TaskRef) time.Duration) (RealResult, error) {
	store := ga.NewStore(1)
	aName, bName := w.InputTensors()
	a := store.Create(aName)
	bt := store.Create(bName)
	store.Create(tce.TensorC)
	for _, ref := range w.UniqueBlocks(aName) {
		w.FillBlock(ref, a.GetOrCreate(ref.Key, ref.Dims))
	}
	for _, ref := range w.UniqueBlocks(bName) {
		w.FillBlock(ref, bt.GetOrCreate(ref.Key, ref.Dims))
	}

	g := BuildGraph(w, spec, Options{Nodes: 1, Store: store, SegmentHeight: segHeight})
	policy := sched.PriorityOrder
	if !spec.UsePriorities() {
		policy = sched.LIFOOrder
	}
	rcfg := runtime.Config{Workers: workers, Policy: policy, Queues: queue, TaskDelay: delay}
	if tr != nil {
		rcfg.Observer = runtime.TraceObserver(0, tr)
	}
	rep, err := runtime.Run(g, rcfg)
	if err != nil {
		return RealResult{}, err
	}
	return RealResult{
		Energy: w.Energy(store.Array(tce.TensorC)),
		Report: rep,
	}, nil
}

// ReferenceEnergy computes the ground-truth energy with the serial
// reference executor.
func ReferenceEnergy(w *tce.Workload) float64 {
	a, b := w.Materialize()
	return w.Energy(w.RunReference(a, b))
}
