package tensor

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"testing"
)

// gemmNaive is an independent reference: the textbook triple loop with
// explicit index arithmetic, sharing no code with either the direct or
// the blocked kernels.
func gemmNaive(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	m, k := opDims(a, transA)
	_, n := opDims(b, transB)
	opA := func(i, p int) float64 {
		if transA {
			return a.At(p, i)
		}
		return a.At(i, p)
	}
	opB := func(p, j int) float64 {
		if transB {
			return b.At(j, p)
		}
		return b.At(p, j)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for p := 0; p < k; p++ {
				sum += opA(i, p) * opB(p, j)
			}
			c.Set(i, j, alpha*sum+beta*c.At(i, j))
		}
	}
}

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// TestGemmBlockedProperty checks Gemm against the naive reference on
// random shapes straddling the blocking cutoff, for all four trans
// combinations and assorted alpha/beta, to ~1e-13 relative to k.
func TestGemmBlockedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 2}, {9, 9, 9}, // direct path
		{33, 33, 33}, {40, 25, 70}, // just past the cutoff
		{121, 121, 121}, // the benzene tile
		{130, 131, 129}, // every edge-strip case at once
		{257, 65, 300},  // k spanning two KC panels
		{41, 600, 37},   // n edge with wide panel
	}
	for it := 0; it < 40; it++ {
		shapes = append(shapes, [3]int{rng.Intn(160) + 1, rng.Intn(160) + 1, rng.Intn(160) + 1})
	}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for variant := 0; variant < 4; variant++ {
			transA := variant&1 != 0
			transB := variant&2 != 0
			alpha := []float64{1, -0.5, 2.25}[(m+n+k+variant)%3]
			beta := []float64{1, 0, 0.5}[(m+n)%3]
			ar, ac := m, k
			if transA {
				ar, ac = k, m
			}
			br, bc := k, n
			if transB {
				br, bc = n, k
			}
			a := randMat(rng, ar, ac)
			b := randMat(rng, br, bc)
			c := randMat(rng, m, n)
			want := c.Clone()
			gemmNaive(transA, transB, alpha, a, b, beta, want)
			Gemm(transA, transB, alpha, a, b, beta, c)
			tol := 1e-13 * float64(k)
			if d := c.MaxAbsDiff(want); d > tol {
				t.Fatalf("Gemm(%v,%v) m=%d n=%d k=%d alpha=%g beta=%g: max diff %g > %g",
					transA, transB, m, n, k, alpha, beta, d, tol)
			}
		}
	}
}

// TestGemmBlockedMatchesDirect pins the blocked and direct kernels
// against each other on identical inputs at a size both handle.
func TestGemmBlockedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for variant := 0; variant < 4; variant++ {
		transA := variant&1 != 0
		transB := variant&2 != 0
		const m, n, k = 96, 80, 112
		ar, ac := m, k
		if transA {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB {
			br, bc = n, k
		}
		a := randMat(rng, ar, ac)
		b := randMat(rng, br, bc)
		c1 := NewMatrix(m, n)
		c2 := NewMatrix(m, n)
		gemmBlocked(transA, transB, 1.5, a, b, c1)
		gemmDirect(transA, transB, 1.5, a, b, c2)
		if d := c1.MaxAbsDiff(c2); d > 1e-13*float64(k) {
			t.Fatalf("variant %d: blocked vs direct max diff %g", variant, d)
		}
	}
}

// benchGemm runs one (m,n,k) DGEMM variant through fn, reporting GFLOP/s
// and the bytes each op touches.
func benchGemm(b *testing.B, m, n, k int, transA, transB bool, fn func(a, bb, c *Matrix)) {
	ar, ac := m, k
	if transA {
		ar, ac = k, m
	}
	br, bc := k, n
	if transB {
		br, bc = n, k
	}
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, ar, ac)
	bb := randMat(rng, br, bc)
	c := NewMatrix(m, n)
	b.SetBytes(int64(8 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(a, bb, c)
	}
	flops := float64(GemmFlops(m, n, k)) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

// BenchmarkKernelGemmBlockedVsDirect pits the packed kernel against the
// direct loops on the dominant TN tile shapes of the two evaluation
// systems (benzene 121^3, beta-carotene 1332^3) plus the 128^3 shape the
// root suite tracks.
func BenchmarkKernelGemmBlockedVsDirect(b *testing.B) {
	for _, sh := range [][3]int{{121, 121, 121}, {128, 128, 128}, {1332, 1332, 1332}} {
		m, n, k := sh[0], sh[1], sh[2]
		if testing.Short() && m > 200 {
			continue
		}
		b.Run(fmt.Sprintf("blocked-%dx%dx%d", m, n, k), func(b *testing.B) {
			benchGemm(b, m, n, k, true, false, func(a, bb, c *Matrix) {
				gemmBlocked(true, false, 1, a, bb, c)
			})
		})
		b.Run(fmt.Sprintf("direct-%dx%dx%d", m, n, k), func(b *testing.B) {
			benchGemm(b, m, n, k, true, false, func(a, bb, c *Matrix) {
				gemmDirect(true, false, 1, a, bb, c)
			})
		})
	}
}

// TestGemmBlockedSteadyStateAllocs pins the packing-buffer pooling: a
// warmed-up blocked GEMM allocates nothing.
func TestGemmBlockedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	const m, n, k = 128, 128, 128
	a := randMat(rand.New(rand.NewSource(1)), k, m)
	b := randMat(rand.New(rand.NewSource(2)), k, n)
	c := NewMatrix(m, n)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	Gemm(true, false, 1, a, b, 1, c) // warm the pool classes
	allocs := testing.AllocsPerRun(3, func() {
		Gemm(true, false, 1, a, b, 1, c)
	})
	if allocs != 0 {
		t.Errorf("warmed-up blocked Gemm: %v allocs/run, want 0", allocs)
	}
}
