package tensor

import (
	"fmt"
	"math/rand"
	"testing"

	"parsec/internal/team"
)

// TestActiveTierWithinHW pins the only invariant detection must never
// break: the dispatch tier cannot exceed what the hardware supports
// (PARSEC_KERNEL_TIER may clamp it below).
func TestActiveTierWithinHW(t *testing.T) {
	if ActiveKernelTier() > hwKernelTier() {
		t.Fatalf("active tier %v above hardware tier %v", ActiveKernelTier(), hwKernelTier())
	}
	for _, tier := range []KernelTier{TierPortable, TierAVX2, TierAVX512} {
		if tier.String() == "" {
			t.Fatalf("tier %d has empty name", tier)
		}
	}
}

// TestAxpyScaleToMatchScalar pins the vector accumulate kernels bitwise
// to the scalar loops, across lengths that cover the empty, short,
// multiple-of-8, and ragged-tail cases. Bitwise equality is what lets
// Sort4Add, AddScaled, and the GA folds use them without perturbing
// energies.
func TestAxpyScaleToMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lengths := []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 1000, 4096}
	for _, n := range lengths {
		src := make([]float64, n)
		base := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
			base[i] = rng.NormFloat64()
		}
		for _, scale := range []float64{0, 1, -1, 0.37, -2.5} {
			wantAdd := append([]float64(nil), base...)
			for i, v := range src {
				wantAdd[i] += scale * v
			}
			gotAdd := append([]float64(nil), base...)
			Axpy(gotAdd, src, scale)
			for i := range gotAdd {
				if gotAdd[i] != wantAdd[i] {
					t.Fatalf("Axpy n=%d scale=%v: [%d] = %v, want %v (tier %v)",
						n, scale, i, gotAdd[i], wantAdd[i], ActiveKernelTier())
				}
			}
			wantSet := make([]float64, n)
			for i, v := range src {
				wantSet[i] = scale * v
			}
			gotSet := make([]float64, n)
			ScaleTo(gotSet, src, scale)
			for i := range gotSet {
				if gotSet[i] != wantSet[i] {
					t.Fatalf("ScaleTo n=%d scale=%v: [%d] = %v, want %v (tier %v)",
						n, scale, i, gotSet[i], wantSet[i], ActiveKernelTier())
				}
			}
		}
	}
	if ActiveKernelTier() >= TierAVX2 {
		// The guards must hold for the asm path too.
		defer func() {
			if recover() == nil {
				t.Fatal("Axpy with short dst did not panic")
			}
		}()
		Axpy(make([]float64, 3), make([]float64, 8), 1)
	}
}

// TestGemmTiersBitwiseEqual pins the AVX-512 micro-kernel bitwise to the
// AVX2 one: per C element both run the same ascending-k sequence of
// fused multiply-adds (zero padding contributes exact +0 terms), so
// widening the register block must not change a single bit. This is the
// property that lets machines of different vector widths in one netrun
// cluster agree on energies exactly.
func TestGemmTiersBitwiseEqual(t *testing.T) {
	if ActiveKernelTier() < TierAVX512 {
		t.Skip("AVX-512 tier not active on this machine/run")
	}
	rng := rand.New(rand.NewSource(17))
	shapes := [][3]int{
		{40, 40, 40},    // just above the blocking cutoff
		{121, 121, 121}, // benzene fused tile
		{130, 37, 257},  // ragged in every blocked dimension
		{8, 16, 300},    // exactly one 8x16 tile
		{9, 17, 64},     // one tile plus a one-wide edge in both axes
		{263, 129, 33},  // prime-ish edges across several macro tiles
	}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		for _, tt := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			transA, transB := tt[0], tt[1]
			ar, ac := m, k
			if transA {
				ar, ac = k, m
			}
			br, bc := k, n
			if transB {
				br, bc = n, k
			}
			a := randMat(rng, ar, ac)
			b := randMat(rng, br, bc)
			c512 := randMat(rng, m, n)
			c256 := c512.Clone()

			gemmBlocked(transA, transB, 1.25, a, b, c512)
			restore := setKernelTier(TierAVX2)
			gemmBlocked(transA, transB, 1.25, a, b, c256)
			restore()

			for i := range c512.Data {
				if c512.Data[i] != c256.Data[i] {
					t.Fatalf("m=%d n=%d k=%d transA=%v transB=%v: avx512 and avx2 differ at %d: %v vs %v",
						m, n, k, transA, transB, i, c512.Data[i], c256.Data[i])
				}
			}
		}
	}
}

// TestGemmPMatchesSerial pins the column-split parallel GEMM bitwise to
// the serial kernel for every trans variant, several part counts, and
// shapes above and below the parallel cutoff. Each C element is computed
// by exactly one part in the same k order, so even the floats must
// match exactly — this is what keeps energies independent of how many
// workers were lent.
func TestGemmPMatchesSerial(t *testing.T) {
	pool4 := team.NewPool(4)
	defer pool4.Close()
	pool3 := team.NewPool(3)
	defer pool3.Close()
	rng := rand.New(rand.NewSource(23))
	shapes := [][3]int{
		{16, 16, 16},    // below the blocking cutoff: direct path
		{64, 64, 64},    // blocked but below the parallel cutoff
		{97, 301, 64},   // wide: several 64-column parts
		{130, 259, 97},  // ragged part boundaries
		{200, 200, 120}, // square-ish above the cutoff
	}
	teams := []struct {
		name string
		par  team.Parallelism
	}{
		{"nil", nil},
		{"serial", team.Serial},
		{"pool3", pool3},
		{"pool4", pool4},
	}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		for _, tt := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			transA, transB := tt[0], tt[1]
			ar, ac := m, k
			if transA {
				ar, ac = k, m
			}
			br, bc := k, n
			if transB {
				br, bc = n, k
			}
			a := randMat(rng, ar, ac)
			b := randMat(rng, br, bc)
			c0 := randMat(rng, m, n)
			for _, beta := range []float64{0, 1, 0.5} {
				want := c0.Clone()
				Gemm(transA, transB, 1.25, a, b, beta, want)
				for _, tm := range teams {
					got := c0.Clone()
					GemmP(tm.par, nil, transA, transB, 1.25, a, b, beta, got)
					for i := range got.Data {
						if got.Data[i] != want.Data[i] {
							t.Fatalf("m=%d n=%d k=%d transA=%v transB=%v beta=%v team=%s: differs from serial at %d: %v vs %v",
								m, n, k, transA, transB, beta, tm.name, i, got.Data[i], want.Data[i])
						}
					}
				}
			}
		}
	}
}

// TestGemmPShapePanic pins the dimension check of the parallel entry
// point.
func TestGemmPShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GemmP with mismatched shapes did not panic")
		}
	}()
	GemmP(nil, nil, false, false, 1, NewMatrix(4, 5), NewMatrix(6, 7), 1, NewMatrix(4, 7))
}

// FuzzSort4Add drives the blocked and contiguous Sort4Add paths against
// the scatter reference with fuzzer-chosen shapes, permutation, scale,
// and data seed, requiring bitwise equality. Shapes are folded into
// 1..24 per axis, so the fuzzer crosses the block-cutoff boundary and
// the ragged sub-tile edges.
func FuzzSort4Add(f *testing.F) {
	f.Add(uint8(3), uint8(5), uint8(7), uint8(9), uint8(11), int16(64), true)
	f.Add(uint8(11), uint8(11), uint8(11), uint8(11), uint8(0), int16(-100), false)
	f.Add(uint8(16), uint8(16), uint8(16), uint8(16), uint8(23), int16(1), true)
	f.Add(uint8(24), uint8(1), uint8(24), uint8(2), uint8(17), int16(2), false)
	f.Fuzz(func(t *testing.T, d0, d1, d2, d3, permIdx uint8, scaleMilli int16, add bool) {
		dim := [4]int{1 + int(d0)%24, 1 + int(d1)%24, 1 + int(d2)%24, 1 + int(d3)%24}
		perm := allPerms4()[int(permIdx)%24]
		scale := float64(scaleMilli) / 8
		src := NewTile4(dim[0], dim[1], dim[2], dim[3])
		src.FillRandom(uint64(permIdx)+uint64(d0)<<8, 1)
		want := NewTile4Sorted(src, perm)
		want.FillRandom(42, 1)
		got := want.Clone()
		sort4Scatter(want, src, perm, scale, add)
		if add {
			Sort4Add(got, src, perm, scale)
		} else {
			Sort4(got, src, perm, scale)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("dim=%v perm=%v scale=%v add=%v: differs from scatter at %d: %v vs %v",
					dim, perm, scale, add, i, got.Data[i], want.Data[i])
			}
		}
	})
}

// BenchmarkKernelGemmPar measures the team-split GEMM against the serial
// blocked path on a large square shape (the CI smoke leg runs it once;
// real numbers land in BENCH_kernels.json via ccsim -kernels).
func BenchmarkKernelGemmPar(b *testing.B) {
	const m, n, k = 512, 512, 512
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, k, m)
	bm := randMat(rng, k, n)
	c := NewMatrix(m, n)
	flops := GemmFlops(m, n, k)
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(flops) // report flops/s as bytes/s
		for i := 0; i < b.N; i++ {
			Gemm(true, false, 1, a, bm, 1, c)
		}
	})
	for _, w := range []int{2, 4} {
		tp := team.NewPool(w)
		b.Run(fmt.Sprintf("team%d", w), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				GemmP(tp, nil, true, false, 1, a, bm, 1, c)
			}
		})
		tp.Close()
	}
}

// BenchmarkKernelAxpy measures the vector accumulate kernel against the
// scalar loop.
func BenchmarkKernelAxpy(b *testing.B) {
	const n = 1 << 16
	src := make([]float64, n)
	dst := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	b.Run("vector", func(b *testing.B) {
		b.SetBytes(16 * n)
		for i := 0; i < b.N; i++ {
			Axpy(dst, src, 1.0000001)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		restore := setKernelTier(TierPortable)
		defer restore()
		b.SetBytes(16 * n)
		for i := 0; i < b.N; i++ {
			Axpy(dst, src, 1.0000001)
		}
	})
}
