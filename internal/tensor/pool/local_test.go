package pool

import "testing"

// TestLocalReuse pins the shard contract: a Put slice comes back from
// the next same-class Get without touching the shared pool, counted as
// a hit.
func TestLocalReuse(t *testing.T) {
	l := NewLocal()
	s := l.Get(300) // class 512
	if len(s) != 300 {
		t.Fatalf("Get(300) returned len %d", len(s))
	}
	if l.Hits != 0 || l.Misses != 1 {
		t.Fatalf("fresh shard: hits=%d misses=%d, want 0/1", l.Hits, l.Misses)
	}
	s[0] = 42
	l.Put(s)
	s2 := l.Get(400) // same class
	if cap(s2) != 512 {
		t.Fatalf("recycled slice has cap %d, want 512", cap(s2))
	}
	if l.Hits != 1 {
		t.Fatalf("after recycle: hits=%d, want 1", l.Hits)
	}
	if &s2[0] != &s[0] {
		t.Fatal("Get after Put did not return the local slice")
	}
}

// TestLocalNilReceiver pins that a nil *Local is the shared-pool path on
// every method.
func TestLocalNilReceiver(t *testing.T) {
	var l *Local
	s := l.Get(100)
	if len(s) != 100 {
		t.Fatalf("nil.Get(100) returned len %d", len(s))
	}
	l.Put(s)
	z := l.GetZeroed(100)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("nil.GetZeroed: [%d] = %v", i, v)
		}
	}
	l.Put(z)
	l.Drain()
}

// TestLocalGetZeroed pins that a recycled dirty slice comes back zeroed.
func TestLocalGetZeroed(t *testing.T) {
	l := NewLocal()
	s := l.Get(64)
	for i := range s {
		s[i] = 7
	}
	l.Put(s)
	z := l.GetZeroed(64)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed after dirty Put: [%d] = %v", i, v)
		}
	}
}

// TestLocalOverflow pins the depth bound: the class list holds localDepth
// slices and further Puts overflow to the shared pool rather than grow.
func TestLocalOverflow(t *testing.T) {
	l := NewLocal()
	slices := make([][]float64, localDepth+2)
	for i := range slices {
		slices[i] = make([]float64, 256)
	}
	for _, s := range slices {
		l.Put(s)
	}
	ci := classIndex(256)
	if got := len(l.free[ci]); got != localDepth {
		t.Fatalf("free list holds %d slices, want %d", got, localDepth)
	}
	// All localDepth retained slices serve Gets as hits.
	for i := 0; i < localDepth; i++ {
		l.Get(256)
	}
	if l.Hits != localDepth {
		t.Fatalf("hits=%d, want %d", l.Hits, localDepth)
	}
}

// TestLocalOddSizes pins the class discipline: out-of-class and oversize
// requests bypass the shard, and Put ignores slices whose cap is not an
// exact class size.
func TestLocalOddSizes(t *testing.T) {
	l := NewLocal()
	huge := l.Get(1 << 25) // above maxClassBits: plain make
	if len(huge) != 1<<25 {
		t.Fatalf("oversize Get returned len %d", len(huge))
	}
	l.Put(huge)
	l.Put(make([]float64, 300)) // cap 300 is not a class size
	l.Put(nil)
	for ci := range l.free {
		if len(l.free[ci]) != 0 {
			t.Fatalf("class %d retained an off-class slice", ci)
		}
	}
	if l.Hits != 0 {
		t.Fatalf("hits=%d after off-class traffic, want 0", l.Hits)
	}
}

// TestLocalDrain pins that Drain empties every class list (a retiring
// worker pins nothing) and the shard remains usable afterwards.
func TestLocalDrain(t *testing.T) {
	l := NewLocal()
	for _, n := range []int{256, 1024, 4096} {
		l.Put(make([]float64, n))
	}
	l.Drain()
	for ci := range l.free {
		if len(l.free[ci]) != 0 {
			t.Fatalf("class %d not drained", ci)
		}
	}
	s := l.Get(256)
	l.Put(s)
	if got := l.Get(256); &got[0] != &s[0] {
		t.Fatal("shard unusable after Drain")
	}
}
