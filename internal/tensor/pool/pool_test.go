package pool

import (
	"runtime/debug"
	"testing"
)

func TestClassIndex(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{1, 0}, {255, 0}, {256, 0}, {257, 1}, {512, 1}, {513, 2},
		{1 << 20, 12}, {1<<24 - 1, 16}, {1 << 24, 16}, {1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classIndex(c.n); got != c.want {
			t.Errorf("classIndex(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetPut(t *testing.T) {
	s := Get(1000)
	if len(s) != 1000 {
		t.Fatalf("len = %d, want 1000", len(s))
	}
	if cap(s) != 1024 {
		t.Fatalf("cap = %d, want class size 1024", cap(s))
	}
	for i := range s {
		s[i] = float64(i)
	}
	Put(s)
	z := GetZeroed(900)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed[%d] = %g, want 0", i, v)
		}
	}
	Put(z)

	// Oversize requests fall through to the heap.
	big := Get(1<<24 + 1)
	if len(big) != 1<<24+1 {
		t.Fatalf("oversize len = %d", len(big))
	}
	Put(big) // discarded, must not panic

	// Slices with non-class capacity are discarded, not pooled.
	Put(make([]float64, 300))
	Put(nil)
}

func TestGetPutNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	// sync.Pool contents are dropped by GC; hold it off so the warm pool
	// stays warm for the measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, n := range []int{100, 4096, 100000} {
		Put(Get(n)) // warm the class
		allocs := testing.AllocsPerRun(100, func() {
			s := Get(n)
			s[0] = 1
			Put(s)
		})
		if allocs != 0 {
			t.Errorf("Get(%d)/Put cycle: %v allocs/op, want 0", n, allocs)
		}
	}
}
