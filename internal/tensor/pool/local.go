package pool

// Local is a worker-private scratch shard: a small per-size-class free
// list owned by exactly one goroutine at a time, with overflow to (and
// refill from) the shared sync.Pool classes. Schedulers hand one Local
// to each worker so the steady-state Get/Put traffic of task bodies and
// GEMM packing never touches a shared structure — the cross-shard
// contention killer DESIGN.md §13 describes for service-mode load.
//
// A Local's methods must only be called from the goroutine that
// currently owns it. A nil *Local is valid and falls through to the
// shared pool, so call sites can thread an optional shard without
// branching.
type Local struct {
	free  [numClasses][]*[]float64
	stash [numClasses * localDepth]*[]float64 // backing array for the free lists
	// Hits and Misses count Gets served locally vs. punted to the shared
	// pool, for tests and scheduler reporting.
	Hits, Misses int64
}

// localDepth is the free-list depth per size class per worker: deep
// enough to hold a task body's simultaneous live scratch (the GEMM A and
// B packing panels plus a couple of tiles), shallow enough that parked
// workers pin little memory.
const localDepth = 4

// NewLocal returns an empty worker-local shard.
func NewLocal() *Local {
	l := &Local{}
	for ci := range l.free {
		s := l.stash[ci*localDepth : ci*localDepth : (ci+1)*localDepth]
		l.free[ci] = s
	}
	return l
}

// Get returns a float64 slice of length n with unspecified contents,
// preferring the local free list and falling back to the shared pool.
// A nil receiver is the shared-pool path.
func (l *Local) Get(n int) []float64 {
	if l == nil {
		return Get(n)
	}
	ci := classIndex(n)
	if ci < 0 {
		return make([]float64, n)
	}
	if fl := l.free[ci]; len(fl) > 0 {
		h := fl[len(fl)-1]
		l.free[ci] = fl[:len(fl)-1]
		s := (*h)[:n]
		*h = nil
		headerPool.Put(h)
		l.Hits++
		return s
	}
	l.Misses++
	return Get(n)
}

// GetZeroed returns a zeroed float64 slice of length n from the shard.
func (l *Local) GetZeroed(n int) []float64 {
	s := l.Get(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// Put returns a slice to the local free list, overflowing to the shared
// pool when the class list is full. The caller must not retain any
// reference to s. A nil receiver is the shared-pool path.
func (l *Local) Put(s []float64) {
	if l == nil {
		Put(s)
		return
	}
	c := cap(s)
	if c == 0 {
		return
	}
	ci := classIndex(c)
	if ci < 0 || c != 1<<(minClassBits+ci) {
		return
	}
	fl := l.free[ci]
	if len(fl) == cap(fl) {
		Put(s)
		return
	}
	h := headerPool.Get().(*[]float64)
	*h = s[:c]
	l.free[ci] = append(fl, h)
}

// Drain releases every locally held slice back to the shared pool, for
// workers shutting down (service-mode job isolation requires that a
// retiring worker pins nothing).
func (l *Local) Drain() {
	if l == nil {
		return
	}
	for ci := range l.free {
		for _, h := range l.free[ci] {
			classes[ci].Put(h)
		}
		l.free[ci] = l.free[ci][:0]
	}
}
