// Package pool is the scratch allocator behind the dense-kernel layer:
// a size-class bucketed, sync.Pool-backed recycler for float64 scratch
// slices. The GEMM packing buffers and the DFILL/REDUCE/SORT task bodies
// draw their working storage from here, so steady-state real execution
// performs no per-task heap allocation on the hot path (DESIGN.md §8).
//
// Slices are bucketed by capacity into power-of-two size classes; Get
// returns a slice of the exact requested length whose capacity is the
// class size. Requests above the largest class fall through to the heap
// and Put discards them, bounding the memory the pool can pin.
package pool

import (
	"math/bits"
	"sync"
)

const (
	// minClassBits is the smallest pooled class (1<<minClassBits
	// float64s = 2 KiB). Smaller requests share it.
	minClassBits = 8
	// maxClassBits is the largest pooled class (1<<maxClassBits
	// float64s = 128 MiB), comfortably above the beta-carotene tile
	// (36*37*36*37 ≈ 1.8M elements) and its GEMM packing panels.
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1
)

// classes[i] pools *[]float64 headers whose slices have capacity exactly
// 1<<(minClassBits+i). Headers are boxed as pointers — storing a bare
// slice in an interface would heap-allocate on every Put — and recycled
// through headerPool so a Get/Put cycle allocates nothing.
var classes [numClasses]sync.Pool

var headerPool = sync.Pool{New: func() any { return new([]float64) }}

// classIndex returns the size-class index for a request of n float64s,
// or -1 when n exceeds the largest class.
func classIndex(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

// Get returns a float64 slice of length n. Contents are unspecified —
// callers that need zeroed storage use GetZeroed. The slice's capacity is
// its size class, so callers must not append to it.
func Get(n int) []float64 {
	if n < 0 {
		panic("pool: Get with negative length")
	}
	ci := classIndex(n)
	if ci < 0 {
		return make([]float64, n)
	}
	if v := classes[ci].Get(); v != nil {
		h := v.(*[]float64)
		s := (*h)[:n]
		*h = nil
		headerPool.Put(h)
		return s
	}
	return make([]float64, n, 1<<(minClassBits+ci))
}

// GetZeroed returns a zeroed float64 slice of length n.
func GetZeroed(n int) []float64 {
	s := Get(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// Put returns a slice to its size class for reuse. Slices whose capacity
// is not a pooled class size (including oversize allocations) are
// discarded. The caller must not retain any reference to s.
func Put(s []float64) {
	c := cap(s)
	if c == 0 {
		return
	}
	ci := classIndex(c)
	if ci < 0 || c != 1<<(minClassBits+ci) {
		return
	}
	h := headerPool.Get().(*[]float64)
	*h = s[:c]
	classes[ci].Put(h)
}
