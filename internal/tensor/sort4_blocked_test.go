package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// allPerms4 returns all 24 permutations of {0,1,2,3}.
func allPerms4() [][4]int {
	var out [][4]int
	var rec func(cur []int, used [4]bool)
	rec = func(cur []int, used [4]bool) {
		if len(cur) == 4 {
			out = append(out, [4]int{cur[0], cur[1], cur[2], cur[3]})
			return
		}
		for p := 0; p < 4; p++ {
			if !used[p] {
				used[p] = true
				rec(append(cur, p), used)
				used[p] = false
			}
		}
	}
	rec(nil, [4]bool{})
	return out
}

// TestSort4BlockedProperty checks Sort4 and Sort4Add against the direct
// scatter loops for every permutation over shapes that exercise the
// tiny-tile path, the contiguous path, the blocked path, and ragged
// block edges.
func TestSort4BlockedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][4]int{
		{2, 3, 4, 5},     // below cutoff: scatter path
		{11, 11, 11, 11}, // benzene tile, just above cutoff
		{16, 16, 16, 16}, // root bench shape
		{36, 37, 36, 37}, // beta-carotene out tile
		{5, 7, 97, 3},    // skewed: long axis in the middle
		{3, 130, 2, 70},  // extents straddling the block sizes
	}
	for i := 0; i < 6; i++ {
		shapes = append(shapes, [4]int{
			1 + rng.Intn(20), 1 + rng.Intn(20), 1 + rng.Intn(20), 1 + rng.Intn(20),
		})
	}
	for _, dim := range shapes {
		src := NewTile4(dim[0], dim[1], dim[2], dim[3])
		src.FillRandom(uint64(dim[0]*1000+dim[3]), 1)
		for _, perm := range allPerms4() {
			for _, add := range []bool{false, true} {
				name := fmt.Sprintf("%v/perm%v/add=%v", dim, perm, add)
				want := NewTile4Sorted(src, perm)
				got := NewTile4Sorted(src, perm)
				want.FillRandom(99, 1)
				copy(got.Data, want.Data)
				scale := 1.5 - float64(perm[0])
				sort4Scatter(want, src, perm, scale, add)
				if add {
					Sort4Add(got, src, perm, scale)
				} else {
					Sort4(got, src, perm, scale)
				}
				if d := got.MaxAbsDiff(want); d != 0 {
					t.Fatalf("%s: max abs diff %g vs scatter reference", name, d)
				}
			}
		}
	}
}

// NewTile4Sorted allocates a destination tile shaped for Sort4(src, perm).
func NewTile4Sorted(src *Tile4, perm [4]int) *Tile4 {
	d := src.SortedDims(perm)
	return NewTile4(d[0], d[1], d[2], d[3])
}

func benchSort4(b *testing.B, dim [4]int, perm [4]int, impl func(dst, src *Tile4, perm [4]int, scale float64, add bool)) {
	src := NewTile4(dim[0], dim[1], dim[2], dim[3])
	src.FillRandom(11, 1)
	dst := NewTile4Sorted(src, perm)
	b.SetBytes(src.Bytes() * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		impl(dst, src, perm, -1, false)
	}
}

// BenchmarkKernelSort4BlockedVsScatter compares the blocked SORT_4
// against the direct scatter loops on the workload shapes.
func BenchmarkKernelSort4BlockedVsScatter(b *testing.B) {
	cases := []struct {
		name string
		dim  [4]int
		perm [4]int
	}{
		{"16x16x16x16-p2031", [4]int{16, 16, 16, 16}, [4]int{2, 0, 3, 1}},
		{"36x37x36x37-p2031", [4]int{36, 37, 36, 37}, [4]int{2, 0, 3, 1}},
		{"36x37x36x37-p1032", [4]int{36, 37, 36, 37}, [4]int{1, 0, 3, 2}},
		{"36x37x36x37-p3210", [4]int{36, 37, 36, 37}, [4]int{3, 2, 1, 0}},
		{"11x11x11x11-p2301", [4]int{11, 11, 11, 11}, [4]int{2, 3, 0, 1}},
	}
	for _, c := range cases {
		b.Run("blocked-"+c.name, func(b *testing.B) {
			benchSort4(b, c.dim, c.perm, sort4Impl)
		})
		b.Run("scatter-"+c.name, func(b *testing.B) {
			benchSort4(b, c.dim, c.perm, sort4Scatter)
		})
	}
}
