package tensor

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestBlockTensorBasics(t *testing.T) {
	bt := NewBlockTensor4()
	if bt.NumBlocks() != 0 {
		t.Fatal("new tensor not empty")
	}
	k := BlockKey{1, 2, 3, 4}
	tl := bt.GetOrCreate(k, [4]int{2, 2, 2, 2})
	tl.Set(0, 0, 0, 0, 5)
	got, ok := bt.Tile(k)
	if !ok || got.At(0, 0, 0, 0) != 5 {
		t.Error("Tile did not return stored tile")
	}
	if _, ok := bt.Tile(BlockKey{9, 9, 9, 9}); ok {
		t.Error("absent key reported present")
	}
	if bt.TotalBytes() != 16*8 {
		t.Errorf("TotalBytes = %d", bt.TotalBytes())
	}
}

func TestGetOrCreateDimMismatchPanics(t *testing.T) {
	bt := NewBlockTensor4()
	bt.GetOrCreate(BlockKey{0, 0, 0, 0}, [4]int{2, 2, 2, 2})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	bt.GetOrCreate(BlockKey{0, 0, 0, 0}, [4]int{3, 3, 3, 3})
}

func TestMustTilePanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBlockTensor4().MustTile(BlockKey{0, 0, 0, 0})
}

func TestKeysSorted(t *testing.T) {
	bt := NewBlockTensor4()
	keys := []BlockKey{{2, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 5}, {0, 0, 0, 1}}
	for _, k := range keys {
		bt.GetOrCreate(k, [4]int{1, 1, 1, 1})
	}
	got := bt.Keys()
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("keys not sorted: %v", got)
		}
	}
}

func TestAccConcurrent(t *testing.T) {
	bt := NewBlockTensor4()
	k := BlockKey{0, 0, 0, 0}
	src := NewTile4(2, 2, 2, 2)
	for i := range src.Data {
		src.Data[i] = 1
	}
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bt.Acc(k, src, 1)
		}()
	}
	wg.Wait()
	tl := bt.MustTile(k)
	for _, v := range tl.Data {
		if v != n {
			t.Fatalf("concurrent Acc lost updates: %v != %d", v, n)
		}
	}
}

func TestDotDeterministicOrder(t *testing.T) {
	a := NewBlockTensor4()
	b := NewBlockTensor4()
	for i := 0; i < 5; i++ {
		k := BlockKey{i, 0, 0, 0}
		ta := a.GetOrCreate(k, [4]int{2, 2, 2, 2})
		tb := b.GetOrCreate(k, [4]int{2, 2, 2, 2})
		ta.FillRandom(uint64(i), 1)
		tb.FillRandom(uint64(i+100), 1)
	}
	d1 := a.Dot(b)
	d2 := a.Dot(b)
	if d1 != d2 {
		t.Error("Dot not deterministic")
	}
	// Dot over disjoint blocks is zero.
	c := NewBlockTensor4()
	c.GetOrCreate(BlockKey{99, 0, 0, 0}, [4]int{1, 1, 1, 1})
	if a.Dot(c) != 0 {
		t.Error("Dot over disjoint blocks nonzero")
	}
}

// Property: Acc in any order yields the same result as one big sum
// (commutativity of accumulate — the precondition for the paper's variant
// reorderings, §IV-A).
func TestPropertyAccOrderInvariant(t *testing.T) {
	f := func(seed uint64, order []uint8) bool {
		if len(order) == 0 || len(order) > 12 {
			return true
		}
		srcs := make([]*Tile4, len(order))
		for i := range srcs {
			srcs[i] = NewTile4(2, 3, 2, 3)
			srcs[i].FillRandom(seed+uint64(i), 1)
		}
		k := BlockKey{0, 0, 0, 0}
		fwd := NewBlockTensor4()
		for _, s := range srcs {
			fwd.Acc(k, s, 1)
		}
		rev := NewBlockTensor4()
		for i := len(srcs) - 1; i >= 0; i-- {
			rev.Acc(k, srcs[i], 1)
		}
		// Floating-point addition is commutative elementwise for two-term
		// reorderings; for multi-term sums the difference is bounded by a
		// few ulps — the "14th digit" agreement the paper reports.
		return fwd.MustTile(k).MaxAbsDiff(rev.MustTile(k)) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMaxAbsDiffPanicsOnStructureMismatch(t *testing.T) {
	a := NewBlockTensor4()
	b := NewBlockTensor4()
	a.GetOrCreate(BlockKey{0, 0, 0, 0}, [4]int{1, 1, 1, 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.MaxAbsDiff(b)
}

func TestBlockKeyString(t *testing.T) {
	if got := (BlockKey{1, 2, 3, 4}).String(); got != "(1,2,3,4)" {
		t.Errorf("String = %q", got)
	}
	if fmt.Sprint(BlockKey{0, 0, 0, 0}) != "(0,0,0,0)" {
		t.Error("Stringer not used by fmt")
	}
}
