package tensor

import (
	"parsec/internal/team"

	"parsec/internal/tensor/pool"
)

const (
	// gemmParCutoff is the m*n*k product below which splitting a product
	// across workers costs more (packing duplication, wakeups) than it
	// saves; such products run serially on the caller.
	gemmParCutoff = 96 * 96 * 96
	// gemmParMinCols is the minimum C column span per part: narrower
	// windows re-pack A too often relative to the flops they cover.
	gemmParMinCols = 64
)

// GemmP is Gemm with intra-task parallelism: C = alpha*op(A)*op(B) +
// beta*C, with the C columns split across the team handle par. Each part
// runs the full blocked kernel over a disjoint column window, so every C
// element is accumulated by exactly one part in the same k order and the
// result is bitwise identical to serial Gemm for any part count. loc is
// the caller's scratch shard, used for the serial path (parts draw from
// the scratch handle their Span slot provides).
//
// par may be nil or team.Serial for a plain serial call; loc may be nil
// to draw from the shared pool.
func GemmP(par team.Parallelism, loc *pool.Local, transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	m, k := opDims(a, transA)
	kb, n := opDims(b, transB)
	if k != kb || c.Rows != m || c.Cols != n {
		panic("tensor: GemmP dimension mismatch")
	}
	if beta == 0 {
		for i := range c.Data {
			c.Data[i] = 0
		}
	} else if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	if m*n*k < gemmBlockCutoff {
		gemmDirect(transA, transB, alpha, a, b, c)
		return
	}
	parts := 1
	if par != nil && m*n*k >= gemmParCutoff {
		parts = min2(par.Workers(), n/gemmParMinCols)
	}
	if parts <= 1 {
		gemmBlockedCols(transA, transB, alpha, a, b, c, 0, n, loc)
		return
	}
	par.Span(parts, func(part int, scratch *pool.Local) {
		j0 := part * n / parts
		j1 := (part + 1) * n / parts
		gemmBlockedCols(transA, transB, alpha, a, b, c, j0, j1, scratch)
	})
}
