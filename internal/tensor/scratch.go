package tensor

import (
	"fmt"
	"sync"

	"parsec/internal/tensor/pool"
)

// Scratch tiles: pooled Tile4 allocation for task bodies whose buffers
// have a clear single-owner lifetime (the chain C buffer, the SORT
// permutation temporary, reduction inputs). The backing storage comes
// from the size-class pool and the Tile4 headers cycle through their own
// sync.Pool, so a steady-state Get/Put cycle performs no heap allocation.

var tile4HeaderPool = sync.Pool{New: func() any { return new(Tile4) }}

// GetTile4 returns a pooled tile with the given extents and unspecified
// contents, for destinations that are fully overwritten (Sort4 targets,
// GEMM packing). Use GetTile4Zeroed for accumulation buffers.
func GetTile4(d0, d1, d2, d3 int) *Tile4 {
	if d0 < 0 || d1 < 0 || d2 < 0 || d3 < 0 {
		panic(fmt.Sprintf("tensor: GetTile4(%d,%d,%d,%d)", d0, d1, d2, d3))
	}
	t := tile4HeaderPool.Get().(*Tile4)
	t.Dim = [4]int{d0, d1, d2, d3}
	t.Data = pool.Get(d0 * d1 * d2 * d3)
	return t
}

// GetTile4Zeroed returns a pooled, zeroed tile with the given extents.
func GetTile4Zeroed(d0, d1, d2, d3 int) *Tile4 {
	t := GetTile4(d0, d1, d2, d3)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// PutTile4 returns a tile obtained from GetTile4 to the pool. Tiles from
// NewTile4 are also accepted (their storage joins the pool if it fits a
// size class). The caller must not retain any reference to t or t.Data.
func PutTile4(t *Tile4) {
	if t == nil {
		return
	}
	pool.Put(t.Data)
	t.Data = nil
	t.Dim = [4]int{}
	tile4HeaderPool.Put(t)
}

// GetTile4In is GetTile4 drawing the backing storage from the given
// worker-local scratch shard; a nil shard falls back to the shared pool.
func GetTile4In(loc *pool.Local, d0, d1, d2, d3 int) *Tile4 {
	if d0 < 0 || d1 < 0 || d2 < 0 || d3 < 0 {
		panic(fmt.Sprintf("tensor: GetTile4In(%d,%d,%d,%d)", d0, d1, d2, d3))
	}
	t := tile4HeaderPool.Get().(*Tile4)
	t.Dim = [4]int{d0, d1, d2, d3}
	t.Data = loc.Get(d0 * d1 * d2 * d3)
	return t
}

// GetTile4ZeroedIn is GetTile4Zeroed drawing from the given worker-local
// scratch shard; a nil shard falls back to the shared pool.
func GetTile4ZeroedIn(loc *pool.Local, d0, d1, d2, d3 int) *Tile4 {
	t := GetTile4In(loc, d0, d1, d2, d3)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// PutTile4In returns a tile to the given worker-local scratch shard; a
// nil shard returns the storage to the shared pool.
func PutTile4In(loc *pool.Local, t *Tile4) {
	if t == nil {
		return
	}
	loc.Put(t.Data)
	t.Data = nil
	t.Dim = [4]int{}
	tile4HeaderPool.Put(t)
}
