package tensor

import "fmt"

// Tile4 is a dense 4-index tile stored in row-major (last index fastest)
// order, the unit of data the TCE-generated CCSD code moves through Global
// Arrays and feeds to GEMM and SORT_4.
type Tile4 struct {
	Dim  [4]int
	Data []float64
}

// NewTile4 returns a zeroed tile with the given extents.
func NewTile4(d0, d1, d2, d3 int) *Tile4 {
	if d0 < 0 || d1 < 0 || d2 < 0 || d3 < 0 {
		panic(fmt.Sprintf("tensor: NewTile4(%d,%d,%d,%d)", d0, d1, d2, d3))
	}
	return &Tile4{Dim: [4]int{d0, d1, d2, d3}, Data: make([]float64, d0*d1*d2*d3)}
}

// Len returns the number of elements.
func (t *Tile4) Len() int { return len(t.Data) }

// Bytes returns the storage size in bytes.
func (t *Tile4) Bytes() int64 { return int64(len(t.Data)) * 8 }

// Index returns the flat offset of element (i0,i1,i2,i3).
func (t *Tile4) Index(i0, i1, i2, i3 int) int {
	return ((i0*t.Dim[1]+i1)*t.Dim[2]+i2)*t.Dim[3] + i3
}

// At returns the element at (i0,i1,i2,i3).
func (t *Tile4) At(i0, i1, i2, i3 int) float64 { return t.Data[t.Index(i0, i1, i2, i3)] }

// Set assigns the element at (i0,i1,i2,i3).
func (t *Tile4) Set(i0, i1, i2, i3 int, v float64) { t.Data[t.Index(i0, i1, i2, i3)] = v }

// Clone returns a deep copy of the tile.
func (t *Tile4) Clone() *Tile4 {
	c := &Tile4{Dim: t.Dim, Data: make([]float64, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Zero sets all elements to zero.
func (t *Tile4) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// AsMatrix views the tile as a (Dim0*Dim1) x (Dim2*Dim3) matrix sharing
// the same backing storage; mutations are visible in both views.
func (t *Tile4) AsMatrix() *Matrix {
	return &Matrix{Rows: t.Dim[0] * t.Dim[1], Cols: t.Dim[2] * t.Dim[3], Data: t.Data}
}

// AddScaled accumulates s * src into t elementwise. Shapes must match.
func (t *Tile4) AddScaled(src *Tile4, s float64) {
	if t.Dim != src.Dim {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %v vs %v", t.Dim, src.Dim))
	}
	Axpy(t.Data, src.Data, s)
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two same-shaped tiles.
func (t *Tile4) MaxAbsDiff(o *Tile4) float64 {
	if t.Dim != o.Dim {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var d float64
	for i, v := range t.Data {
		diff := v - o.Data[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > d {
			d = diff
		}
	}
	return d
}

// SortedDims returns the extents of the destination tile of Sort4 with the
// given permutation: dim[k] of the output equals Dim[perm[k]] of the input.
func (t *Tile4) SortedDims(perm [4]int) [4]int {
	var d [4]int
	for k, p := range perm {
		d[k] = t.Dim[p]
	}
	return d
}

func checkPerm(perm [4]int) {
	var seen [4]bool
	for _, p := range perm {
		if p < 0 || p > 3 || seen[p] {
			panic(fmt.Sprintf("tensor: invalid permutation %v", perm))
		}
		seen[p] = true
	}
}

// Sort4 is the TCE tce_sort_4 kernel: it remaps src into dst so that
// dst[i[perm[0]], i[perm[1]], i[perm[2]], i[perm[3]]] = scale * src[i0,i1,i2,i3],
// overwriting dst. Despite the historical name it performs no sorting of
// values — only an index permutation with a scale factor (§IV-A).
func Sort4(dst, src *Tile4, perm [4]int, scale float64) {
	sort4Impl(dst, src, perm, scale, false)
}

// Sort4Add is Sort4 with accumulation: dst[...] += scale * src[...].
func Sort4Add(dst, src *Tile4, perm [4]int, scale float64) {
	sort4Impl(dst, src, perm, scale, true)
}

// sort4Strides returns the destination strides in source index order:
// moving src index k by one moves the destination offset by
// dstStride[position of k in perm].
func sort4Strides(dst *Tile4, perm [4]int) [4]int {
	var pos [4]int
	for k, p := range perm {
		pos[p] = k
	}
	dstStride := [4]int{
		dst.Dim[1] * dst.Dim[2] * dst.Dim[3],
		dst.Dim[2] * dst.Dim[3],
		dst.Dim[3],
		1,
	}
	var str [4]int
	for k := 0; k < 4; k++ {
		str[k] = dstStride[pos[k]]
	}
	return str
}

func sort4Impl(dst, src *Tile4, perm [4]int, scale float64, add bool) {
	checkPerm(perm)
	want := src.SortedDims(perm)
	if dst.Dim != want {
		panic(fmt.Sprintf("tensor: Sort4 dst dims %v, want %v for perm %v of %v",
			dst.Dim, want, perm, src.Dim))
	}
	// Blocked paths (sort4_blocked.go) keep either reads or writes
	// contiguous on cache-sized sub-tiles; tiny tiles (the water system)
	// take the direct strided scatter below.
	if len(src.Data) >= sort4BlockCutoff {
		if perm[3] == 3 {
			sort4Contig(dst, src, perm, scale, add)
		} else {
			sort4Blocked(dst, src, perm, scale, add)
		}
		return
	}
	sort4Scatter(dst, src, perm, scale, add)
}

// sort4Scatter is the direct loop nest: sequential reads, strided
// writes. It is the small-tile path and the reference the blocked
// kernels are property-tested against.
func sort4Scatter(dst, src *Tile4, perm [4]int, scale float64, add bool) {
	str := sort4Strides(dst, perm)
	d0, d1, d2, d3 := src.Dim[0], src.Dim[1], src.Dim[2], src.Dim[3]
	s := src.Data
	idx := 0
	for i0 := 0; i0 < d0; i0++ {
		o0 := i0 * str[0]
		for i1 := 0; i1 < d1; i1++ {
			o1 := o0 + i1*str[1]
			for i2 := 0; i2 < d2; i2++ {
				o2 := o1 + i2*str[2]
				if add {
					for i3 := 0; i3 < d3; i3++ {
						dst.Data[o2+i3*str[3]] += scale * s[idx]
						idx++
					}
				} else {
					for i3 := 0; i3 < d3; i3++ {
						dst.Data[o2+i3*str[3]] = scale * s[idx]
						idx++
					}
				}
			}
		}
	}
}

// Sort4Flops returns the modeled arithmetic of a SORT_4 on a tile of n
// elements. The kernel is pure memory movement, so this is always zero;
// cost models account for it through Sort4Bytes instead.
func Sort4Flops(n int) int64 { return 0 }

// Sort4Bytes returns the memory traffic of one SORT_4 over a tile of n
// elements: n float64 reads plus n float64 writes.
func Sort4Bytes(n int) int64 { return 16 * int64(n) }

// FillRandom fills the tile with deterministic pseudo-random values in
// [-scale, scale) derived from the seed, for building reproducible
// synthetic amplitudes and integrals.
func (t *Tile4) FillRandom(seed uint64, scale float64) {
	state := seed
	for i := range t.Data {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		t.Data[i] = scale * (2*float64(z>>11)/(1<<53) - 1)
	}
}
