package tensor

import "os"

// KernelTier identifies one rung of the micro-kernel dispatch ladder
// (DESIGN.md §13). Every tier computes identical results on the shared
// packed-panel format; higher tiers only widen the register block. The
// two assembly tiers are bitwise identical to each other (same fused
// multiply-add sequence per C element); the portable tier differs in
// the last ulp because Go emits separate multiply and add.
type KernelTier int32

const (
	// TierPortable is the pure-Go fallback: the 4x4 scalar GEMM
	// micro-kernel and scalar accumulate loops. Always available; the
	// reference the assembly tiers are property-tested against.
	TierPortable KernelTier = iota
	// TierAVX2 is the 4x8 AVX2+FMA GEMM micro-kernel plus the vector
	// axpy/scale kernels, entered when CPUID reports FMA+AVX2 with
	// OS-enabled YMM state.
	TierAVX2
	// TierAVX512 is the 8x16 zmm FMA GEMM micro-kernel above the AVX2
	// path, entered when CPUID reports AVX-512F with OS-enabled ZMM
	// state. The axpy/scale kernels stay on the 256-bit path (they are
	// memory-bound; wider vectors buy nothing).
	TierAVX512
)

// String names the tier the way the PARSEC_KERNEL_TIER variable spells
// it.
func (t KernelTier) String() string {
	switch t {
	case TierAVX2:
		return "avx2"
	case TierAVX512:
		return "avx512"
	default:
		return "portable"
	}
}

// activeTier is the dispatch decision every kernel call reads: the
// hardware's best tier, clamped by the PARSEC_KERNEL_TIER environment
// variable ("portable", "avx2", "avx512", or "auto"/""). Fixed at init;
// tests force it through setKernelTier.
var activeTier = detectTier()

func detectTier() KernelTier {
	t := hwKernelTier()
	switch os.Getenv("PARSEC_KERNEL_TIER") {
	case "portable":
		t = TierPortable
	case "avx2":
		if t > TierAVX2 {
			t = TierAVX2
		}
	}
	// "avx512", "auto", "", and unknown values keep the detected tier: the
	// variable can only forbid capabilities, never invent them.
	return t
}

// ActiveKernelTier reports the micro-kernel tier the dense kernels are
// dispatching to, for benchmark labels and environment reports.
func ActiveKernelTier() KernelTier { return activeTier }

// setKernelTier forces a dispatch tier and returns a restore function,
// for tests and benchmarks that pin a specific path. Forcing a tier the
// hardware cannot run panics (the caller should have skipped). Not safe
// to call concurrently with running kernels.
func setKernelTier(t KernelTier) func() {
	if t > hwKernelTier() {
		panic("tensor: setKernelTier beyond hardware support")
	}
	prev := activeTier
	activeTier = t
	return func() { activeTier = prev }
}
