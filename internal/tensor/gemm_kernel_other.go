//go:build !amd64 || purego

package tensor

// Non-amd64 (or purego) builds run the portable tier only.
func hwKernelTier() KernelTier { return TierPortable }

// gemmAsm4x8 is never called when the active tier is TierPortable.
func gemmAsm4x8(kc int64, a, b, acc *float64) {
	panic("tensor: gemmAsm4x8 without asm support")
}

// gemmAsm8x16 is never called when the active tier is TierPortable.
func gemmAsm8x16(kc int64, a, b, acc *float64) {
	panic("tensor: gemmAsm8x16 without asm support")
}

// axpyAsm is never called when the active tier is TierPortable.
func axpyAsm(n int64, dst, src *float64, scale float64) {
	panic("tensor: axpyAsm without asm support")
}

// scaleAsm is never called when the active tier is TierPortable.
func scaleAsm(n int64, dst, src *float64, scale float64) {
	panic("tensor: scaleAsm without asm support")
}
