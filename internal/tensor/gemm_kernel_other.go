//go:build !amd64 || purego

package tensor

// Non-amd64 (or purego) builds run the portable 4x4 micro-kernel.
const haveGemmAsm = false

// gemmAsm4x8 is never called when haveGemmAsm is false.
func gemmAsm4x8(kc int64, a, b, acc *float64) {
	panic("tensor: gemmAsm4x8 without asm support")
}
