// Assembly micro-kernels for the cache-blocked packed GEMM
// (gemm_blocked.go) and the accumulate kernels (axpy.go): the AVX2+FMA
// 4x8 GEMM block, the AVX-512F 8x16 GEMM block, and the 256-bit
// unfused axpy/scale loops. Entry is gated by probeHWTier (CPUID +
// XCR0); every unsupported configuration runs the pure-Go paths.

//go:build amd64 && !purego

#include "textflag.h"

// func gemmAsm4x8(kc int64, a, b, acc *float64)
//
// Computes a full 4x8 block acc[r*8+j] = sum_p a[p*4+r] * b[p*8+j] over
// the packed panels a (kc x 4, row-minor) and b (kc x 8). The caller
// accumulates acc into C, handling edge tiles.
//
// Register plan: Y0..Y7 hold the 4x8 accumulator block (two YMM per
// row), Y12/Y13 the current eight b values, Y14 the broadcast a value.
TEXT ·gemmAsm4x8(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ acc+24(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JZ    done

loop:
	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13

	VBROADCASTSD (SI), Y14
	VFMADD231PD Y12, Y14, Y0
	VFMADD231PD Y13, Y14, Y1

	VBROADCASTSD 8(SI), Y14
	VFMADD231PD Y12, Y14, Y2
	VFMADD231PD Y13, Y14, Y3

	VBROADCASTSD 16(SI), Y14
	VFMADD231PD Y12, Y14, Y4
	VFMADD231PD Y13, Y14, Y5

	VBROADCASTSD 24(SI), Y14
	VFMADD231PD Y12, Y14, Y6
	VFMADD231PD Y13, Y14, Y7

	ADDQ $32, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func gemmAsm8x16(kc int64, a, b, acc *float64)
//
// Computes a full 8x16 block acc[r*16+j] = sum_p a[p*8+r] * b[p*16+j]
// over the packed panels a (kc x 8, row-minor) and b (kc x 16), the
// AVX-512 tier above the 4x8 AVX2 kernel. Per C element the FMA
// sequence is identical to gemmAsm4x8's (ascending p, one fused
// multiply-add each), so the two tiers produce bitwise-equal results.
//
// Register plan: Z0..Z15 hold the 8x16 accumulator block (two ZMM per
// row), Z16/Z17 the current sixteen b values, Z18 the broadcast a
// value. Requires only AVX-512F.
TEXT ·gemmAsm8x16(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ acc+24(FP), DX

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	VPXORQ Z8, Z8, Z8
	VPXORQ Z9, Z9, Z9
	VPXORQ Z10, Z10, Z10
	VPXORQ Z11, Z11, Z11
	VPXORQ Z12, Z12, Z12
	VPXORQ Z13, Z13, Z13
	VPXORQ Z14, Z14, Z14
	VPXORQ Z15, Z15, Z15

	TESTQ CX, CX
	JZ    done512

loop512:
	VMOVUPD (DI), Z16
	VMOVUPD 64(DI), Z17

	VBROADCASTSD (SI), Z18
	VFMADD231PD Z16, Z18, Z0
	VFMADD231PD Z17, Z18, Z1

	VBROADCASTSD 8(SI), Z18
	VFMADD231PD Z16, Z18, Z2
	VFMADD231PD Z17, Z18, Z3

	VBROADCASTSD 16(SI), Z18
	VFMADD231PD Z16, Z18, Z4
	VFMADD231PD Z17, Z18, Z5

	VBROADCASTSD 24(SI), Z18
	VFMADD231PD Z16, Z18, Z6
	VFMADD231PD Z17, Z18, Z7

	VBROADCASTSD 32(SI), Z18
	VFMADD231PD Z16, Z18, Z8
	VFMADD231PD Z17, Z18, Z9

	VBROADCASTSD 40(SI), Z18
	VFMADD231PD Z16, Z18, Z10
	VFMADD231PD Z17, Z18, Z11

	VBROADCASTSD 48(SI), Z18
	VFMADD231PD Z16, Z18, Z12
	VFMADD231PD Z17, Z18, Z13

	VBROADCASTSD 56(SI), Z18
	VFMADD231PD Z16, Z18, Z14
	VFMADD231PD Z17, Z18, Z15

	ADDQ $64, SI
	ADDQ $128, DI
	DECQ CX
	JNZ  loop512

done512:
	VMOVUPD Z0, (DX)
	VMOVUPD Z1, 64(DX)
	VMOVUPD Z2, 128(DX)
	VMOVUPD Z3, 192(DX)
	VMOVUPD Z4, 256(DX)
	VMOVUPD Z5, 320(DX)
	VMOVUPD Z6, 384(DX)
	VMOVUPD Z7, 448(DX)
	VMOVUPD Z8, 512(DX)
	VMOVUPD Z9, 576(DX)
	VMOVUPD Z10, 640(DX)
	VMOVUPD Z11, 704(DX)
	VMOVUPD Z12, 768(DX)
	VMOVUPD Z13, 832(DX)
	VMOVUPD Z14, 896(DX)
	VMOVUPD Z15, 960(DX)
	VZEROUPPER
	RET

// func axpyAsm(n int64, dst, src *float64, scale float64)
//
// dst[i] += scale*src[i], eight elements per iteration. Multiply and
// add are deliberately separate (VMULPD + VADDPD, not FMA): each
// element rounds exactly like the scalar Go loop, keeping the SIMD
// accumulate path bit-identical to the portable one. n must be a
// positive multiple of 8.
TEXT ·axpyAsm(SB), NOSPLIT, $0-32
	MOVQ n+0(FP), CX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	VBROADCASTSD scale+24(FP), Y3

axpyloop:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VMULPD  Y3, Y0, Y0
	VMULPD  Y3, Y1, Y1
	VADDPD  (DI), Y0, Y0
	VADDPD  32(DI), Y1, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $8, CX
	JNZ     axpyloop
	VZEROUPPER
	RET

// func scaleAsm(n int64, dst, src *float64, scale float64)
//
// dst[i] = scale*src[i], eight elements per iteration. n must be a
// positive multiple of 8.
TEXT ·scaleAsm(SB), NOSPLIT, $0-32
	MOVQ n+0(FP), CX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	VBROADCASTSD scale+24(FP), Y3

scaleloop:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VMULPD  Y3, Y0, Y0
	VMULPD  Y3, Y1, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $8, CX
	JNZ     scaleloop
	VZEROUPPER
	RET

// func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint64
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL  CX, CX
	XGETBV
	SHLQ  $32, DX
	ORQ   DX, AX
	MOVQ  AX, ret+0(FP)
	RET
