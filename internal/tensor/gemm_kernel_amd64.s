// AVX2+FMA micro-kernel for the cache-blocked packed GEMM
// (gemm_blocked.go). Only entered when detectGemmAsm reports FMA, AVX2,
// and OS YMM state support; every other configuration runs the pure-Go
// 4x4 micro-kernel.

//go:build amd64 && !purego

#include "textflag.h"

// func gemmAsm4x8(kc int64, a, b, acc *float64)
//
// Computes a full 4x8 block acc[r*8+j] = sum_p a[p*4+r] * b[p*8+j] over
// the packed panels a (kc x 4, row-minor) and b (kc x 8). The caller
// accumulates acc into C, handling edge tiles.
//
// Register plan: Y0..Y7 hold the 4x8 accumulator block (two YMM per
// row), Y12/Y13 the current eight b values, Y14 the broadcast a value.
TEXT ·gemmAsm4x8(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ acc+24(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JZ    done

loop:
	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13

	VBROADCASTSD (SI), Y14
	VFMADD231PD Y12, Y14, Y0
	VFMADD231PD Y13, Y14, Y1

	VBROADCASTSD 8(SI), Y14
	VFMADD231PD Y12, Y14, Y2
	VFMADD231PD Y13, Y14, Y3

	VBROADCASTSD 16(SI), Y14
	VFMADD231PD Y12, Y14, Y4
	VFMADD231PD Y13, Y14, Y5

	VBROADCASTSD 24(SI), Y14
	VFMADD231PD Y12, Y14, Y6
	VFMADD231PD Y13, Y14, Y7

	ADDQ $32, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint64
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL  CX, CX
	XGETBV
	SHLQ  $32, DX
	ORQ   DX, AX
	MOVQ  AX, ret+0(FP)
	RET
