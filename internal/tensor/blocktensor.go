package tensor

import (
	"fmt"
	"sort"
	"sync"
)

// BlockKey identifies one tile of a block-sparse 4-index tensor by its
// four block (tile) indices.
type BlockKey [4]int

// String renders the key as "(i,j,k,l)".
func (k BlockKey) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", k[0], k[1], k[2], k[3])
}

// Less orders keys lexicographically; used for deterministic iteration.
func (k BlockKey) Less(o BlockKey) bool {
	for i := 0; i < 4; i++ {
		if k[i] != o[i] {
			return k[i] < o[i]
		}
	}
	return false
}

// BlockTensor4 is a block-sparse 4-index tensor: a concurrent map from
// block keys to dense tiles. Only stored (symmetry-unique, nonzero)
// blocks occupy memory, mirroring the hash-block storage the TCE code
// keeps inside Global Arrays.
type BlockTensor4 struct {
	mu    sync.RWMutex
	tiles map[BlockKey]*Tile4
}

// NewBlockTensor4 returns an empty block tensor.
func NewBlockTensor4() *BlockTensor4 {
	return &BlockTensor4{tiles: make(map[BlockKey]*Tile4)}
}

// Tile returns the tile for key, or (nil, false) if absent.
func (bt *BlockTensor4) Tile(key BlockKey) (*Tile4, bool) {
	bt.mu.RLock()
	t, ok := bt.tiles[key]
	bt.mu.RUnlock()
	return t, ok
}

// MustTile returns the tile for key, panicking if absent.
func (bt *BlockTensor4) MustTile(key BlockKey) *Tile4 {
	t, ok := bt.Tile(key)
	if !ok {
		panic(fmt.Sprintf("tensor: missing block %v", key))
	}
	return t
}

// GetOrCreate returns the tile for key, allocating a zeroed tile with the
// given extents if absent. It panics if an existing tile has different
// extents.
func (bt *BlockTensor4) GetOrCreate(key BlockKey, dims [4]int) *Tile4 {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	if t, ok := bt.tiles[key]; ok {
		if t.Dim != dims {
			panic(fmt.Sprintf("tensor: block %v exists with dims %v, requested %v", key, t.Dim, dims))
		}
		return t
	}
	t := NewTile4(dims[0], dims[1], dims[2], dims[3])
	bt.tiles[key] = t
	return t
}

// Put stores a tile under key, replacing any existing tile.
func (bt *BlockTensor4) Put(key BlockKey, t *Tile4) {
	bt.mu.Lock()
	bt.tiles[key] = t
	bt.mu.Unlock()
}

// Acc accumulates scale*src into the tile at key under the tensor's lock,
// creating the tile if absent. This is the shared-memory analogue of
// ADD_HASH_BLOCK.
func (bt *BlockTensor4) Acc(key BlockKey, src *Tile4, scale float64) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	t, ok := bt.tiles[key]
	if !ok {
		t = NewTile4(src.Dim[0], src.Dim[1], src.Dim[2], src.Dim[3])
		bt.tiles[key] = t
	}
	t.AddScaled(src, scale)
}

// AccChecked is Acc with dimension validation: it reports an error
// instead of panicking when an existing tile's extents differ from
// src's, so task-facing accumulate paths can fail one task instead of
// tearing down the process.
func (bt *BlockTensor4) AccChecked(key BlockKey, src *Tile4, scale float64) error {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	t, ok := bt.tiles[key]
	if !ok {
		t = NewTile4(src.Dim[0], src.Dim[1], src.Dim[2], src.Dim[3])
		bt.tiles[key] = t
	} else if t.Dim != src.Dim {
		return fmt.Errorf("tensor: block %v has dims %v, accumulate of %v", key, t.Dim, src.Dim)
	}
	t.AddScaled(src, scale)
	return nil
}

// NumBlocks returns the number of stored tiles.
func (bt *BlockTensor4) NumBlocks() int {
	bt.mu.RLock()
	defer bt.mu.RUnlock()
	return len(bt.tiles)
}

// Keys returns all stored block keys in lexicographic order.
func (bt *BlockTensor4) Keys() []BlockKey {
	bt.mu.RLock()
	keys := make([]BlockKey, 0, len(bt.tiles))
	for k := range bt.tiles {
		keys = append(keys, k)
	}
	bt.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// TotalBytes returns the summed storage of all tiles.
func (bt *BlockTensor4) TotalBytes() int64 {
	bt.mu.RLock()
	defer bt.mu.RUnlock()
	var n int64
	for _, t := range bt.tiles {
		n += t.Bytes()
	}
	return n
}

// Dot returns the inner product with another block tensor over their
// common blocks, accumulated in deterministic key order. The CCSD driver
// uses this as the correlation-energy functional (DESIGN.md §2).
func (bt *BlockTensor4) Dot(o *BlockTensor4) float64 {
	var sum float64
	for _, k := range bt.Keys() {
		ot, ok := o.Tile(k)
		if !ok {
			continue
		}
		t := bt.MustTile(k)
		if t.Dim != ot.Dim {
			panic(fmt.Sprintf("tensor: Dot dims mismatch at %v: %v vs %v", k, t.Dim, ot.Dim))
		}
		for i, v := range t.Data {
			sum += v * ot.Data[i]
		}
	}
	return sum
}

// MaxAbsDiff returns the largest elementwise difference across all blocks
// of two block tensors with identical block structure; it panics if block
// sets differ.
func (bt *BlockTensor4) MaxAbsDiff(o *BlockTensor4) float64 {
	ka, kb := bt.Keys(), o.Keys()
	if len(ka) != len(kb) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff block count %d vs %d", len(ka), len(kb)))
	}
	var d float64
	for i, k := range ka {
		if k != kb[i] {
			panic(fmt.Sprintf("tensor: MaxAbsDiff block sets differ at %v vs %v", k, kb[i]))
		}
		if diff := bt.MustTile(k).MaxAbsDiff(o.MustTile(k)); diff > d {
			d = diff
		}
	}
	return d
}
