package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// gemmRef is a naive triple-loop reference for all transpose combinations.
func gemmRef(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) *Matrix {
	m, k := opDims(a, transA)
	_, n := opDims(b, transB)
	out := NewMatrix(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			out.Set(i, j, beta*c.At(i, j))
		}
	}
	av := func(i, l int) float64 {
		if transA {
			return a.At(l, i)
		}
		return a.At(i, l)
	}
	bv := func(l, j int) float64 {
		if transB {
			return b.At(j, l)
		}
		return b.At(l, j)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				s += av(i, l) * bv(l, j)
			}
			out.Data[i*out.Cols+j] += alpha * s
		}
	}
	return out
}

func randMatrix(rows, cols int, seed uint64) *Matrix {
	m := NewMatrix(rows, cols)
	t := NewTile4(rows, cols, 1, 1)
	t.FillRandom(seed, 1)
	copy(m.Data, t.Data)
	return m
}

func TestGemmAllTransposeForms(t *testing.T) {
	const m, n, k = 5, 7, 4
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			var a, b *Matrix
			if ta {
				a = randMatrix(k, m, 1)
			} else {
				a = randMatrix(m, k, 1)
			}
			if tb {
				b = randMatrix(n, k, 2)
			} else {
				b = randMatrix(k, n, 2)
			}
			c := randMatrix(m, n, 3)
			want := gemmRef(ta, tb, 1.5, a, b, 0.5, c)
			got := c.Clone()
			Gemm(ta, tb, 1.5, a, b, 0.5, got)
			if d := got.MaxAbsDiff(want); d > 1e-13 {
				t.Errorf("transA=%v transB=%v: max diff %g", ta, tb, d)
			}
		}
	}
}

func TestGemmBetaZeroOverwritesNaN(t *testing.T) {
	a := randMatrix(3, 3, 4)
	b := randMatrix(3, 3, 5)
	c := NewMatrix(3, 3)
	for i := range c.Data {
		c.Data[i] = math.NaN()
	}
	Gemm(false, false, 1, a, b, 0, c)
	for i, v := range c.Data {
		if math.IsNaN(v) {
			t.Fatalf("beta=0 left NaN at %d", i)
		}
	}
}

func TestGemmAlphaZeroScalesOnly(t *testing.T) {
	a := randMatrix(2, 2, 6)
	b := randMatrix(2, 2, 7)
	c := randMatrix(2, 2, 8)
	want := c.Clone()
	for i := range want.Data {
		want.Data[i] *= 2
	}
	Gemm(false, false, 0, a, b, 2, c)
	if d := c.MaxAbsDiff(want); d != 0 {
		t.Errorf("alpha=0 changed C beyond beta scaling: %g", d)
	}
}

func TestGemmShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Gemm(false, false, 1, NewMatrix(2, 3), NewMatrix(4, 2), 1, NewMatrix(2, 2))
}

func TestGemmEmptyDims(t *testing.T) {
	c := NewMatrix(0, 5)
	Gemm(false, false, 1, NewMatrix(0, 3), NewMatrix(3, 5), 1, c) // no panic
	c2 := NewMatrix(2, 2)
	Gemm(false, false, 1, NewMatrix(2, 0), NewMatrix(0, 2), 0, c2)
	for _, v := range c2.Data {
		if v != 0 {
			t.Error("k=0 GEMM should zero C with beta=0")
		}
	}
}

func TestGemmFlops(t *testing.T) {
	if got := GemmFlops(10, 20, 30); got != 12000 {
		t.Errorf("GemmFlops = %d, want 12000", got)
	}
}

// Property: Gemm agrees with the naive reference on random shapes and
// transpose flags.
func TestPropertyGemmMatchesReference(t *testing.T) {
	f := func(mm, nn, kk uint8, ta, tb bool, seed uint64) bool {
		m, n, k := int(mm%8)+1, int(nn%8)+1, int(kk%8)+1
		var a, b *Matrix
		if ta {
			a = randMatrix(k, m, seed)
		} else {
			a = randMatrix(m, k, seed)
		}
		if tb {
			b = randMatrix(n, k, seed+1)
		} else {
			b = randMatrix(k, n, seed+2)
		}
		c := randMatrix(m, n, seed+3)
		want := gemmRef(ta, tb, 0.7, a, b, 1, c)
		got := c.Clone()
		Gemm(ta, tb, 0.7, a, b, 1, got)
		return got.MaxAbsDiff(want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: Gemm is linear in alpha: Gemm(2a) == 2*Gemm(a) contribution.
func TestPropertyGemmLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		a := randMatrix(4, 3, seed)
		b := randMatrix(3, 5, seed+1)
		c1 := NewMatrix(4, 5)
		c2 := NewMatrix(4, 5)
		Gemm(false, false, 2, a, b, 0, c1)
		Gemm(false, false, 1, a, b, 0, c2)
		for i := range c2.Data {
			c2.Data[i] *= 2
		}
		return c1.MaxAbsDiff(c2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
