package tensor

import (
	"testing"
	"testing/quick"
)

func seqTile(d0, d1, d2, d3 int) *Tile4 {
	t := NewTile4(d0, d1, d2, d3)
	for i := range t.Data {
		t.Data[i] = float64(i + 1)
	}
	return t
}

func TestTile4Indexing(t *testing.T) {
	tl := NewTile4(2, 3, 4, 5)
	if tl.Len() != 120 {
		t.Fatalf("Len = %d", tl.Len())
	}
	tl.Set(1, 2, 3, 4, 42)
	if tl.At(1, 2, 3, 4) != 42 {
		t.Error("At/Set roundtrip failed")
	}
	if tl.Index(1, 2, 3, 4) != 119 {
		t.Errorf("Index = %d, want 119 (last element)", tl.Index(1, 2, 3, 4))
	}
	if tl.Bytes() != 960 {
		t.Errorf("Bytes = %d", tl.Bytes())
	}
}

func TestAsMatrixSharesStorage(t *testing.T) {
	tl := seqTile(2, 3, 4, 5)
	m := tl.AsMatrix()
	if m.Rows != 6 || m.Cols != 20 {
		t.Fatalf("AsMatrix dims %dx%d", m.Rows, m.Cols)
	}
	m.Set(0, 0, -7)
	if tl.At(0, 0, 0, 0) != -7 {
		t.Error("matrix view does not share storage")
	}
	// Element (i0,i1,i2,i3) should appear at row i0*d1+i1, col i2*d3+i3.
	if m.At(1*3+2, 3*5+4) != tl.At(1, 2, 3, 4) {
		t.Error("matrix view layout mismatch")
	}
}

func TestSort4Identity(t *testing.T) {
	src := seqTile(2, 3, 2, 3)
	dst := NewTile4(2, 3, 2, 3)
	Sort4(dst, src, [4]int{0, 1, 2, 3}, 1)
	if dst.MaxAbsDiff(src) != 0 {
		t.Error("identity permutation changed data")
	}
	Sort4(dst, src, [4]int{0, 1, 2, 3}, -2)
	for i := range src.Data {
		if dst.Data[i] != -2*src.Data[i] {
			t.Fatal("scale not applied")
		}
	}
}

func TestSort4KnownPermutation(t *testing.T) {
	src := seqTile(2, 3, 4, 5)
	perm := [4]int{2, 0, 3, 1} // dst[i2,i0,i3,i1] = src[i0,i1,i2,i3]
	dims := src.SortedDims(perm)
	if dims != [4]int{4, 2, 5, 3} {
		t.Fatalf("SortedDims = %v", dims)
	}
	dst := NewTile4(dims[0], dims[1], dims[2], dims[3])
	Sort4(dst, src, perm, 1)
	for i0 := 0; i0 < 2; i0++ {
		for i1 := 0; i1 < 3; i1++ {
			for i2 := 0; i2 < 4; i2++ {
				for i3 := 0; i3 < 5; i3++ {
					if dst.At(i2, i0, i3, i1) != src.At(i0, i1, i2, i3) {
						t.Fatalf("mismatch at (%d,%d,%d,%d)", i0, i1, i2, i3)
					}
				}
			}
		}
	}
}

func TestSort4AddAccumulates(t *testing.T) {
	src := seqTile(2, 2, 2, 2)
	dst := seqTile(2, 2, 2, 2)
	Sort4Add(dst, src, [4]int{0, 1, 2, 3}, 3)
	for i := range src.Data {
		if dst.Data[i] != 4*src.Data[i] {
			t.Fatal("Sort4Add did not accumulate")
		}
	}
}

func TestSort4InvalidPermPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	src := seqTile(2, 2, 2, 2)
	Sort4(NewTile4(2, 2, 2, 2), src, [4]int{0, 0, 2, 3}, 1)
}

func TestSort4WrongDstDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	src := seqTile(2, 3, 4, 5)
	Sort4(NewTile4(2, 3, 4, 5), src, [4]int{1, 0, 2, 3}, 1)
}

// Property: Sort4 is a bijection — applying the permutation and then its
// inverse returns the original tile, and multisets of values match.
func TestPropertySort4Bijective(t *testing.T) {
	perms := [][4]int{
		{0, 1, 2, 3}, {1, 0, 2, 3}, {0, 1, 3, 2}, {1, 0, 3, 2},
		{2, 3, 0, 1}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2},
	}
	f := func(a, b, c, d uint8, pi uint8, seed uint64) bool {
		dims := [4]int{int(a%3) + 1, int(b%3) + 1, int(c%3) + 1, int(d%3) + 1}
		perm := perms[int(pi)%len(perms)]
		src := NewTile4(dims[0], dims[1], dims[2], dims[3])
		src.FillRandom(seed, 1)
		sd := src.SortedDims(perm)
		fwd := NewTile4(sd[0], sd[1], sd[2], sd[3])
		Sort4(fwd, src, perm, 1)
		// Inverse permutation: inv[perm[k]] = k.
		var inv [4]int
		for k, p := range perm {
			inv[p] = k
		}
		back := NewTile4(dims[0], dims[1], dims[2], dims[3])
		Sort4(back, fwd, inv, 1)
		return back.MaxAbsDiff(src) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Sort4 with scale s then accumulate equals AddScaled of the
// permuted tile — i.e. scaling commutes with permutation.
func TestPropertySort4ScaleCommutes(t *testing.T) {
	f := func(seed uint64) bool {
		src := NewTile4(3, 2, 3, 2)
		src.FillRandom(seed, 1)
		perm := [4]int{1, 0, 3, 2}
		sd := src.SortedDims(perm)
		a := NewTile4(sd[0], sd[1], sd[2], sd[3])
		Sort4(a, src, perm, 2.5)
		b := NewTile4(sd[0], sd[1], sd[2], sd[3])
		Sort4(b, src, perm, 1)
		c := NewTile4(sd[0], sd[1], sd[2], sd[3])
		c.AddScaled(b, 2.5)
		return a.MaxAbsDiff(c) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := NewTile4(3, 3, 3, 3)
	b := NewTile4(3, 3, 3, 3)
	a.FillRandom(99, 2)
	b.FillRandom(99, 2)
	if a.MaxAbsDiff(b) != 0 {
		t.Error("FillRandom not deterministic")
	}
	c := NewTile4(3, 3, 3, 3)
	c.FillRandom(100, 2)
	if a.MaxAbsDiff(c) == 0 {
		t.Error("different seeds produced identical tiles")
	}
	for _, v := range a.Data {
		if v < -2 || v >= 2 {
			t.Fatalf("value %v out of [-2,2)", v)
		}
	}
}

func TestAddScaledAndClone(t *testing.T) {
	a := seqTile(2, 2, 2, 2)
	b := a.Clone()
	b.AddScaled(a, -1)
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("x - x != 0")
		}
	}
	if a.Data[0] != 1 {
		t.Error("Clone aliases source")
	}
}
