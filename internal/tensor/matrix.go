// Package tensor provides the dense kernels the CCSD port computes with:
// row-major matrices with a blocked DGEMM, 4-index tiles with the TCE-style
// SORT_4 permutation kernel, and block-sparse 4-index tensors. These are
// the numerical workhorses behind the GEMM / SORT / WRITE tasks of the
// paper's icsd_t2_7 subroutine.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix(%d, %d)", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Bytes returns the storage size of the matrix in bytes.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 8 }

// MaxAbsDiff returns the largest absolute elementwise difference between
// two same-shaped matrices.
func (m *Matrix) MaxAbsDiff(o *Matrix) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var d float64
	for i, v := range m.Data {
		if abs := math.Abs(v - o.Data[i]); abs > d {
			d = abs
		}
	}
	return d
}

// GemmFlops returns the floating-point operation count of one
// m x n x k GEMM (multiply-adds counted as two ops).
func GemmFlops(m, n, k int) int64 { return 2 * int64(m) * int64(n) * int64(k) }

// opDims returns the effective (rows, cols) of op(M).
func opDims(m *Matrix, trans bool) (int, int) {
	if trans {
		return m.Cols, m.Rows
	}
	return m.Rows, m.Cols
}

// Gemm computes C = alpha*op(A)*op(B) + beta*C where op is identity or
// transpose per the flags, matching the semantics of BLAS DGEMM as called
// by the TCE-generated code. It panics on shape mismatch.
func Gemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	am, ak := opDims(a, transA)
	bk, bn := opDims(b, transB)
	if ak != bk || am != c.Rows || bn != c.Cols {
		panic(fmt.Sprintf("tensor: Gemm shape mismatch op(A)=%dx%d op(B)=%dx%d C=%dx%d",
			am, ak, bk, bn, c.Rows, c.Cols))
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			for i := range c.Data {
				c.Data[i] *= beta
			}
		}
	}
	if alpha == 0 || am == 0 || bn == 0 || ak == 0 {
		return
	}
	// Large products go through the cache-blocked packed kernel
	// (gemm_blocked.go); tiny tiles keep the direct loops below, whose
	// setup cost is near zero.
	if int64(am)*int64(bn)*int64(ak) >= gemmBlockCutoff {
		gemmBlocked(transA, transB, alpha, a, b, c)
		return
	}
	gemmDirect(transA, transB, alpha, a, b, c)
}

// gemmDirect dispatches to the unpacked loops: the fallback for tiles
// below the blocking cutoff and the baseline the kernel benchmarks
// measure the packed path against.
func gemmDirect(transA, transB bool, alpha float64, a, b, c *Matrix) {
	switch {
	case !transA && !transB:
		gemmNN(alpha, a, b, c)
	case transA && !transB:
		gemmTN(alpha, a, b, c)
	case !transA && transB:
		gemmNT(alpha, a, b, c)
	default:
		gemmTT(alpha, a, b, c)
	}
}

// gemmNN uses an ikj loop order so the inner loop streams rows of B and C.
func gemmNN(alpha float64, a, b, c *Matrix) {
	n, k := c.Cols, a.Cols
	for i := 0; i < c.Rows; i++ {
		crow := c.Data[i*n : (i+1)*n]
		arow := a.Data[i*k : (i+1)*k]
		for l := 0; l < k; l++ {
			av := alpha * arow[l]
			if av == 0 {
				continue
			}
			brow := b.Data[l*n : (l+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmTN computes C += alpha * A^T * B where A is k x m row-major. This
// is the hot kernel of the reproduction — the TCE calls dgemm('T','N')
// for every block contraction (Fig 1) — so it is register-blocked: four
// C rows accumulate simultaneously while each B row streams through once,
// quartering the memory traffic of the naive loop.
func gemmTN(alpha float64, a, b, c *Matrix) {
	n, k := c.Cols, a.Rows
	m := a.Cols
	i := 0
	for ; i+4 <= m; i += 4 {
		c0 := c.Data[(i+0)*n : (i+1)*n]
		c1 := c.Data[(i+1)*n : (i+2)*n]
		c2 := c.Data[(i+2)*n : (i+3)*n]
		c3 := c.Data[(i+3)*n : (i+4)*n]
		for l := 0; l < k; l++ {
			arow := a.Data[l*m : (l+1)*m]
			av0 := alpha * arow[i+0]
			av1 := alpha * arow[i+1]
			av2 := alpha * arow[i+2]
			av3 := alpha * arow[i+3]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			brow := b.Data[l*n : (l+1)*n]
			for j, bv := range brow {
				c0[j] += av0 * bv
				c1[j] += av1 * bv
				c2[j] += av2 * bv
				c3[j] += av3 * bv
			}
		}
	}
	// Remainder rows.
	for ; i < m; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for l := 0; l < k; l++ {
			av := alpha * a.Data[l*m+i]
			if av == 0 {
				continue
			}
			brow := b.Data[l*n : (l+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

func gemmNT(alpha float64, a, b, c *Matrix) {
	// op(B) = B^T: B is n x k row-major, so op(B)[l,j] = B[j,l].
	n, k := c.Cols, a.Cols
	for i := 0; i < c.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var sum float64
			for l, av := range arow {
				sum += av * brow[l]
			}
			crow[j] += alpha * sum
		}
	}
}

func gemmTT(alpha float64, a, b, c *Matrix) {
	// op(A)[i,l] = A[l,i], op(B)[l,j] = B[j,l].
	n, k := c.Cols, a.Rows
	m := a.Cols
	for i := 0; i < m; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var sum float64
			for l := 0; l < k; l++ {
				sum += a.Data[l*m+i] * brow[l]
			}
			crow[j] += alpha * sum
		}
	}
}
