package tensor

// Accumulate kernels: the dst += scale*src and dst = scale*src inner
// loops shared by Sort4Add, Tile4.AddScaled, the REDUCE task bodies,
// and the Global Arrays fold paths (ga.AccRange, ordered-accumulation
// flush). On the AVX2+ tiers these dispatch to 256-bit assembly that
// uses unfused multiply and add, so every tier — vector or scalar —
// produces bitwise identical floats.

// axpyMinLen is the slice length below which the call overhead of the
// vector kernel exceeds its win; shorter runs take the scalar loop.
const axpyMinLen = 16

// Axpy accumulates dst[i] += scale*src[i] over the length of src,
// panicking if dst is shorter. The result is bitwise identical across
// the kernel tiers (the vector path rounds each multiply and add
// exactly like the scalar loop).
func Axpy(dst, src []float64, scale float64) {
	n := len(src)
	if len(dst) < n {
		panic("tensor: Axpy dst shorter than src")
	}
	dst = dst[:n]
	if activeTier >= TierAVX2 && n >= axpyMinLen {
		q := n &^ 7
		axpyAsm(int64(q), &dst[0], &src[0], scale)
		dst, src = dst[q:], src[q:]
	}
	for i, v := range src {
		dst[i] += scale * v
	}
}

// ScaleTo assigns dst[i] = scale*src[i] over the length of src,
// panicking if dst is shorter.
func ScaleTo(dst, src []float64, scale float64) {
	n := len(src)
	if len(dst) < n {
		panic("tensor: ScaleTo dst shorter than src")
	}
	dst = dst[:n]
	if activeTier >= TierAVX2 && n >= axpyMinLen {
		q := n &^ 7
		scaleAsm(int64(q), &dst[0], &src[0], scale)
		dst, src = dst[q:], src[q:]
	}
	for i, v := range src {
		dst[i] = scale * v
	}
}
