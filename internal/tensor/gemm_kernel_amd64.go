//go:build amd64 && !purego

package tensor

// gemmAsm4x8 is the AVX2+FMA micro-kernel (gemm_kernel_amd64.s): it
// fills a contiguous 4x8 accumulator block from packed kc x 4 A and
// kc x 8 B panels.
//
//go:noescape
func gemmAsm4x8(kc int64, a, b, acc *float64)

// gemmAsm8x16 is the AVX-512F micro-kernel (gemm_kernel_amd64.s): it
// fills a contiguous 8x16 accumulator block from packed kc x 8 A and
// kc x 16 B panels using zmm FMA.
//
//go:noescape
func gemmAsm8x16(kc int64, a, b, acc *float64)

// axpyAsm accumulates dst[i] += scale*src[i] for i in [0, n) with
// unfused 256-bit multiply and add, so the result is bitwise identical
// to the scalar loop. n must be a positive multiple of 8.
//
//go:noescape
func axpyAsm(n int64, dst, src *float64, scale float64)

// scaleAsm assigns dst[i] = scale*src[i] for i in [0, n). n must be a
// positive multiple of 8.
//
//go:noescape
func scaleAsm(n int64, dst, src *float64, scale float64)

func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() uint64

// hwKernelTier is the best tier this CPU and OS can run, probed once.
var hwTierDetected = probeHWTier()

func hwKernelTier() KernelTier { return hwTierDetected }

func probeHWTier() KernelTier {
	maxID, _, _, _ := cpuidRaw(0, 0)
	if maxID < 7 {
		return TierPortable
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return TierPortable
	}
	xcr0 := xgetbv0()
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves YMM state.
	if xcr0&0x6 != 0x6 {
		return TierPortable
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	const (
		avx2Bit    = 1 << 5
		avx512fBit = 1 << 16
	)
	if ebx7&avx2Bit == 0 {
		return TierPortable
	}
	// AVX-512 needs the F foundation plus XCR0 bits 5-7 (opmask,
	// ZMM_Hi256, Hi16_ZMM): the OS saves full zmm state.
	if ebx7&avx512fBit != 0 && xcr0&0xe0 == 0xe0 {
		return TierAVX512
	}
	return TierAVX2
}
