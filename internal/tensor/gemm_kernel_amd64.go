//go:build amd64 && !purego

package tensor

// gemmAsm4x8 is the AVX2+FMA micro-kernel (gemm_kernel_amd64.s): it
// fills a contiguous 4x8 accumulator block from packed kc x 4 A and
// kc x 8 B panels.
//
//go:noescape
func gemmAsm4x8(kc int64, a, b, acc *float64)

func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() uint64

// haveGemmAsm reports FMA + AVX2 with OS-enabled YMM state, the
// prerequisites of gemmAsm4x8.
var haveGemmAsm = detectGemmAsm()

func detectGemmAsm() bool {
	maxID, _, _, _ := cpuidRaw(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves YMM state.
	if xgetbv0()&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}
