package tensor

import (
	"math/rand"
	"testing"
)

// TestGemmBlockedPortableFallback forces the pure-Go 4x4 micro-kernel on
// machines where an assembly tier would normally run, so the fallback
// taken on non-AVX2 hardware keeps correctness coverage.
func TestGemmBlockedPortableFallback(t *testing.T) {
	if ActiveKernelTier() == TierPortable {
		t.Skip("portable tier already active: the fallback is already under test")
	}
	defer setKernelTier(TierPortable)()

	rng := rand.New(rand.NewSource(42))
	for _, s := range [][3]int{{40, 40, 40}, {121, 121, 121}, {130, 37, 257}} {
		m, n, k := s[0], s[1], s[2]
		for _, tt := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			transA, transB := tt[0], tt[1]
			ar, ac := m, k
			if transA {
				ar, ac = k, m
			}
			br, bc := k, n
			if transB {
				br, bc = n, k
			}
			a := randMat(rng, ar, ac)
			b := randMat(rng, br, bc)
			c := randMat(rng, m, n)
			want := c.Clone()
			gemmNaive(transA, transB, 1.25, a, b, 1, want)
			gemmBlocked(transA, transB, 1.25, a, b, c)
			var maxDiff float64
			for i, v := range c.Data {
				d := v - want.Data[i]
				if d < 0 {
					d = -d
				}
				if d > maxDiff {
					maxDiff = d
				}
			}
			if maxDiff > 1e-13*float64(k) {
				t.Errorf("m=%d n=%d k=%d transA=%v transB=%v: max diff %g",
					m, n, k, transA, transB, maxDiff)
			}
		}
	}
}
