package tensor

// Cache-blocked SORT_4 kernels. The direct loop nest (sort4Scatter)
// streams the source sequentially but scatters writes with a stride as
// large as the product of three destination extents; on the tile sizes
// the CCSD workloads use (11^4 .. 36*37*36*37 elements) that write
// pattern walks far outside L1 between consecutive stores. The kernels
// here restructure the loops so that on every tile either both sides
// are contiguous (perm[3] == 3, handled row-at-a-time by the vector
// accumulate kernels) or the permutation is staged through a
// stack-resident sub-tile transpose whose destination stores are again
// contiguous vector runs (perm[3] != 3).

const (
	// sort4BlockCutoff is the element count below which blocking is not
	// worth the extra loop overhead; tiny tiles (e.g. the water system,
	// <= 3^4 elements) take the direct scatter path.
	sort4BlockCutoff = 4096

	// sort4BU x sort4BT is the (unit-dst-stride axis x innermost src
	// axis) sub-tile staged through the transpose buffer: 64*32*8 bytes
	// = 16 KiB, L1-resident alongside the read stream. sort4BU is the
	// larger side so the contiguous destination runs in the second phase
	// are long enough for the vector accumulate kernels to pay off.
	sort4BU = 64
	sort4BT = 32
)

// sort4Contig handles permutations that keep the innermost axis in
// place (perm[3] == 3): both source and destination runs over i3 are
// contiguous, so the permutation reduces to scaled row copies, which the
// vector accumulate kernels (axpy.go) handle eight elements at a time.
func sort4Contig(dst, src *Tile4, perm [4]int, scale float64, add bool) {
	str := sort4Strides(dst, perm)
	d0, d1, d2, d3 := src.Dim[0], src.Dim[1], src.Dim[2], src.Dim[3]
	s := src.Data
	idx := 0
	for i0 := 0; i0 < d0; i0++ {
		o0 := i0 * str[0]
		for i1 := 0; i1 < d1; i1++ {
			o1 := o0 + i1*str[1]
			for i2 := 0; i2 < d2; i2++ {
				o2 := o1 + i2*str[2]
				srow := s[idx : idx+d3]
				drow := dst.Data[o2 : o2+d3]
				if add {
					Axpy(drow, srow, scale)
				} else {
					ScaleTo(drow, srow, scale)
				}
				idx += d3
			}
		}
	}
}

// sort4Blocked handles permutations that move the innermost axis
// (perm[3] != 3). Let u = perm[3]: u is the source axis whose unit step
// lands on the destination's unit stride. The two remaining source axes
// iterate outermost; the (u, i3) plane is processed in sort4BU x sort4BT
// sub-tiles, each staged through a stack buffer in two phases: phase one
// reads the source contiguously along i3 and transposes into the buffer
// (strided writes, but confined to 16 KiB), phase two folds buffer rows
// into the destination, where a fixed i3 gives a contiguous run along u
// that the vector accumulate kernels handle. Every destination element
// still receives exactly one scale*src term, so the result is bitwise
// identical to the scatter path.
func sort4Blocked(dst, src *Tile4, perm [4]int, scale float64, add bool) {
	str := sort4Strides(dst, perm)
	u := perm[3]
	// The two source axes other than u and 3, in ascending order.
	v, w := -1, -1
	for k := 0; k < 3; k++ {
		if k == u {
			continue
		}
		if v < 0 {
			v = k
		} else {
			w = k
		}
	}
	sstr := [4]int{
		src.Dim[1] * src.Dim[2] * src.Dim[3],
		src.Dim[2] * src.Dim[3],
		src.Dim[3],
		1,
	}
	dv, dw, du, d3 := src.Dim[v], src.Dim[w], src.Dim[u], src.Dim[3]
	st3 := str[3]
	s := src.Data
	d := dst.Data
	var buf [sort4BU * sort4BT]float64
	for iv := 0; iv < dv; iv++ {
		for iw := 0; iw < dw; iw++ {
			srcBase := iv*sstr[v] + iw*sstr[w]
			dstBase := iv*str[v] + iw*str[w]
			for u0 := 0; u0 < du; u0 += sort4BU {
				un := min2(sort4BU, du-u0)
				for t0 := 0; t0 < d3; t0 += sort4BT {
					tn := min2(sort4BT, d3-t0)
					// Phase 1: contiguous source reads, transposed into
					// the buffer laid out [tn][un].
					for k := 0; k < un; k++ {
						off := srcBase + (u0+k)*sstr[u] + t0
						srow := s[off : off+tn]
						for t, x := range srow {
							buf[t*un+k] = x
						}
					}
					// Phase 2: contiguous destination runs along u.
					// str[u] == 1 by construction: perm[3] == u means
					// src axis u maps to dst axis 3.
					for t := 0; t < tn; t++ {
						doff := dstBase + u0 + (t0+t)*st3
						drow := d[doff : doff+un]
						brow := buf[t*un : t*un+un]
						if add {
							Axpy(drow, brow, scale)
						} else {
							ScaleTo(drow, brow, scale)
						}
					}
				}
			}
		}
	}
}
