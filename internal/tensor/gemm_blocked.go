package tensor

import "parsec/internal/tensor/pool"

// Cache-blocked packed GEMM (DESIGN.md §8, §13). The triple loop is
// tiled BLIS-style over (n, k, m) with block sizes (gemmNC, gemmKC,
// gemmMC); inside a block, panels of op(A) and op(B) are packed into
// contiguous scratch laid out in micro-panel strips, so every trans
// variant runs the same register-blocked micro-kernel on unit-stride
// data. The micro-kernel comes from the active dispatch tier
// (kernel_tier.go): an 8x16 zmm FMA block on AVX-512F hardware, a 4x8
// AVX2+FMA block below that, else a portable 4x4 block of scalar
// accumulators. alpha is folded into the A packing. Tiny products fall
// back to the direct loops in matrix.go (the water tiles are 2–9 wide;
// packing would cost more than it saves).
//
// The n loop accepts an arbitrary column window [j0, j1), which is how
// GemmP (gemm_parallel.go) splits one product across a worker team:
// every C element is still accumulated by exactly one part in the same
// k order, so a split product is bitwise identical to a serial one.
const (
	gemmMR = 4 // portable and AVX2 micro-kernel rows
	gemmNR = 4 // portable micro-kernel cols
	// gemmNRAsm is the AVX2 micro-kernel width: eight columns, two YMM
	// accumulators per row.
	gemmNRAsm = 8
	// gemmMR512 x gemmNR512 is the AVX-512 micro-kernel: eight rows of
	// sixteen columns, two ZMM accumulators per row.
	gemmMR512 = 8
	gemmNR512 = 16
	// gemmMC x gemmKC is the packed A panel (256 KiB, L2-resident).
	gemmMC = 128
	gemmKC = 256
	// gemmKC x gemmNC bounds the packed B panel (4 MiB, L3-resident).
	gemmNC = 2048
	// gemmBlockCutoff is the m*n*k product below which the direct loops
	// win; 32^3 keeps every water-sized tile on the unpacked path.
	gemmBlockCutoff = 32 * 32 * 32
)

// gemmTierShape returns the (mr, nr) register block of the active tier.
func gemmTierShape() (mr, nr int) {
	switch activeTier {
	case TierAVX512:
		return gemmMR512, gemmNR512
	case TierAVX2:
		return gemmMR, gemmNRAsm
	default:
		return gemmMR, gemmNR
	}
}

// gemmBlocked computes C += alpha*op(A)*op(B) over pre-beta-scaled C.
func gemmBlocked(transA, transB bool, alpha float64, a, b, c *Matrix) {
	gemmBlockedCols(transA, transB, alpha, a, b, c, 0, c.Cols, nil)
}

// gemmBlockedCols runs the blocked kernel over the C column window
// [j0, j1), drawing packing scratch from loc (nil means the shared
// pool). It is the unit of intra-task parallelism: GemmP runs disjoint
// windows concurrently, each on its executing worker's scratch shard.
func gemmBlockedCols(transA, transB bool, alpha float64, a, b, c *Matrix, j0, j1 int, loc *pool.Local) {
	m, k := opDims(a, transA)
	tier := activeTier
	mr, nr := gemmTierShape()

	// Packing scratch, recycled through the worker-local shard when one
	// is supplied, else the shared size-class pool.
	ncMax := min2(j1-j0, gemmNC)
	kcMax := min2(k, gemmKC)
	mcMax := min2(m, gemmMC)
	aPack := loc.Get(roundUp(mcMax, mr) * kcMax)
	bPack := loc.Get(roundUp(ncMax, nr) * kcMax)
	defer loc.Put(aPack)
	defer loc.Put(bPack)

	for jc := j0; jc < j1; jc += gemmNC {
		ncEff := min2(gemmNC, j1-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kcEff := min2(gemmKC, k-pc)
			packB(transB, b, pc, jc, kcEff, ncEff, nr, bPack)
			for ic := 0; ic < m; ic += gemmMC {
				mcEff := min2(gemmMC, m-ic)
				packA(transA, alpha, a, ic, pc, mcEff, kcEff, mr, aPack)
				switch tier {
				case TierAVX512:
					gemmMacroAsm512(aPack, bPack, c, ic, jc, mcEff, ncEff, kcEff)
				case TierAVX2:
					gemmMacroAsm(aPack, bPack, c, ic, jc, mcEff, ncEff, kcEff)
				default:
					gemmMacro(aPack, bPack, c, ic, jc, mcEff, ncEff, kcEff)
				}
			}
		}
	}
}

func roundUp(n, q int) int { return (n + q - 1) / q * q }

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// packA copies the (ic:ic+mcEff, pc:pc+kcEff) panel of op(A), scaled by
// alpha, into dst as mr-row strips: strip s holds rows ic+s*mr.. and is
// laid out k-major, dst[s*kcEff*mr + p*mr + r] = alpha*op(A)[ic+s*mr+r,
// pc+p]. Short final strips are zero-padded so the micro-kernel never
// branches on the row count.
func packA(transA bool, alpha float64, a *Matrix, ic, pc, mcEff, kcEff, mr int, dst []float64) {
	lda := a.Cols
	if transA {
		// A is k x m row-major; op(A)[i,p] = A[p,i]: each p contributes
		// mr consecutive source elements.
		for s := 0; s*mr < mcEff; s++ {
			i0 := ic + s*mr
			rows := min2(mr, ic+mcEff-i0)
			out := dst[s*kcEff*mr:]
			if rows == mr {
				for p := 0; p < kcEff; p++ {
					src := a.Data[(pc+p)*lda+i0 : (pc+p)*lda+i0+mr]
					o := out[p*mr : p*mr+mr]
					for r, v := range src {
						o[r] = alpha * v
					}
				}
				continue
			}
			for p := 0; p < kcEff; p++ {
				src := a.Data[(pc+p)*lda+i0:]
				o := out[p*mr : (p+1)*mr]
				for r := 0; r < mr; r++ {
					if r < rows {
						o[r] = alpha * src[r]
					} else {
						o[r] = 0
					}
				}
			}
		}
		return
	}
	// A is m x k row-major; a strip interleaves mr row slices: row r of
	// the strip scatters into dst with stride mr.
	for s := 0; s*mr < mcEff; s++ {
		i0 := ic + s*mr
		rows := min2(mr, ic+mcEff-i0)
		out := dst[s*kcEff*mr : s*kcEff*mr+kcEff*mr]
		for r := 0; r < mr; r++ {
			if r >= rows {
				for p := 0; p < kcEff; p++ {
					out[p*mr+r] = 0
				}
				continue
			}
			src := a.Data[(i0+r)*lda+pc : (i0+r)*lda+pc+kcEff]
			for p, v := range src {
				out[p*mr+r] = alpha * v
			}
		}
	}
}

// packB copies the (pc:pc+kcEff, jc:jc+ncEff) panel of op(B) into dst as
// nr-column strips, dst[s*kcEff*nr + p*nr + j] = op(B)[pc+p, jc+s*nr+j],
// zero-padding short final strips.
func packB(transB bool, b *Matrix, pc, jc, kcEff, ncEff, nr int, dst []float64) {
	ldb := b.Cols
	if !transB {
		// B is k x n row-major: each p contributes nr consecutive
		// source elements.
		for s := 0; s*nr < ncEff; s++ {
			j0 := jc + s*nr
			cols := min2(nr, jc+ncEff-j0)
			out := dst[s*kcEff*nr:]
			for p := 0; p < kcEff; p++ {
				src := b.Data[(pc+p)*ldb+j0 : (pc+p)*ldb+j0+cols]
				o := out[p*nr : (p+1)*nr]
				copy(o, src)
				for j := cols; j < nr; j++ {
					o[j] = 0
				}
			}
		}
		return
	}
	// B is n x k row-major; op(B)[p,j] = B[j,p]: a strip interleaves nr
	// row slices of B.
	for s := 0; s*nr < ncEff; s++ {
		j0 := jc + s*nr
		cols := min2(nr, jc+ncEff-j0)
		out := dst[s*kcEff*nr:]
		for j := 0; j < nr; j++ {
			if j >= cols {
				for p := 0; p < kcEff; p++ {
					out[p*nr+j] = 0
				}
				continue
			}
			src := b.Data[(j0+j)*ldb+pc : (j0+j)*ldb+pc+kcEff]
			for p, v := range src {
				out[p*nr+j] = v
			}
		}
	}
}

// gemmMacroAsm runs the AVX2 micro-kernel over one packed panel pair,
// accumulating into the C block at (ic, jc). The kernel always computes a
// full 4x8 tile into a stack block; the write-back loop trims edges.
func gemmMacroAsm(aPack, bPack []float64, c *Matrix, ic, jc, mcEff, ncEff, kcEff int) {
	const nr = gemmNRAsm
	ldc := c.Cols
	var acc [gemmMR * nr]float64
	for jr := 0; jr*nr < ncEff; jr++ {
		j0 := jc + jr*nr
		cols := min2(nr, jc+ncEff-j0)
		bp := bPack[jr*kcEff*nr : (jr+1)*kcEff*nr]
		for ir := 0; ir*gemmMR < mcEff; ir++ {
			i0 := ic + ir*gemmMR
			rows := min2(gemmMR, ic+mcEff-i0)
			ap := aPack[ir*kcEff*gemmMR : (ir+1)*kcEff*gemmMR]
			gemmAsm4x8(int64(kcEff), &ap[0], &bp[0], &acc[0])
			if rows == gemmMR && cols == nr {
				for r := 0; r < gemmMR; r++ {
					crow := c.Data[(i0+r)*ldc+j0 : (i0+r)*ldc+j0+nr]
					av := acc[r*nr : r*nr+nr]
					crow[0] += av[0]
					crow[1] += av[1]
					crow[2] += av[2]
					crow[3] += av[3]
					crow[4] += av[4]
					crow[5] += av[5]
					crow[6] += av[6]
					crow[7] += av[7]
				}
				continue
			}
			for r := 0; r < rows; r++ {
				crow := c.Data[(i0+r)*ldc+j0:]
				for j := 0; j < cols; j++ {
					crow[j] += acc[r*nr+j]
				}
			}
		}
	}
}

// gemmMacroAsm512 runs the AVX-512 micro-kernel over one packed panel
// pair, accumulating into the C block at (ic, jc). The kernel always
// computes a full 8x16 tile into a stack block; the write-back loop
// trims edges.
func gemmMacroAsm512(aPack, bPack []float64, c *Matrix, ic, jc, mcEff, ncEff, kcEff int) {
	const (
		mr = gemmMR512
		nr = gemmNR512
	)
	ldc := c.Cols
	var acc [mr * nr]float64
	for jr := 0; jr*nr < ncEff; jr++ {
		j0 := jc + jr*nr
		cols := min2(nr, jc+ncEff-j0)
		bp := bPack[jr*kcEff*nr : (jr+1)*kcEff*nr]
		for ir := 0; ir*mr < mcEff; ir++ {
			i0 := ic + ir*mr
			rows := min2(mr, ic+mcEff-i0)
			ap := aPack[ir*kcEff*mr : (ir+1)*kcEff*mr]
			gemmAsm8x16(int64(kcEff), &ap[0], &bp[0], &acc[0])
			if rows == mr && cols == nr {
				for r := 0; r < mr; r++ {
					crow := c.Data[(i0+r)*ldc+j0 : (i0+r)*ldc+j0+nr]
					av := acc[r*nr : r*nr+nr]
					for j, v := range av {
						crow[j] += v
					}
				}
				continue
			}
			for r := 0; r < rows; r++ {
				crow := c.Data[(i0+r)*ldc+j0:]
				for j := 0; j < cols; j++ {
					crow[j] += acc[r*nr+j]
				}
			}
		}
	}
}

// gemmMacro is the portable macro loop over the packed panels with the
// 4x4 scalar micro-kernel.
func gemmMacro(aPack, bPack []float64, c *Matrix, ic, jc, mcEff, ncEff, kcEff int) {
	ldc := c.Cols
	for jr := 0; jr*gemmNR < ncEff; jr++ {
		j0 := jc + jr*gemmNR
		cols := min2(gemmNR, jc+ncEff-j0)
		bp := bPack[jr*kcEff*gemmNR : (jr+1)*kcEff*gemmNR]
		for ir := 0; ir*gemmMR < mcEff; ir++ {
			i0 := ic + ir*gemmMR
			rows := min2(gemmMR, ic+mcEff-i0)
			ap := aPack[ir*kcEff*gemmMR : (ir+1)*kcEff*gemmMR]
			if rows == gemmMR && cols == gemmNR {
				gemmMicro4x4(ap, bp,
					c.Data[(i0+0)*ldc+j0:(i0+0)*ldc+j0+gemmNR],
					c.Data[(i0+1)*ldc+j0:(i0+1)*ldc+j0+gemmNR],
					c.Data[(i0+2)*ldc+j0:(i0+2)*ldc+j0+gemmNR],
					c.Data[(i0+3)*ldc+j0:(i0+3)*ldc+j0+gemmNR])
				continue
			}
			var acc [gemmMR * gemmNR]float64
			gemmMicroAcc(ap, bp, &acc)
			for r := 0; r < rows; r++ {
				crow := c.Data[(i0+r)*ldc+j0:]
				for j := 0; j < cols; j++ {
					crow[j] += acc[r*gemmNR+j]
				}
			}
		}
	}
}

// gemmMicro4x4 is the portable inner kernel: a full 4x4 block of C held
// in sixteen scalar accumulators while one packed A strip and one packed
// B strip stream through once. The len-guarded reslicing walk keeps every
// access bounds-check-free.
func gemmMicro4x4(a, b []float64, c0, c1, c2, c3 []float64) {
	var s00, s01, s02, s03 float64
	var s10, s11, s12, s13 float64
	var s20, s21, s22, s23 float64
	var s30, s31, s32, s33 float64
	for len(a) >= 4 && len(b) >= 4 {
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		s00 += a0 * b0
		s01 += a0 * b1
		s02 += a0 * b2
		s03 += a0 * b3
		s10 += a1 * b0
		s11 += a1 * b1
		s12 += a1 * b2
		s13 += a1 * b3
		s20 += a2 * b0
		s21 += a2 * b1
		s22 += a2 * b2
		s23 += a2 * b3
		s30 += a3 * b0
		s31 += a3 * b1
		s32 += a3 * b2
		s33 += a3 * b3
		a = a[4:]
		b = b[4:]
	}
	if len(c0) < 4 || len(c1) < 4 || len(c2) < 4 || len(c3) < 4 {
		panic("tensor: gemmMicro4x4 short C rows")
	}
	c0[0] += s00
	c0[1] += s01
	c0[2] += s02
	c0[3] += s03
	c1[0] += s10
	c1[1] += s11
	c1[2] += s12
	c1[3] += s13
	c2[0] += s20
	c2[1] += s21
	c2[2] += s22
	c2[3] += s23
	c3[0] += s30
	c3[1] += s31
	c3[2] += s32
	c3[3] += s33
}

// gemmMicroAcc is gemmMicro4x4 writing into a caller-held accumulator
// block, for edge tiles whose C rows or columns are short.
func gemmMicroAcc(a, b []float64, acc *[gemmMR * gemmNR]float64) {
	var s00, s01, s02, s03 float64
	var s10, s11, s12, s13 float64
	var s20, s21, s22, s23 float64
	var s30, s31, s32, s33 float64
	for len(a) >= 4 && len(b) >= 4 {
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		s00 += a0 * b0
		s01 += a0 * b1
		s02 += a0 * b2
		s03 += a0 * b3
		s10 += a1 * b0
		s11 += a1 * b1
		s12 += a1 * b2
		s13 += a1 * b3
		s20 += a2 * b0
		s21 += a2 * b1
		s22 += a2 * b2
		s23 += a2 * b3
		s30 += a3 * b0
		s31 += a3 * b1
		s32 += a3 * b2
		s33 += a3 * b3
		a = a[4:]
		b = b[4:]
	}
	acc[0], acc[1], acc[2], acc[3] = s00, s01, s02, s03
	acc[4], acc[5], acc[6], acc[7] = s10, s11, s12, s13
	acc[8], acc[9], acc[10], acc[11] = s20, s21, s22, s23
	acc[12], acc[13], acc[14], acc[15] = s30, s31, s32, s33
}
