package cgp

import (
	"testing"

	"parsec/internal/cluster"
	"parsec/internal/ga"
	"parsec/internal/molecule"
	"parsec/internal/sim"
	"parsec/internal/tce"
	"parsec/internal/trace"
)

func testSetup(nodes, cores int) (*tce.Workload, *cluster.Machine, *ga.Sim) {
	cfg := cluster.CascadeLike()
	cfg.Nodes = nodes
	cfg.CoresPerNode = cores
	cfg.JitterFrac = 0
	e := sim.NewEngine()
	m := cluster.New(e, cfg)
	gs := ga.NewSim(m)
	k := tce.T2_7(molecule.Water631G())
	w := tce.Inspect(k, func(b tce.BlockRef) int {
		return gs.Distribution().Owner(b.Tensor, b.Key)
	})
	return w, m, gs
}

func TestRunExecutesAllChains(t *testing.T) {
	w, m, gs := testSetup(2, 2)
	res, err := Run(w, m, gs, Config{RanksPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chains != w.NumChains() {
		t.Errorf("chains = %d, want %d", res.Chains, w.NumChains())
	}
	executed := 0
	for _, n := range res.ChainsByRank {
		executed += n
	}
	if executed != w.NumChains() {
		t.Errorf("executed %d chains, want %d", executed, w.NumChains())
	}
	if res.Gets != 2*int64(w.Stats().Gemms) {
		t.Errorf("gets = %d, want %d", res.Gets, 2*w.Stats().Gemms)
	}
	if res.Adds != int64(w.Stats().Sorts) {
		t.Errorf("adds = %d, want %d", res.Adds, w.Stats().Sorts)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

func TestTraceShowsNoOverlapPattern(t *testing.T) {
	w, m, gs := testSetup(2, 1)
	tr := trace.New()
	if _, err := Run(w, m, gs, Config{RanksPerNode: 1, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The defining property of the original code: communication (GETs)
	// happens on the worker thread, so comm and compute on a rank never
	// overlap. With 1 rank per node, per-node overlap must be zero.
	comm := map[string]bool{"READA": true, "READB": true, "WRITE": true}
	commTime, overlapped := tr.OverlapStats(comm)
	if commTime == 0 {
		t.Fatal("no communication recorded")
	}
	if overlapped != 0 {
		t.Errorf("overlap = %d ns on single-rank nodes, want 0", overlapped)
	}
}

func TestMoreRanksFasterUntilSaturation(t *testing.T) {
	run := func(ranks int) sim.Time {
		w, m, gs := testSetup(2, ranks)
		res, err := Run(w, m, gs, Config{RanksPerNode: ranks})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	t1, t2 := run(1), run(2)
	if t2 >= t1 {
		t.Errorf("2 ranks (%v) not faster than 1 (%v)", t2, t1)
	}
}

func TestLevelsAddSynchronization(t *testing.T) {
	w, m, gs := testSetup(2, 2)
	res1, err := Run(w, m, gs, Config{RanksPerNode: 2, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	w2, m2, gs2 := testSetup(2, 2)
	res7, err := Run(w2, m2, gs2, Config{RanksPerNode: 2, Levels: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res7.Makespan < res1.Makespan {
		t.Errorf("7 levels (%v) faster than 1 level (%v)", res7.Makespan, res1.Makespan)
	}
	// All chains still execute.
	total := 0
	for _, n := range res7.ChainsByRank {
		total += n
	}
	if total != w2.NumChains() {
		t.Errorf("levels dropped chains: %d of %d", total, w2.NumChains())
	}
}

func TestDeterministic(t *testing.T) {
	run := func() sim.Time {
		w, m, gs := testSetup(3, 2)
		res, err := Run(w, m, gs, Config{RanksPerNode: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestInvalidConfig(t *testing.T) {
	w, m, gs := testSetup(1, 1)
	if _, err := Run(w, m, gs, Config{}); err == nil {
		t.Error("zero ranks accepted")
	}
}
