// Package cgp executes a TCE workload the way the original NWChem code
// does (§III-A): Coarse Grain Parallelism over Global Arrays. Each MPI
// rank repeatedly acquires a whole chain of GEMMs through the NXTVAL
// shared counter (global work stealing), and for every GEMM issues a
// blocking GET_HASH_BLOCK for each input immediately before calling the
// kernel — so communication is interleaved with, but never overlapped
// with, computation (Fig 12/13). Chain output is sorted and accumulated
// with SORT_4 + ADD_HASH_BLOCK, serially on the same rank. Work is
// divided into levels with an explicit synchronization between them.
package cgp

import (
	"fmt"

	"parsec/internal/cluster"
	"parsec/internal/ga"
	"parsec/internal/sim"
	"parsec/internal/tce"
	"parsec/internal/trace"
)

// Config controls a baseline run.
type Config struct {
	// RanksPerNode is the number of MPI ranks per node (the paper's
	// cores/node axis in Fig 9).
	RanksPerNode int
	// Levels splits the chains into this many contiguous work levels with
	// a barrier and counter reset between them (the original T2 code uses
	// seven across its subroutines; a single subroutine region is one).
	Levels int
	// Trace, if non-nil, receives GET / GEMM / SORT / ADD events.
	Trace *trace.Trace
	// Horizon aborts the simulation after this much virtual time.
	Horizon sim.Time
}

// Result summarizes a baseline run.
type Result struct {
	Makespan   sim.Time
	Chains     int
	Gets, Adds int64
	// GetBytes and AddBytes are the payload volumes behind Gets and Adds
	// (the GET-vs-ACC communication split of the profile report).
	GetBytes, AddBytes int64
	ChainsByRank       map[string]int // "node/rank" -> chains executed
}

// String summarizes the run in one line.
func (r Result) String() string {
	return fmt.Sprintf("makespan=%v chains=%d gets=%d adds=%d", r.Makespan, r.Chains, r.Gets, r.Adds)
}

// Run executes the workload on the machine and returns the result.
func Run(w *tce.Workload, m *cluster.Machine, gs *ga.Sim, cfg Config) (Result, error) {
	if cfg.RanksPerNode <= 0 {
		return Result{}, fmt.Errorf("cgp: RanksPerNode = %d", cfg.RanksPerNode)
	}
	levels := cfg.Levels
	if levels <= 0 {
		levels = 1
	}
	if levels > len(w.Chains) {
		levels = len(w.Chains)
	}
	// Contiguous level partition.
	bounds := make([]int, levels+1)
	for i := 0; i <= levels; i++ {
		bounds[i] = i * len(w.Chains) / levels
	}

	totalRanks := m.Cfg.Nodes * cfg.RanksPerNode
	barrier := sim.NewBarrier(m.Eng, totalRanks)
	res := Result{Chains: len(w.Chains), ChainsByRank: make(map[string]int)}

	for node := 0; node < m.Cfg.Nodes; node++ {
		for rank := 0; rank < cfg.RanksPerNode; rank++ {
			node, rank := node, rank
			m.Eng.Go(fmt.Sprintf("n%d.r%d", node, rank), func(p *sim.Proc) {
				runRank(p, w, m, gs, cfg, node, rank, bounds, barrier, &res)
			})
		}
	}
	end, err := m.Eng.Run(cfg.Horizon)
	if err != nil {
		return Result{}, fmt.Errorf("cgp: %w", err)
	}
	res.Makespan = end
	res.Gets, res.Adds = gs.Stats()
	res.GetBytes, res.AddBytes = gs.ByteStats()
	return res, nil
}

func runRank(p *sim.Proc, w *tce.Workload, m *cluster.Machine, gs *ga.Sim,
	cfg Config, node, rank int, bounds []int, barrier *sim.Barrier, res *Result) {
	record := func(class, label string, start sim.Time) {
		if cfg.Trace != nil {
			cfg.Trace.Add(trace.Event{
				Node: node, Thread: rank,
				Class: class, Label: label,
				Start: int64(start), End: int64(p.Now()),
			})
		}
	}
	rankKey := fmt.Sprintf("%d/%d", node, rank)
	for lvl := 0; lvl+1 < len(bounds); lvl++ {
		base, limit := bounds[lvl], bounds[lvl+1]
		for {
			// Global work stealing: one remote atomic per unit of work
			// (a whole chain), §IV-D.
			ticket := gs.NxtVal(p)
			idx := base + int(ticket)
			if idx >= limit {
				break
			}
			res.ChainsByRank[rankKey]++
			executeChain(p, w.Chains[idx], m, gs, node, record)
		}
		// Explicit synchronization between work levels (§III-A), after
		// which the shared counter is rewound for the next level.
		barrier.Arrive(p)
		if rank == 0 && node == 0 {
			gs.ResetNxtVal()
		}
		barrier.Arrive(p)
	}
}

// executeChain runs one chain exactly as the generated Fortran does:
// DFILL, then for each GEMM a blocking GET of A and B followed by the
// kernel, then the active SORT_4 + ADD_HASH_BLOCK pairs, all serially.
func executeChain(p *sim.Proc, c *tce.ChainMeta, m *cluster.Machine, gs *ga.Sim,
	node int, record func(class, label string, start sim.Time)) {
	cb := c.CBytes()
	// DFILL: zero the local C buffer (MA_PUSH_GET + dfill).
	t0 := p.Now()
	m.MemOp(p, node, cb, false)
	record("DFILL", fmt.Sprintf("DFILL(%d)", c.ID), t0)

	for _, g := range c.Gemms {
		// GET_HASH_BLOCK immediately before the GEMM: "there is no
		// computation in the code between the point where the data
		// transfer starts and the point where the data is needed" (§V).
		t0 = p.Now()
		gs.GetHashBlock(p, node, g.ANode, g.Op.A.Bytes(), g.Op.A.Dims[0]*g.Op.A.Dims[1])
		record("READA", fmt.Sprintf("GET-A(%d,%d)", c.ID, g.Op.Iter.H7), t0)
		t0 = p.Now()
		gs.GetHashBlock(p, node, g.BNode, g.Op.B.Bytes(), g.Op.B.Dims[0]*g.Op.B.Dims[1])
		record("READB", fmt.Sprintf("GET-B(%d,%d)", c.ID, g.Op.Iter.H7), t0)

		t0 = p.Now()
		m.Gemm(p, node, g.Op.Flops(), g.Op.A.Bytes()+g.Op.B.Bytes()+cb)
		record("GEMM", fmt.Sprintf("GEMM(%d,%d)", c.ID, g.Op.Iter.H7), t0)
	}

	for _, s := range c.Sorts {
		t0 = p.Now()
		m.MemOp(p, node, 2*cb, true)
		record("SORT", fmt.Sprintf("SORT(%d,%d)", c.ID, s.Branch), t0)
		t0 = p.Now()
		gs.AddHashBlock(p, node, c.OutNode, c.Out.Bytes(), c.Out.Dims[0]*c.Out.Dims[1])
		record("WRITE", fmt.Sprintf("ADD(%d,%d)", c.ID, s.Branch), t0)
	}
}
