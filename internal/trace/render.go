package trace

import (
	"fmt"
	"io"
	"sort"
)

// classGlyphs assigns the ASCII Gantt glyph per task class, mirroring the
// color legend of the paper's traces: GEMM red (G), read-A blue (a),
// read-B purple (b), reductions yellow (r), writes light green (w).
var classGlyphs = map[string]byte{
	"GEMM":   'G',
	"READA":  'a',
	"READB":  'b',
	"REDUCE": 'r',
	"SORT":   's',
	"WRITE":  'w',
	"DFILL":  'd',
	"GET":    '.',
	"NXTVAL": 'x',
	"ADD":    '+',
}

// classColors are the SVG fill colors, matching the paper's legend where
// one exists (red GEMMs, blue A reads, purple B reads, yellow
// reductions, light green writes, grey idle).
var classColors = map[string]string{
	"GEMM":   "#c0392b",
	"READA":  "#2e6da4",
	"READB":  "#8e44ad",
	"REDUCE": "#f1c40f",
	"SORT":   "#e67e22",
	"WRITE":  "#7ed67e",
	"DFILL":  "#16a085",
	"GET":    "#2e6da4",
	"NXTVAL": "#2c3e50",
	"ADD":    "#7ed67e",
}

func glyphFor(class string) byte {
	if g, ok := classGlyphs[class]; ok {
		return g
	}
	if len(class) > 0 {
		return class[0]
	}
	return '?'
}

func colorFor(class string) string {
	if c, ok := classColors[class]; ok {
		return c
	}
	return "#95a5a6"
}

// ASCIIGantt renders the trace as text: one row per thread, rows grouped
// by node, width columns spanning the makespan, '.' for idle time.
func (t *Trace) ASCIIGantt(w io.Writer, width int) error {
	if width <= 0 {
		width = 100
	}
	start, end := t.Span()
	span := end - start
	if span <= 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	keys, byRow := t.rows()
	col := func(ts int64) int {
		c := int(float64(ts-start) / float64(span) * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	lastNode := -1
	for _, k := range keys {
		if k.node != lastNode {
			if _, err := fmt.Fprintf(w, "--- node %d %s\n", k.node, dashes(width-11)); err != nil {
				return err
			}
			lastNode = k.node
		}
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for _, e := range byRow[k] {
			g := glyphFor(e.Class)
			c0, c1 := col(e.Start), col(e.End)
			for c := c0; c <= c1; c++ {
				line[c] = g
			}
		}
		if _, err := fmt.Fprintf(w, "t%-3d|%s|\n", k.thread, line); err != nil {
			return err
		}
	}
	return t.writeLegend(w)
}

func dashes(n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

func (t *Trace) classList() []string {
	set := map[string]bool{}
	for _, e := range t.Events() {
		set[e.Class] = true
	}
	var names []string
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (t *Trace) writeLegend(w io.Writer) error {
	if _, err := fmt.Fprint(w, "legend:"); err != nil {
		return err
	}
	for _, n := range t.classList() {
		if _, err := fmt.Fprintf(w, " %c=%s", glyphFor(n), n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits one line per event: node,thread,class,label,start_ns,end_ns.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "node,thread,class,label,start_ns,end_ns"); err != nil {
		return err
	}
	for _, e := range t.Events() {
		if _, err := fmt.Fprintf(w, "%d,%d,%s,%s,%d,%d\n",
			e.Node, e.Thread, e.Class, e.Label, e.Start, e.End); err != nil {
			return err
		}
	}
	return nil
}

// WriteSVG renders the trace as an SVG Gantt chart in the style of
// Figs 10-13: one horizontal bar row per thread, grouped by node, task
// rectangles colored by class over a grey idle background.
func (t *Trace) WriteSVG(w io.Writer, width int) error {
	if width <= 0 {
		width = 1200
	}
	const rowH, rowGap, nodeGap, margin = 12, 2, 8, 4
	start, end := t.Span()
	span := end - start
	keys, byRow := t.rows()
	if span <= 0 || len(keys) == 0 {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>`)
		return err
	}
	// Row y positions.
	ys := make(map[threadKey]int, len(keys))
	y := margin
	lastNode := keys[0].node
	for _, k := range keys {
		if k.node != lastNode {
			y += nodeGap
			lastNode = k.node
		}
		ys[k] = y
		y += rowH + rowGap
	}
	height := y + margin + 16
	x := func(ts int64) float64 {
		return margin + float64(ts-start)/float64(span)*float64(width-2*margin)
	}
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="9">`+"\n",
		width, height); err != nil {
		return err
	}
	for _, k := range keys {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="#d7d7d7"/>`+"\n",
			margin, ys[k], width-2*margin, rowH)
	}
	for _, k := range keys {
		for _, e := range byRow[k] {
			x0, x1 := x(e.Start), x(e.End)
			wd := x1 - x0
			if wd < 0.4 {
				wd = 0.4
			}
			fmt.Fprintf(w, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"><title>%s</title></rect>`+"\n",
				x0, ys[k], wd, rowH, colorFor(e.Class), e.Label)
		}
	}
	// Legend.
	lx := margin
	ly := height - 12
	for _, n := range t.classList() {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="8" height="8" fill="%s"/><text x="%d" y="%d">%s</text>`+"\n",
			lx, ly, colorFor(n), lx+10, ly+8, n)
		lx += 12 + 7*len(n) + 14
	}
	_, err := fmt.Fprint(w, "</svg>\n")
	return err
}

// WriteChromeTrace emits the trace in the Chrome trace-event JSON format
// (chrome://tracing, Perfetto): one complete event per task, with the
// node as the process id and the thread as the thread id, so the paper's
// Gantt layout appears natively in the viewer. Counter samples recorded
// with AddCounter become Perfetto counter tracks (one per counter name
// per node), and a "busy workers" track is derived per node from the
// events themselves, so every export quantifies the idle bubbles the
// Gantt rows only show.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if _, err := fmt.Fprint(w, "[\n"); err != nil {
		return err
	}
	evs := t.Events()
	counters := append([]Counter(nil), t.Counters()...)
	counters = append(counters, t.busyCounters()...)
	for i, e := range evs {
		sep := ","
		if i == len(evs)-1 && len(counters) == 0 {
			sep = ""
		}
		// Timestamps and durations are microseconds in the trace format.
		if _, err := fmt.Fprintf(w,
			`  {"name": %q, "cat": %q, "ph": "X", "ts": %.3f, "dur": %.3f, "pid": %d, "tid": %d}%s`+"\n",
			e.Label, e.Class, float64(e.Start)/1e3, float64(e.Duration())/1e3, e.Node, e.Thread, sep); err != nil {
			return err
		}
	}
	for i, c := range counters {
		sep := ","
		if i == len(counters)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w,
			`  {"name": %q, "ph": "C", "ts": %.3f, "pid": %d, "args": {"value": %g}}%s`+"\n",
			c.Name, float64(c.Ts)/1e3, c.Node, c.Value, sep); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "]\n")
	return err
}

// busyCounters derives per-node "busy workers" counter samples from the
// recorded events: +1 at each task start, -1 at each end, sampled at
// every change point.
func (t *Trace) busyCounters() []Counter {
	type edge struct {
		ts    int64
		delta int
	}
	byNode := map[int][]edge{}
	for _, e := range t.Events() {
		byNode[e.Node] = append(byNode[e.Node], edge{e.Start, +1}, edge{e.End, -1})
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	var out []Counter
	for _, n := range nodes {
		es := byNode[n]
		sort.Slice(es, func(i, j int) bool {
			if es[i].ts != es[j].ts {
				return es[i].ts < es[j].ts
			}
			// Ends before starts at the same instant, so zero-duration
			// events never leave the count negative.
			return es[i].delta < es[j].delta
		})
		busy := 0
		for i, e := range es {
			busy += e.delta
			if i+1 < len(es) && es[i+1].ts == e.ts {
				continue // sample only the final value at each instant
			}
			out = append(out, Counter{Name: "busy workers", Node: n, Ts: e.ts, Value: float64(busy)})
		}
	}
	return out
}
