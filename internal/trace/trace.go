// Package trace reimplements PaRSEC's native performance instrumentation
// (§V): executors record one event per task execution (node, thread,
// class, start, end), and the package renders the traces the paper shows
// in Figs 10-13 — one row per thread, rows grouped by node, colored by
// task class — as ASCII Gantt charts, SVG, and CSV. It also computes the
// summary statistics the paper reads off the traces: startup idle time
// (the v2 bubble of Fig 11) and communication/computation overlap.
package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Event is one task execution.
type Event struct {
	Node   int
	Thread int
	Class  string
	Label  string // instance label, e.g. "GEMM(3,7)"
	Start  int64  // nanoseconds since execution start
	End    int64
}

// Duration returns End - Start.
func (e Event) Duration() int64 { return e.End - e.Start }

// Counter is one sample of a scalar counter track — the Perfetto-style
// instantaneous state the paper's Gantt charts only imply: ready-queue
// depth, in-flight communication bytes, and similar. Samples with the
// same (Name, Node) form one track.
type Counter struct {
	Name  string
	Node  int
	Ts    int64 // nanoseconds since execution start
	Value float64
}

// Trace is a concurrent-safe collector of events.
type Trace struct {
	mu       sync.Mutex
	events   []Event
	counters []Counter
	sorted   bool
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Add records an event. Safe for concurrent use.
func (t *Trace) Add(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.sorted = false
	t.mu.Unlock()
}

// AddCounter records a counter sample. Safe for concurrent use.
func (t *Trace) AddCounter(c Counter) {
	t.mu.Lock()
	t.counters = append(t.counters, c)
	t.mu.Unlock()
}

// Counters returns the counter samples sorted by (name, node, ts). The
// returned slice is owned by the trace; callers must not mutate it.
func (t *Trace) Counters() []Counter {
	t.mu.Lock()
	defer t.mu.Unlock()
	sort.SliceStable(t.counters, func(i, j int) bool {
		a, b := t.counters[i], t.counters[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Ts < b.Ts
	})
	return t.counters
}

// Len returns the number of events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns the events sorted by (node, thread, start, end).
// The returned slice is owned by the trace; callers must not mutate it.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.sorted {
		sort.Slice(t.events, func(i, j int) bool {
			a, b := t.events[i], t.events[j]
			if a.Node != b.Node {
				return a.Node < b.Node
			}
			if a.Thread != b.Thread {
				return a.Thread < b.Thread
			}
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.End < b.End
		})
		t.sorted = true
	}
	return t.events
}

// Span returns the earliest start and latest end over all events.
func (t *Trace) Span() (start, end int64) {
	evs := t.Events()
	if len(evs) == 0 {
		return 0, 0
	}
	start, end = evs[0].Start, evs[0].End
	for _, e := range evs {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end
}

// threadKey identifies one trace row.
type threadKey struct{ node, thread int }

// rows groups events by (node, thread), each row sorted by start.
func (t *Trace) rows() (keys []threadKey, byRow map[threadKey][]Event) {
	byRow = make(map[threadKey][]Event)
	for _, e := range t.Events() {
		k := threadKey{e.Node, e.Thread}
		byRow[k] = append(byRow[k], e)
	}
	for k := range byRow {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].thread < keys[j].thread
	})
	return keys, byRow
}

// Validate checks trace well-formedness: non-negative durations and no
// overlapping events on the same (node, thread). A thread is a serial
// resource; overlap means the executor double-booked it.
func (t *Trace) Validate() error {
	keys, byRow := t.rows()
	for _, k := range keys {
		var prev *Event
		for i := range byRow[k] {
			e := &byRow[k][i]
			if e.End < e.Start {
				return fmt.Errorf("trace: %s on n%d/t%d has End < Start", e.Label, e.Node, e.Thread)
			}
			if prev != nil && e.Start < prev.End {
				return fmt.Errorf("trace: overlap on n%d/t%d: %s [%d,%d) vs %s [%d,%d)",
					k.node, k.thread, prev.Label, prev.Start, prev.End, e.Label, e.Start, e.End)
			}
			prev = e
		}
	}
	return nil
}

// ClassStat aggregates one task class.
type ClassStat struct {
	Class string
	Count int
	Busy  int64
}

// Summary is what the paper reads off a trace: how busy each class kept
// the machine, how long threads idled before their first task (the
// Fig 11 startup bubble), and the overall idle fraction.
type Summary struct {
	Span         int64 // makespan (ns)
	Threads      int
	ByClass      []ClassStat
	TotalBusy    int64
	IdleFraction float64 // 1 - busy / (threads * span)
	// StartupIdleMean is the mean over threads of the time between
	// execution start and the thread's first event.
	StartupIdleMean int64
	// StartupIdleFrac is StartupIdleMean / Span.
	StartupIdleFrac float64
}

// Summarize computes the summary.
func (t *Trace) Summarize() Summary {
	keys, byRow := t.rows()
	start, end := t.Span()
	s := Summary{Span: end - start, Threads: len(keys)}
	classes := map[string]*ClassStat{}
	var startupTotal int64
	for _, k := range keys {
		row := byRow[k]
		startupTotal += row[0].Start - start
		for _, e := range row {
			cs := classes[e.Class]
			if cs == nil {
				cs = &ClassStat{Class: e.Class}
				classes[e.Class] = cs
			}
			cs.Count++
			cs.Busy += e.Duration()
			s.TotalBusy += e.Duration()
		}
	}
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.ByClass = append(s.ByClass, *classes[n])
	}
	if s.Threads > 0 && s.Span > 0 {
		s.IdleFraction = 1 - float64(s.TotalBusy)/(float64(s.Threads)*float64(s.Span))
		s.StartupIdleMean = startupTotal / int64(s.Threads)
		s.StartupIdleFrac = float64(s.StartupIdleMean) / float64(s.Span)
	}
	return s
}

// String renders the summary with one line per class.
func (s Summary) String() string {
	out := fmt.Sprintf("span=%.3fs threads=%d idle=%.1f%% startup-idle=%.1f%%\n",
		float64(s.Span)/1e9, s.Threads, 100*s.IdleFraction, 100*s.StartupIdleFrac)
	for _, c := range s.ByClass {
		out += fmt.Sprintf("  %-10s count=%-6d busy=%.3fs\n", c.Class, c.Count, float64(c.Busy)/1e9)
	}
	return out
}

// Window returns a new trace containing only the events overlapping
// [from, to), with events clipped to the window — the "zoomed in" view
// of Fig 13, which magnifies part of Fig 12's trace so individual tasks
// can be discerned.
func (t *Trace) Window(from, to int64) *Trace {
	out := New()
	for _, e := range t.Events() {
		if e.End <= from || e.Start >= to {
			continue
		}
		c := e
		if c.Start < from {
			c.Start = from
		}
		if c.End > to {
			c.End = to
		}
		out.Add(c)
	}
	for _, c := range t.Counters() {
		if c.Ts >= from && c.Ts < to {
			out.AddCounter(c)
		}
	}
	return out
}

// RampStats returns the mean and max, over threads, of the time from
// execution start until the thread's first event of the given class.
// With class "GEMM" this quantifies the startup bubble of Fig 11: until
// input blocks arrive, workers have nothing to compute.
func (t *Trace) RampStats(class string) (mean, max int64) {
	keys, byRow := t.rows()
	start, _ := t.Span()
	var total int64
	n := 0
	for _, k := range keys {
		for _, e := range byRow[k] {
			if e.Class == class {
				d := e.Start - start
				total += d
				if d > max {
					max = d
				}
				n++
				break
			}
		}
	}
	if n > 0 {
		mean = total / int64(n)
	}
	return mean, max
}

// OverlapStats measures communication/computation overlap: the fraction
// of total communication time (events whose class is in commClasses)
// during which at least one compute event (any other class) was running
// on the same node. The original code's trace shows ~zero overlap
// (Fig 12/13); the PaRSEC variants show high overlap.
func (t *Trace) OverlapStats(commClasses map[string]bool) (commTime, overlapped int64) {
	// Per node, build compute intervals and comm intervals.
	type iv struct{ s, e int64 }
	compute := map[int][]iv{}
	comm := map[int][]iv{}
	for _, e := range t.Events() {
		if commClasses[e.Class] {
			comm[e.Node] = append(comm[e.Node], iv{e.Start, e.End})
		} else {
			compute[e.Node] = append(compute[e.Node], iv{e.Start, e.End})
		}
	}
	merge := func(ivs []iv) []iv {
		if len(ivs) == 0 {
			return nil
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
		out := []iv{ivs[0]}
		for _, v := range ivs[1:] {
			last := &out[len(out)-1]
			if v.s <= last.e {
				if v.e > last.e {
					last.e = v.e
				}
			} else {
				out = append(out, v)
			}
		}
		return out
	}
	for node, cs := range comm {
		merged := merge(compute[node])
		for _, c := range cs {
			commTime += c.e - c.s
			// Intersect c with merged compute intervals.
			for _, m := range merged {
				lo, hi := max64(c.s, m.s), min64(c.e, m.e)
				if hi > lo {
					overlapped += hi - lo
				}
			}
		}
	}
	return commTime, overlapped
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
