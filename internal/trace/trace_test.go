package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	t := New()
	// Node 0, thread 0: read then gemm; thread 1 idle at start.
	t.Add(Event{Node: 0, Thread: 0, Class: "READA", Label: "READA(0,0)", Start: 0, End: 100})
	t.Add(Event{Node: 0, Thread: 0, Class: "GEMM", Label: "GEMM(0,0)", Start: 100, End: 400})
	t.Add(Event{Node: 0, Thread: 1, Class: "GEMM", Label: "GEMM(1,0)", Start: 200, End: 500})
	t.Add(Event{Node: 1, Thread: 0, Class: "WRITE", Label: "WRITE(0)", Start: 450, End: 500})
	return t
}

func TestEventsSorted(t *testing.T) {
	tr := sampleTrace()
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.Node > b.Node || (a.Node == b.Node && a.Thread > b.Thread) {
			t.Fatalf("events not sorted: %+v before %+v", a, b)
		}
	}
}

func TestSpan(t *testing.T) {
	tr := sampleTrace()
	s, e := tr.Span()
	if s != 0 || e != 500 {
		t.Errorf("Span = [%d,%d], want [0,500]", s, e)
	}
	empty := New()
	if s, e := empty.Span(); s != 0 || e != 0 {
		t.Error("empty span not zero")
	}
}

func TestValidateDetectsOverlap(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	tr.Add(Event{Node: 0, Thread: 0, Class: "GEMM", Label: "bad", Start: 350, End: 360})
	if err := tr.Validate(); err == nil {
		t.Error("overlap not detected")
	}
	tr2 := New()
	tr2.Add(Event{Node: 0, Thread: 0, Class: "X", Label: "neg", Start: 10, End: 5})
	if err := tr2.Validate(); err == nil {
		t.Error("negative duration not detected")
	}
}

func TestSummarize(t *testing.T) {
	tr := sampleTrace()
	s := tr.Summarize()
	if s.Span != 500 || s.Threads != 3 {
		t.Fatalf("summary %+v", s)
	}
	// Busy: 100+300 + 300 + 50 = 750 over 3*500 = 1500 -> idle 0.5.
	if s.TotalBusy != 750 {
		t.Errorf("TotalBusy = %d", s.TotalBusy)
	}
	if s.IdleFraction < 0.49 || s.IdleFraction > 0.51 {
		t.Errorf("IdleFraction = %v", s.IdleFraction)
	}
	// Startup idle: thread starts at 0, 200, 450 -> mean 216.
	if s.StartupIdleMean != (0+200+450)/3 {
		t.Errorf("StartupIdleMean = %d", s.StartupIdleMean)
	}
	var gemm *ClassStat
	for i := range s.ByClass {
		if s.ByClass[i].Class == "GEMM" {
			gemm = &s.ByClass[i]
		}
	}
	if gemm == nil || gemm.Count != 2 || gemm.Busy != 600 {
		t.Errorf("GEMM stat %+v", gemm)
	}
	if !strings.Contains(s.String(), "GEMM") {
		t.Error("summary string missing class")
	}
}

func TestOverlapStats(t *testing.T) {
	tr := New()
	comm := map[string]bool{"READA": true}
	// Comm [0,100) with compute [50,150) on same node: 50 overlapped.
	tr.Add(Event{Node: 0, Thread: 0, Class: "READA", Start: 0, End: 100})
	tr.Add(Event{Node: 0, Thread: 1, Class: "GEMM", Start: 50, End: 150})
	// Comm on node 1 with no compute: no overlap.
	tr.Add(Event{Node: 1, Thread: 0, Class: "READA", Start: 0, End: 80})
	commTime, over := tr.OverlapStats(comm)
	if commTime != 180 {
		t.Errorf("commTime = %d, want 180", commTime)
	}
	if over != 50 {
		t.Errorf("overlapped = %d, want 50", over)
	}
}

func TestASCIIGantt(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.ASCIIGantt(&buf, 50); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "node 0") || !strings.Contains(out, "node 1") {
		t.Error("missing node headers")
	}
	if !strings.Contains(out, "G") || !strings.Contains(out, "legend:") {
		t.Error("missing glyphs or legend")
	}
	var empty bytes.Buffer
	if err := New().ASCIIGantt(&empty, 50); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "empty") {
		t.Error("empty trace not handled")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 4 events
		t.Errorf("CSV lines = %d", len(lines))
	}
	if lines[0] != "node,thread,class,label,start_ns,end_ns" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestWriteSVG(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteSVG(&buf, 400); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("not an SVG document")
	}
	if !strings.Contains(out, "#c0392b") { // GEMM red
		t.Error("missing GEMM color")
	}
	var empty bytes.Buffer
	if err := New().WriteSVG(&empty, 400); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAdd(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Add(Event{Node: i, Thread: 0, Class: "GEMM", Start: int64(j), End: int64(j + 1)})
			}
		}(i)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("Len = %d", tr.Len())
	}
}

// Property: Summarize busy time equals the sum of event durations, and
// idle fraction is in [0, 1], for arbitrary non-overlapping rows.
func TestPropertySummarize(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 64 {
			return true
		}
		tr := New()
		var cursor int64
		var want int64
		for i, d := range durs {
			dur := int64(d) + 1
			tr.Add(Event{Node: 0, Thread: i % 4, Class: "GEMM", Start: cursor, End: cursor + dur})
			cursor += dur + 10
			want += dur
		}
		if tr.Validate() != nil {
			return false
		}
		s := tr.Summarize()
		return s.TotalBusy == want && s.IdleFraction >= 0 && s.IdleFraction <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestGlyphAndColorFallbacks(t *testing.T) {
	if glyphFor("UNKNOWN") != 'U' || glyphFor("") != '?' {
		t.Error("glyph fallback")
	}
	if colorFor("UNKNOWN") != "#95a5a6" {
		t.Error("color fallback")
	}
}

func TestRampStats(t *testing.T) {
	tr := New()
	tr.Add(Event{Node: 0, Thread: 0, Class: "READA", Start: 0, End: 50})
	tr.Add(Event{Node: 0, Thread: 0, Class: "GEMM", Start: 100, End: 200})
	tr.Add(Event{Node: 0, Thread: 1, Class: "GEMM", Start: 300, End: 400})
	tr.Add(Event{Node: 1, Thread: 0, Class: "READA", Start: 0, End: 10})
	mean, max := tr.RampStats("GEMM")
	// Threads with GEMMs: (0,0) at 100, (0,1) at 300 -> mean 200, max 300.
	if mean != 200 || max != 300 {
		t.Errorf("RampStats = (%d, %d), want (200, 300)", mean, max)
	}
	if m, x := tr.RampStats("NOPE"); m != 0 || x != 0 {
		t.Errorf("missing class ramp = (%d, %d)", m, x)
	}
}

func TestWindow(t *testing.T) {
	tr := sampleTrace()
	z := tr.Window(150, 450)
	for _, e := range z.Events() {
		if e.Start < 150 || e.End > 450 {
			t.Fatalf("event outside window: %+v", e)
		}
	}
	// GEMM(0,0) [100,400) is clipped to [150,400); GEMM(1,0) [200,500) to
	// [200,450); READA [0,100) and WRITE [450,500) are dropped.
	if z.Len() != 2 {
		t.Errorf("window events = %d, want 2", z.Len())
	}
	s, e := z.Span()
	if s < 150 || e > 450 {
		t.Errorf("window span [%d,%d]", s, e)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var tasks, counters []map[string]any
	for _, e := range events {
		switch e["ph"] {
		case "X":
			tasks = append(tasks, e)
		case "C":
			counters = append(counters, e)
		}
	}
	if len(tasks) != 4 {
		t.Fatalf("task events = %d", len(tasks))
	}
	if tasks[0]["ph"] != "X" || tasks[0]["cat"] != "READA" {
		t.Errorf("first event: %v", tasks[0])
	}
	// The derived "busy workers" track must be present for both nodes.
	if len(counters) == 0 {
		t.Fatal("no counter samples in export")
	}
	nodes := map[float64]bool{}
	for _, c := range counters {
		if c["name"] != "busy workers" {
			t.Fatalf("unexpected counter %v", c["name"])
		}
		nodes[c["pid"].(float64)] = true
	}
	if !nodes[0] || !nodes[1] {
		t.Errorf("busy-workers tracks missing a node: %v", nodes)
	}
}

func TestWriteChromeTraceCounters(t *testing.T) {
	tr := sampleTrace()
	tr.AddCounter(Counter{Name: "ready tasks", Node: 0, Ts: 50, Value: 3})
	tr.AddCounter(Counter{Name: "ready tasks", Node: 0, Ts: 150, Value: 1})
	tr.AddCounter(Counter{Name: "comm bytes in flight", Node: 1, Ts: 75, Value: 4096})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	byName := map[string]int{}
	for _, e := range events {
		if e["ph"] == "C" {
			byName[e["name"].(string)]++
		}
	}
	if byName["ready tasks"] != 2 || byName["comm bytes in flight"] != 1 {
		t.Fatalf("counter samples = %v", byName)
	}
}

func TestCountersSortedAndWindowed(t *testing.T) {
	tr := New()
	tr.AddCounter(Counter{Name: "b", Node: 0, Ts: 20, Value: 1})
	tr.AddCounter(Counter{Name: "a", Node: 1, Ts: 10, Value: 2})
	tr.AddCounter(Counter{Name: "a", Node: 0, Ts: 30, Value: 3})
	cs := tr.Counters()
	if cs[0].Name != "a" || cs[0].Node != 0 || cs[1].Node != 1 || cs[2].Name != "b" {
		t.Fatalf("counters not sorted: %+v", cs)
	}
	tr.Add(Event{Node: 0, Thread: 0, Class: "X", Start: 0, End: 100})
	win := tr.Window(15, 25)
	if got := win.Counters(); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("windowed counters = %+v", got)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty export invalid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestEmptyTraceRenders(t *testing.T) {
	tr := New()
	var buf bytes.Buffer
	if err := tr.ASCIIGantt(&buf, 80); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty trace") {
		t.Errorf("empty Gantt output: %q", buf.String())
	}
	buf.Reset()
	if err := tr.WriteSVG(&buf, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("empty SVG missing root element")
	}
	s := tr.Summarize()
	if s.Span != 0 || s.Threads != 0 || s.IdleFraction != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSingleEventTrace(t *testing.T) {
	tr := New()
	tr.Add(Event{Node: 0, Thread: 0, Class: "GEMM", Label: "GEMM(0,0)", Start: 10, End: 20})
	s := tr.Summarize()
	if s.Span != 10 || s.Threads != 1 || s.TotalBusy != 10 {
		t.Fatalf("summary: %+v", s)
	}
	if s.IdleFraction != 0 {
		t.Errorf("idle = %g, want 0", s.IdleFraction)
	}
	var buf bytes.Buffer
	if err := tr.ASCIIGantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "G") {
		t.Error("single event missing from Gantt")
	}
}

func TestZeroDurationSpans(t *testing.T) {
	tr := New()
	tr.Add(Event{Node: 0, Thread: 0, Class: "NXTVAL", Label: "NXTVAL(0)", Start: 50, End: 50})
	tr.Add(Event{Node: 0, Thread: 0, Class: "GEMM", Label: "GEMM(0,0)", Start: 50, End: 150})
	if err := tr.Validate(); err != nil {
		t.Fatalf("zero-duration event rejected: %v", err)
	}
	s := tr.Summarize()
	if s.TotalBusy != 100 {
		t.Errorf("busy = %d", s.TotalBusy)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// The derived busy-workers track must never dip negative around the
	// zero-duration event.
	for _, e := range events {
		if e["ph"] == "C" {
			if v := e["args"].(map[string]any)["value"].(float64); v < 0 {
				t.Fatalf("busy workers went negative: %v", e)
			}
		}
	}
}
