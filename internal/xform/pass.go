package xform

import "fmt"

// Pass is one mechanical rewrite of a plan shape. Passes are pure:
// Apply returns the rewritten shape or an error when the rewrite's
// precondition fails (e.g. fissioning writes over a fused sort). The
// String form is the pass's name in a recipe listing.
type Pass interface {
	// Apply rewrites the shape.
	Apply(s Shape) (Shape, error)
	// String names the pass with its parameters.
	String() string
}

// SplitChain cuts every GEMM chain into segments of Height GEMMs, each
// accumulating into a private C buffer, with a reduction tree combining
// segment results (Fig 4). Height 1 is the paper's fully parallel
// organization (v2–v5).
type SplitChain struct {
	// Height is the segment height, >= 1.
	Height int
}

// Apply implements Pass.
func (p SplitChain) Apply(s Shape) (Shape, error) {
	if p.Height < 1 {
		return s, fmt.Errorf("xform: SplitChain height %d < 1", p.Height)
	}
	s.SegHeight = p.Height
	return s, nil
}

// String implements Pass.
func (p SplitChain) String() string { return fmt.Sprintf("SplitChain(%d)", p.Height) }

// FuseSegments multiplies the segment height by Factor, trading
// parallelism back for locality (the inverse direction of SplitChain).
// It requires an already-split chain; fusing all the way back to one
// segment is FuseChain.
type FuseSegments struct {
	// Factor is the height multiplier, >= 2.
	Factor int
}

// Apply implements Pass.
func (p FuseSegments) Apply(s Shape) (Shape, error) {
	if p.Factor < 2 {
		return s, fmt.Errorf("xform: FuseSegments factor %d < 2", p.Factor)
	}
	if s.SegHeight == 0 {
		return s, fmt.Errorf("xform: FuseSegments on an unsplit chain")
	}
	s.SegHeight *= p.Factor
	return s, nil
}

// String implements Pass.
func (p FuseSegments) String() string { return fmt.Sprintf("FuseSegments(%d)", p.Factor) }

// FuseChain restores the serial chain: one segment per chain, no
// reduction tree (v1's organization).
type FuseChain struct{}

// Apply implements Pass.
func (FuseChain) Apply(s Shape) (Shape, error) {
	s.SegHeight = 0
	return s, nil
}

// String implements Pass.
func (FuseChain) String() string { return "FuseChain" }

// ReshapeReduction sets the reduction-tree arity: fan-in per REDUCE
// task. Wider trees are shallower but serialize more additions inside
// each task.
type ReshapeReduction struct {
	// Arity is the fan-in, >= 2.
	Arity int
}

// Apply implements Pass.
func (p ReshapeReduction) Apply(s Shape) (Shape, error) {
	if p.Arity < 2 {
		return s, fmt.Errorf("xform: ReshapeReduction arity %d < 2", p.Arity)
	}
	s.TreeArity = p.Arity
	return s, nil
}

// String implements Pass.
func (p ReshapeReduction) String() string { return fmt.Sprintf("ReshapeReduction(%d)", p.Arity) }

// FissionSorts splits the merged SORT into one task per active SORT_4
// branch (Fig 6/7).
type FissionSorts struct{}

// Apply implements Pass.
func (FissionSorts) Apply(s Shape) (Shape, error) {
	s.SortFission = true
	return s, nil
}

// String implements Pass.
func (FissionSorts) String() string { return "FissionSorts" }

// FuseSorts merges the SORT_i tasks into one serial SORT per chain
// (Fig 5). Fused sorts leave nothing for per-branch writes to pair
// with, so write fission is cleared too.
type FuseSorts struct{}

// Apply implements Pass.
func (FuseSorts) Apply(s Shape) (Shape, error) {
	s.SortFission = false
	s.WriteFission = false
	return s, nil
}

// String implements Pass.
func (FuseSorts) String() string { return "FuseSorts" }

// FissionWrites pairs each SORT_i with its own WRITE_C_i (Fig 7).
// Requires fissioned sorts.
type FissionWrites struct{}

// Apply implements Pass.
func (FissionWrites) Apply(s Shape) (Shape, error) {
	if !s.SortFission {
		return s, fmt.Errorf("xform: FissionWrites requires fissioned sorts")
	}
	s.WriteFission = true
	return s, nil
}

// String implements Pass.
func (FissionWrites) String() string { return "FissionWrites" }

// FuseWrites merges the WRITE_C_i tasks into one WRITE_C per chain
// receiving every sorted matrix (Fig 5/6).
type FuseWrites struct{}

// Apply implements Pass.
func (FuseWrites) Apply(s Shape) (Shape, error) {
	s.WriteFission = false
	return s, nil
}

// String implements Pass.
func (FuseWrites) String() string { return "FuseWrites" }

// SpanWrites splits each fused WRITE across Span adjacent nodes
// (Fig 8), each instance receiving and accumulating only its slice.
// Requires fused writes.
type SpanWrites struct {
	// Span is the node count, >= 1.
	Span int
}

// Apply implements Pass.
func (p SpanWrites) Apply(s Shape) (Shape, error) {
	if p.Span < 1 {
		return s, fmt.Errorf("xform: SpanWrites span %d < 1", p.Span)
	}
	if s.WriteFission && p.Span > 1 {
		return s, fmt.Errorf("xform: SpanWrites requires fused writes")
	}
	s.WriteSpan = p.Span
	return s, nil
}

// String implements Pass.
func (p SpanWrites) String() string { return fmt.Sprintf("SpanWrites(%d)", p.Span) }

// Prioritize selects the priority scheme.
type Prioritize struct {
	// Scheme is the target scheme.
	Scheme PrioScheme
}

// Apply implements Pass.
func (p Prioritize) Apply(s Shape) (Shape, error) {
	switch p.Scheme {
	case PrioNone, PrioPaper:
		s.Prio = p.Scheme
		return s, nil
	}
	return s, fmt.Errorf("xform: Prioritize(%q): unknown scheme", p.Scheme)
}

// String implements Pass.
func (p Prioritize) String() string { return fmt.Sprintf("Prioritize(%s)", p.Scheme) }
