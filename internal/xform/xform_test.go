package xform

import (
	"strings"
	"testing"
)

func TestNamedRecipeShapes(t *testing.T) {
	// The five paper variants, as the old boolean structs described them:
	// (SerialGemms, SortFission, WriteFission, UsePriorities).
	want := map[string]Shape{
		"v1": {SegHeight: 0, TreeArity: 2, SortFission: true, WriteFission: true, WriteSpan: 1, Prio: PrioPaper},
		"v2": {SegHeight: 1, TreeArity: 2, SortFission: true, WriteFission: false, WriteSpan: 1, Prio: PrioNone},
		"v3": {SegHeight: 1, TreeArity: 2, SortFission: true, WriteFission: true, WriteSpan: 1, Prio: PrioPaper},
		"v4": {SegHeight: 1, TreeArity: 2, SortFission: true, WriteFission: false, WriteSpan: 1, Prio: PrioPaper},
		"v5": {SegHeight: 1, TreeArity: 2, SortFission: false, WriteFission: false, WriteSpan: 1, Prio: PrioPaper},
	}
	for _, r := range Named() {
		got := r.MustShape()
		if got != want[r.Name] {
			t.Errorf("%s: shape %+v, want %+v", r.Name, got, want[r.Name])
		}
	}
	if len(Named()) != 5 {
		t.Fatalf("Named() returned %d recipes, want 5", len(Named()))
	}
}

func TestPassPreconditions(t *testing.T) {
	cases := []struct {
		name  string
		pass  Pass
		shape Shape
	}{
		{"split0", SplitChain{Height: 0}, Base()},
		{"fuseseg-unsplit", FuseSegments{Factor: 2}, Base()},
		{"fuseseg-factor1", FuseSegments{Factor: 1}, mustShape(t, "seg=2")},
		{"reshape1", ReshapeReduction{Arity: 1}, Base()},
		{"fissionwrites-fused-sorts", FissionWrites{}, mustShape(t, "fission=none")},
		{"span-on-fissioned-writes", SpanWrites{Span: 2}, Base()},
		{"span0", SpanWrites{Span: 0}, mustShape(t, "fission=sorts")},
		{"prio-bogus", Prioritize{Scheme: "fifo"}, Base()},
	}
	for _, c := range cases {
		if _, err := c.pass.Apply(c.shape); err == nil {
			t.Errorf("%s: Apply succeeded, want precondition error", c.name)
		}
	}
}

func TestPassComposition(t *testing.T) {
	// SplitChain then FuseSegments lands on the product height.
	r := Recipe{Passes: []Pass{SplitChain{Height: 2}, FuseSegments{Factor: 3}}}
	if s := r.MustShape(); s.SegHeight != 6 {
		t.Errorf("split(2)+fuseseg(3): height %d, want 6", s.SegHeight)
	}
	// FuseChain undoes any split.
	r = Recipe{Passes: []Pass{SplitChain{Height: 4}, FuseChain{}}}
	if s := r.MustShape(); s.SegHeight != 0 {
		t.Errorf("split(4)+fusechain: height %d, want 0", s.SegHeight)
	}
	// FuseSorts clears write fission; FissionSorts alone does not restore it.
	r = Recipe{Passes: []Pass{FuseSorts{}, FissionSorts{}}}
	s := r.MustShape()
	if !s.SortFission || s.WriteFission {
		t.Errorf("fusesorts+fissionsorts: %+v, want fissioned sorts, fused writes", s)
	}
}

func TestNormalize(t *testing.T) {
	// Tree arity is moot on an unsplit chain.
	a := mustShape(t, "seg=full,tree=8")
	b := mustShape(t, "seg=full,tree=2")
	if a.Normalize() != b.Normalize() {
		t.Errorf("tree arity not normalized away at seg=full: %v vs %v", a, b)
	}
	// Span is moot under write fission (parse rejects span>1 there, so
	// exercise Normalize directly).
	c := Shape{SegHeight: 1, TreeArity: 2, SortFission: true, WriteFission: true, WriteSpan: 3, Prio: PrioPaper}
	if c.Normalize().WriteSpan != 1 {
		t.Errorf("span not normalized away under write fission: %v", c.Normalize())
	}
	// Distinct real dimensions survive.
	if mustShape(t, "seg=2,tree=3").Normalize() == mustShape(t, "seg=2,tree=4").Normalize() {
		t.Error("distinct tree arities normalized together")
	}
}

func TestParseGrammar(t *testing.T) {
	s, err := ParseShape("seg=4,tree=3,fission=sorts,prio=none,span=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Shape{SegHeight: 4, TreeArity: 3, SortFission: true, WriteFission: false, WriteSpan: 2, Prio: PrioNone}
	if s != want {
		t.Errorf("parsed %+v, want %+v", s, want)
	}
	// Omitted keys default to v1 (the base).
	if s := mustShape(t, "seg=1"); s != (Shape{SegHeight: 1, TreeArity: 2, SortFission: true, WriteFission: true, WriteSpan: 1, Prio: PrioPaper}) {
		t.Errorf("seg=1 defaults: %+v", s)
	}
	if s := mustShape(t, "seg=full"); s.SegHeight != 0 {
		t.Errorf("seg=full: height %d, want 0", s.SegHeight)
	}
	// Every error embeds the grammar listing.
	for _, bad := range []string{
		"", "seg", "seg=x", "seg=-1", "bogus=1", "fission=maybe", "prio=fifo",
		"span=0", "tree=1", "span=2,fission=writes", "span=2", // span needs fused writes
	} {
		_, err := ParseShape(bad)
		if err == nil {
			t.Errorf("ParseShape(%q) succeeded, want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "accepted recipes:") {
			t.Errorf("ParseShape(%q) error lacks grammar: %v", bad, err)
		}
	}
}

func TestParseNamedAndFlat(t *testing.T) {
	for _, name := range []string{"v1", "v2", "v3", "v4", "v5"} {
		r, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%s): %v", name, err)
		}
		if r.Name != name {
			t.Errorf("Parse(%s).Name = %q", name, r.Name)
		}
	}
	r, err := Parse("seg=1,fission=none")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.MustShape().Normalize(), mustRecipe(t, "v5").MustShape().Normalize(); got != want {
		t.Errorf("flat v5 spelling resolved to %v, want %v", got, want)
	}
	if _, err := Parse("v9"); err == nil || !strings.Contains(err.Error(), "accepted recipes:") {
		t.Errorf("Parse(v9): %v, want unknown-variant error with grammar", err)
	}
}

func TestFromShapeRoundTrip(t *testing.T) {
	shapes := []string{
		"seg=full", "seg=1", "seg=4,tree=3", "seg=2,fission=none",
		"seg=1,fission=sorts,span=4", "prio=none", "seg=8,tree=8,fission=none,prio=none,span=2",
	}
	for _, src := range shapes {
		s := mustShape(t, src)
		r, err := FromShape(s)
		if err != nil {
			t.Fatalf("FromShape(%s): %v", src, err)
		}
		if got := r.MustShape().Normalize(); got != s.Normalize() {
			t.Errorf("%s: round trip %v, want %v", src, got, s.Normalize())
		}
		if r.Name != s.Canon() {
			t.Errorf("%s: recipe name %q, want canon %q", src, r.Name, s.Canon())
		}
	}
	// Canonical strings re-parse to the same shape.
	for _, src := range shapes {
		s := mustShape(t, src)
		back, err := ParseShape(s.Canon())
		if err != nil {
			t.Fatalf("reparse %q: %v", s.Canon(), err)
		}
		if back.Normalize() != s.Normalize() {
			t.Errorf("canon %q reparsed to %v", s.Canon(), back)
		}
	}
}

func TestAppendDoesNotAliasPasses(t *testing.T) {
	base := Recipe{Passes: make([]Pass, 0, 8)}
	base.Passes = append(base.Passes, SplitChain{Height: 1})
	a, err := base.Append(FuseSorts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.Append(FuseWrites{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MustShape() == b.MustShape() {
		t.Error("branched appends collided (shared backing array)")
	}
	if got, want := a.MustShape(), mustRecipe(t, "v5").MustShape(); got != want {
		t.Errorf("append branch a: %v, want v5 %v", got, want)
	}
}

func mustShape(t *testing.T, src string) Shape {
	t.Helper()
	s, err := ParseShape(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRecipe(t *testing.T, name string) Recipe {
	t.Helper()
	r, err := Parse(name)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
