package xform

import (
	"fmt"
	"strings"
)

// Recipe is an ordered pass list applied to the base shape. A recipe IS
// a variant: the paper's v1–v5 are the five named recipes below, and the
// tuner's candidates are anonymous ones. Recipes with different pass
// lists may resolve to the same Shape — the shape, not the list, is
// what determines the generated graph.
type Recipe struct {
	// Name labels the recipe ("v4", or a canonical shape string for
	// derived recipes). Purely descriptive.
	Name string
	// Passes is the ordered rewrite list; empty means the base shape.
	Passes []Pass
}

// Shape applies the pass list to Base and returns the resolved shape.
func (r Recipe) Shape() (Shape, error) {
	s := Base()
	for _, p := range r.Passes {
		var err error
		if s, err = p.Apply(s); err != nil {
			return Shape{}, fmt.Errorf("%w (in recipe %s)", err, r)
		}
	}
	if err := s.Validate(); err != nil {
		return Shape{}, fmt.Errorf("%w (in recipe %s)", err, r)
	}
	return s, nil
}

// MustShape is Shape, panicking on error — for the named recipes and
// tests, whose pass lists are statically known to be valid.
func (r Recipe) MustShape() Shape {
	s, err := r.Shape()
	if err != nil {
		panic(err)
	}
	return s
}

// String renders the recipe as its name plus the pass list.
func (r Recipe) String() string {
	names := make([]string, len(r.Passes))
	for i, p := range r.Passes {
		names[i] = p.String()
	}
	list := "[" + strings.Join(names, " ") + "]"
	if r.Name == "" {
		return list
	}
	return r.Name + " " + list
}

// Append returns a copy of r with extra passes appended; the new
// recipe's name is the resolved canonical shape string. The receiver's
// pass slice is never aliased, so search loops can branch freely.
func (r Recipe) Append(extra ...Pass) (Recipe, error) {
	passes := make([]Pass, 0, len(r.Passes)+len(extra))
	passes = append(passes, r.Passes...)
	passes = append(passes, extra...)
	nr := Recipe{Passes: passes}
	s, err := nr.Shape()
	if err != nil {
		return Recipe{}, err
	}
	nr.Name = s.Canon()
	return nr, nil
}

// FromShape synthesizes the minimal pass list that rewrites Base into
// the given shape, in canonical order. The result round-trips:
// FromShape(s).MustShape().Normalize() == s.Normalize().
func FromShape(s Shape) (Recipe, error) {
	if err := s.Validate(); err != nil {
		return Recipe{}, err
	}
	s = s.Normalize()
	var passes []Pass
	if s.SegHeight > 0 {
		passes = append(passes, SplitChain{Height: s.SegHeight})
	}
	if s.TreeArity != 2 {
		passes = append(passes, ReshapeReduction{Arity: s.TreeArity})
	}
	switch s.Fission() {
	case "none":
		passes = append(passes, FuseSorts{})
	case "sorts":
		passes = append(passes, FuseWrites{})
	}
	if s.WriteSpan != 1 {
		passes = append(passes, SpanWrites{Span: s.WriteSpan})
	}
	if s.Prio != PrioPaper {
		passes = append(passes, Prioritize{Scheme: s.Prio})
	}
	return Recipe{Name: s.Canon(), Passes: passes}, nil
}

// Named returns the paper's five variants as recipes, in paper order.
// v1 is the base; the others are short rewrite sequences of it, which
// is the whole point: the hand-derived variant space is mechanical.
func Named() []Recipe {
	return []Recipe{
		{Name: "v1", Passes: nil},
		{Name: "v2", Passes: []Pass{SplitChain{Height: 1}, FuseWrites{}, Prioritize{Scheme: PrioNone}}},
		{Name: "v3", Passes: []Pass{SplitChain{Height: 1}}},
		{Name: "v4", Passes: []Pass{SplitChain{Height: 1}, FuseWrites{}}},
		{Name: "v5", Passes: []Pass{SplitChain{Height: 1}, FuseSorts{}}},
	}
}

// ByName returns the named recipe (v1..v5).
func ByName(name string) (Recipe, bool) {
	for _, r := range Named() {
		if r.Name == name {
			return r, true
		}
	}
	return Recipe{}, false
}

// Parse resolves a variant argument: a named recipe ("v1".."v5") or a
// flat recipe string in the Grammar syntax. Errors embed the grammar so
// CLI surfaces can validate up front.
func Parse(src string) (Recipe, error) {
	src = strings.TrimSpace(src)
	if r, ok := ByName(src); ok {
		return r, nil
	}
	if !strings.Contains(src, "=") {
		return Recipe{}, fmt.Errorf("xform: unknown variant %q\n%s", src, Grammar())
	}
	s, err := ParseShape(src)
	if err != nil {
		return Recipe{}, err
	}
	return FromShape(s)
}
