// Package xform turns the paper's hand-derived algorithmic variants into
// mechanical graph transformations, following Eijkhout's observation that
// latency-tolerance rewrites (chain splitting, reduction reshaping, task
// fission/fusion, priority assignment) are composable passes over a task
// graph rather than five bespoke programs.
//
// The package is deliberately split in two levels:
//
//   - Shape is the resolved plan-shaping state — the complete answer to
//     "what graph does this variant instantiate": GEMM segment height,
//     reduction-tree arity, SORT/WRITE fission, write span, priority
//     scheme. The ccsd builders consume a Shape; nothing else about a
//     variant reaches them.
//   - A Pass is one rewrite of a Shape (SplitChain, FuseSegments,
//     ReshapeReduction, FissionSorts, FissionWrites, SpanWrites,
//     Prioritize, and their inverses), and a Recipe is an ordered pass
//     list applied to the base shape. The paper's v1–v5 are five named
//     recipes; the tuner searches the recipe space by mutating pass
//     lists and scoring candidates on the discrete-event simulator.
package xform

import (
	"fmt"
	"strings"
)

// PrioScheme names a task-priority assignment scheme.
type PrioScheme string

// The priority schemes.
const (
	// PrioNone runs the scheduler most-recently-ready-first (v2, Fig 11).
	PrioNone PrioScheme = "none"
	// PrioPaper assigns the §IV-C expressions: priority decreases with
	// chain number; data-read tasks get offset +5·P and GEMMs +1·P,
	// building a prefetch pipeline of depth 5·P.
	PrioPaper PrioScheme = "paper"
)

// Shape is the resolved plan-shaping state a recipe produces: the
// complete, builder-facing description of one point in the variant
// space. It is a small comparable value, so search loops can use it
// directly as a visited-set key.
type Shape struct {
	// SegHeight is the GEMM segment height: 0 keeps each chain as one
	// serial segment sharing a C buffer (maximum locality, v1); k >= 1
	// cuts chains into segments of k GEMMs that run in parallel into
	// private buffers, followed by a reduction tree (Fig 4).
	SegHeight int
	// TreeArity is the reduction-tree fan-in (>= 2). The paper's trees
	// are binary; wider trees trade tree depth for serialization inside
	// each REDUCE task.
	TreeArity int
	// SortFission runs the up-to-four active SORT_4 branches as
	// independent SORT_i tasks (Fig 6/7); fused, one SORT task performs
	// them serially into a single accumulated Csorted (Fig 5).
	SortFission bool
	// WriteFission pairs each SORT_i with its own WRITE_C_i (Fig 7);
	// fused, a single WRITE_C receives every sorted matrix. Write
	// fission requires sort fission: there is one WRITE per sorted
	// matrix, so fissioned writes need fissioned sorts to pair with.
	WriteFission bool
	// WriteSpan > 1 splits each fused WRITE across that many adjacent
	// nodes (Fig 8), each instance accumulating only its slice. Only
	// meaningful without write fission; >= 1.
	WriteSpan int
	// Prio selects the priority scheme.
	Prio PrioScheme
}

// Base returns the root of the recipe space: v1's shape. Every recipe
// is a pass list applied to this — serial GEMM chains, binary reduction
// (vacuous while chains are unsplit), fissioned SORTs and WRITEs, unit
// write span, paper priorities.
func Base() Shape {
	return Shape{
		SegHeight:    0,
		TreeArity:    2,
		SortFission:  true,
		WriteFission: true,
		WriteSpan:    1,
		Prio:         PrioPaper,
	}
}

// Validate reports whether the shape is internally consistent.
func (s Shape) Validate() error {
	if s.SegHeight < 0 {
		return fmt.Errorf("xform: segment height %d < 0", s.SegHeight)
	}
	if s.TreeArity < 2 {
		return fmt.Errorf("xform: reduction-tree arity %d < 2", s.TreeArity)
	}
	if s.WriteSpan < 1 {
		return fmt.Errorf("xform: write span %d < 1", s.WriteSpan)
	}
	if s.WriteFission && !s.SortFission {
		return fmt.Errorf("xform: write fission requires sort fission (one WRITE per sorted matrix)")
	}
	if s.WriteFission && s.WriteSpan > 1 {
		return fmt.Errorf("xform: write span > 1 requires fused writes (fission=none or sorts)")
	}
	switch s.Prio {
	case PrioNone, PrioPaper:
	default:
		return fmt.Errorf("xform: unknown priority scheme %q (want none or paper)", s.Prio)
	}
	return nil
}

// Normalize zeroes the dimensions that cannot affect the generated
// graph, so that shapes which instantiate identical graphs compare
// equal: tree arity is moot while chains are unsplit (no reduction tree
// exists), and write span is moot under write fission (each WRITE
// already owns exactly one sorted matrix). Plan caching, tuner
// deduplication, and Canon all key off the normalized form.
func (s Shape) Normalize() Shape {
	if s.SegHeight == 0 {
		s.TreeArity = 2
	}
	if s.WriteFission {
		s.WriteSpan = 1
	}
	return s
}

// Fission renders the fission state as the grammar's three-valued
// token: "writes" (SORTs and WRITEs fissioned), "sorts" (SORTs only),
// or "none" (one SORT, one WRITE).
func (s Shape) Fission() string {
	switch {
	case s.WriteFission:
		return "writes"
	case s.SortFission:
		return "sorts"
	default:
		return "none"
	}
}

// Canon renders the normalized shape in the flat recipe grammar with
// every key present in fixed order. Equal canonical strings mean
// equal generated graphs for any workload; serve.PlanKey and the tuner
// both rely on that.
func (s Shape) Canon() string {
	s = s.Normalize()
	return fmt.Sprintf("seg=%d,tree=%d,fission=%s,prio=%s,span=%d",
		s.SegHeight, s.TreeArity, s.Fission(), s.Prio, s.WriteSpan)
}

// String is Canon.
func (s Shape) String() string { return s.Canon() }

// ParseShape parses the flat grammar ("seg=4,tree=2,fission=sorts,
// prio=paper,span=1"); omitted keys keep their Base values. It is the
// shape half of Parse — see Grammar for the accepted syntax.
func ParseShape(src string) (Shape, error) {
	s := Base()
	if strings.TrimSpace(src) == "" {
		return Shape{}, fmt.Errorf("xform: empty recipe string\n%s", Grammar())
	}
	for _, kv := range strings.Split(src, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Shape{}, fmt.Errorf("xform: bad recipe term %q (want key=value)\n%s", kv, Grammar())
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seg":
			if val == "full" {
				s.SegHeight = 0
				break
			}
			n, err := parseUint(key, val)
			if err != nil {
				return Shape{}, err
			}
			s.SegHeight = n
		case "tree":
			n, err := parseUint(key, val)
			if err != nil {
				return Shape{}, err
			}
			s.TreeArity = n
		case "fission":
			switch val {
			case "none":
				s.SortFission, s.WriteFission = false, false
			case "sorts":
				s.SortFission, s.WriteFission = true, false
			case "writes":
				s.SortFission, s.WriteFission = true, true
			default:
				return Shape{}, fmt.Errorf("xform: fission=%q (want none, sorts, or writes)\n%s", val, Grammar())
			}
		case "prio":
			switch PrioScheme(val) {
			case PrioNone, PrioPaper:
				s.Prio = PrioScheme(val)
			default:
				return Shape{}, fmt.Errorf("xform: prio=%q (want none or paper)\n%s", val, Grammar())
			}
		case "span":
			n, err := parseUint(key, val)
			if err != nil {
				return Shape{}, err
			}
			s.WriteSpan = n
		default:
			return Shape{}, fmt.Errorf("xform: unknown recipe key %q\n%s", key, Grammar())
		}
	}
	if err := s.Validate(); err != nil {
		return Shape{}, fmt.Errorf("%w\n%s", err, Grammar())
	}
	return s, nil
}

// parseUint parses a non-negative integer grammar value.
func parseUint(key, val string) (int, error) {
	n := 0
	if val == "" {
		return 0, fmt.Errorf("xform: %s= needs a value\n%s", key, Grammar())
	}
	for _, c := range val {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("xform: %s=%q is not a non-negative integer\n%s", key, val, Grammar())
		}
		n = n*10 + int(c-'0')
		if n > 1<<20 {
			return 0, fmt.Errorf("xform: %s=%q is out of range\n%s", key, val, Grammar())
		}
	}
	return n, nil
}

// Grammar returns the accepted recipe syntax, for up-front CLI
// validation messages.
func Grammar() string {
	return `accepted recipes:
  v1..v5                     the paper's named variants
  key=value[,key=value...]   a flat recipe; omitted keys keep v1 defaults:
    seg=N|full    GEMM segment height (full/0 = one serial chain; N>=1 segments of N)
    tree=N        reduction-tree arity, N>=2 (moot while seg=full)
    fission=F     none | sorts | writes (writes implies fissioned sorts)
    prio=S        none | paper (§IV-C chain-rank + read/GEMM offsets)
    span=N        fused-WRITE span across N adjacent nodes, N>=1 (needs fission!=writes)
  example: seg=4,tree=2,fission=sorts,prio=paper`
}
