package sched

import (
	"testing"

	"parsec/internal/ptg"
)

// inst builds a bare instance carrying only what the scheduling core
// reads: priority and creation sequence.
func inst(prio int64, seq int) *ptg.Instance {
	return &ptg.Instance{Ref: ptg.TaskRef{Class: "T", Args: ptg.A1(seq)}, Priority: prio, Seq: seq}
}

// TestBeforeTotalOrder pins the core's one total order: descending
// priority, ties broken by ascending creation sequence. Before this
// package existed the real runtime (readyHeap.Less) and the simulator
// (taskBefore) each carried a copy of this comparison; this test is the
// regression guard that the unified Before keeps exactly that order.
func TestBeforeTotalOrder(t *testing.T) {
	cases := []struct {
		name string
		a, b *ptg.Instance
		want bool
	}{
		{"higher priority first", inst(5, 9), inst(3, 0), true},
		{"lower priority later", inst(3, 0), inst(5, 9), false},
		{"tie broken by earlier seq", inst(4, 2), inst(4, 7), true},
		{"tie not broken by later seq", inst(4, 7), inst(4, 2), false},
		{"negative priorities order too", inst(-1, 0), inst(-2, 1), true},
		{"equal task not before itself", inst(4, 2), inst(4, 2), false},
	}
	for _, c := range cases {
		if got := Before(c.a, c.b); got != c.want {
			t.Errorf("%s: Before(p%d/s%d, p%d/s%d) = %v, want %v", c.name,
				c.a.Priority, c.a.Seq, c.b.Priority, c.b.Seq, got, c.want)
		}
	}
}

// TestHeapPopOrder pushes instances in scrambled order and checks the
// heap drains them in the Before order.
func TestHeapPopOrder(t *testing.T) {
	var h Heap[*ptg.Instance]
	for _, in := range []*ptg.Instance{
		inst(1, 4), inst(3, 1), inst(1, 2), inst(3, 0), inst(2, 3),
	} {
		h.PushTask(in)
	}
	want := []int{0, 1, 3, 2, 4} // by (prio desc, seq asc): (3,0) (3,1) (2,3) (1,2) (1,4)
	for i, seq := range want {
		in := h.PopTask()
		if in.Seq != seq {
			t.Fatalf("pop %d: seq = %d, want %d", i, in.Seq, seq)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not drained: %d left", h.Len())
	}
}

// TestQueueDiscipline pins the discipline rule: a queue is a LIFO stack
// only in the SharedQueue+LIFOOrder configuration; every other
// Policy×QueueMode combination serves Before order. Per-worker queues
// heap-order even under LIFOOrder so a steal always takes a victim's
// best task — the behavior both executors have always had.
func TestQueueDiscipline(t *testing.T) {
	push := []*ptg.Instance{inst(1, 0), inst(9, 1), inst(5, 2)}
	heapOrder := []int{1, 2, 0}
	lifoOrder := []int{2, 1, 0}
	for _, pol := range []Policy{PriorityOrder, LIFOOrder} {
		for _, mode := range []QueueMode{SharedQueue, PerWorker, PerWorkerSteal} {
			q := NewQueue(pol, mode)
			for _, in := range push {
				q.Push(in)
			}
			want := heapOrder
			if pol == LIFOOrder && mode == SharedQueue {
				want = lifoOrder
			}
			for i, seq := range want {
				if pk := q.Peek(); pk == nil || pk.Seq != seq {
					t.Fatalf("%v/%v peek %d: got %v, want seq %d", pol, mode, i, pk, seq)
				}
				in, left := q.Pop()
				if in.Seq != seq {
					t.Fatalf("%v/%v pop %d: seq = %d, want %d", pol, mode, i, in.Seq, seq)
				}
				if left != len(push)-1-i {
					t.Fatalf("%v/%v pop %d: left = %d, want %d", pol, mode, i, left, len(push)-1-i)
				}
			}
			if in, _ := q.Pop(); in != nil {
				t.Fatalf("%v/%v: pop on empty queue returned %v", pol, mode, in)
			}
		}
	}
}

// TestHomeQueuePinning pins the static assignment both executors share:
// queue Seq mod n, collapsing to queue 0 for a single queue.
func TestHomeQueuePinning(t *testing.T) {
	if got := HomeQueue(inst(0, 7), 1); got != 0 {
		t.Errorf("HomeQueue(seq 7, n=1) = %d, want 0", got)
	}
	if got := HomeQueue(inst(0, 7), 3); got != 1 {
		t.Errorf("HomeQueue(seq 7, n=3) = %d, want 1", got)
	}
	s := NewSet(4, PriorityOrder, SharedQueue, nil, nil)
	if s.Queues() != 1 {
		t.Errorf("SharedQueue set has %d queues, want 1", s.Queues())
	}
}

// TestSetStealBest checks the simulator's deterministic sibling steal:
// the thief takes the Before-best head among every queue but its own.
func TestSetStealBest(t *testing.T) {
	s := NewSet(3, PriorityOrder, PerWorkerSteal, nil, nil)
	// Home pinning is Seq%3: seq 0 -> q0 (the thief's own), seq 1 -> q1,
	// seq 5 -> q2.
	s.Push(inst(9, 0)) // own queue: must not be stolen from
	s.Push(inst(3, 1))
	s.Push(inst(7, 5))
	if in := s.StealBest(0); in == nil || in.Seq != 5 {
		t.Fatalf("steal = %v, want seq 5 (the best sibling head)", in)
	}
	if in := s.StealBest(0); in == nil || in.Seq != 1 {
		t.Fatalf("second steal = %v, want seq 1", in)
	}
	if in := s.StealBest(0); in != nil {
		t.Fatalf("third steal = %v, want nil (only own queue has work)", in)
	}
	if s.Total() != 1 {
		t.Fatalf("total = %d, want 1", s.Total())
	}
}

// TestSetFindPopWhere checks the migratable-task picker scans whole
// queues, not just heads: the best matching task may sit below a
// non-matching one.
func TestSetFindPopWhere(t *testing.T) {
	s := NewSet(2, PriorityOrder, PerWorkerSteal, nil, nil)
	s.Push(inst(9, 0)) // q0 head, not migratable below
	s.Push(inst(5, 2)) // q0, under the head
	s.Push(inst(1, 3)) // q1
	mig := func(in *ptg.Instance) bool { return in.Seq != 0 }
	if in := s.FindWhere(mig); in == nil || in.Seq != 2 {
		t.Fatalf("FindWhere = %v, want seq 2 (best matching, below a head)", in)
	}
	if s.Total() != 3 {
		t.Fatalf("FindWhere must not remove; total = %d", s.Total())
	}
	if in := s.PopWhere(mig); in == nil || in.Seq != 2 {
		t.Fatalf("PopWhere = %v, want seq 2", in)
	}
	if in := s.PopWhere(mig); in == nil || in.Seq != 3 {
		t.Fatalf("second PopWhere = %v, want seq 3", in)
	}
	if in := s.PopWhere(mig); in != nil {
		t.Fatalf("third PopWhere = %v, want nil", in)
	}
	if in := s.Pop(0); in == nil || in.Seq != 0 {
		t.Fatalf("remaining pop = %v, want seq 0", in)
	}
}

// scriptClock is a Substrate for tests: a settable clock, no blocking.
type scriptClock struct{ t int64 }

func (c *scriptClock) Now() int64 { return c.t }
func (c *scriptClock) Idle(int)   {}
func (c *scriptClock) Kick(int)   {}

// TestSetObserverEvents checks every queue transition emits one event
// with the op, the acting worker, the queue, the set-wide total, and
// the substrate timestamp.
func TestSetObserverEvents(t *testing.T) {
	clock := &scriptClock{}
	var got []Event
	s := NewSet(2, PriorityOrder, PerWorkerSteal, clock, func(e Event) { got = append(got, e) })
	clock.t = 10
	s.Push(inst(1, 0))
	s.Push(inst(2, 1))
	clock.t = 20
	s.Pop(0)
	clock.t = 30
	s.StealBest(0)
	want := []struct {
		op     Op
		worker int
		queue  int
		seq    int
		total  int
		ts     int64
	}{
		{OpEnqueue, -1, 0, 0, 1, 10},
		{OpEnqueue, -1, 1, 1, 2, 10},
		{OpPop, 0, 0, 0, 1, 20},
		{OpSteal, 0, 1, 1, 0, 30},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		e := got[i]
		if e.Op != w.op || e.Worker != w.worker || e.Queue != w.queue ||
			e.Inst.Seq != w.seq || e.Total != w.total || e.Ts != w.ts {
			t.Errorf("event %d = {%v w%d q%d seq%d total%d ts%d}, want {%v w%d q%d seq%d total%d ts%d}",
				i, e.Op, e.Worker, e.Queue, e.Inst.Seq, e.Total, e.Ts,
				w.op, w.worker, w.queue, w.seq, w.total, w.ts)
		}
	}
}

// TestRNGGolden pins the per-worker xorshift streams to the values the
// sharded runtime has produced since PR 1, so historical schedules stay
// reproducible across refactors.
func TestRNGGolden(t *testing.T) {
	golden := map[int][]uint64{
		0: {0x40822041, 0x100041060c011441, 0x9b1e842f6e862629, 0xf554f503555d8025},
		1: {0xdc1b77aeca752d6e, 0x54f02db3166f5cb4, 0xd624c3e45e182f0d, 0xbfaad22bed687c13},
		2: {0xb836ef5c5764bb1b, 0xdbe19c7408ddd4ad, 0x6f15190ca5a4e444, 0x04ea761f30463c8c},
	}
	for w, want := range golden {
		rng := NewRNG(w)
		for i, x := range want {
			if got := rng.Next(); got != x {
				t.Errorf("worker %d draw %d = %#x, want %#x", w, i, got, x)
			}
		}
	}
}

// TestEachVictimProbeOrder checks the randomized probe: one draw picks
// the start, probing proceeds cyclically skipping the thief, and the
// walk stops at the first successful visit.
func TestEachVictimProbeOrder(t *testing.T) {
	// Worker 1's first three draws mod 4 are 2, 0, 1 (see TestRNGGolden).
	rng := NewRNG(1)
	var order []int
	if found := EachVictim(&rng, 1, 4, func(v int) bool {
		order = append(order, v)
		return false
	}); found {
		t.Fatal("EachVictim reported success with no successful visit")
	}
	if want := []int{2, 3, 0}; !equalInts(order, want) {
		t.Fatalf("probe order = %v, want %v (start 2, cyclic, skip self)", order, want)
	}
	// Second walk starts at 0; stopping at the first visit must report
	// success and visit nothing further.
	order = order[:0]
	if found := EachVictim(&rng, 1, 4, func(v int) bool {
		order = append(order, v)
		return true
	}); !found {
		t.Fatal("EachVictim did not report the successful visit")
	}
	if want := []int{0}; !equalInts(order, want) {
		t.Fatalf("early-stop probe order = %v, want %v", order, want)
	}
}

// TestEachVictimSoloWorker checks a lone worker draws nothing: there is
// no victim to probe, so the stream must not advance.
func TestEachVictimSoloWorker(t *testing.T) {
	rng := NewRNG(0)
	before := rng
	if EachVictim(&rng, 0, 1, func(int) bool { t.Fatal("visited a victim with n=1"); return true }) {
		t.Fatal("EachVictim reported success with n=1")
	}
	if rng != before {
		t.Fatal("EachVictim advanced the rng stream with no victims to probe")
	}
}

// TestEnumStrings pins the names the CLI tables and flags render.
func TestEnumStrings(t *testing.T) {
	if PriorityOrder.String() != "priority" || LIFOOrder.String() != "lifo" {
		t.Errorf("Policy strings = %q, %q", PriorityOrder.String(), LIFOOrder.String())
	}
	if SharedQueue.String() != "shared" || PerWorker.String() != "pinned" || PerWorkerSteal.String() != "pinned-steal" {
		t.Errorf("QueueMode strings = %q, %q, %q",
			SharedQueue.String(), PerWorker.String(), PerWorkerSteal.String())
	}
	if OpEnqueue.String() != "enqueue" || OpPop.String() != "pop" || OpSteal.String() != "steal" {
		t.Errorf("Op strings = %q, %q, %q", OpEnqueue.String(), OpPop.String(), OpSteal.String())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
