package sched

// RNG is the xorshift64 stream a worker draws steal-probe randomness
// from. It is deliberately tiny and deterministic: given the same
// worker index and the same draw count, every substrate reproduces the
// same probe order, which is what lets the conformance suite replay the
// real runtime's victim choices under a scripted substrate.
type RNG uint64

// NewRNG returns worker w's generator, seeded exactly as the sharded
// runtime has seeded its per-worker streams since PR 1
// (w*0x9E3779B97F4A7C15 + 1), so historical schedules remain
// reproducible.
func NewRNG(w int) RNG {
	return RNG(uint64(w)*0x9E3779B97F4A7C15 + 1)
}

// Next advances the stream and returns the next draw.
func (r *RNG) Next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = RNG(x)
	return x
}

// EachVictim visits the potential steal victims of worker self among n
// queues in a randomized probe order — one rng draw selects the start,
// then probing proceeds cyclically, skipping self — stopping early when
// visit returns true. It reports whether any visit did. This is the
// real runtime's victim selection (PaRSEC's randomized steal, §IV-D):
// probing one victim at a time means one lock held at a time, where the
// simulator's StealBest can afford a global view.
func EachVictim(rng *RNG, self, n int, visit func(v int) bool) bool {
	if n <= 1 {
		return false
	}
	start := int(rng.Next() % uint64(n))
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == self {
			continue
		}
		if visit(v) {
			return true
		}
	}
	return false
}
