package sched

import "parsec/internal/ptg"

// Op identifies one kind of scheduling decision reported to an Observer.
type Op int

const (
	// OpEnqueue is a ready task landing on a queue.
	OpEnqueue Op = iota
	// OpPop is a worker taking the next task from its own queue.
	OpPop
	// OpSteal is a task leaving a queue that is not the taker's own: an
	// intra-node steal from a sibling, or a migratable task picked for
	// inter-node re-dispatch.
	OpSteal
)

// String names the op ("enqueue", "pop", "steal").
func (o Op) String() string {
	return [...]string{"enqueue", "pop", "steal"}[o]
}

// Event is one scheduling decision, delivered to the Observer as it is
// made. Executors bridge events into the trace/obsv pipelines (the
// simulator's ready-task counter track is fed this way) and the
// conformance suite records them to compare decisions across backends.
type Event struct {
	Op Op
	// Worker is the acting worker (OpPop, OpSteal), or -1 when the
	// decision is not attributable to one (enqueues, the inter-node
	// migratable pick made on a remote thief's behalf).
	Worker int
	// Queue is the queue acted on — the destination for OpEnqueue, the
	// popped queue for OpPop, the victim for OpSteal.
	Queue int
	// Inst is the task moved.
	Inst *ptg.Instance
	// Total is the number of tasks queued across the whole Set after
	// the op (-1 when the emitter does not track it).
	Total int
	// Ts is the substrate time the decision was made at (0 when the Set
	// has no substrate).
	Ts int64
}

// Observer receives scheduling events. A nil Observer costs nothing.
// Observers are called synchronously from scheduling hot paths — in the
// real runtime under a shard lock — so they must be cheap and must not
// call back into the scheduler.
type Observer func(Event)

// Set is the ready-queue state of one scheduling domain — one simulated
// node, or one shared-memory process — implementing the QueueMode
// semantics over n queues: pinning (Home), popping, best-head sibling
// steal, and the whole-set migratable-task pick behind inter-node
// steal. It is not synchronized (see Queue).
type Set struct {
	queues []Queue
	mode   QueueMode
	sub    Substrate
	obs    Observer
	total  int
}

// NewSet returns a Set of n queues (n must be 1 for SharedQueue) with
// the discipline implied by the policy and mode. sub, if non-nil,
// timestamps observer events; obs, if non-nil, receives every decision.
func NewSet(n int, pol Policy, mode QueueMode, sub Substrate, obs Observer) *Set {
	if mode == SharedQueue {
		n = 1
	}
	s := &Set{queues: make([]Queue, n), mode: mode, sub: sub, obs: obs}
	for i := range s.queues {
		s.queues[i] = NewQueue(pol, mode)
	}
	return s
}

// Queues returns the number of queues.
func (s *Set) Queues() int { return len(s.queues) }

// Len returns the depth of one queue.
func (s *Set) Len(q int) int { return s.queues[q].Len() }

// Total returns the number of tasks queued across the whole set.
func (s *Set) Total() int { return s.total }

// Home returns the queue a ready instance is pinned to (HomeQueue over
// this set's queue count).
func (s *Set) Home(in *ptg.Instance) int { return HomeQueue(in, len(s.queues)) }

// HomeQueue is the static pinning both executors share: a ready
// instance lands on queue Seq mod n (queue 0 when there is only one).
func HomeQueue(in *ptg.Instance, n int) int {
	if n == 1 {
		return 0
	}
	return in.Seq % n
}

// Push enqueues a ready instance on its home queue.
func (s *Set) Push(in *ptg.Instance) {
	q := s.Home(in)
	s.queues[q].Push(in)
	s.total++
	s.emit(Event{Op: OpEnqueue, Worker: -1, Queue: q, Inst: in, Total: s.total})
}

// Pop takes the next task from worker wid's own queue (queue 0 in
// SharedQueue mode), or nil.
func (s *Set) Pop(wid int) *ptg.Instance {
	q := wid
	if len(s.queues) == 1 {
		q = 0
	}
	in, _ := s.queues[q].Pop()
	if in != nil {
		s.total--
		s.emit(Event{Op: OpPop, Worker: wid, Queue: q, Inst: in, Total: s.total})
	}
	return in
}

// StealBest takes the Before-best task among the head tasks of every
// queue other than worker wid's own, or nil. This is the deterministic
// sibling steal the discrete-event executor uses: with the global view
// a simulator has for free, the thief takes the best ready task on the
// node. (The real runtime's randomized probe is EachVictim; both live
// here so neither can drift.)
func (s *Set) StealBest(wid int) *ptg.Instance {
	best := -1
	for q := range s.queues {
		if q == wid || s.queues[q].Len() == 0 {
			continue
		}
		if best < 0 || Before(s.queues[q].Peek(), s.queues[best].Peek()) {
			best = q
		}
	}
	if best < 0 {
		return nil
	}
	in, _ := s.queues[best].Pop()
	s.total--
	s.emit(Event{Op: OpSteal, Worker: wid, Queue: best, Inst: in, Total: s.total})
	return in
}

// PopQueue removes and returns the best task of one specific queue on
// worker wid's behalf, or nil if that queue is empty. It is the take
// half of the randomized probe steal (EachVictim picks the victim, a
// PopQueue on it takes its best task), emitting OpSteal when the queue
// is not the worker's own and OpPop when it is.
func (s *Set) PopQueue(q, wid int) *ptg.Instance {
	in, _ := s.queues[q].Pop()
	if in == nil {
		return nil
	}
	s.total--
	op := OpSteal
	if q == wid {
		op = OpPop
	}
	s.emit(Event{Op: op, Worker: wid, Queue: q, Inst: in, Total: s.total})
	return in
}

// FindWhere returns the Before-best queued instance satisfying ok
// without removing it, or nil. Queues are scanned whole — not just
// heads — because the inter-node steal may only move migratable classes
// and the best migratable task can sit below a pinned one.
func (s *Set) FindWhere(ok func(*ptg.Instance) bool) *ptg.Instance {
	in, _, _ := s.findWhere(ok)
	return in
}

// PopWhere removes and returns the Before-best queued instance
// satisfying ok, or nil.
func (s *Set) PopWhere(ok func(*ptg.Instance) bool) *ptg.Instance {
	in, q, i := s.findWhere(ok)
	if in == nil {
		return nil
	}
	s.queues[q].removeAt(i)
	s.total--
	s.emit(Event{Op: OpSteal, Worker: -1, Queue: q, Inst: in, Total: s.total})
	return in
}

// findWhere locates the Before-best matching instance and its queue and
// backing-slice index.
func (s *Set) findWhere(ok func(*ptg.Instance) bool) (best *ptg.Instance, bq, bi int) {
	bq, bi = -1, -1
	for q := range s.queues {
		for i, in := range s.queues[q].items() {
			if !ok(in) {
				continue
			}
			if best == nil || Before(in, best) {
				best, bq, bi = in, q, i
			}
		}
	}
	return best, bq, bi
}

// emit delivers an event to the observer, if any, stamping it with the
// substrate clock.
func (s *Set) emit(e Event) {
	if s.obs == nil {
		return
	}
	if s.sub != nil {
		e.Ts = s.sub.Now()
	}
	s.obs(e)
}
