package sched

import "parsec/internal/ptg"

// Queue is one ready queue of PTG task instances. Its discipline is
// fixed at construction: a Before-ordered priority heap, or — only for
// the shared-queue LIFO configuration — a plain stack serving the most
// recently enqueued task first. Per-worker queues always use the heap
// regardless of policy, so a steal always takes a victim's best task;
// this matches what both executors have always done and the conformance
// suite pins it.
//
// Queue is not synchronized. The runtime wraps each queue in its shard
// mutex; the discrete-event simulator runs one process at a time and
// needs no lock.
type Queue struct {
	lifo  bool
	heap  Heap[*ptg.Instance]
	stack []*ptg.Instance
}

// NewQueue returns an empty queue with the discipline implied by the
// policy and queue mode (see Queue).
func NewQueue(pol Policy, mode QueueMode) Queue {
	return Queue{lifo: pol == LIFOOrder && mode == SharedQueue}
}

// Len returns the number of queued tasks.
func (q *Queue) Len() int {
	if q.lifo {
		return len(q.stack)
	}
	return len(q.heap)
}

// Push enqueues a ready instance and returns the resulting depth (the
// runtime's shards mirror depth transitions into lock-free emptiness
// hints).
func (q *Queue) Push(in *ptg.Instance) int {
	if q.lifo {
		q.stack = append(q.stack, in)
		return len(q.stack)
	}
	q.heap.PushTask(in)
	return len(q.heap)
}

// Pop dequeues the next instance under the queue's discipline, returning
// it with the remaining depth; (nil, 0) if the queue is empty.
func (q *Queue) Pop() (*ptg.Instance, int) {
	if q.lifo {
		n := len(q.stack)
		if n == 0 {
			return nil, 0
		}
		in := q.stack[n-1]
		q.stack[n-1] = nil
		q.stack = q.stack[:n-1]
		return in, n - 1
	}
	if len(q.heap) == 0 {
		return nil, 0
	}
	return q.heap.PopTask(), len(q.heap)
}

// Peek returns the instance Pop would return without removing it, or
// nil.
func (q *Queue) Peek() *ptg.Instance {
	if q.lifo {
		if n := len(q.stack); n > 0 {
			return q.stack[n-1]
		}
		return nil
	}
	if len(q.heap) > 0 {
		return q.heap[0]
	}
	return nil
}

// items exposes the backing slice (heap order or stack order) for
// whole-queue scans like the migratable-task picker.
func (q *Queue) items() []*ptg.Instance {
	if q.lifo {
		return q.stack
	}
	return q.heap
}

// removeAt removes and returns the instance at items() index i.
func (q *Queue) removeAt(i int) *ptg.Instance {
	if q.lifo {
		in := q.stack[i]
		q.stack = append(q.stack[:i], q.stack[i+1:]...)
		return in
	}
	return q.heap.RemoveAt(i)
}
