package sched

import "container/heap"

// Task is the minimal view the scheduling core needs of a schedulable
// unit. ptg.Instance implements it for the PTG executors; dtd's
// in-memory DAG nodes implement it for the Dynamic Task Discovery
// engine.
type Task interface {
	// SchedPriority is the task's scheduling priority; higher runs
	// first.
	SchedPriority() int64
	// SchedSeq is the task's deterministic creation ordinal (the
	// instance sequence number for PTG tasks, the insertion index for
	// DTD tasks); lower breaks priority ties.
	SchedSeq() int
}

// Before reports whether a should run before b under the core's one
// total order: descending priority, then ascending creation sequence.
// Every ready queue, steal pick, and migratable-task choice in the repo
// resolves ties through this function, so the simulator and the real
// runtime cannot drift apart on tie-breaks; TestBeforeTotalOrder pins
// the order.
func Before[T Task](a, b T) bool {
	if pa, pb := a.SchedPriority(), b.SchedPriority(); pa != pb {
		return pa > pb
	}
	return a.SchedSeq() < b.SchedSeq()
}

// Heap is a priority heap ordered by Before: the heap's root is the
// task that should run next. It implements container/heap.Interface;
// callers can use PushTask/PopTask instead of the heap package.
type Heap[T Task] []T

// Len returns the number of queued tasks.
func (h Heap[T]) Len() int { return len(h) }

// Less orders the heap by Before.
func (h Heap[T]) Less(i, j int) bool { return Before(h[i], h[j]) }

// Swap exchanges two entries.
func (h Heap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push appends an entry (container/heap protocol; use PushTask).
func (h *Heap[T]) Push(x any) { *h = append(*h, x.(T)) }

// Pop removes the last entry (container/heap protocol; use PopTask).
func (h *Heap[T]) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	var zero T
	old[n-1] = zero // drop the reference for the garbage collector
	*h = old[:n-1]
	return x
}

// PushTask adds a task, restoring heap order.
func (h *Heap[T]) PushTask(t T) { heap.Push(h, t) }

// PopTask removes and returns the Before-best task. The heap must be
// nonempty.
func (h *Heap[T]) PopTask() T { return heap.Pop(h).(T) }

// RemoveAt removes and returns the task at heap index i, restoring heap
// order (for pickers that choose a victim by scanning, like the
// migratable-task steal).
func (h *Heap[T]) RemoveAt(i int) T { return heap.Remove(h, i).(T) }
