// Conformance suite: proves the real shared-memory runtime, the
// distributed discrete-event simulator, and the socket-based
// distributed runtime take identical scheduling decisions now that all
// three consume internal/sched. Pop-order equivalence is asserted for
// every Policy×QueueMode combination on the same generated DAGs at a
// single worker (where a schedule is a pure function of the decision
// core), steal-victim choice is pinned under a scripted substrate, and
// inter-node steal is checked against its behavior-class invariants
// (non-migratable classes never leave their affinity node; imbalance
// produces re-dispatches).
package sched_test

import (
	"fmt"
	"sync"
	"testing"

	"parsec/internal/cluster"
	"parsec/internal/ga"
	"parsec/internal/netrun"
	"parsec/internal/ptg"
	"parsec/internal/runtime"
	"parsec/internal/sched"
	"parsec/internal/sim"
	"parsec/internal/simexec"
)

// confChains builds c dependency chains of length l with chain-varying
// priorities (including deliberate ties so the Seq tie-break is
// exercised), runnable on both executors: bodies for the runtime, costs
// and affinities for the simulator.
func confChains(c, l, nodes int) *ptg.Graph {
	g := ptg.NewGraph("conf-chains")
	step := g.Class("STEP")
	step.Domain = func(emit func(ptg.Args)) {
		for ci := 0; ci < c; ci++ {
			for s := 0; s < l; s++ {
				emit(ptg.A2(ci, s))
			}
		}
	}
	// Every pair of adjacent chains shares a priority level, so the
	// schedule depends on the Seq tie-break the core pins.
	step.Priority = func(a ptg.Args) int64 { return int64((c - a[0]) / 2) }
	step.Affinity = func(a ptg.Args) int { return a[0] % nodes }
	step.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: 1e7} }
	step.AddFlow("D", ptg.RW).
		InNew(func(a ptg.Args) bool { return a[1] == 0 }, func(a ptg.Args) int64 { return 8 }).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "STEP", Args: ptg.A2(a[0], a[1]-1)}, "D"
		}).
		Out(func(a ptg.Args) bool { return a[1] < l-1 }, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "STEP", Args: ptg.A2(a[0], a[1]+1)}, "D"
		})
	return g
}

// confFanout builds one SRC releasing n independent LEAF tasks whose
// priorities cycle through a few levels: after SRC completes the whole
// frontier is ready at once, stressing pure queue-ordering decisions.
func confFanout(n int) *ptg.Graph {
	g := ptg.NewGraph("conf-fanout")
	src := g.Class("SRC")
	src.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	src.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: 1e7} }
	f := src.AddFlow("D", ptg.Write)
	f.InNew(nil, func(a ptg.Args) int64 { return 8 })
	for i := 0; i < n; i++ {
		i := i
		f.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "LEAF", Args: ptg.A1(i)}, "D"
		})
	}
	src.Body = func(ctx *ptg.Ctx) { ctx.Out[0] = 1 }

	leaf := g.Class("LEAF")
	leaf.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	leaf.Priority = func(a ptg.Args) int64 { return int64(a[0] % 3) }
	leaf.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: 1e7} }
	leaf.AddFlow("D", ptg.Read).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "SRC", Args: ptg.A1(0)}, "D"
		})
	return g
}

// takeOrder extracts the dispatch order — the refs of OpPop and OpSteal
// events — from a recorded decision stream.
func takeOrder(events []sched.Event) []string {
	var order []string
	for _, e := range events {
		if e.Op == sched.OpPop || e.Op == sched.OpSteal {
			order = append(order, e.Inst.Ref.String())
		}
	}
	return order
}

// runtimeDecisions executes the graph on the real runtime and returns
// the scheduling decision stream. The recorder locks because the
// observer contract allows concurrent workers, even though these tests
// run one.
func runtimeDecisions(t *testing.T, g *ptg.Graph, pol sched.Policy, mode sched.QueueMode, workers int) []sched.Event {
	t.Helper()
	var mu sync.Mutex
	var events []sched.Event
	_, err := runtime.Run(g, runtime.Config{
		Workers: workers,
		Policy:  pol,
		Queues:  mode,
		SchedObserver: func(e sched.Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("runtime %v/%v: %v", pol, mode, err)
	}
	return events
}

// simexecDecisions executes the graph on the simulated cluster and
// returns the scheduling decision stream.
func simexecDecisions(t *testing.T, g *ptg.Graph, pol sched.Policy, mode sched.QueueMode, nodes, cores int, steal bool) ([]sched.Event, simexec.Result) {
	t.Helper()
	cfg := cluster.CascadeLike()
	cfg.Nodes = nodes
	cfg.CoresPerNode = cores
	cfg.JitterFrac = 0
	eng := sim.NewEngine()
	m := cluster.New(eng, cfg)
	var events []sched.Event
	res, err := simexec.Run(g, m, ga.NewSim(m), simexec.Config{
		CoresPerNode:   cores,
		Policy:         pol,
		Queues:         mode,
		InterNodeSteal: steal,
		SchedObserver:  func(e sched.Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatalf("simexec %v/%v: %v", pol, mode, err)
	}
	return events, res
}

// netrunDecisions executes the graph on the socket runtime at one rank
// and returns the scheduling decision stream. build must construct a
// fresh graph per call — RunGraph builds once for the coordinator's
// task count and once for the rank's tracker.
func netrunDecisions(t *testing.T, build func() *ptg.Graph, pol sched.Policy, mode sched.QueueMode, workers int) []sched.Event {
	t.Helper()
	var mu sync.Mutex
	var events []sched.Event
	_, err := netrun.RunGraph(netrun.Config{
		Ranks:   1,
		Workers: workers,
		Policy:  pol,
		Queues:  mode,
		SchedObserver: func(e sched.Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	}, func(rank int) (*ptg.Graph, error) { return build(), nil })
	if err != nil {
		t.Fatalf("netrun %v/%v: %v", pol, mode, err)
	}
	return events
}

// TestPopOrderEquivalence is the core conformance claim: at one worker
// the schedule is a pure function of the decision core, so the real
// runtime, the simulator, and the socket runtime must dispatch the same
// generated DAG in the same order for every Policy×QueueMode
// combination.
func TestPopOrderEquivalence(t *testing.T) {
	graphs := []struct {
		name  string
		build func() *ptg.Graph
		tasks int
	}{
		{"chains", func() *ptg.Graph { return confChains(6, 5, 1) }, 30},
		{"fanout", func() *ptg.Graph { return confFanout(24) }, 25},
	}
	for _, pol := range []sched.Policy{sched.PriorityOrder, sched.LIFOOrder} {
		for _, mode := range []sched.QueueMode{sched.SharedQueue, sched.PerWorker, sched.PerWorkerSteal} {
			for _, gr := range graphs {
				t.Run(fmt.Sprintf("%v/%v/%s", pol, mode, gr.name), func(t *testing.T) {
					real := takeOrder(runtimeDecisions(t, gr.build(), pol, mode, 1))
					simEv, _ := simexecDecisions(t, gr.build(), pol, mode, 1, 1, false)
					sim := takeOrder(simEv)
					net := takeOrder(netrunDecisions(t, gr.build, pol, mode, 1))
					if len(real) != gr.tasks {
						t.Fatalf("runtime dispatched %d tasks, want %d", len(real), gr.tasks)
					}
					if len(sim) != gr.tasks {
						t.Fatalf("simexec dispatched %d tasks, want %d", len(sim), gr.tasks)
					}
					if len(net) != gr.tasks {
						t.Fatalf("netrun dispatched %d tasks, want %d", len(net), gr.tasks)
					}
					for i := range real {
						if real[i] != sim[i] {
							t.Fatalf("dispatch %d diverges: runtime %s, simexec %s\nruntime: %v\nsimexec: %v",
								i, real[i], sim[i], real, sim)
						}
						if real[i] != net[i] {
							t.Fatalf("dispatch %d diverges: runtime %s, netrun %s\nruntime: %v\nnetrun: %v",
								i, real[i], net[i], real, net)
						}
					}
				})
			}
		}
	}
}

// TestSimexecDecisionsMatchShadowModel replays the simulator's decision
// stream at several workers per node against a shadow copy of the
// core's queue state: every pop and steal the executor reports must be
// exactly the task a freestanding sched.Set would hand out at that
// point. This catches an executor that bypasses or reorders around the
// core even when the end-to-end makespan looks right.
func TestSimexecDecisionsMatchShadowModel(t *testing.T) {
	const nodes, cores = 2, 2
	for _, pol := range []sched.Policy{sched.PriorityOrder, sched.LIFOOrder} {
		for _, mode := range []sched.QueueMode{sched.SharedQueue, sched.PerWorker, sched.PerWorkerSteal} {
			t.Run(fmt.Sprintf("%v/%v", pol, mode), func(t *testing.T) {
				events, _ := simexecDecisions(t, confChains(8, 4, nodes), pol, mode, nodes, cores, false)
				shadow := make([]*sched.Set, nodes)
				for n := range shadow {
					shadow[n] = sched.NewSet(cores, pol, mode, nil, nil)
				}
				for i, e := range events {
					node := e.Queue / cores
					if e.Op != sched.OpEnqueue && e.Worker >= 0 {
						node = e.Worker / cores
					}
					s := shadow[node]
					switch e.Op {
					case sched.OpEnqueue:
						if want := s.Home(e.Inst) + node*cores; want != e.Queue {
							t.Fatalf("event %d: enqueue of %v on queue %d, core pins it to %d",
								i, e.Inst.Ref, e.Queue, want)
						}
						s.Push(e.Inst)
					case sched.OpPop:
						got := s.Pop(e.Worker % cores)
						if got != e.Inst {
							t.Fatalf("event %d: worker %d popped %v, shadow core pops %v",
								i, e.Worker, e.Inst.Ref, got)
						}
					case sched.OpSteal:
						got := s.StealBest(e.Worker % cores)
						if got != e.Inst {
							t.Fatalf("event %d: worker %d stole %v, shadow core steals %v",
								i, e.Worker, e.Inst.Ref, got)
						}
					}
				}
				total := 0
				for _, s := range shadow {
					total += s.Total()
				}
				if total != 0 {
					t.Fatalf("%d tasks left in shadow queues after the run", total)
				}
			})
		}
	}
}

// TestStealVictimGolden pins both steal disciplines on one scripted
// queue state: the simulator's deterministic best-head steal and the
// real runtime's randomized probe (replayed through the same RNG stream
// the runtime seeds). The two orders differ by design — a simulator has
// a free global view, a lock-at-a-time runtime does not — but they
// drain the same task set, and whenever only one victim holds work the
// choice is provably identical. Any change to either discipline, the
// probe stream, or the tie-break shows up here as a golden diff.
func TestStealVictimGolden(t *testing.T) {
	mk := func() *sched.Set {
		s := sched.NewSet(4, sched.PriorityOrder, sched.PerWorkerSteal, nil, nil)
		for _, in := range []*ptg.Instance{
			{Ref: ptg.TaskRef{Class: "T", Args: ptg.A1(0)}, Priority: 5, Seq: 0}, // q0
			{Ref: ptg.TaskRef{Class: "T", Args: ptg.A1(4)}, Priority: 1, Seq: 4}, // q0
			{Ref: ptg.TaskRef{Class: "T", Args: ptg.A1(2)}, Priority: 7, Seq: 2}, // q2
			{Ref: ptg.TaskRef{Class: "T", Args: ptg.A1(3)}, Priority: 7, Seq: 3}, // q3
		} {
			s.Push(in)
		}
		return s
	}
	const thief = 1 // worker 1's queue stays empty: it only steals

	// Discipline 1: the simulator's best-head steal. Priority 7 ties
	// between seq 2 and 3 resolve by Seq; queue 0 drains best-first.
	s := mk()
	var bestOrder []int
	for in := s.StealBest(thief); in != nil; in = s.StealBest(thief) {
		bestOrder = append(bestOrder, in.Seq)
	}
	if want := []int{2, 3, 0, 4}; !equalSeqs(bestOrder, want) {
		t.Fatalf("StealBest order = %v, want %v", bestOrder, want)
	}

	// Discipline 2: the runtime's randomized probe over the same state,
	// driven by worker 1's seeded stream (starts 2, 0, 1, 3 — pinned by
	// TestRNGGolden in the core's own suite).
	s = mk()
	rng := sched.NewRNG(thief)
	var probeOrder []int
	for {
		var got *ptg.Instance
		if !sched.EachVictim(&rng, thief, s.Queues(), func(v int) bool {
			if s.Len(v) == 0 {
				return false
			}
			got = s.PopQueue(v, thief)
			return got != nil
		}) {
			break
		}
		probeOrder = append(probeOrder, got.Seq)
	}
	if want := []int{2, 0, 3, 4}; !equalSeqs(probeOrder, want) {
		t.Fatalf("EachVictim order = %v, want %v", probeOrder, want)
	}

	// Same multiset either way: stealing reorders work, never loses or
	// invents it.
	seen := map[int]bool{}
	for _, q := range bestOrder {
		seen[q] = true
	}
	for _, q := range probeOrder {
		if !seen[q] {
			t.Fatalf("EachVictim stole seq %d that StealBest never served", q)
		}
	}

	// With a single non-empty victim the disciplines must agree exactly:
	// the probe has only one place to land and best-head has only one
	// head to compare.
	lone := sched.NewSet(4, sched.PriorityOrder, sched.PerWorkerSteal, nil, nil)
	lone.Push(&ptg.Instance{Ref: ptg.TaskRef{Class: "T", Args: ptg.A1(3)}, Priority: 2, Seq: 3}) // q3
	fromBest := lone.StealBest(thief)

	lone = sched.NewSet(4, sched.PriorityOrder, sched.PerWorkerSteal, nil, nil)
	lone.Push(&ptg.Instance{Ref: ptg.TaskRef{Class: "T", Args: ptg.A1(3)}, Priority: 2, Seq: 3})
	rng = sched.NewRNG(thief)
	var fromProbe *ptg.Instance
	sched.EachVictim(&rng, thief, lone.Queues(), func(v int) bool {
		if lone.Len(v) == 0 {
			return false
		}
		fromProbe = lone.PopQueue(v, thief)
		return fromProbe != nil
	})
	if fromBest == nil || fromProbe == nil || fromBest.Seq != fromProbe.Seq {
		t.Fatalf("lone-victim steal diverges: best-head %v, probe %v", fromBest, fromProbe)
	}
}

// TestInterNodeStealInvariants checks the behavior-class contract of
// the re-dispatch path on an imbalanced 2-node run: non-migratable
// tasks execute only on their affinity node, the imbalance produces
// re-dispatches, and at least one migratable task actually moves.
func TestInterNodeStealInvariants(t *testing.T) {
	const nodes, cores = 2, 2
	const pinned, movable = 12, 12
	g := ptg.NewGraph("conf-steal")
	src := g.Class("SRC")
	src.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	src.Affinity = func(a ptg.Args) int { return 0 }
	src.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: 1e7} }
	f := src.AddFlow("D", ptg.Write)
	f.InNew(nil, func(a ptg.Args) int64 { return 64 })
	for i := 0; i < pinned; i++ {
		i := i
		f.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "PIN", Args: ptg.A1(i)}, "D"
		})
	}
	for i := 0; i < movable; i++ {
		i := i
		f.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "MIG", Args: ptg.A1(i)}, "D"
		})
	}
	// Both fan-out classes live on node 0, so node 1's workers have
	// nothing but what they re-dispatch.
	leafDomain := func(n int) func(emit func(ptg.Args)) {
		return func(emit func(ptg.Args)) {
			for i := 0; i < n; i++ {
				emit(ptg.A1(i))
			}
		}
	}
	leafIn := func(c *ptg.TaskClass) {
		c.AddFlow("D", ptg.Read).
			In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "SRC", Args: ptg.A1(0)}, "D"
			})
	}
	var mu sync.Mutex
	ranOn := map[string]int{}
	record := func(ctx *simexec.TaskCtx) {
		mu.Lock()
		ranOn[ctx.Inst.Ref.String()] = ctx.Node
		mu.Unlock()
		ctx.P.Hold(sim.Millisecond)
	}
	for _, name := range []string{"PIN", "MIG"} {
		c := g.Class(name)
		c.Domain = leafDomain(pinned)
		c.Affinity = func(a ptg.Args) int { return 0 }
		c.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: 1e9} }
		leafIn(c)
	}

	cfg := cluster.CascadeLike()
	cfg.Nodes = nodes
	cfg.CoresPerNode = cores
	cfg.JitterFrac = 0
	eng := sim.NewEngine()
	m := cluster.New(eng, cfg)
	res, err := simexec.Run(g, m, ga.NewSim(m), simexec.Config{
		CoresPerNode:   cores,
		Policy:         sched.PriorityOrder,
		Queues:         sched.PerWorkerSteal,
		InterNodeSteal: true,
		Migratable:     func(class string) bool { return class == "MIG" },
		Behaviors: map[string]simexec.Behavior{
			"PIN": record, "MIG": record,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 1+pinned+movable {
		t.Fatalf("tasks = %d, want %d", res.Tasks, 1+pinned+movable)
	}
	if res.Redispatches == 0 {
		t.Fatal("imbalanced run produced no re-dispatches")
	}
	moved := 0
	for ref, node := range ranOn {
		switch {
		case len(ref) >= 3 && ref[:3] == "PIN":
			if node != 0 {
				t.Errorf("non-migratable %s executed on node %d", ref, node)
			}
		case len(ref) >= 3 && ref[:3] == "MIG":
			if node != 0 {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Fatal("no migratable task executed off its affinity node")
	}
	if moved != res.Redispatches {
		t.Errorf("moved %d tasks but counted %d re-dispatches", moved, res.Redispatches)
	}
}

func equalSeqs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
