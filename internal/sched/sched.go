// Package sched is the substrate-agnostic scheduling core shared by
// every executor in the repo: the real shared-memory runtime
// (internal/runtime), the distributed discrete-event executor
// (internal/simexec), and the Dynamic Task Discovery engine
// (internal/dtd). It holds the single copy of the decisions that make a
// schedule: the ready-task ordering policy, the queue structure, the
// total order ready tasks are popped in, steal-victim selection, and the
// randomized probe stream work stealing draws from.
//
// Before this package existed each executor carried its own copy of
// Policy, QueueMode, the priority heap, and the steal logic, and the
// copies could drift — which would silently break the central claim of
// every simulator-vs-runtime comparison (Fig 9, the fault sweeps): that
// the simulator schedules what the real runtime ships. Now a decision is
// made in exactly one place and the conformance suite
// (conformance_test.go) proves both executors pop identical orders for
// every Policy×QueueMode combination.
//
// The core is parameterized over a tiny Substrate interface (a clock
// plus an idle/kick primitive) so the same decision logic runs under
// real goroutines parking on channels and under simulated processes
// yielding to a virtual clock. Executors keep their own concurrency
// machinery — the runtime's sharded locks and park/unpark coordinator,
// the simulator's sim.Proc wait queues — and borrow only decisions from
// here.
package sched

// Policy selects how ready tasks are ordered.
type Policy int

const (
	// PriorityOrder dispatches the highest-priority ready task first
	// (ties broken by creation order; see Before). This is PaRSEC's
	// behavior when the developer supplies priority expressions (§IV-C).
	PriorityOrder Policy = iota
	// LIFOOrder dispatches the most recently enqueued ready task first,
	// ignoring priorities — the behavior the paper's v2 variant exhibits
	// with no priorities set (§V, Fig 11).
	LIFOOrder
)

// String names the policy ("priority" or "lifo").
func (p Policy) String() string {
	if p == LIFOOrder {
		return "lifo"
	}
	return "priority"
}

// QueueMode selects how ready tasks are distributed among workers (of
// one shared-memory process or one simulated node): one shared queue
// (dynamic load balancing), statically pinned per-worker queues, or
// pinned queues with stealing — PaRSEC's per-thread queues (§IV-D)
// correspond to PerWorkerSteal.
type QueueMode int

const (
	// SharedQueue gives all workers one ready queue: the intra-node
	// dynamic load balancing PaRSEC uses.
	SharedQueue QueueMode = iota
	// PerWorker statically assigns each ready task to one worker's
	// private queue; idle workers do not steal (the ablation baseline).
	PerWorker
	// PerWorkerSteal assigns tasks as PerWorker but lets an idle worker
	// steal a ready task from a sibling's queue.
	PerWorkerSteal
)

// String names the queue mode ("shared", "pinned", "pinned-steal").
func (q QueueMode) String() string {
	switch q {
	case PerWorker:
		return "pinned"
	case PerWorkerSteal:
		return "pinned-steal"
	}
	return "shared"
}

// Substrate abstracts what the scheduling core needs from its execution
// substrate. The real runtime implements it with the wall clock and its
// park/unpark coordinator; the simulator implements it with the virtual
// clock and sim.Proc wait queues; conformance tests implement it with a
// scripted clock to replay decisions deterministically.
type Substrate interface {
	// Now returns the current time in the substrate's own ticks
	// (nanoseconds since run start for the real runtime, virtual
	// nanoseconds for the simulator). Observer events are timestamped
	// with it.
	Now() int64
	// Idle blocks the calling worker until new work may be available.
	// Spurious returns are allowed; callers must re-probe their queues.
	Idle(worker int)
	// Kick wakes a worker blocked in Idle, best effort: kicking a
	// running worker is a no-op.
	Kick(worker int)
}
