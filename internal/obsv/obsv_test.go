package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"parsec/internal/ptg"
	"parsec/internal/trace"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for _, v := range []int64{100, 200, 400, 800, 1600} {
		h.Add(v)
	}
	if h.Count != 5 || h.Min != 100 || h.Max != 1600 || h.Sum != 3100 {
		t.Fatalf("count/min/max/sum = %d/%d/%d/%d", h.Count, h.Min, h.Max, h.Sum)
	}
	if h.Mean() != 620 {
		t.Fatalf("mean = %d", h.Mean())
	}
	// Quantiles are bucket estimates; they must be ordered and bounded.
	p50, p95 := h.Quantile(0.5), h.Quantile(0.95)
	if p50 < h.Min || p95 > h.Max || p50 > p95 {
		t.Fatalf("quantiles out of order: p50=%d p95=%d", p50, p95)
	}
	if h.Quantile(1) != h.Max || h.Quantile(0) != h.Min {
		t.Fatal("q=0/1 must clamp to min/max")
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(-5) // clamps to 0
	h.Add(1)
	if h.Count != 3 || h.Min != 0 || h.Max != 1 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count, h.Min, h.Max)
	}
	if q := h.Quantile(0.5); q < 0 || q > 1 {
		t.Fatalf("p50 = %d, want within [0,1]", q)
	}
	if got := len(h.Buckets()); got != 2 {
		t.Fatalf("non-empty buckets = %d, want 2 ([0,1) and [1,2))", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Log-bucketed estimates must stay within a factor of 2 of the true
	// quantile for a uniform stream (bucket width is the error bound).
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Add(v)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}} {
		got := h.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q=%.2f: got %d, want within 2x of %d", tc.q, got, tc.want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(10)
	a.Add(20)
	b.Add(5)
	b.Add(40)
	a.Merge(&b)
	if a.Count != 4 || a.Min != 5 || a.Max != 40 || a.Sum != 75 {
		t.Fatalf("merged count/min/max/sum = %d/%d/%d/%d", a.Count, a.Min, a.Max, a.Sum)
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count != 4 {
		t.Fatal("merging an empty histogram changed the count")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				r.Observe("GEMM", int64(i))
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h := r.Histogram("GEMM"); h.Count != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count)
	}
	if got := r.Classes(); len(got) != 1 || got[0] != "GEMM" {
		t.Fatalf("classes = %v", got)
	}
	if h := r.Histogram("NOPE"); h.Count != 0 {
		t.Fatal("unknown class must be zero-valued")
	}
}

func TestFromTraceEmpty(t *testing.T) {
	p := FromTrace("empty", trace.New())
	if p.Span != 0 || p.Tasks != 0 || len(p.Classes) != 0 || len(p.Workers) != 0 {
		t.Fatalf("empty profile not empty: %+v", p)
	}
	if p.Idle.MaxBubble != 0 || p.Idle.MeanIdleFrac != 0 {
		t.Fatal("empty profile must have zero idle summary")
	}
}

func TestFromTraceSingleEvent(t *testing.T) {
	tr := trace.New()
	tr.Add(trace.Event{Node: 0, Thread: 0, Class: "GEMM", Label: "GEMM(0,0,0)", Start: 10, End: 30})
	p := FromTrace("one", tr)
	if p.Span != 20 || p.Tasks != 1 {
		t.Fatalf("span=%d tasks=%d", p.Span, p.Tasks)
	}
	w := p.Workers[0]
	if w.Busy != 20 || w.Idle != 0 || w.StartupIdle != 0 || w.LongestBubble != 0 {
		t.Fatalf("single-event worker: %+v", w)
	}
}

func TestFromTraceZeroDurationSpans(t *testing.T) {
	tr := trace.New()
	tr.Add(trace.Event{Node: 0, Thread: 0, Class: "NXTVAL", Start: 5, End: 5})
	tr.Add(trace.Event{Node: 0, Thread: 0, Class: "GEMM", Start: 5, End: 15})
	p := FromTrace("zero", tr)
	if p.Span != 10 {
		t.Fatalf("span = %d", p.Span)
	}
	var nx ClassProfile
	for _, c := range p.Classes {
		if c.Class == "NXTVAL" {
			nx = c
		}
	}
	if nx.Count != 1 || nx.Max != 0 || nx.Total != 0 {
		t.Fatalf("zero-duration class: %+v", nx)
	}
}

func TestFromTraceIdleGaps(t *testing.T) {
	// Worker n0/t0: busy [0,10), idle [10,40), busy [40,50).
	// Worker n0/t1: idle [0,30) (startup bubble), busy [30,50).
	tr := trace.New()
	tr.Add(trace.Event{Node: 0, Thread: 0, Class: "A", Start: 0, End: 10})
	tr.Add(trace.Event{Node: 0, Thread: 0, Class: "A", Start: 40, End: 50})
	tr.Add(trace.Event{Node: 0, Thread: 1, Class: "A", Start: 30, End: 50})
	p := FromTrace("gaps", tr)
	if len(p.Workers) != 2 {
		t.Fatalf("workers = %d", len(p.Workers))
	}
	w0, w1 := p.Workers[0], p.Workers[1]
	if w0.Idle != 30 || w0.LongestBubble != 30 || w0.BubbleStart != 10 || w0.StartupIdle != 0 {
		t.Fatalf("w0: %+v", w0)
	}
	if w1.Idle != 30 || w1.LongestBubble != 30 || w1.BubbleStart != 0 || w1.StartupIdle != 30 {
		t.Fatalf("w1: %+v", w1)
	}
	if p.Idle.TotalIdle != 60 || p.Idle.MaxBubble != 30 {
		t.Fatalf("summary: %+v", p.Idle)
	}
	if math.Abs(p.Idle.MeanIdleFrac-0.6) > 1e-12 {
		t.Fatalf("mean idle frac = %g, want 0.6", p.Idle.MeanIdleFrac)
	}
	if p.Idle.MeanStartup != 15 {
		t.Fatalf("mean startup = %d, want 15", p.Idle.MeanStartup)
	}
}

func TestFromTraceTailIdleCounts(t *testing.T) {
	// t0 spans the whole trace; t1 finishes early — its tail gap is the
	// longest bubble.
	tr := trace.New()
	tr.Add(trace.Event{Node: 0, Thread: 0, Class: "A", Start: 0, End: 100})
	tr.Add(trace.Event{Node: 0, Thread: 1, Class: "A", Start: 0, End: 20})
	p := FromTrace("tail", tr)
	w1 := p.Workers[1]
	if w1.Idle != 80 || w1.LongestBubble != 80 || w1.BubbleStart != 20 {
		t.Fatalf("tail idle: %+v", w1)
	}
}

func TestWorstWorkers(t *testing.T) {
	tr := trace.New()
	for i := 0; i < 4; i++ {
		tr.Add(trace.Event{Node: 0, Thread: i, Class: "A", Start: int64(i * 10), End: 100})
	}
	p := FromTrace("worst", tr)
	worst := p.WorstWorkers(2)
	if len(worst) != 2 || worst[0].Thread != 3 || worst[1].Thread != 2 {
		t.Fatalf("worst = %+v", worst)
	}
}

func TestSetCriticalAttribution(t *testing.T) {
	a := ptg.Analysis{
		TotalWork:    100,
		CriticalPath: 40,
		MaxSpeedup:   2.5,
		Path: []ptg.TaskRef{
			{Class: "READ", Args: ptg.Args{0, 0, 0}},
			{Class: "GEMM", Args: ptg.Args{0, 0, 0}},
			{Class: "GEMM", Args: ptg.Args{1, 0, 0}},
			{Class: "WRITE", Args: ptg.Args{0, 0, 0}},
		},
		PathDur: []int64{4, 16, 16, 4},
	}
	var p Profile
	p.SetCritical(a)
	if p.Crit.Length != 40 || p.Crit.Tasks != 4 {
		t.Fatalf("crit: %+v", p.Crit)
	}
	if p.Crit.Shares[0].Class != "GEMM" || p.Crit.Shares[0].Tasks != 2 || p.Crit.Shares[0].Time != 32 {
		t.Fatalf("top share: %+v", p.Crit.Shares[0])
	}
	if math.Abs(p.Crit.Shares[0].Frac-0.8) > 1e-12 {
		t.Fatalf("GEMM frac = %g, want 0.8", p.Crit.Shares[0].Frac)
	}
	var sum float64
	for _, s := range p.Crit.Shares {
		sum += s.Frac
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares sum to %g, want 1", sum)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := trace.New()
	tr.Add(trace.Event{Node: 0, Thread: 0, Class: "GEMM", Start: 0, End: 10})
	p := FromTrace("rt", tr)
	p.SetComm(CommStats{GetOps: 3, GetBytes: 300, AccOps: 1, AccBytes: 100})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Profile{p}); err != nil {
		t.Fatal(err)
	}
	var back []Profile
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if len(back) != 1 || back[0].Name != "rt" || back[0].Comm.GetBytes != 300 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestSetRamp(t *testing.T) {
	// t0's first GEMM starts at 10, t1's at 40; span is [0, 100].
	tr := trace.New()
	tr.Add(trace.Event{Node: 0, Thread: 0, Class: "READ", Start: 0, End: 10})
	tr.Add(trace.Event{Node: 0, Thread: 0, Class: "GEMM", Start: 10, End: 100})
	tr.Add(trace.Event{Node: 0, Thread: 1, Class: "READ", Start: 0, End: 40})
	tr.Add(trace.Event{Node: 0, Thread: 1, Class: "GEMM", Start: 40, End: 100})
	p := FromTrace("ramp", tr)
	p.SetRamp("GEMM", tr)
	if p.Ramp.Mean != 25 || p.Ramp.Max != 40 {
		t.Fatalf("ramp = %+v", p.Ramp)
	}
	if math.Abs(p.Ramp.MaxFrac-0.4) > 1e-12 {
		t.Fatalf("max frac = %g, want 0.4", p.Ramp.MaxFrac)
	}
	r := p.Report(4)
	if r.RampClass != "GEMM" || r.RampMax != 40 {
		t.Fatalf("report ramp: class=%q max=%d", r.RampClass, r.RampMax)
	}
}

// TestSingleInstantTraceNoNaN is the zero-span regression: a trace whose
// only event is instantaneous gives Span == 0, and every derived
// fraction (idle, ramp, slowdown) must stay finite so WriteJSON — which
// rejects NaN/Inf outright — still succeeds with all sections attached.
func TestSingleInstantTraceNoNaN(t *testing.T) {
	tr := trace.New()
	tr.Add(trace.Event{Node: 0, Thread: 0, Class: "NXTVAL", Start: 7, End: 7})
	p := FromTrace("instant", tr)
	if p.Span != 0 || p.Tasks != 1 {
		t.Fatalf("span=%d tasks=%d, want 0/1", p.Span, p.Tasks)
	}
	p.SetRamp("NXTVAL", tr)
	p.SetCritical(ptg.Analysis{})
	p.SetComm(CommStats{})
	p.SetRecovery(Recovery{})
	p.SetSlowdown(0, []SlowdownCause{{Cause: "straggler n0", Time: 5}})
	if p.Idle.MeanIdleFrac != 0 || p.Ramp.MeanFrac != 0 || p.Ramp.MaxFrac != 0 {
		t.Fatalf("zero-span fractions leaked: idle=%g ramp=%g/%g",
			p.Idle.MeanIdleFrac, p.Ramp.MeanFrac, p.Ramp.MaxFrac)
	}
	// Zero loss: the cause keeps its charge but gets no fraction.
	if got := p.Slow.Causes[0].Frac; got != 0 {
		t.Fatalf("frac with zero loss = %g, want 0", got)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Profile{p}); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte("NaN")) || bytes.Contains(buf.Bytes(), []byte("Inf")) {
		t.Fatalf("JSON carries non-finite values:\n%s", buf.Bytes())
	}
	if err := p.Report(4).WriteTable(&buf); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
}

// TestEmptyTraceJSON: a profile of a trace with no events at all must
// export cleanly too.
func TestEmptyTraceJSON(t *testing.T) {
	p := FromTrace("empty", trace.New())
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Profile{p}); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back []Profile
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back) != 1 || back[0].Span != 0 {
		t.Fatalf("round trip = %+v", back)
	}
}

// TestSetSlowdownAttribution: causes come back largest first with
// fractions of the observed loss; zero-time causes are dropped.
func TestSetSlowdownAttribution(t *testing.T) {
	p := &Profile{Name: "perturbed", Span: 1500}
	p.SetSlowdown(1000, []SlowdownCause{
		{Cause: "xfer backoff", Time: 100},
		{Cause: "ga hiccups", Time: 0},
		{Cause: "straggler n2", Time: 400},
	})
	s := p.Slow
	if s.BaselineSpan != 1000 || s.Loss != 500 {
		t.Fatalf("baseline=%d loss=%d", s.BaselineSpan, s.Loss)
	}
	if len(s.Causes) != 2 || s.Causes[0].Cause != "straggler n2" {
		t.Fatalf("causes = %+v", s.Causes)
	}
	if math.Abs(s.Causes[0].Frac-0.8) > 1e-12 || math.Abs(s.Causes[1].Frac-0.2) > 1e-12 {
		t.Fatalf("fracs = %g/%g, want 0.8/0.2", s.Causes[0].Frac, s.Causes[1].Frac)
	}
	r := p.Report(4)
	if !r.SlowdownShown || r.SlowdownLoss != 500 || len(r.Slowdown) != 2 {
		t.Fatalf("report slowdown: shown=%v loss=%d rows=%d",
			r.SlowdownShown, r.SlowdownLoss, len(r.Slowdown))
	}
}

// TestSetRecoveryReport: recovery counters flow through to the report
// only when attached.
func TestSetRecoveryReport(t *testing.T) {
	p := &Profile{Name: "clean", Span: 100}
	if p.Report(4).Recovery != nil {
		t.Fatal("report grew a recovery section without SetRecovery")
	}
	p.SetRecovery(Recovery{Retries: 3, Drops: 2, AckDrops: 1, DupSuppressed: 1,
		BackoffTime: 150_000, RetransmitBytes: 2_000_000, Redispatches: 4, RedispatchBytes: 800_000})
	rc := p.Report(4).Recovery
	if rc == nil || rc.Retries != 3 || rc.Redispatches != 4 || rc.RedispatchBytes != 800_000 {
		t.Fatalf("report recovery = %+v", rc)
	}
}
