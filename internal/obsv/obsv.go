// Package obsv is the unified observability layer shared by the real
// runtime (internal/runtime) and the simulator (internal/simexec). The
// paper argues entirely from its traces — Fig 11's startup bubble, Figs
// 12/13's unoverlapped communication, §IV-C's priority-driven variant
// ordering — and this package turns those pictures into numbers: a
// metrics registry of log-bucketed per-task-class duration histograms
// (count/p50/p95/p99/max), per-worker idle-gap accounting (total idle,
// longest bubble and when it opened, startup idle), communication-volume
// counters (bytes per class, GET vs ACC), and critical-path attribution
// that replays the executed DAG to report what fraction of the critical
// path each task class contributes.
//
// A Profile is normally built from a recorded trace with FromTrace,
// enriched with SetComm and SetCritical, and rendered through
// internal/metrics (see Report) or exported as JSON (WriteJSON) for
// regression diffing. cmd/ccsim -profile is the command-line surface.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"

	"parsec/internal/metrics"
	"parsec/internal/ptg"
	"parsec/internal/trace"
)

// nbuckets covers every int64 duration: bucket 0 holds [0,1) ns, bucket
// i>=1 holds [2^(i-1), 2^i) ns.
const nbuckets = 65

// Histogram is a log-2-bucketed duration histogram (nanoseconds). The
// zero value is ready to use; Add is not concurrency-safe (wrap it in a
// Registry for concurrent recording).
type Histogram struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	buckets [nbuckets]int64
}

// bucketOf returns the bucket index for a duration.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	return int64(1) << (i - 1), int64(1) << i
}

// Add records one duration. Negative durations clamp to zero.
func (h *Histogram) Add(ns int64) {
	if ns < 0 {
		ns = 0
	}
	if h.Count == 0 || ns < h.Min {
		h.Min = ns
	}
	if ns > h.Max {
		h.Max = ns
	}
	h.Count++
	h.Sum += ns
	h.buckets[bucketOf(ns)]++
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket where the cumulative count crosses q·Count, clamped
// to the observed [Min, Max]. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= target {
			lo, hi := bucketBounds(i)
			frac := (target - float64(cum)) / float64(c)
			v := int64(float64(lo) + frac*float64(hi-lo))
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
		cum += c
	}
	return h.Max
}

// Buckets returns the non-empty buckets as (lo, hi, count) triples, in
// increasing duration order.
func (h *Histogram) Buckets() [][3]int64 {
	var out [][3]int64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out = append(out, [3]int64{lo, hi, c})
	}
	return out
}

// Registry is a concurrency-safe collection of named histograms — the
// recording surface executors observe spans into (one histogram per task
// class, keyed by class name).
type Registry struct {
	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{hists: make(map[string]*Histogram)} }

// Observe records one span duration under the given class.
func (r *Registry) Observe(class string, ns int64) {
	r.mu.Lock()
	h := r.hists[class]
	if h == nil {
		h = &Histogram{}
		r.hists[class] = h
	}
	h.Add(ns)
	r.mu.Unlock()
}

// Histogram returns a copy of the named class's histogram (zero-valued
// if the class was never observed).
func (r *Registry) Histogram(class string) Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[class]; h != nil {
		return *h
	}
	return Histogram{}
}

// Classes returns the observed class names, sorted.
func (r *Registry) Classes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClassProfile is the exported summary of one task class's duration
// distribution.
type ClassProfile struct {
	Class string `json:"class"`
	Count int64  `json:"count"`
	P50   int64  `json:"p50_ns"`
	P95   int64  `json:"p95_ns"`
	P99   int64  `json:"p99_ns"`
	Max   int64  `json:"max_ns"`
	Total int64  `json:"total_ns"`
}

// WorkerProfile is the idle-gap accounting for one trace row (one
// worker thread on one node), over the trace's global [start, end] span.
type WorkerProfile struct {
	Node   int   `json:"node"`
	Thread int   `json:"thread"`
	Tasks  int   `json:"tasks"`
	Busy   int64 `json:"busy_ns"`
	Idle   int64 `json:"idle_ns"`
	// StartupIdle is the gap between the global span start and this
	// worker's first event — the per-worker form of Fig 11's bubble.
	StartupIdle int64 `json:"startup_idle_ns"`
	// LongestBubble is the longest single idle gap (startup, interior,
	// or tail) and BubbleStart is when it opened.
	LongestBubble int64 `json:"longest_bubble_ns"`
	BubbleStart   int64 `json:"bubble_start_ns"`
}

// Name returns the row label, e.g. "n0/t3".
func (w WorkerProfile) Name() string { return fmt.Sprintf("n%d/t%d", w.Node, w.Thread) }

// IdleSummary aggregates the per-worker idle accounting.
type IdleSummary struct {
	TotalIdle int64 `json:"total_idle_ns"`
	// MeanIdleFrac is mean over workers of idle/span.
	MeanIdleFrac float64 `json:"mean_idle_frac"`
	// MeanStartup is the mean startup idle over workers.
	MeanStartup int64 `json:"mean_startup_ns"`
	// MaxBubble locates the single longest idle gap on any worker.
	MaxBubble      int64  `json:"max_bubble_ns"`
	MaxBubbleAt    int64  `json:"max_bubble_at_ns"`
	MaxBubbleOwner string `json:"max_bubble_owner"`
}

// CommStats is the communication-volume side of a profile. The GET/ACC
// pair covers Global-Arrays one-sided traffic (the original code's
// GET_HASH_BLOCK / ADD_HASH_BLOCK); ByClass covers dataflow payloads
// delivered to each consumer task class by the PTG communication
// threads; Transfers/TotalBytes total the inter-node deliveries.
type CommStats struct {
	GetOps     int64            `json:"get_ops,omitempty"`
	GetBytes   int64            `json:"get_bytes,omitempty"`
	AccOps     int64            `json:"acc_ops,omitempty"`
	AccBytes   int64            `json:"acc_bytes,omitempty"`
	Transfers  int64            `json:"transfers,omitempty"`
	TotalBytes int64            `json:"total_bytes,omitempty"`
	ByClass    map[string]int64 `json:"bytes_by_class,omitempty"`
}

// RampStat quantifies Fig 11's startup bubble for one class: the mean
// and max, over workers, of the time until each worker's first event of
// that class — absolute and as a fraction of the span. Until input
// blocks arrive, workers have nothing of the class to compute, so with
// class GEMM this is the paper's bubble in numbers (v2 vs v4).
type RampStat struct {
	Class    string  `json:"class"`
	Mean     int64   `json:"mean_ns"`
	Max      int64   `json:"max_ns"`
	MeanFrac float64 `json:"mean_frac"`
	MaxFrac  float64 `json:"max_frac"`
}

// Recovery is the fault-recovery side of a profile: what the comm
// threads and the scheduler did to absorb injected faults. Retries
// counts retransmissions (one per payload drop or lost ack); backoff is
// the total time senders spent waiting between attempts; retransmit
// bytes are extra wire volume beyond the logical traffic in CommStats.
// Redispatches counts tasks migrated off straggling nodes by the
// inter-node steal path, with the input bytes their GETs dragged along.
type Recovery struct {
	Retries         int   `json:"retries,omitempty"`
	Drops           int   `json:"drops,omitempty"`
	AckDrops        int   `json:"ack_drops,omitempty"`
	DupSuppressed   int   `json:"dup_suppressed,omitempty"`
	BackoffTime     int64 `json:"backoff_ns,omitempty"`
	RetransmitBytes int64 `json:"retransmit_bytes,omitempty"`
	Redispatches    int   `json:"redispatches,omitempty"`
	RedispatchBytes int64 `json:"redispatch_bytes,omitempty"`
}

// SlowdownCause charges part of a perturbed run's loss to one injected
// cause (a straggling node, latency spikes, GA-service hiccups, retry
// backoff). Charges are serial wall-clock charges from the injector's
// ledger: parallel slack absorbs some of them and recovery shifts
// others off the critical path, so shares of the observed loss need not
// sum to 100% — a share well above it means recovery hid most of the
// injected delay.
type SlowdownCause struct {
	Cause string `json:"cause"`
	Time  int64  `json:"time_ns"`
	// Frac is Time over the observed loss; 0 when the loss is not
	// positive (guarding the JSON export against NaN/Inf).
	Frac float64 `json:"frac_of_loss,omitempty"`
}

// Slowdown compares a perturbed run against its fault-free twin and
// attributes the difference.
type Slowdown struct {
	BaselineSpan int64           `json:"baseline_span_ns"`
	Loss         int64           `json:"loss_ns"`
	Causes       []SlowdownCause `json:"causes,omitempty"`
}

// PathShare is one task class's contribution to the critical path.
type PathShare struct {
	Class string  `json:"class"`
	Tasks int     `json:"tasks"`
	Time  int64   `json:"time_ns"`
	Frac  float64 `json:"frac"`
}

// CritPath is the critical-path attribution of an executed DAG.
type CritPath struct {
	Length     int64       `json:"length_ns"`
	TotalWork  int64       `json:"total_work_ns"`
	MaxSpeedup float64     `json:"max_speedup"`
	Tasks      int         `json:"tasks"`
	Shares     []PathShare `json:"shares"`
}

// Phases is the coarse lifecycle timing of one service job: how long it
// waited for admission, how long the cacheable front half (inspection +
// chain planning) took — zero on a plan-cache hit, which is exactly the
// cost the cache exists to shed — and how long real execution ran.
type Phases struct {
	QueueNs   int64 `json:"queue_ns"`
	InspectNs int64 `json:"inspect_ns"`
	PlanNs    int64 `json:"plan_ns"`
	ExecNs    int64 `json:"exec_ns"`
	CacheHit  bool  `json:"cache_hit"`
}

// Profile is the complete observability record of one run.
type Profile struct {
	Name    string          `json:"name"`
	Span    int64           `json:"span_ns"`
	Tasks   int64           `json:"tasks"`
	Classes []ClassProfile  `json:"classes"`
	Workers []WorkerProfile `json:"workers"`
	Idle    IdleSummary     `json:"idle"`
	Ramp    *RampStat       `json:"ramp,omitempty"`
	Comm    *CommStats      `json:"comm,omitempty"`
	Crit    *CritPath       `json:"critical_path,omitempty"`
	Recov   *Recovery       `json:"recovery,omitempty"`
	Slow    *Slowdown       `json:"slowdown,omitempty"`
	Phase   *Phases         `json:"phases,omitempty"`
}

// FromTrace computes the histogram and idle-gap halves of a profile from
// a recorded trace. Comm and critical-path attribution are attached
// separately (SetComm, SetCritical) because they need executor state the
// trace does not carry.
func FromTrace(name string, t *trace.Trace) *Profile {
	p := &Profile{Name: name}
	evs := t.Events()
	start, end := t.Span()
	p.Span = end - start
	p.Tasks = int64(len(evs))

	reg := NewRegistry()
	for _, e := range evs {
		reg.Observe(e.Class, e.Duration())
	}
	for _, class := range reg.Classes() {
		h := reg.Histogram(class)
		p.Classes = append(p.Classes, ClassProfile{
			Class: class,
			Count: h.Count,
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
			Max:   h.Max,
			Total: h.Sum,
		})
	}

	// Events() is sorted by (node, thread, start): walk each row once.
	flush := func(w *WorkerProfile, lastEnd int64) {
		if gap := end - lastEnd; gap > 0 {
			w.Idle += gap
			if gap > w.LongestBubble {
				w.LongestBubble, w.BubbleStart = gap, lastEnd-start
			}
		}
		p.Workers = append(p.Workers, *w)
	}
	var cur *WorkerProfile
	var lastEnd int64
	for i := range evs {
		e := &evs[i]
		if cur == nil || e.Node != cur.Node || e.Thread != cur.Thread {
			if cur != nil {
				flush(cur, lastEnd)
			}
			cur = &WorkerProfile{Node: e.Node, Thread: e.Thread}
			lastEnd = start
			cur.StartupIdle = e.Start - start
		}
		if gap := e.Start - lastEnd; gap > 0 {
			cur.Idle += gap
			if gap > cur.LongestBubble {
				cur.LongestBubble, cur.BubbleStart = gap, lastEnd-start
			}
		}
		cur.Tasks++
		cur.Busy += e.Duration()
		if e.End > lastEnd {
			lastEnd = e.End
		}
	}
	if cur != nil {
		flush(cur, lastEnd)
	}

	if n := len(p.Workers); n > 0 && p.Span > 0 {
		var fracSum float64
		for _, w := range p.Workers {
			p.Idle.TotalIdle += w.Idle
			p.Idle.MeanStartup += w.StartupIdle
			fracSum += float64(w.Idle) / float64(p.Span)
			if w.LongestBubble > p.Idle.MaxBubble {
				p.Idle.MaxBubble = w.LongestBubble
				p.Idle.MaxBubbleAt = w.BubbleStart
				p.Idle.MaxBubbleOwner = w.Name()
			}
		}
		p.Idle.MeanIdleFrac = fracSum / float64(n)
		p.Idle.MeanStartup /= int64(n)
	}
	return p
}

// SetComm attaches communication-volume counters.
func (p *Profile) SetComm(c CommStats) { p.Comm = &c }

// SetPhases attaches service-job lifecycle timings.
func (p *Profile) SetPhases(ph Phases) { p.Phase = &ph }

// SetRecovery attaches fault-recovery counters.
func (p *Profile) SetRecovery(rec Recovery) { p.Recov = &rec }

// SetSlowdown attaches slowdown attribution against a fault-free
// baseline span. Zero-time causes are dropped; the rest are ordered
// largest charge first. Fractions are only computed when the observed
// loss is positive, so the JSON export never carries NaN or Inf.
func (p *Profile) SetSlowdown(baselineSpan int64, causes []SlowdownCause) {
	s := &Slowdown{BaselineSpan: baselineSpan, Loss: p.Span - baselineSpan}
	for _, c := range causes {
		if c.Time == 0 {
			continue
		}
		if s.Loss > 0 {
			c.Frac = float64(c.Time) / float64(s.Loss)
		} else {
			c.Frac = 0
		}
		s.Causes = append(s.Causes, c)
	}
	sort.SliceStable(s.Causes, func(i, j int) bool { return s.Causes[i].Time > s.Causes[j].Time })
	p.Slow = s
}

// SetRamp attaches the time-to-first-event ramp for one class,
// computed from the recorded trace (trace.RampStats).
func (p *Profile) SetRamp(class string, tr *trace.Trace) {
	mean, max := tr.RampStats(class)
	r := &RampStat{Class: class, Mean: mean, Max: max}
	if p.Span > 0 {
		r.MeanFrac = float64(mean) / float64(p.Span)
		r.MaxFrac = float64(max) / float64(p.Span)
	}
	p.Ramp = r
}

// SetCritical attaches critical-path attribution from a work/span
// analysis of the executed DAG (ptg.Analyze replayed under measured or
// modeled durations — Analysis.Path and Analysis.PathDur carry the
// path's tasks and their charges).
func (p *Profile) SetCritical(a ptg.Analysis) {
	cp := &CritPath{
		Length:     a.CriticalPath,
		TotalWork:  a.TotalWork,
		MaxSpeedup: a.MaxSpeedup,
		Tasks:      len(a.Path),
	}
	byClass := map[string]*PathShare{}
	for i, ref := range a.Path {
		s := byClass[ref.Class]
		if s == nil {
			s = &PathShare{Class: ref.Class}
			byClass[ref.Class] = s
		}
		s.Tasks++
		if i < len(a.PathDur) {
			s.Time += a.PathDur[i]
		}
	}
	names := make([]string, 0, len(byClass))
	for n := range byClass {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := *byClass[n]
		if cp.Length > 0 {
			s.Frac = float64(s.Time) / float64(cp.Length)
		}
		cp.Shares = append(cp.Shares, s)
	}
	// Largest contributor first.
	sort.SliceStable(cp.Shares, func(i, j int) bool { return cp.Shares[i].Time > cp.Shares[j].Time })
	p.Crit = cp
}

// WorstWorkers returns up to n workers ordered by longest bubble,
// breaking ties by total idle — the rows worth printing when a machine
// has hundreds of workers.
func (p *Profile) WorstWorkers(n int) []WorkerProfile {
	ws := append([]WorkerProfile(nil), p.Workers...)
	sort.SliceStable(ws, func(i, j int) bool {
		if ws[i].LongestBubble != ws[j].LongestBubble {
			return ws[i].LongestBubble > ws[j].LongestBubble
		}
		return ws[i].Idle > ws[j].Idle
	})
	if len(ws) > n {
		ws = ws[:n]
	}
	return ws
}

// Report converts the profile into its text-rendering form, keeping at
// most maxWorkers per-worker idle rows (the worst ones). The aggregate
// idle line always covers every worker.
func (p *Profile) Report(maxWorkers int) *metrics.ProfileReport {
	r := &metrics.ProfileReport{
		Title: p.Name,
		Span:  p.Span,
		Tasks: int(p.Tasks),
	}
	for _, c := range p.Classes {
		r.Hist = append(r.Hist, metrics.HistRow{
			Class: c.Class, Count: c.Count,
			P50: c.P50, P95: c.P95, P99: c.P99, Max: c.Max, Total: c.Total,
		})
	}
	r.IdleWorkers = len(p.Workers)
	r.TotalIdle = p.Idle.TotalIdle
	r.MeanIdleFrac = p.Idle.MeanIdleFrac
	r.MeanStartup = p.Idle.MeanStartup
	r.MaxBubble = p.Idle.MaxBubble
	r.MaxBubbleAt = p.Idle.MaxBubbleAt
	r.MaxBubbleBy = p.Idle.MaxBubbleOwner
	if p.Ramp != nil {
		r.RampClass = p.Ramp.Class
		r.RampMean = p.Ramp.Mean
		r.RampMax = p.Ramp.Max
		r.RampMeanFrac = p.Ramp.MeanFrac
		r.RampMaxFrac = p.Ramp.MaxFrac
	}
	for _, w := range p.WorstWorkers(maxWorkers) {
		r.Idle = append(r.Idle, metrics.IdleRow{
			Worker: w.Name(), Tasks: w.Tasks, Busy: w.Busy, Idle: w.Idle,
			StartupIdle: w.StartupIdle, LongestBubble: w.LongestBubble,
			BubbleStart: w.BubbleStart,
		})
	}
	if c := p.Comm; c != nil {
		if c.GetOps > 0 || c.GetBytes > 0 {
			r.Comm = append(r.Comm, metrics.CommRow{Label: "GET", Ops: c.GetOps, Bytes: c.GetBytes})
		}
		if c.AccOps > 0 || c.AccBytes > 0 {
			r.Comm = append(r.Comm, metrics.CommRow{Label: "ACC", Ops: c.AccOps, Bytes: c.AccBytes})
		}
		if c.Transfers > 0 || c.TotalBytes > 0 {
			r.Comm = append(r.Comm, metrics.CommRow{Label: "net total", Ops: c.Transfers, Bytes: c.TotalBytes})
		}
		classes := make([]string, 0, len(c.ByClass))
		for n := range c.ByClass {
			classes = append(classes, n)
		}
		sort.Strings(classes)
		for _, n := range classes {
			r.Comm = append(r.Comm, metrics.CommRow{Label: "net to " + n, Bytes: c.ByClass[n]})
		}
	}
	if cp := p.Crit; cp != nil {
		r.CritLength = cp.Length
		r.TotalWork = cp.TotalWork
		r.MaxSpeedup = cp.MaxSpeedup
		for _, s := range cp.Shares {
			r.Path = append(r.Path, metrics.PathRow{
				Class: s.Class, Tasks: s.Tasks, Time: s.Time, Frac: s.Frac,
			})
		}
	}
	if rc := p.Recov; rc != nil {
		r.Recovery = &metrics.RecoveryStats{
			Retries: rc.Retries, Drops: rc.Drops, AckDrops: rc.AckDrops,
			DupSuppressed: rc.DupSuppressed, BackoffTime: rc.BackoffTime,
			RetransmitBytes: rc.RetransmitBytes, Redispatches: rc.Redispatches,
			RedispatchBytes: rc.RedispatchBytes,
		}
	}
	if s := p.Slow; s != nil {
		r.BaselineSpan = s.BaselineSpan
		r.SlowdownLoss = s.Loss
		r.SlowdownShown = true
		for _, c := range s.Causes {
			r.Slowdown = append(r.Slowdown, metrics.SlowdownRow{
				Cause: c.Cause, Time: c.Time, Frac: c.Frac,
			})
		}
	}
	return r
}

// WriteJSON exports profiles as indented JSON, the regression-diffing
// format of cmd/ccsim -profileout.
func WriteJSON(w io.Writer, profiles []*Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(profiles)
}
