package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/molecule"
	"parsec/internal/obsv"
	"parsec/internal/tce"
)

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobStatus{}
}

// TestServerColdThenCachedEnergy runs the same water job twice: the
// second must be a cache hit with zero inspection+planning time, and
// both energies must match each other bitwise and the serial reference
// to 1e-12.
func TestServerColdThenCachedEnergy(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Shutdown()

	spec := JobSpec{Preset: "water", Variant: "v5"}
	st1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st1 = waitTerminal(t, s, st1.ID)
	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2 = waitTerminal(t, s, st2.ID)

	if st1.State != JobDone || st2.State != JobDone {
		t.Fatalf("states = %s, %s, want done", st1.State, st2.State)
	}
	r1, r2 := st1.Result, st2.Result
	if r1.CacheHit {
		t.Error("first job reported a cache hit")
	}
	if !r2.CacheHit {
		t.Error("second job missed the cache")
	}
	if r1.InspectNs <= 0 || r1.PlanNs < 0 {
		t.Errorf("cold job phases: inspect=%d plan=%d, want positive inspect", r1.InspectNs, r1.PlanNs)
	}
	if r2.InspectNs != 0 || r2.PlanNs != 0 {
		t.Errorf("cached job reports inspect=%d plan=%d, want 0/0", r2.InspectNs, r2.PlanNs)
	}
	if r1.Energy != r2.Energy {
		t.Errorf("cold energy %.15f != cached energy %.15f", r1.Energy, r2.Energy)
	}
	ref := ccsd.ReferenceEnergy(tce.Inspect(tce.T2_7(molecule.Water631G()), nil))
	if math.Abs(r1.Energy-ref) > 1e-12 {
		t.Errorf("energy %.15f vs reference %.15f: |diff| > 1e-12", r1.Energy, ref)
	}
}

// TestServerBackpressure fills the admission queue while the only
// executor is held, and checks the overflow submission fails fast with
// ErrQueueFull, then succeeds once the queue drains.
func TestServerBackpressure(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	s.hookJobStart = func(*job) { <-gate }
	defer s.Shutdown()

	spec := JobSpec{Preset: "water"}
	// First fills the executor (after it leaves the queue), second
	// fills the queue slot. The executor pulls the first job off the
	// channel before blocking in the hook, so give it a moment.
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning := func(id string) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st, _ := s.Job(id); st.State == JobRunning {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("job %s never started", id)
	}
	waitRunning(first.ID)
	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	close(gate)
	waitTerminal(t, s, first.ID)
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestServerCancelQueued cancels a job while it waits in the queue; it
// must terminate as canceled without executing.
func TestServerCancelQueued(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{MaxConcurrent: 1, QueueDepth: 4})
	s.hookJobStart = func(*job) {
		select {
		case <-gate:
		case <-time.After(10 * time.Second):
		}
	}
	defer s.Shutdown()

	blocker, err := s.Submit(JobSpec{Preset: "water"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{Preset: "water"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if st := waitTerminal(t, s, queued.ID); st.State != JobCanceled {
		t.Fatalf("queued job state = %s, want canceled", st.State)
	}
	if st := waitTerminal(t, s, blocker.ID); st.State != JobDone {
		t.Fatalf("blocker state = %s, want done", st.State)
	}
	if prof, _ := s.Profile(queued.ID); prof != nil {
		t.Error("canceled job has a profile")
	}
}

// TestServerCancelRunning cancels a benzene job right after it starts
// executing; the run must halt early, the job must end canceled, and
// the server must stay healthy for subsequent jobs (the canceled run's
// scratch shards were drained by the runtime).
func TestServerCancelRunning(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	s := New(Config{MaxConcurrent: 1})
	s.hookJobStart = func(*job) { once.Do(func() { close(started) }) }
	defer s.Shutdown()

	st, err := s.Submit(JobSpec{Preset: "benzene", Variant: "v5"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if st = waitTerminal(t, s, st.ID); st.State != JobCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}

	// The server still completes fresh work after the cancellation.
	after, err := s.Submit(JobSpec{Preset: "water"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, after.ID); st.State != JobDone {
		t.Fatalf("post-cancel job state = %s, want done", st.State)
	}
}

// TestServerShutdownDrains submits several jobs and shuts down
// immediately: every accepted job must reach a terminal state, and
// post-shutdown submits must be refused.
func TestServerShutdownDrains(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, QueueDepth: 8})
	var ids []string
	for i := 0; i < 5; i++ {
		st, err := s.Submit(JobSpec{Preset: "water", Variant: "v4"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	s.Shutdown()
	for _, id := range ids {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobDone {
			t.Errorf("job %s state = %s after shutdown, want done", id, st.State)
		}
	}
	if _, err := s.Submit(JobSpec{Preset: "water"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown err = %v, want ErrShuttingDown", err)
	}
}

// TestHTTPLifecycle drives the full HTTP surface end to end: submit,
// poll status, fetch result and profile, check stats and cancel and
// backpressure responses.
func TestHTTPLifecycle(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 4})
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := http.Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		return resp, out.Bytes()
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		return resp, out.Bytes()
	}

	// Submit a water job and poll it to completion.
	resp, body := post("/jobs", JobSpec{Preset: "water", Variant: "v5"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d body %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		_, body = get("/jobs/" + st.ID)
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != JobDone {
		t.Fatalf("job state = %s, want done", st.State)
	}

	// Result and profile endpoints.
	resp, body = get("/jobs/" + st.ID + "/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	var res JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Energy == 0 || res.Tasks == 0 {
		t.Fatalf("result = %+v, want energy and tasks", res)
	}
	resp, body = get("/jobs/" + st.ID + "/profile")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status = %d", resp.StatusCode)
	}
	var prof obsv.Profile
	if err := json.Unmarshal(body, &prof); err != nil {
		t.Fatal(err)
	}
	if prof.Phase == nil || prof.Phase.CacheHit {
		t.Fatalf("profile phases = %+v, want cold-run phases", prof.Phase)
	}
	if prof.Tasks == 0 {
		t.Error("profile has no task events")
	}

	// Unknown job and bad submit bodies.
	if resp, _ := get("/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := post("/jobs", map[string]any{"preset": "unobtainium"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad preset status = %d, want 400", resp.StatusCode)
	}

	// Stats reflect the completed job.
	_, body = get("/stats")
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Done < 1 || stats.Accepted < 1 || stats.Cache.Misses < 1 {
		t.Errorf("stats = %+v, want at least one done/accepted/miss", stats)
	}
}

// TestHTTPBackpressure429 checks the queue-full path over HTTP: 429
// with a Retry-After header.
func TestHTTPBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	s.hookJobStart = func(*job) { <-gate }
	defer s.Shutdown()
	defer close(gate)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func() *http.Response {
		t.Helper()
		body := bytes.NewBufferString(`{"preset":"water"}`)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	first := submit()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", first.StatusCode)
	}
	// Wait for the executor to pull the first job, then fill the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Running == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if submit().StatusCode != http.StatusAccepted {
		t.Fatal("queue-filling submit rejected")
	}
	over := submit()
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", over.StatusCode)
	}
	if ra := over.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
}
