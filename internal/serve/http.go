package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the service's HTTP surface:
//
//	POST   /jobs              submit a JobSpec; 202 + JobStatus, or 429
//	                          with a Retry-After header when the queue
//	                          is full
//	GET    /jobs/{id}         JobStatus
//	GET    /jobs/{id}/result  JobResult (202 while pending, 409 for
//	                          failed/canceled jobs)
//	GET    /jobs/{id}/profile per-job obsv.Profile (404 until available)
//	POST   /jobs/{id}/cancel  request cancellation (202)
//	DELETE /jobs/{id}         alias for cancel
//	GET    /stats             server Stats
//	GET    /healthz           liveness probe
//
// All bodies are JSON; errors are {"error": "..."} with the matching
// status code.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/profile", s.handleProfile)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// writeJSON encodes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders an error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// retryAfterSeconds renders a backoff hint as whole seconds for the
// Retry-After header: ceiling, clamped to a minimum of 1. Truncation
// would render any sub-second hint as "0" and invite an instant-retry
// stampede from every backpressured client at once.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad submit body: %w", err))
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverBudget):
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	switch st.State {
	case JobDone:
		writeJSON(w, http.StatusOK, st.Result)
	case JobFailed:
		writeError(w, http.StatusConflict, fmt.Errorf("serve: job %s failed: %s", st.ID, st.Error))
	case JobCanceled:
		writeError(w, http.StatusConflict, fmt.Errorf("serve: job %s was canceled", st.ID))
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	prof, err := s.Profile(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if prof == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: no profile yet (job pending, canceled, or failed)"))
		return
	}
	writeJSON(w, http.StatusOK, prof)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	st, _ := s.Job(id)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
