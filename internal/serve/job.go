package serve

import (
	"fmt"
	"sync"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/molecule"
	"parsec/internal/obsv"
)

// JobState is one station of the job lifecycle state machine:
//
//	queued → running → done
//	   \        \----→ failed
//	    \-------------→ canceled
//
// Cancellation from queued skips execution entirely; cancellation from
// running halts the scheduler between tasks and drains the job's
// scratch shards before the state flips.
type JobState string

// The job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// CustomSystem describes a non-preset molecular system in a submit
// body, mirroring molecule.Custom.
type CustomSystem struct {
	Name       string `json:"name"`
	NOccupied  int    `json:"n_occupied"`
	NVirtual   int    `json:"n_virtual"`
	TileTarget int    `json:"tile_target"`
	NIrreps    int    `json:"n_irreps"`
	Seed       uint64 `json:"seed"`
}

// JobSpec is the JSON submit body: which system to run, which variant,
// and the graph/execution shape. Zero values select server defaults.
type JobSpec struct {
	// Preset names a built-in system (water, benzene, uracil, porphin,
	// betacarotene). Exactly one of Preset and Custom must be set.
	Preset string `json:"preset,omitempty"`
	// Custom describes an explicit system instead of a preset.
	Custom *CustomSystem `json:"custom,omitempty"`
	// Variant is the algorithmic variant (v1..v5); default v5.
	Variant string `json:"variant,omitempty"`
	// Workers overrides the per-job runtime worker count.
	Workers int `json:"workers,omitempty"`
	// SegmentHeight overrides the GEMM segment height (plan-affecting).
	SegmentHeight int `json:"segment_height,omitempty"`
	// WriteSpan splits output writes across adjacent nodes (plan-affecting).
	WriteSpan int `json:"write_span,omitempty"`
	// Nodes is the affinity modulus of the graph (plan-affecting);
	// default 1 (shared memory).
	Nodes int `json:"nodes,omitempty"`
}

// system resolves the spec's molecular system.
func (s JobSpec) system() (*molecule.System, error) {
	switch {
	case s.Preset != "" && s.Custom != nil:
		return nil, fmt.Errorf("serve: spec sets both preset and custom")
	case s.Custom != nil:
		c := s.Custom
		if c.NOccupied <= 0 || c.NVirtual <= 0 || c.TileTarget <= 0 {
			return nil, fmt.Errorf("serve: custom system needs positive n_occupied, n_virtual, tile_target")
		}
		name := c.Name
		if name == "" {
			name = "custom"
		}
		return molecule.Custom(name, c.NOccupied, c.NVirtual, c.TileTarget, c.NIrreps, c.Seed), nil
	case s.Preset != "":
		return molecule.Preset(s.Preset)
	default:
		return nil, fmt.Errorf("serve: spec needs a preset or a custom system")
	}
}

// Backend names which execution backend completed a job.
const (
	// BackendInProcess is the shared-memory runtime.Run fast path.
	BackendInProcess = "inproc"
	// BackendNetrun is the distributed netrun backend (worker ranks
	// over sockets, selected when the job footprint reaches
	// Config.NetrunBytes).
	BackendNetrun = "netrun"
)

// JobResult is the outcome of a finished job.
type JobResult struct {
	// Energy is the correlation-energy functional of the output tensor.
	Energy float64 `json:"energy"`
	// Tasks is the number of tasks the runtime executed.
	Tasks int `json:"tasks"`
	// Backend reports which backend executed the job (BackendInProcess
	// or BackendNetrun); Ranks is the worker rank count for netrun
	// jobs.
	Backend string `json:"backend,omitempty"`
	Ranks   int    `json:"ranks,omitempty"`
	// CacheHit reports whether the compiled plan came from the cache.
	CacheHit bool `json:"cache_hit"`
	// QueueNs, InspectNs, PlanNs, ExecNs are the lifecycle phase
	// durations; InspectNs and PlanNs are zero on a cache hit.
	QueueNs   int64 `json:"queue_ns"`
	InspectNs int64 `json:"inspect_ns"`
	PlanNs    int64 `json:"plan_ns"`
	ExecNs    int64 `json:"exec_ns"`
}

// JobStatus is the JSON shape of a status query.
type JobStatus struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// State is the current lifecycle state.
	State JobState `json:"state"`
	// PlanKey is the job's content key into the plan cache.
	PlanKey string `json:"plan_key"`
	// Spec echoes the submitted spec.
	Spec JobSpec `json:"spec"`
	// SubmittedNs is the submit time (unix nanoseconds).
	SubmittedNs int64 `json:"submitted_ns"`
	// FootprintBytes is the job's estimated resident tensor footprint,
	// the number memory admission and backend selection key off. Zero
	// when neither feature is enabled (the estimate is skipped).
	FootprintBytes int64 `json:"footprint_bytes,omitempty"`
	// Recovered marks jobs restored from the journal after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// Error carries the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is present once the job is done.
	Result *JobResult `json:"result,omitempty"`
}

// job is the server-side record of one submission.
type job struct {
	id        string
	spec      JobSpec
	sys       *molecule.System
	vspec     ccsd.VariantSpec
	key       string
	submitted time.Time
	// foot is the estimated tensor footprint; accounted tracks whether
	// it is currently counted against the server's memory budget (set
	// at admission, cleared exactly once at the terminal transition,
	// both under Server.mu). recovered marks journal-restored jobs.
	foot      int64
	accounted bool
	recovered bool

	cancel     chan struct{}
	cancelOnce sync.Once

	mu      sync.Mutex
	state   JobState
	err     error
	result  *JobResult
	profile *obsv.Profile
}

// requestCancel fires the job's cancel channel exactly once.
func (j *job) requestCancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// canceled reports whether cancellation was requested.
func (j *job) canceled() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

// setState transitions the job, refusing to leave a terminal state.
func (j *job) setState(s JobState) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = s
	return true
}

// status snapshots the job for the HTTP surface.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:             j.id,
		State:          j.state,
		PlanKey:        j.key,
		Spec:           j.spec,
		SubmittedNs:    j.submitted.UnixNano(),
		FootprintBytes: j.foot,
		Recovered:      j.recovered,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.result != nil {
		r := *j.result
		st.Result = &r
	}
	return st
}
