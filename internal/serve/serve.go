// Package serve is the long-running CCSD service behind cmd/ccsimd: an
// admission queue feeding a bounded pool of executor goroutines, a
// content-keyed LRU cache of compiled plans (see PlanCache), per-job
// cancellation threaded into the runtime, and per-job observability
// profiles. The paper's pipeline — inspection, chain planning, PTG
// construction — is a pure function of (molecule, basis, variant, graph
// shape), so the service compiles it once per distinct key and lets
// every repeat submission skip straight to execution; ROADMAP calls
// this the "millions of users" axis.
//
// Concurrency model: Submit either enqueues a job or fails fast with
// ErrQueueFull (the HTTP layer maps that to 429 + Retry-After).
// MaxConcurrent executor goroutines drain the queue; each job executes
// on its own runtime.Run with its own Global Arrays store and its own
// per-worker scratch shards, so jobs share the machine but no mutable
// state. Cancellation closes a per-job channel observed both by the
// queue (pre-execution) and by the runtime scheduler (mid-execution);
// either way the job's scratch is drained before it reaches a terminal
// state. Shutdown stops admission and drains everything already
// accepted.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/obsv"
	"parsec/internal/runtime"
	"parsec/internal/trace"
)

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity; clients should back off and retry (HTTP 429).
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = errors.New("serve: server shutting down")

// ErrUnknownJob is returned for lookups of job IDs the server never
// issued.
var ErrUnknownJob = errors.New("serve: unknown job")

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent is the number of jobs executing simultaneously
	// (executor goroutines). Default 2.
	MaxConcurrent int
	// QueueDepth is how many admitted jobs may wait for an executor
	// before Submit returns ErrQueueFull. Default 16.
	QueueDepth int
	// CacheCap is the plan cache capacity in entries. Default 32.
	CacheCap int
	// DefaultWorkers is the runtime worker count for jobs that do not
	// set one. Default 1 (jobs scale out across MaxConcurrent slots;
	// raise this to let single jobs scale up instead).
	DefaultWorkers int
	// RetryAfter is the backoff hint attached to queue-full rejections.
	// Default 1s.
	RetryAfter time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 32
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Stats is the server-wide counter snapshot served at /stats.
type Stats struct {
	// Cache is the plan-cache snapshot.
	Cache CacheStats `json:"cache"`
	// Accepted and Rejected count Submit outcomes; Rejected are the
	// 429s.
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	// Queued through Canceled count jobs currently in each state.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// MaxConcurrent and QueueDepth echo the server's admission shape.
	MaxConcurrent int `json:"max_concurrent"`
	QueueDepth    int `json:"queue_depth"`
}

// Server is the CCSD job service. Create with New, submit with Submit,
// and stop with Shutdown; all methods are safe for concurrent use.
type Server struct {
	cfg   Config
	cache *PlanCache

	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	nextID   int
	accepted int64
	rejected int64
	closed   bool

	// hookJobStart, when non-nil, runs as a job enters the running
	// state — a test seam for holding executors mid-job.
	hookJobStart func(*job)
}

// New starts a server: the executor pool is live on return.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: NewPlanCache(cfg.CacheCap),
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  make(map[string]*job),
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// Config returns the server's effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// Cache exposes the plan cache (for stats and tests).
func (s *Server) Cache() *PlanCache { return s.cache }

// Submit validates spec, admits it to the queue, and returns the new
// job's status. ErrQueueFull means the queue is at capacity — retry
// after Config.RetryAfter. The spec is validated before admission, so a
// returned job can only fail at execution time.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	sys, err := spec.system()
	if err != nil {
		return JobStatus{}, err
	}
	if spec.Variant == "" {
		spec.Variant = "v5"
	}
	vspec, err := ccsd.VariantByName(spec.Variant)
	if err != nil {
		return JobStatus{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrShuttingDown
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("j%06d", s.nextID),
		spec:      spec,
		sys:       sys,
		vspec:     vspec,
		key:       PlanKey(sys, spec.Variant, spec.SegmentHeight, spec.WriteSpan, spec.Nodes),
		submitted: time.Now(),
		cancel:    make(chan struct{}),
		state:     JobQueued,
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.accepted++
		s.mu.Unlock()
		return j.status(), nil
	default:
		s.rejected++
		s.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
}

// Job returns the status of a job by ID.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Profile returns a finished job's observability profile, or nil if the
// job has not produced one (still pending, canceled before execution,
// or failed).
func (s *Server) Profile(id string) (*obsv.Profile, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.profile, nil
}

// Cancel requests cancellation of a job. Queued jobs are dropped before
// execution; running jobs halt between tasks (their scratch shards are
// drained by the runtime before Run returns). Cancelling a terminal job
// is a no-op.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrUnknownJob
	}
	j.requestCancel()
	return nil
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Cache:         s.cache.Stats(),
		Accepted:      s.accepted,
		Rejected:      s.rejected,
		MaxConcurrent: s.cfg.MaxConcurrent,
		QueueDepth:    s.cfg.QueueDepth,
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCanceled:
			st.Canceled++
		}
	}
	s.mu.Unlock()
	return st
}

// Shutdown stops admission and blocks until every already-accepted job
// (queued or running) reaches a terminal state. Safe to call once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// runJob drives one job from queued to a terminal state.
func (s *Server) runJob(j *job) {
	if j.canceled() {
		s.finishCanceled(j)
		return
	}
	queueDur := time.Since(j.submitted)
	if !j.setState(JobRunning) {
		return
	}
	if s.hookJobStart != nil {
		s.hookJobStart(j)
	}

	plan, hit, err := s.cache.Get(j.key, func() (*ccsd.CompiledPlan, error) {
		return ccsd.Compile(j.sys, j.vspec, ccsd.Options{
			Nodes:         j.spec.Nodes,
			SegmentHeight: j.spec.SegmentHeight,
			WriteSpan:     j.spec.WriteSpan,
		}), nil
	})
	if err != nil {
		s.finishFailed(j, err)
		return
	}
	if j.canceled() {
		s.finishCanceled(j)
		return
	}

	workers := j.spec.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	tr := trace.New()
	t0 := time.Now()
	res, err := plan.Execute(ccsd.ExecConfig{
		Workers: workers,
		Trace:   tr,
		Cancel:  j.cancel,
	})
	execDur := time.Since(t0)
	if errors.Is(err, runtime.ErrCanceled) {
		s.finishCanceled(j)
		return
	}
	if err != nil {
		s.finishFailed(j, err)
		return
	}

	ph := obsv.Phases{
		QueueNs:  queueDur.Nanoseconds(),
		ExecNs:   execDur.Nanoseconds(),
		CacheHit: hit,
	}
	if !hit {
		ph.InspectNs = plan.InspectTime.Nanoseconds()
		ph.PlanNs = plan.PlanTime.Nanoseconds()
	}
	prof := obsv.FromTrace(fmt.Sprintf("%s %s/%s", j.id, j.sys.Name, j.spec.Variant), tr)
	prof.SetPhases(ph)

	j.mu.Lock()
	if !j.state.Terminal() {
		j.state = JobDone
		j.result = &JobResult{
			Energy:    res.Energy,
			Tasks:     res.Report.Tasks,
			CacheHit:  hit,
			QueueNs:   ph.QueueNs,
			InspectNs: ph.InspectNs,
			PlanNs:    ph.PlanNs,
			ExecNs:    ph.ExecNs,
		}
		j.profile = prof
	}
	j.mu.Unlock()
}

// finishCanceled moves a job to canceled (unless already terminal).
func (s *Server) finishCanceled(j *job) { j.setState(JobCanceled) }

// finishFailed records a failure.
func (s *Server) finishFailed(j *job, err error) {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.state = JobFailed
		j.err = err
	}
	j.mu.Unlock()
}
