// Package serve is the long-running CCSD service behind cmd/ccsimd: an
// admission queue feeding a bounded pool of executor goroutines, a
// content-keyed LRU cache of compiled plans (see PlanCache), per-job
// cancellation threaded into the runtime, and per-job observability
// profiles. The paper's pipeline — inspection, chain planning, PTG
// construction — is a pure function of (molecule, basis, variant, graph
// shape), so the service compiles it once per distinct key and lets
// every repeat submission skip straight to execution; ROADMAP calls
// this the "millions of users" axis.
//
// Concurrency model: Submit either enqueues a job or fails fast with
// ErrQueueFull or ErrOverBudget (the HTTP layer maps both to 429 +
// Retry-After). MaxConcurrent executor goroutines drain the queue; each
// job executes on its own runtime.Run with its own Global Arrays store
// and its own per-worker scratch shards — or, when its estimated tensor
// footprint reaches Config.NetrunBytes, across netrun worker ranks —
// so jobs share the machine but no mutable state. Cancellation closes a
// per-job channel observed by the queue (pre-execution), the runtime
// scheduler, and the netrun coordinator (mid-execution). Shutdown stops
// admission and drains everything already accepted.
//
// Durability: with Config.DataDir set, every job transition is appended
// to a checksummed journal (see Journal) and replayed on startup —
// terminal results are restored verbatim and interrupted jobs are
// re-enqueued. Plans are pure and Global Arrays accumulation is
// ordered, so a re-executed job recomputes a bitwise-identical energy.
package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/molecule"
	"parsec/internal/netrun"
	"parsec/internal/obsv"
	"parsec/internal/runtime"
	"parsec/internal/trace"
)

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity; clients should back off and retry (HTTP 429).
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrOverBudget is returned by Submit when admitting the job would push
// the total estimated tensor footprint of unfinished jobs past
// Config.MemBudget; clients should back off and retry (HTTP 429).
var ErrOverBudget = errors.New("serve: memory budget exceeded")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = errors.New("serve: server shutting down")

// ErrUnknownJob is returned for lookups of job IDs the server never
// issued.
var ErrUnknownJob = errors.New("serve: unknown job")

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent is the number of jobs executing simultaneously
	// (executor goroutines). Default 2.
	MaxConcurrent int
	// QueueDepth is how many admitted jobs may wait for an executor
	// before Submit returns ErrQueueFull. Default 16.
	QueueDepth int
	// CacheCap is the plan cache capacity in entries. Default 32.
	CacheCap int
	// DefaultWorkers is the runtime worker count for jobs that do not
	// set one. Default 1 (jobs scale out across MaxConcurrent slots;
	// raise this to let single jobs scale up instead).
	DefaultWorkers int
	// RetryAfter is the backoff hint attached to queue-full and
	// over-budget rejections. Default 1s.
	RetryAfter time.Duration

	// DataDir, when non-empty, makes job records durable: every
	// transition is appended to DataDir/jobs.journal, and startup
	// replays the log — terminal results restored verbatim, queued and
	// running jobs re-enqueued. Empty keeps everything in memory.
	DataDir string

	// MemBudget, when positive, bounds the summed estimated tensor
	// footprint (bytes, see ccsd.EstimateFootprint) of all
	// admitted-but-unfinished jobs; Submit rejects with ErrOverBudget
	// instead of admitting past it. Zero disables memory admission —
	// only QueueDepth gates.
	MemBudget int64

	// NetrunBytes, when positive, dispatches jobs whose estimated
	// footprint is at least this many bytes onto the netrun
	// multi-process backend (netrun.RunService) instead of the
	// in-process runtime. Zero keeps every job in-process.
	NetrunBytes int64
	// NetrunRanks is the worker rank count for netrun-dispatched jobs.
	// Default 2.
	NetrunRanks int
	// NetrunProcs runs netrun ranks as real OS processes (the calling
	// binary must invoke netrun.MaybeWorkerMain early in main); false
	// runs them as in-process ranks over the same sockets and protocol.
	NetrunProcs bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 32
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.NetrunRanks <= 0 {
		c.NetrunRanks = 2
	}
	return c
}

// Stats is the server-wide counter snapshot served at /stats.
type Stats struct {
	// Cache is the plan-cache snapshot.
	Cache CacheStats `json:"cache"`
	// Accepted and Rejected count Submit outcomes; Rejected are the
	// 429s (queue-full plus over-budget), RejectedMem the over-budget
	// subset.
	Accepted    int64 `json:"accepted"`
	Rejected    int64 `json:"rejected"`
	RejectedMem int64 `json:"rejected_mem"`
	// Queued through Canceled count jobs currently in each state.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// Recovered counts jobs restored from the journal at startup
	// (terminal and re-enqueued alike).
	Recovered int `json:"recovered,omitempty"`
	// AdmittedBytes is the summed footprint of unfinished jobs;
	// MemBudget echoes the configured bound (0 = unlimited).
	AdmittedBytes int64 `json:"admitted_bytes"`
	MemBudget     int64 `json:"mem_budget"`
	// NetrunJobs counts jobs dispatched onto the netrun backend.
	NetrunJobs int64 `json:"netrun_jobs"`
	// Epoch is the boot epoch namespacing this run's job IDs.
	Epoch int `json:"epoch"`
	// MaxConcurrent and QueueDepth echo the server's admission shape.
	MaxConcurrent int `json:"max_concurrent"`
	QueueDepth    int `json:"queue_depth"`
}

// Server is the CCSD job service. Create with Open (or New), submit
// with Submit, and stop with Shutdown; all methods are safe for
// concurrent use.
type Server struct {
	cfg     Config
	cache   *PlanCache
	journal *Journal // nil without DataDir
	epoch   int

	queue chan *job
	wg    sync.WaitGroup

	mu            sync.Mutex
	jobs          map[string]*job
	nextID        int
	accepted      int64
	rejected      int64
	rejectedMem   int64
	netrunJobs    int64
	recovered     int
	admittedBytes int64
	closed        bool

	// footMu guards the memoized per-system footprint estimates
	// (footprints is keyed by system identity, not plan key: variant
	// and graph shape do not change which blocks exist).
	footMu     sync.Mutex
	footprints map[string]int64

	// hookJobStart, when non-nil, runs as a job enters the running
	// state — a test seam for holding executors mid-job.
	hookJobStart func(*job)
}

// New starts a server and panics if its journal cannot be opened; it is
// the convenience constructor for memory-only configurations (no
// DataDir), where no failure mode exists. Daemons with a DataDir should
// call Open and handle the error.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a server: the journal (if Config.DataDir is set) is
// replayed, interrupted jobs are re-enqueued, and the executor pool is
// live on return.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		cache:      NewPlanCache(cfg.CacheCap),
		jobs:       make(map[string]*job),
		footprints: make(map[string]int64),
		epoch:      1,
	}

	var pending []*job
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, err
		}
		jl, recs, err := OpenJournal(filepath.Join(cfg.DataDir, "jobs.journal"))
		if err != nil {
			return nil, err
		}
		s.journal = jl
		pending = s.restore(reduceRecords(recs))
		if err := jl.Append(Record{Op: OpBoot, Epoch: s.epoch}); err != nil {
			jl.Close()
			return nil, err
		}
	}

	// Recovered jobs must never be dropped by the bounded queue, so the
	// channel is sized to hold all of them on top of the normal depth.
	s.queue = make(chan *job, cfg.QueueDepth+len(pending))
	for _, j := range pending {
		s.queue <- j
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s, nil
}

// restore rebuilds the jobs map from a replayed journal: terminal jobs
// keep their recorded results verbatim; queued/running jobs are
// revalidated and returned for re-enqueue (admission bookkeeping
// included — they were admitted before the crash, so they bypass the
// budget check). Jobs whose spec no longer validates are marked failed.
func (s *Server) restore(st *replayState) []*job {
	s.epoch = st.MaxEpoch + 1
	var pending []*job
	for _, id := range st.Order {
		rj := st.Jobs[id]
		j := &job{
			id:        rj.ID,
			spec:      rj.Spec,
			key:       rj.Key,
			submitted: time.Unix(0, rj.SubmittedNs),
			cancel:    make(chan struct{}),
			state:     rj.State,
			recovered: true,
		}
		s.jobs[j.id] = j
		s.recovered++
		switch {
		case rj.State == JobDone:
			j.result = rj.Result
		case rj.State == JobFailed:
			j.err = errors.New(rj.Error)
		case rj.State.Terminal():
			// canceled: nothing more to restore
		default:
			sys, err := rj.Spec.system()
			if err == nil {
				j.vspec, err = ccsd.VariantByName(rj.Spec.Variant)
			}
			if err != nil {
				j.state = JobFailed
				j.err = fmt.Errorf("serve: recovered job no longer valid: %w", err)
				s.journalAppend(Record{Op: OpFailed, ID: j.id, Error: j.err.Error()})
				continue
			}
			j.sys = sys
			j.state = JobQueued
			j.foot = s.footprint(sys)
			j.accounted = true
			s.admittedBytes += j.foot
			pending = append(pending, j)
		}
	}
	return pending
}

// Config returns the server's effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// Cache exposes the plan cache (for stats and tests).
func (s *Server) Cache() *PlanCache { return s.cache }

// footprint returns the memoized footprint estimate for sys. The
// estimate is a pure function of the system, so it is computed once per
// distinct system the server ever sees. It is skipped entirely (zero)
// when neither memory admission nor netrun dispatch is enabled.
func (s *Server) footprint(sys *molecule.System) int64 {
	if s.cfg.MemBudget <= 0 && s.cfg.NetrunBytes <= 0 {
		return 0
	}
	key := fmt.Sprintf("%s|%d|%d|%d|%d|%#x",
		sys.Name, sys.NOccupied, sys.NVirtual, sys.TileTarget, sys.NIrreps, sys.Seed)
	s.footMu.Lock()
	defer s.footMu.Unlock()
	if f, ok := s.footprints[key]; ok {
		return f
	}
	f := ccsd.EstimateFootprint(sys)
	s.footprints[key] = f
	return f
}

// journalAppend writes rec if a journal is open; transition-record
// failures are reported to stderr but do not fail the job (the journal
// degrades to best-effort once the disk misbehaves).
func (s *Server) journalAppend(rec Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		fmt.Fprintf(os.Stderr, "serve: journal append (%s %s): %v\n", rec.Op, rec.ID, err)
	}
}

// Submit validates spec, admits it to the queue, and returns the new
// job's status. ErrQueueFull means the queue is at capacity and
// ErrOverBudget that the job's estimated tensor footprint does not fit
// the memory budget — retry either after Config.RetryAfter. The spec is
// validated before admission, so a returned job can only fail at
// execution time.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	sys, err := spec.system()
	if err != nil {
		return JobStatus{}, err
	}
	if spec.Variant == "" {
		spec.Variant = "v5"
	}
	vspec, err := ccsd.VariantByName(spec.Variant)
	if err != nil {
		return JobStatus{}, err
	}
	shape, err := ccsd.EffectiveShape(vspec, spec.SegmentHeight, spec.WriteSpan)
	if err != nil {
		return JobStatus{}, err
	}
	foot := s.footprint(sys)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrShuttingDown
	}
	if s.cfg.MemBudget > 0 && s.admittedBytes+foot > s.cfg.MemBudget {
		s.rejected++
		s.rejectedMem++
		s.mu.Unlock()
		return JobStatus{}, ErrOverBudget
	}
	s.nextID++
	j := &job{
		// IDs are namespaced by the boot epoch so no two daemon
		// lifetimes ever issue the same ID (journal replay depends on
		// that); %06d widens past 999,999 instead of wrapping.
		id:        fmt.Sprintf("j%d-%06d", s.epoch, s.nextID),
		spec:      spec,
		sys:       sys,
		vspec:     vspec,
		key:       PlanKey(sys, shape, spec.Nodes),
		foot:      foot,
		submitted: time.Now(),
		cancel:    make(chan struct{}),
		state:     JobQueued,
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.accepted++
		j.accounted = true
		s.admittedBytes += foot
		s.mu.Unlock()
		s.journalAppend(Record{
			Op:          OpSubmit,
			ID:          j.id,
			Key:         j.key,
			Spec:        &j.spec,
			SubmittedNs: j.submitted.UnixNano(),
		})
		return j.status(), nil
	default:
		s.rejected++
		s.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
}

// Job returns the status of a job by ID.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Profile returns a finished job's observability profile, or nil if the
// job has not produced one (still pending, canceled before execution,
// failed, or restored from the journal — profiles are not persisted).
func (s *Server) Profile(id string) (*obsv.Profile, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.profile, nil
}

// Cancel requests cancellation of a job. Queued jobs are dropped before
// execution; running jobs halt between tasks (their scratch shards are
// drained by the runtime before Run returns). Cancelling a terminal job
// is a no-op.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrUnknownJob
	}
	j.requestCancel()
	return nil
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Cache:         s.cache.Stats(),
		Accepted:      s.accepted,
		Rejected:      s.rejected,
		RejectedMem:   s.rejectedMem,
		Recovered:     s.recovered,
		AdmittedBytes: s.admittedBytes,
		MemBudget:     s.cfg.MemBudget,
		NetrunJobs:    s.netrunJobs,
		Epoch:         s.epoch,
		MaxConcurrent: s.cfg.MaxConcurrent,
		QueueDepth:    s.cfg.QueueDepth,
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCanceled:
			st.Canceled++
		}
	}
	s.mu.Unlock()
	return st
}

// Shutdown stops admission and blocks until every already-accepted job
// (queued or running) reaches a terminal state. Safe to call
// concurrently and more than once; every call returns only after the
// drain completes.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	if s.journal != nil {
		s.journal.Close()
	}
}

// runJob drives one job from queued to a terminal state, selecting the
// in-process runtime or the netrun backend by footprint.
func (s *Server) runJob(j *job) {
	if j.canceled() {
		s.finishCanceled(j)
		return
	}
	queueDur := time.Since(j.submitted)
	if !j.setState(JobRunning) {
		return
	}
	s.journalAppend(Record{Op: OpRunning, ID: j.id})
	if s.hookJobStart != nil {
		s.hookJobStart(j)
	}
	if s.cfg.NetrunBytes > 0 && j.foot >= s.cfg.NetrunBytes {
		s.runJobNetrun(j, queueDur)
		return
	}

	plan, hit, err := s.cache.Get(j.key, func() (*ccsd.CompiledPlan, error) {
		return ccsd.Compile(j.sys, j.vspec, ccsd.Options{
			Nodes:         j.spec.Nodes,
			SegmentHeight: j.spec.SegmentHeight,
			WriteSpan:     j.spec.WriteSpan,
		}), nil
	})
	if err != nil {
		s.finishFailed(j, err)
		return
	}
	if j.canceled() {
		s.finishCanceled(j)
		return
	}

	workers := j.spec.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	tr := trace.New()
	t0 := time.Now()
	res, err := plan.Execute(ccsd.ExecConfig{
		Workers: workers,
		Trace:   tr,
		Cancel:  j.cancel,
	})
	execDur := time.Since(t0)
	if errors.Is(err, runtime.ErrCanceled) {
		s.finishCanceled(j)
		return
	}
	if err != nil {
		s.finishFailed(j, err)
		return
	}

	ph := obsv.Phases{
		QueueNs:  queueDur.Nanoseconds(),
		ExecNs:   execDur.Nanoseconds(),
		CacheHit: hit,
	}
	if !hit {
		ph.InspectNs = plan.InspectTime.Nanoseconds()
		ph.PlanNs = plan.PlanTime.Nanoseconds()
	}
	prof := obsv.FromTrace(fmt.Sprintf("%s %s/%s", j.id, j.sys.Name, j.spec.Variant), tr)
	prof.SetPhases(ph)

	s.finishDone(j, &JobResult{
		Energy:    res.Energy,
		Tasks:     res.Report.Tasks,
		Backend:   BackendInProcess,
		CacheHit:  hit,
		QueueNs:   ph.QueueNs,
		InspectNs: ph.InspectNs,
		PlanNs:    ph.PlanNs,
		ExecNs:    ph.ExecNs,
	}, prof)
}

// runJobNetrun executes one job across netrun worker ranks: the graph
// is rebuilt rank-locally from the serialized spec (the plan cache does
// not apply — workers own their inspection), cancellation threads into
// the coordinator, and the distributed trace feeds the job profile.
func (s *Server) runJobNetrun(j *job, queueDur time.Duration) {
	nspec := netrun.JobSpec{
		Variant:       j.spec.Variant,
		SegmentHeight: j.spec.SegmentHeight,
		WriteSpan:     j.spec.WriteSpan,
	}
	if c := j.spec.Custom; c != nil {
		nspec.Custom = &netrun.CustomSpec{
			Name:       c.Name,
			NOccupied:  c.NOccupied,
			NVirtual:   c.NVirtual,
			TileTarget: c.TileTarget,
			NIrreps:    c.NIrreps,
			Seed:       c.Seed,
		}
	} else {
		nspec.Preset = j.spec.Preset
	}
	policy, err := nspec.Policy()
	if err != nil {
		s.finishFailed(j, err)
		return
	}
	workers := j.spec.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	s.mu.Lock()
	s.netrunJobs++
	s.mu.Unlock()

	t0 := time.Now()
	res, err := netrun.RunService(netrun.Config{
		Ranks:   s.cfg.NetrunRanks,
		Workers: workers,
		Policy:  policy,
		Cancel:  j.cancel,
	}, nspec, netrun.ServiceOptions{Processes: s.cfg.NetrunProcs})
	execDur := time.Since(t0)
	if errors.Is(err, netrun.ErrCanceled) || errors.Is(err, runtime.ErrCanceled) {
		s.finishCanceled(j)
		return
	}
	if err != nil {
		s.finishFailed(j, err)
		return
	}

	prof := res.Profile(fmt.Sprintf("%s %s/%s", j.id, j.sys.Name, j.spec.Variant))
	prof.SetPhases(obsv.Phases{
		QueueNs: queueDur.Nanoseconds(),
		ExecNs:  execDur.Nanoseconds(),
	})
	s.finishDone(j, &JobResult{
		Energy:  res.Energy,
		Tasks:   res.Tasks,
		Backend: BackendNetrun,
		Ranks:   res.Ranks,
		QueueNs: queueDur.Nanoseconds(),
		ExecNs:  execDur.Nanoseconds(),
	}, prof)
}

// finishDone records success (unless the job already reached a terminal
// state) with its result and profile.
func (s *Server) finishDone(j *job, result *JobResult, prof *obsv.Profile) {
	j.mu.Lock()
	changed := !j.state.Terminal()
	if changed {
		j.state = JobDone
		j.result = result
		j.profile = prof
	}
	j.mu.Unlock()
	if changed {
		s.noteTerminal(j, Record{Op: OpDone, ID: j.id, Result: result})
	}
}

// finishCanceled moves a job to canceled (unless already terminal).
func (s *Server) finishCanceled(j *job) {
	if j.setState(JobCanceled) {
		s.noteTerminal(j, Record{Op: OpCanceled, ID: j.id})
	}
}

// finishFailed records a failure.
func (s *Server) finishFailed(j *job, err error) {
	j.mu.Lock()
	changed := !j.state.Terminal()
	if changed {
		j.state = JobFailed
		j.err = err
	}
	j.mu.Unlock()
	if changed {
		s.noteTerminal(j, Record{Op: OpFailed, ID: j.id, Error: err.Error()})
	}
}

// noteTerminal runs exactly once per job as it reaches a terminal
// state: it releases the job's admission footprint and journals the
// transition.
func (s *Server) noteTerminal(j *job, rec Record) {
	s.mu.Lock()
	if j.accounted {
		j.accounted = false
		s.admittedBytes -= j.foot
	}
	s.mu.Unlock()
	s.journalAppend(rec)
}
