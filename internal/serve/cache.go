package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"parsec/internal/ccsd"
	"parsec/internal/molecule"
	"parsec/internal/xform"
)

// PlanKey computes the content key of a compiled plan: a SHA-256 over a
// canonical rendering of everything the plan is a function of — the
// molecular system (orbital counts, basis size, tiling, symmetry labels,
// and the amplitude seed), the resolved plan shape, and the affinity
// node count. The shape is keyed by its canonical normalized string, not
// the variant name the client sent: "v5" and "seg=1,fission=none" are
// the same plan and share a cache entry, while recipe dimensions the old
// key never saw (reduction-tree arity, priority scheme) now correctly
// split entries. Runtime worker count is deliberately excluded: it
// changes how a plan executes, not what the plan is, so jobs differing
// only in workers share an entry.
func PlanKey(sys *molecule.System, shape xform.Shape, nodes int) string {
	canon := fmt.Sprintf("sys=%s|occ=%d|virt=%d|basis=%d|irreps=%d|tile=%d|seed=%#x|shape=%s|nodes=%d",
		sys.Name, sys.NOccupied, sys.NVirtual, sys.BasisFns, sys.NIrreps,
		sys.TileTarget, sys.Seed, shape.Canon(), nodes)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// cacheEntry is one plan slot. ready is closed when compilation
// finishes (successfully or not); waiters block on it, so concurrent
// same-key requests ride one compile instead of racing their own.
type cacheEntry struct {
	key   string
	ready chan struct{}
	plan  *ccsd.CompiledPlan
	err   error
	elem  *list.Element
	done  bool
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits counts lookups that found an entry, including ones that
	// joined a compile still in flight (they avoid the work all the
	// same). Misses counts lookups that had to compile.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// PlanCache is a content-keyed LRU of compiled plans with singleflight
// admission: the first requester of a key compiles while later
// requesters wait for its result, so a burst of identical submissions
// costs one inspection + planning pass. Failed compiles are not cached —
// the entry is removed so a later submission retries.
type PlanCache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*cacheEntry
	lru       *list.List // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

// NewPlanCache returns a cache holding at most capacity ready plans
// (capacity < 1 is treated as 1). In-flight compiles never count against
// the cap, so admission can transiently overshoot it.
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		capacity: capacity,
		entries:  make(map[string]*cacheEntry),
		lru:      list.New(),
	}
}

// Get returns the plan for key, compiling it with compile on a miss.
// The boolean reports whether the lookup was a hit (the plan existed or
// was already being compiled by another goroutine). Errors from compile
// propagate to every waiter of that flight and evict the entry.
func (c *PlanCache) Get(key string, compile func() (*ccsd.CompiledPlan, error)) (*ccsd.CompiledPlan, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		return e.plan, true, e.err
	}
	c.misses++
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()

	plan, err := compile()

	c.mu.Lock()
	e.plan, e.err, e.done = plan, err, true
	if err != nil {
		// Do not cache failures: remove the entry (if a concurrent
		// eviction has not already) so the next Get retries.
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.lru.Remove(e.elem)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return plan, false, err
}

// evictLocked trims ready entries from the LRU tail until the cache fits
// its capacity. In-flight entries are skipped — their requesters hold
// the result channel — so the map can exceed capacity while compiles
// are outstanding.
func (c *PlanCache) evictLocked() {
	over := len(c.entries) - c.capacity
	for el := c.lru.Back(); el != nil && over > 0; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e.done {
			delete(c.entries, e.key)
			c.lru.Remove(el)
			c.evictions++
			over--
		}
		el = prev
	}
}

// Stats snapshots the hit/miss/eviction counters and current size.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Capacity:  c.capacity,
	}
}
