package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The durable job journal: an append-only, length-prefixed record log
// that persists every job lifecycle transition so a restarted daemon
// can restore terminal results verbatim and re-enqueue interrupted
// jobs. Re-execution is safe because compiled plans are pure functions
// of their spec and Global Arrays accumulation is ordered: a recovered
// job recomputes a bitwise-identical energy.
//
// On-disk layout (all integers little-endian):
//
//	8-byte magic "CCSDJNL1"
//	repeated records: uint32 payload length | uint32 CRC-32 (IEEE) of
//	payload | payload (JSON-encoded Record)
//
// Appends are atomic at the record level in the crash model that
// matters here (SIGKILL of the process): a torn final record fails its
// length or CRC check and is truncated away on the next open, so
// replay always sees a clean prefix of the history. Corruption is
// detected, never silently skipped — replay stops at the first bad
// record and discards everything after it, preserving the append-only
// prefix property.

// journalMagic identifies (and versions) the journal file format.
const journalMagic = "CCSDJNL1"

// Record ops, one per journal-worthy event.
const (
	// OpBoot marks a daemon start and carries the boot epoch that
	// namespaces the job IDs issued during that run.
	OpBoot = "boot"
	// OpSubmit records an admitted job: ID, spec, plan key, submit time.
	OpSubmit = "submit"
	// OpRunning records that an executor picked the job up.
	OpRunning = "running"
	// OpDone records successful completion with the full result.
	OpDone = "done"
	// OpFailed records execution failure with the error text.
	OpFailed = "failed"
	// OpCanceled records cancellation reaching a terminal state.
	OpCanceled = "canceled"
)

// Record is one journal entry. Op selects which fields are meaningful.
type Record struct {
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// Epoch is the per-boot ID namespace (OpBoot only).
	Epoch int `json:"epoch,omitempty"`
	// ID is the job the record concerns (all ops except OpBoot).
	ID string `json:"id,omitempty"`
	// Key is the job's plan cache key (OpSubmit).
	Key string `json:"key,omitempty"`
	// Spec is the validated submit body (OpSubmit).
	Spec *JobSpec `json:"spec,omitempty"`
	// SubmittedNs is the submit wall time in unix nanoseconds (OpSubmit).
	SubmittedNs int64 `json:"submitted_ns,omitempty"`
	// Result is the full job result (OpDone).
	Result *JobResult `json:"result,omitempty"`
	// Error is the failure message (OpFailed).
	Error string `json:"error,omitempty"`
}

// Journal is an open append-only job log. All methods are safe for
// concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (or creates) the journal at path, replays every
// intact record, truncates any torn or corrupt tail, and returns the
// journal positioned for appends plus the replayed records in append
// order.
func OpenJournal(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, good, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop the torn/corrupt tail (if any) so appends extend a clean
	// prefix instead of burying garbage mid-file.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{f: f, path: path}
	if good == 0 {
		if _, err := f.Write([]byte(journalMagic)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, recs, nil
}

// replay reads records until EOF or the first bad record, returning the
// intact records and the byte offset of the end of the clean prefix.
func replay(f *os.File) ([]Record, int64, error) {
	magic := make([]byte, len(journalMagic))
	n, err := io.ReadFull(f, magic)
	if err == io.EOF && n == 0 {
		return nil, 0, nil // fresh file
	}
	if err != nil || string(magic) != journalMagic {
		return nil, 0, fmt.Errorf("serve: journal has bad magic (not a job journal?)")
	}
	var (
		recs []Record
		good = int64(len(journalMagic))
		hdr  [8]byte
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return recs, good, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > 16<<20 {
			return recs, good, nil // implausible length: treat as torn
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, good, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, good, nil // corrupt record: stop at the prefix
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, good, nil
		}
		recs = append(recs, rec)
		good += 8 + int64(length)
	}
}

// Append encodes rec and writes one length-prefixed, checksummed record.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serve: journal closed")
	}
	_, err = j.f.Write(buf)
	return err
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// replayState is the in-memory reduction of a journal: the final state
// of every job mentioned, with the state machine invariants enforced
// (submit must precede transitions, terminal states never regress).
type replayState struct {
	// MaxEpoch is the highest boot epoch seen; the next boot uses
	// MaxEpoch+1 so job IDs are unique across every restart.
	MaxEpoch int
	// Jobs maps job ID to its reduced record, in first-submit order
	// (Order keeps the deterministic re-enqueue sequence).
	Jobs  map[string]*replayJob
	Order []string
}

// replayJob is one job's journal-reduced state.
type replayJob struct {
	// ID, Key, Spec, SubmittedNs echo the submit record.
	ID          string
	Key         string
	Spec        JobSpec
	SubmittedNs int64
	// State is the final replayed state (queued/running collapse to
	// queued for re-enqueue; terminal states are preserved verbatim).
	State JobState
	// Result is present for done jobs, Error for failed ones.
	Result *JobResult
	Error  string
}

// reduceRecords folds a record sequence into per-job final states.
// Records that violate the state machine (transitions before submit,
// transitions out of a terminal state, duplicate submits) are ignored:
// the journal is data, not trusted input, and replay must hold the
// invariants regardless of what the file contains.
func reduceRecords(recs []Record) *replayState {
	st := &replayState{Jobs: make(map[string]*replayJob)}
	for _, rec := range recs {
		switch rec.Op {
		case OpBoot:
			if rec.Epoch > st.MaxEpoch {
				st.MaxEpoch = rec.Epoch
			}
		case OpSubmit:
			if rec.ID == "" || rec.Spec == nil {
				continue
			}
			if _, dup := st.Jobs[rec.ID]; dup {
				continue
			}
			st.Jobs[rec.ID] = &replayJob{
				ID:          rec.ID,
				Key:         rec.Key,
				Spec:        *rec.Spec,
				SubmittedNs: rec.SubmittedNs,
				State:       JobQueued,
			}
			st.Order = append(st.Order, rec.ID)
		case OpRunning:
			if jb, ok := st.Jobs[rec.ID]; ok && !jb.State.Terminal() {
				jb.State = JobRunning
			}
		case OpDone:
			if jb, ok := st.Jobs[rec.ID]; ok && !jb.State.Terminal() && rec.Result != nil {
				jb.State = JobDone
				jb.Result = rec.Result
			}
		case OpFailed:
			if jb, ok := st.Jobs[rec.ID]; ok && !jb.State.Terminal() {
				jb.State = JobFailed
				jb.Error = rec.Error
			}
		case OpCanceled:
			if jb, ok := st.Jobs[rec.ID]; ok && !jb.State.Terminal() {
				jb.State = JobCanceled
			}
		}
	}
	return st
}
