package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"parsec/internal/ccsd"
	"parsec/internal/molecule"
)

// keyFor resolves a variant/recipe string plus overrides to its plan
// key, the way Submit does: name → recipe → effective shape → key.
func keyFor(t *testing.T, sys *molecule.System, variant string, seg, span, nodes int) string {
	t.Helper()
	spec, err := ccsd.VariantByName(variant)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := ccsd.EffectiveShape(spec, seg, span)
	if err != nil {
		t.Fatal(err)
	}
	return PlanKey(sys, shape, nodes)
}

// compileWater compiles the water plan, counting invocations.
func compileWater(n *atomic.Int64) func() (*ccsd.CompiledPlan, error) {
	return func() (*ccsd.CompiledPlan, error) {
		n.Add(1)
		spec, err := ccsd.VariantByName("v5")
		if err != nil {
			return nil, err
		}
		return ccsd.Compile(molecule.Water631G(), spec, ccsd.Options{Nodes: 1}), nil
	}
}

// TestCacheHitMissCounters pins the counter semantics: first Get of a
// key is a miss, every later Get is a hit.
func TestCacheHitMissCounters(t *testing.T) {
	c := NewPlanCache(4)
	var compiles atomic.Int64
	key := keyFor(t, molecule.Water631G(), "v5", 0, 0, 1)

	p1, hit, err := c.Get(key, compileWater(&compiles))
	if err != nil || hit || p1 == nil {
		t.Fatalf("first Get: plan=%v hit=%v err=%v, want miss with plan", p1, hit, err)
	}
	p2, hit, err := c.Get(key, compileWater(&compiles))
	if err != nil || !hit {
		t.Fatalf("second Get: hit=%v err=%v, want hit", hit, err)
	}
	if p2 != p1 {
		t.Fatal("cache returned a different plan pointer on hit")
	}
	if n := compiles.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestCacheLRUEviction fills a cap-2 cache with three keys and checks
// the least recently used one is evicted.
func TestCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	var compiles atomic.Int64
	keys := []string{"k-a", "k-b", "k-c"}
	for _, k := range keys[:2] {
		if _, _, err := c.Get(k, compileWater(&compiles)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k-a so k-b becomes the LRU victim.
	if _, hit, _ := c.Get(keys[0], compileWater(&compiles)); !hit {
		t.Fatal("k-a should be cached")
	}
	if _, _, err := c.Get(keys[2], compileWater(&compiles)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	if _, hit, _ := c.Get(keys[0], compileWater(&compiles)); !hit {
		t.Fatal("k-a should have survived eviction")
	}
	// Checked after k-a: this miss re-inserts k-b and evicts another
	// entry, so it must come last.
	if _, hit, _ := c.Get(keys[1], compileWater(&compiles)); hit {
		t.Fatal("k-b should have been evicted")
	}
}

// TestCacheSingleflight launches many concurrent Gets of one key and
// checks the compile ran exactly once, with every caller receiving the
// same plan.
func TestCacheSingleflight(t *testing.T) {
	c := NewPlanCache(4)
	var compiles atomic.Int64
	key := keyFor(t, molecule.Water631G(), "v5", 0, 0, 1)

	const callers = 32
	plans := make([]*ccsd.CompiledPlan, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			p, _, err := c.Get(key, compileWater(&compiles))
			if err != nil {
				t.Error(err)
			}
			plans[i] = p
		}(i)
	}
	close(start)
	wg.Wait()

	if n := compiles.Load(); n != 1 {
		t.Fatalf("compile ran %d times under %d concurrent Gets, want 1", n, callers)
	}
	for i := 1; i < callers; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("caller %d got a different plan pointer", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits", st, callers-1)
	}
}

// TestCacheCompileErrorNotCached pins that a failed compile is evicted
// so the next Get retries instead of replaying the error forever.
func TestCacheCompileErrorNotCached(t *testing.T) {
	c := NewPlanCache(4)
	boom := errors.New("boom")
	var calls atomic.Int64
	fail := func() (*ccsd.CompiledPlan, error) { calls.Add(1); return nil, boom }

	if _, _, err := c.Get("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	var compiles atomic.Int64
	p, hit, err := c.Get("k", compileWater(&compiles))
	if err != nil || hit || p == nil {
		t.Fatalf("retry after error: plan=%v hit=%v err=%v, want fresh miss", p, hit, err)
	}
	if calls.Load() != 1 || compiles.Load() != 1 {
		t.Fatalf("calls = %d, compiles = %d, want 1 and 1", calls.Load(), compiles.Load())
	}
}

// TestCacheInFlightNotEvicted keeps a cap-1 cache compiling one key
// while a second key is admitted: the in-flight entry must survive and
// deliver its plan to the waiter.
func TestCacheInFlightNotEvicted(t *testing.T) {
	c := NewPlanCache(1)
	gate := make(chan struct{})
	var compiles atomic.Int64

	done := make(chan *ccsd.CompiledPlan)
	go func() {
		p, _, _ := c.Get("slow", func() (*ccsd.CompiledPlan, error) {
			<-gate
			return compileWater(&compiles)()
		})
		done <- p
	}()
	// Admit another key while "slow" compiles; eviction must skip it.
	if _, _, err := c.Get("fast", compileWater(&compiles)); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if p := <-done; p == nil {
		t.Fatal("in-flight entry lost its plan")
	}
	// The waiter-side entry is still usable.
	if p, hit, _ := c.Get("slow", compileWater(&compiles)); p == nil || !hit {
		t.Log("slow was evicted after completing — acceptable for cap-1, but plan must recompile cleanly")
	}
}

// TestPlanKeyDistinguishesInputs checks the content key separates every
// plan-affecting dimension — including the recipe dimensions the
// pre-recipe key never carried (tree arity, priority scheme) — and
// ignores none of them.
func TestPlanKeyDistinguishesInputs(t *testing.T) {
	base := keyFor(t, molecule.Water631G(), "v5", 0, 0, 1)
	variants := map[string]string{
		"system":  keyFor(t, molecule.Benzene631G(), "v5", 0, 0, 1),
		"variant": keyFor(t, molecule.Water631G(), "v4", 0, 0, 1),
		"segment": keyFor(t, molecule.Water631G(), "v5", 2, 0, 1),
		"span":    keyFor(t, molecule.Water631G(), "v5", 0, 2, 1),
		"nodes":   keyFor(t, molecule.Water631G(), "v5", 0, 0, 4),
		"arity":   keyFor(t, molecule.Water631G(), "seg=1,tree=4,fission=none", 0, 0, 1),
		"prio":    keyFor(t, molecule.Water631G(), "seg=1,fission=none,prio=none", 0, 0, 1),
	}
	seen := map[string]string{base: "base"}
	for dim, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("key for %s collides with %s", dim, prev)
		}
		seen[k] = dim
	}
	if again := keyFor(t, molecule.Water631G(), "v5", 0, 0, 1); again != base {
		t.Error("key is not deterministic")
	}
	for dim, k := range variants {
		if len(k) != 64 {
			t.Errorf("%s key is not a sha256 hex: %q", dim, k)
		}
	}
}

// TestPlanKeyUnifiesEquivalentSpellings pins the other half of the key
// contract: different spellings of the same resolved shape must share a
// cache entry. "v5" and its flat grammar form are one plan; a moot
// dimension (tree arity under a full chain, span under fissioned
// writes) must not fork the key; and an explicit seg override equal to
// the recipe's own height changes nothing.
func TestPlanKeyUnifiesEquivalentSpellings(t *testing.T) {
	sys := molecule.Water631G()
	groups := map[string][2]string{
		"v5-flat":     {keyFor(t, sys, "v5", 0, 0, 1), keyFor(t, sys, "seg=1,fission=none", 0, 0, 1)},
		"v3-flat":     {keyFor(t, sys, "v3", 0, 0, 1), keyFor(t, sys, "seg=1,fission=writes", 0, 0, 1)},
		"moot-tree":   {keyFor(t, sys, "v1", 0, 0, 1), keyFor(t, sys, "seg=full,tree=7,fission=writes", 0, 0, 1)},
		"seg-via-cli": {keyFor(t, sys, "seg=2,fission=none", 0, 0, 1), keyFor(t, sys, "v5", 2, 0, 1)},
	}
	for name, pair := range groups {
		if pair[0] != pair[1] {
			t.Errorf("%s: equivalent spellings got distinct keys — a recompile the cache should have absorbed", name)
		}
	}
}

// TestCacheEvictionChurn exercises the LRU under a rolling key set much
// larger than the cap; entries must stay bounded by the capacity.
func TestCacheEvictionChurn(t *testing.T) {
	c := NewPlanCache(3)
	var compiles atomic.Int64
	for i := 0; i < 20; i++ {
		if _, _, err := c.Get(fmt.Sprintf("key-%d", i%7), compileWater(&compiles)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries > 3 {
		t.Fatalf("entries = %d, want <= cap 3", st.Entries)
	}
	if st.Hits+st.Misses != 20 {
		t.Fatalf("hits+misses = %d, want 20", st.Hits+st.Misses)
	}
}
