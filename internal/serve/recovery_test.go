package serve

import (
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/molecule"
	"parsec/internal/tce"
)

// TestServerRecovery is the restart story at the package level: a first
// server lifetime produces done and canceled jobs; the journal is then
// extended with an interrupted (running) job exactly as a crashed
// lifetime would leave it; the second lifetime must restore terminal
// results verbatim, re-enqueue and complete the interrupted job to a
// bitwise-identical energy, and issue IDs from a fresh epoch.
func TestServerRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{MaxConcurrent: 1, DataDir: dir}

	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Preset: "water", Variant: "v5"}
	done, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done = waitTerminal(t, s1, done.ID)
	if done.State != JobDone {
		t.Fatalf("first-life job state = %s, want done", done.State)
	}
	eWater := done.Result.Energy

	canceled, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	s1.Cancel(canceled.ID)
	canceled = waitTerminal(t, s1, canceled.ID)
	s1.Shutdown()

	// Simulate the crash residue a SIGKILL leaves behind: a job that was
	// submitted and running but never reached a terminal record, plus one
	// whose spec no longer validates.
	sys := molecule.Water631G()
	jl, _, err := OpenJournal(filepath.Join(dir, "jobs.journal"))
	if err != nil {
		t.Fatal(err)
	}
	interrupted := Record{
		Op: OpSubmit, ID: "j1-999999",
		Key:  keyFor(t, sys, "v5", 0, 0, 0),
		Spec: &spec, SubmittedNs: time.Now().UnixNano(),
	}
	badSpec := JobSpec{Preset: "unobtainium", Variant: "v5"}
	for _, rec := range []Record{
		interrupted,
		{Op: OpRunning, ID: interrupted.ID},
		{Op: OpSubmit, ID: "j1-999998", Spec: &badSpec, SubmittedNs: time.Now().UnixNano()},
	} {
		if err := jl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jl.Close()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()

	// Terminal results come back verbatim and flagged recovered.
	rDone, err := s2.Job(done.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rDone.State != JobDone || rDone.Result == nil || !rDone.Recovered {
		t.Fatalf("recovered done job = %+v, want done+recovered with result", rDone)
	}
	if rDone.Result.Energy != eWater {
		t.Fatalf("recovered energy %.15f != recorded %.15f (must be bitwise)", rDone.Result.Energy, eWater)
	}
	if rCan, _ := s2.Job(canceled.ID); rCan.State != JobCanceled {
		t.Fatalf("recovered canceled job state = %s, want canceled", rCan.State)
	}

	// The interrupted job re-executes to a bitwise-identical energy.
	ri := waitTerminal(t, s2, interrupted.ID)
	if ri.State != JobDone {
		t.Fatalf("interrupted job state = %s (%s), want done", ri.State, ri.Error)
	}
	if ri.Result.Energy != eWater {
		t.Fatalf("re-executed energy %.15f != first-life energy %.15f (must be bitwise)", ri.Result.Energy, eWater)
	}

	// The no-longer-valid job fails instead of wedging the queue.
	if rBad, _ := s2.Job("j1-999998"); rBad.State != JobFailed || !strings.Contains(rBad.Error, "no longer valid") {
		t.Fatalf("invalid recovered job = %+v, want failed", rBad)
	}

	// The second lifetime runs in a fresh epoch with non-colliding IDs.
	st := s2.Stats()
	if st.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", st.Epoch)
	}
	if st.Recovered != 4 {
		t.Fatalf("recovered = %d, want 4", st.Recovered)
	}
	fresh, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fresh.ID, "j2-") {
		t.Fatalf("fresh job ID %q not namespaced by epoch 2", fresh.ID)
	}
	if _, collide := map[string]bool{done.ID: true, canceled.ID: true}[fresh.ID]; collide {
		t.Fatalf("fresh ID %q collides with a first-life ID", fresh.ID)
	}
	waitTerminal(t, s2, fresh.ID)
}

// TestServerMemBudget exercises memory-based admission: a budget that
// fits one water job admits the first, rejects the second with
// ErrOverBudget while the first is unfinished, and admits again once the
// footprint is released.
func TestServerMemBudget(t *testing.T) {
	foot := ccsd.EstimateFootprint(molecule.Water631G())
	if foot <= 0 {
		t.Fatalf("EstimateFootprint(water) = %d, want positive", foot)
	}
	gate := make(chan struct{})
	s := New(Config{MaxConcurrent: 1, QueueDepth: 8, MemBudget: foot + foot/2})
	s.hookJobStart = func(*job) { <-gate }
	defer s.Shutdown()
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()

	spec := JobSpec{Preset: "water", Variant: "v5"}
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.FootprintBytes != foot {
		t.Fatalf("job footprint = %d, want %d", first.FootprintBytes, foot)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("second submit err = %v, want ErrOverBudget", err)
	}
	st := s.Stats()
	if st.RejectedMem != 1 || st.Rejected != 1 {
		t.Fatalf("rejected = %d / rejectedMem = %d, want 1/1", st.Rejected, st.RejectedMem)
	}
	if st.AdmittedBytes != foot {
		t.Fatalf("admitted bytes = %d, want %d", st.AdmittedBytes, foot)
	}

	close(gate)
	waitTerminal(t, s, first.ID)
	if got := s.Stats().AdmittedBytes; got != 0 {
		t.Fatalf("admitted bytes after completion = %d, want 0 (footprint released)", got)
	}
	second, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit after release: %v", err)
	}
	waitTerminal(t, s, second.ID)
}

// TestHTTPOverBudget429 checks the over-budget rejection maps to 429
// with the same Retry-After contract as queue-full.
func TestHTTPOverBudget429(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 8, MemBudget: 1, RetryAfter: 500 * time.Millisecond})
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"preset":"water"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
}

// TestRetryAfterSeconds is the regression test for the sub-second
// truncation bug: hints must round up and never render as "0".
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Millisecond, "1"},
		{time.Millisecond, "1"},
		{0, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{3 * time.Second, "3"},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// TestHTTPRetryAfterSubSecond drives the original bug end to end: a
// server configured with a 500ms hint must emit Retry-After: 1 on its
// queue-full 429s, not 0.
func TestHTTPRetryAfterSubSecond(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, RetryAfter: 500 * time.Millisecond})
	s.hookJobStart = func(*job) { <-gate }
	defer s.Shutdown()
	defer close(gate)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func() *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			strings.NewReader(`{"preset":"water"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	submit()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Running == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	submit()
	over := submit()
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", over.StatusCode)
	}
	if ra := over.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\" (sub-second hints must never render 0)", ra)
	}
}

// TestServerNetrunDispatch routes a job above the netrun threshold onto
// the distributed backend (in-process ranks over real sockets) and
// checks the result carries the backend fingerprint and the right
// energy.
func TestServerNetrunDispatch(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, NetrunBytes: 1, NetrunRanks: 2})
	defer s.Shutdown()

	st, err := s.Submit(JobSpec{Preset: "water", Variant: "v5"})
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, s, st.ID)
	if st.State != JobDone {
		t.Fatalf("netrun job state = %s (%s), want done", st.State, st.Error)
	}
	if st.Result.Backend != BackendNetrun || st.Result.Ranks != 2 {
		t.Fatalf("backend = %q ranks = %d, want netrun/2", st.Result.Backend, st.Result.Ranks)
	}
	ref := ccsd.ReferenceEnergy(tce.Inspect(tce.T2_7(molecule.Water631G()), nil))
	if math.Abs(st.Result.Energy-ref) > 1e-12 {
		t.Fatalf("netrun energy %.15f vs reference %.15f: |diff| > 1e-12", st.Result.Energy, ref)
	}
	if got := s.Stats().NetrunJobs; got != 1 {
		t.Fatalf("netrun jobs = %d, want 1", got)
	}
	if prof, _ := s.Profile(st.ID); prof == nil || prof.Phase == nil {
		t.Fatal("netrun job has no profile with phases")
	}
}

// TestServerNetrunCancel cancels a job mid-flight on the netrun backend;
// the coordinator must shut its ranks down and the job must end
// canceled, with the server healthy for later work.
func TestServerNetrunCancel(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	s := New(Config{MaxConcurrent: 1, NetrunBytes: 1, NetrunRanks: 2})
	s.hookJobStart = func(*job) { once.Do(func() { close(started) }) }
	defer s.Shutdown()

	st, err := s.Submit(JobSpec{Preset: "benzene", Variant: "v5"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if st = waitTerminal(t, s, st.ID); st.State != JobCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}

	after, err := s.Submit(JobSpec{Preset: "water", Variant: "v5"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, after.ID); st.State != JobDone {
		t.Fatalf("post-cancel job state = %s, want done", st.State)
	}
}

// TestServerConcurrentLifecycle hammers Submit, Cancel, and Shutdown
// from many goroutines at once (including double Shutdown) — the
// interleavings that corrupt admission accounting or panic on a closed
// queue if the locking is wrong. Run under -race.
func TestServerConcurrentLifecycle(t *testing.T) {
	foot := ccsd.EstimateFootprint(molecule.Water631G())
	s := New(Config{
		MaxConcurrent: 2,
		QueueDepth:    16,
		MemBudget:     8 * foot,
	})

	spec := JobSpec{Preset: "water", Variant: "v4"}
	var (
		mu  sync.Mutex
		ids []string
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st, err := s.Submit(spec)
				switch {
				case err == nil:
					mu.Lock()
					ids = append(ids, st.ID)
					mu.Unlock()
				case errors.Is(err, ErrShuttingDown):
					return
				case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverBudget):
					time.Sleep(time.Millisecond)
				default:
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			var id string
			if len(ids) > 0 {
				id = ids[len(ids)-1]
			}
			mu.Unlock()
			if id != "" {
				s.Cancel(id)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(50 * time.Millisecond)
	// Three concurrent Shutdowns plus a sequential double call: all must
	// return only after the drain, none may panic.
	var sd sync.WaitGroup
	for i := 0; i < 3; i++ {
		sd.Add(1)
		go func() {
			defer sd.Done()
			s.Shutdown()
		}()
	}
	sd.Wait()
	s.Shutdown()
	close(stop)
	wg.Wait()

	if _, err := s.Submit(spec); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown err = %v, want ErrShuttingDown", err)
	}
	st := s.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats after shutdown: queued=%d running=%d, want 0/0", st.Queued, st.Running)
	}
	if st.AdmittedBytes != 0 {
		t.Fatalf("admitted bytes after shutdown = %d, want 0", st.AdmittedBytes)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range ids {
		got, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if !got.State.Terminal() {
			t.Fatalf("job %s state = %s after shutdown, want terminal", id, got.State)
		}
	}
}
