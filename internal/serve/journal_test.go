package serve

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleRecords builds a plausible journal history: a boot, a handful of
// jobs in every terminal and non-terminal state, and a second boot.
func sampleRecords() []Record {
	spec := func(preset string) *JobSpec {
		return &JobSpec{Preset: preset, Variant: "v5"}
	}
	return []Record{
		{Op: OpBoot, Epoch: 1},
		{Op: OpSubmit, ID: "j1-000001", Key: "k1", Spec: spec("water"), SubmittedNs: 100},
		{Op: OpRunning, ID: "j1-000001"},
		{Op: OpDone, ID: "j1-000001", Result: &JobResult{Energy: -0.123456789012345, Tasks: 42, Backend: BackendInProcess}},
		{Op: OpSubmit, ID: "j1-000002", Key: "k2", Spec: spec("benzene"), SubmittedNs: 200},
		{Op: OpRunning, ID: "j1-000002"},
		{Op: OpFailed, ID: "j1-000002", Error: "boom"},
		{Op: OpSubmit, ID: "j1-000003", Key: "k1", Spec: spec("water"), SubmittedNs: 300},
		{Op: OpCanceled, ID: "j1-000003"},
		{Op: OpSubmit, ID: "j1-000004", Key: "k2", Spec: spec("benzene"), SubmittedNs: 400},
		{Op: OpRunning, ID: "j1-000004"},
		{Op: OpBoot, Epoch: 2},
		{Op: OpSubmit, ID: "j2-000001", Key: "k1", Spec: spec("water"), SubmittedNs: 500},
		{Op: OpDone, ID: "j1-000004", Result: &JobResult{Energy: -0.5, Tasks: 7, Backend: BackendNetrun, Ranks: 2}},
	}
}

// writeJournal appends recs to a fresh journal at path.
func writeJournal(t *testing.T, path string, recs []Record) {
	t.Helper()
	j, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(replayed))
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// recordsEqual compares record slices through their JSON encoding (the
// journal's own canonical form); nil and empty are the same history.
func recordsEqual(a, b []Record) bool {
	if len(a) == 0 || len(b) == 0 {
		return len(a) == len(b)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}

// TestJournalRoundTrip appends a history, reopens, and gets it back
// verbatim.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	want := sampleRecords()
	writeJournal(t, path, want)

	j, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !recordsEqual(got, want) {
		t.Fatalf("replayed %d records != appended %d", len(got), len(want))
	}
	// Results survive bit-for-bit: the recovered energy is the recorded
	// float64, not a reformatted approximation.
	if got[3].Result.Energy != want[3].Result.Energy {
		t.Fatalf("energy %v != %v after round trip", got[3].Result.Energy, want[3].Result.Energy)
	}
}

// TestJournalBadMagic rejects files that are not journals.
func TestJournalBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("OpenJournal accepted a non-journal file")
	}
}

// TestJournalAppendAfterClose fails cleanly.
func TestJournalAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(Record{Op: OpBoot, Epoch: 1}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

// TestJournalKillPoints is the replay property test: for every byte
// offset at which a SIGKILL could tear the file, reopening must succeed,
// yield a clean prefix of the original history, truncate the torn tail,
// and accept new appends that a further reopen then returns.
func TestJournalKillPoints(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	want := sampleRecords()
	writeJournal(t, full, want)
	blob, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	prefixLen := func(got []Record) int {
		for n := len(want); n >= 0; n-- {
			if recordsEqual(got, want[:n]) {
				return n
			}
		}
		return -1
	}

	path := filepath.Join(dir, "torn.journal")
	for cut := len(journalMagic); cut <= len(blob); cut++ {
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, got, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: OpenJournal: %v", cut, err)
		}
		n := prefixLen(got)
		if n < 0 {
			t.Fatalf("cut=%d: replayed records are not a prefix of the history", cut)
		}
		// The torn tail is gone: appends extend the clean prefix and a
		// further reopen sees prefix + appended, nothing else.
		extra := Record{Op: OpBoot, Epoch: 99}
		if err := j.Append(extra); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		j.Close()
		j2, got2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: second reopen: %v", cut, err)
		}
		j2.Close()
		if !recordsEqual(got2, append(append([]Record{}, want[:n]...), extra)) {
			t.Fatalf("cut=%d: reopen after append: got %d records, want prefix(%d)+1", cut, len(got2), n)
		}
		// And the state machine holds on every prefix: terminal states in
		// the reduction must agree with the full history's reduction for
		// every job that reached a terminal state before the cut.
		st := reduceRecords(got2[:n])
		fullSt := reduceRecords(want)
		for id, jb := range st.Jobs {
			if jb.State.Terminal() {
				if fullJb := fullSt.Jobs[id]; fullJb.State != jb.State {
					t.Fatalf("cut=%d: job %s terminal state %s regressed vs full history %s",
						cut, id, jb.State, fullJb.State)
				}
			}
		}
	}
}

// TestJournalCorruptMiddle flips one random payload byte at a time: the
// replayed history must always be a clean prefix (corruption is detected
// by the CRC, never silently skipped over).
func TestJournalCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	want := sampleRecords()
	writeJournal(t, full, want)
	blob, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	path := filepath.Join(dir, "corrupt.journal")
	for trial := 0; trial < 100; trial++ {
		i := len(journalMagic) + rng.Intn(len(blob)-len(journalMagic))
		mutated := append([]byte{}, blob...)
		mutated[i] ^= byte(1 + rng.Intn(255))
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		j, got, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("trial %d (byte %d): OpenJournal: %v", trial, i, err)
		}
		j.Close()
		isPrefix := false
		for n := 0; n <= len(want); n++ {
			if recordsEqual(got, want[:n]) {
				isPrefix = true
				break
			}
		}
		// A flipped byte inside a JSON payload can still decode (the CRC
		// catches it, but a flip in a free-text field keeps valid JSON yet
		// fails the checksum — either way replay must stop at or before
		// that record, so the result is a prefix).
		if !isPrefix {
			t.Fatalf("trial %d (byte %d): corrupted journal replayed a non-prefix (%d records)", trial, i, len(got))
		}
	}
}

// TestReduceRecordsInvariants feeds reduceRecords hostile sequences: the
// state machine must hold no matter what the file contains.
func TestReduceRecordsInvariants(t *testing.T) {
	spec := &JobSpec{Preset: "water", Variant: "v5"}
	doneRes := &JobResult{Energy: -1, Tasks: 1}

	st := reduceRecords([]Record{
		// Transitions before any submit: ignored.
		{Op: OpRunning, ID: "ghost"},
		{Op: OpDone, ID: "ghost", Result: doneRes},
		// A normal life, then post-terminal garbage: terminal wins.
		{Op: OpSubmit, ID: "a", Spec: spec, Key: "k"},
		{Op: OpDone, ID: "a", Result: doneRes},
		{Op: OpCanceled, ID: "a"},
		{Op: OpFailed, ID: "a", Error: "late"},
		// Duplicate submit keeps the first spec.
		{Op: OpSubmit, ID: "b", Spec: spec, SubmittedNs: 1},
		{Op: OpSubmit, ID: "b", Spec: &JobSpec{Preset: "benzene"}, SubmittedNs: 2},
		// A done record without a result does not mark the job done.
		{Op: OpSubmit, ID: "c", Spec: spec},
		{Op: OpDone, ID: "c"},
		// Submit without a spec: ignored entirely.
		{Op: OpSubmit, ID: "d"},
		// Epochs take the max, in any order.
		{Op: OpBoot, Epoch: 5},
		{Op: OpBoot, Epoch: 3},
	})

	if _, ok := st.Jobs["ghost"]; ok {
		t.Error("transitions before submit created a job")
	}
	if jb := st.Jobs["a"]; jb.State != JobDone || jb.Result == nil || jb.Error != "" {
		t.Errorf("job a = %+v, want done with result (terminal state regressed)", jb)
	}
	if jb := st.Jobs["b"]; jb.Spec.Preset != "water" || jb.SubmittedNs != 1 {
		t.Errorf("duplicate submit overwrote job b: %+v", jb)
	}
	if jb := st.Jobs["c"]; jb.State != JobQueued {
		t.Errorf("result-less done record moved job c to %s", jb.State)
	}
	if _, ok := st.Jobs["d"]; ok {
		t.Error("spec-less submit created a job")
	}
	if st.MaxEpoch != 5 {
		t.Errorf("MaxEpoch = %d, want 5", st.MaxEpoch)
	}
	if !reflect.DeepEqual(st.Order, []string{"a", "b", "c"}) {
		t.Errorf("Order = %v, want [a b c]", st.Order)
	}
}
