// Package fault provides a deterministic, seeded fault-injection model
// for the discrete-event cluster simulation. It perturbs three layers of
// the machine model — per-node compute speed (stragglers), per-transfer
// network behavior (latency spikes, transient payload and ack drops),
// and the Global Arrays service paths (NxtVal and ACC hiccups) — so the
// runtime's recovery machinery (comm-thread retry with backoff, inter-
// node task re-dispatch) can be exercised and measured reproducibly.
//
// Every concern draws from its own seeded RNG stream, so adding a fault
// site to one layer never shifts the sequence observed by another, and
// the same Config always produces the same perturbation schedule. The
// Injector also accumulates an attribution ledger (Stats): how much
// excess time each fault class injected, which the observability layer
// turns into the "slowdown attribution" section of a profile report.
//
// The injector is intended for the single-threaded discrete-event
// engine and is not safe for concurrent use; real-runtime straggler
// tests use the runtime's task-delay hook with a plain closure instead.
package fault

import (
	"fmt"
	"sort"

	"parsec/internal/sim"
)

// Straggler marks one node as computing slower than nominal: every
// compute, GEMM, and memory charge on that node is scaled by Factor.
type Straggler struct {
	Node   int
	Factor float64 // >= 1; 4 means the node runs at quarter speed
}

// Config describes a perturbation schedule. The zero value injects
// nothing; probabilities are per-event in [0, 1].
type Config struct {
	// Seed derives the per-concern RNG streams. Two injectors with the
	// same Config produce identical schedules.
	Seed uint64

	// Stragglers lists slowed-down nodes.
	Stragglers []Straggler

	// DropProb is the probability that a transfer's payload is lost in
	// flight: the receiver sees nothing and the sender detects the loss
	// only after a timeout (see simexec's retry policy).
	DropProb float64
	// AckDropProb is the probability that the payload arrives but its
	// acknowledgment is lost, so the sender retransmits a payload the
	// receiver has already consumed (exercising duplicate suppression).
	AckDropProb float64
	// SpikeProb is the probability a transfer suffers SpikeLatency of
	// extra delay before the wire charge.
	SpikeProb    float64
	SpikeLatency sim.Time

	// NxtValProb/NxtValDelay model a hiccup in the shared-counter
	// service: the caller's RTT stretches by NxtValDelay.
	NxtValProb  float64
	NxtValDelay sim.Time
	// AccProb/AccDelay model the same for the remote-accumulate service.
	AccProb  float64
	AccDelay sim.Time
}

// Validate reports the first malformed field.
func (c Config) Validate() error {
	for _, s := range c.Stragglers {
		if s.Node < 0 {
			return fmt.Errorf("fault: straggler node %d < 0", s.Node)
		}
		if s.Factor < 1 {
			return fmt.Errorf("fault: straggler factor %g < 1 (node %d)", s.Factor, s.Node)
		}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropProb", c.DropProb}, {"AckDropProb", c.AckDropProb},
		{"SpikeProb", c.SpikeProb}, {"NxtValProb", c.NxtValProb}, {"AccProb", c.AccProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0,1]", p.name, p.v)
		}
	}
	if c.DropProb+c.AckDropProb > 1 {
		return fmt.Errorf("fault: DropProb+AckDropProb %g > 1", c.DropProb+c.AckDropProb)
	}
	if c.SpikeLatency < 0 || c.NxtValDelay < 0 || c.AccDelay < 0 {
		return fmt.Errorf("fault: negative fault latency")
	}
	return nil
}

// XferOutcome is the injector's verdict for one transfer attempt.
type XferOutcome struct {
	// Drop: the payload is lost; the receiver learns nothing and the
	// sender must time out and retransmit.
	Drop bool
	// AckDrop: the payload lands but the ack is lost; the sender times
	// out and retransmits a duplicate.
	AckDrop bool
	// Extra is additional latency (a spike) charged before the wire
	// time. It may accompany a successful attempt only.
	Extra sim.Time
}

// Stats is the attribution ledger: counts and injected excess time per
// fault class, accumulated as the simulation runs.
type Stats struct {
	Drops    int64 // payload drops
	AckDrops int64 // ack drops (duplicate deliveries provoked)
	Spikes   int64
	// SpikeTime is total extra latency from spikes.
	SpikeTime sim.Time

	NxtValHiccups int64
	NxtValTime    sim.Time
	AccHiccups    int64
	AccTime       sim.Time

	// StragglerExcess maps node -> total extra compute/GEMM/memory time
	// injected on that node beyond the nominal charge.
	StragglerExcess map[int]sim.Time
}

// TotalStragglerExcess sums the per-node straggler excess.
func (s Stats) TotalStragglerExcess() sim.Time {
	var t sim.Time
	for _, v := range s.StragglerExcess {
		t += v
	}
	return t
}

// StragglerNodes returns the slowed nodes in ascending order, for
// deterministic report rendering.
func (s Stats) StragglerNodes() []int {
	nodes := make([]int, 0, len(s.StragglerExcess))
	for n := range s.StragglerExcess {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes
}

// Injector draws fault decisions from per-concern RNG streams and keeps
// the attribution ledger. A nil *Injector is valid and injects nothing.
type Injector struct {
	cfg     Config
	factor  map[int]float64 // node -> compute slowdown factor
	xferRNG *sim.RNG
	gaRNG   *sim.RNG
	stats   Stats
}

// New builds an injector for the given schedule. It panics if the
// config fails Validate, mirroring cluster.New's contract.
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	inj := &Injector{
		cfg:     cfg,
		factor:  make(map[int]float64, len(cfg.Stragglers)),
		xferRNG: sim.NewRNG(cfg.Seed ^ 0x5bf03635aca33e3b),
		gaRNG:   sim.NewRNG(cfg.Seed ^ 0x27d4eb2f165667c5),
	}
	inj.stats.StragglerExcess = make(map[int]sim.Time)
	for _, s := range cfg.Stragglers {
		inj.factor[s.Node] = s.Factor
	}
	return inj
}

// Config returns the schedule the injector was built with.
func (inj *Injector) Config() Config { return inj.cfg }

// ComputeFactor returns the compute slowdown factor for a node (1 when
// the node is healthy or the injector is nil).
func (inj *Injector) ComputeFactor(node int) float64 {
	if inj == nil {
		return 1
	}
	if f, ok := inj.factor[node]; ok {
		return f
	}
	return 1
}

// ScaleCompute stretches a nominal duration by the node's straggler
// factor and records the excess in the ledger. Nil-safe.
func (inj *Injector) ScaleCompute(node int, d sim.Time) sim.Time {
	if inj == nil || d <= 0 {
		return d
	}
	f, ok := inj.factor[node]
	if !ok || f <= 1 {
		return d
	}
	scaled := sim.Time(float64(d) * f)
	inj.stats.StragglerExcess[node] += scaled - d
	return scaled
}

// ScaleAmount stretches a resource amount (e.g. processor-sharing GEMM
// work or memory bytes-time) by the node's straggler factor, recording
// the excess of the base charge. The excess recorded is approximate for
// shared resources — contention can stretch it further — but it keeps
// the attribution ledger conservative and deterministic.
func (inj *Injector) ScaleAmount(node int, amount float64) float64 {
	if inj == nil || amount <= 0 {
		return amount
	}
	f, ok := inj.factor[node]
	if !ok || f <= 1 {
		return amount
	}
	return amount * f
}

// NoteExcess records straggler excess time measured by the caller, used
// for shared-resource charges where the injector only scaled the amount.
func (inj *Injector) NoteExcess(node int, d sim.Time) {
	if inj == nil || d <= 0 {
		return
	}
	if _, ok := inj.factor[node]; !ok {
		return
	}
	inj.stats.StragglerExcess[node] += d
}

// Transfer draws the outcome for one transfer attempt between distinct
// nodes. Local moves never fault. Nil-safe: returns a clean outcome.
func (inj *Injector) Transfer(from, to int) XferOutcome {
	var out XferOutcome
	if inj == nil || from == to {
		return out
	}
	u := inj.xferRNG.Float64()
	switch {
	case u < inj.cfg.DropProb:
		out.Drop = true
		inj.stats.Drops++
		return out
	case u < inj.cfg.DropProb+inj.cfg.AckDropProb:
		out.AckDrop = true
		inj.stats.AckDrops++
	}
	if inj.cfg.SpikeProb > 0 && inj.xferRNG.Float64() < inj.cfg.SpikeProb {
		out.Extra = inj.cfg.SpikeLatency
		inj.stats.Spikes++
		inj.stats.SpikeTime += out.Extra
	}
	return out
}

// NxtValHiccup returns the extra delay for one NxtVal RPC (0 when the
// service is healthy this time). Nil-safe.
func (inj *Injector) NxtValHiccup() sim.Time {
	if inj == nil || inj.cfg.NxtValProb <= 0 {
		return 0
	}
	if inj.gaRNG.Float64() < inj.cfg.NxtValProb {
		inj.stats.NxtValHiccups++
		inj.stats.NxtValTime += inj.cfg.NxtValDelay
		return inj.cfg.NxtValDelay
	}
	return 0
}

// AccHiccup returns the extra delay for one remote accumulate (0 when
// healthy). Nil-safe.
func (inj *Injector) AccHiccup() sim.Time {
	if inj == nil || inj.cfg.AccProb <= 0 {
		return 0
	}
	if inj.gaRNG.Float64() < inj.cfg.AccProb {
		inj.stats.AccHiccups++
		inj.stats.AccTime += inj.cfg.AccDelay
		return inj.cfg.AccDelay
	}
	return 0
}

// Stats returns a copy of the attribution ledger (the map is cloned so
// callers can keep it past further simulation).
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	s := inj.stats
	s.StragglerExcess = make(map[int]sim.Time, len(inj.stats.StragglerExcess))
	for k, v := range inj.stats.StragglerExcess {
		s.StragglerExcess[k] = v
	}
	return s
}
