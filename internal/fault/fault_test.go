package fault

import (
	"testing"

	"parsec/internal/sim"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"straggler", Config{Stragglers: []Straggler{{Node: 3, Factor: 4}}}, true},
		{"bad factor", Config{Stragglers: []Straggler{{Node: 3, Factor: 0.5}}}, false},
		{"bad node", Config{Stragglers: []Straggler{{Node: -1, Factor: 2}}}, false},
		{"bad prob", Config{DropProb: 1.5}, false},
		{"neg prob", Config{AckDropProb: -0.1}, false},
		{"prob sum", Config{DropProb: 0.7, AckDropProb: 0.5}, false},
		{"neg delay", Config{SpikeLatency: -1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestDeterminism: the same config yields the identical outcome
// sequence, and the streams are independent — GA draws do not perturb
// transfer draws.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Seed: 42, DropProb: 0.2, AckDropProb: 0.1,
		SpikeProb: 0.3, SpikeLatency: sim.Duration(5e-6),
		NxtValProb: 0.5, NxtValDelay: sim.Duration(1e-6),
	}
	a, b := New(cfg), New(cfg)
	var seqA, seqB []XferOutcome
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.Transfer(0, 1))
		// Interleave GA draws on b only: must not shift b's transfers.
		b.NxtValHiccup()
		seqB = append(seqB, b.Transfer(0, 1))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, seqA[i], seqB[i])
		}
	}
	st := a.Stats()
	if st.Drops == 0 || st.AckDrops == 0 || st.Spikes == 0 {
		t.Fatalf("expected all transfer fault classes to fire: %+v", st)
	}
}

func TestLocalTransfersNeverFault(t *testing.T) {
	inj := New(Config{Seed: 7, DropProb: 1})
	for i := 0; i < 10; i++ {
		if out := inj.Transfer(2, 2); out.Drop || out.AckDrop || out.Extra != 0 {
			t.Fatalf("local transfer faulted: %+v", out)
		}
	}
	if st := inj.Stats(); st.Drops != 0 {
		t.Fatalf("ledger recorded local drops: %+v", st)
	}
}

func TestScaleComputeLedger(t *testing.T) {
	inj := New(Config{Stragglers: []Straggler{{Node: 1, Factor: 4}}})
	d := inj.ScaleCompute(1, 1000)
	if d != 4000 {
		t.Fatalf("ScaleCompute = %d, want 4000", d)
	}
	if d := inj.ScaleCompute(0, 1000); d != 1000 {
		t.Fatalf("healthy node scaled: %d", d)
	}
	if got := inj.Stats().StragglerExcess[1]; got != 3000 {
		t.Fatalf("excess ledger = %d, want 3000", got)
	}
	if f := inj.ComputeFactor(1); f != 4 {
		t.Fatalf("ComputeFactor = %g", f)
	}
	if amt := inj.ScaleAmount(1, 10); amt != 40 {
		t.Fatalf("ScaleAmount = %g", amt)
	}
}

// TestNilInjector: a nil *Injector is a valid no-op at every call site,
// so the machine model can thread it unconditionally.
func TestNilInjector(t *testing.T) {
	var inj *Injector
	if f := inj.ComputeFactor(0); f != 1 {
		t.Fatalf("nil ComputeFactor = %g", f)
	}
	if d := inj.ScaleCompute(0, 100); d != 100 {
		t.Fatalf("nil ScaleCompute = %d", d)
	}
	if out := inj.Transfer(0, 1); out.Drop || out.AckDrop || out.Extra != 0 {
		t.Fatalf("nil Transfer = %+v", out)
	}
	if inj.NxtValHiccup() != 0 || inj.AccHiccup() != 0 {
		t.Fatal("nil hiccup nonzero")
	}
	inj.NoteExcess(0, 5)
	_ = inj.Stats()
}

func TestHiccupLedger(t *testing.T) {
	inj := New(Config{Seed: 3, NxtValProb: 1, NxtValDelay: 10, AccProb: 1, AccDelay: 20})
	for i := 0; i < 5; i++ {
		if d := inj.NxtValHiccup(); d != 10 {
			t.Fatalf("NxtValHiccup = %d", d)
		}
		if d := inj.AccHiccup(); d != 20 {
			t.Fatalf("AccHiccup = %d", d)
		}
	}
	st := inj.Stats()
	if st.NxtValHiccups != 5 || st.NxtValTime != 50 || st.AccHiccups != 5 || st.AccTime != 100 {
		t.Fatalf("ledger = %+v", st)
	}
	if st.TotalStragglerExcess() != 0 {
		t.Fatalf("unexpected straggler excess")
	}
}
