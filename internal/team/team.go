// Package team defines the intra-task parallelism contract between the
// dense kernels and the schedulers (DESIGN.md §13). A long GEMM chain
// executes one kernel at a time, so at the tail of a run the chain's
// worker computes alone while its siblings idle; a Parallelism handle
// lets the kernel split its macro loop into parts that idle workers
// volunteer to run. The kernels only describe the split — who runs the
// parts, and whether anyone besides the caller does, is entirely the
// scheduler's decision, so lending never oversubscribes the machine.
//
// Three implementations exist: Serial (no lending — the caller runs
// every part), Pool (a fixed goroutine team for benchmarks and tests),
// and the real runtime's lender, which recruits parked workers through
// its park/unpark machinery.
package team

import (
	"sync"
	"sync/atomic"

	"parsec/internal/tensor/pool"
)

// Parallelism runs the parts of a splittable kernel, possibly
// concurrently. Implementations must guarantee that Span returns only
// after every part has completed, and that the caller's goroutine
// executes parts whenever no helper is available — a Span must make
// progress with zero helpers, which is what makes lending deadlock-free
// by construction.
type Parallelism interface {
	// Workers is an upper bound on useful concurrency including the
	// caller (>= 1). Kernels use it to choose a part count; the actual
	// helper count at execution time may be anything from zero up.
	Workers() int
	// Span runs f(part, scratch) for every part in [0, parts). scratch
	// is the executing worker's scratch shard (nil means the shared
	// pool); parts running on different workers receive different
	// shards. f must be safe to call concurrently from several
	// goroutines with distinct part numbers.
	Span(parts int, f func(part int, scratch *pool.Local))
}

// Serial is the no-lending Parallelism: the caller runs every part in
// order on its own goroutine with the shared scratch pool.
var Serial Parallelism = serial{}

type serial struct{}

// Workers returns 1: the caller alone.
func (serial) Workers() int { return 1 }

// Span runs every part inline, in order.
func (serial) Span(parts int, f func(int, *pool.Local)) {
	for i := 0; i < parts; i++ {
		f(i, nil)
	}
}

// Pool is a fixed team of helper goroutines implementing Parallelism,
// for benchmarks and tests that need intra-task parallelism without a
// full scheduler. The caller participates, so a Pool of size n uses the
// calling goroutine plus n-1 helpers.
type Pool struct {
	n       int
	helpers []*helper
	locals  []*pool.Local
}

type helper struct {
	work chan *span
	quit chan struct{}
}

// span is one Span invocation's shared claim state.
type span struct {
	f     func(int, *pool.Local)
	parts int32
	next  atomic.Int32
	wg    sync.WaitGroup
}

// NewPool returns a team of size n (n-1 helper goroutines plus the
// caller). n < 1 is treated as 1. Close releases the helpers.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n, locals: make([]*pool.Local, n)}
	for i := range p.locals {
		p.locals[i] = pool.NewLocal()
	}
	for i := 0; i < n-1; i++ {
		h := &helper{work: make(chan *span, 1), quit: make(chan struct{})}
		p.helpers = append(p.helpers, h)
		go p.run(h, p.locals[i+1])
	}
	return p
}

func (p *Pool) run(h *helper, loc *pool.Local) {
	for {
		select {
		case sp := <-h.work:
			for {
				i := sp.next.Add(1) - 1
				if i >= sp.parts {
					break
				}
				sp.f(int(i), loc)
			}
			sp.wg.Done()
		case <-h.quit:
			return
		}
	}
}

// Workers returns the team size including the caller.
func (p *Pool) Workers() int { return p.n }

// Span distributes parts across the helpers and the caller, returning
// when all parts have completed.
func (p *Pool) Span(parts int, f func(int, *pool.Local)) {
	if parts <= 1 || len(p.helpers) == 0 {
		for i := 0; i < parts; i++ {
			f(i, p.locals[0])
		}
		return
	}
	sp := &span{f: f, parts: int32(parts)}
	for _, h := range p.helpers {
		sp.wg.Add(1)
		h.work <- sp
	}
	for {
		i := sp.next.Add(1) - 1
		if i >= sp.parts {
			break
		}
		f(int(i), p.locals[0])
	}
	sp.wg.Wait()
}

// Close stops the helper goroutines and releases their scratch shards.
// The Pool must not be used afterwards.
func (p *Pool) Close() {
	for _, h := range p.helpers {
		close(h.quit)
	}
	for _, l := range p.locals {
		l.Drain()
	}
}
