package team

import (
	"sync"
	"sync/atomic"
	"testing"

	"parsec/internal/tensor/pool"
)

// countParts runs a Span and returns how many times each part index was
// executed, failing the test on out-of-range or nil-scratch-mismatch.
func countParts(t *testing.T, p Parallelism, parts int) []int32 {
	t.Helper()
	counts := make([]int32, parts)
	p.Span(parts, func(i int, _ *pool.Local) {
		if i < 0 || i >= parts {
			t.Errorf("part index %d out of range [0,%d)", i, parts)
			return
		}
		atomic.AddInt32(&counts[i], 1)
	})
	return counts
}

func requireExactlyOnce(t *testing.T, counts []int32) {
	t.Helper()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("part %d ran %d times, want 1", i, c)
		}
	}
}

// TestSerialRunsEveryPartOnce pins the Serial implementation: every part
// exactly once, in order, on the caller's goroutine.
func TestSerialRunsEveryPartOnce(t *testing.T) {
	if w := Serial.Workers(); w != 1 {
		t.Fatalf("Serial.Workers() = %d, want 1", w)
	}
	requireExactlyOnce(t, countParts(t, Serial, 7))
	var order []int
	Serial.Span(4, func(i int, loc *pool.Local) {
		if loc != nil {
			t.Errorf("Serial passed non-nil scratch to part %d", i)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("Serial order %v, want ascending", order)
		}
	}
	requireExactlyOnce(t, countParts(t, Serial, 0)) // empty span is a no-op
}

// TestPoolRunsEveryPartOnce pins the Pool implementation across team
// sizes and part counts, including parts < team, parts = team, and
// parts >> team.
func TestPoolRunsEveryPartOnce(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		p := NewPool(n)
		if w := p.Workers(); w != n {
			t.Fatalf("NewPool(%d).Workers() = %d", n, w)
		}
		for _, parts := range []int{0, 1, 2, n, 3*n + 1, 100} {
			requireExactlyOnce(t, countParts(t, p, parts))
		}
		p.Close()
	}
}

// TestPoolClampsSize pins that NewPool(n < 1) behaves as a team of one.
func TestPoolClampsSize(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if w := p.Workers(); w != 1 {
		t.Fatalf("NewPool(0).Workers() = %d, want 1", w)
	}
	requireExactlyOnce(t, countParts(t, p, 5))
}

// TestPoolDistinctScratch pins the scratch contract: concurrently
// executing parts never share a shard (each worker owns its Local
// exclusively while running a part).
func TestPoolDistinctScratch(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var mu sync.Mutex
	inUse := map[*pool.Local]int{}
	var conflicts atomic.Int32
	var barrier sync.WaitGroup
	barrier.Add(4)
	p.Span(4, func(i int, loc *pool.Local) {
		mu.Lock()
		inUse[loc]++
		if inUse[loc] > 1 {
			conflicts.Add(1)
		}
		mu.Unlock()
		// Hold every part live at once so any shard sharing would overlap.
		// Four executors (caller + 3 helpers) each claim one part, so the
		// barrier is reachable.
		barrier.Done()
		barrier.Wait()
		mu.Lock()
		inUse[loc]--
		mu.Unlock()
	})
	if conflicts.Load() != 0 {
		t.Fatalf("%d parts observed a shared scratch shard", conflicts.Load())
	}
}

// TestPoolSequentialSpans pins that a Pool is reusable: many Spans in a
// row, including back-to-back spans reusing the same helper channels.
func TestPoolSequentialSpans(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for round := 0; round < 50; round++ {
		requireExactlyOnce(t, countParts(t, p, 9))
	}
}
