// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events from a priority
// queue ordered by (time, sequence number). Two kinds of activity exist:
//
//   - callbacks: plain functions scheduled with Engine.Schedule, executed
//     inline on the engine goroutine; they must not block.
//   - processes: sequential activities (Proc) started with Engine.Go that
//     may hold virtual time (Proc.Hold), wait on queues, and use resources.
//     Exactly one process runs at any instant, so simulations are
//     bit-reproducible for a fixed seed and program.
//
// The engine is the substrate for the simulated cluster on which the
// reproduced CCSD experiments execute (see internal/cluster and
// internal/simexec).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations, expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts a floating-point number of seconds to a virtual
// duration, rounding to the nearest nanosecond. Negative and non-finite
// inputs are clamped to zero.
func Duration(seconds float64) Time {
	if seconds <= 0 || math.IsNaN(seconds) || math.IsInf(seconds, 1) {
		return 0
	}
	return Time(math.Round(seconds * float64(Second)))
}

// String renders the virtual time with a unit fitting its magnitude.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a scheduled occurrence. Exactly one of fn and proc is set.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	proc      *Proc
	cancelled bool
	index     int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	yield   chan struct{}
	running bool
	stopped bool

	liveProcs    int
	blockedProcs map[*Proc]struct{}
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		yield:        make(chan struct{}),
		blockedProcs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after the given virtual delay. fn executes inline on the
// engine goroutine and must not block. A negative delay is treated as zero.
// The returned handle may be used to cancel the event before it fires.
func (e *Engine) Schedule(delay Time, fn func()) *EventHandle {
	if delay < 0 {
		delay = 0
	}
	ev := &event{at: e.now + delay, seq: e.nextSeq(), fn: fn}
	heap.Push(&e.heap, ev)
	return &EventHandle{ev: ev}
}

// EventHandle allows cancelling a scheduled callback.
type EventHandle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h *EventHandle) Cancel() {
	if h != nil && h.ev != nil {
		h.ev.cancelled = true
	}
}

// Cancelled reports whether the handle was cancelled before firing.
func (h *EventHandle) Cancelled() bool { return h != nil && h.ev != nil && h.ev.cancelled }

func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// Stop terminates Run after the current event completes. Pending events are
// discarded; blocked processes are abandoned (their goroutines are released
// with a panic that Run recovers into cleanup).
func (e *Engine) Stop() { e.stopped = true }

// Proc is a simulated sequential process. All Proc methods must be called
// from the process's own body function.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
	killed bool
	wake   *event // pending wake event while sleeping, nil while runnable
}

// Name returns the name given to Engine.Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

type procKilled struct{}

// Go starts a new simulated process executing body. The process begins at
// the current virtual time, after all events already scheduled for this
// instant.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.liveProcs++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					panic(r)
				}
			}
			p.done = true
			e.yield <- struct{}{}
		}()
		body(p)
	}()
	ev := &event{at: e.now, seq: e.nextSeq(), proc: p}
	heap.Push(&e.heap, ev)
	return p
}

// block suspends the process until the engine resumes it.
func (p *Proc) block() {
	p.eng.blockedProcs[p] = struct{}{}
	p.eng.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// Hold advances the process's local time by d virtual nanoseconds.
func (p *Proc) Hold(d Time) {
	if d < 0 {
		d = 0
	}
	ev := &event{at: p.eng.now + d, seq: p.eng.nextSeq(), proc: p}
	heap.Push(&p.eng.heap, ev)
	p.wake = ev
	p.block()
}

// wakeAt schedules the process to resume at the given absolute time.
// The process must currently be blocked on a queue (not sleeping).
func (e *Engine) wakeAt(p *Proc, at Time) {
	if p.wake != nil && !p.wake.cancelled {
		return // already scheduled
	}
	ev := &event{at: at, seq: e.nextSeq(), proc: p}
	heap.Push(&e.heap, ev)
	p.wake = ev
}

// resumeProc hands control to p and waits until it blocks or finishes.
func (e *Engine) resumeProc(p *Proc) {
	delete(e.blockedProcs, p)
	p.wake = nil
	p.resume <- struct{}{}
	<-e.yield
	if p.done {
		e.liveProcs--
	}
}

// Run executes events until the queue is empty, Stop is called, or the
// clock would pass horizon (horizon <= 0 means no limit). It returns the
// final virtual time and an error if processes remain blocked with no
// pending events (a simulation deadlock).
func (e *Engine) Run(horizon Time) (Time, error) {
	if e.running {
		return e.now, fmt.Errorf("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.heap) > 0 && !e.stopped {
		ev := heap.Pop(&e.heap).(*event)
		if ev.cancelled {
			continue
		}
		if horizon > 0 && ev.at > horizon {
			e.now = horizon
			e.killBlocked()
			return e.now, nil
		}
		if ev.at < e.now {
			return e.now, fmt.Errorf("sim: event scheduled in the past (%v < %v)", ev.at, e.now)
		}
		e.now = ev.at
		if ev.proc != nil {
			e.resumeProc(ev.proc)
		} else {
			ev.fn()
		}
	}
	if e.stopped {
		e.killBlocked()
		return e.now, nil
	}
	if n := len(e.blockedProcs); n > 0 {
		names := make([]string, 0, n)
		for p := range e.blockedProcs {
			names = append(names, p.name)
		}
		sort.Strings(names)
		e.killBlocked()
		return e.now, fmt.Errorf("sim: deadlock, %d process(es) blocked forever: %v", n, names)
	}
	return e.now, nil
}

// killBlocked releases the goroutines of any still-blocked processes so
// they do not leak after Run returns.
func (e *Engine) killBlocked() {
	for p := range e.blockedProcs {
		p.killed = true
		e.resumeProc(p)
	}
	// Drain events for processes that were sleeping (their wake events may
	// still reference them); they are now done, so just discard the heap.
	e.heap = e.heap[:0]
	e.blockedProcs = make(map[*Proc]struct{})
}

// LiveProcs returns the number of processes that have started and not yet
// finished. Intended for tests and diagnostics.
func (e *Engine) LiveProcs() int { return e.liveProcs }

// PendingEvents returns the number of events currently scheduled,
// including cancelled-but-unpopped ones. Intended for tests.
func (e *Engine) PendingEvents() int { return len(e.heap) }
