package sim

import (
	"fmt"
	"math"
)

// PS is a processor-sharing resource: a capacity of work units per second
// divided evenly among all active flows. It models saturating shared
// hardware — a node's memory bandwidth shared by concurrently executing
// memory-bound tasks, or a NIC's injection bandwidth shared by concurrent
// transfers. With one flow active a transfer of B units takes B/capacity
// seconds; with n flows it proceeds at capacity/n until membership changes.
type PS struct {
	eng      *Engine
	name     string
	capacity float64 // units per virtual second
	// perFlowCap bounds the rate any single flow can draw (0 = no bound):
	// a resource whose aggregate capacity exceeds what one client can
	// consume, e.g. node GEMM throughput above one core's peak.
	perFlowCap float64
	// contention, when > 0, selects the co-running contention model; see
	// SetContention.
	contention float64
	flows      []*psFlow
	last       Time
	pending    *EventHandle

	// Stats.
	totalUnits float64
	busy       Time
}

type psFlow struct {
	remaining float64
	p         *Proc
}

// NewPS returns a processor-sharing resource with the given capacity in
// units per second (> 0).
func NewPS(e *Engine, name string, capacity float64) *PS {
	if !(capacity > 0) {
		panic(fmt.Sprintf("sim: NewPS(%q) capacity %v", name, capacity))
	}
	return &PS{eng: e, name: name, capacity: capacity, last: e.Now()}
}

// Capacity returns the configured capacity in units per second.
func (ps *PS) Capacity() float64 { return ps.capacity }

// SetPerFlowCap bounds the service rate of each individual flow. It must
// be called before any flow is active.
func (ps *PS) SetPerFlowCap(rate float64) {
	if len(ps.flows) > 0 {
		panic("sim: SetPerFlowCap with active flows")
	}
	ps.perFlowCap = rate
}

// SetContention switches the resource to the empirical co-running
// contention model: with n active flows each flow is served at
// perFlowCap / (1 + beta*(n-1)) instead of an equal share of a fixed
// aggregate. beta = 0 restores independent flows at perFlowCap;
// beta = 1 approaches a fixed aggregate of perFlowCap. Aggregate
// throughput n*r/(1+beta*(n-1)) grows concavely with n — the measured
// shape of multicore kernel scaling under shared-cache and bandwidth
// pressure. Must be called before any flow is active, after
// SetPerFlowCap.
func (ps *PS) SetContention(beta float64) {
	if len(ps.flows) > 0 {
		panic("sim: SetContention with active flows")
	}
	if ps.perFlowCap <= 0 {
		panic("sim: SetContention requires SetPerFlowCap")
	}
	ps.contention = beta
}

// rate returns the current per-flow service rate.
func (ps *PS) rate() float64 {
	n := float64(len(ps.flows))
	if ps.contention > 0 {
		return ps.perFlowCap / (1 + ps.contention*(n-1))
	}
	r := ps.capacity / n
	if ps.perFlowCap > 0 && r > ps.perFlowCap {
		r = ps.perFlowCap
	}
	return r
}

// ActiveFlows returns the number of flows currently in service.
func (ps *PS) ActiveFlows() int { return len(ps.flows) }

// TotalUnits returns the cumulative units served (diagnostics).
func (ps *PS) TotalUnits() float64 { return ps.totalUnits }

// BusyTime returns the cumulative virtual time during which at least one
// flow was active (diagnostics; used for utilization reports).
func (ps *PS) BusyTime() Time { return ps.busy }

// TimeFor returns the uncontended service time for the given amount.
func (ps *PS) TimeFor(amount float64) Time {
	return Duration(amount / ps.capacity)
}

// Use blocks the calling process until amount units have been served,
// sharing capacity with all concurrently active flows. Amounts <= 0
// complete immediately.
func (ps *PS) Use(p *Proc, amount float64) {
	if amount <= 0 || math.IsNaN(amount) {
		return
	}
	ps.advance()
	ps.totalUnits += amount
	ps.flows = append(ps.flows, &psFlow{remaining: amount, p: p})
	ps.reschedule()
	p.block()
}

// advance applies work done since the last update to all active flows.
func (ps *PS) advance() {
	now := ps.eng.Now()
	if now <= ps.last {
		return
	}
	elapsed := now - ps.last
	ps.last = now
	if len(ps.flows) == 0 {
		return
	}
	ps.busy += elapsed
	perFlow := elapsed.Seconds() * ps.rate()
	for _, f := range ps.flows {
		f.remaining -= perFlow
	}
}

// tolerance is the amount of residual work (in units) considered complete:
// two nanoseconds' worth of full-rate service, absorbing event-time
// rounding without ever letting a flow strand.
func (ps *PS) tolerance() float64 { return 2e-9 * ps.capacity }

// reschedule cancels any pending completion event and schedules the next
// one for the flow with the least remaining work.
func (ps *PS) reschedule() {
	ps.pending.Cancel()
	ps.pending = nil
	if len(ps.flows) == 0 {
		return
	}
	minRem := math.Inf(1)
	for _, f := range ps.flows {
		if f.remaining < minRem {
			minRem = f.remaining
		}
	}
	dt := Duration(minRem / ps.rate())
	if dt < Nanosecond {
		dt = Nanosecond
	}
	ps.pending = ps.eng.Schedule(dt, ps.complete)
}

// complete finishes all flows whose remaining work is within tolerance,
// waking their processes, then reschedules.
func (ps *PS) complete() {
	ps.pending = nil
	ps.advance()
	tol := ps.tolerance()
	kept := ps.flows[:0]
	for _, f := range ps.flows {
		if f.remaining <= tol {
			ps.eng.wakeAt(f.p, ps.eng.Now())
		} else {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(ps.flows); i++ {
		ps.flows[i] = nil
	}
	ps.flows = kept
	ps.reschedule()
}
