package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestPSSingleFlow(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "bw", 1e9) // 1 GB/s
	var end Time
	e.Go("p", func(p *Proc) {
		ps.Use(p, 1e6) // 1 MB
		end = p.Now()
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := Millisecond
	if diff := end - want; diff < -10 || diff > 10 {
		t.Errorf("1MB at 1GB/s took %v, want ~%v", end, want)
	}
}

func TestPSFairSharing(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "bw", 1e9)
	ends := map[string]Time{}
	for _, name := range []string{"a", "b"} {
		name := name
		e.Go(name, func(p *Proc) {
			ps.Use(p, 1e6)
			ends[name] = p.Now()
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	// Two equal flows sharing capacity both finish at ~2ms.
	for name, end := range ends {
		if diff := end - 2*Millisecond; diff < -20 || diff > 20 {
			t.Errorf("flow %s ended at %v, want ~2ms", name, end)
		}
	}
}

func TestPSLateJoiner(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "bw", 1e9)
	var endA, endB Time
	e.Go("a", func(p *Proc) {
		ps.Use(p, 2e6)
		endA = p.Now()
	})
	e.Go("b", func(p *Proc) {
		p.Hold(Millisecond)
		ps.Use(p, 1e6)
		endB = p.Now()
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	// a runs alone for 1ms (1MB done), then shares for 2ms (1MB more each):
	// a ends at 3ms with its 2MB; b ends at 3ms with its 1MB.
	for _, c := range []struct {
		name string
		got  Time
		want Time
	}{{"a", endA, 3 * Millisecond}, {"b", endB, 3 * Millisecond}} {
		if diff := c.got - c.want; diff < -50 || diff > 50 {
			t.Errorf("%s ended at %v, want ~%v", c.name, c.got, c.want)
		}
	}
}

func TestPSZeroAmountImmediate(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "bw", 1e9)
	e.Go("p", func(p *Proc) {
		ps.Use(p, 0)
		ps.Use(p, -5)
		if p.Now() != 0 {
			t.Errorf("zero-amount Use advanced time to %v", p.Now())
		}
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestPSManyFlowsConservation(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "bw", 1e8)
	const n = 20
	const amount = 1e6
	var latest Time
	for i := 0; i < n; i++ {
		e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
			ps.Use(p, amount)
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	// Total work n*amount at capacity 1e8/s -> 200ms regardless of sharing.
	want := Duration(n * amount / 1e8)
	if diff := latest - want; diff < -Microsecond || diff > Microsecond {
		t.Errorf("makespan %v, want ~%v", latest, want)
	}
	if got := ps.TotalUnits(); math.Abs(got-n*amount) > 1 {
		t.Errorf("TotalUnits = %v, want %v", got, n*amount)
	}
}

func TestPSBusyTime(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "bw", 1e9)
	e.Go("p", func(p *Proc) {
		p.Hold(Millisecond) // idle gap first
		ps.Use(p, 1e6)      // 1ms busy
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if b := ps.BusyTime(); b < 900*Microsecond || b > 1100*Microsecond {
		t.Errorf("BusyTime = %v, want ~1ms", b)
	}
}

func TestPSTimeFor(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "bw", 2e9)
	if got := ps.TimeFor(2e9); got != Second {
		t.Errorf("TimeFor = %v, want 1s", got)
	}
}

// Property: makespan of any batch of flows started together equals
// total/capacity (work conservation), and every flow sees a duration of at
// least its uncontended time.
func TestPropertyPSWorkConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 32 {
			return true
		}
		e := NewEngine()
		cap := 1e6
		ps := NewPS(e, "bw", cap)
		var total float64
		var latest Time
		ok := true
		for i, s := range sizes {
			amount := float64(s) + 1
			total += amount
			minT := ps.TimeFor(amount)
			e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
				start := p.Now()
				ps.Use(p, amount)
				el := p.Now() - start
				if el < minT-10*Microsecond {
					ok = false
				}
				if p.Now() > latest {
					latest = p.Now()
				}
			})
		}
		if _, err := e.Run(0); err != nil {
			return false
		}
		want := Duration(total / cap)
		if latest < want-Millisecond || latest > want+Millisecond {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPSPerFlowCap(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "gemm", 100) // capacity 100 units/s
	ps.SetPerFlowCap(10)        // but one flow can only draw 10
	var end Time
	e.Go("p", func(p *Proc) {
		ps.Use(p, 10) // 10 units at 10/s -> 1s, not 0.1s
		end = p.Now()
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if end < 990*Millisecond || end > 1010*Millisecond {
		t.Errorf("capped flow took %v, want ~1s", end)
	}
}

func TestPSContentionModel(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "gemm", 1) // capacity ignored under contention
	ps.SetPerFlowCap(10)
	ps.SetContention(0.5)
	// Two concurrent flows: each at 10/(1+0.5) = 6.67/s; 10 units -> 1.5s.
	var ends [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			ps.Use(p, 10)
			ends[i] = p.Now()
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, end := range ends {
		if end < 1490*Millisecond || end > 1510*Millisecond {
			t.Errorf("flow %d ended at %v, want ~1.5s", i, end)
		}
	}
}

func TestPSContentionAboveOneDegradesAggregate(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "gasrv", 1)
	ps.SetPerFlowCap(10)
	ps.SetContention(2) // aggregate falls with load
	var latest Time
	const n = 4
	for i := 0; i < n; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			ps.Use(p, 10)
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	// Four flows at 10/(1+2*3) = 10/7 each: 10 units take 7s; aggregate
	// 40/7 = 5.7/s < the 10/s a single flow would get.
	if latest < 6900*Millisecond || latest > 7100*Millisecond {
		t.Errorf("overloaded makespan %v, want ~7s", latest)
	}
}

func TestPSSetupPanics(t *testing.T) {
	e := NewEngine()
	ps := NewPS(e, "x", 1)
	for _, fn := range []func(){
		func() { ps.SetContention(0.5) }, // requires per-flow cap first
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
