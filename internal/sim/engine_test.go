package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	end, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 30 {
		t.Errorf("end time = %d, want 30", end)
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Errorf("order = %v", order)
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestScheduleNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(100, func() {
		e.Schedule(-50, func() { fired = true })
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("negative-delay event did not fire")
	}
}

func TestCancelEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.Schedule(10, func() { fired = true })
	h.Cancel()
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if !h.Cancelled() {
		t.Error("handle not reported cancelled")
	}
}

func TestProcHold(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Go("p", func(p *Proc) {
		times = append(times, p.Now())
		p.Hold(100)
		times = append(times, p.Now())
		p.Hold(50)
		times = append(times, p.Now())
	})
	end, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 150 {
		t.Errorf("end = %d, want 150", end)
	}
	want := []Time{0, 100, 150}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times = %v, want %v", times, want)
			break
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() string {
		e := NewEngine()
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Hold(Time(10 + i))
					log = append(log, fmt.Sprintf("%d@%d", i, p.Now()))
				}
			})
		}
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(log)
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic interleaving:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Go("ticker", func(p *Proc) {
		for {
			p.Hold(10)
			count++
		}
	})
	end, err := e.Run(105)
	if err != nil {
		t.Fatal(err)
	}
	if end != 105 {
		t.Errorf("end = %d, want horizon 105", end)
	}
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if e.LiveProcs() != 0 {
		t.Errorf("live procs after horizon = %d", e.LiveProcs())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	q := NewWaitQ(e)
	e.Go("stuck", func(p *Proc) { q.Wait(p) })
	_, err := e.Run(0)
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Go("p", func(p *Proc) {
		for {
			p.Hold(1)
			count++
			if count == 5 {
				e.Stop()
			}
		}
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestWaitQWakeOrder(t *testing.T) {
	e := NewEngine()
	q := NewWaitQ(e)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Go(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	e.Schedule(10, func() {
		q.WakeOne()
	})
	e.Schedule(20, func() { q.WakeAll() })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b c]" {
		t.Errorf("wake order = %v", order)
	}
}

func TestResourceSemantics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var log []string
	worker := func(name string, hold Time) {
		e.Go(name, func(p *Proc) {
			r.Acquire(p, 1)
			log = append(log, name+"+")
			p.Hold(hold)
			r.Release(1)
			log = append(log, name+"-")
		})
	}
	worker("a", 100)
	worker("b", 100)
	worker("c", 10) // must wait for a or b
	end, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 110 {
		t.Errorf("end = %d, want 110", end)
	}
	// At t=100 a and b resume in start order (their wake events were
	// scheduled first), then c's grant event fires.
	if fmt.Sprint(log) != "[a+ b+ a- b- c+ c-]" {
		t.Errorf("log = %v", log)
	}
}

func TestResourceFIFONoBarging(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var order []string
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 2)
		p.Hold(100)
		r.Release(2)
	})
	e.Schedule(10, func() {
		e.Go("big", func(p *Proc) {
			r.Acquire(p, 2)
			order = append(order, "big")
			r.Release(2)
		})
	})
	e.Schedule(20, func() {
		e.Go("small", func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, "small")
			r.Release(1)
		})
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[big small]" {
		t.Errorf("order = %v, want big before small (FIFO)", order)
	}
}

func TestMutexExclusionAndCost(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e, 5, 5)
	inside := 0
	maxInside := 0
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Hold(10)
			inside--
			m.Unlock(p)
		})
	}
	end, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Errorf("mutual exclusion violated: maxInside = %d", maxInside)
	}
	// Each critical section costs 5 (lock) + 10 (work) + 5 (unlock) = 20.
	if end != 60 {
		t.Errorf("end = %d, want 60", end)
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 3)
	phase := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Hold(Time(i * 10))
			b.Arrive(p)
			phase[i] = 1
			p.Hold(Time(i * 5))
			b.Arrive(p)
			phase[i] = 2
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, ph := range phase {
		if ph != 2 {
			t.Errorf("proc %d finished phase %d", i, ph)
		}
	}
}

func TestCounterSerializesAndCharges(t *testing.T) {
	e := NewEngine()
	c := NewCounter(e, 100)
	got := make([]int64, 0, 6)
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("r%d", i), func(p *Proc) {
			got = append(got, c.Next(p))
			got = append(got, c.Next(p))
		})
	}
	end, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// 6 increments serialized at 100ns each.
	if end != 600 {
		t.Errorf("end = %d, want 600", end)
	}
	seen := map[int64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Errorf("duplicate ticket %d", v)
		}
		seen[v] = true
	}
	if len(got) != 6 || c.Value() != 6 {
		t.Errorf("got %v, value %d", got, c.Value())
	}
}

func TestDurationConversions(t *testing.T) {
	cases := []struct {
		sec  float64
		want Time
	}{
		{0, 0},
		{-1, 0},
		{1, Second},
		{0.5, 500 * Millisecond},
		{1e-9, Nanosecond},
	}
	for _, c := range cases {
		if got := Duration(c.sec); got != c.want {
			t.Errorf("Duration(%v) = %v, want %v", c.sec, got, c.want)
		}
	}
	if s := (1500 * Millisecond).Seconds(); s != 1.5 {
		t.Errorf("Seconds = %v", s)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{2 * Second, "2.000000s"},
		{3 * Millisecond, "3.000ms"},
		{4 * Microsecond, "4.000us"},
		{7, "7ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// Property: for any set of non-negative delays, events fire in
// nondecreasing time order and the engine ends at the max delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		var maxT Time
		for _, d := range delays {
			d := Time(d)
			if d > maxT {
				maxT = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		end, err := e.Run(0)
		if err != nil {
			return false
		}
		if len(delays) > 0 && end != maxT {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RNG is deterministic for a fixed seed and Perm returns a
// valid permutation.
func TestPropertyRNG(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		size := int(n%64) + 1
		p := a.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(7)
	d := Second
	for i := 0; i < 1000; i++ {
		j := r.Jitter(d, 0.1)
		if j < 900*Millisecond || j > 1100*Millisecond {
			t.Fatalf("jitter out of bounds: %v", j)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Error("zero-frac jitter should be identity")
	}
}
