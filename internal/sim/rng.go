package sim

// RNG is a small deterministic pseudo-random generator (SplitMix64).
// It exists so that simulation results are bit-reproducible across Go
// releases, independent of math/rand's evolving algorithms.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
// It is used to perturb modeled task durations so that simulated load
// imbalance resembles real machine noise.
func (r *RNG) Jitter(d Time, frac float64) Time {
	if frac <= 0 || d <= 0 {
		return d
	}
	f := 1 + frac*(2*r.Float64()-1)
	return Duration(d.Seconds() * f)
}
