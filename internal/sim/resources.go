package sim

import "fmt"

// WaitQ is a FIFO queue of blocked processes. It is the building block for
// all higher-level synchronization: a process parks itself with Wait and is
// released, in order, by WakeOne or WakeAll.
type WaitQ struct {
	eng   *Engine
	procs []*Proc
}

// NewWaitQ returns an empty wait queue bound to the engine.
func NewWaitQ(e *Engine) *WaitQ { return &WaitQ{eng: e} }

// Len returns the number of parked processes.
func (q *WaitQ) Len() int { return len(q.procs) }

// Wait parks the calling process at the tail of the queue.
func (q *WaitQ) Wait(p *Proc) {
	q.procs = append(q.procs, p)
	p.block()
}

// WakeOne releases the process at the head of the queue, if any. The woken
// process resumes at the current virtual time, after events already
// scheduled for this instant. It reports whether a process was woken.
func (q *WaitQ) WakeOne() bool {
	if len(q.procs) == 0 {
		return false
	}
	p := q.procs[0]
	copy(q.procs, q.procs[1:])
	q.procs = q.procs[:len(q.procs)-1]
	q.eng.wakeAt(p, q.eng.now)
	return true
}

// WakeAll releases every parked process, in FIFO order.
func (q *WaitQ) WakeAll() {
	for _, p := range q.procs {
		q.eng.wakeAt(p, q.eng.now)
	}
	q.procs = q.procs[:0]
}

// Resource is a counting semaphore with FIFO admission. Units are granted
// strictly in request order: a large request at the head blocks smaller
// requests behind it (no barging), which matches the hardware resources we
// model (cores, credit-based NICs).
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []resWaiter
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity (> 0).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: NewResource capacity %d", capacity))
	}
	return &Resource{eng: e, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting for units.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire obtains n units, blocking the process until they are available.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: Acquire(%d) on resource of capacity %d", n, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p, n})
	p.block()
}

// Release returns n units and admits as many queued waiters as now fit,
// in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 || r.inUse-n < 0 {
		panic(fmt.Sprintf("sim: Release(%d) with %d in use", n, r.inUse))
	}
	r.inUse -= n
	r.admit()
}

func (r *Resource) admit() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			return
		}
		r.inUse += w.n
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.eng.wakeAt(w.p, r.eng.now)
	}
}

// Mutex is a FIFO mutual-exclusion lock with an optional fixed cost per
// lock and per unlock operation, modeling the system-wide cost of
// pthread-style mutexes that §V of the paper identifies as a factor in the
// v3-vs-v5 comparison.
type Mutex struct {
	res        *Resource
	LockCost   Time
	UnlockCost Time
}

// NewMutex returns an unlocked mutex with the given per-operation costs.
func NewMutex(e *Engine, lockCost, unlockCost Time) *Mutex {
	return &Mutex{res: NewResource(e, 1), LockCost: lockCost, UnlockCost: unlockCost}
}

// Lock acquires the mutex, paying LockCost of virtual time after admission.
func (m *Mutex) Lock(p *Proc) {
	m.res.Acquire(p, 1)
	if m.LockCost > 0 {
		p.Hold(m.LockCost)
	}
}

// Unlock releases the mutex, paying UnlockCost of virtual time first.
func (m *Mutex) Unlock(p *Proc) {
	if m.UnlockCost > 0 {
		p.Hold(m.UnlockCost)
	}
	m.res.Release(1)
}

// Barrier blocks processes until a fixed number have arrived, then releases
// them all. It is reusable: after releasing a generation it resets. This
// models the explicit synchronization between the seven work levels of the
// original TCE-generated code (§III-A).
type Barrier struct {
	eng     *Engine
	parties int
	arrived int
	q       *WaitQ
}

// NewBarrier returns a barrier for the given number of parties (> 0).
func NewBarrier(e *Engine, parties int) *Barrier {
	if parties <= 0 {
		panic("sim: NewBarrier parties <= 0")
	}
	return &Barrier{eng: e, parties: parties, q: NewWaitQ(e)}
}

// Arrive blocks until all parties have arrived. The last arriving process
// does not block and releases the others.
func (b *Barrier) Arrive(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.q.WakeAll()
		return
	}
	b.q.Wait(p)
}

// Counter is a monotonically increasing shared counter with a fixed
// round-trip cost per fetch-and-increment, serialized through a FIFO
// server. It models the Global Arrays NXTVAL work-stealing counter
// (§III-A, §IV-D): every acquisition is a remote atomic that serializes
// all ranks.
type Counter struct {
	eng   *Engine
	value int64
	rtt   Time
	srv   *Resource
}

// NewCounter returns a counter starting at zero whose increments cost rtt
// each and are served one at a time.
func NewCounter(e *Engine, rtt Time) *Counter {
	return &Counter{eng: e, rtt: rtt, srv: NewResource(e, 1)}
}

// Next performs a fetch-and-increment, blocking the process for queueing
// plus the round-trip time, and returns the pre-increment value.
func (c *Counter) Next(p *Proc) int64 {
	c.srv.Acquire(p, 1)
	if c.rtt > 0 {
		p.Hold(c.rtt)
	}
	v := c.value
	c.value++
	c.srv.Release(1)
	return v
}

// Value returns the current counter value without cost (diagnostics).
func (c *Counter) Value() int64 { return c.value }
