package netrun

import (
	"fmt"
	"testing"
	"time"

	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/team"
	"parsec/internal/tensor"
)

// parGemmDim is sized so m*n*k clears the intra-task parallel cutoff in
// GemmP — the test must exercise the code path that would split if the
// team had more than one worker.
const parGemmDim = 128

// parTestMatrix builds a deterministic matrix from a seed.
func parTestMatrix(seed uint64, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	x := seed
	for i := range m.Data {
		x = x*6364136223846793005 + 1442695040888963407
		m.Data[i] = float64(int64(x>>33)) / float64(1<<30)
	}
	return m
}

// TestEngineCtxParSerialGemm pins the round-3 fix: netrun engine
// workers hand task bodies an explicit team.Serial in Ctx.Par (not
// nil), and GemmP through that handle is bitwise identical to the
// serial Gemm kernel. Runs across two ranks over real sockets so the
// assertion covers the actual engine execute path.
func TestEngineCtxParSerialGemm(t *testing.T) {
	a := parTestMatrix(1, parGemmDim, parGemmDim)
	b := parTestMatrix(2, parGemmDim, parGemmDim)
	want := tensor.NewMatrix(parGemmDim, parGemmDim)
	tensor.Gemm(false, false, 1, a, b, 0, want)

	const tasks, ranks = 4, 2
	build := func(rank int) (*ptg.Graph, error) {
		g := ptg.NewGraph("par-serial")
		tc := g.Class("CHECK")
		tc.Domain = func(emit func(ptg.Args)) {
			for i := 0; i < tasks; i++ {
				emit(ptg.A1(i))
			}
		}
		tc.Affinity = func(a ptg.Args) int { return a[0] % ranks }
		tc.AddFlow("D", ptg.Write).InNew(nil, func(ptg.Args) int64 { return 8 })
		tc.Body = func(ctx *ptg.Ctx) {
			if ctx.Par == nil {
				ctx.Fail(fmt.Errorf("task %v: Ctx.Par is nil", ctx.Args))
				return
			}
			if ctx.Par != team.Serial {
				ctx.Fail(fmt.Errorf("task %v: Ctx.Par = %T, want team.Serial", ctx.Args, ctx.Par))
				return
			}
			ta := parTestMatrix(1, parGemmDim, parGemmDim)
			tb := parTestMatrix(2, parGemmDim, parGemmDim)
			c := tensor.NewMatrix(parGemmDim, parGemmDim)
			tensor.GemmP(ctx.Par, ctx.Pool, false, false, 1, ta, tb, 0, c)
			for i := range c.Data {
				if c.Data[i] != want.Data[i] {
					ctx.Fail(fmt.Errorf("task %v: GemmP differs from serial Gemm at %d: %x vs %x",
						ctx.Args, i, c.Data[i], want.Data[i]))
					return
				}
			}
			ctx.Out[0] = 1
		}
		return g, nil
	}

	res, err := RunGraph(Config{Ranks: ranks, Workers: 2, Policy: sched.LIFOOrder,
		Deadline: 60 * time.Second}, build)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != tasks {
		t.Fatalf("executed %d tasks, want %d", res.Tasks, tasks)
	}
}
