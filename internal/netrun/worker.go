package netrun

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"parsec/internal/ga"
	"parsec/internal/ptg"
	"parsec/internal/tce"
)

// BuildFn constructs one rank's view of the graph. Every rank builds
// the same graph (deterministic enumeration is the protocol's shared
// ground truth); store is the rank's GA surface, nil for jobs without
// one.
type BuildFn func(rank int, store ga.API) (*ptg.Graph, error)

// worker is one rank's process-local state: transport, tracker, engine,
// GA client, and the two lifecycle signals (welcome, shutdown).
type worker struct {
	cfg  Config
	rank int
	tp   *transport
	gac  *gaClient
	eng  *engine

	welcomeCh chan welcomeMsg
	shutOnce  sync.Once
	shutCh    chan struct{}
}

// runWorker executes one rank end to end: listen, register, await the
// welcome roster, connect to peers, run the engine until the
// coordinator's shutdown (or failure), and ship the final self-report.
// workload is non-nil for CCSD jobs (it backs the GA client's
// deterministic input replicas).
func runWorker(cfg Config, rank int, coordAddr string, workload *tce.Workload, build BuildFn) error {
	network, listen := cfg.listenSpec(rank)
	tp, err := newTransport(rank, network, listen, cfg.Retry, newInjector(cfg.Fault), cfg.Sever)
	if err != nil {
		return err
	}
	tp.recoverDeadPeers = cfg.Recover
	w := &worker{
		cfg:       cfg,
		rank:      rank,
		tp:        tp,
		welcomeCh: make(chan welcomeMsg, 1),
		shutCh:    make(chan struct{}),
	}
	var store ga.API
	if workload != nil {
		w.gac = newGAClient(tp, workload, 5*time.Second)
		store = w.gac
	}
	g, err := build(rank, store)
	if err != nil {
		tp.close()
		return err
	}
	tr, err := ptg.NewTracker(g)
	if err != nil {
		tp.close()
		return err
	}
	w.eng = newEngine(cfg, rank, tp, tr)
	tp.handler = w.handle
	tp.connect(coordRank, coordAddr)
	tp.runRetryTimer(w.eng.fail)
	tp.sendTo(coordRank, msgRegister, registerMsg{Rank: rank, Addr: tp.addr()}.encode())

	var welcome welcomeMsg
	select {
	case welcome = <-w.welcomeCh:
	case <-time.After(cfg.Deadline):
		tp.close()
		return fmt.Errorf("netrun: rank %d: no welcome before deadline", rank)
	case <-w.shutCh:
		tp.close()
		return w.eng.err()
	}
	for r, addr := range welcome.Addrs {
		if r != rank {
			tp.connect(r, addr)
		}
	}

	w.eng.run()
	select {
	case <-w.shutCh:
	case <-time.After(cfg.Deadline):
		w.eng.fail(fmt.Errorf("netrun: rank %d: deadline exceeded", rank))
	}
	w.eng.stop()
	w.eng.wait()

	rep, err := encodeReport(w.eng.report())
	if err == nil {
		tp.sendTo(coordRank, msgDoneInfo, rep)
	}
	// Give the report (and any last acks owed to us) a moment to land;
	// the coordinator tolerates missing reports, so this is best-effort.
	for end := time.Now().Add(2 * time.Second); time.Now().Before(end) && !tp.drained(); {
		time.Sleep(5 * time.Millisecond)
	}
	tp.close()
	return w.eng.err()
}

// handle dispatches one deduplicated inbound frame on a rank. Frames
// from one sender arrive in order; everything here is quick except the
// flush probe, which polls on its own goroutine.
func (w *worker) handle(from int, f frame) {
	switch f.typ {
	case msgWelcome:
		m, err := decodeWelcome(f.body)
		if err != nil {
			w.eng.fail(err)
			return
		}
		select {
		case w.welcomeCh <- m:
		default:
		}
	case msgActivate:
		m, err := decodeActivate(f.body)
		if err != nil {
			w.eng.fail(err)
			return
		}
		w.eng.handleActivate(m)
	case msgMigrate:
		m, err := decodeMigrate(f.body)
		if err != nil {
			w.eng.fail(err)
			return
		}
		w.eng.handleMigrate(m)
	case msgStealProbe:
		m, err := decodeSteal(f.body)
		if err != nil {
			w.eng.fail(err)
			return
		}
		w.eng.handleStealProbe(m.Thief)
	case msgTakeover:
		m, err := decodeTakeover(f.body)
		if err != nil {
			w.eng.fail(err)
			return
		}
		w.eng.handleTakeover(m)
	case msgFlushReq:
		// Ack only once every outbound frame (accumulations included) is
		// acknowledged, and tell the coordinator how many distinct accs
		// we sent so it can match them against its post-apply count.
		go func() {
			for !w.tp.drained() {
				select {
				case <-w.shutCh:
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
			accs := w.tp.counters.accOps.Load()
			w.tp.sendTo(coordRank, msgFlushAck, flushAckMsg{Accs: accs}.encode())
		}()
	case msgGetResp:
		m, err := decodeGetResp(f.body)
		if err != nil {
			w.eng.fail(err)
			return
		}
		if w.gac != nil {
			w.gac.handleGetResp(m)
		}
	case msgNxtValResp:
		m, err := decodeNxtValResp(f.body)
		if err != nil {
			w.eng.fail(err)
			return
		}
		if w.gac != nil {
			w.gac.handleNxtValResp(m)
		}
	case msgShutdown:
		w.shutOnce.Do(func() { close(w.shutCh) })
	}
}

// encodeReport marshals a rank's final self-report for the wire.
func encodeReport(rep RankReport) ([]byte, error) {
	b, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	return doneInfoMsg{JSON: b}.encode(), nil
}
