package netrun

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"parsec/internal/ptg"
	"parsec/internal/tensor"
)

// tile constructs a small Tile4 with distinctive, non-round values so a
// byte-level round-trip slip shows up in the comparison.
func tile(seed float64) *tensor.Tile4 {
	t := &tensor.Tile4{Dim: [4]int{2, 1, 3, 1}, Data: make([]float64, 6)}
	for i := range t.Data {
		t.Data[i] = seed + float64(i)*0.3125
	}
	return t
}

// TestFrameRoundTrip drives appendFrame through decodeFrame and
// readFrame for every valid type, with and without the ack-suppress
// bit, including zero-length bodies and back-to-back frames.
func TestFrameRoundTrip(t *testing.T) {
	bodies := [][]byte{nil, {0xde}, bytes.Repeat([]byte{7}, 300)}
	for typ := msgHello; typ < msgMax; typ++ {
		for i, body := range bodies {
			for _, suppress := range []bool{false, true} {
				buf := appendFrame(nil, typ, uint64(typ)<<8|uint64(i), suppress, body)
				f, n, err := decodeFrame(buf)
				if err != nil {
					t.Fatalf("type %d: decode: %v", typ, err)
				}
				if n != len(buf) {
					t.Fatalf("type %d: consumed %d of %d bytes", typ, n, len(buf))
				}
				if f.typ != typ || f.id != uint64(typ)<<8|uint64(i) || f.suppressAck != suppress {
					t.Fatalf("type %d: frame header mangled: %+v", typ, f)
				}
				if !bytes.Equal(f.body, body) {
					t.Fatalf("type %d: body mangled", typ)
				}
				rf, err := readFrame(bytes.NewReader(buf))
				if err != nil {
					t.Fatalf("type %d: readFrame: %v", typ, err)
				}
				if rf.typ != f.typ || rf.id != f.id || !bytes.Equal(rf.body, f.body) {
					t.Fatalf("type %d: readFrame disagrees with decodeFrame", typ)
				}
			}
		}
	}
	// Two frames back to back: decodeFrame must consume exactly one.
	buf := appendFrame(nil, msgStatus, 1, false, []byte{1, 2, 3})
	first := len(buf)
	buf = appendFrame(buf, msgDone, 2, false, nil)
	f, n, err := decodeFrame(buf)
	if err != nil || n != first || f.typ != msgStatus {
		t.Fatalf("first frame of pair: typ %d n %d err %v", f.typ, n, err)
	}
	f, _, err = decodeFrame(buf[n:])
	if err != nil || f.typ != msgDone {
		t.Fatalf("second frame of pair: typ %d err %v", f.typ, err)
	}
}

// TestFrameRejectsMalformed checks every header-level rejection path.
func TestFrameRejectsMalformed(t *testing.T) {
	good := appendFrame(nil, msgHello, 9, false, []byte{1, 2})

	// Partial input at every prefix length: pending, never an error.
	for i := 0; i < len(good); i++ {
		f, n, err := decodeFrame(good[:i])
		if err != nil || n != 0 || f.typ != 0 {
			t.Fatalf("prefix %d: want pending, got n=%d err=%v", i, n, err)
		}
	}

	corrupt := func(mod func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mod(b)
		return b
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), errBadMagic},
		{"bad version", corrupt(func(b []byte) { b[2] = 99 }), errBadVersion},
		{"type zero", corrupt(func(b []byte) { b[3] = 0 }), errBadType},
		{"type past max", corrupt(func(b []byte) { b[3] = msgMax }), errBadType},
		{"type zero suppressed", corrupt(func(b []byte) { b[3] = ackSuppressBit }), errBadType},
		{"oversized", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[12:], maxBody+1)
		}), errOversized},
	}
	for _, tc := range cases {
		if _, _, err := decodeFrame(tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		if _, err := readFrame(bytes.NewReader(tc.buf)); err == nil {
			t.Errorf("%s: readFrame accepted corrupt header", tc.name)
		}
	}

	// A header promising more body than the stream has must surface an
	// io error from readFrame, not hang or panic.
	if _, err := readFrame(bytes.NewReader(good[:len(good)-1])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated stream: got %v, want unexpected EOF", err)
	}
}

// TestPayloadRoundTrip round-trips every payload kind.
func TestPayloadRoundTrip(t *testing.T) {
	vals := []any{
		nil,
		tile(0.5),
		ptg.NewBuffer{Bytes: 4096},
		int(-17),
		float64(-315.378772551848),
		math.Inf(-1),
	}
	for _, v := range vals {
		buf, err := appendPayload(nil, v)
		if err != nil {
			t.Fatalf("%T: encode: %v", v, err)
		}
		c := &cursor{buf: buf}
		got := decodePayload(c)
		if err := c.done(); err != nil {
			t.Fatalf("%T: decode: %v", v, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%T: round-trip changed value: %#v -> %#v", v, v, got)
		}
	}
	if _, err := appendPayload(nil, struct{}{}); err == nil {
		t.Error("appendPayload accepted an unknown type")
	}
	// A tile whose element count disagrees with its dims must be
	// rejected, not allocated.
	bad, _ := appendPayload(nil, tile(1))
	binary.LittleEndian.PutUint32(bad[1+32:], 5) // count 5, dims say 6
	c := &cursor{buf: bad}
	if p := decodePayload(c); p != nil || c.err == nil {
		t.Error("tile with mismatched element count decoded")
	}
}

// roundTrip runs one encode/decode pair and compares the result.
func roundTrip[M any](t *testing.T, name string, in M, enc []byte, dec func([]byte) (M, error)) {
	t.Helper()
	out, err := dec(enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("%s: round-trip changed message:\n in  %#v\n out %#v", name, in, out)
	}
	// Every strict prefix must be rejected (truncation can never decode
	// into a message silently). Messages with nil-able tails (getResp's
	// nil tile, flushAck's legacy empty body) opt out via their own
	// tests.
	for i := 0; i < len(enc); i++ {
		if _, err := dec(enc[:i]); err == nil {
			t.Fatalf("%s: truncation to %d/%d bytes decoded cleanly", name, i, len(enc))
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := dec(append(append([]byte(nil), enc...), 0xAA)); err == nil {
		t.Errorf("%s: trailing byte decoded cleanly", name)
	}
}

// TestMessageRoundTrips covers every message body codec in the
// protocol, one subtest per type, with representative field values
// (negative ints, empty and non-empty slices, tiles, special floats).
func TestMessageRoundTrips(t *testing.T) {
	t.Run("hello", func(t *testing.T) {
		m := helloMsg{From: -1} // the coordinator's rank is negative
		roundTrip(t, "hello", m, m.encode(), decodeHello)
	})
	t.Run("register", func(t *testing.T) {
		m := registerMsg{Rank: 3, Addr: "127.0.0.1:40321"}
		roundTrip(t, "register", m, m.encode(), decodeRegister)
	})
	t.Run("welcome", func(t *testing.T) {
		m := welcomeMsg{Ranks: 3, Addrs: []string{"a:1", "", "long-unix-socket-path.sock"}}
		roundTrip(t, "welcome", m, m.encode(), decodeWelcome)
	})
	t.Run("activate", func(t *testing.T) {
		for _, payload := range []any{nil, tile(2.25), ptg.NewBuffer{Bytes: 64}, 7, 2.5} {
			m := activateMsg{Class: "GEMM", Args: ptg.A3(4, -1, 9), Flow: 2, Payload: payload}
			enc, err := m.encode()
			if err != nil {
				t.Fatalf("activate(%T): encode: %v", payload, err)
			}
			roundTrip(t, "activate", m, enc, decodeActivate)
		}
	})
	t.Run("done", func(t *testing.T) {
		m := doneMsg{Seqs: []int{0, 5, 1 << 40, 3}}
		roundTrip(t, "done", m, m.encode(), decodeDone)
		// Empty batch decodes to an empty (non-nil) slice.
		out, err := decodeDone(doneMsg{}.encode())
		if err != nil || len(out.Seqs) != 0 {
			t.Fatalf("empty done: %+v, %v", out, err)
		}
	})
	t.Run("status", func(t *testing.T) {
		m := statusMsg{Backlog: 12345}
		roundTrip(t, "status", m, m.encode(), decodeStatus)
	})
	t.Run("flushAck", func(t *testing.T) {
		m := flushAckMsg{Accs: 987654321}
		out, err := decodeFlushAck(m.encode())
		if err != nil || out != m {
			t.Fatalf("flushAck: %+v, %v", out, err)
		}
		// The legacy empty body means "no accs to wait for".
		if out, err := decodeFlushAck(nil); err != nil || out.Accs != 0 {
			t.Fatalf("legacy flushAck: %+v, %v", out, err)
		}
		if _, err := decodeFlushAck([]byte{1, 2}); err == nil {
			t.Error("short flushAck body decoded cleanly")
		}
	})
	t.Run("accOrdered", func(t *testing.T) {
		m := accOrderedMsg{
			Name: "C", Key: tensor.BlockKey{1, 0, 2, 3},
			Tag: 41, Lo: 7, Hi: 13, Scale: -0.5, Tile: tile(3.75),
		}
		enc, err := m.encode()
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, "accOrdered", m, enc, decodeAccOrdered)
		// An accumulation without data is always a bug; the encoder must
		// refuse the typed-nil tile rather than ship a bogus payload.
		if _, err := (accOrderedMsg{Name: "C"}).encode(); err == nil {
			t.Error("accOrdered with nil tile encoded cleanly")
		}
		// And a hand-built body with a non-tile payload must be rejected
		// on decode.
		bad := appendString(nil, "C")
		for i := 0; i < 4+3; i++ {
			bad = appendI64(bad, 0)
		}
		bad = appendF64(bad, 1)
		bad = append(bad, payNil)
		if _, err := decodeAccOrdered(bad); err == nil {
			t.Error("accOrdered with nil payload decoded cleanly")
		}
	})
	t.Run("get", func(t *testing.T) {
		m := getMsg{ReqID: 77, Name: "T2", Key: tensor.BlockKey{0, 1, 0, 4}}
		roundTrip(t, "get", m, m.encode(), decodeGet)
	})
	t.Run("getResp", func(t *testing.T) {
		m := getRespMsg{ReqID: 78, Tile: tile(4.125)}
		enc, err := m.encode()
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, "getResp", m, enc, decodeGetResp)
		// The nil tile (block absent) is a legitimate answer.
		none := getRespMsg{ReqID: 79}
		enc, err = none.encode()
		if err != nil {
			t.Fatal(err)
		}
		out, err := decodeGetResp(enc)
		if err != nil || out.Tile != nil || out.ReqID != 79 {
			t.Fatalf("nil-tile getResp: %+v, %v", out, err)
		}
		// A non-tile payload is a protocol violation.
		buf := appendU64(nil, 80)
		buf, _ = appendPayload(buf, int(3))
		if _, err := decodeGetResp(buf); err == nil {
			t.Error("getResp with int payload decoded cleanly")
		}
	})
	t.Run("nxtVal", func(t *testing.T) {
		m := nxtValMsg{ReqID: 81}
		roundTrip(t, "nxtVal", m, m.encode(), decodeNxtVal)
	})
	t.Run("nxtValResp", func(t *testing.T) {
		m := nxtValRespMsg{ReqID: 82, Val: -1}
		roundTrip(t, "nxtValResp", m, m.encode(), decodeNxtValResp)
	})
	t.Run("steal", func(t *testing.T) {
		m := stealMsg{Thief: 2}
		roundTrip(t, "steal", m, m.encode(), decodeSteal)
	})
	t.Run("migrate", func(t *testing.T) {
		m := migrateMsg{
			Class: "DFILL", Args: ptg.A2(5, 6),
			Ins: []migratePayload{
				{Flow: 0, Payload: tile(5.5)},
				{Flow: 2, Payload: nil},
				{Flow: 3, Payload: ptg.NewBuffer{Bytes: 128}},
			},
		}
		enc, err := m.encode()
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, "migrate", m, enc, decodeMigrate)
		// No shipped inputs is legal (all flows data- or new-sourced).
		bare := migrateMsg{Class: "SORT", Args: ptg.A1(1)}
		enc, err = bare.encode()
		if err != nil {
			t.Fatal(err)
		}
		out, err := decodeMigrate(enc)
		if err != nil || len(out.Ins) != 0 || out.Class != "SORT" {
			t.Fatalf("bare migrate: %+v, %v", out, err)
		}
	})
	t.Run("takeover", func(t *testing.T) {
		m := takeoverMsg{Dead: 2, Heir: 0}
		roundTrip(t, "takeover", m, m.encode(), decodeTakeover)
	})
	t.Run("doneInfo", func(t *testing.T) {
		m := doneInfoMsg{JSON: []byte(`{"rank":1}`)}
		roundTrip(t, "doneInfo", m, m.encode(), decodeDoneInfo)
	})
	t.Run("error", func(t *testing.T) {
		m := errorMsg{Text: "netrun: rank 1: deadline exceeded"}
		roundTrip(t, "error", m, m.encode(), decodeError)
	})
}

// TestDecodersRejectHugeCounts feeds each slice-bearing decoder a
// count prefix far larger than the buffer: they must error without
// attempting the implied allocation.
func TestDecodersRejectHugeCounts(t *testing.T) {
	huge := appendU32(nil, math.MaxUint32)
	if _, err := decodeDone(huge); err == nil {
		t.Error("done: huge count decoded cleanly")
	}
	if _, err := decodeWelcome(append(appendI64(nil, 2), huge...)); err == nil {
		t.Error("welcome: huge count decoded cleanly")
	}
	mig := appendString(nil, "X")
	for i := 0; i < len(ptg.Args{}); i++ {
		mig = appendI64(mig, 0)
	}
	if _, err := decodeMigrate(append(mig, huge...)); err == nil {
		t.Error("migrate: huge count decoded cleanly")
	}
	if _, err := decodeDoneInfo(huge); err == nil {
		t.Error("doneInfo: huge length decoded cleanly")
	}
	// A tile header claiming 2^32-1 elements inside an activate body.
	act := appendString(nil, "GEMM")
	for i := 0; i < len(ptg.Args{}); i++ {
		act = appendI64(act, 0)
	}
	act = appendI64(act, 0)    // flow
	act = append(act, payTile) // payload kind
	for i := 0; i < 4; i++ {   // dims
		act = appendI64(act, 1<<30)
	}
	act = append(act, huge...) // element count
	if _, err := decodeActivate(act); err == nil {
		t.Error("activate: huge tile decoded cleanly")
	}
}

// FuzzDecodeFrame holds the frame decoder to its contract: for any
// input it returns a frame, pending, or an error — it never panics,
// and whatever it consumes must re-encode to the same bytes.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(appendFrame(nil, msgHello, 1, false, helloMsg{From: 0}.encode()))
	f.Add(appendFrame(nil, msgAck, 7, true, nil))
	act, _ := activateMsg{Class: "STEP", Args: ptg.A2(1, 2), Flow: 0, Payload: tile(1)}.encode()
	f.Add(appendFrame(nil, msgActivate, 3, false, act))
	f.Add(appendFrame(nil, msgDone, 4, false, doneMsg{Seqs: []int{1, 2}}.encode()))
	f.Add([]byte{'P', 'R', wireVersion, msgMax, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{'P', 'R', 2, msgHello})
	f.Add([]byte("not a frame at all, definitely longer than a header"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := decodeFrame(data)
		switch {
		case err != nil:
			if n != 0 {
				t.Fatalf("error with %d bytes consumed", n)
			}
		case n == 0:
			// Pending: a longer read may complete it. Nothing to check.
		default:
			if n < frameHeaderLen || n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			if fr.typ == 0 || fr.typ >= msgMax {
				t.Fatalf("decoded invalid type %d", fr.typ)
			}
			re := appendFrame(nil, fr.typ, fr.id, fr.suppressAck, fr.body)
			if !bytes.Equal(re, data[:n]) {
				t.Fatal("re-encode disagrees with consumed bytes")
			}
			// Body decoders must also never panic on arbitrary bodies.
			decodeBody(fr)
		}
		// readFrame over the same bytes must agree: frame or error,
		// never a panic or a hang (the reader is finite).
		rf, rerr := readFrame(bytes.NewReader(data))
		if err == nil && n > 0 && rerr == nil {
			if rf.typ != fr.typ || rf.id != fr.id || !bytes.Equal(rf.body, fr.body) {
				t.Fatal("readFrame disagrees with decodeFrame")
			}
		}
	})
}

// decodeBody routes a fuzzed frame body through its message decoder,
// ignoring errors: the property under test is "no panic, no runaway
// allocation", which the Go fuzzer enforces via crash and OOM.
func decodeBody(fr frame) {
	switch fr.typ {
	case msgHello:
		_, _ = decodeHello(fr.body)
	case msgRegister:
		_, _ = decodeRegister(fr.body)
	case msgWelcome:
		_, _ = decodeWelcome(fr.body)
	case msgActivate:
		_, _ = decodeActivate(fr.body)
	case msgDone:
		_, _ = decodeDone(fr.body)
	case msgStatus:
		_, _ = decodeStatus(fr.body)
	case msgAccOrdered:
		_, _ = decodeAccOrdered(fr.body)
	case msgGetReq:
		_, _ = decodeGet(fr.body)
	case msgGetResp:
		_, _ = decodeGetResp(fr.body)
	case msgNxtValReq:
		_, _ = decodeNxtVal(fr.body)
	case msgNxtValResp:
		_, _ = decodeNxtValResp(fr.body)
	case msgStealReq, msgStealProbe, msgStealNone:
		_, _ = decodeSteal(fr.body)
	case msgMigrate:
		_, _ = decodeMigrate(fr.body)
	case msgTakeover:
		_, _ = decodeTakeover(fr.body)
	case msgFlushReq, msgFlushAck:
		_, _ = decodeFlushAck(fr.body)
	case msgDoneInfo:
		_, _ = decodeDoneInfo(fr.body)
	case msgError:
		_, _ = decodeError(fr.body)
	}
}
