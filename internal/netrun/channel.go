package netrun

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"parsec/internal/fault"
)

// RetryPolicy is the real-time analogue of simexec's virtual-comm-thread
// recovery machine (PR 4): a sender considers a frame lost Timeout after
// its last transmission, waits a capped exponential backoff (Backoff,
// 2*Backoff, ... up to BackoffCap), and retransmits; after MaxRetries
// retransmissions the link — and the run — fails. The receiver's
// per-sender dedup makes the resulting at-least-once delivery safe.
type RetryPolicy struct {
	Timeout    time.Duration
	Backoff    time.Duration
	BackoffCap time.Duration
	MaxRetries int
}

// DefaultRetryPolicy returns the production defaults. The retry horizon
// (Timeout plus the backoff series) deliberately exceeds the
// coordinator's death-detection window, so a sender blocked on a dead
// peer survives long enough for the takeover broadcast to re-route its
// retained traffic instead of failing the run.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Timeout:    100 * time.Millisecond,
		Backoff:    50 * time.Millisecond,
		BackoffCap: 400 * time.Millisecond,
		MaxRetries: 15,
	}
}

// backoffFor returns the wait before retransmission n (0-based).
func (p RetryPolicy) backoffFor(n int) time.Duration {
	b := p.Backoff
	for i := 0; i < n; i++ {
		b *= 2
		if b >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if b > p.BackoffCap {
		b = p.BackoffCap
	}
	return b
}

// SeverSpec closes one direction of one link after a number of frames:
// the scripted "sever a connection" of the chaos suite. The sender's
// reconnect-and-retransmit path must absorb it without losing a message.
type SeverSpec struct {
	From, To    int
	AfterFrames int
}

// injector wraps the discrete-event fault injector for concurrent use:
// fault.Injector mutates seeded RNG streams and was written for the
// single-threaded simulation engine, so every draw serializes here.
type injector struct {
	mu  sync.Mutex
	inj *fault.Injector
}

func newInjector(cfg *fault.Config) *injector {
	if cfg == nil {
		return nil
	}
	return &injector{inj: fault.New(*cfg)}
}

// transfer returns the seeded verdict for one send attempt.
func (j *injector) transfer(from, to int) fault.XferOutcome {
	if j == nil {
		return fault.XferOutcome{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.inj.Transfer(from, to)
}

// commCounters aggregates one process's wire activity; all fields are
// atomics because senders, receivers, and retransmit timers race.
type commCounters struct {
	msgsSent        atomic.Int64
	bytesSent       atomic.Int64
	acksReceived    atomic.Int64
	retries         atomic.Int64
	retransmitBytes atomic.Int64
	backoffNs       atomic.Int64
	dropsInjected   atomic.Int64
	ackDropsInj     atomic.Int64
	dupSuppressed   atomic.Int64
	reconnects      atomic.Int64
	severs          atomic.Int64

	transferOps   atomic.Int64 // activations + migrations (tile movement)
	transferBytes atomic.Int64
	accOps        atomic.Int64
	accBytes      atomic.Int64
	getOps        atomic.Int64
	getBytes      atomic.Int64
}

// pendingMsg is one unacknowledged frame awaiting ack or retransmission.
type pendingMsg struct {
	typ      byte
	id       uint64
	body     []byte
	attempts int       // retransmissions performed
	deadline time.Time // next loss-detection point
}

// retainedMsg is one activation kept for post-takeover replay.
type retainedMsg struct {
	typ  byte
	body []byte
}

// relChan is one outbound reliable link to a single peer: it owns the
// dialed connection, the unacked window, the retransmit timer, and the
// retained activation log. Data frames flow out; only acks flow back.
//
// All socket writes happen on the channel's writer goroutine, never
// under c.mu: a blocking write while holding the mutex deadlocks once
// the kernel buffers fill (sender holds mu blocked on write, the peer's
// receive loop blocks writing an ack back, and the ack reader that
// would drain it waits on mu). Unix sockets' small buffers hit this
// immediately; TCP merely hides it behind bigger buffers.
type relChan struct {
	tp   *transport
	dst  int
	addr string

	mu       sync.Mutex
	wcond    *sync.Cond // outbox gained frames, conn changed, or stopped
	conn     net.Conn
	outbox   [][]byte // encoded frames awaiting the writer goroutine
	nextID   uint64
	unacked  map[uint64]*pendingMsg
	retained []retainedMsg
	frames   int // frames written, for SeverSpec
	severed  bool
	stopped  bool
	dialing  bool
}

func (c *relChan) stop() {
	c.mu.Lock()
	c.stopped = true
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.wcond.Broadcast()
	c.mu.Unlock()
}

// send assigns a reliability id, retains activations for takeover
// replay, and attempts the first transmission. Loss is recovered by the
// retransmit timer; the call never blocks on the network beyond one
// write.
func (c *relChan) send(typ byte, body []byte) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.nextID++
	p := &pendingMsg{typ: typ, id: c.nextID, body: body}
	c.unacked[p.id] = p
	if typ == msgActivate {
		c.retained = append(c.retained, retainedMsg{typ: typ, body: body})
	}
	c.writeLocked(p)
	c.mu.Unlock()

	c.tp.counters.msgsSent.Add(1)
	c.tp.counters.bytesSent.Add(int64(frameHeaderLen + len(body)))
}

// writeLocked stages one transmission attempt of a pending frame,
// consulting the fault injector: a Drop verdict skips it entirely (the
// timer retransmits), an AckDrop verdict sets the ack-suppress bit so
// the receiver provokes the duplicate path, and a Sever verdict due at
// this frame count is encoded as a nil outbox entry the writer turns
// into a connection close. Callers hold c.mu; the socket write itself
// happens on the writer goroutine.
func (c *relChan) writeLocked(p *pendingMsg) {
	p.deadline = time.Now().Add(c.tp.retry.Timeout)
	out := c.tp.inj.transfer(c.tp.local, c.dst)
	if out.Drop {
		c.tp.counters.dropsInjected.Add(1)
		return
	}
	suppress := false
	if out.AckDrop {
		suppress = true
		c.tp.counters.ackDropsInj.Add(1)
	}
	if sv := c.tp.sever; sv != nil && sv.From == c.tp.local && sv.To == c.dst {
		c.frames++
		if !c.severed && c.frames > sv.AfterFrames {
			c.severed = true
			c.tp.counters.severs.Add(1)
			c.outbox = append(c.outbox, nil) // sever marker: writer cuts the link here
			c.wcond.Broadcast()
			return
		}
	}
	c.outbox = append(c.outbox, appendFrame(nil, p.typ, p.id, suppress, p.body))
	c.wcond.Broadcast()
	if c.conn == nil {
		c.ensureDialLocked()
	}
}

// writeLoop is the channel's writer goroutine: it drains the outbox
// onto whatever connection is current, blocking on the kernel with no
// locks held. A failed or severed write drops the staged bytes — the
// frame stays in the unacked window, so loss detection retransmits it.
func (c *relChan) writeLoop() {
	defer c.tp.wg.Done()
	for {
		c.mu.Lock()
		for !c.stopped && (len(c.outbox) == 0 || c.conn == nil) {
			if len(c.outbox) > 0 {
				c.ensureDialLocked()
			}
			c.wcond.Wait()
		}
		if c.stopped {
			c.mu.Unlock()
			return
		}
		buf := c.outbox[0]
		c.outbox = c.outbox[1:]
		conn := c.conn
		c.mu.Unlock()

		if buf == nil { // sever marker
			c.dropConn(conn, true)
			continue
		}
		if _, err := conn.Write(buf); err != nil {
			c.dropConn(conn, false)
		}
	}
}

// dropConn retires a connection after a write failure or a scripted
// sever and, if frames remain owed, starts a redial.
func (c *relChan) dropConn(conn net.Conn, redial bool) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		if redial || len(c.unacked) > 0 {
			c.ensureDialLocked()
		}
	}
	c.mu.Unlock()
}

// ensureDialLocked starts a background dial if none is in flight.
func (c *relChan) ensureDialLocked() {
	if c.dialing || c.stopped {
		return
	}
	c.dialing = true
	c.tp.wg.Add(1)
	go c.dialLoop()
}

// dialLoop establishes (or re-establishes) the connection, sends the
// hello, and starts the ack reader. It retries with a short fixed pause
// until it succeeds or the channel stops.
func (c *relChan) dialLoop() {
	defer c.tp.wg.Done()
	for {
		c.mu.Lock()
		if c.stopped || c.conn != nil {
			c.dialing = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		conn, err := net.DialTimeout(c.tp.network, c.addr, time.Second)
		if err != nil {
			select {
			case <-c.tp.stopCh:
				c.mu.Lock()
				c.dialing = false
				c.mu.Unlock()
				return
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		hello := appendFrame(nil, msgHello, 0, false, helloMsg{From: c.tp.local}.encode())
		if _, err := conn.Write(hello); err != nil {
			conn.Close()
			continue
		}
		c.mu.Lock()
		if c.stopped {
			conn.Close()
			c.dialing = false
			c.mu.Unlock()
			return
		}
		c.conn = conn
		c.dialing = false
		// Frames sent while the link was down sit in the unacked window;
		// restage them now rather than waiting out the loss-detection
		// timer. (Any copies still in the outbox arrive twice; the
		// receiver's dedup absorbs that.)
		for _, p := range c.unacked {
			c.writeLocked(p)
		}
		c.wcond.Broadcast()
		c.mu.Unlock()
		c.tp.counters.reconnects.Add(1)
		c.tp.wg.Add(1)
		go c.readAcks(conn)
		return
	}
}

// readAcks drains acknowledgment frames from one connection until it
// dies, then hands the channel back to the dialer.
func (c *relChan) readAcks(conn net.Conn) {
	defer c.tp.wg.Done()
	for {
		f, err := readFrame(conn)
		if err != nil {
			c.mu.Lock()
			if c.conn == conn {
				c.conn.Close()
				c.conn = nil
				if len(c.unacked) > 0 {
					c.ensureDialLocked()
				}
			}
			c.mu.Unlock()
			return
		}
		if f.typ != msgAck {
			continue
		}
		c.mu.Lock()
		if _, ok := c.unacked[f.id]; ok {
			delete(c.unacked, f.id)
			c.tp.counters.acksReceived.Add(1)
		}
		c.mu.Unlock()
	}
}

// tick is the loss-detection scan: every pending frame past its
// deadline is charged one retry, waits its capped backoff (folded into
// the next deadline rather than slept, so one timer serves all links),
// and is retransmitted. Exhausted retries fail the whole process — the
// simexec contract — unless the peer is under takeover re-routing.
func (c *relChan) tick(now time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return nil
	}
	for _, p := range c.unacked {
		if now.Before(p.deadline) {
			continue
		}
		if p.attempts >= c.tp.retry.MaxRetries &&
			!(c.tp.recoverDeadPeers && c.dst != coordRank) {
			return fmt.Errorf("netrun: rank %d -> %d: message %d (type %d) unacked after %d retries",
				c.tp.local, c.dst, p.id, p.typ, p.attempts)
		}
		backoff := c.tp.retry.backoffFor(p.attempts)
		p.attempts++
		c.tp.counters.retries.Add(1)
		c.tp.counters.backoffNs.Add(int64(backoff))
		c.tp.counters.retransmitBytes.Add(int64(frameHeaderLen + len(p.body)))
		c.writeLocked(p)
		p.deadline = p.deadline.Add(backoff) // extend past Timeout by the backoff
	}
	return nil
}

// drained reports whether every sent frame has been acknowledged. A
// stopped channel counts as drained: its peer is dead, its window can
// never be acked, and takeover already surrendered its retained log —
// holding the flush barrier on it would hang every live rank.
func (c *relChan) drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped || len(c.unacked) == 0
}

// takeRetained stops the channel and surrenders its retained activation
// log for replay to an heir.
func (c *relChan) takeRetained() []retainedMsg {
	c.mu.Lock()
	r := c.retained
	c.retained = nil
	c.mu.Unlock()
	c.stop()
	return r
}

// transport is one process's endpoint: a listener for inbound traffic,
// outbound reliable channels by destination, per-sender receive dedup,
// and the rank routing table that takeover rewrites.
type transport struct {
	local    int
	network  string // "tcp" or "unix"
	retry    RetryPolicy
	inj      *injector
	sever    *SeverSpec
	counters *commCounters
	// recoverDeadPeers (set when Config.Recover is on) keeps worker→worker
	// channels retrying at the backoff cap after MaxRetries instead of
	// failing the run: the coordinator's death-detection window is far
	// shorter than the retry horizon, so a genuinely dead peer gets this
	// channel redirected by takeover, while failing here would race the
	// takeover broadcast. Channels to the coordinator still fail hard.
	recoverDeadPeers bool

	ln     net.Listener
	stopCh chan struct{}
	wg     sync.WaitGroup

	// handler receives every deduplicated inbound data frame. It runs on
	// the inbound connection's goroutine; slow work must be handed off.
	handler func(from int, f frame)
	// onSeen, if set, observes every inbound frame's sender before
	// dedup — the coordinator's liveness signal.
	onSeen func(from int)

	mu       sync.Mutex
	chans    map[int]*relChan
	routes   map[int]int // rank -> rank actually serving it (takeover)
	seen     map[int]map[uint64]bool
	sessions map[int]*session
	closed   bool
}

// session is one inbound connection with its ack-write lock.
type session struct {
	conn net.Conn
	mu   sync.Mutex
}

func (s *session) writeAck(id uint64) {
	buf := appendFrame(nil, msgAck, id, false, nil)
	s.mu.Lock()
	s.conn.Write(buf)
	s.mu.Unlock()
}

// newTransport opens a listener ("tcp" on 127.0.0.1, "unix" on the
// given socket path pattern) and starts accepting.
func newTransport(local int, network, listenAddr string, retry RetryPolicy, inj *injector, sever *SeverSpec) (*transport, error) {
	ln, err := net.Listen(network, listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netrun: listen %s %s: %w", network, listenAddr, err)
	}
	tp := &transport{
		local:    local,
		network:  network,
		retry:    retry,
		inj:      inj,
		sever:    sever,
		counters: &commCounters{},
		ln:       ln,
		stopCh:   make(chan struct{}),
		chans:    make(map[int]*relChan),
		routes:   make(map[int]int),
		seen:     make(map[int]map[uint64]bool),
		sessions: make(map[int]*session),
	}
	tp.wg.Add(1)
	go tp.acceptLoop()
	return tp, nil
}

// addr returns the listener's address string.
func (tp *transport) addr() string { return tp.ln.Addr().String() }

func (tp *transport) acceptLoop() {
	defer tp.wg.Done()
	for {
		conn, err := tp.ln.Accept()
		if err != nil {
			return // listener closed
		}
		tp.wg.Add(1)
		go tp.serveConn(conn)
	}
}

// serveConn handles one inbound connection: hello, then data frames,
// each acked (unless suppressed) and deduplicated per sender.
func (tp *transport) serveConn(conn net.Conn) {
	defer tp.wg.Done()
	defer conn.Close()
	hello, err := readFrame(conn)
	if err != nil || hello.typ != msgHello {
		return
	}
	hm, err := decodeHello(hello.body)
	if err != nil {
		return
	}
	from := hm.From
	sess := &session{conn: conn}
	tp.mu.Lock()
	if tp.closed {
		tp.mu.Unlock()
		return
	}
	tp.sessions[from] = sess
	if tp.seen[from] == nil {
		tp.seen[from] = make(map[uint64]bool)
	}
	tp.mu.Unlock()
	if tp.onSeen != nil {
		tp.onSeen(from)
	}

	for {
		f, err := readFrame(conn)
		if err != nil {
			tp.mu.Lock()
			if tp.sessions[from] == sess {
				delete(tp.sessions, from)
			}
			tp.mu.Unlock()
			return
		}
		if tp.onSeen != nil {
			tp.onSeen(from)
		}
		if !f.suppressAck {
			sess.writeAck(f.id)
		}
		tp.mu.Lock()
		dup := tp.seen[from][f.id]
		if !dup {
			tp.seen[from][f.id] = true
		}
		tp.mu.Unlock()
		if dup {
			tp.counters.dupSuppressed.Add(1)
			continue
		}
		tp.handler(from, f)
	}
}

// chanTo returns (creating if needed) the outbound channel to a rank,
// following the takeover routing table.
func (tp *transport) chanTo(rank int) *relChan {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	return tp.chanToLocked(rank)
}

func (tp *transport) chanToLocked(rank int) *relChan {
	if r, ok := tp.routes[rank]; ok {
		rank = r
	}
	c := tp.chans[rank]
	if c == nil {
		panic(fmt.Sprintf("netrun: rank %d has no channel to %d", tp.local, rank))
	}
	return c
}

// connect registers the outbound channel to a peer's address. The
// actual dial happens lazily on first send.
func (tp *transport) connect(rank int, addr string) {
	tp.mu.Lock()
	if tp.chans[rank] == nil {
		c := &relChan{tp: tp, dst: rank, addr: addr, unacked: make(map[uint64]*pendingMsg)}
		c.wcond = sync.NewCond(&c.mu)
		tp.chans[rank] = c
		tp.wg.Add(1)
		go c.writeLoop()
	}
	tp.mu.Unlock()
}

// sendTo delivers one message reliably to a rank (through the routing
// table).
func (tp *transport) sendTo(rank int, typ byte, body []byte) {
	tp.chanTo(rank).send(typ, body)
}

// redirect re-routes a dead rank to its heir and returns the retained
// activation log owed to the heir. Idempotent per dead rank.
func (tp *transport) redirect(dead, heir int) []retainedMsg {
	tp.mu.Lock()
	if r, ok := tp.routes[dead]; ok && r == heir {
		tp.mu.Unlock()
		return nil
	}
	tp.routes[dead] = heir
	c := tp.chans[dead]
	tp.mu.Unlock()
	if c == nil || dead == tp.local {
		return nil
	}
	return c.takeRetained()
}

// drained reports whether every outbound channel has an empty unacked
// window.
func (tp *transport) drained() bool {
	tp.mu.Lock()
	chans := make([]*relChan, 0, len(tp.chans))
	for _, c := range tp.chans {
		chans = append(chans, c)
	}
	tp.mu.Unlock()
	for _, c := range chans {
		if !c.drained() {
			return false
		}
	}
	return true
}

// runRetryTimer drives loss detection for every channel until the
// transport stops; the first exhausted-retries error is reported once
// through fail.
func (tp *transport) runRetryTimer(fail func(error)) {
	tp.wg.Add(1)
	go func() {
		defer tp.wg.Done()
		interval := tp.retry.Timeout / 4
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-tp.stopCh:
				return
			case now := <-t.C:
				tp.mu.Lock()
				chans := make([]*relChan, 0, len(tp.chans))
				for _, c := range tp.chans {
					chans = append(chans, c)
				}
				tp.mu.Unlock()
				for _, c := range chans {
					if err := c.tick(now); err != nil {
						fail(err)
						return
					}
				}
			}
		}
	}()
}

// close tears the endpoint down: listener, inbound sessions, outbound
// channels, timer.
func (tp *transport) close() {
	tp.mu.Lock()
	if tp.closed {
		tp.mu.Unlock()
		return
	}
	tp.closed = true
	sessions := make([]*session, 0, len(tp.sessions))
	for _, s := range tp.sessions {
		sessions = append(sessions, s)
	}
	chans := make([]*relChan, 0, len(tp.chans))
	for _, c := range tp.chans {
		chans = append(chans, c)
	}
	tp.mu.Unlock()

	close(tp.stopCh)
	tp.ln.Close()
	for _, s := range sessions {
		s.conn.Close()
	}
	for _, c := range chans {
		c.stop()
	}
	tp.wg.Wait()
}
