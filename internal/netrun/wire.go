package netrun

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"parsec/internal/ptg"
	"parsec/internal/tensor"
)

// Wire protocol: every frame is
//
//	magic(2) version(1) type(1) id(8, LE) bodyLen(4, LE) body
//
// The id is the sender-assigned reliability sequence number acknowledged
// by msgAck frames; control frames that need no ack carry id 0. Frames
// are self-delimiting, so a stream reader never needs lookahead, and a
// decoder must reject malformed input (bad magic, unknown version,
// oversized length, truncated body) with an error, never a panic — the
// fuzz target in wire_test.go holds it to that.

const (
	wireMagic0  = 'P'
	wireMagic1  = 'R' // "PaRSEC reproduction"
	wireVersion = 1

	frameHeaderLen = 2 + 1 + 1 + 8 + 4
	// maxBody caps a frame body: the largest legitimate payload is one
	// beta-carotene-scale tile (a few MB), so 256 MiB is generous and
	// still bounds what a corrupt length prefix can make a reader
	// allocate.
	maxBody = 256 << 20

	// ackSuppressBit set in the type byte asks the receiver to process
	// the frame but drop its acknowledgment: the sender-side fault
	// injector uses it to emulate a lost ack with a single seeded RNG
	// stream, forcing a retransmission the receiver must dedup.
	ackSuppressBit = 0x80
	typeMask       = 0x7f
)

// Message types.
const (
	msgHello byte = iota + 1
	msgAck
	msgRegister
	msgWelcome
	msgActivate
	msgDone
	msgStatus
	msgAccOrdered
	msgGetReq
	msgGetResp
	msgNxtValReq
	msgNxtValResp
	msgStealReq
	msgStealProbe
	msgStealNone
	msgMigrate
	msgTakeover
	msgFlushReq
	msgFlushAck
	msgDoneInfo
	msgShutdown
	msgError
	msgMax // one past the last valid type
)

var (
	errBadMagic   = errors.New("netrun: bad frame magic")
	errBadVersion = errors.New("netrun: unsupported protocol version")
	errBadType    = errors.New("netrun: unknown message type")
	errOversized  = errors.New("netrun: frame body exceeds limit")
)

// frame is one decoded wire frame.
type frame struct {
	typ         byte
	id          uint64
	suppressAck bool
	body        []byte
}

// appendFrame appends the encoded frame to dst and returns it.
func appendFrame(dst []byte, typ byte, id uint64, suppressAck bool, body []byte) []byte {
	t := typ
	if suppressAck {
		t |= ackSuppressBit
	}
	dst = append(dst, wireMagic0, wireMagic1, wireVersion, t)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// decodeFrame parses one frame from the front of buf, returning the
// frame and the number of bytes consumed. It returns (zero, 0, nil)
// when buf holds only a partial frame, and an error for any malformed
// prefix.
func decodeFrame(buf []byte) (frame, int, error) {
	if len(buf) < frameHeaderLen {
		return frame{}, 0, nil
	}
	if buf[0] != wireMagic0 || buf[1] != wireMagic1 {
		return frame{}, 0, errBadMagic
	}
	if buf[2] != wireVersion {
		return frame{}, 0, fmt.Errorf("%w: %d", errBadVersion, buf[2])
	}
	t := buf[3]
	typ := t & typeMask
	if typ == 0 || typ >= msgMax {
		return frame{}, 0, fmt.Errorf("%w: %d", errBadType, typ)
	}
	id := binary.LittleEndian.Uint64(buf[4:])
	n := binary.LittleEndian.Uint32(buf[12:])
	if n > maxBody {
		return frame{}, 0, fmt.Errorf("%w: %d", errOversized, n)
	}
	total := frameHeaderLen + int(n)
	if len(buf) < total {
		return frame{}, 0, nil
	}
	return frame{
		typ:         typ,
		id:          id,
		suppressAck: t&ackSuppressBit != 0,
		body:        buf[frameHeaderLen:total],
	}, total, nil
}

// readFrame reads exactly one frame from r.
func readFrame(r io.Reader) (frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	f, n, err := decodeFrame(hdr[:])
	if err != nil {
		return frame{}, err
	}
	if n == 0 {
		// Header parsed clean but the body is pending.
		bodyLen := binary.LittleEndian.Uint32(hdr[12:])
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(r, body); err != nil {
			return frame{}, err
		}
		full := append(hdr[:], body...)
		f, _, err = decodeFrame(full)
		if err != nil {
			return frame{}, err
		}
	}
	return f, nil
}

// ---- body encoding primitives ----
//
// Bodies are concatenations of fixed-width little-endian integers,
// IEEE float64 bits, and u32-length-prefixed byte strings. Decoders
// consume via a cursor that records the first error and returns zero
// values afterwards, so message decoders stay linear and cannot panic
// on truncated input.

func appendU32(dst []byte, v uint32) []byte  { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte  { return binary.LittleEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte   { return appendU64(dst, uint64(v)) }
func appendF64(dst []byte, v float64) []byte { return appendU64(dst, math.Float64bits(v)) }

func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

type cursor struct {
	buf []byte
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = errors.New("netrun: truncated message body")
	}
}

func (c *cursor) u32() uint32 {
	if c.err != nil || len(c.buf) < 4 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.buf)
	c.buf = c.buf[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || len(c.buf) < 8 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.buf)
	c.buf = c.buf[8:]
	return v
}

func (c *cursor) i64() int64   { return int64(c.u64()) }
func (c *cursor) int() int     { return int(c.i64()) }
func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) str() string {
	n := c.u32()
	if c.err != nil || uint64(n) > uint64(len(c.buf)) {
		c.fail()
		return ""
	}
	s := string(c.buf[:n])
	c.buf = c.buf[n:]
	return s
}

func (c *cursor) bytes() []byte {
	n := c.u32()
	if c.err != nil || uint64(n) > uint64(len(c.buf)) {
		c.fail()
		return nil
	}
	b := c.buf[:n:n]
	c.buf = c.buf[n:]
	return b
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.buf) != 0 {
		return fmt.Errorf("netrun: %d trailing bytes in message body", len(c.buf))
	}
	return nil
}

// ---- payload encoding ----
//
// Task-sourced flow payloads are one of a small closed set of Go values
// (see ptg bodies): nil, *tensor.Tile4, ptg.NewBuffer, int, float64.

const (
	payNil byte = iota
	payTile
	payNewBuffer
	payInt
	payFloat
)

func appendPayload(dst []byte, p any) ([]byte, error) {
	switch v := p.(type) {
	case nil:
		return append(dst, payNil), nil
	case *tensor.Tile4:
		if v == nil { // a typed nil would otherwise masquerade as a tile
			return dst, errors.New("netrun: cannot encode nil tile payload")
		}
		dst = append(dst, payTile)
		for _, d := range v.Dim {
			dst = appendI64(dst, int64(d))
		}
		dst = appendU32(dst, uint32(len(v.Data)))
		for _, x := range v.Data {
			dst = appendF64(dst, x)
		}
		return dst, nil
	case ptg.NewBuffer:
		dst = append(dst, payNewBuffer)
		return appendI64(dst, v.Bytes), nil
	case int:
		dst = append(dst, payInt)
		return appendI64(dst, int64(v)), nil
	case float64:
		dst = append(dst, payFloat)
		return appendF64(dst, v), nil
	default:
		return dst, fmt.Errorf("netrun: cannot encode payload of type %T", p)
	}
}

func decodePayload(c *cursor) any {
	if c.err != nil || len(c.buf) < 1 {
		c.fail()
		return nil
	}
	kind := c.buf[0]
	c.buf = c.buf[1:]
	switch kind {
	case payNil:
		return nil
	case payTile:
		var dim [4]int
		for i := range dim {
			dim[i] = c.int()
		}
		n := c.u32()
		if c.err != nil || uint64(n) > uint64(len(c.buf)/8) || int(n) != dim[0]*dim[1]*dim[2]*dim[3] {
			c.fail()
			return nil
		}
		t := &tensor.Tile4{Dim: dim, Data: make([]float64, n)}
		for i := range t.Data {
			t.Data[i] = c.f64()
		}
		return t
	case payNewBuffer:
		return ptg.NewBuffer{Bytes: c.i64()}
	case payInt:
		return int(c.i64())
	case payFloat:
		return c.f64()
	default:
		c.fail()
		return nil
	}
}

// ---- message bodies ----

// helloMsg opens every outbound connection, naming the sender.
type helloMsg struct{ From int }

func (m helloMsg) encode() []byte { return appendI64(nil, int64(m.From)) }

func decodeHello(b []byte) (helloMsg, error) {
	c := &cursor{buf: b}
	m := helloMsg{From: c.int()}
	return m, c.done()
}

// registerMsg announces a worker's rank and listen address to the
// coordinator.
type registerMsg struct {
	Rank int
	Addr string
}

func (m registerMsg) encode() []byte {
	return appendString(appendI64(nil, int64(m.Rank)), m.Addr)
}

func decodeRegister(b []byte) (registerMsg, error) {
	c := &cursor{buf: b}
	m := registerMsg{Rank: c.int(), Addr: c.str()}
	return m, c.done()
}

// welcomeMsg is the coordinator's go signal: the full peer address map.
type welcomeMsg struct {
	Ranks int
	Addrs []string // indexed by rank
}

func (m welcomeMsg) encode() []byte {
	dst := appendI64(nil, int64(m.Ranks))
	dst = appendU32(dst, uint32(len(m.Addrs)))
	for _, a := range m.Addrs {
		dst = appendString(dst, a)
	}
	return dst
}

func decodeWelcome(b []byte) (welcomeMsg, error) {
	c := &cursor{buf: b}
	m := welcomeMsg{Ranks: c.int()}
	n := c.u32()
	if uint64(n) > uint64(len(c.buf)) {
		c.fail()
		return m, c.done()
	}
	for i := uint32(0); i < n && c.err == nil; i++ {
		m.Addrs = append(m.Addrs, c.str())
	}
	return m, c.done()
}

// activateMsg is the one-sided active message of the dataflow: "your
// task toRef's input flow is satisfied with this payload". The receiver
// counts it against its rank-local dependency tracker.
type activateMsg struct {
	Class   string
	Args    ptg.Args
	Flow    int
	Payload any
}

func (m activateMsg) encode() ([]byte, error) {
	dst := appendString(nil, m.Class)
	for _, a := range m.Args {
		dst = appendI64(dst, int64(a))
	}
	dst = appendI64(dst, int64(m.Flow))
	return appendPayload(dst, m.Payload)
}

func decodeActivate(b []byte) (activateMsg, error) {
	c := &cursor{buf: b}
	m := activateMsg{Class: c.str()}
	for i := range m.Args {
		m.Args[i] = c.int()
	}
	m.Flow = c.int()
	m.Payload = decodePayload(c)
	return m, c.done()
}

// doneMsg reports a batch of completed instance sequence numbers to the
// coordinator's termination bitset.
type doneMsg struct{ Seqs []int }

func (m doneMsg) encode() []byte {
	dst := appendU32(nil, uint32(len(m.Seqs)))
	for _, s := range m.Seqs {
		dst = appendI64(dst, int64(s))
	}
	return dst
}

func decodeDone(b []byte) (doneMsg, error) {
	c := &cursor{buf: b}
	n := c.u32()
	if uint64(n) > uint64(len(c.buf)/8) {
		c.fail()
		return doneMsg{}, c.done()
	}
	m := doneMsg{Seqs: make([]int, 0, n)}
	for i := uint32(0); i < n && c.err == nil; i++ {
		m.Seqs = append(m.Seqs, c.int())
	}
	return m, c.done()
}

// statusMsg is the worker heartbeat, carrying its ready-queue backlog
// for the coordinator's steal brokering.
type statusMsg struct{ Backlog int }

func (m statusMsg) encode() []byte { return appendI64(nil, int64(m.Backlog)) }

func decodeStatus(b []byte) (statusMsg, error) {
	c := &cursor{buf: b}
	m := statusMsg{Backlog: c.int()}
	return m, c.done()
}

// flushAckMsg confirms a rank's outbound window is drained; Accs is the
// number of distinct accumulation messages the rank has sent, so the
// coordinator can also wait out any acc still inside a handler on a
// dying connection before it closes the fold.
type flushAckMsg struct{ Accs int64 }

func (m flushAckMsg) encode() []byte { return appendI64(nil, m.Accs) }

func decodeFlushAck(b []byte) (flushAckMsg, error) {
	if len(b) == 0 { // legacy empty ack: no accs to wait for
		return flushAckMsg{}, nil
	}
	c := &cursor{buf: b}
	m := flushAckMsg{Accs: c.i64()}
	return m, c.done()
}

// accOrderedMsg ships one ordered accumulation to the GA server.
type accOrderedMsg struct {
	Name        string
	Key         tensor.BlockKey
	Tag, Lo, Hi int
	Scale       float64
	Tile        *tensor.Tile4
}

func (m accOrderedMsg) encode() ([]byte, error) {
	dst := appendString(nil, m.Name)
	for _, k := range m.Key {
		dst = appendI64(dst, int64(k))
	}
	dst = appendI64(dst, int64(m.Tag))
	dst = appendI64(dst, int64(m.Lo))
	dst = appendI64(dst, int64(m.Hi))
	dst = appendF64(dst, m.Scale)
	return appendPayload(dst, m.Tile)
}

func decodeAccOrdered(b []byte) (accOrderedMsg, error) {
	c := &cursor{buf: b}
	m := accOrderedMsg{Name: c.str()}
	for i := range m.Key {
		m.Key[i] = c.int()
	}
	m.Tag = c.int()
	m.Lo = c.int()
	m.Hi = c.int()
	m.Scale = c.f64()
	p := decodePayload(c)
	if err := c.done(); err != nil {
		return m, err
	}
	t, ok := p.(*tensor.Tile4)
	if !ok {
		return m, errors.New("netrun: AccOrdered payload is not a tile")
	}
	m.Tile = t
	return m, nil
}

// getMsg requests a block copy from the GA server (GET_HASH_BLOCK).
type getMsg struct {
	ReqID uint64
	Name  string
	Key   tensor.BlockKey
}

func (m getMsg) encode() []byte {
	dst := appendU64(nil, m.ReqID)
	dst = appendString(dst, m.Name)
	for _, k := range m.Key {
		dst = appendI64(dst, int64(k))
	}
	return dst
}

func decodeGet(b []byte) (getMsg, error) {
	c := &cursor{buf: b}
	m := getMsg{ReqID: c.u64(), Name: c.str()}
	for i := range m.Key {
		m.Key[i] = c.int()
	}
	return m, c.done()
}

// getRespMsg answers a getMsg; a nil tile means the block is absent.
type getRespMsg struct {
	ReqID uint64
	Tile  *tensor.Tile4
}

func (m getRespMsg) encode() ([]byte, error) {
	dst := appendU64(nil, m.ReqID)
	if m.Tile == nil {
		return appendPayload(dst, nil)
	}
	return appendPayload(dst, m.Tile)
}

func decodeGetResp(b []byte) (getRespMsg, error) {
	c := &cursor{buf: b}
	m := getRespMsg{ReqID: c.u64()}
	p := decodePayload(c)
	if err := c.done(); err != nil {
		return m, err
	}
	if p != nil {
		t, ok := p.(*tensor.Tile4)
		if !ok {
			return m, errors.New("netrun: Get response payload is not a tile")
		}
		m.Tile = t
	}
	return m, nil
}

// nxtValMsg requests one NXTVAL ticket; nxtValRespMsg answers it.
type nxtValMsg struct{ ReqID uint64 }

func (m nxtValMsg) encode() []byte { return appendU64(nil, m.ReqID) }

func decodeNxtVal(b []byte) (nxtValMsg, error) {
	c := &cursor{buf: b}
	m := nxtValMsg{ReqID: c.u64()}
	return m, c.done()
}

type nxtValRespMsg struct {
	ReqID uint64
	Val   int64
}

func (m nxtValRespMsg) encode() []byte {
	return appendI64(appendU64(nil, m.ReqID), m.Val)
}

func decodeNxtValResp(b []byte) (nxtValRespMsg, error) {
	c := &cursor{buf: b}
	m := nxtValRespMsg{ReqID: c.u64(), Val: c.i64()}
	return m, c.done()
}

// stealMsg serves three message types that all name one thief rank:
// msgStealReq (thief -> coordinator), msgStealProbe (coordinator ->
// victim), and msgStealNone (victim -> coordinator).
type stealMsg struct{ Thief int }

func (m stealMsg) encode() []byte { return appendI64(nil, int64(m.Thief)) }

func decodeSteal(b []byte) (stealMsg, error) {
	c := &cursor{buf: b}
	m := stealMsg{Thief: c.int()}
	return m, c.done()
}

// migratePayload is one delivered task-sourced input shipped with a
// migrated task.
type migratePayload struct {
	Flow    int
	Payload any
}

// migrateMsg re-dispatches a ready task from a loaded victim to an idle
// thief, carrying every already-delivered task-sourced input (data- and
// new-sourced flows the thief reconstructs from its own tracker).
type migrateMsg struct {
	Class string
	Args  ptg.Args
	Ins   []migratePayload
}

func (m migrateMsg) encode() ([]byte, error) {
	dst := appendString(nil, m.Class)
	for _, a := range m.Args {
		dst = appendI64(dst, int64(a))
	}
	dst = appendU32(dst, uint32(len(m.Ins)))
	for _, in := range m.Ins {
		dst = appendI64(dst, int64(in.Flow))
		var err error
		dst, err = appendPayload(dst, in.Payload)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func decodeMigrate(b []byte) (migrateMsg, error) {
	c := &cursor{buf: b}
	m := migrateMsg{Class: c.str()}
	for i := range m.Args {
		m.Args[i] = c.int()
	}
	n := c.u32()
	if uint64(n) > uint64(len(c.buf)) {
		c.fail()
		return m, c.done()
	}
	for i := uint32(0); i < n && c.err == nil; i++ {
		mp := migratePayload{Flow: c.int()}
		mp.Payload = decodePayload(c)
		m.Ins = append(m.Ins, mp)
	}
	return m, c.done()
}

// takeoverMsg announces that a dead rank's subgraph is reassigned to an
// heir: live ranks replay their retained activations to the heir and
// re-route future traffic for the dead rank there.
type takeoverMsg struct{ Dead, Heir int }

func (m takeoverMsg) encode() []byte {
	return appendI64(appendI64(nil, int64(m.Dead)), int64(m.Heir))
}

func decodeTakeover(b []byte) (takeoverMsg, error) {
	c := &cursor{buf: b}
	m := takeoverMsg{Dead: c.int(), Heir: c.int()}
	return m, c.done()
}

// doneInfoMsg is a worker's final report: counters and trace events,
// JSON-encoded (the schema is internal to one build, not a wire
// contract, so JSON's flexibility beats hand-rolled encoding here).
type doneInfoMsg struct{ JSON []byte }

func (m doneInfoMsg) encode() []byte {
	dst := appendU32(nil, uint32(len(m.JSON)))
	return append(dst, m.JSON...)
}

func decodeDoneInfo(b []byte) (doneInfoMsg, error) {
	c := &cursor{buf: b}
	m := doneInfoMsg{JSON: c.bytes()}
	return m, c.done()
}

// errorMsg reports a fatal worker-side failure to the coordinator.
type errorMsg struct{ Text string }

func (m errorMsg) encode() []byte { return appendString(nil, m.Text) }

func decodeError(b []byte) (errorMsg, error) {
	c := &cursor{buf: b}
	m := errorMsg{Text: c.str()}
	return m, c.done()
}
