package netrun

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/fault"
	"parsec/internal/ga"
	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/tce"
)

// RunGraph executes a generic PTG across cfg.Ranks in-process ranks
// talking over real sockets: each rank is a goroutine with its own
// transport, tracker, and engine, exchanging the same frames worker
// processes would. build must return the identical graph on every rank
// (and once more, rank -1, for the coordinator's task count). Jobs run
// this way have no Global Arrays surface and no energy; it is the
// conformance suite's backend.
func RunGraph(cfg Config, build func(rank int) (*ptg.Graph, error)) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	g, err := build(-1)
	if err != nil {
		return nil, err
	}
	_, total := g.CountTasks()
	co, err := startCoordinator(cfg, coordSpec{numInstances: total})
	if err != nil {
		return nil, err
	}
	return runInProcess(cfg, co, func(rank int) error {
		return runWorker(cfg, rank, co.addr(), nil, func(r int, _ ga.API) (*ptg.Graph, error) {
			return build(r)
		})
	})
}

// Run executes a CCSD job across cfg.Ranks in-process ranks over real
// sockets, with the coordinator goroutine serving the Global Arrays.
// The returned energy must match the single-process RunReal to 1e-12 —
// the distribution, the wire, and any injected faults may reshuffle who
// computes what, never what is computed.
func Run(cfg Config, spec JobSpec) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.Migratable == nil {
		cfg.Migratable = spec.migratable()
	}
	cspec, err := spec.coordSpec(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	co, err := startCoordinator(cfg, cspec)
	if err != nil {
		return nil, err
	}
	return runInProcess(cfg, co, func(rank int) error {
		w, build, err := spec.workerJob(cfg.Ranks)
		if err != nil {
			return err
		}
		return runWorker(cfg, rank, co.addr(), w, build)
	})
}

// ServiceOptions selects how RunService places a job's ranks.
type ServiceOptions struct {
	// Processes runs each rank as a real OS process by re-executing the
	// current binary (which must call MaybeWorkerMain early in main);
	// false runs ranks as in-process goroutines over the same sockets
	// and wire protocol.
	Processes bool
}

// RunService is the service-facing entry point: it executes one CCSD
// job across cfg.Ranks workers — real OS processes or in-process ranks
// per opt — honoring cfg.Cancel either way. It is what ccsimd's
// executor calls for jobs whose tensor footprint exceeds the netrun
// dispatch threshold; small jobs stay on the in-process runtime.Run
// fast path.
func RunService(cfg Config, spec JobSpec, opt ServiceOptions) (*Result, error) {
	if !opt.Processes {
		return Run(cfg, spec)
	}
	l, err := StartProcesses(cfg, spec)
	if err != nil {
		return nil, err
	}
	return l.Wait()
}

// runInProcess drives one coordinator and cfg.Ranks worker goroutines
// to completion.
func runInProcess(cfg Config, co *coordinator, work func(rank int) error) (*Result, error) {
	var wg sync.WaitGroup
	errs := make([]error, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = work(rank)
		}(r)
	}
	res, err := co.wait()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	for r, werr := range errs {
		if werr != nil {
			return nil, fmt.Errorf("netrun: rank %d: %w", r, werr)
		}
	}
	return res, nil
}

// CustomSpec is the serializable form of a non-preset molecular system,
// mirroring molecule.Custom's parameters so a custom job can cross the
// process boundary the same way presets do.
type CustomSpec struct {
	// Name labels the system (empty defaults to "custom").
	Name string `json:"name"`
	// NOccupied, NVirtual, TileTarget, NIrreps, and Seed are the
	// molecule.Custom constructor arguments.
	NOccupied  int    `json:"n_occupied"`
	NVirtual   int    `json:"n_virtual"`
	TileTarget int    `json:"tile_target"`
	NIrreps    int    `json:"n_irreps"`
	Seed       uint64 `json:"seed"`
}

// JobSpec names a CCSD job in serializable form: it crosses the
// process boundary as JSON, so everything a worker needs to rebuild the
// graph — system, variant, the graph-shape dials, and which task
// classes may migrate — lives here rather than in Config's funcs.
type JobSpec struct {
	// Preset is the molecule preset name (molecule.Preset). Exactly one
	// of Preset and Custom must be set.
	Preset string `json:"preset,omitempty"`
	// Custom describes an explicit system instead of a preset.
	Custom *CustomSpec `json:"custom,omitempty"`
	// Variant is the CCSD dataflow variant (ccsd.VariantByName).
	Variant string `json:"variant"`
	// SegmentHeight and WriteSpan pass through to ccsd.Options.
	SegmentHeight int `json:"segment_height,omitempty"`
	WriteSpan     int `json:"write_span,omitempty"`
	// MigratableClasses lists the task classes inter-node stealing may
	// re-dispatch (the serializable stand-in for Config.Migratable).
	MigratableClasses []string `json:"migratable_classes,omitempty"`
}

// migratable builds the class predicate from MigratableClasses.
func (s JobSpec) migratable() func(string) bool {
	if len(s.MigratableClasses) == 0 {
		return nil
	}
	set := make(map[string]bool, len(s.MigratableClasses))
	for _, c := range s.MigratableClasses {
		set[c] = true
	}
	return func(class string) bool { return set[class] }
}

// system resolves the spec's molecular system from its preset name or
// its custom parameters.
func (s JobSpec) system() (*molecule.System, error) {
	switch {
	case s.Preset != "" && s.Custom != nil:
		return nil, fmt.Errorf("netrun: job sets both preset and custom")
	case s.Custom != nil:
		c := s.Custom
		if c.NOccupied <= 0 || c.NVirtual <= 0 || c.TileTarget <= 0 {
			return nil, fmt.Errorf("netrun: custom system needs positive n_occupied, n_virtual, tile_target")
		}
		name := c.Name
		if name == "" {
			name = "custom"
		}
		return molecule.Custom(name, c.NOccupied, c.NVirtual, c.TileTarget, c.NIrreps, c.Seed), nil
	default:
		return molecule.Preset(s.Preset)
	}
}

// workload builds the job's workload with block ownership distributed
// over ranks (the same FNV placement ga.Store uses).
func (s JobSpec) workload(ranks int) (*tce.Workload, error) {
	sys, err := s.system()
	if err != nil {
		return nil, err
	}
	dist := ga.Distribution{Nodes: ranks}
	return tce.Inspect(tce.T2_7(sys), func(b tce.BlockRef) int {
		return dist.Owner(b.Tensor, b.Key)
	}), nil
}

// workerJob builds one rank's workload and graph constructor.
func (s JobSpec) workerJob(ranks int) (*tce.Workload, BuildFn, error) {
	w, err := s.workload(ranks)
	if err != nil {
		return nil, nil, err
	}
	vs, err := ccsd.VariantByName(s.Variant)
	if err != nil {
		return nil, nil, err
	}
	build := func(rank int, store ga.API) (*ptg.Graph, error) {
		return ccsd.BuildGraph(w, vs, ccsd.Options{
			Nodes:         ranks,
			Store:         store,
			SegmentHeight: s.SegmentHeight,
			WriteSpan:     s.WriteSpan,
		}), nil
	}
	return w, build, nil
}

// Policy returns the variant's scheduling policy (priorities when the
// variant uses them, LIFO otherwise) — the same rule the shared-memory
// entry points apply.
func (s JobSpec) Policy() (sched.Policy, error) {
	vs, err := ccsd.VariantByName(s.Variant)
	if err != nil {
		return sched.PriorityOrder, err
	}
	if !vs.UsePriorities() {
		return sched.LIFOOrder, nil
	}
	return sched.PriorityOrder, nil
}

// coordSpec builds the coordinator's side of the job: the task count,
// the served array, and the energy functional.
func (s JobSpec) coordSpec(ranks int) (coordSpec, error) {
	w, build, err := s.workerJob(ranks)
	if err != nil {
		return coordSpec{}, err
	}
	g, err := build(-1, nil)
	if err != nil {
		return coordSpec{}, err
	}
	_, total := g.CountTasks()
	return coordSpec{
		numInstances: total,
		arrays:       []string{tce.TensorC},
		energy:       func(st *ga.Store) float64 { return w.Energy(st.Array(tce.TensorC)) },
	}, nil
}

// ---- multi-process mode ----

// Environment variables of the self-exec protocol: a process launched
// with workerEnv set runs one rank and exits instead of its normal
// main. MaybeWorkerMain in TestMain or main() completes the loop.
const (
	workerEnv      = "PARSEC_NETRUN_WORKER"
	workerRankEnv  = "PARSEC_NETRUN_RANK"
	workerCoordEnv = "PARSEC_NETRUN_COORD"
	workerCfgEnv   = "PARSEC_NETRUN_CONFIG"
	workerJobEnv   = "PARSEC_NETRUN_JOB"
)

// wireConfig is the serializable subset of Config that crosses the
// process boundary (the funcs — TaskDelay, SchedObserver, Migratable —
// cannot; migratability travels in JobSpec instead).
type wireConfig struct {
	Ranks          int           `json:"ranks"`
	Workers        int           `json:"workers"`
	Policy         int           `json:"policy"`
	Queues         int           `json:"queues"`
	Network        string        `json:"network"`
	Retry          RetryPolicy   `json:"retry"`
	InterNodeSteal bool          `json:"inter_node_steal,omitempty"`
	Fault          *fault.Config `json:"fault,omitempty"`
	Sever          *SeverSpec    `json:"sever,omitempty"`
	Recover        bool          `json:"recover,omitempty"`
	DeathTimeout   time.Duration `json:"death_timeout"`
	Deadline       time.Duration `json:"deadline"`
	Heartbeat      time.Duration `json:"heartbeat"`
}

func toWire(cfg Config) wireConfig {
	return wireConfig{
		Ranks:          cfg.Ranks,
		Workers:        cfg.Workers,
		Policy:         int(cfg.Policy),
		Queues:         int(cfg.Queues),
		Network:        cfg.Network,
		Retry:          cfg.Retry,
		InterNodeSteal: cfg.InterNodeSteal,
		Fault:          cfg.Fault,
		Sever:          cfg.Sever,
		Recover:        cfg.Recover,
		DeathTimeout:   cfg.DeathTimeout,
		Deadline:       cfg.Deadline,
		Heartbeat:      cfg.Heartbeat,
	}
}

func (wc wireConfig) toConfig() Config {
	return Config{
		Ranks:          wc.Ranks,
		Workers:        wc.Workers,
		Policy:         sched.Policy(wc.Policy),
		Queues:         sched.QueueMode(wc.Queues),
		Network:        wc.Network,
		Retry:          wc.Retry,
		InterNodeSteal: wc.InterNodeSteal,
		Fault:          wc.Fault,
		Sever:          wc.Sever,
		Recover:        wc.Recover,
		DeathTimeout:   wc.DeathTimeout,
		Deadline:       wc.Deadline,
		Heartbeat:      wc.Heartbeat,
	}
}

// Launch is a running multi-process job: the coordinator in this
// process, one OS process per rank.
type Launch struct {
	co   *coordinator
	cmds []*exec.Cmd
}

// StartProcesses launches a CCSD job across cfg.Ranks real OS
// processes by re-executing the current binary (which must call
// MaybeWorkerMain early in main or TestMain). The coordinator and the
// GA server run in the calling process. Config's func fields do not
// cross the process boundary and must be nil.
func StartProcesses(cfg Config, spec JobSpec) (*Launch, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.TaskDelay != nil || cfg.SchedObserver != nil || cfg.Migratable != nil {
		return nil, fmt.Errorf("netrun: func-valued Config fields cannot cross the process boundary; use JobSpec.MigratableClasses")
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cfgJSON, err := json.Marshal(toWire(cfg))
	if err != nil {
		return nil, err
	}
	jobJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	cspec, err := spec.coordSpec(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	co, err := startCoordinator(cfg, cspec)
	if err != nil {
		return nil, err
	}
	l := &Launch{co: co, cmds: make([]*exec.Cmd, cfg.Ranks)}
	for r := 0; r < cfg.Ranks; r++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			workerEnv+"=1",
			fmt.Sprintf("%s=%d", workerRankEnv, r),
			workerCoordEnv+"="+co.addr(),
			workerCfgEnv+"="+string(cfgJSON),
			workerJobEnv+"="+string(jobJSON),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range l.cmds {
				if c != nil && c.Process != nil {
					c.Process.Kill()
				}
			}
			co.fail(fmt.Errorf("netrun: start rank %d: %w", r, err))
			co.wait()
			return nil, err
		}
		l.cmds[r] = cmd
	}
	return l, nil
}

// Kill delivers SIGKILL to one rank's process — the chaos suite's
// "kill -9 a worker mid-run". With Config.Recover set, the run must
// still complete with the correct energy.
func (l *Launch) Kill(rank int) error {
	if rank < 0 || rank >= len(l.cmds) {
		return fmt.Errorf("netrun: kill rank %d of %d", rank, len(l.cmds))
	}
	return l.cmds[rank].Process.Kill()
}

// Wait drives the job to completion and reaps the worker processes.
func (l *Launch) Wait() (*Result, error) {
	res, err := l.co.wait()
	for _, cmd := range l.cmds {
		cmd.Wait() // exit status is authoritative only via the protocol
	}
	return res, err
}

// MaybeWorkerMain checks whether this process was launched as a netrun
// worker; if so it runs the rank to completion and exits, never
// returning. Call it at the top of main() or TestMain before any other
// work.
func MaybeWorkerMain() {
	if os.Getenv(workerEnv) != "1" {
		return
	}
	rank := 0
	if _, err := fmt.Sscanf(os.Getenv(workerRankEnv), "%d", &rank); err != nil {
		fmt.Fprintf(os.Stderr, "netrun worker: bad rank %q: %v\n", os.Getenv(workerRankEnv), err)
		os.Exit(2)
	}
	var wc wireConfig
	if err := json.Unmarshal([]byte(os.Getenv(workerCfgEnv)), &wc); err != nil {
		fmt.Fprintf(os.Stderr, "netrun worker %d: bad config: %v\n", rank, err)
		os.Exit(2)
	}
	var spec JobSpec
	if err := json.Unmarshal([]byte(os.Getenv(workerJobEnv)), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "netrun worker %d: bad job: %v\n", rank, err)
		os.Exit(2)
	}
	cfg := wc.toConfig()
	cfg.Migratable = spec.migratable()
	w, build, err := spec.workerJob(cfg.Ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netrun worker %d: %v\n", rank, err)
		os.Exit(1)
	}
	if err := runWorker(cfg, rank, os.Getenv(workerCoordEnv), w, build); err != nil {
		fmt.Fprintf(os.Stderr, "netrun worker %d: %v\n", rank, err)
		os.Exit(1)
	}
	os.Exit(0)
}
