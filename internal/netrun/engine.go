package netrun

import (
	"fmt"
	"time"

	"sync"

	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/team"
	"parsec/internal/tensor/pool"
)

// engine is one rank's local executor: the shared scheduling core
// driving real worker goroutines, with completions routed either into
// the rank-local tracker or onto the wire. It mirrors the shared-memory
// runtime's semantics — same pop order, same queue pinning, same
// randomized victim probe — but trades that runtime's sharded locks for
// one engine mutex: a rank here owns a slice of the graph, not the
// whole machine, so contention is not the design constraint and the
// simplicity pays for itself in the recovery paths.
type engine struct {
	cfg   Config
	rank  int
	tp    *transport
	tr    *ptg.Tracker
	start time.Time

	mu   sync.Mutex
	cond *sync.Cond
	set  *sched.Set
	rngs []sched.RNG
	// locals are the per-worker scratch shards for pooled kernel
	// buffers (task bodies reach them through Ctx.Pool). Intra-task
	// parallelism (Ctx.Par) is wired to team.Serial: a rank's workers
	// are few and remote steals already balance coarse work, so bodies
	// get an explicit one-worker contract (GemmP degenerates to the
	// serial kernel bitwise) instead of a nil they must guard against.
	locals  []*pool.Local
	stopped bool
	failed  error
	stopCh  chan struct{}
	// owned marks the ranks whose instances this engine schedules: its
	// own, plus any dead rank it inherited.
	owned []bool
	// adopted marks instances migrated here by an inter-node steal; they
	// execute here although their affinity names another rank.
	adopted map[*ptg.Instance]bool
	// migratedTo records instances this rank handed to a thief, for
	// re-claim if the thief dies before completing them.
	migratedTo map[*ptg.Instance]int
	takenOver  map[int]bool
	// queued marks instances ever pushed here. An instance becomes ready
	// exactly once, so a second push is always a duplicate-source race
	// (an heir's takeover scan against a concurrent replayed activation,
	// say) and is dropped; the one legitimate re-push — re-claiming a
	// task from a dead thief — clears the mark first.
	queued    map[*ptg.Instance]bool
	lastSteal int64 // Now() of the last steal request

	tasks       int
	byClass     map[string]int
	adoptedN    int
	redisp      int
	redispBytes int64
	traceEvs    []RankTraceEvent

	wg sync.WaitGroup
}

func newEngine(cfg Config, rank int, tp *transport, tr *ptg.Tracker) *engine {
	e := &engine{
		cfg:        cfg,
		rank:       rank,
		tp:         tp,
		tr:         tr,
		start:      time.Now(),
		rngs:       make([]sched.RNG, cfg.Workers),
		locals:     make([]*pool.Local, cfg.Workers),
		stopCh:     make(chan struct{}),
		owned:      make([]bool, cfg.Ranks),
		adopted:    make(map[*ptg.Instance]bool),
		migratedTo: make(map[*ptg.Instance]int),
		takenOver:  make(map[int]bool),
		queued:     make(map[*ptg.Instance]bool),
		byClass:    make(map[string]int),
	}
	e.cond = sync.NewCond(&e.mu)
	e.owned[rank] = true
	for w := range e.rngs {
		e.rngs[w] = sched.NewRNG(w)
		e.locals[w] = pool.NewLocal()
	}
	e.set = sched.NewSet(cfg.Workers, cfg.Policy, cfg.Queues, e, cfg.SchedObserver)
	return e
}

// The engine is the scheduling core's substrate on this rank.
var _ sched.Substrate = (*engine)(nil)

// Now returns nanoseconds since the engine started (sched.Substrate).
func (e *engine) Now() int64 { return int64(time.Since(e.start)) }

// Idle is unused: engine workers wait on the condition variable
// directly, under the same mutex that guards the set (sched.Substrate).
func (e *engine) Idle(worker int) {}

// Kick wakes the workers (sched.Substrate).
func (e *engine) Kick(worker int) { e.cond.Broadcast() }

// run pushes this rank's initially ready instances and starts the
// worker goroutines and the heartbeat.
func (e *engine) run() {
	e.mu.Lock()
	for _, in := range e.tr.InitialReady() {
		if in.Node == e.rank {
			e.pushLocked(in)
		}
	}
	e.mu.Unlock()
	for w := 0; w < e.cfg.Workers; w++ {
		e.wg.Add(1)
		go e.workLoop(w)
	}
	e.wg.Add(1)
	go e.heartbeat()
}

// stop halts the workers and the heartbeat; it does not wait.
func (e *engine) stop() {
	e.mu.Lock()
	if !e.stopped {
		e.stopped = true
		close(e.stopCh)
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// wait joins the worker goroutines after stop and returns their scratch
// shards to the shared pool.
func (e *engine) wait() {
	e.wg.Wait()
	for _, loc := range e.locals {
		loc.Drain()
	}
}

// fail records the first fatal error, halts the rank, and reports the
// failure to the coordinator.
func (e *engine) fail(err error) {
	e.mu.Lock()
	if e.failed != nil || e.stopped {
		e.mu.Unlock()
		return
	}
	e.failed = err
	e.mu.Unlock()
	e.stop()
	e.tp.sendTo(coordRank, msgError, errorMsg{Text: err.Error()}.encode())
}

// err returns the recorded fatal error, if any.
func (e *engine) err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failed
}

// push enqueues a ready instance (at most once, see queued) and wakes
// the workers.
func (e *engine) push(in *ptg.Instance) {
	e.mu.Lock()
	e.pushLocked(in)
	e.mu.Unlock()
}

func (e *engine) pushLocked(in *ptg.Instance) {
	if !e.stopped && !e.queued[in] {
		e.queued[in] = true
		e.set.Push(in)
		e.cond.Broadcast()
	}
}

// popLocked takes the next task for a worker: own queue first, then —
// in PerWorkerSteal mode — the core's randomized victim probe. The
// caller holds e.mu, which substitutes for the runtime's shard locks.
func (e *engine) popLocked(wid int) *ptg.Instance {
	if in := e.set.Pop(wid); in != nil {
		return in
	}
	if e.cfg.Queues != sched.PerWorkerSteal {
		return nil
	}
	var got *ptg.Instance
	sched.EachVictim(&e.rngs[wid], wid, e.set.Queues(), func(v int) bool {
		if in := e.set.PopQueue(v, wid); in != nil {
			got = in
			return true
		}
		return false
	})
	return got
}

// shouldStealLocked reports whether this rank should ask the
// coordinator to broker an inter-node steal: stealing enabled, nothing
// runnable locally, and not already asked within the last few
// milliseconds (idle workers re-evaluate on every heartbeat kick).
func (e *engine) shouldStealLocked() bool {
	if !e.cfg.InterNodeSteal || e.cfg.Ranks < 2 || e.stopped {
		return false
	}
	if e.set.Total() > 0 {
		return false
	}
	now := e.Now()
	if now-e.lastSteal < int64(5*time.Millisecond) {
		return false
	}
	e.lastSteal = now
	return true
}

func (e *engine) workLoop(wid int) {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		if e.stopped {
			e.mu.Unlock()
			return
		}
		in := e.popLocked(wid)
		if in == nil {
			steal := e.shouldStealLocked()
			if !steal {
				e.cond.Wait()
				e.mu.Unlock()
				continue
			}
			e.mu.Unlock()
			e.tp.sendTo(coordRank, msgStealReq, stealMsg{Thief: e.rank}.encode())
			continue
		}
		e.mu.Unlock()
		if err := e.tr.ClaimStart(in); err != nil {
			e.fail(err)
			return
		}
		e.execute(wid, in)
	}
}

// execute runs one task body and routes its completions: local
// successors through the tracker, remote successors as activation
// messages, and the instance's sequence number to the coordinator's
// termination bitset. The Done send is ordered after the payload sends
// on purpose — the coordinator's flush barrier then guarantees every
// accumulation is server-side before the energy is read.
func (e *engine) execute(wid int, in *ptg.Instance) {
	ctx := &ptg.Ctx{
		Args: in.Ref.Args,
		Node: in.Node,
		Seq:  in.Seq,
		In:   in.In,
		Out:  make([]any, len(in.In)),
		Pool: e.locals[wid],
		Par:  team.Serial,
	}
	copy(ctx.Out, in.In)
	if delay := e.cfg.TaskDelay; delay != nil {
		if d := delay(e.rank, wid, in.Ref); d > 0 {
			time.Sleep(d)
		}
	}
	startNs := e.Now()
	if body := in.Class.Body; body != nil {
		if err := runBody(body, ctx, in); err != nil {
			e.fail(err)
			return
		}
		if err := ctx.Err(); err != nil {
			e.fail(fmt.Errorf("netrun: task %v failed: %w", in.Ref, err))
			return
		}
	}
	endNs := e.Now()

	dels, _, err := e.tr.Complete(in)
	if err != nil {
		e.fail(err)
		return
	}
	for _, d := range dels {
		payload := ctx.Out[d.FromFlow]
		if e.owns(d.To.Node) {
			e.deliver(d.To, d.ToFlow, payload)
		} else {
			e.sendActivate(d.To, d.ToFlow, payload)
		}
	}
	e.tp.sendTo(coordRank, msgDone, doneMsg{Seqs: []int{in.Seq}}.encode())

	e.mu.Lock()
	e.tasks++
	e.byClass[in.Ref.Class]++
	e.traceEvs = append(e.traceEvs, RankTraceEvent{
		Thread: wid, Class: in.Ref.Class, Label: in.Ref.String(),
		StartNs: startNs, EndNs: endNs,
	})
	e.mu.Unlock()
}

func runBody(body func(*ptg.Ctx), ctx *ptg.Ctx, in *ptg.Instance) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("netrun: task %v panicked: %v", in.Ref, rec)
		}
	}()
	body(ctx)
	return nil
}

// owns reports whether this engine schedules instances of the given
// affinity rank.
func (e *engine) owns(node int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return node >= 0 && node < len(e.owned) && e.owned[node]
}

// deliver satisfies one input of a locally scheduled instance,
// tolerating duplicates: an at-least-once wire and post-takeover
// replays legitimately present the same payload twice, and the
// DeliveredFlow pre-check (re-checked after a Deliver error, in case
// two sources raced past the first check) filters them out before the
// tracker treats them as protocol errors.
func (e *engine) deliver(to *ptg.Instance, flow int, payload any) {
	if e.tr.DeliveredFlow(to, flow) {
		return
	}
	ready, err := e.tr.Deliver(to, flow, payload)
	if err != nil {
		if e.tr.DeliveredFlow(to, flow) || e.tr.StateOf(to) != ptg.StateWaiting {
			return // lost a duplicate race; already satisfied elsewhere
		}
		e.fail(err)
		return
	}
	if ready && e.owns(to.Node) {
		e.push(to)
	}
}

// sendActivate ships one dataflow payload to the rank owning the
// consumer (through the takeover routing table).
func (e *engine) sendActivate(to *ptg.Instance, flow int, payload any) {
	body, err := (activateMsg{Class: to.Ref.Class, Args: to.Ref.Args, Flow: flow, Payload: payload}).encode()
	if err != nil {
		e.fail(fmt.Errorf("netrun: activate %v: %w", to.Ref, err))
		return
	}
	e.tp.counters.transferOps.Add(1)
	e.tp.counters.transferBytes.Add(int64(len(body)))
	e.tp.sendTo(to.Node, msgActivate, body)
}

// heartbeat reports the rank's backlog to the coordinator on every
// interval and kicks the workers so idle ranks re-evaluate the steal
// request condition.
func (e *engine) heartbeat() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-t.C:
			e.mu.Lock()
			backlog := e.set.Total()
			e.cond.Broadcast()
			e.mu.Unlock()
			e.tp.sendTo(coordRank, msgStatus, statusMsg{Backlog: backlog}.encode())
		}
	}
}

// handleActivate applies one inbound activation.
func (e *engine) handleActivate(m activateMsg) {
	in := e.tr.Instance(ptg.TaskRef{Class: m.Class, Args: m.Args})
	if in == nil {
		e.fail(fmt.Errorf("netrun: activation for unknown task %s%v", m.Class, m.Args))
		return
	}
	e.deliver(in, m.Flow, m.Payload)
}

// handleStealProbe serves a coordinator-forwarded steal on the victim
// side: if the backlog still exceeds what the local workers can drain,
// the best migratable ready task is claimed (Started, so nobody here
// re-runs it), shipped to the thief with its delivered task-sourced
// inputs, and remembered for re-claim should the thief die.
func (e *engine) handleStealProbe(thief int) {
	migratable := e.cfg.Migratable
	e.mu.Lock()
	if e.stopped || migratable == nil || e.set.Total() <= e.cfg.Workers {
		e.mu.Unlock()
		e.tp.sendTo(coordRank, msgStealNone, stealMsg{Thief: thief}.encode())
		return
	}
	in := e.set.PopWhere(func(c *ptg.Instance) bool {
		return c.Node == e.rank && !e.adopted[c] && migratable(c.Ref.Class)
	})
	if in == nil {
		e.mu.Unlock()
		e.tp.sendTo(coordRank, msgStealNone, stealMsg{Thief: thief}.encode())
		return
	}
	if err := e.tr.ClaimStart(in); err != nil {
		// The set never holds a non-ready instance; a failure here is a
		// scheduling invariant break, not a race to absorb.
		e.mu.Unlock()
		e.fail(err)
		return
	}
	e.migratedTo[in] = thief
	e.redisp++
	e.mu.Unlock()

	m := migrateMsg{Class: in.Ref.Class, Args: in.Ref.Args}
	for fi := range in.In {
		if e.tr.TaskSourced(in, fi) && e.tr.DeliveredFlow(in, fi) {
			m.Ins = append(m.Ins, migratePayload{Flow: fi, Payload: in.In[fi]})
		}
	}
	body, err := m.encode()
	if err != nil {
		e.fail(fmt.Errorf("netrun: migrate %v: %w", in.Ref, err))
		return
	}
	e.mu.Lock()
	e.redispBytes += int64(len(body))
	e.mu.Unlock()
	e.tp.counters.transferOps.Add(1)
	e.tp.counters.transferBytes.Add(int64(len(body)))
	e.tp.sendTo(thief, msgMigrate, body)
}

// handleMigrate adopts a task stolen from a loaded rank: deliver the
// shipped inputs this rank is missing, mark it adopted so a takeover
// scan will not double-schedule it, and queue it.
func (e *engine) handleMigrate(m migrateMsg) {
	in := e.tr.Instance(ptg.TaskRef{Class: m.Class, Args: m.Args})
	if in == nil {
		e.fail(fmt.Errorf("netrun: migration of unknown task %s%v", m.Class, m.Args))
		return
	}
	switch e.tr.StateOf(in) {
	case ptg.StateRunning, ptg.StateDone:
		return // duplicate or raced with local execution
	}
	for _, p := range m.Ins {
		if e.tr.DeliveredFlow(in, p.Flow) {
			continue
		}
		if _, err := e.tr.Deliver(in, p.Flow, p.Payload); err != nil && !e.tr.DeliveredFlow(in, p.Flow) {
			e.fail(err)
			return
		}
	}
	if e.tr.StateOf(in) != ptg.StateReady {
		// The victim only migrates ready tasks, so arriving here means the
		// shipped inputs were incomplete.
		e.fail(fmt.Errorf("netrun: migrated task %v not ready after delivery", in.Ref))
		return
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	if !e.adopted[in] {
		e.adopted[in] = true
		e.adoptedN++
		e.pushLocked(in)
	}
	e.mu.Unlock()
}

// handleTakeover reacts to a rank death on every surviving rank:
// re-route the dead rank's traffic to the heir and replay the retained
// activation log there; re-claim any task migrated to the dead rank;
// and, on the heir itself, inherit the dead rank's slice of the graph
// and queue everything in it that is (or later becomes) ready. The
// heir re-executes the dead rank's entire subgraph from its roots —
// completions the dead rank already reported stay deduplicated
// downstream by the tracker flows and the GA server tags.
func (e *engine) handleTakeover(m takeoverMsg) {
	e.mu.Lock()
	if e.takenOver[m.Dead] {
		e.mu.Unlock()
		return
	}
	e.takenOver[m.Dead] = true
	reclaim := make([]*ptg.Instance, 0)
	for in, thief := range e.migratedTo {
		if thief == m.Dead {
			reclaim = append(reclaim, in)
			delete(e.migratedTo, in)
		}
	}
	e.mu.Unlock()

	retained := e.tp.redirect(m.Dead, m.Heir)
	for _, rm := range retained {
		if e.rank == m.Heir {
			// Our own retained traffic for the dead rank is now ours to
			// apply; there is no loopback channel to send it through.
			am, err := decodeActivate(rm.body)
			if err != nil {
				e.fail(err)
				return
			}
			e.handleActivate(am)
			continue
		}
		e.tp.sendTo(m.Heir, rm.typ, rm.body)
	}

	for _, in := range reclaim {
		if err := e.tr.Reset(in); err != nil {
			e.fail(err)
			return
		}
		e.mu.Lock()
		delete(e.queued, in) // legitimate re-push: the thief died with it
		e.pushLocked(in)
		e.mu.Unlock()
	}

	if e.rank != m.Heir {
		return
	}
	e.mu.Lock()
	e.owned[m.Dead] = true
	e.mu.Unlock()
	for _, in := range e.tr.Instances() {
		if in.Node != m.Dead {
			continue
		}
		e.mu.Lock()
		skip := e.adopted[in]
		e.mu.Unlock()
		if skip {
			continue // already queued (or run) here via migration
		}
		if e.tr.StateOf(in) == ptg.StateReady {
			e.push(in)
		}
	}
}

// report assembles the rank's final self-report.
func (e *engine) report() RankReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	return RankReport{
		Rank:            e.rank,
		Tasks:           e.tasks,
		ByClass:         e.byClass,
		Adopted:         e.adoptedN,
		Redispatches:    e.redisp,
		RedispatchBytes: e.redispBytes,
		Comm:            e.tp.counters.snapshot(),
		Trace:           e.traceEvs,
	}
}
