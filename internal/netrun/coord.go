package netrun

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"parsec/internal/ga"
	"parsec/internal/tensor"
	"parsec/internal/trace"
)

// coordSpec tells the coordinator what it serves and how the run ends.
type coordSpec struct {
	// numInstances is the graph's task count; the run terminates when
	// every sequence number has been reported completed.
	numInstances int
	// arrays are the Global Arrays the server creates (the CCSD job's
	// output tensor).
	arrays []string
	// energy, if non-nil, reduces the server's folded store to the final
	// scalar after the flush barrier.
	energy func(st *ga.Store) float64
}

// accKey identifies one ordered accumulation for the server-side dedup:
// a re-executed WRITE (heir recovery) or a replayed message presents the
// same (array, block, tag, segment) and must fold exactly once. The
// store's own fold-time dedup compares tile pointers, which wire
// deserialization never preserves, so the server keeps its own set.
type accKey struct {
	name string
	key  tensor.BlockKey
	tag  int
	lo   int
}

// coordinator is the rank -1 process: registration barrier, GA server,
// termination bitset, steal broker, death detector, and result
// assembly.
type coordinator struct {
	cfg   Config
	spec  coordSpec
	tp    *transport
	store *ga.Store
	// served guards Array panics: Get requests for arrays the server
	// never created answer nil instead of exploding.
	served map[string]bool

	mu        sync.Mutex
	addrs     map[int]string
	completed []bool
	ncomplete int
	backlog   map[int]int
	lastSeen  map[int]time.Time
	dead      map[int]int   // dead rank -> heir
	flushAcks map[int]int64 // rank -> accs the rank reports having sent
	accRecvd  map[int]int64 // rank -> accs fully handled (post-apply)
	reports   map[int]RankReport
	accSeen   map[accKey]bool
	accClosed bool
	failure   error

	allRegCh chan struct{}
	regOnce  sync.Once
	failCh   chan struct{}
	failOnce sync.Once

	start time.Time
}

// startCoordinator opens the coordinator endpoint. Workers are started
// by the caller and told this address.
func startCoordinator(cfg Config, spec coordSpec) (*coordinator, error) {
	network, listen := cfg.listenSpec(coordRank)
	// The coordinator's own sends (welcome, probes, takeover) are not
	// fault-injected: the chaos model targets the data plane.
	tp, err := newTransport(coordRank, network, listen, cfg.Retry, nil, nil)
	if err != nil {
		return nil, err
	}
	co := &coordinator{
		cfg:       cfg,
		spec:      spec,
		tp:        tp,
		store:     ga.NewStore(cfg.Ranks),
		served:    make(map[string]bool),
		addrs:     make(map[int]string),
		completed: make([]bool, spec.numInstances),
		backlog:   make(map[int]int),
		lastSeen:  make(map[int]time.Time),
		dead:      make(map[int]int),
		flushAcks: make(map[int]int64),
		accRecvd:  make(map[int]int64),
		reports:   make(map[int]RankReport),
		accSeen:   make(map[accKey]bool),
		allRegCh:  make(chan struct{}),
		failCh:    make(chan struct{}),
		start:     time.Now(),
	}
	for _, name := range spec.arrays {
		co.store.Create(name)
		co.served[name] = true
	}
	tp.handler = co.handle
	tp.onSeen = co.noteSeen
	tp.runRetryTimer(co.fail)
	return co, nil
}

func (co *coordinator) addr() string { return co.tp.addr() }

func (co *coordinator) fail(err error) {
	co.mu.Lock()
	if co.failure == nil {
		co.failure = err
	}
	co.mu.Unlock()
	co.failOnce.Do(func() { close(co.failCh) })
}

// noteSeen timestamps any inbound frame from a rank — the liveness
// signal death detection reads.
func (co *coordinator) noteSeen(from int) {
	co.mu.Lock()
	if _, isDead := co.dead[from]; !isDead {
		co.lastSeen[from] = time.Now()
	}
	co.mu.Unlock()
}

// handle dispatches one deduplicated inbound frame. It runs on the
// sender's connection goroutine, so work per frame stays short; frames
// from one rank arrive in order, which the flush barrier relies on
// (a FlushAck is handled only after every earlier accumulation from
// that rank).
func (co *coordinator) handle(from int, f frame) {
	switch f.typ {
	case msgRegister:
		m, err := decodeRegister(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		co.tp.connect(m.Rank, m.Addr)
		co.mu.Lock()
		co.addrs[m.Rank] = m.Addr
		n := len(co.addrs)
		co.lastSeen[m.Rank] = time.Now()
		co.mu.Unlock()
		if n == co.cfg.Ranks {
			co.regOnce.Do(func() { close(co.allRegCh) })
		}
	case msgDone:
		m, err := decodeDone(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		co.mu.Lock()
		for _, s := range m.Seqs {
			if s >= 0 && s < len(co.completed) && !co.completed[s] {
				co.completed[s] = true
				co.ncomplete++
			}
		}
		co.mu.Unlock()
	case msgStatus:
		m, err := decodeStatus(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		co.mu.Lock()
		co.backlog[from] = m.Backlog
		co.mu.Unlock()
	case msgAccOrdered:
		m, err := decodeAccOrdered(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		co.mu.Lock()
		k := accKey{name: m.Name, key: m.Key, tag: m.Tag, lo: m.Lo}
		apply := !co.accClosed && !co.accSeen[k]
		if apply {
			co.accSeen[k] = true
		}
		co.mu.Unlock()
		if apply {
			if err := co.store.AccOrdered(m.Name, m.Key, m.Tile, m.Scale, m.Tag, m.Lo, m.Hi); err != nil {
				co.fail(err)
			}
		}
		co.mu.Lock()
		co.accRecvd[from]++ // post-apply: the flush barrier counts on it
		co.mu.Unlock()
	case msgGetReq:
		m, err := decodeGet(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		var tile *tensor.Tile4
		if co.served[m.Name] {
			if t, ok := co.store.Array(m.Name).Tile(m.Key); ok {
				tile = t.Clone()
			}
		}
		body, err := (getRespMsg{ReqID: m.ReqID, Tile: tile}).encode()
		if err != nil {
			co.fail(err)
			return
		}
		co.tp.sendTo(from, msgGetResp, body)
	case msgNxtValReq:
		m, err := decodeNxtVal(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		co.tp.sendTo(from, msgNxtValResp, nxtValRespMsg{ReqID: m.ReqID, Val: co.store.NxtVal()}.encode())
	case msgStealReq:
		m, err := decodeSteal(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		co.brokerSteal(m.Thief)
	case msgStealNone:
		m, err := decodeSteal(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		// The victim had nothing migratable: its recorded backlog is
		// stale, so stop nominating it until the next heartbeat.
		_ = m
		co.mu.Lock()
		co.backlog[from] = 0
		co.mu.Unlock()
	case msgFlushAck:
		m, err := decodeFlushAck(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		co.mu.Lock()
		co.flushAcks[from] = m.Accs
		co.mu.Unlock()
	case msgDoneInfo:
		m, err := decodeDoneInfo(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		var rep RankReport
		if err := json.Unmarshal(m.JSON, &rep); err != nil {
			co.fail(fmt.Errorf("netrun: rank %d done info: %w", from, err))
			return
		}
		co.mu.Lock()
		co.reports[from] = rep
		co.mu.Unlock()
	case msgError:
		m, err := decodeError(f.body)
		if err != nil {
			co.fail(err)
			return
		}
		co.fail(fmt.Errorf("netrun: rank %d failed: %s", from, m.Text))
	}
}

// brokerSteal nominates the live rank with the deepest reported backlog
// as the thief's victim and forwards a probe; the victim decides.
func (co *coordinator) brokerSteal(thief int) {
	co.mu.Lock()
	victim, best := -1, co.cfg.Workers
	for r, b := range co.backlog {
		if r == thief {
			continue
		}
		if _, isDead := co.dead[r]; isDead {
			continue
		}
		if b > best {
			victim, best = r, b
		}
	}
	co.mu.Unlock()
	if victim >= 0 {
		co.tp.sendTo(victim, msgStealProbe, stealMsg{Thief: thief}.encode())
	}
}

// liveRanks returns the ranks not declared dead. Caller holds co.mu.
func (co *coordinator) liveRanksLocked() []int {
	live := make([]int, 0, co.cfg.Ranks)
	for r := 0; r < co.cfg.Ranks; r++ {
		if _, isDead := co.dead[r]; !isDead {
			live = append(live, r)
		}
	}
	return live
}

// checkDeaths declares ranks silent past the death timeout dead and
// broadcasts the takeover. The heir is the lowest live rank.
func (co *coordinator) checkDeaths() {
	if !co.cfg.Recover {
		return
	}
	now := time.Now()
	co.mu.Lock()
	var takeovers []takeoverMsg
	for r, seen := range co.lastSeen {
		if _, isDead := co.dead[r]; isDead {
			continue
		}
		if now.Sub(seen) < co.cfg.DeathTimeout {
			continue
		}
		heir := -1
		for _, l := range co.liveRanksLocked() {
			if l != r {
				heir = l
				break
			}
		}
		if heir < 0 {
			co.mu.Unlock()
			co.fail(fmt.Errorf("netrun: rank %d died with no live heir", r))
			return
		}
		co.dead[r] = heir
		takeovers = append(takeovers, takeoverMsg{Dead: r, Heir: heir})
	}
	live := co.liveRanksLocked()
	co.mu.Unlock()

	for _, t := range takeovers {
		// Stop our own traffic to the dead rank first (probes, flush);
		// coordinator channels retain no activations.
		co.tp.redirect(t.Dead, t.Heir)
		for _, r := range live {
			co.tp.sendTo(r, msgTakeover, t.encode())
		}
	}
}

// wait drives the run to completion: registration barrier, welcome
// broadcast, the completion/death-detection loop, the flush barrier,
// energy extraction, shutdown, and report collection.
func (co *coordinator) wait() (*Result, error) {
	defer co.tp.close()
	deadline := time.After(co.cfg.Deadline)

	select {
	case <-co.allRegCh:
	case <-co.failCh:
		return nil, co.err()
	case <-deadline:
		return nil, fmt.Errorf("netrun: %d of %d ranks registered before deadline", co.nRegistered(), co.cfg.Ranks)
	}

	co.mu.Lock()
	welcome := welcomeMsg{Ranks: co.cfg.Ranks, Addrs: make([]string, co.cfg.Ranks)}
	for r, a := range co.addrs {
		welcome.Addrs[r] = a
	}
	now := time.Now()
	for r := 0; r < co.cfg.Ranks; r++ {
		co.lastSeen[r] = now // the clock starts at the go signal
	}
	co.mu.Unlock()
	wbody := welcome.encode()
	for r := 0; r < co.cfg.Ranks; r++ {
		co.tp.sendTo(r, msgWelcome, wbody)
	}

	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for done := false; !done; {
		select {
		case <-co.failCh:
			co.shutdown()
			return nil, co.err()
		case <-co.cfg.Cancel:
			// Cancellation is honored only after the registration
			// barrier: every rank is connected, so the shutdown
			// broadcast reaches all of them and they halt between
			// tasks (a nil Cancel channel never fires).
			co.shutdown()
			co.drainShutdown()
			return nil, ErrCanceled
		case <-deadline:
			co.shutdown()
			return nil, fmt.Errorf("netrun: deadline exceeded with %d/%d tasks complete", co.nComplete(), co.spec.numInstances)
		case <-tick.C:
			co.checkDeaths()
			done = co.nComplete() == co.spec.numInstances
		}
	}

	// Flush barrier: every live rank confirms an empty unacked window
	// and reports how many distinct accumulations it sent; the fold
	// closes only when the post-apply receive count matches, so an acc
	// still inside a handler (a dying connection's last frame, say)
	// cannot race the energy read.
	co.mu.Lock()
	live := co.liveRanksLocked()
	co.mu.Unlock()
	for _, r := range live {
		co.tp.sendTo(r, msgFlushReq, nil)
	}
	for {
		co.mu.Lock()
		acked := 0
		for _, r := range live {
			if sent, ok := co.flushAcks[r]; ok && co.accRecvd[r] >= sent {
				acked++
			}
		}
		co.mu.Unlock()
		if acked == len(live) {
			break
		}
		select {
		case <-co.failCh:
			co.shutdown()
			return nil, co.err()
		case <-deadline:
			co.shutdown()
			return nil, fmt.Errorf("netrun: flush barrier: %d/%d acks", acked, len(live))
		case <-time.After(2 * time.Millisecond):
		}
	}

	co.mu.Lock()
	co.accClosed = true // late zombie accumulations must not skew the fold
	co.mu.Unlock()

	res := &Result{
		Tasks:   co.spec.numInstances,
		Ranks:   co.cfg.Ranks,
		Elapsed: time.Since(co.start),
		Trace:   trace.New(),
	}
	if co.spec.energy != nil {
		res.Energy = co.spec.energy(co.store)
		res.HasEnergy = true
	}

	co.shutdown()
	co.collectReports(live, res)
	co.mu.Lock()
	res.Takeovers = len(co.dead)
	co.mu.Unlock()
	return res, nil
}

// drainShutdown gives the shutdown broadcast time to be delivered and
// acknowledged before wait returns and its deferred close tears the
// sockets down. Without it, a cancel landing right after the welcome
// broadcast closes the connections under the still-unsent shutdown
// frames, and every rank idles until its own deadline.
func (co *coordinator) drainShutdown() {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !co.tp.drained() {
		time.Sleep(2 * time.Millisecond)
	}
}

func (co *coordinator) shutdown() {
	co.mu.Lock()
	live := co.liveRanksLocked()
	co.mu.Unlock()
	for _, r := range live {
		co.tp.sendTo(r, msgShutdown, nil)
	}
}

// collectReports waits briefly for each live rank's final self-report
// and folds what arrives; a rank that dies during shutdown only costs
// its counters.
func (co *coordinator) collectReports(live []int, res *Result) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		co.mu.Lock()
		n := len(co.reports)
		co.mu.Unlock()
		if n >= len(live) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for r := 0; r < co.cfg.Ranks; r++ {
		co.mu.Lock()
		rep, ok := co.reports[r]
		co.mu.Unlock()
		if ok {
			res.aggregate(rep)
		}
	}
}

func (co *coordinator) err() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.failure == nil {
		return fmt.Errorf("netrun: coordinator failed without recorded error")
	}
	return co.failure
}

func (co *coordinator) nComplete() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.ncomplete
}

func (co *coordinator) nRegistered() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.addrs)
}
