package netrun

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parsec/internal/ga"
	"parsec/internal/tce"
	"parsec/internal/tensor"
)

// gaClient is a rank's Global Arrays surface (ga.API) in the
// distributed runtime. Reads of the immutable input tensors never touch
// the wire: the inputs are a pure function of the workload seed, so
// each rank fills a local replica block on first access (deterministic
// input replication — the bytes are identical on every rank, and
// 118 MB of benzene inputs never cross a socket). Accumulations and
// fetches of anything else go to the GA server process.
type gaClient struct {
	tp      *transport
	w       *tce.Workload
	timeout time.Duration

	// refs maps (tensor, key) to the block's full reference for every
	// input block the workload touches; replicas holds the lazily filled
	// local copies.
	refs     map[string]map[tensor.BlockKey]tce.BlockRef
	mu       sync.Mutex
	replicas map[string]*tensor.BlockTensor4

	reqID   atomic.Uint64
	pendMu  sync.Mutex
	pendGet map[uint64]chan *tensor.Tile4
	pendNxt map[uint64]chan int64
}

var _ ga.API = (*gaClient)(nil)

func newGAClient(tp *transport, w *tce.Workload, timeout time.Duration) *gaClient {
	c := &gaClient{
		tp:       tp,
		w:        w,
		timeout:  timeout,
		refs:     make(map[string]map[tensor.BlockKey]tce.BlockRef),
		replicas: make(map[string]*tensor.BlockTensor4),
		pendGet:  make(map[uint64]chan *tensor.Tile4),
		pendNxt:  make(map[uint64]chan int64),
	}
	aName, bName := w.InputTensors()
	for _, name := range []string{aName, bName} {
		m := make(map[tensor.BlockKey]tce.BlockRef)
		for _, ref := range w.UniqueBlocks(name) {
			m[ref.Key] = ref
		}
		c.refs[name] = m
		c.replicas[name] = tensor.NewBlockTensor4()
	}
	return c
}

// Access returns a direct reference to an input block's local replica,
// filling it on first use (ga_access; §IV-B's zero-copy read, with the
// owning node replaced by the deterministic replica).
func (c *gaClient) Access(name string, key tensor.BlockKey) *tensor.Tile4 {
	refs, ok := c.refs[name]
	if !ok {
		panic(fmt.Sprintf("netrun: Access(%q): not an input tensor; distributed reads use GetHashBlock", name))
	}
	ref, ok := refs[key]
	if !ok {
		panic(fmt.Sprintf("netrun: Access(%q, %v): block not in workload", name, key))
	}
	bt := c.replicas[name]
	if t, ok := bt.Tile(key); ok {
		return t
	}
	// Fill outside the tensor's lock, publish under it: two racing
	// fillers produce identical bytes, so last-write-wins is safe.
	t := tensor.NewTile4(ref.Dims[0], ref.Dims[1], ref.Dims[2], ref.Dims[3])
	c.w.FillBlock(ref, t)
	c.mu.Lock()
	if prev, ok := bt.Tile(key); ok {
		t = prev
	} else {
		bt.Put(key, t)
	}
	c.mu.Unlock()
	return t
}

// GetHashBlock fetches a copy of a block: input tensors from the local
// replica, everything else from the GA server (GET_HASH_BLOCK). A nil
// return means the server does not hold the block (or the request timed
// out during shutdown).
func (c *gaClient) GetHashBlock(name string, key tensor.BlockKey) *tensor.Tile4 {
	if _, ok := c.refs[name]; ok {
		return c.Access(name, key).Clone()
	}
	id := c.reqID.Add(1)
	ch := make(chan *tensor.Tile4, 1)
	c.pendMu.Lock()
	c.pendGet[id] = ch
	c.pendMu.Unlock()
	body := getMsg{ReqID: id, Name: name, Key: key}.encode()
	c.tp.counters.getOps.Add(1)
	c.tp.sendTo(coordRank, msgGetReq, body)
	select {
	case t := <-ch:
		if t != nil {
			c.tp.counters.getBytes.Add(t.Bytes())
		}
		return t
	case <-time.After(c.timeout):
		c.pendMu.Lock()
		delete(c.pendGet, id)
		c.pendMu.Unlock()
		return nil
	}
}

// AccOrdered ships one ordered accumulation to the GA server. The tile
// is copied onto the wire immediately, so the no-mutation-after-call
// contract of ga.Store applies only until this returns.
func (c *gaClient) AccOrdered(name string, key tensor.BlockKey, src *tensor.Tile4, scale float64, tag, lo, hi int) error {
	if lo < 0 || hi > src.Len() || lo > hi {
		return fmt.Errorf("netrun: AccOrdered [%d,%d) of %d elements", lo, hi, src.Len())
	}
	body, err := (accOrderedMsg{Name: name, Key: key, Tag: tag, Lo: lo, Hi: hi, Scale: scale, Tile: src}).encode()
	if err != nil {
		return err
	}
	c.tp.counters.accOps.Add(1)
	c.tp.counters.accBytes.Add(int64(len(body)))
	c.tp.sendTo(coordRank, msgAccOrdered, body)
	return nil
}

// NxtVal fetches one ticket from the server's shared counter (NXTVAL).
// It returns -1 if the server does not answer within the timeout.
func (c *gaClient) NxtVal() int64 {
	id := c.reqID.Add(1)
	ch := make(chan int64, 1)
	c.pendMu.Lock()
	c.pendNxt[id] = ch
	c.pendMu.Unlock()
	c.tp.sendTo(coordRank, msgNxtValReq, nxtValMsg{ReqID: id}.encode())
	select {
	case v := <-ch:
		return v
	case <-time.After(c.timeout):
		c.pendMu.Lock()
		delete(c.pendNxt, id)
		c.pendMu.Unlock()
		return -1
	}
}

// handleGetResp completes a pending GetHashBlock.
func (c *gaClient) handleGetResp(m getRespMsg) {
	c.pendMu.Lock()
	ch := c.pendGet[m.ReqID]
	delete(c.pendGet, m.ReqID)
	c.pendMu.Unlock()
	if ch != nil {
		ch <- m.Tile
	}
}

// handleNxtValResp completes a pending NxtVal.
func (c *gaClient) handleNxtValResp(m nxtValRespMsg) {
	c.pendMu.Lock()
	ch := c.pendNxt[m.ReqID]
	delete(c.pendNxt, m.ReqID)
	c.pendMu.Unlock()
	if ch != nil {
		ch <- m.Val
	}
}
