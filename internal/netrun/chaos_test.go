package netrun

import (
	"math"
	"os"
	"testing"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/molecule"
	"parsec/internal/tce"
)

// TestMain completes the self-exec loop: a test binary relaunched by
// StartProcesses runs one worker rank and exits instead of the tests.
func TestMain(m *testing.M) {
	MaybeWorkerMain()
	os.Exit(m.Run())
}

// refEnergy computes the single-process reference energy for a preset
// and variant.
func refEnergy(t *testing.T, preset, variant string) float64 {
	t.Helper()
	sys, err := molecule.Preset(preset)
	if err != nil {
		t.Fatal(err)
	}
	w := tce.Inspect(tce.T2_7(sys), nil)
	spec, err := ccsd.VariantByName(variant)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ccsd.RunReal(w, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	return res.Energy
}

// TestProcessesBenzeneThreeWorkers is the acceptance run: benzene CCSD
// across three real OS processes over loopback sockets, with the
// coordinator and GA server in the test process. The energy must match
// the single-process run to 1e-12.
func TestProcessesBenzeneThreeWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process benzene run in -short mode")
	}
	want := refEnergy(t, "benzene", "v5")
	spec := JobSpec{Preset: "benzene", Variant: "v5"}
	pol, err := spec.Policy()
	if err != nil {
		t.Fatal(err)
	}
	l, err := StartProcesses(Config{
		Ranks:    3,
		Workers:  2,
		Policy:   pol,
		Deadline: 2 * time.Minute,
	}, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkEnergy(t, res, want)
	if res.Ranks != 3 || res.Takeovers != 0 {
		t.Fatalf("ranks %d takeovers %d", res.Ranks, res.Takeovers)
	}
	if len(res.PerRank) != 3 {
		t.Fatalf("collected %d rank reports, want 3", len(res.PerRank))
	}
	for r, rep := range res.PerRank {
		if rep.Tasks == 0 {
			t.Errorf("rank %d reports zero tasks", r)
		}
	}
}

// TestProcessChaosKillAndSever is the chaos run: three worker
// processes, one inter-rank link severed mid-stream, and one worker
// killed with SIGKILL once the job is measurably under way. Recovery
// must re-dispatch the dead rank's subgraph to an heir and the energy
// must match the fault-free single-process run to 1e-12.
func TestProcessChaosKillAndSever(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos run in -short mode")
	}
	want := refEnergy(t, "water", "v2")
	spec := JobSpec{Preset: "water", Variant: "v2"}
	pol, err := spec.Policy()
	if err != nil {
		t.Fatal(err)
	}
	l, err := StartProcesses(Config{
		Ranks:    3,
		Workers:  2,
		Policy:   pol,
		Recover:  true,
		Sever:    &SeverSpec{From: 0, To: 1, AfterFrames: 10},
		Deadline: 2 * time.Minute,
	}, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait drives the coordinator's protocol (welcome, termination,
	// flush), so it must run while we watch progress and deliver the
	// kill from the outside.
	type waitOut struct {
		res *Result
		err error
	}
	waitCh := make(chan waitOut, 1)
	go func() {
		res, err := l.Wait()
		waitCh <- waitOut{res, err}
	}()
	// Kill rank 2 once a tenth of the job has completed: late enough
	// that every rank is registered and working, early enough that the
	// victim still owns unfinished tasks for the heir to re-execute.
	total := l.co.spec.numInstances
	deadline := time.Now().Add(time.Minute)
	for l.co.nComplete() < total/10 {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %d/%d tasks before kill", l.co.nComplete(), total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := l.Kill(2); err != nil {
		t.Fatal(err)
	}
	out := <-waitCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	checkEnergy(t, res, want)
	if res.Takeovers == 0 {
		t.Error("worker killed but no takeover recorded")
	}
	var severs int64
	for _, rep := range res.PerRank {
		severs += rep.Comm.Severs
	}
	if severs == 0 {
		t.Error("sever configured but never triggered")
	}
	if d := math.Abs(res.Energy - want); d > energyTol {
		t.Fatalf("post-recovery energy off by %.3e", d)
	}
}
