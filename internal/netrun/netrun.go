// Package netrun is the real multi-process distributed runtime: worker
// processes execute one rank of a Parameterized Task Graph each and
// communicate over TCP loopback or unix sockets, turning the simulated
// cluster of internal/simexec into actual OS processes.
//
// The design follows the same lineage as the simulator. Dataflow is
// TaskTorrent-style one-sided active messages with rank-local dependency
// counting: every rank deterministically enumerates the full graph
// (enumeration is cheap; payload data is what must not be replicated)
// but counts dependencies and schedules only the instances whose
// affinity maps to it, so no rank holds a global tracker. Completing a
// task sends each remote successor an activation message carrying the
// payload; local successors are delivered in-memory. Each worker embeds
// the shared scheduling core (internal/sched) as its local executor —
// the engine implements sched.Substrate exactly as the shared-memory
// runtime does — so pop order, queue pinning, and steal-victim choice
// are byte-identical across the three backends (the conformance suite
// in internal/sched holds all of them to that).
//
// A coordinator process serves the Global Arrays surface (ordered
// accumulation with the same fold semantics as internal/ga, block
// fetches, NXTVAL) and owns the termination bitset, steal brokering,
// and failure recovery: ranks that miss heartbeats are declared dead,
// an heir re-executes the dead rank's subgraph, and the live ranks
// replay their retained activation logs to the heir. Every wire message
// is carried by an at-least-once reliable channel with the
// retry/backoff state machine ported from simexec's virtual comm
// threads; duplicate deliveries are suppressed at three layers (channel
// ids, tracker flows, accumulation tags), which is what keeps the final
// energy bitwise identical to the single-process run under drops,
// severed connections, and kill -9.
package netrun

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"parsec/internal/fault"
	"parsec/internal/obsv"
	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/trace"
)

// coordRank is the coordinator's rank id in the wire protocol and the
// routing tables; worker ranks are 0..Ranks-1.
const coordRank = -1

// ErrCanceled is returned when Config.Cancel fires mid-run: the
// coordinator broadcasts shutdown, workers halt between tasks, and the
// run ends without a result.
var ErrCanceled = errors.New("netrun: run canceled")

// Config controls a distributed run. The zero value of optional fields
// selects the documented defaults.
type Config struct {
	// Ranks is the number of worker processes (graph affinity nodes).
	Ranks int
	// Workers is the number of executor threads per rank (default 1).
	Workers int
	Policy  sched.Policy
	Queues  sched.QueueMode
	// Network selects the socket family: "tcp" (loopback, the default)
	// or "unix".
	Network string
	// Retry tunes the reliable channel; the zero value selects
	// DefaultRetryPolicy.
	Retry RetryPolicy
	// InterNodeSteal enables coordinator-brokered re-dispatch of ready
	// migratable tasks from loaded ranks to idle ones.
	InterNodeSteal bool
	// Migratable reports whether a task class may be re-dispatched to
	// another rank; nil means no class is.
	Migratable func(class string) bool
	// Fault, when non-nil, drives seeded payload- and ack-drops on every
	// send attempt (the DropProb/AckDropProb/Seed fields; the simulation-
	// time fields are ignored on real sockets).
	Fault *fault.Config
	// Sever, when non-nil, closes one link once after a frame count.
	Sever *SeverSpec
	// Recover enables rank-death detection and takeover.
	Recover bool
	// DeathTimeout is how long a rank may go silent before the
	// coordinator declares it dead (default 2s; meaningful with Recover).
	DeathTimeout time.Duration
	// Deadline bounds the whole run (default 2 minutes).
	Deadline time.Duration
	// Heartbeat is the worker status interval (default 25ms).
	Heartbeat time.Duration

	// Cancel, when non-nil, aborts the run when it becomes readable:
	// the coordinator broadcasts shutdown and returns ErrCanceled.
	// Coordinator-side only — it does not cross the process boundary,
	// so it works identically for in-process and multi-process runs.
	Cancel <-chan struct{}

	// TaskDelay, in-process runs only, delays each task body: the
	// real-socket analogue of a simulated straggler.
	TaskDelay func(rank, worker int, ref ptg.TaskRef) time.Duration
	// SchedObserver, in-process runs only, receives every local
	// scheduling decision (the conformance suite's hook).
	SchedObserver sched.Observer
}

// withDefaults returns cfg with defaults filled in.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Ranks <= 0 {
		return cfg, fmt.Errorf("netrun: Ranks %d", cfg.Ranks)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	switch cfg.Network {
	case "":
		cfg.Network = "tcp"
	case "tcp", "unix":
	default:
		return cfg, fmt.Errorf("netrun: network %q (want tcp or unix)", cfg.Network)
	}
	if cfg.Retry == (RetryPolicy{}) {
		cfg.Retry = DefaultRetryPolicy()
	}
	if cfg.DeathTimeout <= 0 {
		cfg.DeathTimeout = 2 * time.Second
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 2 * time.Minute
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 25 * time.Millisecond
	}
	if cfg.Fault != nil {
		if err := cfg.Fault.Validate(); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// listenSpec returns the (network, address) pair a rank listens on.
func (cfg Config) listenSpec(rank int) (string, string) {
	if cfg.Network == "unix" {
		p := filepath.Join(os.TempDir(), fmt.Sprintf("parsec-netrun-%d-r%d.sock", os.Getpid(), rank))
		os.Remove(p) // stale socket from a previous crashed run
		return "unix", p
	}
	return "tcp", "127.0.0.1:0"
}

// CommSnapshot is one process's wire-activity counters at run end.
type CommSnapshot struct {
	MsgsSent        int64 `json:"msgs_sent"`
	BytesSent       int64 `json:"bytes_sent"`
	AcksReceived    int64 `json:"acks_received"`
	Retries         int64 `json:"retries"`
	RetransmitBytes int64 `json:"retransmit_bytes"`
	BackoffNs       int64 `json:"backoff_ns"`
	DropsInjected   int64 `json:"drops_injected"`
	AckDropsInj     int64 `json:"ack_drops_injected"`
	DupSuppressed   int64 `json:"dup_suppressed"`
	Reconnects      int64 `json:"reconnects"`
	Severs          int64 `json:"severs"`
	TransferOps     int64 `json:"transfer_ops"`
	TransferBytes   int64 `json:"transfer_bytes"`
	AccOps          int64 `json:"acc_ops"`
	AccBytes        int64 `json:"acc_bytes"`
	GetOps          int64 `json:"get_ops"`
	GetBytes        int64 `json:"get_bytes"`
}

// snapshot captures the counters.
func (c *commCounters) snapshot() CommSnapshot {
	return CommSnapshot{
		MsgsSent:        c.msgsSent.Load(),
		BytesSent:       c.bytesSent.Load(),
		AcksReceived:    c.acksReceived.Load(),
		Retries:         c.retries.Load(),
		RetransmitBytes: c.retransmitBytes.Load(),
		BackoffNs:       c.backoffNs.Load(),
		DropsInjected:   c.dropsInjected.Load(),
		AckDropsInj:     c.ackDropsInj.Load(),
		DupSuppressed:   c.dupSuppressed.Load(),
		Reconnects:      c.reconnects.Load(),
		Severs:          c.severs.Load(),
		TransferOps:     c.transferOps.Load(),
		TransferBytes:   c.transferBytes.Load(),
		AccOps:          c.accOps.Load(),
		AccBytes:        c.accBytes.Load(),
		GetOps:          c.getOps.Load(),
		GetBytes:        c.getBytes.Load(),
	}
}

// RankTraceEvent is one executed task in a rank's final report.
type RankTraceEvent struct {
	Thread  int    `json:"t"`
	Class   string `json:"c"`
	Label   string `json:"l"`
	StartNs int64  `json:"s"`
	EndNs   int64  `json:"e"`
}

// RankReport is one worker process's final self-report, shipped to the
// coordinator as the msgDoneInfo JSON body.
type RankReport struct {
	Rank            int              `json:"rank"`
	Tasks           int              `json:"tasks"`
	ByClass         map[string]int   `json:"by_class,omitempty"`
	Adopted         int              `json:"adopted,omitempty"`
	Redispatches    int              `json:"redispatches,omitempty"`
	RedispatchBytes int64            `json:"redispatch_bytes,omitempty"`
	Comm            CommSnapshot     `json:"comm"`
	Trace           []RankTraceEvent `json:"trace,omitempty"`
}

// Result summarizes a completed distributed run.
type Result struct {
	// Energy is the correlation energy computed from the GA server's
	// folded output array; HasEnergy is false for jobs without an
	// energy functional (the conformance DAGs).
	Energy    float64
	HasEnergy bool
	// Tasks is the number of distinct task instances completed (each
	// counted once, however many ranks re-executed it during recovery).
	Tasks   int
	Ranks   int
	Elapsed time.Duration
	// Takeovers is the number of dead ranks recovered by an heir.
	Takeovers int
	PerRank   []RankReport
	// Comm and Recovery aggregate the per-rank wire counters in the
	// observability layer's vocabulary.
	Comm     obsv.CommStats
	Recovery obsv.Recovery
	// Trace holds one event per executed task across all ranks (rows are
	// (rank, worker) pairs), ready for the trace/obsv pipelines.
	Trace *trace.Trace
}

// Profile builds the observability profile of the run: the same
// ProfileReport surface the simulator and shared-memory runtime feed.
func (r *Result) Profile(name string) *obsv.Profile {
	p := obsv.FromTrace(name, r.Trace)
	p.SetComm(r.Comm)
	p.SetRecovery(r.Recovery)
	return p
}

// aggregate folds one rank's report into the result totals.
func (r *Result) aggregate(rep RankReport) {
	r.PerRank = append(r.PerRank, rep)
	c := rep.Comm
	r.Comm.Transfers += c.TransferOps
	r.Comm.TotalBytes += c.BytesSent
	r.Comm.AccOps += c.AccOps
	r.Comm.AccBytes += c.AccBytes
	r.Comm.GetOps += c.GetOps
	r.Comm.GetBytes += c.GetBytes
	r.Recovery.Retries += int(c.Retries)
	r.Recovery.Drops += int(c.DropsInjected)
	r.Recovery.AckDrops += int(c.AckDropsInj)
	r.Recovery.DupSuppressed += int(c.DupSuppressed)
	r.Recovery.BackoffTime += c.BackoffNs
	r.Recovery.RetransmitBytes += c.RetransmitBytes
	r.Recovery.Redispatches += rep.Redispatches
	r.Recovery.RedispatchBytes += rep.RedispatchBytes
	for _, ev := range rep.Trace {
		r.Trace.Add(trace.Event{
			Node:   rep.Rank,
			Thread: ev.Thread,
			Class:  ev.Class,
			Label:  ev.Label,
			Start:  ev.StartNs,
			End:    ev.EndNs,
		})
	}
}
