package netrun

import (
	"errors"
	"testing"
	"time"
)

// TestCancelPreClosed covers the worst cancellation race: the channel is
// already closed when the run starts, so the coordinator cancels
// immediately after the welcome broadcast. The shutdown frames must
// still be delivered (not cut off by the transport teardown) so every
// rank exits promptly instead of idling until its deadline.
func TestCancelPreClosed(t *testing.T) {
	c := make(chan struct{})
	close(c)
	t0 := time.Now()
	_, err := Run(Config{Ranks: 2, Workers: 1, Cancel: c}, JobSpec{Preset: "water", Variant: "v5"})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 30*time.Second {
		t.Fatalf("pre-closed cancel took %v — ranks idled to a deadline instead of shutting down", elapsed)
	}
}

// TestCancelMidRun cancels a benzene job a few hundred milliseconds in:
// the run must return ErrCanceled well before the job could finish, and
// the rank goroutines must unwind cleanly.
func TestCancelMidRun(t *testing.T) {
	c := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(c)
	}()
	_, err := Run(Config{Ranks: 2, Workers: 1, Cancel: c}, JobSpec{Preset: "benzene", Variant: "v5"})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestCustomSpecSystem checks the serializable custom-system spec
// resolves like its molecule.Custom counterpart and validates its
// inputs.
func TestCustomSpecSystem(t *testing.T) {
	spec := JobSpec{Custom: &CustomSpec{NOccupied: 4, NVirtual: 8, TileTarget: 4, NIrreps: 2, Seed: 7}, Variant: "v5"}
	sys, err := spec.system()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "custom" || sys.NOccupied != 4 || sys.NVirtual != 8 {
		t.Fatalf("resolved system = %+v", sys)
	}
	if _, err := (JobSpec{Preset: "water", Custom: spec.Custom}).system(); err == nil {
		t.Fatal("spec with both preset and custom was accepted")
	}
	if _, err := (JobSpec{Custom: &CustomSpec{NOccupied: -1, NVirtual: 8, TileTarget: 4}}).system(); err == nil {
		t.Fatal("negative n_occupied was accepted")
	}
}
