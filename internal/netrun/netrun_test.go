package netrun

import (
	"math"
	"testing"
	"time"

	"parsec/internal/ccsd"
	"parsec/internal/fault"
	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/tce"
)

const energyTol = 1e-12

// waterRef computes the single-process reference energy for a variant.
func waterRef(t *testing.T, variant string) float64 {
	t.Helper()
	w := tce.Inspect(tce.T2_7(molecule.Water631G()), nil)
	spec, err := ccsd.VariantByName(variant)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ccsd.RunReal(w, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	return res.Energy
}

func jobFor(variant string) JobSpec {
	return JobSpec{Preset: "water", Variant: variant}
}

func cfgFor(t *testing.T, spec JobSpec, ranks, workers int) Config {
	t.Helper()
	pol, err := spec.Policy()
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Ranks:    ranks,
		Workers:  workers,
		Policy:   pol,
		Queues:   sched.SharedQueue,
		Deadline: 90 * time.Second,
	}
}

func checkEnergy(t *testing.T, res *Result, want float64) {
	t.Helper()
	if !res.HasEnergy {
		t.Fatal("result has no energy")
	}
	if d := math.Abs(res.Energy - want); d > energyTol {
		t.Fatalf("energy %.15f, want %.15f (|diff| %.3e > %g)", res.Energy, want, d, energyTol)
	}
}

// TestRunMatchesSingleProcess runs every CCSD variant across two ranks
// over real sockets and demands the single-process energy to 1e-12:
// distribution must change where work runs, never what it computes.
func TestRunMatchesSingleProcess(t *testing.T) {
	for _, vs := range ccsd.Variants() {
		vs := vs
		t.Run(vs.Name, func(t *testing.T) {
			t.Parallel()
			want := waterRef(t, vs.Name)
			spec := jobFor(vs.Name)
			res, err := Run(cfgFor(t, spec, 2, 2), spec)
			if err != nil {
				t.Fatal(err)
			}
			checkEnergy(t, res, want)
			if res.Takeovers != 0 {
				t.Fatalf("unexpected takeovers: %d", res.Takeovers)
			}
		})
	}
}

// TestRunUnixSockets exercises the unix-domain transport.
func TestRunUnixSockets(t *testing.T) {
	want := waterRef(t, "v2")
	spec := jobFor("v2")
	cfg := cfgFor(t, spec, 2, 1)
	cfg.Network = "unix"
	res, err := Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	checkEnergy(t, res, want)
}

// TestRunThreeRanksPerWorkerSteal runs three ranks with the stealing
// queue mode inside each rank.
func TestRunThreeRanksPerWorkerSteal(t *testing.T) {
	want := waterRef(t, "v5")
	spec := jobFor("v5")
	cfg := cfgFor(t, spec, 3, 2)
	cfg.Queues = sched.PerWorkerSteal
	res, err := Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	checkEnergy(t, res, want)
	if res.Tasks == 0 || res.Ranks != 3 {
		t.Fatalf("result %d tasks across %d ranks", res.Tasks, res.Ranks)
	}
}

// TestRunWithDropsAndAckDrops injects seeded payload and ack drops on
// every rank's outbound links: the retry machinery must recover every
// loss, duplicate suppression must absorb every retransmit, and the
// energy must not move.
func TestRunWithDropsAndAckDrops(t *testing.T) {
	want := waterRef(t, "v2")
	spec := jobFor("v2")
	cfg := cfgFor(t, spec, 2, 2)
	cfg.Fault = &fault.Config{Seed: 42, DropProb: 0.05, AckDropProb: 0.05}
	// Keep retries snappy so the injected drops don't stretch the test.
	cfg.Retry = RetryPolicy{Timeout: 30 * time.Millisecond, Backoff: 10 * time.Millisecond,
		BackoffCap: 80 * time.Millisecond, MaxRetries: 40}
	res, err := Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	checkEnergy(t, res, want)
	if res.Recovery.Drops == 0 {
		t.Error("no payload drops injected at 5% probability")
	}
	if res.Recovery.Retries == 0 {
		t.Error("drops injected but no retransmissions recorded")
	}
	if res.Recovery.AckDrops > 0 && res.Recovery.DupSuppressed == 0 {
		t.Error("ack drops injected but no duplicate suppressed")
	}
}

// TestRunWithSeveredLink closes one inter-rank connection mid-run; the
// sender must reconnect, retransmit its window, and finish correctly.
func TestRunWithSeveredLink(t *testing.T) {
	want := waterRef(t, "v2")
	spec := jobFor("v2")
	cfg := cfgFor(t, spec, 2, 2)
	cfg.Sever = &SeverSpec{From: 0, To: 1, AfterFrames: 5}
	res, err := Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	checkEnergy(t, res, want)
	var severs int64
	for _, rep := range res.PerRank {
		severs += rep.Comm.Severs
	}
	if severs == 0 {
		t.Error("sever configured but never triggered")
	}
}

// TestInterNodeStealRedispatch makes rank 1 a straggler on GEMMs and
// lets inter-node stealing re-dispatch its backlog to rank 0. The steal
// must actually fire, and the energy must not move.
func TestInterNodeStealRedispatch(t *testing.T) {
	want := waterRef(t, "v2")
	spec := jobFor("v2")
	// DFILL dominates the straggler's ready backlog (priorities drain
	// reads and GEMMs first), so it must be migratable for steals to
	// find work; GEMM migration additionally exercises payload shipping.
	spec.MigratableClasses = []string{"DFILL", "GEMM"}
	cfg := cfgFor(t, spec, 2, 1)
	cfg.InterNodeSteal = true
	cfg.TaskDelay = func(rank, worker int, ref ptg.TaskRef) time.Duration {
		if rank == 1 {
			return 2 * time.Millisecond
		}
		return 0
	}
	res, err := Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	checkEnergy(t, res, want)
	if res.Recovery.Redispatches == 0 {
		t.Error("straggling rank never re-dispatched work")
	}
	var adopted int
	for _, rep := range res.PerRank {
		adopted += rep.Adopted
	}
	if adopted == 0 {
		t.Error("redispatches recorded but nothing adopted")
	}
}

// TestRunGraphGeneric drives a plain dependency chain (no GA surface,
// no energy) through the socket runtime.
func TestRunGraphGeneric(t *testing.T) {
	const chains, length, ranks = 6, 4, 3
	const n = chains * length
	build := func(rank int) (*ptg.Graph, error) {
		g := ptg.NewGraph("conf-chains")
		step := g.Class("STEP")
		step.Domain = func(emit func(ptg.Args)) {
			for ci := 0; ci < chains; ci++ {
				for s := 0; s < length; s++ {
					emit(ptg.A2(ci, s))
				}
			}
		}
		step.Affinity = func(a ptg.Args) int { return a[0] % ranks }
		step.AddFlow("D", ptg.RW).
			InNew(func(a ptg.Args) bool { return a[1] == 0 }, func(a ptg.Args) int64 { return 8 }).
			In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "STEP", Args: ptg.A2(a[0], a[1]-1)}, "D"
			}).
			Out(func(a ptg.Args) bool { return a[1] < length-1 }, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "STEP", Args: ptg.A2(a[0], a[1]+1)}, "D"
			})
		return g, nil
	}
	res, err := RunGraph(Config{Ranks: ranks, Workers: 1, Policy: sched.LIFOOrder,
		Deadline: 30 * time.Second}, build)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasEnergy {
		t.Error("generic graph should have no energy")
	}
	if res.Tasks != n {
		t.Fatalf("completed %d tasks, want %d", res.Tasks, n)
	}
	var total int
	for _, rep := range res.PerRank {
		total += rep.Tasks
	}
	if total != n {
		t.Fatalf("per-rank task counts sum to %d, want %d", total, n)
	}
}

// TestResultProfile checks the observability hookup end to end: the
// distributed result must feed the same profile pipeline as the
// simulator and the shared-memory runtime.
func TestResultProfile(t *testing.T) {
	spec := jobFor("v2")
	res, err := Run(cfgFor(t, spec, 2, 2), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.AccOps == 0 {
		t.Error("no accumulate traffic recorded")
	}
	if res.Trace == nil || len(res.Trace.Events()) == 0 {
		t.Fatal("no trace events aggregated")
	}
	p := res.Profile("netrun water v2")
	if rep := p.Report(8); rep == nil {
		t.Error("nil profile report")
	}
}
