package dtd

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestChainSerializedByRW(t *testing.T) {
	e := New()
	e.Put("c", 0)
	const n = 20
	for i := 0; i < n; i++ {
		i := i
		e.Insert(fmt.Sprintf("step%d", i), 0, func(ctx *Ctx) {
			v := ctx.Get("c").(int)
			if v != i {
				t.Errorf("step %d saw %d", i, v)
			}
			ctx.Set("c", v+1)
		}, ReadWrite("c"))
	}
	if err := e.Run(8); err != nil {
		t.Fatal(err)
	}
	if got := e.Value("c").(int); got != n {
		t.Errorf("final = %d, want %d", got, n)
	}
	// A pure RW chain has exactly n-1 edges.
	if e.NumEdges() != n-1 {
		t.Errorf("edges = %d, want %d", e.NumEdges(), n-1)
	}
}

func TestReadersShareThenWriterWaits(t *testing.T) {
	e := New()
	e.Put("d", 1)
	var mu sync.Mutex
	var order []string
	rec := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	e.Insert("w0", 0, func(ctx *Ctx) { rec("w0"); ctx.Set("d", 2) }, ReadWrite("d"))
	for i := 0; i < 3; i++ {
		i := i
		e.Insert(fmt.Sprintf("r%d", i), 0, func(ctx *Ctx) {
			if ctx.Get("d").(int) != 2 {
				t.Error("reader saw stale value")
			}
			rec(fmt.Sprintf("r%d", i))
		}, Read("d"))
	}
	e.Insert("w1", 0, func(ctx *Ctx) {
		rec("w1")
		ctx.Set("d", 3)
	}, ReadWrite("d"))
	if err := e.Run(4); err != nil {
		t.Fatal(err)
	}
	if order[0] != "w0" || order[len(order)-1] != "w1" {
		t.Errorf("order = %v", order)
	}
	if e.Value("d").(int) != 3 {
		t.Error("final value wrong")
	}
}

func TestWriteAfterWriteOrdered(t *testing.T) {
	e := New()
	e.Insert("a", 0, func(ctx *Ctx) { ctx.Set("x", "a") }, Write("x"))
	e.Insert("b", 0, func(ctx *Ctx) { ctx.Set("x", "b") }, Write("x"))
	if err := e.Run(4); err != nil {
		t.Fatal(err)
	}
	if e.Value("x") != "b" {
		t.Errorf("WAW not ordered: final = %v", e.Value("x"))
	}
}

func TestIndependentTasksParallel(t *testing.T) {
	e := New()
	var count int
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		e.Insert("t", 0, func(ctx *Ctx) {
			mu.Lock()
			count++
			mu.Unlock()
		}, Write(key))
	}
	if e.NumEdges() != 0 {
		t.Errorf("independent tasks have %d edges", e.NumEdges())
	}
	if err := e.Run(8); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Errorf("count = %d", count)
	}
}

func TestPriorityOrderSingleWorker(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Insert("t", int64(i), func(ctx *Ctx) { order = append(order, i) }, Write(fmt.Sprintf("k%d", i)))
	}
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] > order[i-1] {
			t.Fatalf("priority order violated: %v", order)
		}
	}
}

func TestUndeclaredAccessPanicsIntoError(t *testing.T) {
	e := New()
	e.Insert("bad", 0, func(ctx *Ctx) { ctx.Get("nope") }, Write("x"))
	if err := e.Run(1); err == nil {
		t.Error("undeclared access not surfaced")
	}
	e2 := New()
	e2.Insert("bad", 0, func(ctx *Ctx) { ctx.Set("r", 1) }, Read("r"))
	if err := e2.Run(1); err == nil {
		t.Error("write to read-only datum not surfaced")
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := New()
	e.Insert("t", 0, nil, Write("x"))
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1); err == nil {
		t.Error("second Run accepted")
	}
}

func TestInsertAfterRunPanics(t *testing.T) {
	e := New()
	e.Run(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.Insert("late", 0, nil, Write("x"))
}

// Property: a random interleaving of reads and RW-updates over a few data
// keys always executes with every update seeing the value left by the
// previous update of its key (sequential consistency per key).
func TestPropertySequentialPerKey(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) == 0 || len(ops) > 60 {
			return true
		}
		e := New()
		const keys = 3
		expect := [keys]int{}
		for k := 0; k < keys; k++ {
			e.Put(fmt.Sprintf("k%d", k), 0)
		}
		violated := false
		var mu sync.Mutex
		counts := [keys]int{}
		for _, op := range ops {
			k := int(op) % keys
			key := fmt.Sprintf("k%d", k)
			if op%2 == 0 {
				want := counts[k]
				e.Insert("upd", 0, func(ctx *Ctx) {
					v := ctx.Get(key).(int)
					mu.Lock()
					if v != want {
						violated = true
					}
					mu.Unlock()
					ctx.Set(key, v+1)
				}, ReadWrite(key))
				counts[k]++
			} else {
				want := counts[k]
				e.Insert("read", 0, func(ctx *Ctx) {
					v := ctx.Get(key).(int)
					mu.Lock()
					if v != want {
						violated = true
					}
					mu.Unlock()
				}, Read(key))
			}
			expect[k] = counts[k]
		}
		if err := e.Run(4); err != nil {
			return false
		}
		for k := 0; k < keys; k++ {
			if e.Value(fmt.Sprintf("k%d", k)).(int) != expect[k] {
				return false
			}
		}
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
