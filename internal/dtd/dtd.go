// Package dtd implements a Dynamic Task Discovery frontend: the
// programming model the paper's related work section (§VI) contrasts with
// the PTG. A skeleton program inserts tasks one by one, declaring how each
// accesses named data; the engine discovers dependencies by matching those
// accesses (last-writer and anti-dependencies) and materializes the whole
// DAG in memory before and during execution.
//
// This is the model of StarPU, QUARK, OmpSs and OpenMP tasks. It exists
// here for the comparison the paper draws: "they largely rely on some form
// of Dynamic Task Discovery, or in other words building the entire DAG of
// execution in memory using skeleton programs", whereas the PTG's
// inspector "does not build a DAG in memory and does not need to discover
// the way tasks depend on one another by matching input and output data"
// (§VI). The benchmark BenchmarkPTGvsDTD quantifies the difference.
package dtd

import (
	"fmt"
	"runtime"
	"sync"

	"parsec/internal/sched"
)

// Mode is how a task accesses one datum.
type Mode int

// The access modes: read-only, write-only, and read-modify-write.
const (
	ModeRead Mode = iota
	ModeWrite
	ModeRW
)

// String renders the mode as R, W, or RW.
func (m Mode) String() string {
	return [...]string{"R", "W", "RW"}[m]
}

// Access declares one data access of an inserted task.
type Access struct {
	Key  string
	Mode Mode
}

// Read declares a read access.
func Read(key string) Access { return Access{Key: key, Mode: ModeRead} }

// Write declares a write access (previous value not needed).
func Write(key string) Access { return Access{Key: key, Mode: ModeWrite} }

// ReadWrite declares an update access.
func ReadWrite(key string) Access { return Access{Key: key, Mode: ModeRW} }

// Ctx is passed to task bodies: Data maps each declared key to its
// current value; bodies replace values for written keys via Set.
type Ctx struct {
	ID   int
	Name string
	eng  *Engine
	keys []Access
}

// Get returns the current value of a declared datum.
func (c *Ctx) Get(key string) any {
	c.mustDeclare(key)
	c.eng.mu.Lock()
	defer c.eng.mu.Unlock()
	return c.eng.values[key]
}

// Set stores a new value for a declared written datum.
func (c *Ctx) Set(key string, v any) {
	for _, a := range c.keys {
		if a.Key == key {
			if a.Mode == ModeRead {
				panic(fmt.Sprintf("dtd: task %s writes %q declared read-only", c.Name, key))
			}
			c.eng.mu.Lock()
			c.eng.values[key] = v
			c.eng.mu.Unlock()
			return
		}
	}
	panic(fmt.Sprintf("dtd: task %s touches undeclared datum %q", c.Name, key))
}

func (c *Ctx) mustDeclare(key string) {
	for _, a := range c.keys {
		if a.Key == key {
			return
		}
	}
	panic(fmt.Sprintf("dtd: task %s touches undeclared datum %q", c.Name, key))
}

// task is one DAG node, materialized in memory (the defining property of
// the model).
type task struct {
	id       int
	name     string
	body     func(*Ctx)
	priority int64
	accesses []Access

	succs   []*task
	pending int
	done    bool
}

// SchedPriority implements sched.Task: higher-priority tasks run first.
func (t *task) SchedPriority() int64 { return t.priority }

// SchedSeq implements sched.Task: the insertion index breaks priority
// ties, so ready tasks run in program order within a priority level.
func (t *task) SchedSeq() int { return t.id }

// lastAccess tracks the dependency frontier of one datum.
type lastAccess struct {
	writer  *task
	readers []*task
}

// Engine is a DTD engine: insert tasks, then Run.
type Engine struct {
	mu       sync.Mutex
	tasks    []*task
	frontier map[string]*lastAccess
	values   map[string]any
	edges    int
	sealed   bool
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		frontier: make(map[string]*lastAccess),
		values:   make(map[string]any),
	}
}

// Put seeds an initial value for a datum before any task touches it.
func (e *Engine) Put(key string, v any) { e.values[key] = v }

// Value returns the final value of a datum after Run.
func (e *Engine) Value(key string) any { return e.values[key] }

// NumTasks returns the number of inserted tasks.
func (e *Engine) NumTasks() int { return len(e.tasks) }

// NumEdges returns the number of discovered dependency edges — the memory
// the DTD model pays that the PTG avoids.
func (e *Engine) NumEdges() int { return e.edges }

// Insert adds a task with the given accesses. Dependencies on previously
// inserted tasks are discovered immediately by access matching:
//
//   - a reader depends on the datum's last writer;
//   - a writer depends on the last writer and on every reader inserted
//     since (anti-dependencies), serializing conflicting updates.
//
// Insertion order is the program order of the skeleton.
func (e *Engine) Insert(name string, priority int64, body func(*Ctx), accesses ...Access) int {
	if e.sealed {
		panic("dtd: Insert after Run")
	}
	t := &task{
		id:       len(e.tasks),
		name:     name,
		body:     body,
		priority: priority,
		accesses: accesses,
	}
	addDep := func(from *task) {
		if from == nil || from == t {
			return
		}
		from.succs = append(from.succs, t)
		t.pending++
		e.edges++
	}
	for _, a := range accesses {
		la := e.frontier[a.Key]
		if la == nil {
			la = &lastAccess{}
			e.frontier[a.Key] = la
		}
		switch a.Mode {
		case ModeRead:
			addDep(la.writer)
			la.readers = append(la.readers, t)
		case ModeWrite, ModeRW:
			if a.Mode == ModeRW {
				addDep(la.writer)
			}
			for _, r := range la.readers {
				addDep(r)
			}
			if a.Mode == ModeWrite && len(la.readers) == 0 {
				addDep(la.writer)
			}
			la.writer = t
			la.readers = nil
		}
	}
	e.tasks = append(e.tasks, t)
	return t.id
}

// Run executes the DAG on the given number of workers (0 = GOMAXPROCS).
// The engine may not be reused afterwards.
func (e *Engine) Run(workers int) error {
	if e.sealed {
		return fmt.Errorf("dtd: Run called twice")
	}
	e.sealed = true
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		ready     sched.Heap[*task]
		remaining = len(e.tasks)
		inflight  int
		idle      int
		failed    error
		stop      bool
	)
	for _, t := range e.tasks {
		if t.pending == 0 {
			ready.PushTask(t)
		}
	}
	fail := func(err error) {
		if failed == nil {
			failed = err
		}
		stop = true
		cond.Broadcast()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && !stop {
					if remaining == 0 {
						stop = true
						cond.Broadcast()
						break
					}
					idle++
					if idle == workers && inflight == 0 && remaining > 0 {
						fail(fmt.Errorf("dtd: deadlock with %d tasks remaining", remaining))
						idle--
						break
					}
					cond.Wait()
					idle--
				}
				if stop && len(ready) == 0 {
					mu.Unlock()
					return
				}
				t := ready.PopTask()
				inflight++
				mu.Unlock()

				err := runBody(e, t)

				mu.Lock()
				inflight--
				if err != nil {
					fail(err)
					mu.Unlock()
					return
				}
				t.done = true
				remaining--
				for _, s := range t.succs {
					s.pending--
					if s.pending == 0 {
						ready.PushTask(s)
						cond.Signal()
					}
				}
				if remaining == 0 {
					stop = true
					cond.Broadcast()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return failed
}

func runBody(e *Engine, t *task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dtd: task %s panicked: %v", t.name, r)
		}
	}()
	if t.body != nil {
		t.body(&Ctx{ID: t.id, Name: t.name, eng: e, keys: t.accesses})
	}
	return nil
}
