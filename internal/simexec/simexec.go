// Package simexec executes a Parameterized Task Graph on the simulated
// distributed-memory cluster. It reproduces the execution architecture of
// PaRSEC on a real machine (§II-B, §V):
//
//   - every node runs a fixed set of worker "threads" (simulated
//     processes) sharing one ready queue — the paper's dynamic work
//     stealing within a node (§IV-D);
//   - every node runs one dedicated communication thread; tasks never
//     communicate directly, they express dataflow and the comm thread
//     issues the transfers (§V: "data transfer calls are issued by a
//     specialized communication thread that runs on a dedicated core");
//   - ready tasks are dispatched by priority (PriorityOrder) or most
//     recently produced first (LIFOOrder, the no-priorities behavior of
//     variant v2).
//
// Task durations are charged against the machine model (internal/cluster)
// from each class's Cost function or a registered Behavior; payload sizes
// for transfers come from FlowBytes. Everything else — which task runs
// when, what messages fly where — is the real runtime logic driven by the
// real tracker (internal/ptg), with every scheduling decision taken from
// the shared core (internal/sched) so the simulator provably schedules
// what the real runtime ships.
package simexec

import (
	"fmt"

	"parsec/internal/cluster"
	"parsec/internal/ga"
	"parsec/internal/metrics"
	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/sim"
	"parsec/internal/trace"
)

// Payload is the simulated datum moved along graph edges.
type Payload struct{ Bytes int64 }

// TaskCtx is handed to behaviors.
type TaskCtx struct {
	P    *sim.Proc
	M    *cluster.Machine
	GA   *ga.Sim
	Inst *ptg.Instance
	Node int
}

// ActiveInputs returns the payloads of the instance's satisfied
// task-sourced flows, in flow order.
func (c *TaskCtx) ActiveInputs() []Payload {
	var ps []Payload
	for _, in := range c.Inst.In {
		if p, ok := in.(Payload); ok {
			ps = append(ps, p)
		}
	}
	return ps
}

// Behavior simulates a task class's execution beyond a plain Cost charge
// (e.g. Global Arrays interactions, mutex-protected critical sections).
type Behavior func(ctx *TaskCtx)

// RetryPolicy controls how a node's communication thread recovers from
// transfers the fault injector drops. The sender detects a lost payload
// (or a lost ack) only after Timeout, then waits a capped exponential
// backoff before retransmitting: Backoff, 2*Backoff, ... up to
// BackoffCap. After MaxRetries retransmissions the transfer — and the
// run — fails.
type RetryPolicy struct {
	Timeout    sim.Time
	Backoff    sim.Time
	BackoffCap sim.Time
	MaxRetries int
}

// DefaultRetryPolicy returns the policy used when faults are injected
// and the caller did not set one: detection well above the network RTT,
// backoff that caps below typical task durations, and enough attempts
// that a run only fails under a truly partitioned link.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Timeout:    200 * sim.Microsecond,
		Backoff:    50 * sim.Microsecond,
		BackoffCap: 800 * sim.Microsecond,
		MaxRetries: 10,
	}
}

// Config controls a simulated run.
type Config struct {
	CoresPerNode int // worker threads per node (comm thread is extra)
	Policy       sched.Policy
	// Queues selects the intra-node scheduling structure (default
	// SharedQueue).
	Queues sched.QueueMode
	// Behaviors overrides execution per class name; classes without an
	// entry charge their Cost function.
	Behaviors map[string]Behavior
	// Trace, if non-nil, receives one event per task execution, plus
	// per-node counter tracks (ready-queue depth, in-flight communication
	// bytes) that the Chrome/Perfetto export renders alongside the Gantt
	// rows.
	Trace *trace.Trace
	// Horizon aborts the simulation after this much virtual time
	// (0 = unlimited).
	Horizon sim.Time
	// Retry configures the comm thread's loss recovery. The zero value
	// selects DefaultRetryPolicy; it is only consulted when the machine
	// has a fault injector that can drop transfers.
	Retry RetryPolicy
	// InterNodeSteal extends PerWorkerSteal across node boundaries: a
	// worker with no local work may re-dispatch a ready task queued on
	// another node, paying the transfer of the task's input payloads to
	// its own node (its GETs move with it). Requires Queues ==
	// PerWorkerSteal.
	InterNodeSteal bool
	// Migratable filters which classes InterNodeSteal may move. nil
	// allows every class without a Behaviors entry — behaviors model
	// node-resident state (GA handles, the node write mutex) that cannot
	// migrate.
	Migratable func(class string) bool
	// SchedObserver, if non-nil, receives every scheduling decision
	// (enqueue/pop/steal) with Event.Queue offset by the node's first
	// flat worker index, mirroring runtime.Config.SchedObserver so the
	// conformance suite can compare decisions across backends.
	SchedObserver sched.Observer
}

// Result summarizes a simulated run.
type Result struct {
	Makespan sim.Time
	Tasks    int
	ByClass  map[string]int
	// BytesSent is the total payload volume moved between distinct nodes.
	BytesSent int64
	// Transfers is the number of inter-node deliveries.
	Transfers int
	// BytesByClass splits BytesSent by the consuming task's class — the
	// communication-volume attribution of the profile report.
	BytesByClass map[string]int64

	// Recovery counters, nonzero only under fault injection.
	//
	// Retries counts retransmissions after a payload or ack loss;
	// Drops/AckDrops split the losses by kind. DupSuppressed counts
	// deliveries discarded because an earlier attempt already landed
	// (the receiver's at-least-once dedup). BackoffTime is the total
	// virtual time comm threads spent in retry backoff (detection
	// timeouts excluded), and RetransmitBytes the wire volume beyond
	// the first attempt.
	Retries         int
	Drops           int
	AckDrops        int
	DupSuppressed   int
	BackoffTime     sim.Time
	RetransmitBytes int64
	// Redispatches counts ready tasks migrated off their affinity node
	// by the inter-node steal path; RedispatchBytes is the input payload
	// volume that moved with them.
	Redispatches    int
	RedispatchBytes int64
}

// String summarizes the run in one line.
func (r Result) String() string {
	return fmt.Sprintf("makespan=%v tasks=%d transfers=%d (%.1f MB)",
		r.Makespan, r.Tasks, r.Transfers, float64(r.BytesSent)/1e6)
}

// Run executes the graph on the machine and returns the result. The
// machine's engine must be fresh (time zero) and is run to completion.
func Run(g *ptg.Graph, m *cluster.Machine, gasim *ga.Sim, cfg Config) (Result, error) {
	tr, err := ptg.NewTracker(g)
	if err != nil {
		return Result{}, err
	}
	if cfg.CoresPerNode <= 0 {
		return Result{}, fmt.Errorf("simexec: CoresPerNode = %d", cfg.CoresPerNode)
	}
	if cfg.InterNodeSteal && cfg.Queues != sched.PerWorkerSteal {
		return Result{}, fmt.Errorf("simexec: InterNodeSteal requires PerWorkerSteal queues")
	}
	if cfg.Retry == (RetryPolicy{}) {
		cfg.Retry = DefaultRetryPolicy()
	}
	if cfg.Migratable == nil {
		cfg.Migratable = func(class string) bool {
			_, hasBehavior := cfg.Behaviors[class]
			return !hasBehavior
		}
	}
	ex := &executor{
		tr:    tr,
		m:     m,
		ga:    gasim,
		cfg:   cfg,
		nodes: make([]*nodeState, m.Cfg.Nodes),
		procs: make([]*sim.Proc, m.Cfg.Nodes*cfg.CoresPerNode),
		res:   Result{ByClass: make(map[string]int), BytesByClass: make(map[string]int64)},
	}
	nq := cfg.CoresPerNode // NewSet collapses to one queue in SharedQueue mode
	for n := range ex.nodes {
		n := n
		ex.nodes[n] = &nodeState{
			// The set's observer keeps the per-node ready-task counter
			// track in the trace current: every enqueue/pop/steal
			// reports the new depth. The external observer, if any, sees
			// the same events with queue/worker indices flattened across
			// nodes.
			rq: sched.NewSet(nq, cfg.Policy, cfg.Queues, ex, func(e sched.Event) {
				ex.sample("ready tasks", n, float64(e.Total))
				if obs := cfg.SchedObserver; obs != nil {
					base := n * cfg.CoresPerNode
					e.Queue += base
					if e.Worker >= 0 {
						e.Worker += base
					}
					obs(e)
				}
			}),
			workersIdle: sim.NewWaitQ(m.Eng),
			commIdle:    sim.NewWaitQ(m.Eng),
		}
	}
	// Seed initial ready tasks.
	for _, in := range tr.InitialReady() {
		ex.enqueue(in)
	}
	// Start workers and comm threads.
	for n := 0; n < m.Cfg.Nodes; n++ {
		n := n
		for w := 0; w < cfg.CoresPerNode; w++ {
			w := w
			m.Eng.Go(fmt.Sprintf("n%d.w%d", n, w), func(p *sim.Proc) { ex.worker(p, n, w) })
		}
		m.Eng.Go(fmt.Sprintf("n%d.comm", n), func(p *sim.Proc) { ex.comm(p, n) })
	}
	end, err := m.Eng.Run(cfg.Horizon)
	if err != nil {
		return Result{}, fmt.Errorf("simexec: %w", err)
	}
	if ex.err != nil {
		return Result{}, ex.err
	}
	if qerr := tr.CheckQuiescent(); qerr != nil {
		return Result{}, qerr
	}
	ex.res.Makespan = end
	ex.res.Tasks = tr.NumInstances()
	return ex.res, nil
}

// transfer is one pending inter-node delivery handled by a comm thread.
type transfer struct {
	del     ptg.Delivery
	payload Payload
}

// nodeState is the per-node scheduler state. The DES runs one process at
// a time, so no locking is needed.
type nodeState struct {
	// rq is this node's ready-queue set: the scheduling core decides
	// pinning, pop order, and steal picks; the trace's ready-task
	// counter rides its observer.
	rq          *sched.Set
	workersIdle *sim.WaitQ
	commQ       []transfer
	commIdle    *sim.WaitQ
	// commBytes mirrors the in-flight transfer volume for the counter
	// track.
	commBytes int64
}

type executor struct {
	tr    *ptg.Tracker
	m     *cluster.Machine
	ga    *ga.Sim
	cfg   Config
	nodes []*nodeState
	// procs registers each worker's simulated process by flat index
	// (node*CoresPerNode+wid) so the substrate's idle primitive can park
	// the caller on its node's wait queue.
	procs []*sim.Proc
	res   Result
	done  bool
	err   error
}

// The executor is the scheduling core's substrate inside the DES: the
// virtual clock, and the per-node wait queues as the idle primitive.
var _ sched.Substrate = (*executor)(nil)

// Now returns the current virtual time in nanoseconds (sched.Substrate).
func (ex *executor) Now() int64 { return int64(ex.m.Eng.Now()) }

// Idle suspends the calling worker's simulated process on its node's
// wait queue until new work may be available (sched.Substrate).
func (ex *executor) Idle(worker int) {
	ex.nodes[worker/ex.cfg.CoresPerNode].workersIdle.Wait(ex.procs[worker])
}

// Kick wakes the workers parked on a worker's node (sched.Substrate;
// the DES wait queue has no per-process wake, so a kick is node-wide).
func (ex *executor) Kick(worker int) {
	ex.nodes[worker/ex.cfg.CoresPerNode].workersIdle.WakeAll()
}

func (ex *executor) fail(err error) {
	if ex.err == nil {
		ex.err = err
	}
	ex.m.Eng.Stop()
}

// sample records one counter-track sample when tracing is enabled.
func (ex *executor) sample(name string, node int, v float64) {
	if ex.cfg.Trace == nil {
		return
	}
	ex.cfg.Trace.AddCounter(trace.Counter{
		Name: name, Node: node, Ts: int64(ex.m.Eng.Now()), Value: v,
	})
}

// enqueue adds a ready task to its home queue on its affinity node and
// wakes a worker.
func (ex *executor) enqueue(in *ptg.Instance) {
	node := in.Node
	if node < 0 || node >= len(ex.nodes) {
		ex.fail(fmt.Errorf("simexec: %v has affinity %d outside machine", in.Ref, node))
		return
	}
	ns := ex.nodes[node]
	ns.rq.Push(in)
	if ex.cfg.Queues == sched.SharedQueue {
		ns.workersIdle.WakeOne()
	} else {
		// Wake everyone: the task is pinned to (or stealable by) a
		// specific worker that WakeOne might miss.
		ns.workersIdle.WakeAll()
	}
	if ex.cfg.InterNodeSteal && ex.cfg.Migratable(in.Ref.Class) {
		// A parked worker on any node is a potential thief for this task.
		for n, other := range ex.nodes {
			if n != node {
				other.workersIdle.WakeOne()
			}
		}
	}
}

// dequeueFor pops the next task for a specific worker: its own queue
// first, then — when the mode allows it — the core's best-head steal
// from a sibling's queue.
func (ex *executor) dequeueFor(node, wid int) *ptg.Instance {
	ns := ex.nodes[node]
	if in := ns.rq.Pop(wid); in != nil {
		return in
	}
	if ex.cfg.Queues == sched.PerWorkerSteal {
		return ns.rq.StealBest(wid)
	}
	return nil
}

// worker is the main loop of one compute thread.
func (ex *executor) worker(p *sim.Proc, node, wid int) {
	flat := node*ex.cfg.CoresPerNode + wid
	ex.procs[flat] = p
	for {
		in := ex.dequeueFor(node, wid)
		if in == nil && ex.cfg.InterNodeSteal {
			in = ex.stealRemote(p, node, wid)
			if ex.err != nil {
				return
			}
		}
		if in == nil {
			if ex.done {
				return
			}
			ex.Idle(flat)
			continue
		}
		if err := ex.tr.Start(in); err != nil {
			ex.fail(err)
			return
		}
		start := p.Now()
		ex.execute(p, node, in)
		if ex.err != nil {
			return
		}
		if ex.cfg.Trace != nil {
			ex.cfg.Trace.Add(trace.Event{
				Node: node, Thread: wid,
				Class: in.Ref.Class, Label: in.Ref.String(),
				Start: int64(start), End: int64(p.Now()),
			})
		}
		ex.complete(in, node)
		if ex.err != nil {
			return
		}
	}
}

// stealRemote re-dispatches a ready task queued on another node to this
// worker: the inter-node extension of PerWorkerSteal. The thief picks
// the node with the deepest ready backlog holding a migratable task,
// removes that victim's best such task, and pays the transfer of the
// task's already-delivered input payloads to its own node — the task's
// GETs move with it. Behind a straggler this converts queueing delay
// into one bounded data movement; the fault-free cost is nothing, since
// workers only probe when they have no local work.
func (ex *executor) stealRemote(p *sim.Proc, node, wid int) *ptg.Instance {
	migratable := func(in *ptg.Instance) bool { return ex.cfg.Migratable(in.Ref.Class) }
	victim := -1
	for n, ns := range ex.nodes {
		// Raid only genuinely backed-up victims: a node whose ready
		// backlog fits its own cores drains it within one task round, and
		// migrating from it buys wire time for no queueing delay. The
		// threshold also keeps fast nodes from churning tasks among
		// themselves during uneven startup.
		if n == node || ns.rq.Total() <= ex.cfg.CoresPerNode ||
			(victim >= 0 && ns.rq.Total() <= ex.nodes[victim].rq.Total()) {
			continue
		}
		if ns.rq.FindWhere(migratable) != nil {
			victim = n
		}
	}
	if victim < 0 {
		return nil
	}
	in := ex.nodes[victim].rq.PopWhere(migratable)
	if in == nil {
		return nil
	}

	var moved int64
	for _, inp := range in.In {
		if pl, ok := inp.(Payload); ok {
			moved += pl.Bytes
		}
	}
	start := p.Now()
	ex.m.Transfer(p, node, victim, moved)
	ex.res.Redispatches++
	ex.res.RedispatchBytes += moved
	if ex.cfg.Trace != nil && p.Now() > start {
		ex.cfg.Trace.Add(trace.Event{
			Node: node, Thread: wid,
			Class: "MIGRATE", Label: in.Ref.String(),
			Start: int64(start), End: int64(p.Now()),
		})
	}
	return in
}

// execute charges the task's simulated duration.
func (ex *executor) execute(p *sim.Proc, node int, in *ptg.Instance) {
	if b, ok := ex.cfg.Behaviors[in.Ref.Class]; ok {
		b(&TaskCtx{P: p, M: ex.m, GA: ex.ga, Inst: in, Node: node})
		return
	}
	if in.Class.Cost != nil {
		c := in.Class.Cost(in.Ref.Args)
		if c.GemmBytes > 0 || (c.Flops > 0 && in.Ref.Class == "GEMM") {
			ex.m.Gemm(p, node, c.Flops, c.GemmBytes)
			if c.MemBytes > 0 {
				ex.m.MemOp(p, node, c.MemBytes, c.Warm)
			}
			return
		}
		ex.m.Compute(p, node, c.Flops, c.MemBytes, c.Warm)
	}
}

// complete evaluates the finished task's dataflow: local deliveries are
// immediate, remote ones are queued on the communication thread of the
// node that executed the task (its affinity node unless the task was
// re-dispatched).
func (ex *executor) complete(in *ptg.Instance, node int) {
	dels, _, err := ex.tr.Complete(in)
	if err != nil {
		ex.fail(err)
		return
	}
	ex.res.ByClass[in.Ref.Class]++
	for _, d := range dels {
		pl := Payload{Bytes: d.Bytes}
		if d.To.Node == node {
			ex.deliver(d, pl)
		} else {
			ns := ex.nodes[node]
			ns.commQ = append(ns.commQ, transfer{del: d, payload: pl})
			ns.commBytes += pl.Bytes
			ex.sample("comm bytes in flight", node, float64(ns.commBytes))
			ns.commIdle.WakeOne()
		}
	}
	ex.checkDone()
}

// deliver satisfies the consumer's input and enqueues it if it became
// ready.
func (ex *executor) deliver(d ptg.Delivery, pl Payload) {
	ready, err := ex.tr.Deliver(d.To, d.ToFlow, pl)
	if err != nil {
		ex.fail(err)
		return
	}
	if ready {
		ex.enqueue(d.To)
	}
}

// comm is the main loop of one node's communication thread: it serves
// queued transfers in FIFO order, one at a time, charging network latency
// and this node's NIC injection bandwidth per payload. Each transfer
// runs through the retry state machine in send.
func (ex *executor) comm(p *sim.Proc, node int) {
	ns := ex.nodes[node]
	for {
		if len(ns.commQ) == 0 {
			if ex.done {
				return
			}
			ns.commIdle.Wait(p)
			continue
		}
		t := ns.commQ[0]
		ns.commQ = ns.commQ[:copy(ns.commQ, ns.commQ[1:])]
		ex.send(p, node, t)
		ns.commBytes -= t.payload.Bytes
		ex.sample("comm bytes in flight", node, float64(ns.commBytes))
		if ex.err != nil {
			return
		}
	}
}

// send pushes one transfer through until its ack comes back, retrying
// around injected faults:
//
//   - payload drop: the receiver saw nothing; the sender burns the
//     detection timeout, waits out the (capped, doubling) backoff, and
//     retransmits;
//   - ack drop: the payload landed, so the first arrival is delivered
//     and later arrivals are suppressed as duplicates, but the sender —
//     which cannot tell an ack loss from a payload loss — still times
//     out and retransmits;
//   - latency spike: the attempt succeeds after extra delay.
//
// Exhausting MaxRetries retransmissions fails the run: the link is
// treated as partitioned, which the dataflow model cannot route around.
func (ex *executor) send(p *sim.Proc, node int, t transfer) {
	pol := ex.cfg.Retry
	inj := ex.m.Faults()
	backoff := pol.Backoff
	delivered := false
	retried := false
	start := p.Now()
	for attempt := 1; ; attempt++ {
		out := inj.Transfer(node, t.del.To.Node)
		if out.Extra > 0 {
			p.Hold(out.Extra)
		}
		lost := out.Drop
		if !lost {
			ex.m.Transfer(p, node, t.del.To.Node, t.payload.Bytes)
			if attempt > 1 {
				ex.res.RetransmitBytes += t.payload.Bytes
			}
			if delivered {
				ex.res.DupSuppressed++
			} else {
				delivered = true
				ex.res.BytesSent += t.payload.Bytes
				ex.res.Transfers++
				ex.res.BytesByClass[t.del.To.Ref.Class] += t.payload.Bytes
				ex.deliver(t.del, t.payload)
				if ex.err != nil {
					return
				}
			}
			if !out.AckDrop {
				break
			}
			ex.res.AckDrops++
		} else {
			ex.res.Drops++
		}
		// The ack never arrived (payload or ack lost): detect by timeout,
		// back off, retransmit.
		p.Hold(pol.Timeout)
		if attempt > pol.MaxRetries {
			ex.fail(fmt.Errorf("simexec: transfer %s -> node %d for %v lost %d times, retries exhausted",
				metrics.FormatBytes(t.payload.Bytes), t.del.To.Node, t.del.To.Ref, attempt))
			return
		}
		ex.res.Retries++
		ex.res.BackoffTime += backoff
		retried = true
		p.Hold(backoff)
		if backoff *= 2; backoff > pol.BackoffCap {
			backoff = pol.BackoffCap
		}
	}
	if retried && ex.cfg.Trace != nil && p.Now() > start {
		// Mark retried transfers on the comm thread's own row (one past
		// the worker threads) so recovery is visible in the Gantt views.
		ex.cfg.Trace.Add(trace.Event{
			Node: node, Thread: ex.cfg.CoresPerNode,
			Class: "XFER-RETRY", Label: t.del.To.Ref.String(),
			Start: int64(start), End: int64(p.Now()),
		})
	}
}

// checkDone wakes every parked process once all tasks completed so the
// simulation can drain.
func (ex *executor) checkDone() {
	if ex.done || !ex.tr.Done() {
		return
	}
	ex.done = true
	for _, ns := range ex.nodes {
		ns.workersIdle.WakeAll()
		ns.commIdle.WakeAll()
	}
}
