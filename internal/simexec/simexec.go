// Package simexec executes a Parameterized Task Graph on the simulated
// distributed-memory cluster. It reproduces the execution architecture of
// PaRSEC on a real machine (§II-B, §V):
//
//   - every node runs a fixed set of worker "threads" (simulated
//     processes) sharing one ready queue — the paper's dynamic work
//     stealing within a node (§IV-D);
//   - every node runs one dedicated communication thread; tasks never
//     communicate directly, they express dataflow and the comm thread
//     issues the transfers (§V: "data transfer calls are issued by a
//     specialized communication thread that runs on a dedicated core");
//   - ready tasks are dispatched by priority (PriorityOrder) or most
//     recently produced first (LIFOOrder, the no-priorities behavior of
//     variant v2).
//
// Task durations are charged against the machine model (internal/cluster)
// from each class's Cost function or a registered Behavior; payload sizes
// for transfers come from FlowBytes. Everything else — which task runs
// when, what messages fly where — is the real runtime logic driven by the
// real tracker (internal/ptg).
package simexec

import (
	"container/heap"
	"fmt"

	"parsec/internal/cluster"
	"parsec/internal/ga"
	"parsec/internal/ptg"
	"parsec/internal/sim"
	"parsec/internal/trace"
)

// Policy selects ready-task ordering, as in internal/runtime.
type Policy int

// The policies: priority order with creation-order ties, or LIFO
// ignoring priorities (the v2 behavior of Fig 11).
const (
	PriorityOrder Policy = iota
	LIFOOrder
)

// QueueMode selects how ready tasks are distributed among a node's
// workers — the §IV-D design point ("dynamic work stealing within each
// node").
type QueueMode int

const (
	// SharedQueue gives each node one ready queue drained by all its
	// workers: the intra-node dynamic load balancing PaRSEC uses.
	SharedQueue QueueMode = iota
	// PerWorker statically assigns each ready task to one worker's
	// private queue; idle workers do not steal (the ablation baseline).
	PerWorker
	// PerWorkerSteal assigns tasks as PerWorker but lets an idle worker
	// steal the best ready task from a sibling's queue.
	PerWorkerSteal
)

// Payload is the simulated datum moved along graph edges.
type Payload struct{ Bytes int64 }

// TaskCtx is handed to behaviors.
type TaskCtx struct {
	P    *sim.Proc
	M    *cluster.Machine
	GA   *ga.Sim
	Inst *ptg.Instance
	Node int
}

// ActiveInputs returns the payloads of the instance's satisfied
// task-sourced flows, in flow order.
func (c *TaskCtx) ActiveInputs() []Payload {
	var ps []Payload
	for _, in := range c.Inst.In {
		if p, ok := in.(Payload); ok {
			ps = append(ps, p)
		}
	}
	return ps
}

// Behavior simulates a task class's execution beyond a plain Cost charge
// (e.g. Global Arrays interactions, mutex-protected critical sections).
type Behavior func(ctx *TaskCtx)

// Config controls a simulated run.
type Config struct {
	CoresPerNode int // worker threads per node (comm thread is extra)
	Policy       Policy
	// Queues selects the intra-node scheduling structure (default
	// SharedQueue).
	Queues QueueMode
	// Behaviors overrides execution per class name; classes without an
	// entry charge their Cost function.
	Behaviors map[string]Behavior
	// Trace, if non-nil, receives one event per task execution, plus
	// per-node counter tracks (ready-queue depth, in-flight communication
	// bytes) that the Chrome/Perfetto export renders alongside the Gantt
	// rows.
	Trace *trace.Trace
	// Horizon aborts the simulation after this much virtual time
	// (0 = unlimited).
	Horizon sim.Time
}

// Result summarizes a simulated run.
type Result struct {
	Makespan sim.Time
	Tasks    int
	ByClass  map[string]int
	// BytesSent is the total payload volume moved between distinct nodes.
	BytesSent int64
	// Transfers is the number of inter-node deliveries.
	Transfers int
	// BytesByClass splits BytesSent by the consuming task's class — the
	// communication-volume attribution of the profile report.
	BytesByClass map[string]int64
}

// String summarizes the run in one line.
func (r Result) String() string {
	return fmt.Sprintf("makespan=%v tasks=%d transfers=%d (%.1f MB)",
		r.Makespan, r.Tasks, r.Transfers, float64(r.BytesSent)/1e6)
}

// Run executes the graph on the machine and returns the result. The
// machine's engine must be fresh (time zero) and is run to completion.
func Run(g *ptg.Graph, m *cluster.Machine, gasim *ga.Sim, cfg Config) (Result, error) {
	tr, err := ptg.NewTracker(g)
	if err != nil {
		return Result{}, err
	}
	if cfg.CoresPerNode <= 0 {
		return Result{}, fmt.Errorf("simexec: CoresPerNode = %d", cfg.CoresPerNode)
	}
	ex := &executor{
		tr:    tr,
		m:     m,
		ga:    gasim,
		cfg:   cfg,
		nodes: make([]*nodeState, m.Cfg.Nodes),
		res:   Result{ByClass: make(map[string]int), BytesByClass: make(map[string]int64)},
	}
	for n := range ex.nodes {
		ex.nodes[n] = &nodeState{
			workersIdle: sim.NewWaitQ(m.Eng),
			commIdle:    sim.NewWaitQ(m.Eng),
		}
		if cfg.Queues != SharedQueue {
			ex.nodes[n].perWorker = make([]taskHeap, cfg.CoresPerNode)
		}
	}
	// Seed initial ready tasks.
	for _, in := range tr.InitialReady() {
		ex.enqueue(in)
	}
	// Start workers and comm threads.
	for n := 0; n < m.Cfg.Nodes; n++ {
		n := n
		for w := 0; w < cfg.CoresPerNode; w++ {
			w := w
			m.Eng.Go(fmt.Sprintf("n%d.w%d", n, w), func(p *sim.Proc) { ex.worker(p, n, w) })
		}
		m.Eng.Go(fmt.Sprintf("n%d.comm", n), func(p *sim.Proc) { ex.comm(p, n) })
	}
	end, err := m.Eng.Run(cfg.Horizon)
	if err != nil {
		return Result{}, fmt.Errorf("simexec: %w", err)
	}
	if ex.err != nil {
		return Result{}, ex.err
	}
	if qerr := tr.CheckQuiescent(); qerr != nil {
		return Result{}, qerr
	}
	ex.res.Makespan = end
	ex.res.Tasks = tr.NumInstances()
	return ex.res, nil
}

// transfer is one pending inter-node delivery handled by a comm thread.
type transfer struct {
	del     ptg.Delivery
	payload Payload
}

// nodeState is the per-node scheduler state. The DES runs one process at
// a time, so no locking is needed.
type nodeState struct {
	readyHeap   taskHeap
	readyStack  []*ptg.Instance
	perWorker   []taskHeap // QueueMode PerWorker*: one heap per worker
	workersIdle *sim.WaitQ
	commQ       []transfer
	commIdle    *sim.WaitQ
	// ready and commBytes mirror the queue depth and in-flight transfer
	// volume for the counter tracks.
	ready     int
	commBytes int64
}

type executor struct {
	tr    *ptg.Tracker
	m     *cluster.Machine
	ga    *ga.Sim
	cfg   Config
	nodes []*nodeState
	res   Result
	done  bool
	err   error
}

type taskHeap []*ptg.Instance

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].Seq < h[j].Seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*ptg.Instance)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

func (ex *executor) fail(err error) {
	if ex.err == nil {
		ex.err = err
	}
	ex.m.Eng.Stop()
}

// sample records one counter-track sample when tracing is enabled.
func (ex *executor) sample(name string, node int, v float64) {
	if ex.cfg.Trace == nil {
		return
	}
	ex.cfg.Trace.AddCounter(trace.Counter{
		Name: name, Node: node, Ts: int64(ex.m.Eng.Now()), Value: v,
	})
}

// enqueue adds a ready task to its node's queue and wakes a worker.
func (ex *executor) enqueue(in *ptg.Instance) {
	node := in.Node
	if node < 0 || node >= len(ex.nodes) {
		ex.fail(fmt.Errorf("simexec: %v has affinity %d outside machine", in.Ref, node))
		return
	}
	ns := ex.nodes[node]
	ns.ready++
	ex.sample("ready tasks", node, float64(ns.ready))
	switch {
	case ex.cfg.Queues != SharedQueue:
		w := in.Seq % len(ns.perWorker)
		heap.Push(&ns.perWorker[w], in)
	case ex.cfg.Policy == LIFOOrder:
		ns.readyStack = append(ns.readyStack, in)
	default:
		heap.Push(&ns.readyHeap, in)
	}
	if ex.cfg.Queues == SharedQueue {
		ns.workersIdle.WakeOne()
	} else {
		// Wake everyone: the task is pinned to (or stealable by) a
		// specific worker that WakeOne might miss.
		ns.workersIdle.WakeAll()
	}
}

// dequeueFor pops the next task for a specific worker, honoring the
// queue mode (stealing from siblings when allowed).
func (ex *executor) dequeueFor(node, wid int) *ptg.Instance {
	in := ex.popFor(node, wid)
	if in != nil {
		ns := ex.nodes[node]
		ns.ready--
		ex.sample("ready tasks", node, float64(ns.ready))
	}
	return in
}

// popFor is dequeueFor without the counter bookkeeping.
func (ex *executor) popFor(node, wid int) *ptg.Instance {
	ns := ex.nodes[node]
	if ex.cfg.Queues == SharedQueue {
		return ex.dequeue(node)
	}
	if len(ns.perWorker[wid]) > 0 {
		return heap.Pop(&ns.perWorker[wid]).(*ptg.Instance)
	}
	if ex.cfg.Queues == PerWorkerSteal {
		// Steal the highest-priority ready task among the siblings.
		best := -1
		for w := range ns.perWorker {
			if len(ns.perWorker[w]) == 0 {
				continue
			}
			if best < 0 || taskBefore(ns.perWorker[w][0], ns.perWorker[best][0]) {
				best = w
			}
		}
		if best >= 0 {
			return heap.Pop(&ns.perWorker[best]).(*ptg.Instance)
		}
	}
	return nil
}

// taskBefore reports whether a should run before b.
func taskBefore(a, b *ptg.Instance) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Seq < b.Seq
}

func (ex *executor) dequeue(node int) *ptg.Instance {
	ns := ex.nodes[node]
	if ex.cfg.Policy == LIFOOrder {
		if n := len(ns.readyStack); n > 0 {
			in := ns.readyStack[n-1]
			ns.readyStack[n-1] = nil
			ns.readyStack = ns.readyStack[:n-1]
			return in
		}
		return nil
	}
	if len(ns.readyHeap) > 0 {
		return heap.Pop(&ns.readyHeap).(*ptg.Instance)
	}
	return nil
}

// worker is the main loop of one compute thread.
func (ex *executor) worker(p *sim.Proc, node, wid int) {
	ns := ex.nodes[node]
	for {
		in := ex.dequeueFor(node, wid)
		if in == nil {
			if ex.done {
				return
			}
			ns.workersIdle.Wait(p)
			continue
		}
		if err := ex.tr.Start(in); err != nil {
			ex.fail(err)
			return
		}
		start := p.Now()
		ex.execute(p, node, in)
		if ex.err != nil {
			return
		}
		if ex.cfg.Trace != nil {
			ex.cfg.Trace.Add(trace.Event{
				Node: node, Thread: wid,
				Class: in.Ref.Class, Label: in.Ref.String(),
				Start: int64(start), End: int64(p.Now()),
			})
		}
		ex.complete(in)
		if ex.err != nil {
			return
		}
	}
}

// execute charges the task's simulated duration.
func (ex *executor) execute(p *sim.Proc, node int, in *ptg.Instance) {
	if b, ok := ex.cfg.Behaviors[in.Ref.Class]; ok {
		b(&TaskCtx{P: p, M: ex.m, GA: ex.ga, Inst: in, Node: node})
		return
	}
	if in.Class.Cost != nil {
		c := in.Class.Cost(in.Ref.Args)
		if c.GemmBytes > 0 || (c.Flops > 0 && in.Ref.Class == "GEMM") {
			ex.m.Gemm(p, node, c.Flops, c.GemmBytes)
			if c.MemBytes > 0 {
				ex.m.MemOp(p, node, c.MemBytes, c.Warm)
			}
			return
		}
		ex.m.Compute(p, node, c.Flops, c.MemBytes, c.Warm)
	}
}

// complete evaluates the finished task's dataflow: local deliveries are
// immediate, remote ones are queued on this node's communication thread.
func (ex *executor) complete(in *ptg.Instance) {
	dels, _, err := ex.tr.Complete(in)
	if err != nil {
		ex.fail(err)
		return
	}
	ex.res.ByClass[in.Ref.Class]++
	for _, d := range dels {
		pl := Payload{Bytes: d.Bytes}
		if d.To.Node == in.Node {
			ex.deliver(d, pl)
		} else {
			ns := ex.nodes[in.Node]
			ns.commQ = append(ns.commQ, transfer{del: d, payload: pl})
			ns.commBytes += pl.Bytes
			ex.sample("comm bytes in flight", in.Node, float64(ns.commBytes))
			ns.commIdle.WakeOne()
		}
	}
	ex.checkDone()
}

// deliver satisfies the consumer's input and enqueues it if it became
// ready.
func (ex *executor) deliver(d ptg.Delivery, pl Payload) {
	ready, err := ex.tr.Deliver(d.To, d.ToFlow, pl)
	if err != nil {
		ex.fail(err)
		return
	}
	if ready {
		ex.enqueue(d.To)
	}
}

// comm is the main loop of one node's communication thread: it serves
// queued transfers in FIFO order, one at a time, charging network latency
// and this node's NIC injection bandwidth per payload.
func (ex *executor) comm(p *sim.Proc, node int) {
	ns := ex.nodes[node]
	for {
		if len(ns.commQ) == 0 {
			if ex.done {
				return
			}
			ns.commIdle.Wait(p)
			continue
		}
		t := ns.commQ[0]
		ns.commQ = ns.commQ[:copy(ns.commQ, ns.commQ[1:])]
		ex.m.Transfer(p, node, t.del.To.Node, t.payload.Bytes)
		ns.commBytes -= t.payload.Bytes
		ex.sample("comm bytes in flight", node, float64(ns.commBytes))
		ex.res.BytesSent += t.payload.Bytes
		ex.res.Transfers++
		ex.res.BytesByClass[t.del.To.Ref.Class] += t.payload.Bytes
		ex.deliver(t.del, t.payload)
		if ex.err != nil {
			return
		}
	}
}

// checkDone wakes every parked process once all tasks completed so the
// simulation can drain.
func (ex *executor) checkDone() {
	if ex.done || !ex.tr.Done() {
		return
	}
	ex.done = true
	for _, ns := range ex.nodes {
		ns.workersIdle.WakeAll()
		ns.commIdle.WakeAll()
	}
}
