package simexec

import (
	"fmt"
	"testing"

	"parsec/internal/cluster"
	"parsec/internal/ga"
	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/sim"
	"parsec/internal/trace"
)

func testMachine(nodes, cores int) (*cluster.Machine, *ga.Sim) {
	cfg := cluster.CascadeLike()
	cfg.Nodes = nodes
	cfg.CoresPerNode = cores
	cfg.JitterFrac = 0
	e := sim.NewEngine()
	m := cluster.New(e, cfg)
	return m, ga.NewSim(m)
}

// fanGraph: n independent tasks with fixed flops, round-robin affinity.
func fanGraph(n int, flops int64, nodes int) *ptg.Graph {
	g := ptg.NewGraph("fan")
	c := g.Class("T")
	c.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	c.Affinity = func(a ptg.Args) int { return a[0] % nodes }
	c.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: flops} }
	return g
}

func TestFanScalesWithCores(t *testing.T) {
	const n, nodes = 64, 2
	run := func(cores int) sim.Time {
		m, gs := testMachine(nodes, cores)
		res, err := Run(fanGraph(n, 1e9, nodes), m, gs, Config{CoresPerNode: cores})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tasks != n {
			t.Fatalf("tasks = %d", res.Tasks)
		}
		return res.Makespan
	}
	t1 := run(1)
	t4 := run(4)
	speedup := t1.Seconds() / t4.Seconds()
	if speedup < 3.5 || speedup > 4.2 {
		t.Errorf("4-core speedup = %.2f, want ~4 (t1=%v, t4=%v)", speedup, t1, t4)
	}
}

func TestPerfectlyParallelMakespan(t *testing.T) {
	// 8 tasks of 1 GFlop on 2 nodes x 4 cores at CoreGFlops: each core
	// runs exactly one task -> makespan = one task's duration.
	m, gs := testMachine(2, 4)
	res, err := Run(fanGraph(8, 1e9, 2), m, gs, Config{CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := m.ComputeTime(1e9)
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

// pipelineGraph: SRC(i) on node 0 -> DST(i) on node 1, payload bytes.
func pipelineGraph(n int, bytes int64) *ptg.Graph {
	g := ptg.NewGraph("pipe")
	src := g.Class("SRC")
	src.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	src.Affinity = func(a ptg.Args) int { return 0 }
	src.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: 1e6} }
	src.FlowBytes = func(a ptg.Args, flow string) int64 { return bytes }
	src.AddFlow("D", ptg.Write).
		InNew(nil, func(a ptg.Args) int64 { return bytes }).
		Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "DST", Args: a}, "D"
		})
	dst := g.Class("DST")
	dst.Domain = src.Domain
	dst.Affinity = func(a ptg.Args) int { return 1 }
	dst.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: 1e6} }
	dst.AddFlow("D", ptg.Read).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "SRC", Args: a}, "D"
		})
	return g
}

func TestRemoteDeliveryThroughCommThread(t *testing.T) {
	m, gs := testMachine(2, 2)
	res, err := Run(pipelineGraph(10, 1e6), m, gs, Config{CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers != 10 {
		t.Errorf("transfers = %d, want 10", res.Transfers)
	}
	if res.BytesSent != 10e6 {
		t.Errorf("bytes = %d, want 10e6", res.BytesSent)
	}
	// Makespan at least the NIC serial time for 10 MB.
	minWire := sim.Duration(10e6 / m.Cfg.NICBWBytes)
	if res.Makespan < minWire {
		t.Errorf("makespan %v < wire floor %v", res.Makespan, minWire)
	}
}

func TestLocalDeliveryNoTransfer(t *testing.T) {
	g := pipelineGraph(5, 1e6)
	g.ClassByName("DST").Affinity = func(a ptg.Args) int { return 0 }
	m, gs := testMachine(2, 2)
	res, err := Run(g, m, gs, Config{CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers != 0 || res.BytesSent != 0 {
		t.Errorf("local deliveries used the network: %v", res)
	}
}

func TestPrioritiesOrderExecution(t *testing.T) {
	// Single core: priorities must determine execution order exactly.
	g := fanGraph(8, 1e8, 1)
	c := g.ClassByName("T")
	c.Priority = func(a ptg.Args) int64 { return int64(a[0]) } // highest index first
	tr := trace.New()
	m, gs := testMachine(1, 1)
	if _, err := Run(g, m, gs, Config{CoresPerNode: 1, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Label > evs[i-1].Label && evs[i].Start > evs[i-1].Start {
			// labels T(7..0): expect descending index order
		}
	}
	if evs[0].Label != "T(7,0,0)" || evs[len(evs)-1].Label != "T(0,0,0)" {
		t.Errorf("priority order violated: first=%s last=%s", evs[0].Label, evs[len(evs)-1].Label)
	}
}

func TestLIFOIgnoresPriorities(t *testing.T) {
	g := fanGraph(8, 1e8, 1)
	c := g.ClassByName("T")
	c.Priority = func(a ptg.Args) int64 { return int64(a[0]) }
	tr := trace.New()
	m, gs := testMachine(1, 1)
	if _, err := Run(g, m, gs, Config{CoresPerNode: 1, Policy: sched.LIFOOrder, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	// LIFO pops the most recently pushed first: T(7) was pushed last.
	if evs[0].Label != "T(7,0,0)" || evs[1].Label != "T(6,0,0)" {
		t.Errorf("LIFO order: first=%s second=%s", evs[0].Label, evs[1].Label)
	}
}

func TestBehaviorOverridesCost(t *testing.T) {
	g := fanGraph(4, 1e12, 1) // would take seconds via Cost
	m, gs := testMachine(1, 1)
	var calls int
	res, err := Run(g, m, gs, Config{
		CoresPerNode: 1,
		Behaviors: map[string]Behavior{
			"T": func(ctx *TaskCtx) {
				calls++
				ctx.P.Hold(sim.Microsecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Errorf("behavior calls = %d", calls)
	}
	if res.Makespan != 4*sim.Microsecond {
		t.Errorf("makespan = %v, want 4us", res.Makespan)
	}
}

func TestTraceWellFormed(t *testing.T) {
	tr := trace.New()
	m, gs := testMachine(2, 3)
	if _, err := Run(pipelineGraph(20, 1e5), m, gs, Config{CoresPerNode: 3, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if tr.Len() != 40 {
		t.Errorf("trace events = %d, want 40", tr.Len())
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() sim.Time {
		m, gs := testMachine(4, 3)
		res, err := Run(pipelineGraph(50, 2e5), m, gs, Config{CoresPerNode: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic: %v vs %v", got, first)
		}
	}
}

func TestAffinityOutOfRangeFails(t *testing.T) {
	g := fanGraph(4, 1e6, 8) // affinity mod 8 on a 2-node machine
	m, gs := testMachine(2, 1)
	if _, err := Run(g, m, gs, Config{CoresPerNode: 1}); err == nil {
		t.Error("out-of-range affinity accepted")
	}
}

func TestZeroCoresRejected(t *testing.T) {
	m, gs := testMachine(1, 1)
	if _, err := Run(fanGraph(1, 1, 1), m, gs, Config{}); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestByClassCounts(t *testing.T) {
	m, gs := testMachine(2, 2)
	res, err := Run(pipelineGraph(7, 1e4), m, gs, Config{CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByClass["SRC"] != 7 || res.ByClass["DST"] != 7 {
		t.Errorf("ByClass = %v", res.ByClass)
	}
	if fmt.Sprint(res) == "" {
		t.Error("empty result string")
	}
}

func TestQueueModesAllComplete(t *testing.T) {
	for _, mode := range []sched.QueueMode{sched.SharedQueue, sched.PerWorker, sched.PerWorkerSteal} {
		m, gs := testMachine(2, 3)
		res, err := Run(pipelineGraph(30, 1e5), m, gs, Config{CoresPerNode: 3, Queues: mode})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if res.Tasks != 60 {
			t.Errorf("mode %d: tasks = %d", mode, res.Tasks)
		}
	}
}

func TestStealingBeatsPinnedQueues(t *testing.T) {
	// Tasks all hash (by Seq) onto a skewed subset of workers when the
	// domain is small relative to cores; without stealing, load imbalance
	// hurts. Build a graph whose tasks all land on worker 0's queue.
	build := func() *ptg.Graph {
		g := ptg.NewGraph("skew")
		c := g.Class("T")
		c.Domain = func(emit func(ptg.Args)) {
			for i := 0; i < 16; i++ {
				emit(ptg.A1(i * 4)) // Seq = i, but pinning uses Seq%cores
			}
		}
		c.Affinity = func(a ptg.Args) int { return 0 }
		c.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: 1e9} }
		return g
	}
	run := func(mode sched.QueueMode) sim.Time {
		m, gs := testMachine(1, 4)
		res, err := Run(build(), m, gs, Config{CoresPerNode: 4, Queues: mode})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	pinned := run(sched.PerWorker)
	steal := run(sched.PerWorkerSteal)
	shared := run(sched.SharedQueue)
	// Pinned distributes Seq%4 evenly here, so give it a fair chance; the
	// invariant we rely on is only that stealing and the shared queue are
	// never slower than pinned queues.
	if steal > pinned || shared > pinned {
		t.Errorf("stealing (%v) or shared (%v) slower than pinned (%v)", steal, shared, pinned)
	}
}

func TestCommThreadFIFO(t *testing.T) {
	// Transfers are served in enqueue order by the node's comm thread:
	// with a single core producing SRC(0..n) in priority order and all
	// payloads equal, DST tasks must become ready in the same order.
	const n = 8
	g := pipelineGraph(n, 1e6)
	src := g.ClassByName("SRC")
	src.Priority = func(a ptg.Args) int64 { return int64(n - a[0]) } // SRC 0 first
	tr := trace.New()
	m, gs := testMachine(2, 1)
	if _, err := Run(g, m, gs, Config{CoresPerNode: 1, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	var dsts []string
	for _, e := range tr.Events() {
		if e.Node == 1 {
			dsts = append(dsts, e.Label)
		}
	}
	for i, label := range dsts {
		want := fmt.Sprintf("DST(%d,0,0)", i)
		if label != want {
			t.Fatalf("DST order[%d] = %s, want %s (comm not FIFO)", i, label, want)
		}
	}
}

func TestHorizonAborts(t *testing.T) {
	m, gs := testMachine(1, 1)
	_, err := Run(fanGraph(100, 1e12, 1), m, gs, Config{CoresPerNode: 1, Horizon: sim.Second})
	if err == nil {
		t.Error("horizon-truncated run reported success")
	}
}

func TestCounterTracksRecorded(t *testing.T) {
	m, gs := testMachine(2, 2)
	tr := trace.New()
	if _, err := Run(pipelineGraph(10, 1e6), m, gs, Config{CoresPerNode: 2, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, c := range tr.Counters() {
		names[c.Name]++
		if c.Value < 0 {
			t.Fatalf("negative counter sample: %+v", c)
		}
	}
	if names["ready tasks"] == 0 {
		t.Error("no ready-tasks samples recorded")
	}
	if names["comm bytes in flight"] == 0 {
		t.Error("no comm-bytes samples recorded")
	}
	// Every queue push pairs with a pop: the ready-tasks track must have
	// an even number of samples and end at zero on each node.
	last := map[int]float64{}
	for _, c := range tr.Counters() {
		if c.Name == "ready tasks" {
			last[c.Node] = c.Value
		}
	}
	for node, v := range last {
		if v != 0 {
			t.Errorf("node %d ready-tasks track ends at %g, want 0", node, v)
		}
	}
}

func TestBytesByClassSumsToBytesSent(t *testing.T) {
	m, gs := testMachine(2, 2)
	res, err := Run(pipelineGraph(10, 1e6), m, gs, Config{CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, b := range res.BytesByClass {
		sum += b
	}
	if sum != res.BytesSent {
		t.Errorf("BytesByClass sums to %d, BytesSent = %d", sum, res.BytesSent)
	}
	if res.BytesByClass["DST"] != res.BytesSent {
		t.Errorf("all transfers target DST, got %v", res.BytesByClass)
	}
}

func TestNoCountersWithoutTrace(t *testing.T) {
	m, gs := testMachine(2, 2)
	if _, err := Run(pipelineGraph(4, 1e6), m, gs, Config{CoresPerNode: 2}); err != nil {
		t.Fatal(err)
	}
}
