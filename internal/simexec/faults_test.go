package simexec

import (
	"strings"
	"testing"

	"parsec/internal/cluster"
	"parsec/internal/fault"
	"parsec/internal/ga"
	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/sim"
)

// faultMachine is testMachine with a fault injector installed.
func faultMachine(nodes, cores int, fc fault.Config) (*cluster.Machine, *ga.Sim, *fault.Injector) {
	cfg := cluster.CascadeLike()
	cfg.Nodes = nodes
	cfg.CoresPerNode = cores
	cfg.JitterFrac = 0
	e := sim.NewEngine()
	m := cluster.New(e, cfg)
	inj := fault.New(fc)
	m.SetFaults(inj)
	return m, ga.NewSim(m), inj
}

// TestRetryTimeoutAndBackoffCharged pins the retry state machine's
// timing: a seeded schedule whose single transfer drops exactly once
// must finish exactly one detection timeout plus one initial backoff
// later than the fault-free run.
func TestRetryTimeoutAndBackoffCharged(t *testing.T) {
	const dropProb = 0.6
	// Find a seed whose transfer stream is (drop, clean success, ...).
	seed := uint64(0)
	for s := uint64(1); s < 10000; s++ {
		probe := fault.New(fault.Config{Seed: s, DropProb: dropProb})
		first, second := probe.Transfer(0, 1), probe.Transfer(0, 1)
		if first.Drop && !second.Drop && !second.AckDrop && second.Extra == 0 {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no suitable seed found")
	}

	pol := RetryPolicy{
		Timeout:    300 * sim.Microsecond,
		Backoff:    70 * sim.Microsecond,
		BackoffCap: 500 * sim.Microsecond,
		MaxRetries: 5,
	}
	g := pipelineGraph(1, 1e6)

	m0, gs0 := testMachine(2, 1)
	base, err := Run(g, m0, gs0, Config{CoresPerNode: 1, Retry: pol})
	if err != nil {
		t.Fatal(err)
	}
	m1, gs1, inj := faultMachine(2, 1, fault.Config{Seed: seed, DropProb: dropProb})
	res, err := Run(pipelineGraph(1, 1e6), m1, gs1, Config{CoresPerNode: 1, Retry: pol})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops != 1 || res.Retries != 1 || res.DupSuppressed != 0 {
		t.Fatalf("drops=%d retries=%d dups=%d, want 1/1/0", res.Drops, res.Retries, res.DupSuppressed)
	}
	if res.BackoffTime != pol.Backoff {
		t.Errorf("BackoffTime = %v, want %v", res.BackoffTime, pol.Backoff)
	}
	want := base.Makespan + pol.Timeout + pol.Backoff
	if res.Makespan != want {
		t.Errorf("makespan = %v, want fault-free %v + timeout + backoff = %v", res.Makespan, base.Makespan, want)
	}
	if st := inj.Stats(); st.Drops != 1 {
		t.Errorf("injector ledger drops = %d", st.Drops)
	}
	// The retransmission is extra wire volume, not extra logical traffic.
	if res.Transfers != 1 || res.RetransmitBytes != 1e6 {
		t.Errorf("transfers=%d retransmit=%d, want 1/1e6", res.Transfers, res.RetransmitBytes)
	}
}

// TestRetryExhaustionFailsRun: a permanently lossy link must surface a
// clear error after MaxRetries retransmissions, not hang.
func TestRetryExhaustionFailsRun(t *testing.T) {
	m, gs, _ := faultMachine(2, 1, fault.Config{Seed: 1, DropProb: 1})
	pol := DefaultRetryPolicy()
	pol.MaxRetries = 3
	_, err := Run(pipelineGraph(1, 1e6), m, gs, Config{CoresPerNode: 1, Retry: pol})
	if err == nil {
		t.Fatal("expected retries-exhausted error")
	}
	if !strings.Contains(err.Error(), "retries exhausted") {
		t.Errorf("error = %v, want mention of retry exhaustion", err)
	}
}

// TestAckDropDuplicatesSuppressed: lost acks make the sender retransmit
// payloads the receiver already consumed. Every such duplicate must be
// suppressed — one slipping through would fail the run with the
// tracker's duplicate-delivery error.
func TestAckDropDuplicatesSuppressed(t *testing.T) {
	m, gs, inj := faultMachine(2, 2, fault.Config{Seed: 11, AckDropProb: 0.4})
	res, err := Run(pipelineGraph(40, 1e5), m, gs, Config{CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.AckDrops == 0 {
		t.Fatal("schedule injected no ack drops; pick another seed")
	}
	if res.DupSuppressed != res.AckDrops {
		t.Errorf("DupSuppressed = %d, AckDrops = %d; every ack loss must yield exactly one suppressed duplicate",
			res.DupSuppressed, res.AckDrops)
	}
	if res.Retries != res.AckDrops {
		t.Errorf("Retries = %d, want %d (one retransmission per lost ack)", res.Retries, res.AckDrops)
	}
	// Logical traffic is unchanged: 40 transfers, duplicates excluded.
	if res.Transfers != 40 || res.BytesSent != 40e5 {
		t.Errorf("transfers=%d bytes=%d, want 40/40e5", res.Transfers, res.BytesSent)
	}
	if st := inj.Stats(); int(st.AckDrops) != res.AckDrops {
		t.Errorf("ledger ack drops = %d, result %d", st.AckDrops, res.AckDrops)
	}
}

// TestSpikeLatencyCharged: a spike on every transfer delays the serial
// pipeline by exactly n spikes.
func TestSpikeLatencyCharged(t *testing.T) {
	const n, spike = 5, 400 * sim.Microsecond
	m0, gs0 := testMachine(2, 1)
	base, err := Run(pipelineGraph(n, 1e5), m0, gs0, Config{CoresPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	m1, gs1, _ := faultMachine(2, 1, fault.Config{Seed: 5, SpikeProb: 1, SpikeLatency: spike})
	res, err := Run(pipelineGraph(n, 1e5), m1, gs1, Config{CoresPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < base.Makespan+n*spike {
		t.Errorf("makespan %v < fault-free %v + %d spikes", res.Makespan, base.Makespan, n)
	}
}

// stragglerGraph builds per-node two-stage work: SRC(i) feeds DST(i) a
// payload on the same node, so a re-dispatched DST must move its input
// across the wire.
func stragglerGraph(n int, nodes int, bytes int64) *ptg.Graph {
	g := ptg.NewGraph("straggle")
	src := g.Class("SRC")
	src.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	src.Affinity = func(a ptg.Args) int { return a[0] % nodes }
	src.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: 2e8} }
	src.FlowBytes = func(a ptg.Args, flow string) int64 { return bytes }
	src.AddFlow("D", ptg.Write).
		InNew(nil, func(a ptg.Args) int64 { return bytes }).
		Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "DST", Args: a}, "D"
		})
	dst := g.Class("DST")
	dst.Domain = src.Domain
	dst.Affinity = src.Affinity
	dst.Cost = func(a ptg.Args) ptg.Cost { return ptg.Cost{Flops: 2e9} }
	dst.AddFlow("D", ptg.Read).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "SRC", Args: a}, "D"
		})
	return g
}

// TestInterNodeStealUnderStraggler is the tentpole's recovery claim in
// miniature: with one node slowed 8x, the inter-node re-dispatch path
// must migrate queued tasks off it and recover well over half of the
// span the pinned configuration loses.
func TestInterNodeStealUnderStraggler(t *testing.T) {
	const nodes, cores, n = 4, 2, 96
	run := func(fc *fault.Config, interNode bool) (Result, *fault.Injector) {
		var inj *fault.Injector
		cfg := cluster.CascadeLike()
		cfg.Nodes = nodes
		cfg.CoresPerNode = cores
		cfg.JitterFrac = 0
		e := sim.NewEngine()
		m := cluster.New(e, cfg)
		if fc != nil {
			inj = fault.New(*fc)
			m.SetFaults(inj)
		}
		res, err := Run(stragglerGraph(n, nodes, 2e5), m, ga.NewSim(m), Config{
			CoresPerNode:   cores,
			Queues:         sched.PerWorkerSteal,
			InterNodeSteal: interNode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, inj
	}
	slow := fault.Config{Seed: 9, Stragglers: []fault.Straggler{{Node: 0, Factor: 8}}}

	clean, _ := run(nil, false)
	pinned, _ := run(&slow, false)
	stolen, inj := run(&slow, true)

	if stolen.Redispatches == 0 {
		t.Fatal("no tasks were re-dispatched off the straggler")
	}
	if stolen.RedispatchBytes == 0 {
		t.Fatal("re-dispatched tasks moved no input bytes; their GETs should move with them")
	}
	lossPinned := pinned.Makespan - clean.Makespan
	lossStolen := stolen.Makespan - clean.Makespan
	if lossPinned <= 0 {
		t.Fatalf("straggler did not hurt the pinned run (loss %v)", lossPinned)
	}
	if lossStolen*2 >= lossPinned {
		t.Errorf("re-dispatch recovered too little: loss %v vs pinned loss %v (want < half)", lossStolen, lossPinned)
	}
	if st := inj.Stats(); st.TotalStragglerExcess() == 0 {
		t.Error("injector ledger recorded no straggler excess")
	}
}

// TestInterNodeStealRequiresPerWorkerSteal: configuration guard.
func TestInterNodeStealRequiresPerWorkerSteal(t *testing.T) {
	m, gs := testMachine(2, 1)
	_, err := Run(pipelineGraph(1, 1e5), m, gs, Config{CoresPerNode: 1, InterNodeSteal: true})
	if err == nil {
		t.Fatal("expected config error for InterNodeSteal without sched.PerWorkerSteal")
	}
}

// TestBehaviorTasksNeverMigrate: classes with a Behavior model
// node-resident state and must stay pinned even under a straggler.
func TestBehaviorTasksNeverMigrate(t *testing.T) {
	const nodes, cores, n = 2, 1, 24
	cfg := cluster.CascadeLike()
	cfg.Nodes = nodes
	cfg.CoresPerNode = cores
	cfg.JitterFrac = 0
	e := sim.NewEngine()
	m := cluster.New(e, cfg)
	m.SetFaults(fault.New(fault.Config{Stragglers: []fault.Straggler{{Node: 0, Factor: 16}}}))
	gs := ga.NewSim(m)
	behaved := make(map[int]bool)
	res, err := Run(fanGraph(n, 1e9, nodes), m, gs, Config{
		CoresPerNode:   cores,
		Queues:         sched.PerWorkerSteal,
		InterNodeSteal: true,
		Behaviors: map[string]Behavior{
			"T": func(ctx *TaskCtx) {
				behaved[ctx.Node] = true
				if ctx.Node != ctx.Inst.Node {
					t.Errorf("%v executed on node %d, affinity %d", ctx.Inst.Ref, ctx.Node, ctx.Inst.Node)
				}
				ctx.M.Compute(ctx.P, ctx.Node, 1e9, 0, false)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Redispatches != 0 {
		t.Errorf("behavior-backed tasks migrated %d times", res.Redispatches)
	}
	if !behaved[0] || !behaved[1] {
		t.Error("behavior did not run on both nodes")
	}
}
