// Package tune searches the recipe space for the graph shape with the
// best simulated makespan on a given machine. It is the autotuning loop
// the variant refactor buys: once v1–v5 are just points in a continuous
// space of transformation passes (segment height, reduction-tree arity,
// sort/write fission, write span, priority scheme), a search can walk
// that space with the discrete-event simulator as its oracle and
// rediscover — or beat — the paper's hand-derived §V progression without
// being told it.
//
// The search is a seeded steepest-descent hill climb: from the start
// recipe it enumerates every single-pass mutation of the current best
// shape, statically prunes candidates whose lower bound (the ParaGraph
// lesson: duration-weighted critical path and total-work/total-cores,
// whichever is larger) already exceeds the best makespan seen, simulates
// the survivors, and moves to the best improving neighbor until no
// neighbor improves or the evaluation budget runs out. Everything is
// deterministic for a fixed seed: the simulator's jitter stream is
// seeded by the cluster config, and the only randomness here is the
// seeded shuffle of neighbor visit order (which matters only when the
// budget truncates a round).
package tune

import (
	"fmt"
	"math/rand"

	"parsec/internal/ccsd"
	"parsec/internal/cluster"
	"parsec/internal/molecule"
	"parsec/internal/ptg"
	"parsec/internal/tce"
	"parsec/internal/xform"
)

// Config parameterizes one tuning run.
type Config struct {
	// Sys is the molecular system to tune for.
	Sys *molecule.System
	// Kernel names the TCE kernel ("t2_7" or "t1_2"); empty means t2_7.
	Kernel string
	// Cluster is the simulated machine; its Seed fixes the jitter stream.
	Cluster cluster.Config
	// CoresPerNode is the executor worker count per node.
	CoresPerNode int
	// Start is the recipe the climb starts from (e.g. "v1").
	Start string
	// Budget caps the number of simulator evaluations (pruned candidates
	// are analyzed statically but not simulated and do not count).
	// Budget < 1 means 64.
	Budget int
	// Seed drives the neighbor-order shuffle.
	Seed int64
}

// Eval is one scored (or pruned) candidate in the search history.
type Eval struct {
	// Round is the hill-climbing round the candidate was generated in
	// (round 0 is the start recipe itself).
	Round int `json:"round"`
	// Recipe is the candidate's canonical shape string.
	Recipe string `json:"recipe"`
	// BoundNs is the static lower bound on makespan: max(critical path,
	// total work / total cores) under uncontended machine rates.
	BoundNs int64 `json:"bound_ns"`
	// MakespanNs is the simulated makespan; zero when Pruned.
	MakespanNs int64 `json:"makespan_ns,omitempty"`
	// Pruned marks candidates skipped because BoundNs already met or
	// exceeded the best simulated makespan at the time.
	Pruned bool `json:"pruned,omitempty"`
}

// Result is the outcome of a tuning run. It contains no wall-clock
// timestamps so that a fixed-seed run serializes bit-identically.
type Result struct {
	// System, Kernel, Nodes, Cores identify the tuned configuration.
	System string `json:"system"`
	Kernel string `json:"kernel"`
	Nodes  int    `json:"nodes"`
	Cores  int    `json:"cores"`
	// Seed and Budget echo the search parameters.
	Seed   int64 `json:"seed"`
	Budget int   `json:"budget"`
	// Start is the canonical shape the climb started from, Best the
	// canonical shape it ended on.
	Start string `json:"start"`
	Best  string `json:"best"`
	// BestName is the paper name (v1..v5) whose shape equals Best, if
	// any — the search itself never consults the named recipes.
	BestName string `json:"best_name,omitempty"`
	// StartMakespanNs and BestMakespanNs are the simulated makespans at
	// the two endpoints.
	StartMakespanNs int64 `json:"start_makespan_ns"`
	BestMakespanNs  int64 `json:"best_makespan_ns"`
	// Evals counts simulator runs, Pruned the candidates rejected on
	// static bounds alone, Rounds the hill-climbing rounds completed.
	Evals  int `json:"evals"`
	Pruned int `json:"pruned"`
	Rounds int `json:"rounds"`
	// History lists every candidate in visit order.
	History []Eval `json:"history"`
}

// Run executes the search. The returned Result is deterministic for a
// fixed Config (including Cluster.Seed and Seed).
func Run(cfg Config) (*Result, error) {
	if cfg.Sys == nil {
		return nil, fmt.Errorf("tune: nil system")
	}
	if cfg.CoresPerNode < 1 {
		return nil, fmt.Errorf("tune: CoresPerNode = %d", cfg.CoresPerNode)
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget < 1 {
		budget = 64
	}
	start := cfg.Start
	if start == "" {
		start = "v1"
	}
	startRecipe, err := xform.Parse(start)
	if err != nil {
		return nil, err
	}
	startShape, err := startRecipe.Shape()
	if err != nil {
		return nil, err
	}
	k, err := tce.KernelByName(cfg.Kernel, cfg.Sys)
	if err != nil {
		return nil, err
	}

	s := &searcher{
		cfg:     cfg,
		budget:  budget,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		visited: map[string]bool{},
		w:       tce.Inspect(k, nil),
		res: &Result{
			System: cfg.Sys.Name,
			Kernel: kernelName(cfg.Kernel),
			Nodes:  cfg.Cluster.Nodes,
			Cores:  cfg.CoresPerNode,
			Seed:   cfg.Seed,
			Budget: budget,
			Start:  startShape.Canon(),
		},
	}

	best := startShape.Normalize()
	s.visited[best.Canon()] = true
	bound, err := s.staticBound(best)
	if err != nil {
		return nil, err
	}
	bestMs, err := s.simulate(best)
	if err != nil {
		return nil, err
	}
	s.res.History = append(s.res.History, Eval{Round: 0, Recipe: best.Canon(), BoundNs: bound, MakespanNs: bestMs})
	s.res.StartMakespanNs = bestMs

	for round := 1; s.evals < s.budget; round++ {
		nbs := neighbors(best)
		s.rng.Shuffle(len(nbs), func(i, j int) { nbs[i], nbs[j] = nbs[j], nbs[i] })
		moved := false
		for _, nb := range nbs {
			canon := nb.Canon()
			if s.visited[canon] {
				continue
			}
			s.visited[canon] = true
			if s.evals >= s.budget {
				break
			}
			ms, err := s.scoreOrPrune(nb, bestMs, round)
			if err != nil {
				return nil, err
			}
			if ms > 0 && ms < bestMs {
				best, bestMs, moved = nb, ms, true
			}
		}
		s.res.Rounds = round
		if !moved {
			break
		}
	}

	s.res.Best = best.Canon()
	s.res.BestMakespanNs = bestMs
	for _, r := range xform.Named() {
		if sh, err := r.Shape(); err == nil && sh.Canon() == s.res.Best {
			s.res.BestName = r.Name
			break
		}
	}
	return s.res, nil
}

// searcher carries the mutable state of one Run.
type searcher struct {
	cfg     Config
	budget  int
	evals   int
	rng     *rand.Rand
	visited map[string]bool
	res     *Result
	w       *tce.Workload
}

// scoreOrPrune statically bounds a candidate and either records a prune
// (bound cannot beat bestMs) or simulates it. Returns the simulated
// makespan, 0 when pruned.
func (s *searcher) scoreOrPrune(sh xform.Shape, bestMs int64, round int) (int64, error) {
	bound, err := s.staticBound(sh)
	if err != nil {
		return 0, err
	}
	if bound >= bestMs {
		s.res.Pruned++
		s.res.History = append(s.res.History, Eval{Round: round, Recipe: sh.Canon(), BoundNs: bound, Pruned: true})
		return 0, nil
	}
	ms, err := s.simulate(sh)
	if err != nil {
		return 0, err
	}
	s.res.History = append(s.res.History, Eval{Round: round, Recipe: sh.Canon(), BoundNs: bound, MakespanNs: ms})
	return ms, nil
}

// simulate runs the discrete-event simulator on the shape's graph and
// returns its makespan, charging one evaluation against the budget.
func (s *searcher) simulate(sh xform.Shape) (int64, error) {
	spec, err := specFor(sh)
	if err != nil {
		return 0, err
	}
	res, err := ccsd.RunSim(s.cfg.Sys, spec, s.cfg.Cluster, ccsd.SimRunConfig{
		CoresPerNode: s.cfg.CoresPerNode,
		Kernel:       s.cfg.Kernel,
	})
	if err != nil {
		return 0, err
	}
	s.evals++
	s.res.Evals = s.evals
	return int64(res.Makespan), nil
}

// staticBound builds the candidate's graph and computes the ParaGraph-
// style lower bound on any schedule's makespan: the duration-weighted
// critical path, and total work spread perfectly over every core,
// whichever is larger. Durations use uncontended machine rates (compute
// at CoreGFlops, memory at MemBWBytes with the GEMM traffic factor), so
// the bound is optimistic — safe to prune on, never to rank by.
func (s *searcher) staticBound(sh xform.Shape) (int64, error) {
	spec, err := specFor(sh)
	if err != nil {
		return 0, err
	}
	g := ccsd.BuildGraph(s.w, spec, ccsd.Options{Nodes: s.cfg.Cluster.Nodes})
	mcfg := s.cfg.Cluster
	dur := func(in *ptg.Instance) int64 {
		if in.Class.Cost == nil {
			return 0
		}
		c := in.Class.Cost(in.Ref.Args)
		sec := float64(c.Flops)/(mcfg.CoreGFlops*1e9) +
			(float64(c.MemBytes)+mcfg.GemmMemTraffic*float64(c.GemmBytes))/mcfg.MemBWBytes
		return int64(sec * 1e9)
	}
	a, err := ptg.Analyze(g, dur)
	if err != nil {
		return 0, err
	}
	bound := a.CriticalPath
	cores := int64(mcfg.Nodes * s.cfg.CoresPerNode)
	if perfect := (a.TotalWork + cores - 1) / cores; perfect > bound {
		bound = perfect
	}
	return bound, nil
}

// neighbors enumerates every shape reachable from s by one
// transformation pass, in a fixed order. Invalid applications (a pass
// precondition fails) are skipped; normalization collapses moot
// dimensions so equivalent spellings dedupe upstream.
func neighbors(s xform.Shape) []xform.Shape {
	var passes []xform.Pass
	if s.SegHeight == 0 {
		passes = append(passes, xform.SplitChain{Height: 1}, xform.SplitChain{Height: 2}, xform.SplitChain{Height: 4})
	} else {
		passes = append(passes,
			xform.SplitChain{Height: s.SegHeight + 1},
			xform.FuseSegments{Factor: 2},
			xform.FuseChain{},
		)
		if s.SegHeight > 1 {
			passes = append(passes, xform.SplitChain{Height: s.SegHeight - 1})
		}
		passes = append(passes, xform.ReshapeReduction{Arity: s.TreeArity + 1})
		if s.TreeArity > 2 {
			passes = append(passes, xform.ReshapeReduction{Arity: s.TreeArity - 1})
		}
	}
	if s.WriteFission {
		passes = append(passes, xform.FuseWrites{})
	} else if s.SortFission {
		passes = append(passes, xform.FissionWrites{}, xform.FuseSorts{})
	} else {
		passes = append(passes, xform.FissionSorts{})
	}
	if !s.WriteFission {
		passes = append(passes, xform.SpanWrites{Span: s.WriteSpan * 2})
		if s.WriteSpan > 1 {
			passes = append(passes, xform.SpanWrites{Span: s.WriteSpan / 2})
		}
	}
	if s.Prio == xform.PrioPaper {
		passes = append(passes, xform.Prioritize{Scheme: xform.PrioNone})
	} else {
		passes = append(passes, xform.Prioritize{Scheme: xform.PrioPaper})
	}

	var out []xform.Shape
	for _, p := range passes {
		nb, err := p.Apply(s)
		if err != nil {
			continue
		}
		nb = nb.Normalize()
		if err := nb.Validate(); err != nil {
			continue
		}
		out = append(out, nb)
	}
	return out
}

// specFor converts a normalized shape to a buildable variant spec.
func specFor(sh xform.Shape) (ccsd.VariantSpec, error) {
	r, err := xform.FromShape(sh)
	if err != nil {
		return ccsd.VariantSpec{}, err
	}
	return ccsd.VariantFromRecipe(r), nil
}

// kernelName normalizes the kernel label for reports.
func kernelName(k string) string {
	if k == "" {
		return "t2_7"
	}
	return k
}
