package tune

import (
	"encoding/json"
	"testing"

	"parsec/internal/ccsd"
	"parsec/internal/cluster"
	"parsec/internal/molecule"
)

// quickCfg is a small-but-real tuning configuration: uracil on an
// 8-node slice of the Cascade model. Big enough that the §V variant
// ordering holds, small enough for CI.
func quickCfg() Config {
	mcfg := cluster.CascadeLike()
	mcfg.Nodes = 8
	sys, err := molecule.Preset("uracil")
	if err != nil {
		panic(err)
	}
	return Config{
		Sys:          sys,
		Cluster:      mcfg,
		CoresPerNode: 7,
		Start:        "v1",
		Budget:       24,
		Seed:         1833,
	}
}

// TestRediscoversPaperProgression is the acceptance criterion for the
// tuner: started from v1 with no knowledge of the named recipes, the
// climb must end on a shape whose simulated makespan is no worse than
// hand-derived v5's on the same machine.
func TestRediscoversPaperProgression(t *testing.T) {
	cfg := quickCfg()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v5, err := ccsd.VariantByName("v5")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ccsd.RunSim(cfg.Sys, v5, cfg.Cluster, ccsd.SimRunConfig{CoresPerNode: cfg.CoresPerNode})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMakespanNs > int64(ref.Makespan) {
		t.Errorf("tuned recipe %q makespan %d ns worse than v5's %d ns", res.Best, res.BestMakespanNs, int64(ref.Makespan))
	}
	if res.BestMakespanNs >= res.StartMakespanNs {
		t.Errorf("no improvement over start: %d -> %d ns", res.StartMakespanNs, res.BestMakespanNs)
	}
	if res.Evals > cfg.Budget {
		t.Errorf("evals %d exceeded budget %d", res.Evals, cfg.Budget)
	}
	t.Logf("start %s (%d ns) -> best %s %s (%d ns) in %d evals, %d pruned, %d rounds",
		res.Start, res.StartMakespanNs, res.Best, res.BestName, res.BestMakespanNs, res.Evals, res.Pruned, res.Rounds)
}

// TestDeterministic pins bit-reproducibility: two runs with the same
// config must serialize to identical JSON (the property docs/tune.json
// relies on).
func TestDeterministic(t *testing.T) {
	a, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("same seed produced different results")
	}
	// A different seed may visit in a different order but must still
	// return a valid result.
	cfg := quickCfg()
	cfg.Seed = 7
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestHistoryAccounting checks the ledger adds up: every history row is
// either pruned or simulated, and the counters match.
func TestHistoryAccounting(t *testing.T) {
	res, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sims, pruned := 0, 0
	seen := map[string]bool{}
	for _, e := range res.History {
		if seen[e.Recipe] {
			t.Errorf("recipe %q visited twice", e.Recipe)
		}
		seen[e.Recipe] = true
		if e.Pruned {
			pruned++
			if e.MakespanNs != 0 {
				t.Errorf("pruned row %q has a makespan", e.Recipe)
			}
		} else {
			sims++
			if e.MakespanNs <= 0 {
				t.Errorf("simulated row %q has no makespan", e.Recipe)
			}
			if e.BoundNs > e.MakespanNs {
				t.Errorf("%q: static bound %d exceeds simulated makespan %d — not a lower bound",
					e.Recipe, e.BoundNs, e.MakespanNs)
			}
		}
	}
	if sims != res.Evals || pruned != res.Pruned {
		t.Errorf("history sims/pruned = %d/%d, counters = %d/%d", sims, pruned, res.Evals, res.Pruned)
	}
}
