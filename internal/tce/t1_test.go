package tce

import (
	"testing"

	"parsec/internal/molecule"
	"parsec/internal/tensor"
)

func TestT1WorkloadWellFormed(t *testing.T) {
	sys := molecule.Water631G()
	w := Inspect(T1_2(sys), nil)
	if w.NumChains() == 0 {
		t.Fatal("no T1 chains")
	}
	for _, c := range w.Chains {
		if len(c.Sorts) != 1 {
			t.Fatalf("T1 chain %d has %d sorts, want 1", c.ID, len(c.Sorts))
		}
		if c.Sorts[0].Perm != [4]int{0, 1, 2, 3} || c.Sorts[0].Sign != 1 {
			t.Fatalf("T1 sort is not the identity: %+v", c.Sorts[0])
		}
		if c.Out.Dims[2] != 1 || c.Out.Dims[3] != 1 {
			t.Fatalf("T1 output block not 2-index: dims %v", c.Out.Dims)
		}
		for _, g := range c.Gemms {
			if g.Op.N != 1 {
				t.Fatalf("T1 GEMM N = %d, want 1", g.Op.N)
			}
			if g.Op.B.Tensor != TensorF {
				t.Fatalf("T1 B tensor = %s", g.Op.B.Tensor)
			}
			if g.Op.M != g.Op.A.Dims[2]*g.Op.A.Dims[3] || g.Op.K != g.Op.A.Dims[0]*g.Op.A.Dims[1] {
				t.Fatal("T1 GEMM dims inconsistent with A block")
			}
		}
	}
	aName, bName := w.InputTensors()
	if aName != TensorA || bName != TensorF {
		t.Errorf("InputTensors = %s, %s", aName, bName)
	}
}

func TestT1ReferenceMatchesDirectSum(t *testing.T) {
	sys := molecule.Water631G()
	w := Inspect(T1_2(sys), nil)
	a, b := w.Materialize()
	out := w.RunReference(a, b)

	// Recompute one chain naively: i0[m] = sum_k A[k,m] * B[k].
	c := w.Chains[0]
	want := tensor.NewTile4(c.Out.Dims[0], c.Out.Dims[1], 1, 1)
	for _, g := range c.Gemms {
		at := a.MustTile(g.Op.A.Key)
		bt := b.MustTile(g.Op.B.Key)
		for m := 0; m < g.Op.M; m++ {
			var s float64
			for k := 0; k < g.Op.K; k++ {
				s += at.Data[k*g.Op.M+m] * bt.Data[k]
			}
			want.Data[m] += s
		}
	}
	got := out.MustTile(c.Out.Key)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("T1 reference block differs by %g", d)
	}
}

func TestT1SeparateEnergyFromT2(t *testing.T) {
	sys := molecule.Water631G()
	t1 := Inspect(T1_2(sys), nil)
	t2 := Inspect(T2_7(sys), nil)
	a1, b1 := t1.Materialize()
	a2, b2 := t2.Materialize()
	e1 := t1.Energy(t1.RunReference(a1, b1))
	e2 := t2.Energy(t2.RunReference(a2, b2))
	if e1 == 0 || e2 == 0 || e1 == e2 {
		t.Errorf("degenerate kernel energies: %v, %v", e1, e2)
	}
}

func TestT1InspectorLocator(t *testing.T) {
	sys := molecule.Water631G()
	w := Inspect(T1_2(sys), func(b BlockRef) int { return 1 })
	for _, c := range w.Chains {
		if c.OutNode != 1 || c.Gemms[0].ANode != 1 || c.Gemms[0].BNode != 1 {
			t.Fatal("locator not applied to T1 workload")
		}
	}
}
