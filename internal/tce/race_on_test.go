//go:build race

package tce

// raceEnabled gates allocation-count tests: the race detector's
// instrumentation allocates inside sync.Pool, making AllocsPerRun
// meaningless under -race.
const raceEnabled = true
