package tce

import (
	"fmt"
	"sort"
	"strings"
)

// GemmMeta is one entry of the inspection phase's metadata arrays: the
// iteration vector of a GEMM, the blocks it touches, and — once the
// Global Arrays library has been queried — the node that owns each block
// (§III-B: "we store the pointers to the data ... as well as the
// iteration vector into a meta-data array").
type GemmMeta struct {
	Op           GemmOp
	ANode, BNode int // owners of the input blocks (-1 if no locator)
}

// ChainMeta groups the metadata of one chain of GEMMs.
type ChainMeta struct {
	ID      int
	Out     BlockRef
	OutNode int    // owner of the output block (-1 if no locator)
	CDims   [4]int // GEMM-layout dims (p3, h1, p4, h2)
	Gemms   []GemmMeta
	Sorts   []SortOp
}

// CBytes returns the size of the chain's C buffer in bytes.
func (c *ChainMeta) CBytes() int64 {
	return int64(c.CDims[0]*c.CDims[1]*c.CDims[2]*c.CDims[3]) * 8
}

// Flops returns the total GEMM flops of the chain.
func (c *ChainMeta) Flops() int64 {
	var f int64
	for _, g := range c.Gemms {
		f += g.Op.Flops()
	}
	return f
}

// Workload is the result of the inspection phase: everything PaRSEC needs
// to instantiate the task graph — the number of chains (size_L1 in
// Fig 1), the length of each chain (size_L2), and per-GEMM block
// locations. It also serves the CGP baseline, which consumes chains as
// whole units of work.
type Workload struct {
	Kernel *Kernel
	Chains []*ChainMeta
}

// Locator maps a block to the node that owns its Global Array storage.
type Locator func(BlockRef) int

// inspector is the Emitter that fills the metadata arrays. It is the
// "slice of the original code that contains all the control flow
// statements but none of the subroutine calls" (§III-B).
type inspector struct {
	w   *Workload
	loc Locator
	cur *ChainMeta
}

func (in *inspector) locate(b BlockRef) int {
	if in.loc == nil {
		return -1
	}
	return in.loc(b)
}

func (in *inspector) StartChain(chain int, out BlockRef, cdims [4]int) {
	in.cur = &ChainMeta{ID: chain, Out: out, OutNode: in.locate(out), CDims: cdims}
}

func (in *inspector) Gemm(chain, pos int, g GemmOp) {
	if in.cur == nil || in.cur.ID != chain {
		panic(fmt.Sprintf("tce: Gemm for chain %d outside StartChain", chain))
	}
	if pos != len(in.cur.Gemms) {
		panic(fmt.Sprintf("tce: GEMM position %d, expected %d", pos, len(in.cur.Gemms)))
	}
	in.cur.Gemms = append(in.cur.Gemms, GemmMeta{
		Op:    g,
		ANode: in.locate(g.A),
		BNode: in.locate(g.B),
	})
}

func (in *inspector) EndChain(chain int, sorts []SortOp) {
	in.cur.Sorts = sorts
	in.w.Chains = append(in.w.Chains, in.cur)
	in.cur = nil
}

// Inspect runs the inspection phase for a kernel: it executes the control
// flow of the loop nest (without any computation or communication) and
// returns the filled metadata arrays. loc may be nil when block placement
// is not needed (e.g. shared-memory execution).
func Inspect(k *Kernel, loc Locator) *Workload {
	w := &Workload{Kernel: k}
	k.Walk(&inspector{w: w, loc: loc})
	return w
}

// NumChains returns the number of chains (the PTG's size_L1).
func (w *Workload) NumChains() int { return len(w.Chains) }

// ChainLen returns the number of GEMMs in chain i (the PTG's size_L2).
func (w *Workload) ChainLen(i int) int { return len(w.Chains[i].Gemms) }

// Stats summarizes a workload.
type Stats struct {
	Chains      int
	Gemms       int
	Sorts       int
	TotalFlops  int64
	InputBytes  int64 // bytes of A and B blocks fetched (with re-fetches)
	OutputBytes int64 // bytes of C blocks written once per chain
	MinLen      int
	MaxLen      int
	MeanLen     float64
}

// Stats computes summary statistics of the workload.
func (w *Workload) Stats() Stats {
	s := Stats{Chains: len(w.Chains), MinLen: int(^uint(0) >> 1)}
	for _, c := range w.Chains {
		n := len(c.Gemms)
		s.Gemms += n
		s.Sorts += len(c.Sorts)
		if n < s.MinLen {
			s.MinLen = n
		}
		if n > s.MaxLen {
			s.MaxLen = n
		}
		for _, g := range c.Gemms {
			s.TotalFlops += g.Op.Flops()
			s.InputBytes += g.Op.A.Bytes() + g.Op.B.Bytes()
		}
		s.OutputBytes += c.Out.Bytes()
	}
	if s.Chains > 0 {
		s.MeanLen = float64(s.Gemms) / float64(s.Chains)
	} else {
		s.MinLen = 0
	}
	return s
}

// String summarizes the workload's shape in one line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chains=%d gemms=%d sorts=%d flops=%.3g", s.Chains, s.Gemms, s.Sorts, float64(s.TotalFlops))
	fmt.Fprintf(&b, " chainLen=[%d..%d] mean=%.1f", s.MinLen, s.MaxLen, s.MeanLen)
	fmt.Fprintf(&b, " in=%.3gMB out=%.3gMB", float64(s.InputBytes)/1e6, float64(s.OutputBytes)/1e6)
	return b.String()
}

// UniqueBlocks returns the distinct input blocks of a tensor referenced by
// the workload, in deterministic order. Used to size and fill the Global
// Arrays before execution.
func (w *Workload) UniqueBlocks(tensorName string) []BlockRef {
	seen := make(map[string]BlockRef)
	for _, c := range w.Chains {
		if c.Out.Tensor == tensorName {
			seen[c.Out.String()] = c.Out
		}
		for _, g := range c.Gemms {
			if g.Op.A.Tensor == tensorName {
				seen[g.Op.A.String()] = g.Op.A
			}
			if g.Op.B.Tensor == tensorName {
				seen[g.Op.B.String()] = g.Op.B
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]BlockRef, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}
