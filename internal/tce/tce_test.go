package tce

import (
	"math"
	"testing"
	"testing/quick"

	"parsec/internal/molecule"
	"parsec/internal/tensor"
)

func TestSortBranchesMultiplicity(t *testing.T) {
	cases := []struct {
		p3, p4, h1, h2 int
		want           int
	}{
		{0, 1, 0, 1, 1}, // all strict: exactly one branch
		{0, 0, 0, 1, 2}, // p3 == p4
		{0, 1, 2, 2, 2}, // h1 == h2
		{3, 3, 2, 2, 4}, // both equal: all four branches
	}
	for _, c := range cases {
		got := SortBranches(c.p3, c.p4, c.h1, c.h2)
		if len(got) != c.want {
			t.Errorf("SortBranches(%d,%d,%d,%d) = %d branches, want %d",
				c.p3, c.p4, c.h1, c.h2, len(got), c.want)
		}
		if got[0].Branch != 0 {
			t.Error("branch 0 must always fire for canonical tiles")
		}
	}
}

func TestSortBranchDimsConsistent(t *testing.T) {
	// Every active branch of a canonical chain must produce a tile with
	// the output block's dims (precondition for accumulating variants).
	src := tensor.NewTile4(3, 2, 3, 2) // (p3, h1, p4, h2) with sz(p3)=sz(p4), sz(h1)=sz(h2)
	for _, s := range SortBranches(1, 1, 2, 2) {
		d := src.SortedDims(s.Perm)
		if d != [4]int{3, 3, 2, 2} {
			t.Errorf("branch %d dims %v, want (3,3,2,2)", s.Branch, d)
		}
	}
}

func TestWalkEmitsWellFormedChains(t *testing.T) {
	sys := molecule.Water631G()
	w := Inspect(T2_7(sys), nil)
	if w.NumChains() == 0 {
		t.Fatal("no chains emitted")
	}
	for i, c := range w.Chains {
		if c.ID != i {
			t.Fatalf("chain %d has ID %d", i, c.ID)
		}
		if len(c.Gemms) == 0 {
			t.Fatalf("chain %d empty (StartChain without GEMMs)", i)
		}
		if len(c.Sorts) == 0 || len(c.Sorts) > 4 {
			t.Fatalf("chain %d has %d sorts", i, len(c.Sorts))
		}
		for pos, g := range c.Gemms {
			op := g.Op
			// GEMM dims must match the block shapes.
			if op.M != op.A.Dims[2]*op.A.Dims[3] {
				t.Fatalf("chain %d pos %d: M=%d, A dims %v", i, pos, op.M, op.A.Dims)
			}
			if op.K != op.A.Dims[0]*op.A.Dims[1] || op.K != op.B.Dims[0]*op.B.Dims[1] {
				t.Fatalf("chain %d pos %d: K mismatch", i, pos)
			}
			if op.N != op.B.Dims[2]*op.B.Dims[3] {
				t.Fatalf("chain %d pos %d: N mismatch", i, pos)
			}
			// C dims (p3,h1,p4,h2) must agree with M and N.
			if c.CDims[0]*c.CDims[1] != op.M || c.CDims[2]*c.CDims[3] != op.N {
				t.Fatalf("chain %d: CDims %v vs M=%d N=%d", i, c.CDims, op.M, op.N)
			}
			// Iteration vector consistency: the A block's key is
			// (h7, p5, p3, h1).
			if op.A.Key != (tensor.BlockKey{op.Iter.H7, op.Iter.P5, op.Iter.P3, op.Iter.H1}) {
				t.Fatalf("chain %d pos %d: A key %v vs iter %v", i, pos, op.A.Key, op.Iter)
			}
			if op.B.Key != (tensor.BlockKey{op.Iter.H7, op.Iter.P5, op.Iter.P4, op.Iter.H2}) {
				t.Fatalf("chain %d pos %d: B key %v vs iter %v", i, pos, op.B.Key, op.Iter)
			}
		}
		// Canonical output ordering.
		if c.Out.Key[0] > c.Out.Key[1] || c.Out.Key[2] > c.Out.Key[3] {
			t.Fatalf("chain %d output %v not canonical", i, c.Out.Key)
		}
	}
}

func TestWalkRespectsSymmetry(t *testing.T) {
	sys := molecule.Water631G()
	k := T2_7(sys)
	w := Inspect(k, nil)
	for _, c := range w.Chains {
		for _, g := range c.Gemms {
			iv := g.Op.Iter
			p3, p4 := sys.Virt[iv.P3], sys.Virt[iv.P4]
			h1, h2 := sys.Occ[iv.H1], sys.Occ[iv.H2]
			h7, p5 := sys.Occ[iv.H7], sys.Virt[iv.P5]
			if !k.AAllowed(h7, p5, p3, h1) || !k.BAllowed(h7, p5, p4, h2) {
				t.Fatalf("emitted GEMM violates block symmetry: %v", iv)
			}
			if !k.OutAllowed(p3, p4, h1, h2) {
				t.Fatalf("emitted chain output violates symmetry: %v", iv)
			}
		}
	}
}

// Property: A-allowed and B-allowed imply Out-allowed (closure of the
// XOR irrep algebra and spin conservation) for arbitrary tile labels.
func TestPropertySymmetryClosure(t *testing.T) {
	f := func(s3, s4, s1, s2, s7, s5 bool, i3, i4, i1, i2, i7, i5 uint8) bool {
		mk := func(spin bool, irr uint8) molecule.Tile {
			sp := 0
			if spin {
				sp = 1
			}
			return molecule.Tile{Spin: sp, Irrep: int(irr % 8)}
		}
		p3, p4 := mk(s3, i3), mk(s4, i4)
		h1, h2 := mk(s1, i1), mk(s2, i2)
		h7, p5 := mk(s7, i7), mk(s5, i5)
		k := &Kernel{Sys: &molecule.System{NIrreps: 8}}
		if k.AAllowed(h7, p5, p3, h1) && k.BAllowed(h7, p5, p4, h2) {
			return k.OutAllowed(p3, p4, h1, h2)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInspectLocator(t *testing.T) {
	sys := molecule.Water631G()
	w := Inspect(T2_7(sys), func(b BlockRef) int {
		return int(b.Key[0]+b.Key[1]+b.Key[2]+b.Key[3]) % 3
	})
	for _, c := range w.Chains {
		if c.OutNode < 0 || c.OutNode > 2 {
			t.Fatalf("OutNode %d out of range", c.OutNode)
		}
		for _, g := range c.Gemms {
			if g.ANode < 0 || g.BNode < 0 {
				t.Fatal("locator not applied to inputs")
			}
		}
	}
	// Without a locator, nodes are -1.
	w2 := Inspect(T2_7(sys), nil)
	if w2.Chains[0].OutNode != -1 || w2.Chains[0].Gemms[0].ANode != -1 {
		t.Error("nil locator should record -1")
	}
}

func TestStats(t *testing.T) {
	sys := molecule.Water631G()
	w := Inspect(T2_7(sys), nil)
	s := w.Stats()
	if s.Chains != w.NumChains() || s.Gemms == 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MinLen <= 0 || s.MaxLen < s.MinLen {
		t.Errorf("chain length bounds: %+v", s)
	}
	if s.MeanLen < float64(s.MinLen) || s.MeanLen > float64(s.MaxLen) {
		t.Errorf("mean outside [min,max]: %+v", s)
	}
	if s.TotalFlops <= 0 || s.InputBytes <= 0 || s.OutputBytes <= 0 {
		t.Errorf("nonpositive totals: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty Stats string")
	}
}

func TestUniqueBlocksDeterministicAndComplete(t *testing.T) {
	sys := molecule.Water631G()
	w := Inspect(T2_7(sys), nil)
	a1 := w.UniqueBlocks(TensorA)
	a2 := w.UniqueBlocks(TensorA)
	if len(a1) == 0 || len(a1) != len(a2) {
		t.Fatal("UniqueBlocks empty or nondeterministic length")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("UniqueBlocks order not deterministic")
		}
	}
	// Every GEMM's A block must appear.
	set := map[string]bool{}
	for _, b := range a1 {
		set[b.String()] = true
	}
	for _, c := range w.Chains {
		for _, g := range c.Gemms {
			if !set[g.Op.A.String()] {
				t.Fatalf("missing A block %v", g.Op.A)
			}
		}
	}
}

func TestReferenceDeterministic(t *testing.T) {
	sys := molecule.Water631G()
	w := Inspect(T2_7(sys), nil)
	a, b := w.Materialize()
	c1 := w.RunReference(a, b)
	c2 := w.RunReference(a, b)
	if c1.MaxAbsDiff(c2) != 0 {
		t.Error("reference not deterministic")
	}
	e1, e2 := w.Energy(c1), w.Energy(c2)
	if e1 != e2 {
		t.Error("energy not deterministic")
	}
	if e1 == 0 || math.IsNaN(e1) {
		t.Errorf("degenerate energy %v", e1)
	}
}

func TestReferenceMatchesDirectContraction(t *testing.T) {
	// Independently recompute one output block by looping over orbitals:
	// i0[p3,p4,h1,h2] (canonical, branch-0 contribution only, for a chain
	// with a single active branch) must equal sum over (h7,p5) blocks of
	// A^T * B remapped by the branch-0 permutation.
	sys := molecule.Water631G()
	w := Inspect(T2_7(sys), nil)
	a, b := w.Materialize()
	out := w.RunReference(a, b)

	var target *ChainMeta
	for _, c := range w.Chains {
		if len(c.Sorts) == 1 {
			target = c
			break
		}
	}
	if target == nil {
		t.Skip("no single-branch chain in this system")
	}
	// Recompute the chain's C buffer naively.
	cbuf := tensor.NewTile4(target.CDims[0], target.CDims[1], target.CDims[2], target.CDims[3])
	for _, g := range target.Gemms {
		at := a.MustTile(g.Op.A.Key)
		bt := b.MustTile(g.Op.B.Key)
		for m := 0; m < g.Op.M; m++ {
			for n := 0; n < g.Op.N; n++ {
				var s float64
				for kk := 0; kk < g.Op.K; kk++ {
					s += at.Data[kk*g.Op.M+m] * bt.Data[kk*g.Op.N+n]
				}
				cbuf.Data[m*g.Op.N+n] += s
			}
		}
	}
	want := tensor.NewTile4(target.Out.Dims[0], target.Out.Dims[1], target.Out.Dims[2], target.Out.Dims[3])
	tensor.Sort4(want, cbuf, target.Sorts[0].Perm, target.Sorts[0].Sign)
	got := out.MustTile(target.Out.Key)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("reference block differs from direct contraction by %g", d)
	}
}

func TestBetaCaroteneWorkloadScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := Inspect(T2_7(molecule.BetaCarotene631G()), nil)
	s := w.Stats()
	t.Logf("beta-carotene workload: %v", s)
	// Scale sanity: the real run's icsd_t2_7 does tens of teraflops and
	// hundreds of chains (§V); our block structure must land in that
	// regime for the Fig 9 shape to be meaningful.
	if s.Chains < 100 || s.Chains > 20000 {
		t.Errorf("chains = %d, outside plausible range", s.Chains)
	}
	if s.TotalFlops < 1e12 || s.TotalFlops > 5e14 {
		t.Errorf("flops = %g, outside plausible range", float64(s.TotalFlops))
	}
}
