package tce

// This file adds a second TCE-generated kernel, modeled on the T1
// subroutines of CCSD (§III-A: the method is generated into "more than 60
// sub-kernels ... divided into T1 and T2 subroutines"). The paper ports
// icsd_t2_7 and names porting the rest as ongoing work (§VII); this
// kernel demonstrates that the port generalizes: the same Emitter
// interface, inspection phase, variants, and executors run it unchanged.
//
// The contraction is the T1-shaped term
//
//	i0(p2, h1) += sum_{h7, p5} t2(p2, p5, h1, h7) * f(h7, p5)
//
// whose output blocks are 2-index tiles (represented as 4-index tiles
// with trailing extents of 1), each computed by a chain of GEMMs with a
// single SORT branch (the output layout already matches storage).

import (
	"fmt"

	"parsec/internal/molecule"
	"parsec/internal/tensor"
)

// TensorF names the one-particle intermediate consumed by the T1 kernel.
const TensorF = "f1"

// kernelKind selects a kernel's loop nest.
type kernelKind int

const (
	kindT2_7 kernelKind = iota
	kindT1_2
)

// KernelByName returns the named kernel: "t2_7" (the paper's ported
// subroutine) or "t1_2" (the T1-shaped generalization).
func KernelByName(name string, sys *molecule.System) (*Kernel, error) {
	switch name {
	case "", "t2_7", "icsd_t2_7":
		return T2_7(sys), nil
	case "t1_2", "icsd_t1_2":
		return T1_2(sys), nil
	}
	return nil, fmt.Errorf("tce: unknown kernel %q (want t2_7 or t1_2)", name)
}

// T1_2 returns the T1-shaped kernel for a system.
func T1_2(sys *molecule.System) *Kernel {
	return &Kernel{Name: "icsd_t1_2", Sys: sys, kind: kindT1_2}
}

// t1OutAllowed reports whether the output block i0(p2, h1) is
// symmetry-allowed.
func (k *Kernel) t1OutAllowed(p2, h1 molecule.Tile) bool {
	return p2.Spin == h1.Spin && p2.Irrep == h1.Irrep
}

// t1AAllowed reports whether the amplitude block t2(h7, p5, p2, h1) is
// stored (same rule as the T2 kernel's A operand).
func (k *Kernel) t1AAllowed(h7, p5, p2, h1 molecule.Tile) bool {
	return spinOK(p2, p5, h1, h7) && irrepOK(p2, p5, h1, h7)
}

// t1BAllowed reports whether the intermediate block f(h7, p5) is stored.
func (k *Kernel) t1BAllowed(h7, p5 molecule.Tile) bool {
	return h7.Spin == p5.Spin && h7.Irrep == p5.Irrep
}

// walkT1 drives the T1 loop nest through the emitter.
func (k *Kernel) walkT1(em Emitter) {
	sys := k.Sys
	chain := 0
	for _, p2 := range sys.Virt {
		for _, h1 := range sys.Occ {
			if !k.t1OutAllowed(p2, h1) {
				continue
			}
			started := false
			pos := 0
			cdims := [4]int{p2.Size, h1.Size, 1, 1}
			out := BlockRef{
				Tensor: TensorC,
				Key:    tensor.BlockKey{p2.Index, h1.Index, 0, 0},
				Dims:   cdims,
			}
			for _, h7 := range sys.Occ {
				for _, p5 := range sys.Virt {
					if !k.t1AAllowed(h7, p5, p2, h1) || !k.t1BAllowed(h7, p5) {
						continue
					}
					if !started {
						em.StartChain(chain, out, cdims)
						started = true
					}
					em.Gemm(chain, pos, GemmOp{
						Iter: IterVec{P3: p2.Index, P4: -1, H1: h1.Index, H2: -1, H7: h7.Index, P5: p5.Index},
						A: BlockRef{
							Tensor: TensorA,
							Key:    tensor.BlockKey{h7.Index, p5.Index, p2.Index, h1.Index},
							Dims:   [4]int{h7.Size, p5.Size, p2.Size, h1.Size},
						},
						B: BlockRef{
							Tensor: TensorF,
							Key:    tensor.BlockKey{h7.Index, p5.Index, 0, 0},
							Dims:   [4]int{h7.Size, p5.Size, 1, 1},
						},
						M: p2.Size * h1.Size,
						N: 1,
						K: h7.Size * p5.Size,
					})
					pos++
				}
			}
			if started {
				// The GEMM output layout (p2, h1) already matches the
				// Global Array layout: a single identity SORT branch.
				em.EndChain(chain, []SortOp{{Branch: 0, Perm: [4]int{0, 1, 2, 3}, Sign: +1}})
				chain++
			}
		}
	}
}
