// Package tce reproduces the structure of NWChem's Tensor Contraction
// Engine output for the icsd_t2_7 subroutine of CCSD: a deep loop nest
// over tile indices whose IF branches (spin and spatial-symmetry
// conservation, canonical index ordering) decide which block GEMMs
// execute, organized into chains that share an output block (§III-A).
//
// The package exposes the loop nest through an Emitter interface so the
// same control flow drives three consumers: the serial reference
// executor, the original-style CGP executor, and the inspection phase
// that the PaRSEC port runs to fill its metadata arrays (§III-B, Fig 3).
package tce

import (
	"fmt"

	"parsec/internal/molecule"
	"parsec/internal/tensor"
)

// Tensor names used by the kernel. A (amplitudes) and B (integrals) are
// inputs; C is the output accumulated into the Global Array.
const (
	TensorA = "t2"
	TensorB = "v2"
	TensorC = "i0"
)

// BlockRef identifies one tile of a named distributed tensor.
type BlockRef struct {
	Tensor string
	Key    tensor.BlockKey
	Dims   [4]int
}

// Elems returns the number of elements in the block.
func (b BlockRef) Elems() int {
	return b.Dims[0] * b.Dims[1] * b.Dims[2] * b.Dims[3]
}

// Bytes returns the storage size of the block in bytes.
func (b BlockRef) Bytes() int64 { return int64(b.Elems()) * 8 }

// String renders the block as tensor name plus key.
func (b BlockRef) String() string {
	return fmt.Sprintf("%s%v", b.Tensor, b.Key)
}

// IterVec is the iteration vector of one GEMM: the values of the loop
// induction variables (p3, p4, h1, h2, h7, p5) enclosing the call, as the
// inspection phase records them (§III-B).
type IterVec struct{ P3, P4, H1, H2, H7, P5 int }

// String lists the induction-variable values.
func (v IterVec) String() string {
	return fmt.Sprintf("[p3=%d p4=%d h1=%d h2=%d h7=%d p5=%d]", v.P3, v.P4, v.H1, v.H2, v.H7, v.P5)
}

// GemmOp describes one GEMM within a chain: C(m x n) += op(A) * B where
// op(A) is a transpose, matching the dgemm('T','N', ...) call in the
// paper's Fig 1.
type GemmOp struct {
	Iter    IterVec
	A, B    BlockRef
	M, N, K int
}

// Flops returns the floating-point operations of the GEMM.
func (g GemmOp) Flops() int64 { return tensor.GemmFlops(g.M, g.N, g.K) }

// SortOp is one of the up-to-four SORT_4 applications at the end of a
// chain (§IV-A): an index permutation with a sign, targeting the chain's
// canonical output block.
type SortOp struct {
	Branch int // 0..3, the IF branch in the original source
	Perm   [4]int
	Sign   float64
}

// sortBranches are the four IF branches of icsd_t2_7. The GEMM output is
// laid out (p3, h1, p4, h2); each branch permutes it into the Global
// Array layout (p3, p4, h1, h2) of the canonical block. Branch k fires
// when its predicate over the tile indices holds; for strictly ordered
// tiles exactly one fires, for equal tiles two or all four fire, writing
// the same canonical block with different in-tile permutations and signs.
var sortBranches = [4]SortOp{
	{Branch: 0, Perm: [4]int{0, 2, 1, 3}, Sign: +1}, // (p3<=p4) and (h1<=h2)
	{Branch: 1, Perm: [4]int{0, 2, 3, 1}, Sign: -1}, // (p3<=p4) and (h2<=h1)
	{Branch: 2, Perm: [4]int{2, 0, 1, 3}, Sign: -1}, // (p4<=p3) and (h1<=h2)
	{Branch: 3, Perm: [4]int{2, 0, 3, 1}, Sign: +1}, // (p4<=p3) and (h2<=h1)
}

// SortBranches returns the active SORT operations for a canonical output
// tile pair: always branch 0, plus the branches enabled by tile-index
// equalities.
func SortBranches(p3, p4, h1, h2 int) []SortOp {
	sorts := []SortOp{sortBranches[0]}
	if h1 == h2 {
		sorts = append(sorts, sortBranches[1])
	}
	if p3 == p4 {
		sorts = append(sorts, sortBranches[2])
		if h1 == h2 {
			sorts = append(sorts, sortBranches[3])
		}
	}
	return sorts
}

// Emitter receives the calls that the original Fortran body would make.
// StartChain corresponds to DFILL (zero-initializing the chain's C
// buffer), Gemm to the dgemm call, Sort to SORT_4, and EndChain to the
// final ADD_HASH_BLOCK. The inspection phase is exactly an Emitter that
// records instead of computing (Fig 3).
type Emitter interface {
	StartChain(chain int, out BlockRef, cdims [4]int)
	Gemm(chain, pos int, g GemmOp)
	EndChain(chain int, sorts []SortOp)
}

// Kernel is a TCE-generated contraction kernel description.
type Kernel struct {
	Name string
	Sys  *molecule.System
	kind kernelKind
}

// T2_7 returns the icsd_t2_7 kernel for a system.
func T2_7(sys *molecule.System) *Kernel {
	return &Kernel{Name: "icsd_t2_7", Sys: sys, kind: kindT2_7}
}

// spinOK and irrepOK encode the conservation rules that appear as IF
// branches in TCE-generated code: a block of a two-electron tensor is
// nonzero only if spin is conserved and the irrep product is the totally
// symmetric representation.
func spinOK(a, b, c, d molecule.Tile) bool { return a.Spin+b.Spin == c.Spin+d.Spin }

// irrepOK combines irrep labels by XOR, as in the abelian point groups
// (Z2^k character tables) NWChem uses. XOR is closed under composition:
// if the A and B blocks of a GEMM are both allowed, the output block is
// too, so no allowed contribution is ever dropped by the output filter.
func irrepOK(a, b, c, d molecule.Tile) bool {
	return a.Irrep^b.Irrep^c.Irrep^d.Irrep == 0
}

// AAllowed reports whether the amplitude block t2(h7, p5, p3, h1) is
// symmetry-allowed (stored).
func (k *Kernel) AAllowed(h7, p5, p3, h1 molecule.Tile) bool {
	return spinOK(p3, p5, h1, h7) && irrepOK(p3, p5, h1, h7)
}

// BAllowed reports whether the integral block v2(h7, p5, p4, h2) is
// symmetry-allowed (stored).
func (k *Kernel) BAllowed(h7, p5, p4, h2 molecule.Tile) bool {
	return spinOK(h7, p4, h2, p5) && irrepOK(h7, p4, h2, p5)
}

// OutAllowed reports whether the output block i0(p3, p4, h1, h2) is
// symmetry-allowed.
func (k *Kernel) OutAllowed(p3, p4, h1, h2 molecule.Tile) bool {
	return spinOK(p3, p4, h1, h2) && irrepOK(p3, p4, h1, h2)
}

// ARef returns the block reference for the amplitude tile t2(h7,p5,p3,h1),
// stored in GEMM-ready layout so op(A) = A^T is (p3*h1) x (h7*p5).
func (k *Kernel) ARef(h7, p5, p3, h1 molecule.Tile) BlockRef {
	return BlockRef{
		Tensor: TensorA,
		Key:    tensor.BlockKey{h7.Index, p5.Index, p3.Index, h1.Index},
		Dims:   [4]int{h7.Size, p5.Size, p3.Size, h1.Size},
	}
}

// BRef returns the block reference for the integral tile v2(h7,p5,p4,h2),
// stored so B is (h7*p5) x (p4*h2).
func (k *Kernel) BRef(h7, p5, p4, h2 molecule.Tile) BlockRef {
	return BlockRef{
		Tensor: TensorB,
		Key:    tensor.BlockKey{h7.Index, p5.Index, p4.Index, h2.Index},
		Dims:   [4]int{h7.Size, p5.Size, p4.Size, h2.Size},
	}
}

// CRef returns the canonical Global Array output block i0(p3,p4,h1,h2).
func (k *Kernel) CRef(p3, p4, h1, h2 molecule.Tile) BlockRef {
	return BlockRef{
		Tensor: TensorC,
		Key:    tensor.BlockKey{p3.Index, p4.Index, h1.Index, h2.Index},
		Dims:   [4]int{p3.Size, p4.Size, h1.Size, h2.Size},
	}
}

// Walk drives the kernel's loop nest, invoking the emitter exactly as the
// TCE-generated Fortran would invoke DFILL / GEMM / SORT_4 /
// ADD_HASH_BLOCK. Chains are numbered in loop order; a chain is emitted
// only if at least one GEMM inside it survives the IF branches. This is
// the single source of truth for the workload: the serial reference, the
// CGP baseline, and the PaRSEC inspection phase all call Walk.
func (k *Kernel) Walk(em Emitter) {
	if k.kind == kindT1_2 {
		k.walkT1(em)
		return
	}
	sys := k.Sys
	chain := 0
	for _, p3 := range sys.Virt {
		for _, p4 := range sys.Virt[p3.Index:] { // p4b >= p3b
			for _, h1 := range sys.Occ {
				for _, h2 := range sys.Occ[h1.Index:] { // h2b >= h1b
					if !k.OutAllowed(p3, p4, h1, h2) {
						continue
					}
					started := false
					pos := 0
					// GEMM output layout (p3, h1, p4, h2).
					cdims := [4]int{p3.Size, h1.Size, p4.Size, h2.Size}
					out := k.CRef(p3, p4, h1, h2)
					for _, h7 := range sys.Occ {
						for _, p5 := range sys.Virt {
							if !k.AAllowed(h7, p5, p3, h1) || !k.BAllowed(h7, p5, p4, h2) {
								continue
							}
							if !started {
								em.StartChain(chain, out, cdims)
								started = true
							}
							em.Gemm(chain, pos, GemmOp{
								Iter: IterVec{p3.Index, p4.Index, h1.Index, h2.Index, h7.Index, p5.Index},
								A:    k.ARef(h7, p5, p3, h1),
								B:    k.BRef(h7, p5, p4, h2),
								M:    p3.Size * h1.Size,
								N:    p4.Size * h2.Size,
								K:    h7.Size * p5.Size,
							})
							pos++
						}
					}
					if started {
						em.EndChain(chain, SortBranches(p3.Index, p4.Index, h1.Index, h2.Index))
						chain++
					}
				}
			}
		}
	}
}
