package tce

import (
	"parsec/internal/tensor"
)

// blockSeed derives a deterministic per-block seed from the system seed,
// the tensor name, and the block key, so every executor fills identical
// synthetic data.
func blockSeed(base uint64, name string, key tensor.BlockKey) uint64 {
	h := base ^ 0x9e3779b97f4a7c15
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	for _, k := range key {
		h = (h ^ uint64(uint32(k))) * 0x100000001b3
	}
	return h
}

// FillBlock fills a tile with the canonical synthetic data for the given
// block reference: deterministic pseudo-random values standing in for the
// CCSD amplitudes and two-electron integrals.
func (w *Workload) FillBlock(ref BlockRef, t *tensor.Tile4) {
	t.FillRandom(blockSeed(w.Kernel.Sys.Seed, ref.Tensor, ref.Key), 0.5)
}

// InputTensors returns the distinct input tensor names the workload's
// GEMMs reference, in (A, B) order: ("t2", "v2") for the T2 kernel,
// ("t2", "f1") for the T1 kernel.
func (w *Workload) InputTensors() (aName, bName string) {
	if len(w.Chains) == 0 || len(w.Chains[0].Gemms) == 0 {
		return TensorA, TensorB
	}
	g := w.Chains[0].Gemms[0]
	return g.Op.A.Tensor, g.Op.B.Tensor
}

// Materialize allocates and fills the input tensors referenced by the
// workload. Only symmetry-allowed blocks that the kernel actually touches
// are stored, mirroring the block-sparse storage of the TCE. Intended for
// small systems executed with real arithmetic; the simulator never calls
// this.
func (w *Workload) Materialize() (a, b *tensor.BlockTensor4) {
	aName, bName := w.InputTensors()
	a = tensor.NewBlockTensor4()
	b = tensor.NewBlockTensor4()
	for _, ref := range w.UniqueBlocks(aName) {
		w.FillBlock(ref, a.GetOrCreate(ref.Key, ref.Dims))
	}
	for _, ref := range w.UniqueBlocks(bName) {
		w.FillBlock(ref, b.GetOrCreate(ref.Key, ref.Dims))
	}
	return a, b
}

// Weights returns the deterministic weight tensor over the workload's
// output blocks used by the correlation-energy functional Energy.
func (w *Workload) Weights() *tensor.BlockTensor4 {
	wt := tensor.NewBlockTensor4()
	for _, ref := range w.UniqueBlocks(TensorC) {
		t := wt.GetOrCreate(ref.Key, ref.Dims)
		t.FillRandom(blockSeed(w.Kernel.Sys.Seed, "weights", ref.Key), 0.25)
	}
	return wt
}

// Energy reduces an output tensor to the scalar correlation-energy
// functional: the inner product with the deterministic weight tensor,
// accumulated in block-key order. All algorithmic variants of the kernel
// must reproduce this value to ~14 digits (§IV-A).
func (w *Workload) Energy(c *tensor.BlockTensor4) float64 {
	return c.Dot(w.Weights())
}

// RunReference executes the workload exactly as the original serial
// semantics prescribe: for each chain in loop order, zero the C buffer
// (DFILL), apply every GEMM in sequence, then apply each active SORT_4
// followed by its accumulate into the output tensor (ADD_HASH_BLOCK).
// It returns the output tensor and is the ground truth for every
// parallel variant.
func (w *Workload) RunReference(a, b *tensor.BlockTensor4) *tensor.BlockTensor4 {
	out := tensor.NewBlockTensor4()
	w.RunReferenceInto(out, a, b)
	return out
}

// RunReferenceInto is RunReference accumulating into an existing output
// tensor (ADD_HASH_BLOCK semantics: contributions fold into whatever the
// blocks already hold). The per-chain C buffer and SORT scratch come from
// the tensor scratch pool, so a warmed-up call performs no steady-state
// heap allocation beyond output blocks absent from out.
func (w *Workload) RunReferenceInto(out *tensor.BlockTensor4, a, b *tensor.BlockTensor4) {
	for _, c := range w.Chains {
		cbuf := tensor.GetTile4Zeroed(c.CDims[0], c.CDims[1], c.CDims[2], c.CDims[3])
		cm := cbuf.AsMatrix()
		for _, g := range c.Gemms {
			at := a.MustTile(g.Op.A.Key)
			bt := b.MustTile(g.Op.B.Key)
			// dgemm('T', 'N', ...): op(A) = A^T, per Fig 1.
			tensor.Gemm(true, false, 1, at.AsMatrix(), bt.AsMatrix(), 1, cm)
		}
		dst := out.GetOrCreate(c.Out.Key, c.Out.Dims)
		tmp := tensor.GetTile4(c.Out.Dims[0], c.Out.Dims[1], c.Out.Dims[2], c.Out.Dims[3])
		for _, s := range c.Sorts {
			tensor.Sort4(tmp, cbuf, s.Perm, s.Sign)
			dst.AddScaled(tmp, 1)
		}
		tensor.PutTile4(tmp)
		tensor.PutTile4(cbuf)
	}
}
