package tce

import (
	"runtime/debug"
	"testing"

	"parsec/internal/molecule"
	"parsec/internal/tensor"
)

// TestReferenceSteadyStateAllocs pins the scratch-pool contract on a
// real workload: once the pool and the output tensor are warm, a full
// reference execution (every DFILL, GEMM and SORT_4 of the kernel)
// performs zero heap allocations.
func TestReferenceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	sys := molecule.Water631G()
	w := Inspect(T2_7(sys), nil)
	a, b := w.Materialize()
	out := tensor.NewBlockTensor4()

	// GC would drop the sync.Pool contents mid-measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	w.RunReferenceInto(out, a, b) // warm: pool classes + output blocks
	allocs := testing.AllocsPerRun(3, func() {
		w.RunReferenceInto(out, a, b)
	})
	if allocs != 0 {
		t.Errorf("warmed-up RunReferenceInto: %v allocs/run, want 0", allocs)
	}
}
