//go:build !race

package tce

const raceEnabled = false
