package runtime

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parsec/internal/ptg"
	"parsec/internal/sched"
)

// stressDAG builds a layered DAG: width tasks per layer, layers deep.
// Task (l,i) reads from (l-1,i) and (l-1,(i+1)%width), so every handoff
// crosses shard boundaries and layers ripple ready-ness diagonally. The
// body spins a deterministic pseudo-random 0–50µs so workers finish out
// of phase and steal/park paths get exercised rather than lockstepping.
func stressDAG(width, layers int, done *atomic.Int64) *ptg.Graph {
	g := ptg.NewGraph("stress")
	c := g.Class("T")
	c.Domain = func(emit func(ptg.Args)) {
		for l := 0; l < layers; l++ {
			for i := 0; i < width; i++ {
				emit(ptg.Args{l, i})
			}
		}
	}
	c.AddFlow("A", ptg.RW).
		InNew(func(a ptg.Args) bool { return a[0] == 0 }, func(a ptg.Args) int64 { return 8 }).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "T", Args: ptg.Args{a[0] - 1, a[1]}}, "A"
		}).
		Out(func(a ptg.Args) bool { return a[0] < layers-1 }, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "T", Args: ptg.Args{a[0] + 1, a[1]}}, "A"
		}).
		Out(func(a ptg.Args) bool { return a[0] < layers-1 }, func(a ptg.Args) (ptg.TaskRef, string) {
			w := width
			return ptg.TaskRef{Class: "T", Args: ptg.Args{a[0] + 1, (a[1] - 1 + w) % w}}, "B"
		})
	c.AddFlow("B", ptg.Read).
		InNew(func(a ptg.Args) bool { return a[0] == 0 }, func(a ptg.Args) int64 { return 8 }).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			w := width
			return ptg.TaskRef{Class: "T", Args: ptg.Args{a[0] - 1, (a[1] + 1) % w}}, "A"
		})
	c.Body = func(ctx *ptg.Ctx) {
		// xorshift on the task coordinates picks the spin length so reruns
		// are identical and neighbors differ.
		x := uint64(ctx.Args[0]*width+ctx.Args[1])*0x9E3779B97F4A7C15 + 1
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		spin := time.Duration(x%50) * time.Microsecond
		for t0 := time.Now(); time.Since(t0) < spin; {
		}
		ctx.Out[0] = int64(ctx.Args[0])
		done.Add(1)
	}
	return g
}

func TestStressLayeredDAG(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const width, layers = 50, 100
	for _, q := range []sched.QueueMode{sched.SharedQueue, sched.PerWorker, sched.PerWorkerSteal} {
		q := q
		t.Run(q.String(), func(t *testing.T) {
			var done atomic.Int64
			rep, err := Run(stressDAG(width, layers, &done), Config{Workers: 8, Queues: q})
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(width * layers); done.Load() != want || int64(rep.Tasks) != want {
				t.Errorf("ran %d bodies, report %d tasks, want %d", done.Load(), rep.Tasks, want)
			}
			if got := sumPerWorker(rep.Sched.PerWorkerTasks); got != int64(rep.Tasks) {
				t.Errorf("sum(PerWorkerTasks) = %d, want %d", got, rep.Tasks)
			}
		})
	}
}

// Deadlock detection must survive the sharded scheduler: the worker that
// drives the pending count to zero with tasks still unsatisfied reports
// the deadlock instead of hanging, and the error names the stuck count.

func TestDeadlockMidRunReportsCount(t *testing.T) {
	// SRC runs fine, then two tasks waiting on each other never fire.
	g := ptg.NewGraph("dl-mid")
	src := g.Class("SRC")
	src.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	src.Body = func(ctx *ptg.Ctx) {}

	c := g.Class("T")
	c.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)); emit(ptg.A1(1)) }
	c.AddFlow("D", ptg.RW).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "T", Args: ptg.A1(1 - a[0])}, "D"
		}).
		Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "T", Args: ptg.A1(1 - a[0])}, "D"
		})

	for _, q := range []sched.QueueMode{sched.SharedQueue, sched.PerWorker, sched.PerWorkerSteal} {
		_, err := Run(g, Config{Workers: 4, Queues: q})
		if err == nil {
			t.Fatalf("mode %v: deadlock not detected", q)
		}
		if !strings.Contains(err.Error(), "deadlock with 2 tasks remaining") {
			t.Errorf("mode %v: error = %q, want mention of 2 stuck tasks", q, err)
		}
	}
}

func TestDeadlockAtStartReportsCount(t *testing.T) {
	// No task is ever initially ready: the cycle is the whole graph.
	g := ptg.NewGraph("dl-start")
	c := g.Class("T")
	c.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)); emit(ptg.A1(1)) }
	c.AddFlow("D", ptg.RW).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "T", Args: ptg.A1(1 - a[0])}, "D"
		}).
		Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "T", Args: ptg.A1(1 - a[0])}, "D"
		})
	_, err := Run(g, Config{Workers: 2})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if !strings.Contains(err.Error(), "deadlock with 2 tasks remaining") {
		t.Errorf("error = %q, want mention of 2 stuck tasks", err)
	}
}
