package runtime

import (
	"sync"
	"sync/atomic"

	"parsec/internal/tensor/pool"
)

// Worker lending: the runtime-side implementation of team.Parallelism
// (DESIGN.md §13). A task body that reaches a kernel large enough to
// split calls Span on its Ctx.Par handle; the runtime publishes the
// span, wakes parked workers, and lets them volunteer for parts. The
// protocol is deadlock-free by construction:
//
//   - The spanning worker claims parts in the same loop as helpers, so a
//     span completes even if zero workers ever volunteer (all busy, all
//     lent, or a one-worker run).
//   - Helpers volunteer only when their own task search came up empty
//     (tryGet returned nil), so lending never delays ready graph tasks
//     and never oversubscribes the worker count.
//   - Parts are claimed by a single atomic counter; a helper that loses
//     every claim race simply goes back to its normal loop.
//
// Publishing a span and parking follow the same Dekker pattern as
// enqueue: the publisher bumps the active-span count before scanning for
// parked workers, and a parking worker re-checks the count after
// publishing its parked flag, so a wake is never lost between them.

// spanJob is one published intra-task parallel region.
type spanJob struct {
	f     func(part int, scratch *pool.Local)
	parts int32
	// next is the claim counter: part i belongs to whoever's Add returns
	// i. Claims past parts-1 mean the span is exhausted.
	next atomic.Int32
	// live counts claimed-but-unfinished parts plus one publication
	// token, so done closes exactly once, after the last part returns.
	live atomic.Int32
	done chan struct{}
}

// lendState tracks the spans that still have unclaimed parts.
type lendState struct {
	mu    sync.Mutex
	spans []*spanJob
	// n mirrors len(spans) for lock-free emptiness checks in the worker
	// loop and the park recheck.
	n atomic.Int64
}

// publish registers a span and wakes up to parts-1 parked workers to
// volunteer for it.
func (r *runner) publish(sp *spanJob) {
	r.lend.mu.Lock()
	r.lend.spans = append(r.lend.spans, sp)
	r.lend.n.Add(1)
	r.lend.mu.Unlock()
	need := int(sp.parts) - 1
	for w := 0; w < len(r.ws) && need > 0; w++ {
		if r.nparked.Load() == 0 {
			return
		}
		if r.wake(w) {
			need--
		}
	}
}

// retire removes an exhausted span from the active list. Exactly one
// claimer calls it: the one whose claim returned the final part.
func (r *runner) retire(sp *spanJob) {
	r.lend.mu.Lock()
	for i, s := range r.lend.spans {
		if s == sp {
			last := len(r.lend.spans) - 1
			r.lend.spans[i] = r.lend.spans[last]
			r.lend.spans[last] = nil
			r.lend.spans = r.lend.spans[:last]
			r.lend.n.Add(-1)
			break
		}
	}
	r.lend.mu.Unlock()
}

// runParts claims and executes parts of sp until the claim counter is
// exhausted, using the given worker's scratch shard. Returns the number
// of parts executed.
func (r *runner) runParts(sp *spanJob, ws *workerState) int {
	ran := 0
	for {
		i := sp.next.Add(1) - 1
		if i >= sp.parts {
			return ran
		}
		if i == sp.parts-1 {
			r.retire(sp)
		}
		sp.f(int(i), ws.loc)
		ran++
		if sp.live.Add(-1) == 0 {
			close(sp.done)
		}
	}
}

// hasHelp reports whether any span has unclaimed parts, for the park
// recheck and the worker loop's cheap gate.
func (r *runner) hasHelp() bool { return r.lend.n.Load() > 0 }

// tryHelp lets an idle worker volunteer for a published span. Returns
// true if it executed at least one part.
func (r *runner) tryHelp(id int) bool {
	if !r.hasHelp() {
		return false
	}
	r.lend.mu.Lock()
	var sp *spanJob
	for _, s := range r.lend.spans {
		if s.next.Load() < s.parts {
			sp = s
			break
		}
	}
	r.lend.mu.Unlock()
	if sp == nil {
		return false
	}
	ws := &r.ws[id]
	ran := r.runParts(sp, ws)
	ws.helped += int64(ran)
	return ran > 0
}

// workerTeam is the team.Parallelism handle handed to task bodies: spans
// split across the run's workers via the lending protocol.
type workerTeam struct {
	r  *runner
	id int // the worker executing the spanning task
}

// Workers returns the worker count of the run: the natural upper bound
// for part counts.
func (t workerTeam) Workers() int { return len(t.r.ws) }

// Span runs f(0..parts-1) across the spanning worker and any volunteers,
// returning when every part has finished. parts <= 1 runs inline.
func (t workerTeam) Span(parts int, f func(part int, scratch *pool.Local)) {
	r := t.r
	ws := &r.ws[t.id]
	if parts <= 1 {
		f(0, ws.loc)
		return
	}
	sp := &spanJob{f: f, parts: int32(parts), done: make(chan struct{})}
	// parts claim tokens plus the publication token released below: done
	// cannot close before the caller is finished claiming.
	sp.live.Store(int32(parts) + 1)
	r.publish(sp)
	ws.spans++
	r.runParts(sp, ws)
	if sp.live.Add(-1) != 0 {
		// Helpers still hold parts; wait without burning the CPU — they
		// are running on other workers by definition.
		<-sp.done
	}
}
