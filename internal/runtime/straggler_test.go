package runtime

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"parsec/internal/ptg"
	"parsec/internal/sched"
)

// stragglerFan builds n independent tasks with a small real body so
// stealing has something to overlap.
func stragglerFan(n int) *ptg.Graph {
	g := ptg.NewGraph("straggler-fan")
	c := g.Class("T")
	c.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	c.Body = func(ctx *ptg.Ctx) {
		sum := 0.0
		for i := 0; i < 2000; i++ {
			sum += float64(i)
		}
		_ = sum
	}
	return g
}

// TestStealUnderStragglerRealRuntime exercises the steal-under-failure
// path on the goroutine runtime: the TaskDelay hook slows worker 0 the
// way the fault injector slows a simulated node, and sched.PerWorkerSteal
// must shift that worker's pinned backlog to its siblings.
func TestStealUnderStragglerRealRuntime(t *testing.T) {
	const workers, n = 4, 400
	var perWorker [workers]atomic.Int64
	g := stragglerFan(n)
	rep, err := Run(g, Config{
		Workers: workers,
		Queues:  sched.PerWorkerSteal,
		TaskDelay: func(worker int, ref ptg.TaskRef) time.Duration {
			perWorker[worker].Add(1)
			if worker == 0 {
				return 200 * time.Microsecond // the straggler
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != n {
		t.Fatalf("tasks = %d, want %d", rep.Tasks, n)
	}
	if rep.Sched.Steals == 0 {
		t.Error("no steals despite a straggling worker")
	}
	// Seq pins tasks round-robin, so worker 0 starts with n/workers
	// tasks; stealing must have moved a meaningful share of them.
	if got := perWorker[0].Load(); got >= n/workers {
		t.Errorf("straggler executed %d tasks, want fewer than its pinned %d", got, n/workers)
	}
	var total int64
	for i := range perWorker {
		total += perWorker[i].Load()
	}
	if total != n {
		t.Errorf("executed %d tasks total, want %d", total, n)
	}
}

// TestCtxFailSurfacesAsTaskError: a body that records a failure through
// Ctx.Fail must fail the run with that error, without panicking.
func TestCtxFailSurfacesAsTaskError(t *testing.T) {
	bodyErr := errors.New("acc out of range")
	g := ptg.NewGraph("failing")
	c := g.Class("F")
	c.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	c.Body = func(ctx *ptg.Ctx) { ctx.Fail(bodyErr) }
	_, err := Run(g, Config{Workers: 2})
	if err == nil {
		t.Fatal("expected run to fail")
	}
	if !errors.Is(err, bodyErr) {
		t.Errorf("error = %v, want wrapped body error", err)
	}
}
