package runtime

import (
	"fmt"
	"testing"

	"parsec/internal/ptg"
	"parsec/internal/sched"
)

func benchFanout(n int) *ptg.Graph {
	g := ptg.NewGraph("bench-fanout")
	src := g.Class("SRC")
	src.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	f := src.AddFlow("D", ptg.Write)
	f.InNew(nil, func(a ptg.Args) int64 { return 8 })
	for i := 0; i < n; i++ {
		i := i
		f.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "LEAF", Args: ptg.A1(i)}, "D"
		})
	}
	src.Body = func(ctx *ptg.Ctx) { ctx.Out[0] = 1 }
	leaf := g.Class("LEAF")
	leaf.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	leaf.AddFlow("D", ptg.Read).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "SRC", Args: ptg.A1(0)}, "D"
		})
	leaf.Body = func(ctx *ptg.Ctx) {}
	return g
}

func BenchmarkDispatchFanout(b *testing.B) {
	const tasks = 2048
	g := benchFanout(tasks)
	for _, mode := range []struct {
		name string
		q    sched.QueueMode
	}{{"shared", sched.SharedQueue}, {"pinned", sched.PerWorker}, {"pinned-steal", sched.PerWorkerSteal}} {
		for _, workers := range []int{1, 4, 8, 16} {
			mode, workers := mode, workers
			b.Run(fmt.Sprintf("%s/workers-%d", mode.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep, err := Run(g, Config{Workers: workers, Queues: mode.q})
					if err != nil {
						b.Fatal(err)
					}
					if rep.Tasks != tasks+1 {
						b.Fatal("bad task count")
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tasks+1), "ns/task")
			})
		}
	}
}
