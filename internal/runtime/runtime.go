// Package runtime executes a Parameterized Task Graph with real data on
// shared-memory worker goroutines. It is the execution half of the
// PaRSEC-style system for in-process use: an event-driven scheduler that
// reacts to task completions by evaluating the PTG's dataflow (§II-B),
// delivering payloads to successors, and dispatching newly ready tasks to
// workers in priority order.
//
// The distributed, simulated-machine counterpart is internal/simexec;
// both consume the same graphs.
package runtime

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"time"

	"parsec/internal/ptg"
)

// Policy selects how ready tasks are ordered.
type Policy int

const (
	// PriorityOrder dispatches the highest-priority ready task first
	// (ties broken by creation order). This is PaRSEC's behavior when the
	// developer supplies priority expressions (§IV-C).
	PriorityOrder Policy = iota
	// LIFOOrder dispatches the most recently enqueued ready task first,
	// ignoring priorities — the behavior the paper's v2 variant exhibits
	// with no priorities set (§V, Fig 11).
	LIFOOrder
)

func (p Policy) String() string {
	if p == LIFOOrder {
		return "lifo"
	}
	return "priority"
}

// QueueMode selects how ready tasks are distributed among workers,
// mirroring internal/simexec: one shared queue (dynamic load balancing),
// statically pinned per-worker queues, or pinned queues with stealing —
// PaRSEC's per-thread queues correspond to PerWorkerSteal.
type QueueMode int

const (
	SharedQueue QueueMode = iota
	PerWorker
	PerWorkerSteal
)

// Event records one task execution for tracing.
type Event struct {
	Task   ptg.TaskRef
	Worker int
	Start  time.Duration // since Run began
	End    time.Duration
}

// Config controls a run.
type Config struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	Policy  Policy
	// Queues selects the ready-queue structure (default SharedQueue).
	Queues QueueMode
	// Observer, if set, receives an Event after each task completes.
	// Called concurrently from workers; must be safe.
	Observer func(Event)
}

// Report summarizes a completed run.
type Report struct {
	Tasks    int
	ByClass  map[string]int
	Workers  int
	Elapsed  time.Duration
	BusyTime time.Duration // summed task execution time across workers
}

func (r Report) String() string {
	return fmt.Sprintf("%d tasks on %d workers in %v (busy %v)", r.Tasks, r.Workers, r.Elapsed, r.BusyTime)
}

// readyHeap orders instances by descending priority, then ascending
// creation sequence.
type readyHeap []*ptg.Instance

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].Seq < h[j].Seq
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(*ptg.Instance)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Run executes the graph to completion and returns a report. Execution is
// aborted with an error if a task body panics or the graph deadlocks.
func Run(g *ptg.Graph, cfg Config) (Report, error) {
	tr, err := ptg.NewTracker(g)
	if err != nil {
		return Report{}, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	r := &runner{
		tr:           tr,
		cfg:          cfg,
		byClass:      make(map[string]int),
		workersCount: workers,
		start:        time.Now(),
	}
	r.cond = sync.NewCond(&r.mu)
	if cfg.Queues != SharedQueue {
		r.perWorker = make([]readyHeap, workers)
	}
	for _, in := range tr.InitialReady() {
		r.enqueueLocked(in)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.work(id)
		}(w)
	}
	wg.Wait()

	if r.err == nil {
		if qerr := tr.CheckQuiescent(); qerr != nil {
			r.err = qerr
		}
	}
	rep := Report{
		Tasks:    tr.NumInstances() - tr.Remaining(),
		ByClass:  r.byClass,
		Workers:  workers,
		Elapsed:  time.Since(r.start),
		BusyTime: r.busy,
	}
	return rep, r.err
}

type runner struct {
	tr  *ptg.Tracker
	cfg Config

	mu           sync.Mutex
	cond         *sync.Cond
	heap         readyHeap // SharedQueue + PriorityOrder
	stack        []*ptg.Instance
	perWorker    []readyHeap // PerWorker / PerWorkerSteal
	idle         int
	inflight     int // tasks between Start and Complete
	workersCount int
	stopped      bool
	err          error

	byClass map[string]int
	busy    time.Duration
	start   time.Time
}

func (r *runner) enqueueLocked(in *ptg.Instance) {
	switch {
	case r.cfg.Queues != SharedQueue:
		w := in.Seq % len(r.perWorker)
		heap.Push(&r.perWorker[w], in)
		// The pinned (or stealing) worker may be any of the sleepers.
		r.cond.Broadcast()
		return
	case r.cfg.Policy == LIFOOrder:
		r.stack = append(r.stack, in)
	default:
		heap.Push(&r.heap, in)
	}
	r.cond.Signal()
}

// dequeueLocked pops the next task for the given worker.
func (r *runner) dequeueLocked(wid int) *ptg.Instance {
	if r.cfg.Queues != SharedQueue {
		if len(r.perWorker[wid]) > 0 {
			return heap.Pop(&r.perWorker[wid]).(*ptg.Instance)
		}
		if r.cfg.Queues == PerWorkerSteal {
			best := -1
			for w := range r.perWorker {
				if len(r.perWorker[w]) == 0 {
					continue
				}
				if best < 0 || taskBefore(r.perWorker[w][0], r.perWorker[best][0]) {
					best = w
				}
			}
			if best >= 0 {
				return heap.Pop(&r.perWorker[best]).(*ptg.Instance)
			}
		}
		return nil
	}
	if r.cfg.Policy == LIFOOrder {
		if n := len(r.stack); n > 0 {
			in := r.stack[n-1]
			r.stack[n-1] = nil
			r.stack = r.stack[:n-1]
			return in
		}
		return nil
	}
	if len(r.heap) > 0 {
		return heap.Pop(&r.heap).(*ptg.Instance)
	}
	return nil
}

// taskBefore reports whether a should run before b.
func taskBefore(a, b *ptg.Instance) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Seq < b.Seq
}

// queueLenLocked returns the number of queued ready tasks visible to any
// worker (used only for termination/deadlock detection).
func (r *runner) queueLenLocked() int {
	if r.cfg.Queues != SharedQueue {
		n := 0
		for w := range r.perWorker {
			n += len(r.perWorker[w])
		}
		return n
	}
	if r.cfg.Policy == LIFOOrder {
		return len(r.stack)
	}
	return len(r.heap)
}

// availableLocked reports whether worker wid could obtain a task now.
func (r *runner) availableLocked(wid int) bool {
	if r.cfg.Queues == PerWorker {
		return len(r.perWorker[wid]) > 0
	}
	return r.queueLenLocked() > 0
}

func (r *runner) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.stopped = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (r *runner) work(id int) {
	for {
		r.mu.Lock()
		for !r.availableLocked(id) && !r.stopped {
			if r.tr.Done() {
				r.stopped = true
				r.cond.Broadcast()
				break
			}
			r.idle++
			// Deadlock check: every worker idle, nothing queued, tasks
			// remaining. (A running task elsewhere keeps idle < workers.)
			if r.idle == workersOf(r) && r.queueLenLocked() == 0 && !r.tr.Done() && r.inflight == 0 {
				r.err = fmt.Errorf("runtime: deadlock with %d tasks remaining", r.tr.Remaining())
				r.stopped = true
				r.cond.Broadcast()
				r.idle--
				break
			}
			r.cond.Wait()
			r.idle--
		}
		if r.stopped && !r.availableLocked(id) {
			r.mu.Unlock()
			return
		}
		in := r.dequeueLocked(id)
		if in == nil {
			r.mu.Unlock()
			continue
		}
		if err := r.tr.Start(in); err != nil {
			r.mu.Unlock()
			r.fail(err)
			return
		}
		r.inflight++
		r.mu.Unlock()

		if err := r.execute(id, in); err != nil {
			r.mu.Lock()
			r.inflight--
			r.mu.Unlock()
			r.fail(err)
			return
		}
		r.mu.Lock()
		r.inflight--
		r.mu.Unlock()
	}
}

func workersOf(r *runner) int { return r.workersCount }

func (r *runner) execute(worker int, in *ptg.Instance) error {
	ctx := &ptg.Ctx{
		Args: in.Ref.Args,
		Node: in.Node,
		In:   in.In,
		Out:  make([]any, len(in.In)),
	}
	copy(ctx.Out, in.In)
	t0 := time.Now()
	if body := in.Class.Body; body != nil {
		if err := safeBody(body, ctx, in); err != nil {
			return err
		}
	}
	dur := time.Since(t0)

	r.mu.Lock()
	r.busy += dur
	r.byClass[in.Ref.Class]++
	dels, _, err := r.tr.Complete(in)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	for _, d := range dels {
		ready, derr := r.tr.Deliver(d.To, d.ToFlow, ctx.Out[d.FromFlow])
		if derr != nil {
			r.mu.Unlock()
			return derr
		}
		if ready {
			r.enqueueLocked(d.To)
		}
	}
	r.mu.Unlock()

	if obs := r.cfg.Observer; obs != nil {
		obs(Event{Task: in.Ref, Worker: worker, Start: t0.Sub(r.start), End: t0.Add(dur).Sub(r.start)})
	}
	return nil
}

func safeBody(body func(*ptg.Ctx), ctx *ptg.Ctx, in *ptg.Instance) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("runtime: task %v panicked: %v", in.Ref, rec)
		}
	}()
	body(ctx)
	return nil
}
