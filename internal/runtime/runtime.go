// Package runtime executes a Parameterized Task Graph with real data on
// shared-memory worker goroutines. It is the execution half of the
// PaRSEC-style system for in-process use: an event-driven scheduler that
// reacts to task completions by evaluating the PTG's dataflow (§II-B),
// delivering payloads to successors, and dispatching newly ready tasks to
// workers in priority order.
//
// The scheduler is sharded the way PaRSEC's per-thread ready queues are
// (§IV-D): each worker owns a mutex-protected priority deque and pushes,
// pops, and is stolen from under that shard's lock only. Idle workers
// park on per-worker wake channels instead of a global condition
// broadcast, and PerWorkerSteal performs randomized victim selection that
// locks one victim at a time. Completion and dataflow delivery run on the
// tracker's own synchronization (see ptg.Tracker), so task bodies and
// successor activation never serialize against dispatch.
//
// The distributed, simulated-machine counterpart is internal/simexec;
// both consume the same graphs, and both take every scheduling decision
// — pop order, queue pinning, steal-victim choice — from the shared
// core in internal/sched, which the conformance suite there proves they
// apply identically.
package runtime

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parsec/internal/ptg"
	"parsec/internal/sched"
	"parsec/internal/tensor/pool"
)

// ErrCanceled is the error Run returns when Config.Cancel fires before
// the graph completes. Task bodies already executing finish normally —
// cancellation is only observed between tasks — and every worker's
// scratch shard is drained before Run returns, so a canceled run leaks
// nothing. Callers distinguish cancellation from task failure with
// errors.Is.
var ErrCanceled = errors.New("runtime: run canceled")

// Event records one task execution for tracing.
type Event struct {
	Task   ptg.TaskRef
	Worker int
	Start  time.Duration // since Run began
	End    time.Duration
}

// Config controls a run.
type Config struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	Policy  sched.Policy
	// Queues selects the ready-queue structure (default SharedQueue).
	Queues sched.QueueMode
	// Observer, if set, receives an Event after each task completes.
	// Called concurrently from workers; must be safe.
	Observer func(Event)
	// TaskDelay, if set, is called before each task body with the
	// executing worker and instance, and the worker sleeps for the
	// returned duration. It is a fault-injection hook: straggler tests
	// slow chosen workers down to exercise steal-under-straggler on the
	// real runtime. Called concurrently from workers; must be safe.
	TaskDelay func(worker int, ref ptg.TaskRef) time.Duration
	// SchedObserver, if set, receives every scheduling decision
	// (enqueue/pop/steal) as the core makes it. Called concurrently
	// from workers, sometimes under a shard lock: it must be cheap,
	// safe, and must not call back into the runtime. The conformance
	// suite in internal/sched uses it to compare decisions against the
	// simulator's.
	SchedObserver sched.Observer
	// Cancel, if non-nil, aborts the run as soon as it becomes
	// readable (typically by closing it): no new task starts, running
	// bodies finish, and Run returns ErrCanceled. This is the hook the
	// long-running service threads a job's cancellation through.
	Cancel <-chan struct{}
}

// SchedStats exposes the scheduler's internal counters for one run,
// the shared-memory analogue of the per-thread-queue behavior the paper
// discusses in §IV-D (work stealing inside the node).
type SchedStats struct {
	// StealAttempts counts victim probes by workers whose own deque was
	// empty (PerWorkerSteal only); Steals counts probes that won a task.
	StealAttempts int64
	Steals        int64
	// Parks counts workers going to sleep; Wakes counts unpark tokens
	// delivered by enqueuers (stop-time broadcasts are not counted).
	Parks int64
	Wakes int64
	// LendSpans counts intra-task parallel regions published by task
	// bodies (team.Parallelism.Span with parts > 1); LendHelped counts
	// span parts executed by volunteering idle workers — parts the
	// spanning worker ran itself are not helped.
	LendSpans  int64
	LendHelped int64
	// PerWorkerTasks is the number of task bodies each worker executed.
	PerWorkerTasks []int64
	// MaxQueueDepth is the deepest any single shard grew.
	MaxQueueDepth int
}

// String summarizes the counters in one line.
func (s SchedStats) String() string {
	return fmt.Sprintf("steals %d/%d, parks %d, wakes %d, max queue depth %d",
		s.Steals, s.StealAttempts, s.Parks, s.Wakes, s.MaxQueueDepth)
}

// Report summarizes a completed run.
type Report struct {
	Tasks    int
	ByClass  map[string]int
	Workers  int
	Elapsed  time.Duration
	BusyTime time.Duration // summed task execution time across workers
	Sched    SchedStats
}

// String summarizes the run in one line.
func (r Report) String() string {
	return fmt.Sprintf("%d tasks on %d workers in %v (busy %v)", r.Tasks, r.Workers, r.Elapsed, r.BusyTime)
}

// shard is one mutex-protected ready deque. SharedQueue uses a single
// shard all workers pop from; the per-worker modes give each worker its
// own. The queue discipline (Before-ordered heap, or a LIFO stack for
// SharedQueue+LIFOOrder only) comes from the scheduling core.
type shard struct {
	mu       sync.Mutex
	q        sched.Queue
	maxDepth int
	// size is a lock-free emptiness hint for steal victim selection and
	// park rechecks. It is only written when the shard flips between
	// empty and nonempty, so steady-state pushes and pops pay no locked
	// instruction for it; between flips it may understate the depth but
	// never misreports emptiness.
	size atomic.Int64
	_    [40]byte // pad to a cache line against false sharing
}

// workerState holds one worker's parking slot and private counters.
// Counters are written only by the owning worker (or, for parked, via
// atomics) and read after all workers have joined.
type workerState struct {
	park      chan struct{} // buffered(1): wake tokens coalesce, never drop
	parked    atomic.Bool
	rng       sched.RNG
	tasks     int64
	parks     int64
	probes    int64 // steal attempts
	steals    int64
	busy      time.Duration
	parkedFor time.Duration // time spent blocked in park (coarse busy accounting)
	byClass   map[string]int
	scratch   []*ptg.Instance   // reusable ready-successor buffer
	buckets   [][]*ptg.Instance // reusable per-shard batch buckets
	// loc is the worker's scratch shard for pooled kernel buffers:
	// single-owner Get/Put cycles stay on this unsynchronized free list
	// instead of the shared size-class pool.
	loc *pool.Local
	// spans counts parallel regions this worker's tasks published;
	// helped counts span parts this worker ran for other workers' tasks.
	spans  int64
	helped int64
}

// Run executes the graph to completion and returns a report. Execution is
// aborted with an error if a task body panics or the graph deadlocks.
func Run(g *ptg.Graph, cfg Config) (Report, error) {
	tr, err := ptg.NewTracker(g)
	if err != nil {
		return Report{}, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nshards := workers
	if cfg.Queues == sched.SharedQueue {
		nshards = 1
	}

	r := &runner{
		tr:     tr,
		cfg:    cfg,
		shards: make([]shard, nshards),
		ws:     make([]workerState, workers),
		start:  time.Now(),
	}
	for i := range r.shards {
		r.shards[i].q = sched.NewQueue(cfg.Policy, cfg.Queues)
	}
	for i := range r.ws {
		r.ws[i].park = make(chan struct{}, 1)
		r.ws[i].rng = sched.NewRNG(i)
		r.ws[i].byClass = make(map[string]int)
		r.ws[i].loc = pool.NewLocal()
	}

	initial := tr.InitialReady()
	r.pending.Store(int64(len(initial)))
	r.enqueueBatch(&r.ws[0], initial) // workers not yet started; safe to borrow
	if len(initial) == 0 {
		if !tr.Done() {
			// Nothing can ever become ready: no task has all inputs
			// satisfied and no completion will fire.
			return Report{Workers: workers, ByClass: map[string]int{}},
				fmt.Errorf("runtime: deadlock with %d tasks remaining", tr.Remaining())
		}
		r.stop.Store(true) // empty graph
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.work(id)
		}(w)
	}
	if cfg.Cancel != nil {
		// The watcher halts the run on cancellation; closing watchDone
		// after the workers join releases it when the run wins the race.
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-cfg.Cancel:
				r.fail(ErrCanceled)
			case <-watchDone:
			}
		}()
	}
	wg.Wait()

	if r.err == nil {
		if qerr := tr.CheckQuiescent(); qerr != nil {
			r.err = qerr
		}
	}

	rep := Report{
		Tasks:   tr.NumInstances() - tr.Remaining(),
		ByClass: make(map[string]int),
		Workers: workers,
		Elapsed: time.Since(r.start),
		Sched:   SchedStats{PerWorkerTasks: make([]int64, workers)},
	}
	for i := range r.ws {
		ws := &r.ws[i]
		rep.BusyTime += ws.busy
		rep.Sched.PerWorkerTasks[i] = ws.tasks
		rep.Sched.Parks += ws.parks
		rep.Sched.StealAttempts += ws.probes
		rep.Sched.Steals += ws.steals
		rep.Sched.LendSpans += ws.spans
		rep.Sched.LendHelped += ws.helped
		for c, n := range ws.byClass {
			rep.ByClass[c] += n
		}
		ws.loc.Drain()
	}
	rep.Sched.Wakes = r.wakes.Load()
	for i := range r.shards {
		if d := r.shards[i].maxDepth; d > rep.Sched.MaxQueueDepth {
			rep.Sched.MaxQueueDepth = d
		}
	}
	return rep, r.err
}

type runner struct {
	tr  *ptg.Tracker
	cfg Config

	shards []shard
	ws     []workerState

	// pending counts tasks that are ready-queued or running: incremented
	// before a task is enqueued, decremented only after its completion
	// has enqueued every successor it made ready. The worker that drives
	// it to zero owns termination: graph done, or deadlock.
	pending atomic.Int64
	stop    atomic.Bool
	wakes   atomic.Int64
	// lend tracks intra-task parallel regions with unclaimed parts
	// (lend.go).
	lend lendState
	// nparked counts workers currently parked, letting enqueuers skip the
	// wake scan entirely when every worker is busy (the common case on a
	// loaded system). A worker increments it after publishing parked and
	// before its recheck; whoever flips parked back to false decrements.
	// Sequentially consistent atomics make this a Dekker pair with the
	// shard size mirrors: an enqueuer either sees the parker, or the
	// parker's recheck sees the enqueued work.
	nparked atomic.Int64

	errMu sync.Mutex
	err   error

	start time.Time
}

// shardFor returns the shard index a ready instance is pinned to (the
// core's static Seq-modulo assignment).
func (r *runner) shardFor(in *ptg.Instance) int {
	return sched.HomeQueue(in, len(r.shards))
}

// pushLocked appends an instance to a shard; the caller holds s.mu.
func (r *runner) pushLocked(si int, in *ptg.Instance) {
	s := &r.shards[si]
	depth := s.q.Push(in)
	if depth > s.maxDepth {
		s.maxDepth = depth
	}
	if depth == 1 {
		s.size.Store(1) // empty -> nonempty flip
	}
	r.observe(sched.OpEnqueue, -1, si, in)
}

// observe forwards one scheduling decision to the configured observer.
// Kept out of line from the nil check so the no-observer hot path pays
// a single branch.
func (r *runner) observe(op sched.Op, worker, queue int, in *ptg.Instance) {
	if obs := r.cfg.SchedObserver; obs != nil {
		obs(sched.Event{Op: op, Worker: worker, Queue: queue, Inst: in, Total: -1, Ts: r.Now()})
	}
}

// enqueue pushes a ready instance onto its shard and wakes a worker that
// can run it. Only the shard's own lock is held during the push.
func (r *runner) enqueue(in *ptg.Instance) {
	si := r.shardFor(in)
	s := &r.shards[si]
	s.mu.Lock()
	r.pushLocked(si, in)
	s.mu.Unlock()
	r.wakeFor(si)
}

// enqueueBatch pushes all successors released by one completion, locking
// each destination shard once rather than once per task, then wakes
// enough workers to absorb the batch. ws provides reusable per-shard
// buckets so the single grouping pass allocates nothing in steady state.
func (r *runner) enqueueBatch(ws *workerState, ins []*ptg.Instance) {
	if len(ins) == 0 {
		return
	}
	if len(ins) == 1 {
		r.enqueue(ins[0])
		return
	}
	nsh := len(r.shards)
	if nsh == 1 {
		s := &r.shards[0]
		s.mu.Lock()
		for _, in := range ins {
			r.pushLocked(0, in)
		}
		s.mu.Unlock()
	} else {
		if len(ws.buckets) != nsh {
			ws.buckets = make([][]*ptg.Instance, nsh)
		}
		for _, in := range ins {
			b := in.Seq % nsh
			ws.buckets[b] = append(ws.buckets[b], in)
		}
		for si, bucket := range ws.buckets {
			if len(bucket) == 0 {
				continue
			}
			s := &r.shards[si]
			s.mu.Lock()
			for _, in := range bucket {
				r.pushLocked(si, in)
			}
			s.mu.Unlock()
			ws.buckets[si] = bucket[:0]
		}
	}
	r.wakeBatch(len(ins))
}

// wakeBatch unparks workers after a batch push: in PerWorker mode each
// nonempty shard's owner (nobody else may run its tasks), otherwise any
// parked workers, at most one per new task.
func (r *runner) wakeBatch(n int) {
	if r.cfg.Queues == sched.PerWorker {
		for si := range r.shards {
			if r.nparked.Load() == 0 {
				return
			}
			if r.shards[si].size.Load() > 0 {
				r.wake(si)
			}
		}
		return
	}
	for w := 0; w < len(r.ws) && n > 0; w++ {
		if r.nparked.Load() == 0 {
			return
		}
		if r.wake(w) {
			n--
		}
	}
}

// wakeFor unparks a worker able to run work that just landed on shard
// si: the owner if it is parked, else (when other workers may take the
// task) any parked worker.
func (r *runner) wakeFor(si int) {
	if r.nparked.Load() == 0 {
		return // every worker is already running; nobody to wake
	}
	skip := -1 // in shared mode si indexes the lone shard, not a worker
	if r.cfg.Queues != sched.SharedQueue {
		if r.wake(si) {
			return
		}
		if r.cfg.Queues == sched.PerWorker {
			return // only the pinned owner may run it
		}
		skip = si
	}
	for w := range r.ws {
		if w != skip && r.wake(w) {
			return
		}
	}
}

// wake delivers an unpark token to worker w if it is parked. The CAS
// makes exactly one enqueuer responsible for the token.
func (r *runner) wake(w int) bool {
	ws := &r.ws[w]
	if ws.parked.CompareAndSwap(true, false) {
		r.nparked.Add(-1)
		r.wakes.Add(1)
		select {
		case ws.park <- struct{}{}:
		default:
		}
		return true
	}
	return false
}

// halt stops every worker: parked ones get a token, running ones see the
// flag when they next look for work.
func (r *runner) halt() {
	r.stop.Store(true)
	for i := range r.ws {
		select {
		case r.ws[i].park <- struct{}{}:
		default:
		}
	}
}

func (r *runner) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.halt()
}

// popShard pops the best task from one shard, or nil.
func (r *runner) popShard(si int) *ptg.Instance {
	s := &r.shards[si]
	s.mu.Lock()
	in, left := s.q.Pop()
	if in != nil && left == 0 {
		s.size.Store(0) // nonempty -> empty flip
	}
	s.mu.Unlock()
	return in
}

// steal probes victims in the core's randomized order, locking only one
// victim shard at a time, and takes that victim's best task (PaRSEC
// steals ready work rather than rebalancing whole queues, §IV-D).
func (r *runner) steal(id int) *ptg.Instance {
	ws := &r.ws[id]
	var got *ptg.Instance
	sched.EachVictim(&ws.rng, id, len(r.shards), func(v int) bool {
		if r.shards[v].size.Load() == 0 {
			return false
		}
		ws.probes++
		if in := r.popShard(v); in != nil {
			ws.steals++
			got = in
			r.observe(sched.OpSteal, id, v, in)
			return true
		}
		return false
	})
	return got
}

// tryGet returns the next task for worker id: local pop first, then a
// randomized steal when the mode allows it.
func (r *runner) tryGet(id int) *ptg.Instance {
	own := id
	if r.cfg.Queues == sched.SharedQueue {
		own = 0
	}
	if in := r.popShard(own); in != nil {
		r.observe(sched.OpPop, id, own, in)
		return in
	}
	if r.cfg.Queues == sched.PerWorkerSteal {
		return r.steal(id)
	}
	return nil
}

// hasWork reports whether worker id could obtain a task right now,
// using the shards' lock-free size mirrors.
func (r *runner) hasWork(id int) bool {
	if r.cfg.Queues == sched.SharedQueue {
		return r.shards[0].size.Load() > 0
	}
	if r.shards[id].size.Load() > 0 {
		return true
	}
	if r.cfg.Queues == sched.PerWorkerSteal {
		for i := range r.shards {
			if r.shards[i].size.Load() > 0 {
				return true
			}
		}
	}
	return false
}

// The runner is the scheduling core's substrate on real hardware: the
// wall clock, and the park/unpark coordinator as the idle primitive.
var _ sched.Substrate = (*runner)(nil)

// Now returns nanoseconds since Run began (sched.Substrate).
func (r *runner) Now() int64 { return int64(time.Since(r.start)) }

// Idle parks the worker until an enqueuer wakes it (sched.Substrate).
func (r *runner) Idle(worker int) { r.park(worker) }

// Kick wakes a parked worker (sched.Substrate).
func (r *runner) Kick(worker int) { r.wake(worker) }

// park blocks worker id until an enqueuer wakes it or the run stops.
// Publishing parked before the recheck closes the race with enqueue:
// any push that the recheck misses happens after parked was visible, so
// that enqueuer's wake CAS succeeds and leaves a token in the channel.
func (r *runner) park(id int) {
	ws := &r.ws[id]
	ws.parks++
	ws.parked.Store(true)
	r.nparked.Add(1)
	if r.stop.Load() || r.hasWork(id) || r.hasHelp() {
		r.unparkSelf(ws)
		return
	}
	t0 := time.Now()
	<-ws.park
	ws.parkedFor += time.Since(t0)
	r.unparkSelf(ws)
}

// unparkSelf clears the worker's parked flag if no waker already claimed
// it; exactly one side of that race decrements nparked.
func (r *runner) unparkSelf(ws *workerState) {
	if ws.parked.CompareAndSwap(true, false) {
		r.nparked.Add(-1)
	}
}

func (r *runner) work(id int) {
	ws := &r.ws[id]
	t0 := time.Now()
	defer func() {
		// Without an Observer, busy is coarse: the worker's unparked
		// time. Per-task timestamping costs two clock reads per task —
		// measurable against sub-microsecond bodies — so the precise
		// accounting only runs when someone asked to see it.
		if r.cfg.Observer == nil {
			ws.busy = time.Since(t0) - ws.parkedFor
		}
	}()
	for {
		if r.stop.Load() {
			return
		}
		in := r.tryGet(id)
		if in == nil {
			// No ready task anywhere: volunteer for a published span
			// before sleeping — lending only ever recruits idle workers.
			if r.tryHelp(id) {
				continue
			}
			r.Idle(id)
			continue
		}
		if err := r.tr.Start(in); err != nil {
			r.fail(err)
			return
		}
		if err := r.execute(id, in); err != nil {
			r.fail(err)
			return
		}
	}
}

func (r *runner) execute(worker int, in *ptg.Instance) error {
	ws := &r.ws[worker]
	ctx := &ptg.Ctx{
		Args: in.Ref.Args,
		Node: in.Node,
		Seq:  in.Seq,
		In:   in.In,
		Out:  make([]any, len(in.In)),
		Pool: ws.loc,
		Par:  workerTeam{r: r, id: worker},
	}
	copy(ctx.Out, in.In)
	obs := r.cfg.Observer
	if delay := r.cfg.TaskDelay; delay != nil {
		if d := delay(worker, in.Ref); d > 0 {
			time.Sleep(d)
		}
	}
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	if body := in.Class.Body; body != nil {
		if err := safeBody(body, ctx, in); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("runtime: task %v failed: %w", in.Ref, err)
		}
	}
	var dur time.Duration
	if obs != nil {
		dur = time.Since(t0)
		ws.busy += dur
	}
	ws.byClass[in.Ref.Class]++
	ws.tasks++

	// Completion and successor activation synchronize on the tracker's
	// own lock, not on any scheduler structure. One lock acquisition
	// covers the completion and every delivery it triggers.
	ready, err := r.tr.CompleteDeliver(in, ctx.Out, ws.scratch[:0])
	if err != nil {
		return err
	}
	// This task's pending token transfers to its successors: one net
	// update covers the -1 for completing and the +1 per ready successor,
	// so a chain step touches the counter not at all. The increment side
	// lands before the batch is visible to other workers, so pending only
	// reaches zero at true quiescence: nothing queued, nothing running.
	switch n := len(ready); {
	case n > 1:
		r.pending.Add(int64(n - 1))
		r.enqueueBatch(ws, ready)
	case n == 1:
		r.enqueue(ready[0])
	default:
		if r.pending.Add(-1) == 0 {
			if r.tr.Done() {
				r.halt()
			} else {
				r.fail(fmt.Errorf("runtime: deadlock with %d tasks remaining", r.tr.Remaining()))
			}
		}
	}
	ws.scratch = ready[:0]

	if obs != nil {
		obs(Event{Task: in.Ref, Worker: worker, Start: t0.Sub(r.start), End: t0.Add(dur).Sub(r.start)})
	}
	return nil
}

func safeBody(body func(*ptg.Ctx), ctx *ptg.Ctx, in *ptg.Instance) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("runtime: task %v panicked: %v", in.Ref, rec)
		}
	}()
	body(ctx)
	return nil
}
