// Package runtime executes a Parameterized Task Graph with real data on
// shared-memory worker goroutines. It is the execution half of the
// PaRSEC-style system for in-process use: an event-driven scheduler that
// reacts to task completions by evaluating the PTG's dataflow (§II-B),
// delivering payloads to successors, and dispatching newly ready tasks to
// workers in priority order.
//
// The scheduler is sharded the way PaRSEC's per-thread ready queues are
// (§IV-D): each worker owns a mutex-protected priority deque and pushes,
// pops, and is stolen from under that shard's lock only. Idle workers
// park on per-worker wake channels instead of a global condition
// broadcast, and PerWorkerSteal performs randomized victim selection that
// locks one victim at a time. Completion and dataflow delivery run on the
// tracker's own synchronization (see ptg.Tracker), so task bodies and
// successor activation never serialize against dispatch.
//
// The distributed, simulated-machine counterpart is internal/simexec;
// both consume the same graphs.
package runtime

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parsec/internal/ptg"
)

// Policy selects how ready tasks are ordered.
type Policy int

const (
	// PriorityOrder dispatches the highest-priority ready task first
	// (ties broken by creation order). This is PaRSEC's behavior when the
	// developer supplies priority expressions (§IV-C).
	PriorityOrder Policy = iota
	// LIFOOrder dispatches the most recently enqueued ready task first,
	// ignoring priorities — the behavior the paper's v2 variant exhibits
	// with no priorities set (§V, Fig 11).
	LIFOOrder
)

// String names the policy ("priority" or "lifo").
func (p Policy) String() string {
	if p == LIFOOrder {
		return "lifo"
	}
	return "priority"
}

// QueueMode selects how ready tasks are distributed among workers,
// mirroring internal/simexec: one shared queue (dynamic load balancing),
// statically pinned per-worker queues, or pinned queues with stealing —
// PaRSEC's per-thread queues correspond to PerWorkerSteal.
type QueueMode int

// The queue modes: one shared queue, pinned per-worker queues, and
// pinned queues with randomized stealing.
const (
	SharedQueue QueueMode = iota
	PerWorker
	PerWorkerSteal
)

// String names the queue mode ("shared", "pinned", "pinned-steal").
func (q QueueMode) String() string {
	switch q {
	case PerWorker:
		return "pinned"
	case PerWorkerSteal:
		return "pinned-steal"
	}
	return "shared"
}

// Event records one task execution for tracing.
type Event struct {
	Task   ptg.TaskRef
	Worker int
	Start  time.Duration // since Run began
	End    time.Duration
}

// Config controls a run.
type Config struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	Policy  Policy
	// Queues selects the ready-queue structure (default SharedQueue).
	Queues QueueMode
	// Observer, if set, receives an Event after each task completes.
	// Called concurrently from workers; must be safe.
	Observer func(Event)
	// TaskDelay, if set, is called before each task body with the
	// executing worker and instance, and the worker sleeps for the
	// returned duration. It is a fault-injection hook: straggler tests
	// slow chosen workers down to exercise steal-under-straggler on the
	// real runtime. Called concurrently from workers; must be safe.
	TaskDelay func(worker int, ref ptg.TaskRef) time.Duration
}

// SchedStats exposes the scheduler's internal counters for one run,
// the shared-memory analogue of the per-thread-queue behavior the paper
// discusses in §IV-D (work stealing inside the node).
type SchedStats struct {
	// StealAttempts counts victim probes by workers whose own deque was
	// empty (PerWorkerSteal only); Steals counts probes that won a task.
	StealAttempts int64
	Steals        int64
	// Parks counts workers going to sleep; Wakes counts unpark tokens
	// delivered by enqueuers (stop-time broadcasts are not counted).
	Parks int64
	Wakes int64
	// PerWorkerTasks is the number of task bodies each worker executed.
	PerWorkerTasks []int64
	// MaxQueueDepth is the deepest any single shard grew.
	MaxQueueDepth int
}

// String summarizes the counters in one line.
func (s SchedStats) String() string {
	return fmt.Sprintf("steals %d/%d, parks %d, wakes %d, max queue depth %d",
		s.Steals, s.StealAttempts, s.Parks, s.Wakes, s.MaxQueueDepth)
}

// Report summarizes a completed run.
type Report struct {
	Tasks    int
	ByClass  map[string]int
	Workers  int
	Elapsed  time.Duration
	BusyTime time.Duration // summed task execution time across workers
	Sched    SchedStats
}

// String summarizes the run in one line.
func (r Report) String() string {
	return fmt.Sprintf("%d tasks on %d workers in %v (busy %v)", r.Tasks, r.Workers, r.Elapsed, r.BusyTime)
}

// readyHeap orders instances by descending priority, then ascending
// creation sequence.
type readyHeap []*ptg.Instance

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].Seq < h[j].Seq
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(*ptg.Instance)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// shard is one mutex-protected ready deque. SharedQueue uses a single
// shard all workers pop from; the per-worker modes give each worker its
// own. The stack is only used by SharedQueue+LIFOOrder (the per-worker
// modes always order by priority, as before the sharding).
type shard struct {
	mu       sync.Mutex
	heap     readyHeap
	stack    []*ptg.Instance
	maxDepth int
	// size is a lock-free emptiness hint for steal victim selection and
	// park rechecks. It is only written when the shard flips between
	// empty and nonempty, so steady-state pushes and pops pay no locked
	// instruction for it; between flips it may understate the depth but
	// never misreports emptiness.
	size atomic.Int64
	_    [40]byte // pad to a cache line against false sharing
}

// workerState holds one worker's parking slot and private counters.
// Counters are written only by the owning worker (or, for parked, via
// atomics) and read after all workers have joined.
type workerState struct {
	park      chan struct{} // buffered(1): wake tokens coalesce, never drop
	parked    atomic.Bool
	rng       uint64
	tasks     int64
	parks     int64
	probes    int64 // steal attempts
	steals    int64
	busy      time.Duration
	parkedFor time.Duration // time spent blocked in park (coarse busy accounting)
	byClass   map[string]int
	scratch   []*ptg.Instance   // reusable ready-successor buffer
	buckets   [][]*ptg.Instance // reusable per-shard batch buckets
}

func (ws *workerState) nextRand() uint64 {
	x := ws.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ws.rng = x
	return x
}

// Run executes the graph to completion and returns a report. Execution is
// aborted with an error if a task body panics or the graph deadlocks.
func Run(g *ptg.Graph, cfg Config) (Report, error) {
	tr, err := ptg.NewTracker(g)
	if err != nil {
		return Report{}, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nshards := workers
	if cfg.Queues == SharedQueue {
		nshards = 1
	}

	r := &runner{
		tr:     tr,
		cfg:    cfg,
		shards: make([]shard, nshards),
		ws:     make([]workerState, workers),
		start:  time.Now(),
	}
	for i := range r.ws {
		r.ws[i].park = make(chan struct{}, 1)
		r.ws[i].rng = uint64(i)*0x9E3779B97F4A7C15 + 1
		r.ws[i].byClass = make(map[string]int)
	}

	initial := tr.InitialReady()
	r.pending.Store(int64(len(initial)))
	r.enqueueBatch(&r.ws[0], initial) // workers not yet started; safe to borrow
	if len(initial) == 0 {
		if !tr.Done() {
			// Nothing can ever become ready: no task has all inputs
			// satisfied and no completion will fire.
			return Report{Workers: workers, ByClass: map[string]int{}},
				fmt.Errorf("runtime: deadlock with %d tasks remaining", tr.Remaining())
		}
		r.stop.Store(true) // empty graph
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.work(id)
		}(w)
	}
	wg.Wait()

	if r.err == nil {
		if qerr := tr.CheckQuiescent(); qerr != nil {
			r.err = qerr
		}
	}

	rep := Report{
		Tasks:   tr.NumInstances() - tr.Remaining(),
		ByClass: make(map[string]int),
		Workers: workers,
		Elapsed: time.Since(r.start),
		Sched:   SchedStats{PerWorkerTasks: make([]int64, workers)},
	}
	for i := range r.ws {
		ws := &r.ws[i]
		rep.BusyTime += ws.busy
		rep.Sched.PerWorkerTasks[i] = ws.tasks
		rep.Sched.Parks += ws.parks
		rep.Sched.StealAttempts += ws.probes
		rep.Sched.Steals += ws.steals
		for c, n := range ws.byClass {
			rep.ByClass[c] += n
		}
	}
	rep.Sched.Wakes = r.wakes.Load()
	for i := range r.shards {
		if d := r.shards[i].maxDepth; d > rep.Sched.MaxQueueDepth {
			rep.Sched.MaxQueueDepth = d
		}
	}
	return rep, r.err
}

type runner struct {
	tr  *ptg.Tracker
	cfg Config

	shards []shard
	ws     []workerState

	// pending counts tasks that are ready-queued or running: incremented
	// before a task is enqueued, decremented only after its completion
	// has enqueued every successor it made ready. The worker that drives
	// it to zero owns termination: graph done, or deadlock.
	pending atomic.Int64
	stop    atomic.Bool
	wakes   atomic.Int64
	// nparked counts workers currently parked, letting enqueuers skip the
	// wake scan entirely when every worker is busy (the common case on a
	// loaded system). A worker increments it after publishing parked and
	// before its recheck; whoever flips parked back to false decrements.
	// Sequentially consistent atomics make this a Dekker pair with the
	// shard size mirrors: an enqueuer either sees the parker, or the
	// parker's recheck sees the enqueued work.
	nparked atomic.Int64

	errMu sync.Mutex
	err   error

	start time.Time
}

// shardFor returns the shard index a ready instance is pinned to.
func (r *runner) shardFor(in *ptg.Instance) int {
	if r.cfg.Queues == SharedQueue {
		return 0
	}
	return in.Seq % len(r.shards)
}

// pushLocked appends an instance to a shard; the caller holds s.mu.
func (r *runner) pushLocked(s *shard, in *ptg.Instance) {
	var depth int
	if r.cfg.Queues == SharedQueue && r.cfg.Policy == LIFOOrder {
		s.stack = append(s.stack, in)
		depth = len(s.stack)
	} else {
		heap.Push(&s.heap, in)
		depth = len(s.heap)
	}
	if depth > s.maxDepth {
		s.maxDepth = depth
	}
	if depth == 1 {
		s.size.Store(1) // empty -> nonempty flip
	}
}

// enqueue pushes a ready instance onto its shard and wakes a worker that
// can run it. Only the shard's own lock is held during the push.
func (r *runner) enqueue(in *ptg.Instance) {
	si := r.shardFor(in)
	s := &r.shards[si]
	s.mu.Lock()
	r.pushLocked(s, in)
	s.mu.Unlock()
	r.wakeFor(si)
}

// enqueueBatch pushes all successors released by one completion, locking
// each destination shard once rather than once per task, then wakes
// enough workers to absorb the batch. ws provides reusable per-shard
// buckets so the single grouping pass allocates nothing in steady state.
func (r *runner) enqueueBatch(ws *workerState, ins []*ptg.Instance) {
	if len(ins) == 0 {
		return
	}
	if len(ins) == 1 {
		r.enqueue(ins[0])
		return
	}
	nsh := len(r.shards)
	if nsh == 1 {
		s := &r.shards[0]
		s.mu.Lock()
		for _, in := range ins {
			r.pushLocked(s, in)
		}
		s.mu.Unlock()
	} else {
		if len(ws.buckets) != nsh {
			ws.buckets = make([][]*ptg.Instance, nsh)
		}
		for _, in := range ins {
			b := in.Seq % nsh
			ws.buckets[b] = append(ws.buckets[b], in)
		}
		for si, bucket := range ws.buckets {
			if len(bucket) == 0 {
				continue
			}
			s := &r.shards[si]
			s.mu.Lock()
			for _, in := range bucket {
				r.pushLocked(s, in)
			}
			s.mu.Unlock()
			ws.buckets[si] = bucket[:0]
		}
	}
	r.wakeBatch(len(ins))
}

// wakeBatch unparks workers after a batch push: in PerWorker mode each
// nonempty shard's owner (nobody else may run its tasks), otherwise any
// parked workers, at most one per new task.
func (r *runner) wakeBatch(n int) {
	if r.cfg.Queues == PerWorker {
		for si := range r.shards {
			if r.nparked.Load() == 0 {
				return
			}
			if r.shards[si].size.Load() > 0 {
				r.wake(si)
			}
		}
		return
	}
	for w := 0; w < len(r.ws) && n > 0; w++ {
		if r.nparked.Load() == 0 {
			return
		}
		if r.wake(w) {
			n--
		}
	}
}

// wakeFor unparks a worker able to run work that just landed on shard
// si: the owner if it is parked, else (when other workers may take the
// task) any parked worker.
func (r *runner) wakeFor(si int) {
	if r.nparked.Load() == 0 {
		return // every worker is already running; nobody to wake
	}
	skip := -1 // in shared mode si indexes the lone shard, not a worker
	if r.cfg.Queues != SharedQueue {
		if r.wake(si) {
			return
		}
		if r.cfg.Queues == PerWorker {
			return // only the pinned owner may run it
		}
		skip = si
	}
	for w := range r.ws {
		if w != skip && r.wake(w) {
			return
		}
	}
}

// wake delivers an unpark token to worker w if it is parked. The CAS
// makes exactly one enqueuer responsible for the token.
func (r *runner) wake(w int) bool {
	ws := &r.ws[w]
	if ws.parked.CompareAndSwap(true, false) {
		r.nparked.Add(-1)
		r.wakes.Add(1)
		select {
		case ws.park <- struct{}{}:
		default:
		}
		return true
	}
	return false
}

// halt stops every worker: parked ones get a token, running ones see the
// flag when they next look for work.
func (r *runner) halt() {
	r.stop.Store(true)
	for i := range r.ws {
		select {
		case r.ws[i].park <- struct{}{}:
		default:
		}
	}
}

func (r *runner) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.halt()
}

// popShard pops the best task from one shard, or nil.
func (r *runner) popShard(si int) *ptg.Instance {
	s := &r.shards[si]
	s.mu.Lock()
	var in *ptg.Instance
	var left int
	if r.cfg.Queues == SharedQueue && r.cfg.Policy == LIFOOrder {
		if n := len(s.stack); n > 0 {
			in = s.stack[n-1]
			s.stack[n-1] = nil
			s.stack = s.stack[:n-1]
			left = n - 1
		}
	} else if len(s.heap) > 0 {
		in = heap.Pop(&s.heap).(*ptg.Instance)
		left = len(s.heap)
	}
	if in != nil && left == 0 {
		s.size.Store(0) // nonempty -> empty flip
	}
	s.mu.Unlock()
	return in
}

// steal probes victims in a randomized order, locking only one victim
// shard at a time, and takes that victim's best task (PaRSEC steals
// ready work rather than rebalancing whole queues, §IV-D).
func (r *runner) steal(id int) *ptg.Instance {
	ws := &r.ws[id]
	n := len(r.shards)
	start := int(ws.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == id || r.shards[v].size.Load() == 0 {
			continue
		}
		ws.probes++
		if in := r.popShard(v); in != nil {
			ws.steals++
			return in
		}
	}
	return nil
}

// tryGet returns the next task for worker id: local pop first, then a
// randomized steal when the mode allows it.
func (r *runner) tryGet(id int) *ptg.Instance {
	if r.cfg.Queues == SharedQueue {
		return r.popShard(0)
	}
	if in := r.popShard(id); in != nil {
		return in
	}
	if r.cfg.Queues == PerWorkerSteal {
		return r.steal(id)
	}
	return nil
}

// hasWork reports whether worker id could obtain a task right now,
// using the shards' lock-free size mirrors.
func (r *runner) hasWork(id int) bool {
	if r.cfg.Queues == SharedQueue {
		return r.shards[0].size.Load() > 0
	}
	if r.shards[id].size.Load() > 0 {
		return true
	}
	if r.cfg.Queues == PerWorkerSteal {
		for i := range r.shards {
			if r.shards[i].size.Load() > 0 {
				return true
			}
		}
	}
	return false
}

// park blocks worker id until an enqueuer wakes it or the run stops.
// Publishing parked before the recheck closes the race with enqueue:
// any push that the recheck misses happens after parked was visible, so
// that enqueuer's wake CAS succeeds and leaves a token in the channel.
func (r *runner) park(id int) {
	ws := &r.ws[id]
	ws.parks++
	ws.parked.Store(true)
	r.nparked.Add(1)
	if r.stop.Load() || r.hasWork(id) {
		r.unparkSelf(ws)
		return
	}
	t0 := time.Now()
	<-ws.park
	ws.parkedFor += time.Since(t0)
	r.unparkSelf(ws)
}

// unparkSelf clears the worker's parked flag if no waker already claimed
// it; exactly one side of that race decrements nparked.
func (r *runner) unparkSelf(ws *workerState) {
	if ws.parked.CompareAndSwap(true, false) {
		r.nparked.Add(-1)
	}
}

func (r *runner) work(id int) {
	ws := &r.ws[id]
	t0 := time.Now()
	defer func() {
		// Without an Observer, busy is coarse: the worker's unparked
		// time. Per-task timestamping costs two clock reads per task —
		// measurable against sub-microsecond bodies — so the precise
		// accounting only runs when someone asked to see it.
		if r.cfg.Observer == nil {
			ws.busy = time.Since(t0) - ws.parkedFor
		}
	}()
	for {
		if r.stop.Load() {
			return
		}
		in := r.tryGet(id)
		if in == nil {
			r.park(id)
			continue
		}
		if err := r.tr.Start(in); err != nil {
			r.fail(err)
			return
		}
		if err := r.execute(id, in); err != nil {
			r.fail(err)
			return
		}
	}
}

func (r *runner) execute(worker int, in *ptg.Instance) error {
	ws := &r.ws[worker]
	ctx := &ptg.Ctx{
		Args: in.Ref.Args,
		Node: in.Node,
		Seq:  in.Seq,
		In:   in.In,
		Out:  make([]any, len(in.In)),
	}
	copy(ctx.Out, in.In)
	obs := r.cfg.Observer
	if delay := r.cfg.TaskDelay; delay != nil {
		if d := delay(worker, in.Ref); d > 0 {
			time.Sleep(d)
		}
	}
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	if body := in.Class.Body; body != nil {
		if err := safeBody(body, ctx, in); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("runtime: task %v failed: %w", in.Ref, err)
		}
	}
	var dur time.Duration
	if obs != nil {
		dur = time.Since(t0)
		ws.busy += dur
	}
	ws.byClass[in.Ref.Class]++
	ws.tasks++

	// Completion and successor activation synchronize on the tracker's
	// own lock, not on any scheduler structure. One lock acquisition
	// covers the completion and every delivery it triggers.
	ready, err := r.tr.CompleteDeliver(in, ctx.Out, ws.scratch[:0])
	if err != nil {
		return err
	}
	// This task's pending token transfers to its successors: one net
	// update covers the -1 for completing and the +1 per ready successor,
	// so a chain step touches the counter not at all. The increment side
	// lands before the batch is visible to other workers, so pending only
	// reaches zero at true quiescence: nothing queued, nothing running.
	switch n := len(ready); {
	case n > 1:
		r.pending.Add(int64(n - 1))
		r.enqueueBatch(ws, ready)
	case n == 1:
		r.enqueue(ready[0])
	default:
		if r.pending.Add(-1) == 0 {
			if r.tr.Done() {
				r.halt()
			} else {
				r.fail(fmt.Errorf("runtime: deadlock with %d tasks remaining", r.tr.Remaining()))
			}
		}
	}
	ws.scratch = ready[:0]

	if obs != nil {
		obs(Event{Task: in.Ref, Worker: worker, Start: t0.Sub(r.start), End: t0.Add(dur).Sub(r.start)})
	}
	return nil
}

func safeBody(body func(*ptg.Ctx), ctx *ptg.Ctx, in *ptg.Instance) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("runtime: task %v panicked: %v", in.Ref, rec)
		}
	}()
	body(ctx)
	return nil
}
