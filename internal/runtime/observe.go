package runtime

import (
	"parsec/internal/trace"
)

// TraceObserver returns an Observer that records every completed task
// into tr as a span on the given node, with the worker index as the
// thread lane and the task's canonical reference string (e.g.
// "GEMM(1,2,3)") as the label. That label convention matches
// internal/simexec's traces, so the result feeds the same consumers:
// trace rendering, internal/obsv profiles, and critical-path replay
// keyed by TaskRef. Safe for concurrent use, like trace.Trace.Add.
func TraceObserver(node int, tr *trace.Trace) func(Event) {
	return func(e Event) {
		tr.Add(trace.Event{
			Node:   node,
			Thread: e.Worker,
			Class:  e.Task.Class,
			Label:  e.Task.String(),
			Start:  int64(e.Start),
			End:    int64(e.End),
		})
	}
}
