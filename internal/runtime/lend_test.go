package runtime

import (
	"fmt"
	"math/rand"
	stdruntime "runtime"
	"sync/atomic"
	"testing"
	"time"

	"parsec/internal/ptg"
	"parsec/internal/tensor"
	"parsec/internal/tensor/pool"
)

// spanGraph builds count independent tasks whose bodies each Span the
// given part count, running body(part) inside each part.
func spanGraph(count, parts int, body func(task, part int)) *ptg.Graph {
	g := ptg.NewGraph("span")
	c := g.Class("S")
	c.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < count; i++ {
			emit(ptg.A1(i))
		}
	}
	c.Body = func(ctx *ptg.Ctx) {
		task := ctx.Args[0]
		ctx.Par.Span(parts, func(part int, _ *pool.Local) {
			body(task, part)
		})
	}
	return g
}

// TestLendSpanPartsRunOnce pins the claim protocol: every part of a
// published span executes exactly once, and the run reports the span.
func TestLendSpanPartsRunOnce(t *testing.T) {
	const parts = 16
	var counts [parts]atomic.Int32
	g := spanGraph(1, parts, func(_, part int) {
		counts[part].Add(1)
	})
	rep, err := Run(g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("part %d ran %d times, want 1", i, c)
		}
	}
	if rep.Sched.LendSpans != 1 {
		t.Errorf("LendSpans = %d, want 1", rep.Sched.LendSpans)
	}
}

// TestLendHelpersVolunteer pins that idle workers actually claim parts:
// with one spanning task and three otherwise-idle workers, slow parts
// must be picked up by helpers and counted in LendHelped.
func TestLendHelpersVolunteer(t *testing.T) {
	const parts = 8
	g := spanGraph(1, parts, func(_, _ int) {
		time.Sleep(20 * time.Millisecond)
	})
	rep, err := Run(g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sched.LendSpans != 1 {
		t.Errorf("LendSpans = %d, want 1", rep.Sched.LendSpans)
	}
	if rep.Sched.LendHelped == 0 {
		t.Error("LendHelped = 0: no idle worker volunteered for a 160ms span")
	}
	if rep.Sched.LendHelped > parts-1 {
		t.Errorf("LendHelped = %d exceeds the %d parts helpers could claim",
			rep.Sched.LendHelped, parts-1)
	}
}

// TestLendAllWorkersSpanningNoDeadlock is the deadlock regression: every
// worker publishes a span at the same time, so no helper is ever
// available and each spanning worker must self-claim all of its parts.
// The protocol guarantees progress with zero helpers; a lending design
// where spanners wait for volunteers would hang here.
func TestLendAllWorkersSpanningNoDeadlock(t *testing.T) {
	const workers, tasks, parts = 8, 8, 8
	var ran atomic.Int64
	g := spanGraph(tasks, parts, func(_, _ int) {
		time.Sleep(time.Millisecond)
		ran.Add(1)
	})
	rep, err := Run(g, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != tasks*parts {
		t.Errorf("ran %d parts, want %d", got, tasks*parts)
	}
	if rep.Sched.LendSpans != tasks {
		t.Errorf("LendSpans = %d, want %d", rep.Sched.LendSpans, tasks)
	}
}

// gemmChainGraph is a strictly serial chain of GEMM tasks: task i
// depends on task i-1, so graph-level parallelism is zero and worker
// lending is the only way a multi-worker run can beat one worker. Each
// body computes cs[i] += aT·b through the Ctx handles, exactly like the
// production GEMM task body.
func gemmChainGraph(n int, a, b *tensor.Matrix, cs []*tensor.Matrix) *ptg.Graph {
	g := ptg.NewGraph("gemm-chain")
	c := g.Class("G")
	c.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	c.AddFlow("D", ptg.RW).
		InNew(func(args ptg.Args) bool { return args[0] == 0 }, func(ptg.Args) int64 { return 8 }).
		In(nil, func(args ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "G", Args: ptg.A1(args[0] - 1)}, "D"
		}).
		Out(func(args ptg.Args) bool { return args[0] < n-1 }, func(args ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "G", Args: ptg.A1(args[0] + 1)}, "D"
		})
	c.Body = func(ctx *ptg.Ctx) {
		tensor.GemmP(ctx.Par, ctx.Pool, true, false, 1, a, b, 1, cs[ctx.Args[0]])
		ctx.Out[0] = int64(ctx.Args[0])
	}
	return g
}

// TestLendGemmChainStress is the satellite stress case: a chain of large
// GEMMs where lending is the only available concurrency. It pins three
// things — the lent run produces bitwise-identical matrices to the
// one-worker run, spans are published for every task, and (on machines
// with enough cores to measure it) the eight-worker run beats the
// single-threaded wall clock.
func TestLendGemmChainStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const n, dim = 4, 256 // dim^3 is above the parallel cutoff
	rng := rand.New(rand.NewSource(7))
	a := tensor.NewMatrix(dim, dim)
	b := tensor.NewMatrix(dim, dim)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		b.Data[i] = rng.NormFloat64()
	}
	run := func(workers int) ([]*tensor.Matrix, time.Duration, Report) {
		cs := make([]*tensor.Matrix, n)
		for i := range cs {
			cs[i] = tensor.NewMatrix(dim, dim)
		}
		t0 := time.Now()
		rep, err := Run(gemmChainGraph(n, a, b, cs), Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return cs, time.Since(t0), rep
	}

	serialC, serialT, _ := run(1)
	lentC, lentT, rep := run(8)

	for i := range serialC {
		for j := range serialC[i].Data {
			if serialC[i].Data[j] != lentC[i].Data[j] {
				t.Fatalf("task %d: lent result differs from serial at %d: %v vs %v",
					i, j, lentC[i].Data[j], serialC[i].Data[j])
			}
		}
	}
	if rep.Sched.LendSpans != n {
		t.Errorf("LendSpans = %d, want %d (one span per chain GEMM)", rep.Sched.LendSpans, n)
	}
	if stdruntime.NumCPU() < 4 {
		t.Skipf("only %d cpus: lent %v vs serial %v wall clock not meaningful",
			stdruntime.NumCPU(), lentT, serialT)
	}
	if lentT >= serialT {
		t.Errorf("lending did not beat single-threaded: lent %v vs serial %v", lentT, serialT)
	}
}

// TestLendSpansInsideBusyGraph pins that lending composes with normal
// graph execution: many independent spanning tasks on few workers, where
// workers alternate between running their own tasks and volunteering.
func TestLendSpansInsideBusyGraph(t *testing.T) {
	const tasks, parts = 24, 6
	var counts [tasks * parts]atomic.Int32
	g := spanGraph(tasks, parts, func(task, part int) {
		counts[task*parts+part].Add(1)
	})
	rep, err := Run(g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d part %d ran %d times, want 1", i/parts, i%parts, c)
		}
	}
	if rep.Sched.LendSpans != tasks {
		t.Errorf("LendSpans = %d, want %d", rep.Sched.LendSpans, tasks)
	}
}

// TestLendReportString pins that the lending counters surface in the
// human-readable report when present.
func TestLendReportString(t *testing.T) {
	g := spanGraph(2, 4, func(_, _ int) { time.Sleep(time.Millisecond) })
	rep, err := Run(g, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = fmt.Sprintf("%v", rep) // must not panic with the new fields
	if rep.Sched.LendSpans != 2 {
		t.Errorf("LendSpans = %d, want 2", rep.Sched.LendSpans)
	}
}
